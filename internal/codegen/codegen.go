package codegen

import (
	"sync/atomic"
	"time"

	"sysml/internal/hop"
)

var classSeq int64

func nextClassID() int { return int(atomic.AddInt64(&classSeq, 1)) }

// Optimize runs the codegen compiler over one HOP DAG: candidate
// exploration, candidate selection per the configured policy, CPlan
// construction, operator compilation (through the plan cache), and DAG
// modification. The DAG is modified in place and returned.
func Optimize(d *hop.DAG, cfg *Config, cache *PlanCache, stats *Stats) *hop.DAG {
	start := time.Now()
	defer func() { stats.CodegenTime += time.Since(start) }()
	hop.AssignExecTypes(d.Roots(), cfg.Exec)

	switch cfg.Mode {
	case ModeBase:
		return d
	case ModeFused:
		applyFusedPatterns(d, cfg, cache, stats)
		return d
	}

	stats.DAGsOptimized++
	memo := Explore(d.Roots(), cfg)
	if len(memo.Groups) == 0 {
		return d
	}
	parts := BuildPartitions(memo, d.Roots())
	if !cfg.EnablePartition {
		parts = []*Partition{mergePartitions(parts)}
	}
	if cfg.Mode == ModeGenFA || cfg.Mode == ModeGenFNR {
		PruneDominated(memo)
	}
	q := map[Edge]bool{}
	for _, p := range parts {
		switch cfg.Mode {
		case ModeGen:
			en := NewEnumerator(cfg, memo, p)
			for e, v := range en.Best() {
				if v {
					q[e] = true
				}
			}
			stats.PlansEvaluated += en.Evaluated
			stats.HypotheticalPlans.Add(stats.HypotheticalPlans, en.Hypothetical)
		case ModeGenFA:
			// Fuse-all: no materialization points (all assignments false).
		case ModeGenFNR:
			// Fuse-no-redundancy: materialize every multi-consumer target.
			for _, pt := range p.Points {
				if h := memo.Hop(pt.To); h != nil && h.NumConsumers() > 1 {
					q[pt] = true
				}
			}
		}
	}
	_ = construct(d, memo, parts, q, cfg, cache, stats)
	return d
}

func mergePartitions(parts []*Partition) *Partition {
	merged := &Partition{Nodes: map[int64]bool{}}
	seenIn := map[int64]bool{}
	for _, p := range parts {
		for id := range p.Nodes {
			merged.Nodes[id] = true
		}
		merged.Roots = append(merged.Roots, p.Roots...)
		merged.MatPoints = append(merged.MatPoints, p.MatPoints...)
		merged.Points = append(merged.Points, p.Points...)
		for _, in := range p.Inputs {
			if !seenIn[in] {
				seenIn[in] = true
				merged.Inputs = append(merged.Inputs, in)
			}
		}
	}
	// Inputs that are nodes of another partition are now internal.
	kept := merged.Inputs[:0]
	for _, in := range merged.Inputs {
		if !merged.Nodes[in] {
			kept = append(kept, in)
		}
	}
	merged.Inputs = kept
	return merged
}
