package matrix

import (
	"sync"
	"sync/atomic"
)

// The buffer pool is a size-keyed free list of float64 backing slices.
// NewDense draws from it and the runtime executor returns dead
// intermediates' storage to it (lineage-aware reuse: iterative workloads
// allocate the same handful of shapes over and over, so exact-size reuse
// hits almost always after the first iteration). Scratch buffers of the
// parallel kernels (TSMM partial triangles, sparse accumulators, row
// densification scratch) cycle through the same pool.
//
// Unlike sync.Pool the free list is deterministic — nothing is dropped on
// GC — so allocation-reduction benchmarks and tests are stable; retention
// is instead bounded by poolMaxPerSize slices per size and poolCapBytes
// total.
const (
	// poolMinFloats: slices smaller than this are cheaper to allocate than
	// to recycle (they also tend to be long-lived scalars and tiny vectors).
	poolMinFloats = 64

	// poolMaxPerSize bounds the free slices retained per exact size.
	poolMaxPerSize = 8

	// poolCapBytes bounds the total bytes parked in the pool; surplus
	// returned buffers are dropped for the GC to take.
	poolCapBytes = 512 << 20
)

type bufferPool struct {
	mu      sync.Mutex
	free    map[int][][]float64
	bytes   int64 // bytes currently parked
	enabled atomic.Bool

	gets, hits, puts, discards atomic.Int64
	bytesRecycled              atomic.Int64 // bytes served from the free list
}

var pool = func() *bufferPool {
	p := &bufferPool{free: map[int][][]float64{}}
	p.enabled.Store(true)
	return p
}()

// PoolEnabled reports whether NewDense and the kernels draw from the pool.
func PoolEnabled() bool { return pool.enabled.Load() }

// SetPoolEnabled toggles the buffer pool (benchmarking and debugging) and
// returns the previous setting. Disabling also drops all parked buffers.
func SetPoolEnabled(on bool) bool {
	old := pool.enabled.Swap(on)
	if !on {
		pool.mu.Lock()
		pool.free = map[int][][]float64{}
		pool.bytes = 0
		pool.mu.Unlock()
	}
	return old
}

// PoolGet returns a zeroed slice of exactly n float64s, recycled from the
// free list when a same-sized buffer is parked there.
func PoolGet(n int) []float64 {
	if n < poolMinFloats || !pool.enabled.Load() {
		return make([]float64, n)
	}
	pool.gets.Add(1)
	pool.mu.Lock()
	list := pool.free[n]
	if len(list) == 0 {
		pool.mu.Unlock()
		return make([]float64, n)
	}
	s := list[len(list)-1]
	pool.free[n] = list[:len(list)-1]
	pool.bytes -= int64(n) * 8
	pool.mu.Unlock()
	pool.hits.Add(1)
	pool.bytesRecycled.Add(int64(n) * 8)
	for i := range s {
		s[i] = 0
	}
	return s
}

// PoolPut parks a slice for reuse. The buffer may be dirty (PoolGet zeroes
// on the way out); the caller must not use it afterwards.
func PoolPut(s []float64) {
	n := len(s)
	if n < poolMinFloats || !pool.enabled.Load() {
		return
	}
	pool.puts.Add(1)
	pool.mu.Lock()
	if len(pool.free[n]) >= poolMaxPerSize || pool.bytes+int64(n)*8 > poolCapBytes {
		pool.mu.Unlock()
		pool.discards.Add(1)
		return
	}
	pool.free[n] = append(pool.free[n], s)
	pool.bytes += int64(n) * 8
	pool.mu.Unlock()
}

// PoolUsage is a snapshot of the buffer-pool counters.
type PoolUsage struct {
	Gets          int64 // pool-eligible allocation requests
	Hits          int64 // requests served from the free list
	Misses        int64 // requests that fell through to make()
	Puts          int64 // buffers returned to the pool
	Discards      int64 // returned buffers dropped (per-size or byte cap)
	BytesRecycled int64 // bytes served from the free list
	BytesParked   int64 // bytes currently held by the free list
}

// HitRate returns Hits/Gets (0 when no requests were made).
func (u PoolUsage) HitRate() float64 {
	if u.Gets == 0 {
		return 0
	}
	return float64(u.Hits) / float64(u.Gets)
}

// PoolStats returns the current buffer-pool counters.
func PoolStats() PoolUsage {
	gets := pool.gets.Load()
	hits := pool.hits.Load()
	pool.mu.Lock()
	parked := pool.bytes
	pool.mu.Unlock()
	return PoolUsage{
		Gets:          gets,
		Hits:          hits,
		Misses:        gets - hits,
		Puts:          pool.puts.Load(),
		Discards:      pool.discards.Load(),
		BytesRecycled: pool.bytesRecycled.Load(),
		BytesParked:   parked,
	}
}

// ResetPoolStats zeroes the buffer-pool counters (parked buffers stay).
func ResetPoolStats() {
	pool.gets.Store(0)
	pool.hits.Store(0)
	pool.puts.Store(0)
	pool.discards.Store(0)
	pool.bytesRecycled.Store(0)
}

// Release returns the matrix's backing storage to the buffer pool and
// clears the matrix; the caller asserts nothing references the matrix (or
// its storage) anymore. Only dense storage allocated by NewDense is
// recycled — wrapped user slices (NewDenseData) and CSR storage are simply
// dropped. Safe to call on an already released matrix.
func (m *Matrix) Release() {
	if m.pooled && m.dense != nil {
		PoolPut(m.dense)
	}
	m.dense, m.sparse, m.pooled = nil, nil, false
}
