package codegen

import (
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"
	"time"
)

// PlanReport is the structured EXPLAIN record of one Optimize call: the
// HOP DAG before and after fusion, the per-partition search-space summary
// (memo-table interesting points, evaluated vs. hypothetical plans,
// estimated cost of the chosen plan), and the fused operators that were
// constructed. It is filled by OptimizeReport and rendered by String.
type PlanReport struct {
	Mode       string
	HopsBefore string
	HopsAfter  string
	Partitions []PartitionReport
	Operators  []OperatorReport
	// Horizontal records the sibling-group decisions of the horizontal
	// fusion pass: merged groups with their chosen chunk-program classes,
	// and declined groups with the cost-gate reason.
	Horizontal []HorizontalGroup
	// Compressed lists the bound inputs that carried an attached compressed
	// form when this DAG was optimized (annotated by the interpreter's
	// auto-compress pass). Non-empty Compressed also switches the operator
	// lines to include per-operator compressed-eligibility.
	Compressed []CompressedInput
	// Plan-cache activity attributable to this Optimize call (deltas of the
	// session cache's lifetime counters).
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// CodegenTime is the wall time of the Optimize call that produced this
	// report. Excluded from String so explain output stays deterministic
	// for golden tests.
	CodegenTime time.Duration
}

// PartitionReport summarizes plan selection over one plan partition.
type PartitionReport struct {
	Nodes int
	// Points renders the memo table's interesting points, one
	// "consumer->input (op->op)" string per materialization decision.
	Points []string
	// Materialized counts the points the chosen plan materializes.
	Materialized int
	// PlansEvaluated counts fully costed plans; Hypothetical is the
	// unpruned search-space size 2^|points|.
	PlansEvaluated int64
	Hypothetical   *big.Int
	// EstCost is the analytical cost (seconds) of the chosen plan;
	// NaN when the partition was not costed (heuristic modes skip it).
	EstCost float64
}

// OperatorReport describes one constructed fused operator. Chunks lists
// the specialized chunk-program classes the operator's structural
// fingerprint resolved to (empty when execution falls back to the
// interpreted genexec-style program).
type OperatorReport struct {
	Template   string
	ClassName  string
	NumInputs  int
	Rows, Cols int64
	CacheHit   bool
	Chunks     []string
	// CompressedOK / CompressedWhy record the compressed-execution
	// eligibility probe: whether the operator's body can run per distinct
	// dictionary tuple over a compressed main input, and the fallback
	// reason when it cannot. Rendered in the COMPRESSED section.
	CompressedOK  bool
	CompressedWhy string
}

// CompressedInput describes one bound input the auto-compress pass attached
// a compressed form to (or annotated from an existing attachment).
type CompressedInput struct {
	Name            string
	Rows, Cols      int64
	Encodings       string // e.g. "DDC×12 RLE×3"
	Ratio           float64
	CompressedBytes int64
}

// HorizontalGroup is one sibling-group decision of the horizontal fusion
// pass (merged or declined), rendered in the EXPLAIN HORIZONTAL section.
type HorizontalGroup struct {
	Main    string   // dominant shared input
	Members []string // the sibling operators considered
	Chunks  []string // chunk classes of the merged operator's roots
	Merged  bool
	Reason  string // cost-gate decline reason (empty when merged)
}

// FusedOperators counts constructed operators by template type, rendered
// deterministically as e.g. "2 (Cell, Row)".
func (r *PlanReport) FusedOperators() string {
	if len(r.Operators) == 0 {
		return "0"
	}
	byType := map[string]int{}
	for _, op := range r.Operators {
		byType[op.Template]++
	}
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Strings(types)
	return fmt.Sprintf("%d (%s)", len(r.Operators), strings.Join(types, ", "))
}

// String renders the report in the EXPLAIN layout consumed by
// cmd/dmlrun -explain and Session.Explain. All lines are deterministic for
// a fixed script and configuration (no wall-clock values).
func (r *PlanReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode: %s\n", r.Mode)
	fmt.Fprintf(&b, "hops before fusion:\n%s", indent(r.HopsBefore))
	for i, p := range r.Partitions {
		fmt.Fprintf(&b, "partition %d: %d nodes, %d interesting points\n",
			i, p.Nodes, len(p.Points))
		for _, pt := range p.Points {
			fmt.Fprintf(&b, "  point %s\n", pt)
		}
		if p.Hypothetical != nil && p.Hypothetical.Sign() > 0 {
			fmt.Fprintf(&b, "  plans: evaluated %d of %s hypothetical, materialized %d points\n",
				p.PlansEvaluated, p.Hypothetical.String(), p.Materialized)
		}
		if !math.IsNaN(p.EstCost) {
			fmt.Fprintf(&b, "  estimated cost: %.3g\n", p.EstCost)
		}
	}
	if len(r.Horizontal) > 0 {
		fmt.Fprintf(&b, "HORIZONTAL: %d sibling groups\n", len(r.Horizontal))
		for _, g := range r.Horizontal {
			if g.Merged {
				fmt.Fprintf(&b, "  merged [%s] over %s", strings.Join(g.Members, "; "), g.Main)
				if len(g.Chunks) > 0 {
					fmt.Fprintf(&b, " chunks [%s]", strings.Join(g.Chunks, ", "))
				}
				b.WriteString("\n")
			} else {
				fmt.Fprintf(&b, "  declined [%s] over %s: %s\n",
					strings.Join(g.Members, "; "), g.Main, g.Reason)
			}
		}
	}
	if len(r.Compressed) > 0 {
		fmt.Fprintf(&b, "COMPRESSED: %d inputs\n", len(r.Compressed))
		for _, ci := range r.Compressed {
			fmt.Fprintf(&b, "  %s %dx%d: %s, ratio %.2f, %d bytes\n",
				ci.Name, ci.Rows, ci.Cols, ci.Encodings, ci.Ratio, ci.CompressedBytes)
		}
	}
	fmt.Fprintf(&b, "fused operators: %s\n", r.FusedOperators())
	for _, op := range r.Operators {
		hit := ""
		if op.CacheHit {
			hit = " [cache hit]"
		}
		fmt.Fprintf(&b, "  %s %s: %d inputs, %dx%d output%s",
			op.Template, op.ClassName, op.NumInputs, op.Rows, op.Cols, hit)
		if len(op.Chunks) > 0 {
			fmt.Fprintf(&b, " chunks [%s]", strings.Join(op.Chunks, ", "))
		}
		if len(r.Compressed) > 0 {
			if op.CompressedOK {
				b.WriteString(" compressed: eligible")
			} else {
				fmt.Fprintf(&b, " compressed: fallback (%s)", op.CompressedWhy)
			}
		}
		b.WriteString("\n")
	}
	if r.CacheHits+r.CacheMisses+r.CacheEvictions > 0 {
		fmt.Fprintf(&b, "plan cache: %d hits, %d misses, %d evictions\n",
			r.CacheHits, r.CacheMisses, r.CacheEvictions)
	}
	if r.HopsAfter != r.HopsBefore {
		fmt.Fprintf(&b, "hops after fusion:\n%s", indent(r.HopsAfter))
	}
	return b.String()
}

func indent(s string) string {
	if s == "" {
		return ""
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// pointLabel renders one interesting point with operator context.
func pointLabel(m *Memo, e Edge) string {
	from, to := m.Hop(e.From), m.Hop(e.To)
	if from == nil || to == nil {
		return fmt.Sprintf("%d->%d", e.From, e.To)
	}
	return fmt.Sprintf("%d->%d (%s -> %s)", e.From, e.To, from.String(), to.String())
}
