package codegen

import (
	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
)

// CloseStatus is the close state of a memo table entry (§3.1).
type CloseStatus int

// Close states. Invalid entries are removed immediately by the explorer.
const (
	StatusOpen CloseStatus = iota
	StatusClosedValid
	StatusClosedInvalid
)

// Template is the open-fuse-merge-close abstraction (§3.2) separating
// template-specific fusion conditions from the DAG traversal.
type Template interface {
	Type() cplan.TemplateType
	// Open reports whether a new fused operator of this template can start
	// at h, covering its operation over materialized inputs.
	Open(h *hop.Hop) bool
	// Fuse reports whether an open fused operator at input in can expand to
	// its consumer h.
	Fuse(h, in *hop.Hop) bool
	// Merge reports whether an open fused operator at h can absorb a fused
	// operator at its input in.
	Merge(h, in *hop.Hop) bool
	// Close reports the close status of the template after h.
	Close(h *hop.Hop) CloseStatus
}

// templates is the fixed template set T (|T| = 4).
func templates(cfg *Config) []Template {
	return []Template{
		cellTemplate{},
		rowTemplate{cfg},
		maggTemplate{},
		outerTemplate{cfg},
	}
}

// isCellOp reports whether h is a valid element-wise (cell) operation over
// matrix data: unary, or binary with matching/broadcastable operands.
func isCellOp(h *hop.Hop) bool {
	switch h.Kind {
	case hop.OpUnary:
		return !h.IsScalar()
	case hop.OpBinary:
		if h.IsScalar() {
			return false
		}
		a, b := h.Inputs[0], h.Inputs[1]
		switch {
		case a.IsScalar() || b.IsScalar():
			return true
		case a.Rows == b.Rows && a.Cols == b.Cols:
			return true
		case b.Rows == a.Rows && b.Cols == 1, b.Rows == 1 && b.Cols == a.Cols:
			return true
		case a.Cols == 1 && a.Rows == b.Rows, a.Rows == 1 && a.Cols == b.Cols:
			return true
		}
	}
	return false
}

// isValidCellAgg reports whether the aggregation can terminate a Cell
// template (sum in any direction; min/max as full aggregates).
func isValidCellAgg(h *hop.Hop) bool {
	if h.Kind != hop.OpAggUnary {
		return false
	}
	switch h.AggOp {
	case matrix.AggSum, matrix.AggSumSq:
		return true
	case matrix.AggMin, matrix.AggMax:
		return h.AggDir == matrix.DirAll
	}
	return false
}

// ---------------------------------------------------------------- Cell --

type cellTemplate struct{}

func (cellTemplate) Type() cplan.TemplateType { return cplan.TemplateCell }

func (cellTemplate) Open(h *hop.Hop) bool { return isCellOp(h) }

func (cellTemplate) Fuse(h, in *hop.Hop) bool {
	if isCellOp(h) {
		return true
	}
	if isValidCellAgg(h) {
		return true
	}
	// Inner products sum(x*y) expressed as vector-vector matmult.
	if h.Kind == hop.OpMatMult && h.IsScalar() {
		return true
	}
	return false
}

func (cellTemplate) Merge(h, in *hop.Hop) bool {
	return isCellOp(h) && !in.IsScalar()
}

func (cellTemplate) Close(h *hop.Hop) CloseStatus {
	if h.Kind == hop.OpAggUnary {
		if isValidCellAgg(h) {
			return StatusClosedValid
		}
		return StatusClosedInvalid
	}
	if h.Kind == hop.OpMatMult && h.IsScalar() {
		return StatusClosedValid
	}
	return StatusOpen
}

// ----------------------------------------------------------------- Row --

type rowTemplate struct{ cfg *Config }

func (rowTemplate) Type() cplan.TemplateType { return cplan.TemplateRow }

// violatesBlocksize checks the conditional constraint z: ncol(X) <= Bc for
// distributed Row operators, which need access to entire rows (§4.1).
func (t rowTemplate) violatesBlocksize(h *hop.Hop) bool {
	return h.ExecType == hop.ExecDist && rowMainWidth(h) > t.cfg.Exec.Blocksize
}

// rowMainWidth returns the column count of the iterated main input.
func rowMainWidth(h *hop.Hop) int64 {
	switch h.Kind {
	case hop.OpMatMult:
		a := h.Inputs[0]
		if a.Kind == hop.OpTranspose {
			return a.Inputs[0].Cols
		}
		return a.Cols
	case hop.OpTranspose:
		return h.Inputs[0].Cols
	default:
		if len(h.Inputs) > 0 {
			return h.Inputs[0].Cols
		}
	}
	return 0
}

func (t rowTemplate) Open(h *hop.Hop) bool {
	if t.violatesBlocksize(h) {
		return false
	}
	switch h.Kind {
	case hop.OpMatMult:
		a, b := h.Inputs[0], h.Inputs[1]
		// X %*% v and X %*% V with a narrow right-hand side (B1 binding).
		if a.Rows > 1 && a.Cols > 1 && b.Cols <= int64(t.cfg.RowTemplateMaxCols) {
			return true
		}
		return false
	case hop.OpTranspose:
		// t(X) as the left branch of t(X) %*% W (Fig. 5, group 10 R(-1)).
		in := h.Inputs[0]
		return in.Rows > 1 && in.Cols > 1
	case hop.OpCumsum:
		// The §3.2 rare exception: t(cumsum(t(X))) is a row operation; the
		// open condition looks one level down the DAG.
		return h.Inputs[0].Kind == hop.OpTranspose && h.Cols > 1
	case hop.OpAggUnary:
		if h.Inputs[0].IsVector() || h.Inputs[0].IsScalar() {
			return false
		}
		return h.AggOp == matrix.AggSum || h.AggOp == matrix.AggSumSq ||
			h.AggOp == matrix.AggMin || h.AggOp == matrix.AggMax
	case hop.OpBinary, hop.OpUnary:
		// Cell operations over matrices open Row templates too (Fig. 5
		// group 6 holds R(-1,-1)); this includes the matrix/column-vector
		// broadcasts such as X/rowSums(X).
		return isCellOp(h) && h.Rows > 1 && h.Cols > 1
	case hop.OpIndex:
		// Column-range selection over full rows (vector row indexing).
		return h.RL == 0 && h.RU == h.Inputs[0].Rows && h.Inputs[0].Cols > 1
	}
	return false
}

func (t rowTemplate) Fuse(h, in *hop.Hop) bool {
	if t.violatesBlocksize(h) {
		return false
	}
	switch h.Kind {
	case hop.OpBinary, hop.OpUnary:
		return isCellOp(h)
	case hop.OpAggUnary:
		switch h.AggOp {
		case matrix.AggSum, matrix.AggSumSq, matrix.AggMin, matrix.AggMax:
			return true
		}
		return false
	case hop.OpRowIndexMax:
		return true
	case hop.OpIndex:
		return h.RL == 0 && h.RU == in.Rows
	case hop.OpTranspose:
		// The closing transpose of t(cumsum(t(X))).
		return in.Kind == hop.OpCumsum && in.Inputs[0].Kind == hop.OpTranspose
	case hop.OpMatMult:
		a, b := h.Inputs[0], h.Inputs[1]
		// Fuse the left branch through a transpose: t(X) %*% W.
		if a == in && a.Kind == hop.OpTranspose && b.Cols <= int64(t.cfg.RowTemplateMaxCols) {
			return true
		}
		// Fuse the right branch W of t(X) %*% W.
		if b == in && a.Kind == hop.OpTranspose && b.Cols <= int64(t.cfg.RowTemplateMaxCols) {
			return true
		}
		// Fuse the left branch of X %*% V (V narrow, materialized).
		if a == in && a.Cols > 1 && b.Cols <= int64(t.cfg.RowTemplateMaxCols) {
			return true
		}
		return false
	}
	return false
}

func (rowTemplate) Merge(h, in *hop.Hop) bool {
	// Row templates absorb Cell plans over per-row compatible inputs:
	// column vectors aligned with the iterated rows or same-row matrices
	// (e.g. X^T(y ⊙ z) merging the cell plan over y ⊙ z).
	if in.IsScalar() {
		return false
	}
	rows := rowMainRows(h)
	return rows > 0 && in.Rows == rows
}

// rowMainRows returns the row count of the iterated main input of a Row
// template rooted at h (0 if undetermined).
func rowMainRows(h *hop.Hop) int64 {
	switch h.Kind {
	case hop.OpMatMult:
		a := h.Inputs[0]
		if a.Kind == hop.OpTranspose {
			return a.Inputs[0].Rows
		}
		return a.Rows
	case hop.OpTranspose:
		return h.Inputs[0].Rows
	case hop.OpAggUnary, hop.OpUnary, hop.OpIndex, hop.OpRowIndexMax:
		return h.Inputs[0].Rows
	case hop.OpBinary:
		return h.Inputs[0].Rows
	}
	return 0
}

func (rowTemplate) Close(h *hop.Hop) CloseStatus {
	if h.Kind == hop.OpTranspose && h.Inputs[0].Kind == hop.OpCumsum {
		return StatusClosedValid // t(cumsum(t(X))) ends the fused operator
	}
	switch h.Kind {
	case hop.OpAggUnary:
		// Column-wise or full aggregations close a Row template; row-wise
		// aggregations stay open (they remain per-row values).
		if h.AggDir == matrix.DirCol || h.AggDir == matrix.DirAll {
			return StatusClosedValid
		}
		return StatusOpen
	case hop.OpMatMult:
		if h.Inputs[0].Kind == hop.OpTranspose {
			return StatusClosedValid // t(X) %*% W ends the fused operator
		}
		return StatusOpen
	}
	return StatusOpen
}

// ---------------------------------------------------------------- MAgg --

type maggTemplate struct{}

func (maggTemplate) Type() cplan.TemplateType { return cplan.TemplateMAgg }

func (maggTemplate) Open(h *hop.Hop) bool {
	return h.Kind == hop.OpAggUnary && h.AggDir == matrix.DirAll &&
		(h.AggOp == matrix.AggSum || h.AggOp == matrix.AggSumSq ||
			h.AggOp == matrix.AggMin || h.AggOp == matrix.AggMax) &&
		!h.Inputs[0].IsScalar()
}

func (maggTemplate) Fuse(h, in *hop.Hop) bool { return false }

func (maggTemplate) Merge(h, in *hop.Hop) bool {
	// The aggregate absorbs the cell expression below it.
	return isCellOp(in)
}

func (maggTemplate) Close(h *hop.Hop) CloseStatus { return StatusClosedValid }

// --------------------------------------------------------------- Outer --

type outerTemplate struct{ cfg *Config }

func (outerTemplate) Type() cplan.TemplateType { return cplan.TemplateOuter }

func (t outerTemplate) Open(h *hop.Hop) bool {
	// Outer-product-like matrix multiplication with size constraints: a
	// small common rank producing a large dense output.
	if h.Kind != hop.OpMatMult {
		return false
	}
	a, b := h.Inputs[0], h.Inputs[1]
	rank := a.Cols
	return rank >= 1 && rank <= int64(t.cfg.OuterMaxRank) &&
		a.Rows > rank && b.Cols > rank &&
		h.Cells() >= 4*rank*rank
}

func (t outerTemplate) Fuse(h, in *hop.Hop) bool {
	switch h.Kind {
	case hop.OpBinary, hop.OpUnary:
		return isCellOp(h)
	case hop.OpAggUnary:
		return h.AggDir == matrix.DirAll && (h.AggOp == matrix.AggSum || h.AggOp == matrix.AggSumSq)
	case hop.OpTranspose:
		// Pass-through marker for the left-mm pattern t(O) %*% U.
		return true
	case hop.OpMatMult:
		a, b := h.Inputs[0], h.Inputs[1]
		// Right MM: O %*% V.
		if a == in && b.Cols <= int64(t.cfg.OuterMaxRank) && b.Cols < in.Cols {
			return true
		}
		// Left MM: t(O) %*% U (in is the transpose marker).
		if a == in && in.Kind == hop.OpTranspose && b.Cols <= int64(t.cfg.OuterMaxRank) {
			return true
		}
		return false
	}
	return false
}

func (outerTemplate) Merge(h, in *hop.Hop) bool {
	// Cell plans over X-shaped inputs merge into the outer template at cell
	// operations over the outer intermediate (e.g. the (X != 0) mask of
	// Expression (1)); the opening multiplication itself reads U and V rows
	// as materialized inputs.
	return isCellOp(h) && isCellOp(in) && !in.IsScalar() &&
		in.Rows == h.Rows && in.Cols == h.Cols
}

func (t outerTemplate) Close(h *hop.Hop) CloseStatus {
	switch h.Kind {
	case hop.OpAggUnary:
		return StatusClosedValid
	case hop.OpMatMult:
		// The final left/right matrix multiply (wide inner dimension over
		// the fused outer expression) ends the operator; the opening
		// outer-product multiplication (small rank) stays open.
		if h.Inputs[0].Cols > int64(t.cfg.OuterMaxRank) {
			return StatusClosedValid
		}
		return StatusOpen
	}
	return StatusOpen
}
