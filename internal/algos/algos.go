// Package algos implements the paper's six evaluation algorithms (Table 2)
// as DML-subset scripts executed through the full compile/optimize/execute
// pipeline: L2SVM, MLogreg (with the Expression-2 CG inner loop), GLM
// (binomial probit via gradient IRLS; no direct solver in the runtime,
// see DESIGN.md), KMeans, ALS-CG (with the Expression-1 sparsity-exploiting
// update rule), and a two-layer AutoEncoder with mini-batches.
package algos

import (
	"fmt"
	"io"

	"sysml/internal/codegen"
	"sysml/internal/data"
	"sysml/internal/dml"
	"sysml/internal/matrix"
	"sysml/internal/runtime"
)

// Algorithm bundles a script with its input generator and result variable.
type Algorithm struct {
	Name   string
	Script string
	// Outputs lists result variables to retain.
	Outputs []string
	// Gen generates synthetic inputs at the given scale.
	Gen func(rows, cols int, seed int64) map[string]*matrix.Matrix
	// Scalars are default scalar parameters (λ, ε, maxiter, ...).
	Scalars map[string]float64
}

// Run executes the algorithm through a fresh session, returning the
// session for statistics and result inspection.
func (a Algorithm) Run(cfg codegen.Config, inputs map[string]*matrix.Matrix,
	overrides map[string]float64, dist runtime.DistBackend, out io.Writer) (*dml.Session, error) {
	s := dml.NewSession(cfg)
	if out != nil {
		s.Out = out
	}
	s.Dist = dist
	for name, m := range inputs {
		s.Bind(name, m)
	}
	for name, v := range a.Scalars {
		s.BindScalar(name, v)
	}
	for name, v := range overrides {
		s.BindScalar(name, v)
	}
	if err := s.Run(a.Script); err != nil {
		return s, fmt.Errorf("%s: %w", a.Name, err)
	}
	return s, nil
}

// L2SVM is the binary L2-regularized support vector machine with
// Newton-style line search (Table 2: Icpt 0, λ 1e-3, ε 1e-12, 20 outer
// iterations).
var L2SVM = Algorithm{
	Name:    "L2SVM",
	Outputs: []string{"w", "obj"},
	Scalars: map[string]float64{"lambda": 1e-3, "eps": 1e-12, "maxiter": 20},
	Gen: func(rows, cols int, seed int64) map[string]*matrix.Matrix {
		x := data.Dense(rows, cols, seed)
		return map[string]*matrix.Matrix{"X": x, "Y": data.BinaryLabels(x, 0.05, seed+7)}
	},
	Script: `
		m = ncol(X)
		w = matrix(0, rows=m, cols=1)
		g_old = t(X) %*% Y
		s = g_old
		iter = 0
		continue = 1
		obj = 0
		while (continue == 1 & iter < maxiter) {
			Xd = X %*% s
			Xw = X %*% w
			wd = lambda * sum(w * s)
			dd = lambda * sum(s * s)
			step = 0
			cont_in = 1
			inner = 0
			while (cont_in == 1 & inner < 20) {
				out2 = 1 - Y * (Xw + step * Xd)
				sv2 = (out2 > 0)
				g = wd + step*dd - sum(out2 * sv2 * Y * Xd)
				h = dd + sum(Xd * sv2 * Xd)
				step = step - g/h
				cont_in = (g*g/h > eps)
				inner = inner + 1
			}
			w = w + step * s
			out = 1 - Y * (X %*% w)
			sv = (out > 0)
			obj = 0.5 * sum(out * sv * out) + lambda/2 * sum(w * w)
			g_new = t(X) %*% (out * sv * Y) - lambda * w
			tmp = sum(s * g_old)
			continue = (step * tmp >= eps * obj) & (sum(s * s) > 0)
			be = sum(g_new * g_new) / sum(g_old * g_old)
			s = g_new + be * s
			g_old = g_new
			iter = iter + 1
		}
	`,
}

// MLogreg is multinomial logistic regression with a conjugate-gradient
// inner loop whose Hessian-vector product is exactly the paper's
// Expression (2): Q = P * (X %*% S); HS = t(X) %*% (Q - P * rowSums(Q)).
var MLogreg = Algorithm{
	Name:    "MLogreg",
	Outputs: []string{"B", "obj"},
	Scalars: map[string]float64{"lambda": 1e-3, "eps": 1e-12, "maxiter": 20, "inneriter": 10, "k": 2},
	Gen: func(rows, cols int, seed int64) map[string]*matrix.Matrix {
		x := data.Dense(rows, cols, seed)
		// Yind holds k-1 one-hot columns (class k is the baseline).
		return map[string]*matrix.Matrix{"X": x, "Yfull": data.MultiClassIndicator(x, 3, seed+3)}
	},
	Script: `
		m = ncol(X)
		km1 = k - 1
		Yind = Yfull[, 1:km1]
		B = matrix(0, rows=m, cols=km1)
		obj = 0
		for (outer in 1:maxiter) {
			linear = X %*% B
			elin = exp(linear - rowMaxs(linear))
			P = elin / (rowSums(elin) + exp(0 - rowMaxs(linear)))
			grad = t(X) %*% (P - Yind) + lambda * B
			# CG solve of the regularized Newton system
			S = 0 - grad
			R = 0 - grad
			D = matrix(0, rows=m, cols=km1)
			rsold = sum(R * R)
			for (i in 1:inneriter) {
				Q = P * (X %*% S)
				HS = t(X) %*% (Q - P * rowSums(Q)) + lambda * S
				alpha = rsold / max(sum(S * HS), eps)
				D = D + alpha * S
				R = R - alpha * HS
				rsnew = sum(R * R)
				S = R + (rsnew / max(rsold, eps)) * S
				rsold = rsnew
			}
			B = B + D
			obj = sum(P * P) + lambda * sum(B * B)
		}
	`,
}

// GLM is a binomial-probit generalized linear model fitted by gradient
// IRLS (the runtime has no direct linear-system solver; the probit CDF is
// approximated by the standard sigmoid(1.702·η) logit scaling).
var GLM = Algorithm{
	Name:    "GLM",
	Outputs: []string{"b", "dev"},
	Scalars: map[string]float64{"lambda": 1e-3, "eps": 1e-12, "maxiter": 20, "inneriter": 10},
	Gen: func(rows, cols int, seed int64) map[string]*matrix.Matrix {
		x := data.Dense(rows, cols, seed)
		return map[string]*matrix.Matrix{
			"X": x,
			"Y": data.ZeroOneLabels(data.BinaryLabels(x, 0.05, seed+11)),
		}
	},
	Script: `
		m = ncol(X)
		b = matrix(0, rows=m, cols=1)
		dev = 0
		for (outer in 1:maxiter) {
			eta = X %*% b
			mu = sigmoid(1.702 * eta)
			wvec = max(mu * (1 - mu), 1e-10)
			grad = t(X) %*% (mu - Y) + lambda * b
			# CG on the weighted normal equations t(X) W X d = -grad
			S = 0 - grad
			R = 0 - grad
			D = matrix(0, rows=m, cols=1)
			rsold = sum(R * R)
			for (i in 1:inneriter) {
				HS = t(X) %*% (wvec * (X %*% S)) + lambda * S
				alpha = rsold / max(sum(S * HS), eps)
				D = D + alpha * S
				R = R - alpha * HS
				rsnew = sum(R * R)
				S = R + (rsnew / max(rsold, eps)) * S
				rsold = rsnew
			}
			b = b + D
			dev = 0 - 2 * sum(Y * log(max(mu, 1e-10)) + (1 - Y) * log(max(1 - mu, 1e-10)))
		}
	`,
}

// KMeans is Lloyd's algorithm with k centroids (Table 2: 1 run, k=5).
var KMeans = Algorithm{
	Name:    "KMeans",
	Outputs: []string{"C", "wcss"},
	Scalars: map[string]float64{"k": 5, "maxiter": 20},
	Gen: func(rows, cols int, seed int64) map[string]*matrix.Matrix {
		x := data.Dense(rows, cols, seed)
		return map[string]*matrix.Matrix{"X": x, "C0": matrix.Rand(5, cols, 1, -1, 1, seed+5)}
	},
	Script: `
		C = C0
		rs2 = rowSums(X ^ 2)
		wcss = 0
		for (iter in 1:maxiter) {
			# Distances up to the row-constant rs2 term, which does not
			# affect the argmin: D = ||c_j||^2 - 2 x_i.c_j.
			D = t(rowSums(C ^ 2)) - 2 * (X %*% t(C))
			mind = rowMins(D)
			P = (D <= mind)
			P = P / rowSums(P)
			counts = t(colSums(P))
			C = (t(P) %*% X) / max(counts, 1)
			wcss = sum(mind + rs2)
		}
	`,
}

// ALSCG is alternating least squares via conjugate gradient with weighted-
// L2 regularization; the Hessian-vector products are the paper's
// Expression (1) sparsity-exploiting outer-product pattern.
var ALSCG = Algorithm{
	Name:    "ALS-CG",
	Outputs: []string{"U", "V", "loss"},
	Scalars: map[string]float64{"lambda": 1e-3, "rank": 20, "maxiter": 6},
	Gen: func(rows, cols int, seed int64) map[string]*matrix.Matrix {
		x := data.Sparse(rows, cols, 0.01, seed)
		return map[string]*matrix.Matrix{
			"X":  matrix.Unary(matrix.UnAbs, x),
			"U0": matrix.Rand(rows, 20, 1, 0.01, 0.1, seed+1),
			"V0": matrix.Rand(cols, 20, 1, 0.01, 0.1, seed+2),
		}
	},
	Script: `
		U = U0
		V = V0
		Xt = t(X)
		loss = 0
		for (outer in 1:maxiter) {
			# --- update U (V fixed): CG on grad_U ---
			R = X %*% V - ((X != 0) * (U %*% t(V))) %*% V - lambda * U
			S = R
			rsold = sum(R * R)
			for (i in 1:rank) {
				HS = ((X != 0) * (S %*% t(V))) %*% V + lambda * S
				alpha = rsold / max(sum(S * HS), 1e-12)
				U = U + alpha * S
				R = R - alpha * HS
				rsnew = sum(R * R)
				S = R + (rsnew / max(rsold, 1e-12)) * S
				rsold = rsnew
			}
			# --- update V (U fixed) ---
			R2 = Xt %*% U - ((Xt != 0) * (V %*% t(U))) %*% U - lambda * V
			S2 = R2
			rsold2 = sum(R2 * R2)
			for (i in 1:rank) {
				HS2 = ((Xt != 0) * (S2 %*% t(U))) %*% U + lambda * S2
				alpha2 = rsold2 / max(sum(S2 * HS2), 1e-12)
				V = V + alpha2 * S2
				R2 = R2 - alpha2 * HS2
				rsnew2 = sum(R2 * R2)
				S2 = R2 + (rsnew2 / max(rsold2, 1e-12)) * S2
				rsold2 = rsnew2
			}
			loss = sum(X ^ 2) - 2 * sum(X * (U %*% t(V))) + sum((X != 0) * (U %*% t(V)) ^ 2)
		}
	`,
}

// AutoEncoder is a two-hidden-layer autoencoder (Table 2: H1=500, H2=2,
// batch 512; widths scale with the input) trained by mini-batch SGD.
var AutoEncoder = Algorithm{
	Name:    "AutoEncoder",
	Outputs: []string{"W1", "obj"},
	Scalars: map[string]float64{"H1": 64, "H2": 2, "batch": 512, "epochs": 1, "alpha": 0.01},
	Gen: func(rows, cols int, seed int64) map[string]*matrix.Matrix {
		return map[string]*matrix.Matrix{"X": data.Dense(rows, cols, seed)}
	},
	Script: `
		n = nrow(X)
		m = ncol(X)
		W1 = 0.1 * rand(rows=m, cols=H1, seed=1)
		W2 = 0.1 * rand(rows=H1, cols=H2, seed=2)
		W3 = 0.1 * rand(rows=H2, cols=H1, seed=3)
		W4 = 0.1 * rand(rows=H1, cols=m, seed=4)
		nb = floor(n / batch)
		obj = 0
		for (ep in 1:epochs) {
			for (bi in 1:nb) {
				lo = (bi - 1) * batch + 1
				hi = bi * batch
				Xb = X[lo:hi, ]
				A1 = sigmoid(Xb %*% W1)
				A2 = sigmoid(A1 %*% W2)
				A3 = sigmoid(A2 %*% W3)
				A4 = A3 %*% W4
				E = A4 - Xb
				D3 = (E %*% t(W4)) * A3 * (1 - A3)
				D2 = (D3 %*% t(W3)) * A2 * (1 - A2)
				D1 = (D2 %*% t(W2)) * A1 * (1 - A1)
				W4 = W4 - alpha * (t(A3) %*% E) / batch
				W3 = W3 - alpha * (t(A2) %*% D3) / batch
				W2 = W2 - alpha * (t(A1) %*% D2) / batch
				W1 = W1 - alpha * (t(Xb) %*% D1) / batch
				obj = sum(E * E) / batch
			}
		}
	`,
}

// All lists the six algorithms in the paper's Table 2 order.
var All = []Algorithm{L2SVM, MLogreg, GLM, KMeans, ALSCG, AutoEncoder}
