package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"sysml/internal/algos"
	"sysml/internal/codegen"
	"sysml/internal/dml"
)

// algoSetup is one algorithm at harness scale.
type algoSetup struct {
	algo      algos.Algorithm
	rows      int
	cols      int
	overrides map[string]float64
}

func algoSetups(o Options) []algoSetup {
	return []algoSetup{
		{algos.L2SVM, o.rows(5000), 50, map[string]float64{"maxiter": 5}},
		{algos.MLogreg, o.rows(3000), 30, map[string]float64{"maxiter": 3, "inneriter": 5, "k": 3}},
		{algos.GLM, o.rows(3000), 30, map[string]float64{"maxiter": 3, "inneriter": 5}},
		{algos.KMeans, o.rows(5000), 20, map[string]float64{"maxiter": 5}},
		{algos.ALSCG, o.rows(800), 600, map[string]float64{"maxiter": 2, "rank": 10}},
		{algos.AutoEncoder, o.rows(2048), 50,
			map[string]float64{"epochs": 1, "batch": 64, "H1": 32, "H2": 2}},
	}
}

func runAlgo(s algoSetup, cfg codegen.Config) (*dml.Session, time.Duration, error) {
	// The compilation-overhead experiments measure dynamic recompilation:
	// force re-optimization of every block execution (paper §5.3 setup).
	cfg.ReuseBlockPlans = false
	inputs := s.algo.Gen(s.rows, s.cols, 77)
	start := time.Now()
	sess, err := s.algo.Run(cfg, inputs, s.overrides, nil, io.Discard)
	return sess, time.Since(start), err
}

// Table3Overhead reproduces Table 3: end-to-end compilation overhead per
// algorithm — total runtime, compiled plans (optimized DAGs / constructed
// CPlans / compiled operator classes), and codegen/compile times.
func Table3Overhead(o Options) *Table {
	t := &Table{
		Title:   "Table 3: End-to-End Compilation Overhead",
		Columns: []string{"algorithm", "total[s]", "#DAGs/#CPlans/#classes", "codegen[ms]", "compile[ms]"},
	}
	for _, s := range algoSetups(o) {
		cfg := codegen.DefaultConfig()
		sess, total, err := runAlgo(s, cfg)
		if err != nil {
			t.Add(s.algo.Name, "ERR: "+err.Error())
			continue
		}
		st := sess.Stats
		t.Add(s.algo.Name, secs(total),
			fmt.Sprintf("%d/%d/%d", st.DAGsOptimized, st.CPlansConstructed, st.OperatorsCompiled),
			ms(st.CodegenTime), ms(st.CompileTime))
	}
	return t
}

// Fig11Compile reproduces Fig. 11: operator compilation and loading time
// for the javac-analog vs the janino-analog compile path, without and with
// the plan cache.
func Fig11Compile(o Options) *Table {
	t := &Table{
		Title:   "Fig 11: Operator Compilation Time [ms] (compiler x plan cache)",
		Columns: []string{"algorithm", "Javac", "Janino", "Javac+cache", "Janino+cache"},
	}
	for _, s := range algoSetups(o) {
		row := []string{s.algo.Name}
		for _, combo := range []struct {
			compiler codegen.CompilerKind
			cache    bool
		}{
			{codegen.CompilerJavac, false},
			{codegen.CompilerJanino, false},
			{codegen.CompilerJavac, true},
			{codegen.CompilerJanino, true},
		} {
			cfg := codegen.DefaultConfig()
			cfg.Compiler = combo.compiler
			cfg.PlanCache = combo.cache
			sess, _, err := runAlgo(s, cfg)
			if err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, ms(sess.Stats.CompileTime))
		}
		t.Add(row...)
	}
	return t
}

// Fig12Enumeration reproduces Fig. 12: the number of evaluated plans per
// algorithm for (a) no partitioning ("all", reported as the hypothetical
// unpruned search space), (b) partitioning only, and (c) partitioning plus
// both pruning techniques.
func Fig12Enumeration(o Options) *Table {
	t := &Table{
		Title:   "Fig 12: Plan Enumeration and Pruning (#evaluated plans)",
		Columns: []string{"algorithm", "All (2^|M'|)", "Partition", "Partition+Prune"},
	}
	for _, s := range algoSetups(o) {
		row := []string{s.algo.Name}
		// All: no partitioning; the hypothetical space is 2^|M'| of the
		// merged problem (the paper reports this as infeasible-to-enumerate
		// for large DAGs).
		cfgAll := codegen.DefaultConfig()
		cfgAll.EnablePartition = false
		cfgAll.EnableCostPrune = false
		cfgAll.EnableStructPrune = false
		// The unpartitioned space is infeasible to enumerate (the paper
		// reports >1e21 hypothetical plans); fall back immediately and
		// report the space size.
		cfgAll.MaxPointsExact = 0
		sessAll, _, errAll := runAlgo(s, cfgAll)
		if errAll != nil {
			t.Add(s.algo.Name, "ERR: "+errAll.Error())
			continue
		}
		hyp := new(big).SetBig(sessAll.Stats.HypotheticalPlans)
		row = append(row, hyp.String())

		cfgPart := codegen.DefaultConfig()
		cfgPart.EnableCostPrune = false
		cfgPart.EnableStructPrune = false
		cfgPart.MaxPointsExact = 14 // bound unpruned per-partition spaces
		sessPart, _, err := runAlgo(s, cfgPart)
		if err != nil {
			row = append(row, "ERR")
		} else {
			row = append(row, fmt.Sprintf("%d", sessPart.Stats.PlansEvaluated))
		}

		cfgFull := codegen.DefaultConfig()
		sessFull, _, err := runAlgo(s, cfgFull)
		if err != nil {
			row = append(row, "ERR")
		} else {
			row = append(row, fmt.Sprintf("%d", sessFull.Stats.PlansEvaluated))
		}
		t.Add(row...)
	}
	return t
}

// big pretty-prints large plan counts as powers of ten.
type big struct{ f float64 }

func (b *big) SetBig(v interface{ BitLen() int }) *big {
	b.f = float64(v.BitLen()-1) * math.Log10(2)
	if v.BitLen() == 0 {
		b.f = 0
	}
	return b
}

func (b *big) String() string {
	if b.f < 6 {
		return fmt.Sprintf("%.0f", math.Pow(10, b.f))
	}
	return fmt.Sprintf("~1e%.0f", b.f)
}
