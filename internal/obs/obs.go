// Package obs is the observability substrate of the runtime: counters,
// gauges, and histograms aggregated into immutable snapshots, hierarchical
// trace spans exportable as Chrome trace-event JSON (TraceSink), a
// cost-audit ledger comparing optimizer predictions against measured
// execution (Audit), a live HTTP endpoint (Serve), and a pluggable event
// sink that receives EXPLAIN output and span completions. Everything is
// standard library only and safe for concurrent use; the hot-path cost of
// an unobserved metric is one atomic add, and of an unsunk span one nil
// check.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of named counters, gauges, and histograms.
// Instruments are created lazily on first use; updates after creation are
// lock-free.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*int64
	gauges   map[string]*uint64 // float64 bits
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*int64{},
		gauges:   map[string]*uint64{},
		hists:    map[string]*Histogram{},
	}
}

func (m *Metrics) counter(name string) *int64 {
	m.mu.RLock()
	c, ok := m.counters[name]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = m.counters[name]; !ok {
		c = new(int64)
		m.counters[name] = c
	}
	return c
}

// Add increments the named counter by delta.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	atomic.AddInt64(m.counter(name), delta)
}

// Inc increments the named counter by one.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Counter returns the current value of the named counter (0 if absent).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.RLock()
	c, ok := m.counters[name]
	m.mu.RUnlock()
	if !ok {
		return 0
	}
	return atomic.LoadInt64(c)
}

// SetGauge sets the named gauge to v (last write wins).
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.RLock()
	g, ok := m.gauges[name]
	m.mu.RUnlock()
	if !ok {
		m.mu.Lock()
		if g, ok = m.gauges[name]; !ok {
			g = new(uint64)
			m.gauges[name] = g
		}
		m.mu.Unlock()
	}
	atomic.StoreUint64(g, math.Float64bits(v))
}

// Hist returns the named histogram, creating it on first use.
func (m *Metrics) Hist(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h, ok := m.hists[name]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.hists[name]; !ok {
		h = newHistogram()
		m.hists[name] = h
	}
	return h
}

// Observe records v into the named histogram.
func (m *Metrics) Observe(name string, v float64) { m.Hist(name).Observe(v) }

// ObserveDuration records d (in seconds) into the named histogram.
func (m *Metrics) ObserveDuration(name string, d time.Duration) {
	m.Observe(name, d.Seconds())
}

// Snapshot returns a consistent point-in-time copy of every instrument.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
	}
	if m == nil {
		return s
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for name, c := range m.counters {
		s.Counters[name] = atomic.LoadInt64(c)
	}
	for name, g := range m.gauges {
		s.Gauges[name] = math.Float64frombits(atomic.LoadUint64(g))
	}
	for name, h := range m.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// numHistBuckets is the number of finite histogram buckets; one overflow
// bucket is appended for values above the last bound.
const numHistBuckets = 16

// histBuckets are the upper bounds (in seconds when used for durations) of
// the exponential histogram buckets: 1µs · 4^i, plus a +Inf overflow.
var histBuckets = func() []float64 {
	b := make([]float64, numHistBuckets)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// Histogram is a fixed-bucket exponential histogram with lock-free
// updates. It tracks count, sum, min, and max exactly and the distribution
// by bucket.
type Histogram struct {
	count   int64
	sumBits uint64
	minBits uint64
	maxBits uint64
	buckets [numHistBuckets + 1]int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	atomic.StoreUint64(&h.minBits, math.Float64bits(math.Inf(1)))
	atomic.StoreUint64(&h.maxBits, math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	atomic.AddInt64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, nw) {
			break
		}
	}
	for {
		old := atomic.LoadUint64(&h.minBits)
		if v >= math.Float64frombits(old) || atomic.CompareAndSwapUint64(&h.minBits, old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := atomic.LoadUint64(&h.maxBits)
		if v <= math.Float64frombits(old) || atomic.CompareAndSwapUint64(&h.maxBits, old, math.Float64bits(v)) {
			break
		}
	}
	i := sort.SearchFloat64s(histBuckets, v)
	atomic.AddInt64(&h.buckets[i], 1)
}

// Snapshot returns a copy of the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: atomic.LoadInt64(&h.count),
		Sum:   math.Float64frombits(atomic.LoadUint64(&h.sumBits)),
		Min:   math.Float64frombits(atomic.LoadUint64(&h.minBits)),
		Max:   math.Float64frombits(atomic.LoadUint64(&h.maxBits)),
	}
	for i := range h.buckets {
		s.Buckets[i] = atomic.LoadInt64(&h.buckets[i])
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets [numHistBuckets + 1]int64
}

// Mean returns the arithmetic mean of the observed values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values by
// linear interpolation inside the exponential buckets, the same estimate a
// Prometheus histogram_quantile would produce from the cumulative buckets.
// The estimate is clamped to the exactly tracked [Min, Max], so a
// single-value histogram returns that value for every q and the overflow
// bucket interpolates toward Max instead of +Inf. An empty histogram
// returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) < rank {
			cum += n
			continue
		}
		// The target rank falls in bucket i, which covers (lo, hi]:
		// bucket 0 is (-inf, histBuckets[0]] and the last is the overflow.
		lo := 0.0
		if i > 0 {
			lo = histBuckets[i-1]
		}
		hi := s.Max
		if i < len(histBuckets) {
			hi = histBuckets[i]
		}
		if lo < s.Min {
			lo = s.Min
		}
		if hi > s.Max {
			hi = s.Max
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return s.Max
}

// Snapshot is a point-in-time copy of a Metrics registry, plus any
// externally merged values (codegen stats, par utilization, cluster
// traffic).
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]HistSnapshot
}

// Counter returns a counter value (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value (0 if absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Hist returns a histogram snapshot (zero value if absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Hists[name] }

// String renders the snapshot sorted by instrument name, durations as
// histogram count/total/mean.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		fmt.Fprintf(&b, "%s count=%d total=%s mean=%s min=%s max=%s p99=%s\n",
			n, h.Count, fmtSeconds(h.Sum), fmtSeconds(h.Mean()),
			fmtSeconds(h.Min), fmtSeconds(h.Max), fmtSeconds(h.Quantile(0.99)))
	}
	return b.String()
}

func fmtSeconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
