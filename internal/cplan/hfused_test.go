package cplan

import (
	"math"
	"testing"

	"sysml/internal/matrix"
)

func hTestPlan(kinds []CellType, aggs []matrix.AggOp, roots ...*CNode) *Plan {
	return &Plan{Type: TemplateHorizontal, Roots: roots, HKinds: kinds, AggOps: aggs}
}

// TestBuildHFusedEligibility walks the accept/decline boundary of the
// fused whole-group body.
func TestBuildHFusedEligibility(t *testing.T) {
	axpy := Binary(matrix.BinAdd, Binary(matrix.BinMul, Main(0), Lit(3)), Lit(1))
	sq := Binary(matrix.BinMul, Main(0), Main(0))
	sums := []matrix.AggOp{matrix.AggSum, matrix.AggSum, matrix.AggSum}

	// Flagship affine group: accepted with one col, one full agg, one map.
	h := BuildHFused(hTestPlan(
		[]CellType{CellColAgg, CellFullAgg, CellNoAgg}, sums, Main(0), sq, axpy))
	if h == nil || len(h.Cols) != 1 || len(h.Aggs) != 1 || len(h.Maps) != 1 {
		t.Fatalf("flagship group must fuse: %+v", h)
	}
	if h.Class != "horiz.fused" {
		t.Fatalf("class = %q", h.Class)
	}
	// sum(X*X) reduces to S2: A=0, B=1, C=0.
	if a := h.Aggs[0]; a.A != 0 || a.B != 1 || a.C != 0 {
		t.Fatalf("sum(X^2) closed form = %+v", a)
	}

	declines := []struct {
		name  string
		kinds []CellType
		aggs  []matrix.AggOp
		roots []*CNode
	}{
		{"non-affine root", []CellType{CellColAgg, CellFullAgg},
			sums[:2], []*CNode{Main(0), Unary(matrix.UnExp, Main(0))}},
		{"side input", []CellType{CellColAgg, CellFullAgg},
			sums[:2], []*CNode{Main(0), Binary(matrix.BinMul, Main(0), Side(0, AccessCell, 0))}},
		{"min aggregate", []CellType{CellColAgg, CellFullAgg},
			[]matrix.AggOp{matrix.AggSum, matrix.AggMin}, []*CNode{Main(0), Main(0)}},
		{"two column roots", []CellType{CellColAgg, CellColAgg},
			sums[:2], []*CNode{Main(0), sq}},
		{"three map roots", []CellType{CellColAgg, CellNoAgg, CellNoAgg, CellNoAgg},
			append(sums[:3:3], matrix.AggSum),
			[]*CNode{Main(0), axpy, Binary(matrix.BinMul, Main(0), Lit(2)), Main(0)}},
	}
	for _, d := range declines {
		if BuildHFused(hTestPlan(d.kinds, d.aggs, d.roots...)) != nil {
			t.Fatalf("%s must decline the fused body", d.name)
		}
	}
	// Non-horizontal plans never fuse.
	if BuildHFused(&Plan{Type: TemplateCell, Root: Main(0), Cell: CellNoAgg}) != nil {
		t.Fatal("non-horizontal plan must decline")
	}
}

// TestHFusedRowClosedForms drives each specialized row variant directly and
// checks power sums, column partials, and map outputs against per-element
// evaluation.
func TestHFusedRowClosedForms(t *testing.T) {
	axpy := Binary(matrix.BinAdd, Binary(matrix.BinMul, Main(0), Lit(3)), Lit(1))
	neg := Binary(matrix.BinSub, Lit(0), Main(0))
	sq := Binary(matrix.BinMul, Main(0), Main(0))
	variants := []struct {
		name  string
		kinds []CellType
		roots []*CNode
	}{
		{"col", []CellType{CellColAgg}, []*CNode{axpy}},
		{"col+map", []CellType{CellColAgg, CellNoAgg}, []*CNode{axpy, neg}},
		{"col+2map", []CellType{CellColAgg, CellNoAgg, CellNoAgg}, []*CNode{Main(0), axpy, neg}},
		{"map", []CellType{CellNoAgg}, []*CNode{axpy}},
		{"2map", []CellType{CellNoAgg, CellNoAgg}, []*CNode{axpy, neg}},
		{"agg-only", []CellType{CellFullAgg}, []*CNode{sq}},
	}
	md := []float64{0.5, -1.25, 2, 0, 3.5, -0.75}
	for _, vt := range variants {
		aggs := make([]matrix.AggOp, len(vt.roots))
		for i := range aggs {
			aggs[i] = matrix.AggSum
		}
		h := BuildHFused(hTestPlan(vt.kinds, aggs, vt.roots...))
		if h == nil {
			t.Fatalf("%s: must fuse", vt.name)
		}
		var col []float64
		if len(h.Cols) == 1 {
			col = make([]float64, len(md))
		}
		dsts := make([][]float64, len(h.Maps))
		for i := range dsts {
			dsts[i] = make([]float64, len(md))
		}
		s1, s2 := h.Row(md, 0, len(md), col, dsts)
		ws1, ws2 := 0.0, 0.0
		for _, v := range md {
			ws1 += v
			ws2 += v * v
		}
		if math.Abs(s1-ws1) > 1e-12 || math.Abs(s2-ws2) > 1e-12 {
			t.Fatalf("%s: power sums (%v,%v) want (%v,%v)", vt.name, s1, s2, ws1, ws2)
		}
		ctx := NewCtx(nil)
		for mi, m := range h.Maps {
			fn := compileCell(vt.roots[m.Root])
			for j, v := range md {
				want := fn(ctx, v, 0, j)
				if math.Abs(dsts[mi][j]-want) > 1e-12 {
					t.Fatalf("%s map %d cell %d: got %v want %v", vt.name, mi, j, dsts[mi][j], want)
				}
			}
		}
		if len(h.Cols) == 1 {
			fn := compileCell(vt.roots[h.Cols[0].Root])
			for j, v := range md {
				want := fn(ctx, v, 0, j)
				if math.Abs(col[j]-want) > 1e-12 {
					t.Fatalf("%s col cell %d: got %v want %v", vt.name, j, col[j], want)
				}
			}
		}
	}
}

// TestFingerprintNoCollisions pins the fingerprint→chunk contract: a
// fingerprint fully determines the specialized body's behavior, so plans
// differing only in constants, aggregation op, or output kind must NOT
// collide — and plans with equal fingerprints must compile to behaviorally
// identical chunk programs (safe to share across plan-cache entries).
func TestFingerprintNoCollisions(t *testing.T) {
	mk := func(a, b float64) *Plan {
		root := Binary(matrix.BinAdd, Binary(matrix.BinMul, Main(0), Lit(a)), Lit(b))
		return &Plan{Type: TemplateCell, Cell: CellNoAgg, Root: root}
	}
	p1, p2, p1b := mk(3, 1), mk(5, 2), mk(3, 1)
	op1, op2, op1b := Compile(p1, "TMPA"), Compile(p2, "TMPB"), Compile(p1b, "TMPA2")
	// Different constants feed the specialized body, so they must separate
	// the fingerprints (a collision here would let a cached chunk compute
	// with the wrong coefficients).
	if op1.Fingerprint == op2.Fingerprint {
		t.Fatalf("constant-divergent plans must not collide: %q", op1.Fingerprint)
	}
	if op1.Fingerprint != op1b.Fingerprint {
		t.Fatalf("identical plans must share a fingerprint: %q vs %q",
			op1.Fingerprint, op1b.Fingerprint)
	}
	// Equal fingerprints → behaviorally identical chunk programs.
	if op1.Chunk == nil || op1b.Chunk == nil {
		t.Fatal("affine maps must select chunk programs")
	}
	in := []float64{1, -2, 0.5}
	d1 := make([]float64, len(in))
	d1b := make([]float64, len(in))
	ctx := NewCtx(nil)
	op1.Chunk.Map(ctx, in, d1, 0, 0, len(in))
	op1b.Chunk.Map(ctx, in, d1b, 0, 0, len(in))
	for i, v := range in {
		if math.Abs(d1[i]-(v*3+1)) > 1e-12 || d1[i] != d1b[i] {
			t.Fatalf("equal-fingerprint chunks diverged: %v vs %v", d1, d1b)
		}
	}
	// Same root, different aggregation semantics must also separate.
	agg := func(op matrix.AggOp) string {
		return Compile(&Plan{Type: TemplateCell, Cell: CellFullAgg, AggOp: op,
			Root: Main(0)}, "TMPG").Fingerprint
	}
	if agg(matrix.AggSum) == agg(matrix.AggMin) {
		t.Fatal("sum vs min over the same root must not collide")
	}
	// Horizontal groups: constants separate, and each fused body bakes the
	// coefficients of its own plan.
	mkH := func(a, b float64) *Plan {
		return hTestPlan([]CellType{CellColAgg, CellNoAgg},
			[]matrix.AggOp{matrix.AggSum, matrix.AggSum},
			Main(0),
			Binary(matrix.BinAdd, Binary(matrix.BinMul, Main(0), Lit(a)), Lit(b)))
	}
	h1, h2 := Compile(mkH(3, 1), "TMPH1"), Compile(mkH(5, 2), "TMPH2")
	if h1.Fingerprint == h2.Fingerprint {
		t.Fatal("constant-divergent horizontal groups must not collide")
	}
	if h1.HFused.Maps[0].A != 3 || h2.HFused.Maps[0].A != 5 {
		t.Fatalf("fused bodies must bake their own constants: %v vs %v",
			h1.HFused.Maps[0], h2.HFused.Maps[0])
	}
}

// TestChunkClassesIncludesFused: the dispatch-counter classes of a fused
// horizontal operator include the whole-group class alongside the per-root
// classes.
func TestChunkClassesIncludesFused(t *testing.T) {
	p := hTestPlan([]CellType{CellColAgg, CellFullAgg},
		[]matrix.AggOp{matrix.AggSum, matrix.AggSum},
		Main(0), Binary(matrix.BinMul, Main(0), Main(0)))
	op := Compile(p, "TMPC")
	found := false
	for _, c := range op.ChunkClasses() {
		if c == "horiz.fused" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ChunkClasses() = %v, want horiz.fused present", op.ChunkClasses())
	}
	if ip := CompileInterpreted(p, "TMPCI"); len(ip.ChunkClasses()) != 0 {
		t.Fatalf("interpreted operator must have no chunk classes, got %v", ip.ChunkClasses())
	}
}
