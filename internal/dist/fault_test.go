package dist

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dml"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/obs"
)

// fastBackoff keeps chaos sweeps quick: microsecond backoff, same logic.
func fastBackoff(p *FaultPlan) *FaultPlan {
	p.BackoffBase = time.Microsecond
	p.BackoffCap = 50 * time.Microsecond
	return p
}

// chaosOps runs one operator of every scheduler shape (pure map, map with
// broadcast side, tree-reduced aggregate, broadcast mapmm) on cl and
// checks each distributed result against the local kernel within 1e-9.
// ok=false results (degradation) are tolerated when allowDegrade is set —
// the runtime would recompute locally — but silent corruption never is.
func chaosOps(t *testing.T, tag string, cl *Cluster, x *matrix.Matrix, allowDegrade bool) {
	t.Helper()
	w := matrix.Rand(x.Cols, 4, 1, -1, 1, 99)
	rv := matrix.Rand(1, x.Cols, 1, 1, 2, 98)
	cases := []struct {
		name string
		h    *hop.Hop
		ins  []*matrix.Matrix
		want *matrix.Matrix
	}{
		{"abs", &hop.Hop{Kind: hop.OpUnary, UnOp: matrix.UnAbs, Cols: int64(x.Cols)},
			[]*matrix.Matrix{x}, matrix.Unary(matrix.UnAbs, x)},
		{"div/rowvec", &hop.Hop{Kind: hop.OpBinary, BinOp: matrix.BinDiv, Cols: int64(x.Cols)},
			[]*matrix.Matrix{x, rv}, matrix.Binary(matrix.BinDiv, x, rv)},
		{"sum", &hop.Hop{Kind: hop.OpAggUnary, AggOp: matrix.AggSum, AggDir: matrix.DirAll},
			[]*matrix.Matrix{x}, matrix.Agg(matrix.AggSum, matrix.DirAll, x)},
		{"mapmm", &hop.Hop{Kind: hop.OpMatMult, Rows: int64(x.Rows), Cols: 4},
			[]*matrix.Matrix{x, w}, matrix.MatMult(x, w)},
	}
	for _, tc := range cases {
		got, ok := cl.ExecHop(tc.h, tc.ins, obs.Span{})
		if !ok {
			if allowDegrade {
				continue
			}
			t.Fatalf("%s %s: unexpected degradation", tag, tc.name)
		}
		if !got.EqualsApprox(tc.want, 1e-9) {
			t.Fatalf("%s %s: faulty distributed result differs from local", tag, tc.name)
		}
	}
}

// TestChaosMatchesLocal is the chaos property sweep: seeds × executor
// counts × kill points × transient rates, every combination required to
// produce results identical to local execution (within 1e-9 — map-only
// stages are bit-identical; tree reductions reassociate). The sweep also
// asserts the injection actually happened: a chaos suite that never
// injects a fault tests nothing.
func TestChaosMatchesLocal(t *testing.T) {
	x := matrix.Rand(257, 12, 1, -2, 2, 42)
	var transients, kills, reassigned, retries int64
	for seed := int64(1); seed <= 4; seed++ {
		for _, execs := range []int{3, 6} {
			for _, kill := range []struct{ exec, at int }{{-1, 0}, {0, 1}, {1, 5}, {2, 12}} {
				for _, rate := range []float64{0, 0.2} {
					if rate == 0 && kill.at == 0 {
						continue // nothing injected; covered by overhead tests
					}
					plan := fastBackoff(&FaultPlan{
						Seed:          seed,
						TransientRate: rate,
						KillExecutor:  kill.exec,
						KillAtTask:    int64(kill.at),
					})
					cl := NewCluster(WithFaultPlan(plan), WithExecutors(execs))
					cl.Blocksize = 16
					tag := fmt.Sprintf("seed=%d e=%d kill=%d@%d rate=%.1f",
						seed, execs, kill.exec, kill.at, rate)
					chaosOps(t, tag, cl, x, false)
					st := cl.FaultStats()
					transients += st.TransientInjected
					kills += st.Kills
					reassigned += st.Reassigned
					retries += st.Retries
					if kill.at > 0 && st.Kills != 1 {
						t.Fatalf("%s: kills = %d, want exactly 1", tag, st.Kills)
					}
					if st.Degraded != 0 {
						t.Fatalf("%s: unexpected degradation (%d)", tag, st.Degraded)
					}
					if len(cl.DeadExecutors()) != int(st.Kills) {
						t.Fatalf("%s: DeadExecutors()=%v vs kills=%d",
							tag, cl.DeadExecutors(), st.Kills)
					}
				}
			}
		}
	}
	if transients == 0 || kills == 0 || reassigned == 0 || retries == 0 {
		t.Fatalf("chaos sweep injected nothing: transients=%d kills=%d reassigned=%d retries=%d",
			transients, kills, reassigned, retries)
	}
}

// TestFaultInjectionDeterminism pins the seedable-plan contract: two
// clusters running the same plan over the same operator sequence inject
// the same faults, and a different seed injects a different pattern.
func TestFaultInjectionDeterminism(t *testing.T) {
	x := matrix.Rand(257, 12, 1, -2, 2, 7)
	run := func(seed int64) FaultStats {
		cl := NewCluster(WithFaultPlan(fastBackoff(&FaultPlan{Seed: seed, TransientRate: 0.25})))
		cl.Blocksize = 16
		chaosOps(t, fmt.Sprintf("seed=%d", seed), cl, x, false)
		return cl.FaultStats()
	}
	a, b, c := run(3), run(3), run(4)
	if a.TransientInjected == 0 {
		t.Fatal("plan injected no transient faults")
	}
	if a.TransientInjected != b.TransientInjected || a.Retries != b.Retries {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.TransientInjected == c.TransientInjected && a.Retries == c.Retries {
		t.Fatalf("different seeds injected identical fault pattern: %+v", a)
	}
}

// TestKillReshipsBroadcasts checks broadcast recovery on executor loss:
// the side input's handle was cached before the kill, and the kill charges
// a re-shipment of every cached handle (the survivors re-fetch the blocks
// the dead executor held) while keeping the handle cached.
func TestKillReshipsBroadcasts(t *testing.T) {
	x := matrix.Rand(500, 8, 1, -1, 1, 11)
	w := matrix.Rand(8, 3, 1, -1, 1, 12)
	h := &hop.Hop{Kind: hop.OpMatMult, Rows: 500, Cols: 3}
	cl := NewCluster(WithFaultPlan(&FaultPlan{Seed: 1}))
	cl.Blocksize = 16
	if _, ok := cl.ExecHop(h, []*matrix.Matrix{x, w}, obs.Span{}); !ok {
		t.Fatal("warmup degraded")
	}
	before := cl.BytesBroadcast()
	// Arm the kill only now, so the warmup broadcast is already cached.
	cl.SetFaultPlan(&FaultPlan{Seed: 1, KillExecutor: 2, KillAtTask: 1})
	got, ok := cl.ExecHop(h, []*matrix.Matrix{x, w}, obs.Span{})
	if !ok {
		t.Fatal("kill run degraded")
	}
	if !got.EqualsApprox(matrix.MatMult(x, w), 1e-9) {
		t.Fatal("result wrong after executor kill")
	}
	st := cl.FaultStats()
	if st.Kills != 1 || st.BcastReships == 0 || st.BcastReshipBytes == 0 {
		t.Fatalf("kill did not re-ship broadcasts: %+v", st)
	}
	if cl.BytesBroadcast() != before+st.BcastReshipBytes {
		t.Fatalf("re-ship bytes not charged to broadcast volume: %d -> %d (reship %d)",
			before, cl.BytesBroadcast(), st.BcastReshipBytes)
	}
	if hits, _, _ := cl.BroadcastCacheStats(); hits < 1 {
		t.Fatal("handle evicted by kill; survivors' replicas should keep it cached")
	}
}

// TestSpeculativeExecution forces one straggling panel (large injected
// delay) among many fast ones and requires the scheduler to launch a
// speculative duplicate that wins and cancels the sleeping original.
func TestSpeculativeExecution(t *testing.T) {
	x := matrix.Rand(600, 8, 1, -1, 1, 21)
	for seed := int64(1); seed <= 40; seed++ {
		plan := &FaultPlan{
			Seed:           seed,
			StragglerRate:  0.04,
			StragglerDelay: 250 * time.Millisecond,
			SpecMultiple:   2,
		}
		cl := NewCluster(WithFaultPlan(plan))
		cl.Blocksize = 16
		h := &hop.Hop{Kind: hop.OpUnary, UnOp: matrix.UnAbs, Cols: 8}
		got, ok := cl.ExecHop(h, []*matrix.Matrix{x}, obs.Span{})
		if !ok {
			t.Fatalf("seed %d: degraded", seed)
		}
		if !got.EqualsApprox(matrix.Unary(matrix.UnAbs, x), 1e-9) {
			t.Fatalf("seed %d: speculative result differs from local", seed)
		}
		st := cl.FaultStats()
		if st.StragglersInjected == 0 {
			continue // this seed drew no straggler; try the next
		}
		if st.SpecLaunched == 0 {
			t.Fatalf("seed %d: straggler injected but no speculation launched: %+v", seed, st)
		}
		if st.SpecWins == 0 {
			t.Fatalf("seed %d: speculation launched but the 250ms straggler beat it: %+v", seed, st)
		}
		return
	}
	t.Fatal("no seed in 1..40 injected a straggler at rate 0.04 over ~24 panels")
}

// TestDegradeToLocalFallback exhausts recovery (certain transient failure)
// and checks graceful degradation end to end: ExecHop reports ok=false
// instead of wrong data, the session transparently recomputes on the local
// backend, the run completes with correct results, and the dist.degraded
// marker lands in the session metrics.
func TestDegradeToLocalFallback(t *testing.T) {
	cl := NewCluster(WithFaultPlan(fastBackoff(&FaultPlan{
		Seed:          5,
		TransientRate: 1, // every attempt fails: budget must exhaust
		RetryBudget:   8,
	})))
	cl.Blocksize = 16
	x := matrix.Rand(400, 10, 1, -1, 1, 31)
	h := &hop.Hop{Kind: hop.OpUnary, UnOp: matrix.UnAbs, Cols: 10}
	if _, ok := cl.ExecHop(h, []*matrix.Matrix{x}, obs.Span{}); ok {
		t.Fatal("certain failure did not degrade")
	}
	if st := cl.FaultStats(); st.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1", st.Degraded)
	}

	cfg := codegen.DefaultConfig()
	cfg.Mode = codegen.ModeBase
	cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2 // force the dist backend
	s := dml.NewSession(cfg)
	s.Dist = cl
	s.Out = io.Discard
	s.Bind("X", x)
	if err := s.Run("y = abs(X)\nprint(sum(y))"); err != nil {
		t.Fatalf("degraded run must complete via local fallback, got %v", err)
	}
	y, err := s.Get("y")
	if err != nil {
		t.Fatal(err)
	}
	if !y.EqualsApprox(matrix.Unary(matrix.UnAbs, x), 1e-9) {
		t.Fatal("local fallback produced a wrong result")
	}
	if got := s.Metrics().Counter("dist.degraded"); got < 1 {
		t.Fatalf("dist.degraded marker missing from metrics: %d", got)
	}
}

// TestMinSurvivorsFloor: killing the only executor of a 1-executor cluster
// leaves the survivor count below the floor, so the operator must degrade
// rather than run on nothing.
func TestMinSurvivorsFloor(t *testing.T) {
	cl := NewCluster(WithFaultPlan(&FaultPlan{Seed: 1, KillExecutor: 0, KillAtTask: 1}),
		WithExecutors(1))
	cl.Blocksize = 16
	x := matrix.Rand(300, 6, 1, -1, 1, 41)
	h := &hop.Hop{Kind: hop.OpUnary, UnOp: matrix.UnAbs, Cols: 6}
	if _, ok := cl.ExecHop(h, []*matrix.Matrix{x}, obs.Span{}); ok {
		t.Fatal("sole-executor kill did not degrade")
	}
	st := cl.FaultStats()
	if st.Kills != 1 || st.Degraded == 0 {
		t.Fatalf("want kill + degradation, got %+v", st)
	}
	// The cluster stays degraded for dist work but keeps answering ok=false,
	// so later operators keep falling back instead of hanging.
	if _, ok := cl.ExecHop(h, []*matrix.Matrix{x}, obs.Span{}); ok {
		t.Fatal("dead cluster accepted work")
	}
}

// TestFaultyClusterConcurrentSessions is the race gate for the fault
// scheduler: concurrent sessions share one faulty cluster (transient
// failures + stragglers + one kill) and every session's results must match
// local execution.
func TestFaultyClusterConcurrentSessions(t *testing.T) {
	cl := NewCluster(WithFaultPlan(fastBackoff(&FaultPlan{
		Seed:           9,
		TransientRate:  0.05,
		StragglerRate:  0.02,
		StragglerDelay: 200 * time.Microsecond,
		KillExecutor:   4,
		KillAtTask:     40,
	})))
	cl.Blocksize = 16
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cfg := codegen.DefaultConfig()
			cfg.Mode = codegen.ModeBase
			x := matrix.Rand(700, 16, 1, -1, 1, seed)
			w := matrix.Rand(16, 4, 1, -1, 1, seed+50)
			cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2
			s := dml.NewSession(cfg)
			s.Dist = cl
			s.Out = io.Discard
			s.Bind("X", x)
			s.Bind("W", w)
			if err := s.Run("acc = X %*% W\ns = sum(abs(acc))\nprint(s)"); err != nil {
				errs <- err
				return
			}
			acc, err := s.Get("acc")
			if err != nil {
				errs <- err
				return
			}
			if !acc.EqualsApprox(matrix.MatMult(x, w), 1e-9) {
				errs <- fmt.Errorf("session %d: faulty dist result differs from local", seed)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cl.FaultStats()
	if st.TransientInjected == 0 || st.Kills != 1 {
		t.Fatalf("concurrent chaos injected too little: %+v", st)
	}
}

// TestExplainFaultsSection checks the FAULTS subsection of the DISTRIBUTED
// explain block: a faulty session's Explain report must show the injected
// and recovered fault counts of the shadow run.
func TestExplainFaultsSection(t *testing.T) {
	cl := NewCluster(WithFaultPlan(fastBackoff(&FaultPlan{Seed: 6, TransientRate: 0.2})))
	cl.Blocksize = 16
	cfg := codegen.DefaultConfig()
	cfg.Mode = codegen.ModeBase
	x := matrix.Rand(900, 14, 1, -1, 1, 61)
	cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2
	s := dml.NewSession(cfg)
	s.Dist = cl
	s.Out = io.Discard
	s.Bind("X", x)
	text, err := s.Explain("y = abs(X)\nprint(sum(y))")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DISTRIBUTED (this run)", "FAULTS", "retries", "speculation"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain output missing %q:\n%s", want, text)
		}
	}
	if cl.FaultStats().TransientInjected == 0 {
		t.Fatal("shadow run injected no faults")
	}
}

// TestFaultCountersResetAndKeys checks Reset clears the fault statistics
// and FaultCounters exposes every metric suffix the interpreter merges.
func TestFaultCountersResetAndKeys(t *testing.T) {
	cl := NewCluster(WithFaultPlan(fastBackoff(&FaultPlan{Seed: 2, TransientRate: 0.3})))
	cl.Blocksize = 16
	x := matrix.Rand(257, 12, 1, -2, 2, 51)
	chaosOps(t, "reset", cl, x, false)
	if cl.FaultStats().TransientInjected == 0 {
		t.Fatal("no faults injected before Reset")
	}
	cl.Reset()
	if st := cl.FaultStats(); st != (FaultStats{}) {
		t.Fatalf("Reset left fault counters: %+v", st)
	}
	for _, k := range []string{
		"fault.transient", "fault.stragglers", "fault.kills", "fault.reassigned",
		"retry.attempts", "retry.backoff.ns", "spec.launched", "spec.wins",
		"bcast.reships", "bcast.reship.bytes", "degraded",
	} {
		if _, ok := cl.FaultCounters()[k]; !ok {
			t.Fatalf("FaultCounters missing %q", k)
		}
	}
	if !cl.FaultActive() {
		t.Fatal("FaultActive false with a plan attached")
	}
	if NewCluster().FaultActive() {
		t.Fatal("FaultActive true without a plan")
	}
}
