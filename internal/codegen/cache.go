package codegen

import (
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"sysml/internal/cplan"
	"sysml/internal/hop"
)

// A PlanCache caches compiled fused operators keyed by CPlan hash, avoiding
// redundant code generation and compilation across DAGs and during dynamic
// recompilation (§2.1).
//
// Internally a PlanCache is a view over a shared cacheCore: the core owns
// the sharded operator store, the eviction policy, the admission counters,
// and the compiled-class name sequence; each view carries its own hit/miss
// counters. A single-tenant session uses one view over its private core;
// a serving engine hands every tenant its own View() over one shared core,
// which gives tenants shared compiled plans but isolated accounting.
type PlanCache struct {
	core *cacheCore

	hits   atomic.Int64 // this view's lookups served from the core
	misses atomic.Int64 // this view's lookups that compiled
	invals atomic.Int64 // operators this view invalidated for re-optimization
}

// cacheShard is one lock domain of the store. Sharding by plan hash keeps
// concurrent tenants' lookups from serializing on a single mutex.
type cacheShard struct {
	mu    sync.Mutex
	ops   map[uint64]*cplan.Operator
	order []uint64       // insertion order for FIFO eviction when bounded
	seen  map[uint64]int // compile attempts of not-yet-admitted plans
}

type cacheCore struct {
	enabled    bool
	shardMax   int // per-shard entry bound (0 = unbounded)
	admitAfter int // admit a plan on its Nth compile (1 = always admit)
	shards     []*cacheShard

	classSeq      atomic.Int64 // compiled-class name sequence (TMP%d)
	hits          atomic.Int64 // aggregated across all views
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64

	// Chunk-program admission accounting: every fresh compile either
	// resolved its structural fingerprint to specialized chunk bodies
	// (counted per class) or fell back to the interpreted genexec-style
	// program (one generic miss). Surfaced as codegen.chunk.hit.<class> /
	// codegen.chunk.miss in session and engine metrics.
	chunkMu     sync.Mutex
	chunkHits   map[string]int64
	chunkMisses int64
}

// countChunks records chunk-program admission accounting for one freshly
// compiled operator.
func (c *cacheCore) countChunks(op *cplan.Operator) {
	classes := op.ChunkClasses()
	c.chunkMu.Lock()
	defer c.chunkMu.Unlock()
	if len(classes) == 0 {
		c.chunkMisses++
		return
	}
	if c.chunkHits == nil {
		c.chunkHits = map[string]int64{}
	}
	for _, cl := range classes {
		c.chunkHits[cl]++
	}
}

// ChunkCounters returns the chunk-program admission counters aggregated
// across all views of this cache's core: compiled operators whose
// fingerprints mapped to specialized chunk bodies (by class) and the
// number that compiled with only the generic interpreted program.
func (pc *PlanCache) ChunkCounters() (byClass map[string]int64, misses int64) {
	c := pc.core
	c.chunkMu.Lock()
	defer c.chunkMu.Unlock()
	byClass = make(map[string]int64, len(c.chunkHits))
	for k, v := range c.chunkHits {
		byClass[k] = v
	}
	return byClass, c.chunkMisses
}

// seenTrackCap bounds the admission bookkeeping per shard: when the map of
// not-yet-admitted plan hashes outgrows it, the shard forgets and restarts
// (one-off plans then need admitAfter fresh sightings again — exactly the
// plans admission control exists to keep out).
const seenTrackCap = 4096

// NewPlanCache returns an unbounded single-shard plan cache; when disabled
// it compiles every request fresh (the Fig. 11 "without plan cache"
// configuration).
func NewPlanCache(enabled bool) *PlanCache {
	return NewPlanCacheSized(enabled, 0)
}

// NewPlanCacheSized returns a single-shard plan cache holding at most
// maxEntries compiled operators (0 = unbounded); when full, the oldest
// entry is evicted. Every plan is admitted on first compile.
func NewPlanCacheSized(enabled bool, maxEntries int) *PlanCache {
	return NewSharedPlanCache(enabled, maxEntries, 1, 1)
}

// NewSharedPlanCache returns a plan cache built for concurrent multi-tenant
// use: the store is split across shards lock domains (rounded up to at
// least 1), bounded to maxEntries total (0 = unbounded, distributed evenly
// across shards), and a plan is only admitted to the store on its
// admitAfter-th compile (1 = always admit; 2 = admit on the second compile,
// keeping one-off plans from evicting hot tenants' operators). Tenants
// should each take a View for isolated hit/miss accounting.
func NewSharedPlanCache(enabled bool, maxEntries, shards, admitAfter int) *PlanCache {
	if shards < 1 {
		shards = 1
	}
	if admitAfter < 1 {
		admitAfter = 1
	}
	shardMax := 0
	if maxEntries > 0 {
		shardMax = (maxEntries + shards - 1) / shards
	}
	core := &cacheCore{enabled: enabled, shardMax: shardMax, admitAfter: admitAfter}
	core.shards = make([]*cacheShard, shards)
	for i := range core.shards {
		core.shards[i] = &cacheShard{ops: map[uint64]*cplan.Operator{}, seen: map[uint64]int{}}
	}
	return &PlanCache{core: core}
}

// View returns a new view over the same underlying store with fresh
// hit/miss counters. Views share compiled operators, eviction, admission
// state, and the class-name sequence; only the accounting is per-view.
func (pc *PlanCache) View() *PlanCache { return &PlanCache{core: pc.core} }

// NextClassID returns the next compiled-class sequence number, unique
// across all views of this cache's core (generated operator names must not
// collide between tenants compiling concurrently).
func (pc *PlanCache) NextClassID() int { return int(pc.core.classSeq.Add(1)) }

func (c *cacheCore) shardFor(h uint64) *cacheShard {
	return c.shards[h%uint64(len(c.shards))]
}

// GetOrCompile returns the cached operator for an equivalent CPlan or
// compiles a new one via the configured compiler path. Compilation happens
// outside the shard lock, so concurrent misses on the same plan may compile
// twice; the first insert wins and the duplicate is dropped.
func (pc *PlanCache) GetOrCompile(p *cplan.Plan, cfg *Config, nextClass func() string) (op *cplan.Operator, hit bool, err error) {
	core := pc.core
	h := p.Hash()
	var sh *cacheShard
	if core.enabled {
		sh = core.shardFor(h)
		sh.mu.Lock()
		cached, ok := sh.ops[h]
		sh.mu.Unlock()
		if ok {
			pc.hits.Add(1)
			core.hits.Add(1)
			return cached, true, nil
		}
		pc.misses.Add(1)
		core.misses.Add(1)
	}
	name := nextClass()
	if cfg.Compiler == CompilerJavac {
		op, err = cplan.CompileSlow(p, name)
		if err != nil {
			return nil, false, err
		}
	} else {
		op = cplan.Compile(p, name)
	}
	core.countChunks(op)
	if core.enabled {
		sh.mu.Lock()
		if _, exists := sh.ops[h]; !exists && sh.admit(h, core.admitAfter) {
			if core.shardMax > 0 {
				for len(sh.order) >= core.shardMax {
					delete(sh.ops, sh.order[0])
					sh.order = sh.order[1:]
					core.evictions.Add(1)
				}
				sh.order = append(sh.order, h)
			}
			sh.ops[h] = op
		}
		sh.mu.Unlock()
	}
	return op, false, nil
}

// admit records one compile of plan h and reports whether it may enter the
// store. Called with the shard lock held.
func (sh *cacheShard) admit(h uint64, admitAfter int) bool {
	if admitAfter <= 1 {
		return true
	}
	if len(sh.seen) >= seenTrackCap {
		sh.seen = map[uint64]int{}
	}
	sh.seen[h]++
	if sh.seen[h] >= admitAfter {
		delete(sh.seen, h)
		return true
	}
	return false
}

// Invalidate removes the compiled operators for the given plan hashes from
// the shared store, returning how many were actually present. Used by
// mid-script re-optimization: when a block's plan is recompiled under
// corrected estimates, its stale operators must not be served to any view.
//
// Removal is symmetric across the shard's three structures — ops, the FIFO
// order, and the admission (seen) counters. Dropping only the ops entry
// would leave a ghost hash in order that a later eviction pass "evicts"
// (inflating the eviction counter shown in per-tenant stats) while
// silently shrinking the shard's effective capacity; leaving the seen
// counter would let a re-admitted plan skip admission control.
func (pc *PlanCache) Invalidate(hashes ...uint64) int {
	core := pc.core
	if !core.enabled {
		return 0
	}
	removed := 0
	for _, h := range hashes {
		sh := core.shardFor(h)
		sh.mu.Lock()
		if _, ok := sh.ops[h]; ok {
			delete(sh.ops, h)
			for i, v := range sh.order {
				if v == h {
					sh.order = append(sh.order[:i], sh.order[i+1:]...)
					break
				}
			}
			removed++
		}
		delete(sh.seen, h)
		sh.mu.Unlock()
	}
	if removed > 0 {
		pc.invals.Add(int64(removed))
		core.invalidations.Add(int64(removed))
	}
	return removed
}

// Invalidations returns the number of operators this view invalidated.
func (pc *PlanCache) Invalidations() int64 { return pc.invals.Load() }

// TotalInvalidations returns invalidations aggregated across every view of
// the underlying store.
func (pc *PlanCache) TotalInvalidations() int64 { return pc.core.invalidations.Load() }

// Contains reports whether an operator for plan hash h is currently
// admitted to the store.
func (pc *PlanCache) Contains(h uint64) bool {
	sh := pc.core.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.ops[h]
	return ok
}

// Size returns the number of cached operators across all shards.
func (pc *PlanCache) Size() int {
	n := 0
	for _, sh := range pc.core.shards {
		sh.mu.Lock()
		n += len(sh.ops)
		sh.mu.Unlock()
	}
	return n
}

// Counters returns this view's lifetime hit/miss counts and the core's
// eviction count (evictions are a property of the shared store, not of any
// one view). A disabled cache counts nothing (every compile bypasses it).
func (pc *PlanCache) Counters() (hits, misses, evictions int64) {
	return pc.hits.Load(), pc.misses.Load(), pc.core.evictions.Load()
}

// TotalCounters returns hit/miss/eviction counts aggregated across every
// view of the underlying store — the engine-wide cache picture.
func (pc *PlanCache) TotalCounters() (hits, misses, evictions int64) {
	c := pc.core
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// PlanHashes collects the CPlan hashes of every fused operator spliced
// into the DAG, deduplicated in topological order — the plan-cache keys a
// mid-script re-optimization must Invalidate when it discards the DAG.
func PlanHashes(d *hop.DAG) []uint64 {
	var hashes []uint64
	seen := map[uint64]bool{}
	for _, h := range hop.TopoOrder(d.Roots()) {
		if h.Kind != hop.OpSpoof {
			continue
		}
		op, ok := h.Spoof.(*cplan.Operator)
		if !ok || op == nil || op.Plan == nil {
			continue
		}
		hv := op.Plan.Hash()
		if !seen[hv] {
			seen[hv] = true
			hashes = append(hashes, hv)
		}
	}
	return hashes
}

// Stats aggregates codegen statistics across DAG compilations (paper
// Table 3, Figs. 11-12).
type Stats struct {
	DAGsOptimized     int64
	CPlansConstructed int64
	OperatorsCompiled int64
	CacheHits         int64

	PlansEvaluated    int64
	HypotheticalPlans *big.Int

	CodegenTime time.Duration
	CompileTime time.Duration
}

// NewStats returns zeroed statistics.
func NewStats() *Stats { return &Stats{HypotheticalPlans: new(big.Int)} }
