package bench

import (
	"fmt"
	"io"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dml"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/rewrite"
)

// AblationOrder quantifies the search-space linearization choice (§4.4):
// evaluating the fuse-all plan first yields a tight initial upper bound,
// so cost-based pruning fires early; the inverted order starts from the
// materialize-everything plan and prunes far less.
func AblationOrder(o Options) *Table {
	t := &Table{
		Title:   "Ablation: search-space linearization (evaluated plans w/ cost pruning)",
		Columns: []string{"pattern", "fuse-all first", "inverted"},
	}
	patterns := []struct {
		name  string
		build func() *hop.DAG
	}{
		{"cse-chain", func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 10000, 40, -1)
			y := d.Read("Y", 10000, 40, -1)
			r := d.Binary(matrix.BinMul, x, y)
			s := d.Binary(matrix.BinAdd, r, d.Lit(1))
			u := d.Unary(matrix.UnExp, s)
			d.Output("a", d.Sum(u))
			d.Output("b", d.RowSums(u))
			d.Output("c", d.Sum(d.Binary(matrix.BinMul, r, r)))
			return d
		}},
		{"mlogreg-core", func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 20000, 50, -1)
			v := d.Read("v", 50, 3, -1)
			p := d.Read("P", 20000, 3, -1)
			q := d.Binary(matrix.BinMul, p, d.MatMult(x, v))
			h := d.MatMult(d.Transpose(x),
				d.Binary(matrix.BinSub, q, d.Binary(matrix.BinMul, p, d.RowSums(q))))
			d.Output("H", h)
			d.Output("obj", d.Sum(q))
			return d
		}},
	}
	for _, pat := range patterns {
		row := []string{pat.name}
		for _, inverted := range []bool{false, true} {
			cfg := codegen.DefaultConfig()
			cfg.EnableStructPrune = false // isolate the cost-pruning effect
			d, _ := rewrite.Apply(pat.build())
			memo := codegen.Explore(d.Roots(), &cfg)
			parts := codegen.BuildPartitions(memo, d.Roots())
			var evaluated int64
			for _, p := range parts {
				en := codegen.NewEnumerator(&cfg, memo, p)
				en.InvertOrder = inverted
				en.Best()
				evaluated += en.Evaluated
			}
			row = append(row, fmt.Sprintf("%d", evaluated))
		}
		t.Add(row...)
	}
	return t
}

// AblationMAgg measures the multi-aggregate template: the shared-input
// aggregates of Fig. 1(c) with and without MAgg combining.
func AblationMAgg(o Options) *Table {
	t := &Table{
		Title:   "Ablation: multi-aggregate fusion (sum(X*Y), sum(X*Z)) [ms]",
		Columns: []string{"cells", "Gen", "Gen w/o MAgg"},
	}
	script := "s1 = sum(X * Y)\ns2 = sum(X * Z)"
	cols := 100
	for _, rows := range []int{o.rows(10000), o.rows(100000)} {
		inputs := map[string]*matrix.Matrix{
			"X": matrix.Rand(rows, cols, 1, -1, 1, 91),
			"Y": matrix.Rand(rows, cols, 1, -1, 1, 92),
			"Z": matrix.Rand(rows, cols, 1, -1, 1, 93),
		}
		with := timeScript(codegen.ModeGen, o.Reps, script, inputs, nil)
		// Without MAgg: two independent fused aggregates re-scan X.
		cfg := codegen.DefaultConfig()
		cfg.DisableMAgg = true
		without := timeScriptCfg(cfg, o.Reps, script, inputs, nil)
		t.Add(fmt.Sprintf("%d", rows*cols), ms(with), ms(without))
	}
	return t
}

// AblationDominance counts memo entries removed by dominance pruning on a
// CSE-heavy DAG (used for the heuristic selectors).
func AblationDominance(o Options) *Table {
	t := &Table{
		Title:   "Ablation: dominance pruning (memo entries)",
		Columns: []string{"pattern", "before", "after"},
	}
	d := hop.NewDAG()
	x := d.Read("X", 1000, 50, -1)
	y := d.Read("Y", 1000, 50, -1)
	m1 := d.Binary(matrix.BinMul, x, y)  // single consumer chain
	m2 := d.Binary(matrix.BinAdd, m1, x) // consumed twice below
	d.Output("s", d.Sum(d.Binary(matrix.BinMul, m2, y)))
	d.Output("r", d.RowSums(m2))
	dd, _ := rewrite.Apply(d)
	cfg := codegen.DefaultConfig()
	memo := codegen.Explore(dd.Roots(), &cfg)
	before := countEntries(memo)
	codegen.PruneDominated(memo)
	after := countEntries(memo)
	t.Add("cse-mixed", fmt.Sprintf("%d", before), fmt.Sprintf("%d", after))
	return t
}

func countEntries(m *codegen.Memo) int {
	n := 0
	for _, g := range m.Groups {
		n += len(g.Entries)
	}
	return n
}

// timeScriptCfg is timeScript with an explicit config.
func timeScriptCfg(cfg codegen.Config, reps int, script string,
	inputs map[string]*matrix.Matrix, scalars map[string]float64) time.Duration {
	s := newSessionCfg(cfg, inputs, scalars)
	return Median(reps, func() {
		if err := s.Run(script); err != nil {
			panic(err)
		}
	})
}

func newSessionCfg(cfg codegen.Config, inputs map[string]*matrix.Matrix,
	scalars map[string]float64) *dml.Session {
	s := dml.NewSession(cfg)
	s.Out = io.Discard
	for n, m := range inputs {
		s.Bind(n, m)
	}
	for n, v := range scalars {
		s.BindScalar(n, v)
	}
	return s
}
