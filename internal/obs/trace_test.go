package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanHierarchy(t *testing.T) {
	var c Collector
	root := StartSpan(nil, &c, "run")
	child := root.Child("optimize", KV("partition", 0))
	grand := child.Child("enumerate")
	if root.ID() == 0 || child.ID() == 0 || grand.ID() == 0 {
		t.Fatal("spans with a sink must have nonzero IDs")
	}
	if root.ID() == child.ID() || child.ID() == grand.ID() {
		t.Fatal("span IDs must be unique")
	}
	grand.End()
	child.Annotate(KV("evaluated", 7))
	child.End()
	root.End()

	ev := c.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	byName := map[string]Event{}
	for _, e := range ev {
		byName[e.Name] = e
	}
	if byName["optimize"].Parent != byName["run"].Span {
		t.Fatalf("optimize.Parent = %d, want run's ID %d",
			byName["optimize"].Parent, byName["run"].Span)
	}
	if byName["enumerate"].Parent != byName["optimize"].Span {
		t.Fatal("enumerate must be a child of optimize")
	}
	if byName["run"].Parent != 0 {
		t.Fatal("root span must have Parent 0")
	}
	attrs := byName["optimize"].Attrs
	if len(attrs) != 2 || attrs[0].Key != "partition" || attrs[1].Key != "evaluated" {
		t.Fatalf("optimize attrs = %+v", attrs)
	}
}

func TestChildWithoutSinkIsNoop(t *testing.T) {
	m := NewMetrics()
	root := StartSpan(m, nil, "run")
	if root.Active() {
		t.Fatal("sinkless span must not be Active")
	}
	child := root.Child("op")
	if child.ID() != 0 {
		t.Fatal("sinkless child must be a zero span")
	}
	if d := child.End(); d != 0 {
		t.Fatal("sinkless child End must be free")
	}
	// Phase still records its histogram without a sink — and even on a
	// zero root span.
	ph := Span{}.Phase(m, "compile")
	time.Sleep(100 * time.Microsecond)
	ph.End()
	if h := m.Snapshot().Hist("phase.compile"); h.Count != 1 {
		t.Fatalf("phase histogram not recorded on zero receiver: %+v", h)
	}
}

func TestTraceSinkChromeJSON(t *testing.T) {
	ts := NewTraceSink()
	root := StartSpan(nil, ts, "run")
	time.Sleep(200 * time.Microsecond)
	child := root.Child("execute", KV("hop", "spoof(Cell)"))
	time.Sleep(200 * time.Microsecond)
	child.End()
	root.End()
	ts.Emit(Event{Kind: EventExplain, Text: "ignored"})

	if ts.Len() != 2 {
		t.Fatalf("buffered %d spans, want 2", ts.Len())
	}
	var buf bytes.Buffer
	if _, err := ts.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must parse as a plain JSON array of trace events.
	var evs []TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 2 {
		t.Fatalf("got %d trace events, want 2", len(evs))
	}
	// Sorted parent-first, ts in µs relative to trace start, ph "X".
	run, exec := evs[0], evs[1]
	if run.Name != "run" || exec.Name != "execute" {
		t.Fatalf("order = %s, %s; want run, execute", run.Name, exec.Name)
	}
	for _, e := range evs {
		if e.Ph != "X" || e.PID != 1 || e.TID != 1 {
			t.Fatalf("bad event header: %+v", e)
		}
	}
	if run.TS != 0 {
		t.Fatalf("trace must start at ts 0, got %g", run.TS)
	}
	if exec.TS < run.TS || exec.TS+exec.Dur > run.TS+run.Dur+1e-9 {
		t.Fatalf("child [%g, %g] not contained in parent [%g, %g]",
			exec.TS, exec.TS+exec.Dur, run.TS, run.TS+run.Dur)
	}
	if exec.Args["hop"] != "spoof(Cell)" {
		t.Fatalf("child args = %+v", exec.Args)
	}
	if exec.Args["parent"] == nil {
		t.Fatal("child must carry its parent span ID in args")
	}
}
