package dml

import (
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/runtime"
)

// blockCompiler translates one statement block into a HOP DAG, using the
// current symbol table for input dimensions (sizes are known at block
// compile time, mirroring SystemML's dynamic recompilation).
type blockCompiler struct {
	d         *hop.DAG
	env       runtime.Env
	nnzHints  map[string]int64    // caller-supplied sparsity estimates (BindWithNnz)
	vars      map[string]*hop.Hop // assigned within the block
	reads     map[string]*hop.Hop
	constVals map[string]float64 // block-local compile-time constants
}

func newBlockCompiler(env runtime.Env) *blockCompiler {
	return &blockCompiler{
		d:         hop.NewDAG(),
		env:       env,
		vars:      map[string]*hop.Hop{},
		reads:     map[string]*hop.Hop{},
		constVals: map[string]float64{},
	}
}

func (c *blockCompiler) assign(name string, e Expr) error {
	h, err := c.compile(e)
	if err != nil {
		return err
	}
	// Track compile-time constant scalars so later index bounds and
	// datagen arguments in the same block can resolve them.
	if v, ok := c.constEval(e); ok {
		c.constVals[name] = v
	} else {
		delete(c.constVals, name)
	}
	c.vars[name] = h
	c.d.Output(name, h)
	return nil
}

func (c *blockCompiler) varHop(name string, line int) (*hop.Hop, error) {
	if h, ok := c.vars[name]; ok {
		return h, nil
	}
	if h, ok := c.reads[name]; ok {
		return h, nil
	}
	m, ok := c.env[name]
	if !ok {
		return nil, &UnboundVarError{Line: line, Name: name}
	}
	// A caller-supplied nonzero hint (BindWithNnz) overrides the exact
	// scan; the re-optimization check drops hints the runtime observes to
	// be wrong, so a bad estimate costs at most one mis-planned execution.
	nnz := int64(m.Nnz())
	if hint, ok := c.nnzHints[name]; ok {
		nnz = hint
	}
	h := c.d.Read(name, int64(m.Rows), int64(m.Cols), nnz)
	c.reads[name] = h
	return h, nil
}

var binOps = map[string]matrix.BinOp{
	"+": matrix.BinAdd, "-": matrix.BinSub, "*": matrix.BinMul,
	"/": matrix.BinDiv, "^": matrix.BinPow,
	"<": matrix.BinLt, "<=": matrix.BinLe, ">": matrix.BinGt,
	">=": matrix.BinGe, "==": matrix.BinEq, "!=": matrix.BinNeq,
	"&": matrix.BinAnd, "&&": matrix.BinAnd, "|": matrix.BinOr, "||": matrix.BinOr,
}

var unaryCalls = map[string]matrix.UnOp{
	"exp": matrix.UnExp, "log": matrix.UnLog, "sqrt": matrix.UnSqrt,
	"abs": matrix.UnAbs, "sign": matrix.UnSign, "round": matrix.UnRound,
	"floor": matrix.UnFloor, "ceil": matrix.UnCeil, "sigmoid": matrix.UnSigmoid,
}

func (c *blockCompiler) compile(e Expr) (*hop.Hop, error) {
	switch n := e.(type) {
	case *Num:
		return c.d.Lit(n.Value), nil
	case *Ident:
		return c.varHop(n.Name, n.Line)
	case *BinExpr:
		if n.Op == "%*%" {
			l, err := c.compile(n.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compile(n.R)
			if err != nil {
				return nil, err
			}
			if l.Cols != r.Rows {
				return nil, shapeErrf(n.Line, "%%*%% shape mismatch %dx%d vs %dx%d",
					l.Rows, l.Cols, r.Rows, r.Cols)
			}
			return c.d.MatMult(l, r), nil
		}
		op, ok := binOps[n.Op]
		if !ok {
			return nil, parseErrf(n.Line, "unsupported operator %q", n.Op)
		}
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		return c.d.Binary(op, l, r), nil
	case *UnExpr:
		in, err := c.compile(n.E)
		if err != nil {
			return nil, err
		}
		if n.Op == "-" {
			return c.d.Unary(matrix.UnNeg, in), nil
		}
		return c.d.Unary(matrix.UnNot, in), nil
	case *Call:
		return c.compileCall(n)
	case *IndexExpr:
		return c.compileIndex(n)
	case *Str:
		return nil, parseErrf(0, "string literal outside print")
	}
	return nil, parseErrf(0, "unsupported expression %T", e)
}

func (c *blockCompiler) compileCall(n *Call) (*hop.Hop, error) {
	if op, ok := unaryCalls[n.Name]; ok {
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		return c.d.Unary(op, in), nil
	}
	switch n.Name {
	case "sum", "mean":
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		if in.IsScalar() {
			return in, nil
		}
		op := matrix.AggSum
		if n.Name == "mean" {
			op = matrix.AggMean
		}
		return c.d.Agg(op, matrix.DirAll, in), nil
	case "rowSums", "colSums", "rowMeans", "colMeans", "rowMaxs", "colMaxs", "rowMins", "colMins":
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		dir := matrix.DirRow
		if n.Name[0] == 'c' {
			dir = matrix.DirCol
		}
		op := matrix.AggSum
		switch {
		case n.Name == "rowMeans" || n.Name == "colMeans":
			op = matrix.AggMean
		case n.Name == "rowMaxs" || n.Name == "colMaxs":
			op = matrix.AggMax
		case n.Name == "rowMins" || n.Name == "colMins":
			op = matrix.AggMin
		}
		return c.d.Agg(op, dir, in), nil
	case "min", "max":
		op := matrix.AggMin
		bop := matrix.BinMin
		if n.Name == "max" {
			op, bop = matrix.AggMax, matrix.BinMax
		}
		if len(n.Args) == 2 {
			l, err := c.compile(n.Args[0])
			if err != nil {
				return nil, err
			}
			r, err := c.compile(n.Args[1])
			if err != nil {
				return nil, err
			}
			return c.d.Binary(bop, l, r), nil
		}
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		return c.d.Agg(op, matrix.DirAll, in), nil
	case "nrow", "ncol":
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		if n.Name == "nrow" {
			return c.d.Lit(float64(in.Rows)), nil
		}
		return c.d.Lit(float64(in.Cols)), nil
	case "t":
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		return c.d.Transpose(in), nil
	case "rowIndexMax":
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		return c.d.RowIndexMaxOp(in), nil
	case "cbind", "rbind":
		if len(n.Args) != 2 {
			return nil, parseErrf(n.Line, "%s needs 2 arguments", n.Name)
		}
		l, err := c.compile(n.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.Args[1])
		if err != nil {
			return nil, err
		}
		if n.Name == "cbind" {
			return c.d.CBindOp(l, r), nil
		}
		return c.d.RBindOp(l, r), nil
	case "cumsum":
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		return c.d.CumsumOp(in), nil
	case "diag":
		in, err := c.oneArg(n)
		if err != nil {
			return nil, err
		}
		return c.d.DiagOp(in), nil
	case "as.scalar", "as.matrix", "as.double", "as.integer":
		return c.oneArg(n)
	case "matrix":
		v, err := c.constArg(n, 0, "")
		if err != nil {
			return nil, err
		}
		rows, err := c.constArg(n, -1, "rows")
		if err != nil {
			return nil, err
		}
		cols, err := c.constArg(n, -1, "cols")
		if err != nil {
			return nil, err
		}
		return c.d.FillGen(int64(rows), int64(cols), v), nil
	case "rand":
		rows, err := c.constArg(n, -1, "rows")
		if err != nil {
			return nil, err
		}
		cols, err := c.constArg(n, -1, "cols")
		if err != nil {
			return nil, err
		}
		sp := c.constArgOr(n, "sparsity", 1)
		lo := c.constArgOr(n, "min", 0)
		hi := c.constArgOr(n, "max", 1)
		seed := c.constArgOr(n, "seed", 7)
		return c.d.Rand(int64(rows), int64(cols), sp, lo, hi, int64(seed)), nil
	case "seq":
		if len(n.Args) < 2 {
			return nil, parseErrf(n.Line, "seq needs from, to")
		}
		from, ok1 := c.constEval(n.Args[0])
		to, ok2 := c.constEval(n.Args[1])
		incr := 1.0
		ok3 := true
		if len(n.Args) > 2 {
			incr, ok3 = c.constEval(n.Args[2])
		}
		if !ok1 || !ok2 || !ok3 {
			return nil, parseErrf(n.Line, "seq arguments must be compile-time constants")
		}
		g := c.d.FillGen(int64((to-from)/incr)+1, 1, 0)
		g.Gen = hop.GenSeq
		g.GenArgs = []float64{from, to, incr}
		return g, nil
	}
	return nil, parseErrf(n.Line, "unknown function %q", n.Name)
}

func (c *blockCompiler) oneArg(n *Call) (*hop.Hop, error) {
	if len(n.Args) != 1 {
		return nil, parseErrf(n.Line, "%s needs 1 argument", n.Name)
	}
	return c.compile(n.Args[0])
}

func (c *blockCompiler) constArg(n *Call, pos int, name string) (float64, error) {
	var e Expr
	if name != "" {
		e = n.Named[name]
	}
	if e == nil && pos >= 0 && pos < len(n.Args) {
		e = n.Args[pos]
	}
	if e == nil {
		return 0, parseErrf(n.Line, "%s missing argument %s", n.Name, name)
	}
	v, ok := c.constEval(e)
	if !ok {
		return 0, parseErrf(n.Line, "argument %s of %s must be a compile-time constant", name, n.Name)
	}
	return v, nil
}

func (c *blockCompiler) constArgOr(n *Call, name string, def float64) float64 {
	e := n.Named[name]
	if e == nil {
		return def
	}
	if v, ok := c.constEval(e); ok {
		return v
	}
	return def
}

// constEval resolves compile-time scalar constants: literals, arithmetic
// over constants, scalars already bound in the environment, and nrow/ncol
// of known variables.
func (c *blockCompiler) constEval(e Expr) (float64, bool) {
	switch n := e.(type) {
	case *Num:
		return n.Value, true
	case *Ident:
		if v, ok := c.constVals[n.Name]; ok {
			return v, true
		}
		if h, ok := c.vars[n.Name]; ok {
			if h.Kind == hop.OpLiteral {
				return h.Value, true
			}
			return 0, false
		}
		if m, ok := c.env[n.Name]; ok && m.Rows == 1 && m.Cols == 1 {
			return m.Scalar(), true
		}
		return 0, false
	case *UnExpr:
		if n.Op == "-" {
			v, ok := c.constEval(n.E)
			return -v, ok
		}
	case *BinExpr:
		l, ok1 := c.constEval(n.L)
		r, ok2 := c.constEval(n.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		if op, ok := binOps[n.Op]; ok {
			return op.Apply(l, r), true
		}
	case *Call:
		if n.Name == "nrow" || n.Name == "ncol" {
			if id, ok := n.Args[0].(*Ident); ok {
				var h *hop.Hop
				if v, ok := c.vars[id.Name]; ok {
					h = v
				} else if m, ok := c.env[id.Name]; ok {
					if n.Name == "nrow" {
						return float64(m.Rows), true
					}
					return float64(m.Cols), true
				}
				if h != nil {
					if n.Name == "nrow" {
						return float64(h.Rows), true
					}
					return float64(h.Cols), true
				}
			}
		}
	}
	return 0, false
}

func (c *blockCompiler) compileIndex(n *IndexExpr) (*hop.Hop, error) {
	x, err := c.compile(n.X)
	if err != nil {
		return nil, err
	}
	bound := func(e Expr, def int64) (int64, error) {
		if e == nil {
			return def, nil
		}
		v, ok := c.constEval(e)
		if !ok {
			return 0, shapeErrf(n.Line, "index bounds must be compile-time constants")
		}
		return int64(v), nil
	}
	rl, err := bound(n.RL, 1)
	if err != nil {
		return nil, err
	}
	ru, err := bound(n.RU, x.Rows)
	if err != nil {
		return nil, err
	}
	cl, err := bound(n.CL, 1)
	if err != nil {
		return nil, err
	}
	cu, err := bound(n.CU, x.Cols)
	if err != nil {
		return nil, err
	}
	// 1-based inclusive -> 0-based half-open.
	return c.d.Index(x, rl-1, ru, cl-1, cu), nil
}
