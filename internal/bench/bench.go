// Package bench implements the experiment harness: one driver per table
// and figure of the paper's evaluation section (§5). Each driver generates
// its workload, runs the relevant system variants (Base, Fused, Gen,
// Gen-FA, Gen-FNR), and prints the same rows/series the paper reports.
// Absolute numbers differ from the paper's cluster; the shapes (who wins,
// by what factor, where crossovers fall) are the reproduction target (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dml"
	"sysml/internal/matrix"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table as aligned ASCII.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Modes are the five system variants compared throughout §5.
var Modes = []codegen.Mode{codegen.ModeBase, codegen.ModeFused, codegen.ModeGen,
	codegen.ModeGenFA, codegen.ModeGenFNR}

// ModeNames renders mode column headers.
func ModeNames() []string {
	out := make([]string, len(Modes))
	for i, m := range Modes {
		out[i] = m.String()
	}
	return out
}

// Median times a function: one warmup run plus reps timed runs, reporting
// the median.
func Median(reps int, f func()) time.Duration {
	f() // warmup (JIT-compilation analog: closure assembly, caches)
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// secs formats a duration in seconds.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// runScript executes a script once through a fresh session configured for
// the mode, binding the given inputs; it returns the session.
func runScript(mode codegen.Mode, script string, inputs map[string]*matrix.Matrix,
	scalars map[string]float64) (*dml.Session, error) {
	cfg := codegen.DefaultConfig()
	cfg.Mode = mode
	s := dml.NewSession(cfg)
	s.Out = io.Discard
	for n, m := range inputs {
		s.Bind(n, m)
	}
	for n, v := range scalars {
		s.BindScalar(n, v)
	}
	return s, s.Run(script)
}

// timeScript times repeated executions of a script under one mode with a
// persistent session (prepared-script JMLC style: the plan cache is warm
// after the first run, mirroring §5.2's setup).
func timeScript(mode codegen.Mode, reps int, script string,
	inputs map[string]*matrix.Matrix, scalars map[string]float64) time.Duration {
	cfg := codegen.DefaultConfig()
	cfg.Mode = mode
	s := dml.NewSession(cfg)
	s.Out = io.Discard
	for n, m := range inputs {
		s.Bind(n, m)
	}
	for n, v := range scalars {
		s.BindScalar(n, v)
	}
	return Median(reps, func() {
		if err := s.Run(script); err != nil {
			panic(fmt.Sprintf("bench script failed (%v): %v", mode, err))
		}
	})
}

// PhaseBreakdown runs a script once under the given mode and attributes
// wall time to the pipeline phases recorded by the session's trace spans:
// "parse", "compile" (block HOP construction + rewrites), "optimize"
// (fusion plan selection + code generation), and "execute" (kernels and
// fused operators). The map is keyed by phase name.
func PhaseBreakdown(mode codegen.Mode, script string, inputs map[string]*matrix.Matrix,
	scalars map[string]float64) (map[string]time.Duration, error) {
	s, err := runScript(mode, script, inputs, scalars)
	if err != nil {
		return nil, err
	}
	snap := s.Metrics()
	out := map[string]time.Duration{}
	for name, h := range snap.Hists {
		if phase, ok := strings.CutPrefix(name, "phase."); ok {
			out[phase] = time.Duration(h.Sum * float64(time.Second))
		}
	}
	return out, nil
}

// Options configures the harness scale; Scale multiplies default row
// counts (1.0 = laptop default documented in EXPERIMENTS.md).
type Options struct {
	Scale float64
	Reps  int
	Out   io.Writer
}

// DefaultOptions returns laptop-scale defaults.
func DefaultOptions(w io.Writer) Options { return Options{Scale: 1, Reps: 3, Out: w} }

func (o Options) rows(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 8 {
		n = 8
	}
	return n
}
