package compress

import (
	"math"
	"testing"

	"sysml/internal/matrix"
)

// wireCases cover every group encoding: DDC (low cardinality), RLE (sorted
// runs), OLE (sparse with few distinct non-zeros), UC (random), co-coded
// groups, and a constant column.
func wireCases() map[string]*matrix.Matrix {
	runs := matrix.NewDense(4000, 1)
	rd := runs.Dense()
	for i := range rd {
		rd[i] = float64(i / 400)
	}
	constant := matrix.NewDense(300, 2)
	cd := constant.Dense()
	for i := 0; i < 300; i++ {
		cd[2*i] = 7
	}
	sparse := matrix.Rand(2000, 3, 0.08, 1, 4, 41)
	sd := sparse.ToDense()
	for i, v := range sd.Dense() {
		sd.Dense()[i] = math.Floor(v)
	}
	return map[string]*matrix.Matrix{
		"low-card": lowCardinality(800, 5, 9, 40),
		"runs":     runs,
		"constant": constant,
		"ole":      sd,
		"random":   matrix.Rand(200, 4, 1, -1, 1, 42),
	}
}

func TestWireRoundTrip(t *testing.T) {
	for name, m := range wireCases() {
		cm := Compress(m, DefaultOptions())
		buf := Encode(cm)
		if got, want := int64(len(buf)), WireSizeBytes(cm); got != want {
			t.Fatalf("%s: WireSizeBytes = %d, encoded length = %d", name, want, got)
		}
		dec, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if dec.Rows != cm.Rows || dec.Cols != cm.Cols {
			t.Fatalf("%s: decoded shape %dx%d, want %dx%d", name, dec.Rows, dec.Cols, cm.Rows, cm.Cols)
		}
		if !dec.Decompress().EqualsApprox(m.ToDense(), 0) {
			t.Fatalf("%s: wire round trip changed values", name)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for name, b := range map[string][]byte{
		"empty":     nil,
		"magic":     []byte("NOPE"),
		"truncated": Encode(Compress(lowCardinality(100, 2, 4, 43), DefaultOptions()))[:20],
	} {
		if _, err := Decode(b); err == nil {
			t.Fatalf("%s: Decode accepted invalid payload", name)
		}
	}
}

func TestDenseWireBytes(t *testing.T) {
	// Low-cardinality payloads win; random doubles must decline so traffic
	// accounting never undercharges incompressible shuffles.
	lc := lowCardinality(3000, 4, 6, 44)
	w, ok := DenseWireBytes(lc)
	if !ok || w >= lc.SizeBytes() {
		t.Fatalf("low-card dict codec: ok=%v bytes=%d (raw %d)", ok, w, lc.SizeBytes())
	}
	if _, ok := DenseWireBytes(matrix.Rand(500, 4, 1, -1, 1, 45)); ok {
		t.Fatal("random payload should not claim a dict-codec win")
	}
	if _, ok := DenseWireBytes(matrix.Rand(500, 4, 0.05, 1, 2, 46)); ok {
		t.Fatal("sparse matrices are out of scope for the dense codec")
	}
}

func TestEstimateRatio(t *testing.T) {
	lc := lowCardinality(5000, 6, 8, 47)
	if est := EstimateRatio(lc, 0); est.Ratio < 2 {
		t.Fatalf("low-cardinality estimate ratio %.2f, want >= 2", est.Ratio)
	}
	rnd := matrix.Rand(5000, 6, 1, -1, 1, 48)
	if est := EstimateRatio(rnd, 0); est.Ratio > 1.5 {
		t.Fatalf("random data estimate ratio %.2f, want ~1", est.Ratio)
	}
	constant := matrix.NewDense(4000, 3)
	if est := EstimateRatio(constant, 0); est.Ratio < 10 {
		t.Fatalf("constant columns estimate ratio %.2f, want large", est.Ratio)
	}
}

func TestOLESizeBytesCountsOffsetLists(t *testing.T) {
	// Offset lists carry a per-list header: total size must exceed the raw
	// offset payload (the seed undercounted exactly this).
	m := matrix.Rand(3000, 1, 0.1, 1, 3, 49)
	md := m.ToDense()
	for i, v := range md.Dense() {
		md.Dense()[i] = math.Floor(v)
	}
	cm := Compress(md, Options{CoCode: false, MaxDistinct: 1 << 16})
	ole, ok := cm.Groups[0].(*OLEGroup)
	if !ok {
		t.Fatalf("expected OLE group, got %T", cm.Groups[0])
	}
	var offsets int64
	raw := int64(0)
	for _, o := range ole.offsets {
		raw += int64(len(o)) * 4
		offsets++
	}
	minWant := raw + offsets*oleListHeaderBytes
	if ole.SizeBytes() < minWant {
		t.Fatalf("OLE SizeBytes %d misses offset-list headers (want >= %d)", ole.SizeBytes(), minWant)
	}
}

func TestAttachRegistry(t *testing.T) {
	m := lowCardinality(400, 3, 5, 50)
	if Of(m) != nil {
		t.Fatal("fresh matrix should have no attachment")
	}
	cm := Compress(m, DefaultOptions())
	Attach(m, cm)
	if Of(m) != cm {
		t.Fatal("Attach/Of round trip failed")
	}
	Drop(m)
	if Of(m) != nil {
		t.Fatal("Drop left the attachment")
	}
	Decline(m, "test reason")
	if r, ok := DeclineReason(m); !ok || r != "test reason" {
		t.Fatalf("DeclineReason = %q, %v", r, ok)
	}
	if Of(m) != nil {
		t.Fatal("a declined matrix must not report a compressed form")
	}
	Drop(m)
}

func TestReleaseDropsAttachment(t *testing.T) {
	m := matrix.NewDense(300, 2)
	Attach(m, Compress(m, DefaultOptions()))
	m.Release()
	if Of(m) != nil {
		t.Fatal("Release must drop the attachment (storage is recycled)")
	}
}

func TestSummary(t *testing.T) {
	m := lowCardinality(500, 4, 6, 51)
	cm := Compress(m, Options{CoCode: false, MaxDistinct: 1 << 16})
	if s := Summary(cm); s == "" {
		t.Fatal("Summary empty for a compressed matrix")
	}
}

func TestMapIntoAndCodesMatchValueAt(t *testing.T) {
	fn := func(v float64, c int) float64 { return 2*v + 1 } // not sparse safe
	for name, m := range wireCases() {
		cm := Compress(m, DefaultOptions())
		for _, g := range cm.Groups {
			cols := g.Cols()
			// dst is the full-width output: MapInto writes at the group's
			// absolute column positions.
			dst := make([]float64, cm.Rows*cm.Cols)
			MapInto(g, dst, cm.Cols, 0, cm.Rows, fn)
			for r := 0; r < cm.Rows; r++ {
				for j, c := range cols {
					want := fn(g.ValueAt(r, j), c)
					if dst[r*cm.Cols+c] != want {
						t.Fatalf("%s: MapInto(%d,%d) = %v, want %v", name, r, c, dst[r*cm.Cols+c], want)
					}
				}
			}
			codes := Codes(g)
			if codes == nil {
				continue // UC has no dictionary
			}
			// Codes must index tuples in ForEachDistinct order.
			var tuples [][]float64
			g.ForEachDistinct(func(vals []float64, count int) {
				tuples = append(tuples, append([]float64(nil), vals...))
			})
			for r := 0; r < cm.Rows; r++ {
				tup := tuples[codes[r]]
				for j := range cols {
					if tup[j] != g.ValueAt(r, j) {
						t.Fatalf("%s: Codes row %d tuple mismatch", name, r)
					}
				}
			}
		}
	}
}
