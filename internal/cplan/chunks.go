package cplan

import (
	"math"

	"sysml/internal/matrix"
	"sysml/internal/vector"
)

// Specialized AOT chunk programs: tight Go loops composed from the
// internal/vector kernels, selected by structural fingerprint at plan-cache
// admission. They are the repo's stand-in for SystemML's JIT-compiled
// genexec bodies (Flare-style native loops): when a compiled cell root
// matches the fingerprint normal form, the runtime skeletons dispatch
// straight to these functions instead of walking the interpreted
// CellVecProgram instruction list (and far instead of the per-cell closure
// tree). Unmatched shapes carry a nil chunk and keep the interpreted path —
// dispatch is always transparent to results.
//
// The contract with the runtime skeletons (see runtime/cellwise.go):
//   - a chunk program may be used only when the main input is dense and
//     every side listed in Sides is dense and exactly main-shaped (the same
//     precondition as CellVecProgram.ChunkCompatible);
//   - Map writes dst[do:do+n] from main[lo:lo+n] — directly into the output
//     buffer, eliding the vector-program result-chunk copy;
//   - Agg returns an addition-combinable partial over main[lo:lo+n]
//     (sum-style aggregations only; the aggregation function is baked into
//     the chunk class);
//   - Col accumulates one main row (cols cells at base) into part.

// ChunkKind says which function slot of a ChunkProgram is populated.
type ChunkKind int

// Chunk program kinds, one per output context of a cell root.
const (
	ChunkMap ChunkKind = iota
	ChunkAgg
	ChunkColAgg
)

// ChunkProgram is one specialized cell-root body.
type ChunkProgram struct {
	Class string // fingerprint class, e.g. "cell.axpy", "agg.sumsq"
	Kind  ChunkKind

	Map func(ctx *Ctx, main, dst []float64, lo, do, n int)
	Agg func(ctx *Ctx, main []float64, lo, n int) float64
	Col func(ctx *Ctx, main []float64, base int, part []float64, cols int)

	// Sides lists flat side inputs the program reads; they must be dense
	// and main-shaped at dispatch time.
	Sides []int
}

// BuildChunk returns the specialized chunk program for a cell root in the
// given output context, or nil when the root matches no library shape.
func BuildChunk(root *CNode, cell CellType, agg matrix.AggOp) *ChunkProgram {
	f, ok := normalizeCell(root)
	if !ok || f.isConst {
		return nil
	}
	fp, ok := rootFingerprint(root, cell, agg)
	if !ok {
		return nil
	}
	class := fp[:len(fp)-len("("+f.params()+")")]
	switch cell {
	case CellNoAgg:
		p := &ChunkProgram{Class: class, Kind: ChunkMap, Map: buildMap(f)}
		if f.had >= 0 {
			p.Sides = []int{f.had}
		}
		return p
	case CellFullAgg, CellRowAgg:
		fn := buildAgg(f, agg)
		if fn == nil {
			return nil
		}
		p := &ChunkProgram{Class: class, Kind: ChunkAgg, Agg: fn}
		if f.had >= 0 {
			p.Sides = []int{f.had}
		}
		return p
	case CellColAgg:
		a, b, ok := f.affine()
		if !ok || agg != matrix.AggSum {
			return nil
		}
		return &ChunkProgram{Class: class, Kind: ChunkColAgg, Col: buildColSums(a, b)}
	}
	return nil
}

// buildMap assembles the element map for out = A2·g(A1·x+B1)[·S]+B2,
// specializing the identity-coefficient cases down to single vector-kernel
// calls and keeping the general cases as constant-captured loops.
func buildMap(f cform) func(ctx *Ctx, main, dst []float64, lo, do, n int) {
	a1, b1, a2, b2, gp := f.a1, f.b1, f.a2, f.b2, f.gp
	if f.had >= 0 {
		side := f.had
		if a1 == 1 && b1 == 0 && a2 == 1 && b2 == 0 {
			return func(ctx *Ctx, main, dst []float64, lo, do, n int) {
				vector.MultWrite(main, ctx.Sides[side].DenseData(), dst, lo, lo, do, n)
			}
		}
		return func(ctx *Ctx, main, dst []float64, lo, do, n int) {
			s := ctx.Sides[side].DenseData()
			for i := 0; i < n; i++ {
				dst[do+i] = a2*(a1*main[lo+i]+b1)*s[lo+i] + b2
			}
		}
	}
	switch f.g {
	case gNone:
		a, b, _ := f.affine()
		switch {
		case a == 1 && b == 0:
			return func(_ *Ctx, main, dst []float64, lo, do, n int) {
				vector.CopyWrite(main, dst, lo, do, n)
			}
		case b == 0:
			return func(_ *Ctx, main, dst []float64, lo, do, n int) {
				vector.MultScalarWrite(main, a, dst, lo, do, n)
			}
		default:
			return func(_ *Ctx, main, dst []float64, lo, do, n int) {
				for i := 0; i < n; i++ {
					dst[do+i] = a*main[lo+i] + b
				}
			}
		}
	case gExp:
		if a1 == 1 && b1 == 0 && a2 == 1 && b2 == 0 {
			return func(_ *Ctx, main, dst []float64, lo, do, n int) {
				vector.ExpWrite(main, dst, lo, do, n)
			}
		}
		return func(_ *Ctx, main, dst []float64, lo, do, n int) {
			for i := 0; i < n; i++ {
				dst[do+i] = a2*math.Exp(a1*main[lo+i]+b1) + b2
			}
		}
	case gLog:
		if a1 == 1 && b1 == 0 && a2 == 1 && b2 == 0 {
			return func(_ *Ctx, main, dst []float64, lo, do, n int) {
				vector.LogWrite(main, dst, lo, do, n)
			}
		}
		return func(_ *Ctx, main, dst []float64, lo, do, n int) {
			for i := 0; i < n; i++ {
				dst[do+i] = a2*math.Log(a1*main[lo+i]+b1) + b2
			}
		}
	case gSqrt:
		return func(_ *Ctx, main, dst []float64, lo, do, n int) {
			for i := 0; i < n; i++ {
				dst[do+i] = a2*math.Sqrt(a1*main[lo+i]+b1) + b2
			}
		}
	case gAbs:
		return func(_ *Ctx, main, dst []float64, lo, do, n int) {
			for i := 0; i < n; i++ {
				dst[do+i] = a2*math.Abs(a1*main[lo+i]+b1) + b2
			}
		}
	case gSigmoid:
		if a1 == 1 && b1 == 0 && a2 == 1 && b2 == 0 {
			return func(_ *Ctx, main, dst []float64, lo, do, n int) {
				vector.SigmoidWrite(main, dst, lo, do, n)
			}
		}
		return func(_ *Ctx, main, dst []float64, lo, do, n int) {
			for i := 0; i < n; i++ {
				dst[do+i] = a2/(1+math.Exp(-(a1*main[lo+i]+b1))) + b2
			}
		}
	case gPow2:
		if a1 == 1 && b1 == 0 && a2 == 1 && b2 == 0 {
			return func(_ *Ctx, main, dst []float64, lo, do, n int) {
				vector.Pow2Write(main, dst, lo, do, n)
			}
		}
		return func(_ *Ctx, main, dst []float64, lo, do, n int) {
			for i := 0; i < n; i++ {
				t := a1*main[lo+i] + b1
				dst[do+i] = a2*t*t + b2
			}
		}
	case gRelu:
		return func(_ *Ctx, main, dst []float64, lo, do, n int) {
			for i := 0; i < n; i++ {
				dst[do+i] = a2*math.Max(a1*main[lo+i]+b1, gp) + b2
			}
		}
	}
	return nil
}

// buildAgg assembles the closed-form partial aggregate of the normal form:
// the sum over n cells reduces to the vector kernels Sum/SumSq/DotProduct
// plus coefficient algebra (Σ(a·x+b) = a·Σx + b·n and friends).
func buildAgg(f cform, agg matrix.AggOp) func(ctx *Ctx, main []float64, lo, n int) float64 {
	a1, b1, a2, b2 := f.a1, f.b1, f.a2, f.b2
	switch agg {
	case matrix.AggSum:
		switch {
		case f.had >= 0 && f.g == gNone:
			side := f.had
			if a1 == 1 && b1 == 0 && a2 == 1 && b2 == 0 {
				return func(ctx *Ctx, main []float64, lo, n int) float64 {
					return vector.DotProduct(main, ctx.Sides[side].DenseData(), lo, lo, n)
				}
			}
			// Σ [a2(a1·x+b1)·s + b2] = a2·a1·(x·s) + a2·b1·Σs + b2·n
			return func(ctx *Ctx, main []float64, lo, n int) float64 {
				s := ctx.Sides[side].DenseData()
				return a2*a1*vector.DotProduct(main, s, lo, lo, n) +
					a2*b1*vector.Sum(s, lo, n) + b2*float64(n)
			}
		case f.g == gNone:
			a, b, _ := f.affine()
			if a == 1 && b == 0 {
				return func(_ *Ctx, main []float64, lo, n int) float64 {
					return vector.Sum(main, lo, n)
				}
			}
			return func(_ *Ctx, main []float64, lo, n int) float64 {
				return a*vector.Sum(main, lo, n) + b*float64(n)
			}
		case f.g == gPow2:
			// Σ [a2(a1·x+b1)² + b2] expands over Σx² and Σx.
			if a1 == 1 && b1 == 0 && a2 == 1 && b2 == 0 {
				return func(_ *Ctx, main []float64, lo, n int) float64 {
					return vector.SumSq(main, lo, n)
				}
			}
			return func(_ *Ctx, main []float64, lo, n int) float64 {
				return a2*(a1*a1*vector.SumSq(main, lo, n)+
					2*a1*b1*vector.Sum(main, lo, n)+b1*b1*float64(n)) + b2*float64(n)
			}
		}
	case matrix.AggSumSq:
		a, b, ok := f.affine()
		if !ok {
			return nil
		}
		if a == 1 && b == 0 {
			return func(_ *Ctx, main []float64, lo, n int) float64 {
				return vector.SumSq(main, lo, n)
			}
		}
		return func(_ *Ctx, main []float64, lo, n int) float64 {
			return a*a*vector.SumSq(main, lo, n) +
				2*a*b*vector.Sum(main, lo, n) + b*b*float64(n)
		}
	}
	return nil
}

// buildColSums assembles the per-row column accumulation part[j] += a·x+b.
func buildColSums(a, b float64) func(ctx *Ctx, main []float64, base int, part []float64, cols int) {
	if a == 1 && b == 0 {
		return func(_ *Ctx, main []float64, base int, part []float64, cols int) {
			vector.Add(main, part, base, 0, cols)
		}
	}
	return func(_ *Ctx, main []float64, base int, part []float64, cols int) {
		for j := 0; j < cols; j++ {
			part[j] += a*main[base+j] + b
		}
	}
}

// RowChunkKind identifies a specialized whole-row body.
type RowChunkKind int

// Row chunk kinds.
const (
	RowChunkDot   RowChunkKind = iota // out_i = X_i · S_i (RowRowAgg)
	RowChunkRank1                     // C += X_i ⊗ S_i   (RowColAggT)
)

// RowChunkProgram is a specialized Row-template body: the runtime rowwise
// skeleton runs the whole row loop through vector kernels without the
// register-machine dispatch. Side is the single side input consumed.
type RowChunkProgram struct {
	Class string
	Kind  RowChunkKind
	Side  int
}

// buildRowChunk inspects a compiled row program for a specialized body.
func buildRowChunk(prog *RowProgram) *RowChunkProgram {
	class, side, ok := rowChunkClass(prog)
	if !ok {
		return nil
	}
	kind := RowChunkDot
	if class == "row.rank1" {
		kind = RowChunkRank1
	}
	return &RowChunkProgram{Class: class, Kind: kind, Side: side}
}

// ChunkClasses lists the fingerprint classes of every chunk program
// attached to the operator, in root order; empty when the operator has no
// specialization (pure interpreted dispatch).
func (op *Operator) ChunkClasses() []string {
	var out []string
	if op.Chunk != nil {
		out = append(out, op.Chunk.Class)
	}
	for _, c := range op.MAggChunks {
		if c != nil {
			out = append(out, c.Class)
		}
	}
	if op.RowChunk != nil {
		out = append(out, op.RowChunk.Class)
	}
	if op.HFused != nil {
		out = append(out, op.HFused.Class)
	}
	return out
}
