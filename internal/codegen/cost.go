package codegen

import (
	"fmt"
	"math"
	"sort"

	"sysml/internal/cplan"
	"sysml/internal/hop"
)

// flops estimates the floating-point operations of one HOP.
func flops(h *hop.Hop) float64 {
	switch h.Kind {
	case hop.OpBinary, hop.OpUnary:
		return float64(h.Cells())
	case hop.OpAggUnary, hop.OpRowIndexMax:
		return float64(h.Inputs[0].Cells())
	case hop.OpMatMult:
		a, b := h.Inputs[0], h.Inputs[1]
		return 2 * float64(a.Rows) * float64(b.Cols) * float64(a.Cols) * a.Sparsity()
	case hop.OpTranspose, hop.OpIndex, hop.OpCBind, hop.OpRBind, hop.OpDiag:
		return float64(h.Cells())
	}
	return 0
}

// hfuseMinGain is the minimum modeled saving (seconds) a horizontal merge
// must clear before siblings are fused: below it the shared scan is too
// cheap for the merge to matter and the extra plan surface (a distinct
// multi-output operator class, wider per-row state) is not worth paying.
const hfuseMinGain = 1e-5

// horizontalSavings models what merging k siblings over one shared main
// input saves: the k-1 redundant scans of the main input that separate
// execution would perform.
func horizontalSavings(m CostModel, k int, mainBytes float64) float64 {
	return float64(k-1) * mainBytes / m.ReadBW
}

// horizontalMixPenalty charges the sparse-safety mixing cost of a merged
// scan: the fused skeleton iterates non-zeros only when every root is
// sparse-safe, so merging a sparse-safe sibling with an unsafe one forces
// the safe sibling's ops over all cells instead of stored entries. Zero
// for dense mains and for groups with uniform sparse-safety.
func horizontalMixPenalty(m CostModel, main *hop.Hop, safe []bool, numOps []int) float64 {
	if !main.IsSparse() {
		return 0
	}
	cells := float64(main.Cells())
	nnz := cells * main.Sparsity()
	mergedVisited := nnz
	for _, s := range safe {
		if !s {
			mergedVisited = cells
			break
		}
	}
	var penalty float64
	for i, s := range safe {
		visited := cells
		if s {
			visited = nnz
		}
		penalty += (mergedVisited - visited) * float64(numOps[i]) / m.ComputeBW
	}
	return penalty
}

// declineReason renders a horizontal cost-gate decline deterministically
// for the EXPLAIN report.
func declineReason(saved, gate float64) string {
	return fmt.Sprintf("modeled saving %.3g s below gate %.3g s", saved, gate)
}

// Coster evaluates the analytical cost model (§4.3) for a plan partition
// under an interesting-point assignment q: C(Pi|q) = Σ_p Tw + max(Tr, Tc),
// with cost vectors per fused operator capturing shared reads and CSEs.
type Coster struct {
	cfg  *Config
	memo *Memo
	part *Partition

	q map[Edge]bool // true = materialize: fusion refs over the edge invalid

	visitedMat map[int64]bool
	visitedOp  map[[2]int64]bool
	opSeq      int64
	total      float64
	budget     float64
	exceeded   bool
}

// NewCoster prepares a coster for one partition.
func NewCoster(cfg *Config, m *Memo, p *Partition) *Coster {
	return &Coster{cfg: cfg, memo: m, part: p}
}

// PlanCost computes C(Pi|q); costing stops early (returning +Inf) once the
// partial costs exceed budget (pass +Inf to disable the cutoff).
func (c *Coster) PlanCost(q map[Edge]bool, budget float64) float64 {
	c.q = q
	if c.visitedMat == nil {
		c.visitedMat = map[int64]bool{}
		c.visitedOp = map[[2]int64]bool{}
	} else {
		clear(c.visitedMat)
		clear(c.visitedOp)
	}
	c.total, c.budget, c.exceeded = 0, budget, false
	c.opSeq = 0
	for _, r := range c.part.Roots {
		c.costNode(c.memo.Hop(r))
		if c.exceeded {
			return math.Inf(1)
		}
	}
	return c.total
}

// opCtx is the cost vector of one (potential) fused operator: output size,
// accumulated compute, and distinct input sizes.
type opCtx struct {
	id     int64
	root   *hop.Hop
	tmpl   cplan.TemplateType
	flops  float64
	numOps int
	inputs map[int64]*hop.Hop
}

// rowDispatchFlops is the per-covered-operator, per-row dispatch overhead
// of Row-template programs expressed in FLOP equivalents. Row programs run
// one instruction loop per row; for narrow rows this constant cost can
// exceed the fused work, in which case bulk kernels win and the optimizer
// must know it.
const rowDispatchFlops = 2000

func (c *Coster) costNode(h *hop.Hop) {
	if c.exceeded || c.visitedMat[h.ID] {
		return
	}
	c.visitedMat[h.ID] = true
	if !c.part.Nodes[h.ID] {
		// Input node: produced outside the partition; its read is accounted
		// by the consuming operator.
		return
	}
	entry, ok := c.pickEntry(h)
	if !ok {
		// Basic operator.
		c.addOpCost(h.OutputSizeBytes(), float64(h.ReadInputSizeBytes()), flops(h), 1, h)
		for _, in := range h.Inputs {
			if c.part.Nodes[in.ID] {
				c.costNode(in)
			}
		}
		return
	}
	// Open a fused operator at h.
	c.opSeq++
	cv := &opCtx{id: c.opSeq, root: h, tmpl: entry.Type, inputs: map[int64]*hop.Hop{}}
	c.addToOp(h, entry, cv)
	if entry.Type == cplan.TemplateRow {
		cv.flops += float64(rowMainRows(h)) * float64(cv.numOps) * rowDispatchFlops
	}
	// Operator cost: write output once, read distinct inputs, compute.
	var inBytes float64
	for _, in := range cv.inputs {
		inBytes += float64(in.ReadSizeBytes())
	}
	scale := c.sparsityScale(cv)
	c.addOpCost(h.OutputSizeBytes(), inBytes, cv.flops, scale, h)
	// Recurse into materialized inputs of the fused operator.
	ids := make([]int64, 0, len(cv.inputs))
	for id := range cv.inputs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if c.part.Nodes[id] {
			c.costNode(cv.inputs[id])
		}
	}
}

// addToOp accumulates hop h into the fused operator cv following the memo
// entry's fusion references; memoizing (hop, op) pairs returns zero cost
// for operators reachable over multiple paths within the same fused
// operator, while overlapping operators still count redundant compute.
func (c *Coster) addToOp(h *hop.Hop, entry Entry, cv *opCtx) {
	key := [2]int64{h.ID, cv.id}
	if c.visitedOp[key] {
		return
	}
	c.visitedOp[key] = true
	cv.flops += flops(h)
	cv.numOps++
	for j, in := range h.Inputs {
		if entry.Inputs[j] >= 0 && !c.q[Edge{h.ID, in.ID}] {
			if childEntry, ok := c.pickEntryCompat(in, entry.Type); ok {
				c.addToOp(in, childEntry, cv)
				continue
			}
		}
		cv.inputs[in.ID] = in
	}
}

// addOpCost adds one operator's cost Tw + max(Tr, Tc), using broadcast
// bandwidth for the side inputs of distributed operators.
func (c *Coster) addOpCost(outBytes int64, inBytes, fl, scale float64, h *hop.Hop) {
	m := c.cfg.Costs
	tw := float64(outBytes) / m.WriteBW
	tr := inBytes / m.ReadBW
	if h.ExecType == hop.ExecDist {
		// Broadcast all but the largest input.
		var largest float64
		for _, in := range h.Inputs {
			if s := float64(in.ReadSizeBytes()); s > largest {
				largest = s
			}
		}
		side := inBytes - largest
		if side > 0 {
			tr = largest/m.ReadBW + side/m.BroadcastBW
		}
	}
	tc := fl * scale / m.ComputeBW
	c.total += tw + math.Max(tr*scale, tc)
	if c.total > c.budget {
		c.exceeded = true
	}
}

// sparsityScale returns the factor by which sparsity exploitation scales a
// fused operator's estimates: the main-input sparsity for Outer templates
// and sparse-driving Cell/MAgg templates (§4.3).
func (c *Coster) sparsityScale(cv *opCtx) float64 {
	// Main input: the largest input by cell count; exploit its sparsity.
	var main *hop.Hop
	for _, in := range cv.inputs {
		if main == nil || in.Cells() > main.Cells() {
			main = in
		}
	}
	if main == nil || !main.IsSparse() {
		return 1
	}
	switch cv.tmpl {
	case cplan.TemplateOuter:
		return main.Sparsity()
	case cplan.TemplateRow:
		// genexecSparse binds sparse rows; dense side work per row remains,
		// so scale conservatively.
		return math.Max(main.Sparsity(), 0.05)
	default:
		// Cell/MAgg: approximate sparse-safety by the presence of the
		// sparse main input (construction verifies exactly).
		return math.Max(main.Sparsity(), 0.01)
	}
}

// pickEntry selects the best memo entry at h under assignment q, or
// (zero, false) to execute h as a basic operator. The deterministic rule
// prefers sparsity-exploiting templates, then maximal fusion references.
func (c *Coster) pickEntry(h *hop.Hop) (Entry, bool) {
	g := c.memo.Get(h.ID)
	if g == nil {
		return Entry{}, false
	}
	return c.pick(g, h, -1)
}

func (c *Coster) pickEntryCompat(h *hop.Hop, t cplan.TemplateType) (Entry, bool) {
	g := c.memo.Get(h.ID)
	if g == nil {
		return Entry{}, false
	}
	return c.pick(g, h, int(t))
}

func (c *Coster) pick(g *Group, h *hop.Hop, wantType int) (Entry, bool) {
	best := Entry{}
	bestScore := math.Inf(-1)
	found := false
	for _, e := range g.Entries {
		if wantType >= 0 {
			// Continuing inside an operator of type wantType: same type or
			// mergeable Cell plans, and only open plans can be extended.
			if e.Closed != StatusOpen {
				continue
			}
			if int(e.Type) != wantType && e.Type != cplan.TemplateCell {
				continue
			}
		}
		valid := true
		for j, in := range h.Inputs {
			if e.Inputs[j] >= 0 && c.q[Edge{h.ID, in.ID}] {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		score := float64(e.RefCount())*10 + typePreference(e.Type, h)
		if wantType >= 0 && int(e.Type) == wantType {
			// Continuing the enclosing operator's own template keeps its
			// chain (e.g. the Dot of an Outer plan) intact; merged Cell
			// plans only win for side expressions without same-type plans.
			score += 5
		}
		if score > bestScore {
			best, bestScore, found = e, score, true
		}
	}
	return best, found
}

// typePreference breaks ties between templates: sparsity-exploiting Outer
// templates first when the inputs are sparse, then MAgg, Row, Cell.
func typePreference(t cplan.TemplateType, h *hop.Hop) float64 {
	sparseIn := false
	for _, in := range h.Inputs {
		if in.IsSparse() {
			sparseIn = true
			break
		}
	}
	switch t {
	case cplan.TemplateOuter:
		if sparseIn {
			return 4
		}
		return 1.5
	case cplan.TemplateMAgg:
		return 2
	case cplan.TemplateRow:
		return 2.5
	default:
		return 3 // Cell: the canonical template for element-wise chains
	}
}

// StaticCost is the lower-bound component C_Pi independent of q: reading
// partition inputs, minimal compute (full sparsity exploitation, no
// redundancy), and writing partition roots (§4.4 cost-based pruning).
func (c *Coster) StaticCost() float64 {
	m := c.cfg.Costs
	var t float64
	for _, id := range c.part.Inputs {
		t += float64(c.memo.Hop(id).ReadSizeBytes()) / m.ReadBW
	}
	for id := range c.part.Nodes {
		h := c.memo.Hop(id)
		scale := 1.0
		for _, in := range h.Inputs {
			if in.IsSparse() {
				scale = math.Min(scale, in.Sparsity())
			}
		}
		t += flops(h) * scale / m.ComputeBW
	}
	for _, r := range c.part.Roots {
		t += float64(c.memo.Hop(r).OutputSizeBytes()) / m.WriteBW
	}
	return t
}

// MPCost is the plan-dependent lower-bound component: each distinct
// materialization target assigned true costs at least one write and one
// read (§4.4).
func (c *Coster) MPCost(points []Edge, q []bool) float64 {
	m := c.cfg.Costs
	seen := map[int64]bool{}
	var t float64
	for i, pt := range points {
		if !q[i] || seen[pt.To] {
			continue
		}
		seen[pt.To] = true
		size := float64(c.memo.Hop(pt.To).OutputSizeBytes())
		t += size/m.WriteBW + size/m.ReadBW
	}
	return t
}
