#!/usr/bin/env bash
# CI gate for the sysml repo: static checks, full test suite under the race
# detector, the kernel performance gates (BENCH_kernels.json must report
# "pass": true), and the distributed-backend gates (BENCH_dist.json likewise).
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== kernel gates (fusebench -exp kernels) =="
go run ./cmd/fusebench -exp kernels
if ! grep -q '"pass": true' BENCH_kernels.json; then
  echo "FAIL: BENCH_kernels.json gates did not pass" >&2
  cat BENCH_kernels.json >&2
  exit 1
fi
echo "== distributed gates (fusebench -exp dist) =="
go run ./cmd/fusebench -exp dist
if ! grep -q '"pass": true' BENCH_dist.json; then
  echo "FAIL: BENCH_dist.json gates did not pass" >&2
  cat BENCH_dist.json >&2
  exit 1
fi
echo "OK: all CI gates passed"
