package matrix

import (
	"testing"

	"sysml/internal/par"
)

// Microbenchmarks for the matrix-multiplication kernels and the buffer
// pool. Run with:
//
//	go test ./internal/matrix -bench . -benchmem
func benchRand(rows, cols int, sparsity float64, seed int64) *Matrix {
	return Rand(rows, cols, sparsity, -1, 1, seed)
}

func BenchmarkMatMultDenseDense(b *testing.B) {
	x := benchRand(256, 256, 1, 1)
	y := benchRand(256, 256, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMult(x, y).Release()
	}
}

func BenchmarkMatMultDenseDenseSingleWorker(b *testing.B) {
	old := par.SetMaxWorkers(1)
	defer par.SetMaxWorkers(old)
	x := benchRand(256, 256, 1, 1)
	y := benchRand(256, 256, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMult(x, y).Release()
	}
}

func BenchmarkMatMultSparseDense(b *testing.B) {
	x := benchRand(512, 256, 0.05, 1).ToSparse()
	y := benchRand(256, 128, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMult(x, y).Release()
	}
}

func BenchmarkMatMultSparseSparse(b *testing.B) {
	x := benchRand(512, 512, 0.01, 1).ToSparse()
	y := benchRand(512, 512, 0.01, 2).ToSparse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMult(x, y).Release()
	}
}

func BenchmarkTSMM(b *testing.B) {
	x := benchRand(2000, 200, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TSMM(x).Release()
	}
}

func BenchmarkTSMMSparse(b *testing.B) {
	x := benchRand(2000, 200, 0.05, 1).ToSparse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TSMM(x).Release()
	}
}

// BenchmarkNewDensePooled / Unpooled isolate the buffer pool: an
// allocate-release cycle of a 512×512 matrix hits the free list when the
// pool is on and the Go allocator when it is off.
func BenchmarkNewDensePooled(b *testing.B) {
	old := SetPoolEnabled(true)
	defer SetPoolEnabled(old)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDense(512, 512).Release()
	}
}

func BenchmarkNewDenseUnpooled(b *testing.B) {
	old := SetPoolEnabled(false)
	defer SetPoolEnabled(old)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDense(512, 512).Release()
	}
}
