package codegen

import (
	"sysml/internal/cplan"
	"sysml/internal/hop"
)

// Explorer populates the memo table with all valid partial fusion plans in
// a single bottom-up pass over the HOP DAG (Algorithm 1, OFMC Explore).
type Explorer struct {
	cfg   *Config
	memo  *Memo
	tmpls []Template
}

// Explore runs candidate exploration over all DAG roots and returns the
// populated memo table.
func Explore(roots []*hop.Hop, cfg *Config) *Memo {
	e := &Explorer{cfg: cfg, memo: NewMemo(), tmpls: templates(cfg)}
	for _, r := range roots {
		e.explore(r)
	}
	return e.memo
}

func (e *Explorer) explore(h *hop.Hop) {
	// Memoization of processed operators (lines 1-3).
	if e.memo.visited[h.ID] {
		return
	}
	e.memo.hops[h.ID] = h
	// Recursive candidate exploration (lines 4-6).
	for _, in := range h.Inputs {
		e.explore(in)
	}
	// Open initial operator plans (lines 7-10).
	for _, t := range e.tmpls {
		if t.Open(h) {
			e.memo.add(h, e.createPlans(h, nil, t)...)
		}
	}
	// Fuse and merge operator plans (lines 11-15).
	for _, in := range h.Inputs {
		g := e.memo.Get(in.ID)
		if g == nil {
			continue
		}
		for _, tt := range g.Types() {
			if !g.HasOpenType(tt) {
				continue
			}
			t := e.templateFor(tt)
			if t.Fuse(h, in) {
				e.memo.add(h, e.createPlans(h, in, t)...)
			}
		}
	}
	// Close handling happens inside createPlans (the close status depends
	// only on the template and the current operator); prune and memoize
	// (lines 21-23).
	e.pruneRedundant(h)
	e.memo.visited[h.ID] = true
}

func (e *Explorer) templateFor(tt cplan.TemplateType) Template {
	return e.tmpls[int(tt)]
}

// createPlans constructs memo entries for template t at h: a required
// fusion reference at fusedIn (nil when opening) plus the enumeration of
// all local merge combinations at the remaining inputs (§3.2).
func (e *Explorer) createPlans(h, fusedIn *hop.Hop, t Template) []Entry {
	closed := t.Close(h)
	if closed == StatusClosedInvalid {
		return nil
	}
	base := make([]int64, len(h.Inputs))
	var optional []int
	for j, in := range h.Inputs {
		base[j] = -1
		if fusedIn != nil && in == fusedIn {
			base[j] = in.ID
			continue
		}
		if t.Merge(h, in) && e.compatibleRef(t.Type(), in) {
			optional = append(optional, j)
		}
	}
	n := 1 << len(optional)
	entries := make([]Entry, 0, n)
	for mask := 0; mask < n; mask++ {
		inputs := append([]int64(nil), base...)
		for bit, j := range optional {
			if mask&(1<<bit) != 0 {
				inputs[j] = h.Inputs[j].ID
			}
		}
		entries = append(entries, Entry{Type: t.Type(), Inputs: inputs, Closed: closed})
	}
	return entries
}

// compatibleRef reports whether input in holds an open plan that a
// template of type tt can reference: same type, or a Cell plan (Cell
// templates merge into all other templates).
func (e *Explorer) compatibleRef(tt cplan.TemplateType, in *hop.Hop) bool {
	g := e.memo.Get(in.ID)
	if g == nil {
		return false
	}
	if g.HasOpenType(tt) {
		return true
	}
	return tt != cplan.TemplateCell && g.HasOpenType(cplan.TemplateCell)
}

// pruneRedundant drops duplicate plans (handled by Memo.add) and closed
// valid entries without group references, which would cover only a single
// operator (§3.2 pruning, e.g. no C(-1) at a rowSums).
func (e *Explorer) pruneRedundant(h *hop.Hop) {
	e.memo.remove(h.ID, func(en Entry) bool {
		return en.Closed == StatusClosedValid && !en.HasRef()
	})
}

// PruneDominated removes dominated plans: an entry is dominated if all its
// references point to operators consumed exactly once and another entry of
// the same type has a strict superset of references (§3.2). Only valid for
// selection policies that consider materialization points with multiple
// consumers, i.e. the heuristics.
func PruneDominated(m *Memo) {
	for id, g := range m.Groups {
		h := g.Hop
		dominated := map[int]bool{}
		for i, a := range g.Entries {
			if !allRefsSingleConsumer(m, a) {
				continue
			}
			for j, b := range g.Entries {
				if i == j || a.Type != b.Type || a.Closed != b.Closed {
					continue
				}
				if strictSupersetRefs(b, a, h) {
					dominated[i] = true
					break
				}
			}
		}
		if len(dominated) == 0 {
			continue
		}
		kept := g.Entries[:0]
		for i, en := range g.Entries {
			if !dominated[i] {
				kept = append(kept, en)
			}
		}
		g.Entries = kept
		_ = id
	}
}

func allRefsSingleConsumer(m *Memo, e Entry) bool {
	for _, ref := range e.Refs() {
		if h := m.Hop(ref); h != nil && h.NumConsumers() > 1 {
			return false
		}
	}
	return true
}

// strictSupersetRefs reports whether b's reference positions strictly
// contain a's.
func strictSupersetRefs(b, a Entry, h *hop.Hop) bool {
	if len(a.Inputs) != len(b.Inputs) {
		return false
	}
	strict := false
	for j := range a.Inputs {
		aRef, bRef := a.Inputs[j] >= 0, b.Inputs[j] >= 0
		if aRef && !bRef {
			return false
		}
		if bRef && !aRef {
			strict = true
		}
	}
	return strict
}
