package codegen

import (
	"math"

	"sysml/internal/cplan"
	"sysml/internal/hop"
)

// Cost-audit support: after plan selection, the optimizer annotates every
// executable HOP with the cost model's predicted time, FLOPs, and IO
// volume (hop.PredSec/PredFlops/PredBytes). The runtime records these next
// to measured wall time and data-touch work in the obs.Audit ledger, which
// is how we find out where the §4.3 analytical model diverges from
// reality — the prerequisite for feeding measured calibration constants
// back into CostParams.

// predictHop fills h's prediction fields from the model inputs: fl raw
// FLOPs, inBytes distinct input bytes, and scale the sparsity-exploitation
// factor. Mirrors Coster.addOpCost (Tw + max(Tr·scale, Tc), with side
// inputs of distributed operators charged at broadcast bandwidth).
func predictHop(cfg *Config, h *hop.Hop, fl, inBytes, scale float64) {
	m := cfg.Costs
	outBytes := float64(h.OutputSizeBytes())
	tw := outBytes / m.WriteBW
	tr := inBytes / m.ReadBW
	if h.ExecType == hop.ExecDist {
		var largest float64
		for _, in := range h.Inputs {
			if s := float64(in.ReadSizeBytes()); s > largest {
				largest = s
			}
		}
		side := inBytes - largest
		if side > 0 {
			tr = largest/m.ReadBW + side/m.BroadcastBW
		}
	}
	tc := fl * scale / m.ComputeBW
	h.PredSec = tw + math.Max(tr*scale, tc)
	h.PredFlops = fl * scale
	h.PredBytes = int64(inBytes) + int64(outBytes)
}

// spoofScale mirrors Coster.sparsityScale for a constructed operator: the
// factor by which sparsity exploitation shrinks the estimates, driven by
// the largest input.
func spoofScale(t cplan.TemplateType, inputs []*hop.Hop) float64 {
	var main *hop.Hop
	for _, in := range inputs {
		if main == nil || in.Cells() > main.Cells() {
			main = in
		}
	}
	if main == nil || !main.IsSparse() {
		return 1
	}
	switch t {
	case cplan.TemplateOuter:
		return main.Sparsity()
	case cplan.TemplateRow:
		return math.Max(main.Sparsity(), 0.05)
	default: // Cell, MAgg, Horizontal: cell-bound scans of the main input
		return math.Max(main.Sparsity(), 0.01)
	}
}

// predictSpoof annotates a freshly spliced fused operator with the cost
// vector of its covered region: summed covered-HOP FLOPs (plus the Row
// per-row dispatch overhead the coster charges), distinct input bytes, and
// the template's sparsity scale.
func (c *constructor) predictSpoof(spoof *hop.Hop, t cplan.TemplateType,
	regions []*region, rowRoot *hop.Hop) {
	var fl float64
	numOps := 0
	for _, r := range regions {
		for id := range r.covered {
			if x := c.memo.Hop(id); x != nil {
				fl += flops(x)
				numOps++
			}
		}
	}
	if t == cplan.TemplateRow && rowRoot != nil {
		fl += float64(rowMainRows(rowRoot)) * float64(numOps) * rowDispatchFlops
	}
	var inBytes float64
	for _, in := range spoof.Inputs {
		inBytes += float64(in.ReadSizeBytes())
	}
	predictHop(c.cfg, spoof, fl, inBytes, spoofScale(t, spoof.Inputs))
}

// AnnotatePredictions walks an optimized DAG and attaches cost predictions
// to every executable operator that construction did not already annotate
// (fused operators get their covered-region estimate at splice time; this
// pass covers the remaining basic operators). Data reads, literals, and
// data generators carry no prediction — the model does not cost them.
func AnnotatePredictions(d *hop.DAG, cfg *Config) {
	seen := map[int64]bool{}
	var walk func(h *hop.Hop)
	walk = func(h *hop.Hop) {
		if seen[h.ID] {
			return
		}
		seen[h.ID] = true
		for _, in := range h.Inputs {
			walk(in)
		}
		switch h.Kind {
		case hop.OpData, hop.OpLiteral, hop.OpDataGen:
			return
		}
		if h.PredSec > 0 {
			return
		}
		predictHop(cfg, h, flops(h), float64(h.ReadInputSizeBytes()), 1)
	}
	for _, r := range d.Roots() {
		walk(r)
	}
}
