package cplan

import "sysml/internal/matrix"

// Fused horizontal chunk programs: when every root of a Horizontal plan
// reduces to an affine form of the main cell, the whole sibling group
// collapses into ONE specialized per-element loop — the ideal fused body a
// JIT would emit. The key identity is that every affine-based aggregate is
// a closed form over the power sums S1=Σx and S2=Σx²:
//
//	Σ (a·x+b)        = a·S1 + b·n
//	Σ (a·x+b)²       = a²·S2 + 2ab·S1 + b²·n
//	Σ a2·(a1·x+b1)²+b2 = a2a1²·S2 + 2a2a1b1·S1 + (a2b1²+b2)·n
//
// so one loop per row computes v, S1, S2, an optional column-sum
// accumulation, and up to two map outputs — however many sibling
// aggregates ride on top. Per-root dispatch (chunks.go) re-reads the main
// input once per root; on compute-bound scalar loops those re-reads cost
// full passes, which is exactly what this fusion removes.
//
// Groups that do not fit (a non-affine root, side inputs, min/max
// aggregates, more than one column root or two map roots) keep the
// per-root dispatch path; selection is transparent to results.

// hfAgg is one full or row aggregate root in closed form over S1/S2:
// result = A·S1 + B·S2 + C·n (n = cells aggregated).
type hfAgg struct {
	Root    int
	Row     bool // per-row result (RowAgg) vs grand total (FullAgg)
	A, B, C float64
}

// hfMap is one NoAgg map root: dst = A·x + B.
type hfMap struct {
	Root int
	A, B float64
}

// hfCol is the column-aggregate root: part[j] += A·x + B per row.
type hfCol struct {
	Root int
	A, B float64
}

// HFusedRowFn processes one main row [base,base+n): accumulates the
// column partials and writes the map destinations in place, and returns
// the row's power sums for the aggregate closed forms. col is nil when the
// program has no column root; dsts holds one full-size destination per map
// slot (in hfMap order), addressed at absolute offsets.
type HFusedRowFn func(md []float64, base, n int, col []float64, dsts [][]float64) (s1, s2 float64)

// HFusedProgram is the fused whole-group body of a Horizontal plan.
type HFusedProgram struct {
	Class string // fingerprint class of the fused body ("horiz.fused")
	Cols  []hfCol
	Aggs  []hfAgg
	Maps  []hfMap
	Row   HFusedRowFn
}

// hfAggForm reduces an aggregate root to the S1/S2 closed form.
func hfAggForm(f cform, agg matrix.AggOp) (a, b, c float64, ok bool) {
	if f.isConst || f.had >= 0 {
		return 0, 0, 0, false
	}
	switch agg {
	case matrix.AggSum:
		switch f.g {
		case gNone:
			af, bf, _ := f.affine()
			return af, 0, bf, true
		case gPow2:
			// Σ [a2(a1x+b1)² + b2]
			return 2 * f.a2 * f.a1 * f.b1, f.a2 * f.a1 * f.a1, f.a2*f.b1*f.b1 + f.b2, true
		}
	case matrix.AggSumSq:
		af, bf, ok := f.affine()
		if !ok {
			return 0, 0, 0, false
		}
		// Σ (a·x+b)²
		return 2 * af * bf, af * af, bf * bf, true
	}
	return 0, 0, 0, false
}

// BuildHFused returns the fused whole-group body for a Horizontal plan, or
// nil when any root falls outside the affine normal form the fused loop
// can express.
func BuildHFused(p *Plan) *HFusedProgram {
	if p.Type != TemplateHorizontal {
		return nil
	}
	h := &HFusedProgram{Class: "horiz.fused"}
	for q, root := range p.Roots {
		f, ok := normalizeCell(root)
		if !ok || f.isConst {
			return nil
		}
		switch p.HKinds[q] {
		case CellNoAgg:
			a, b, ok := f.affine()
			if !ok {
				return nil
			}
			h.Maps = append(h.Maps, hfMap{Root: q, A: a, B: b})
		case CellColAgg:
			a, b, ok := f.affine()
			if !ok || p.AggOps[q] != matrix.AggSum {
				return nil
			}
			h.Cols = append(h.Cols, hfCol{Root: q, A: a, B: b})
		case CellFullAgg, CellRowAgg:
			a, b, c, ok := hfAggForm(f, p.AggOps[q])
			if !ok {
				return nil
			}
			h.Aggs = append(h.Aggs, hfAgg{Root: q, Row: p.HKinds[q] == CellRowAgg, A: a, B: b, C: c})
		default:
			return nil
		}
	}
	// The hand-written loop variants cover one column root and two map
	// roots; wider groups keep per-root dispatch.
	if len(h.Cols) > 1 || len(h.Maps) > 2 {
		return nil
	}
	h.Row = buildHFusedRow(h)
	return h
}

// buildHFusedRow selects the specialized inner loop for the program's
// shape. Every variant computes the power sums (two fused multiply-adds —
// cheap next to the loads they share); branching on the shape happens here,
// once, never inside the element loop.
func buildHFusedRow(h *HFusedProgram) HFusedRowFn {
	var cA, cB float64
	if len(h.Cols) == 1 {
		cA, cB = h.Cols[0].A, h.Cols[0].B
	}
	var m1A, m1B, m2A, m2B float64
	if len(h.Maps) >= 1 {
		m1A, m1B = h.Maps[0].A, h.Maps[0].B
	}
	if len(h.Maps) == 2 {
		m2A, m2B = h.Maps[1].A, h.Maps[1].B
	}
	switch {
	case len(h.Cols) == 1 && len(h.Maps) == 0:
		return func(md []float64, base, n int, col []float64, _ [][]float64) (s1, s2 float64) {
			for j := 0; j < n; j++ {
				v := md[base+j]
				s1 += v
				s2 += v * v
				col[j] += cA*v + cB
			}
			return
		}
	case len(h.Cols) == 1 && len(h.Maps) == 1:
		return func(md []float64, base, n int, col []float64, dsts [][]float64) (s1, s2 float64) {
			d := dsts[0]
			for j := 0; j < n; j++ {
				v := md[base+j]
				s1 += v
				s2 += v * v
				col[j] += cA*v + cB
				d[base+j] = m1A*v + m1B
			}
			return
		}
	case len(h.Cols) == 1 && len(h.Maps) == 2:
		return func(md []float64, base, n int, col []float64, dsts [][]float64) (s1, s2 float64) {
			d1, d2 := dsts[0], dsts[1]
			for j := 0; j < n; j++ {
				v := md[base+j]
				s1 += v
				s2 += v * v
				col[j] += cA*v + cB
				d1[base+j] = m1A*v + m1B
				d2[base+j] = m2A*v + m2B
			}
			return
		}
	case len(h.Maps) == 1:
		return func(md []float64, base, n int, _ []float64, dsts [][]float64) (s1, s2 float64) {
			d := dsts[0]
			for j := 0; j < n; j++ {
				v := md[base+j]
				s1 += v
				s2 += v * v
				d[base+j] = m1A*v + m1B
			}
			return
		}
	case len(h.Maps) == 2:
		return func(md []float64, base, n int, _ []float64, dsts [][]float64) (s1, s2 float64) {
			d1, d2 := dsts[0], dsts[1]
			for j := 0; j < n; j++ {
				v := md[base+j]
				s1 += v
				s2 += v * v
				d1[base+j] = m1A*v + m1B
				d2[base+j] = m2A*v + m2B
			}
			return
		}
	default: // aggregates only
		return func(md []float64, base, n int, _ []float64, _ [][]float64) (s1, s2 float64) {
			for j := 0; j < n; j++ {
				v := md[base+j]
				s1 += v
				s2 += v * v
			}
			return
		}
	}
}
