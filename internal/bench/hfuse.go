package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"sysml/internal/codegen"
	"sysml/internal/cplan"
	"sysml/internal/dml"
	"sysml/internal/matrix"
	"sysml/internal/par"
	"sysml/internal/runtime"
	"sysml/internal/vector"
)

// hfuseFile is the JSON artifact HFuse writes next to the harness output;
// CI gates on its "pass" field.
const hfuseFile = "BENCH_hfuse.json"

// hfuseScript is the flagship sibling workload: three consumers of X that
// horizontal fusion merges into one scan (column aggregate, full
// aggregate, cellwise map).
const hfuseScript = "C = colSums(X)\ns = sum(X^2)\nY = X*3+1\n"

// Horizontal-fusion gate thresholds.
const (
	// hfuseMinSpeedup: the merged single-scan plan must beat the same
	// optimizer with horizontal fusion disabled by at least this factor on
	// the flagship sibling script (warm plan cache).
	hfuseMinSpeedup = 1.5

	// hfuseChunkMaxGapPct: the fingerprint-dispatched chunk programs of the
	// merged operator may be at most this much slower than a hand-written
	// ideal fused loop over the same data (the JIT-ideal Fig. 10 analog).
	hfuseChunkMaxGapPct = 10.0

	// hfuseMaxRelErr: merged execution must match unfused Base-mode results
	// within this relative tolerance.
	hfuseMaxRelErr = 1e-9
)

// HFuseResult is the serialized outcome of the horizontal-fusion gates.
type HFuseResult struct {
	BaselineMS   float64 `json:"baseline_ms"` // Gen with DisableHFuse
	MergedMS     float64 `json:"merged_ms"`   // Gen with horizontal fusion
	Speedup      float64 `json:"speedup"`
	SpeedupPass  bool    `json:"speedup_pass"` // >= 1.5x
	IdealMS      float64 `json:"ideal_ms"`     // hand-written fused loop
	ChunkMS      float64 `json:"chunk_ms"`     // Horizontal skeleton, chunk programs
	InterpMS     float64 `json:"interp_ms"`    // interpreted genexec reference
	ChunkGapPct  float64 `json:"chunk_gap_pct"`
	ChunkPass    bool    `json:"chunk_pass"` // gap < 10%
	MaxRelErr    float64 `json:"max_rel_err"`
	EquivPass    bool    `json:"equiv_pass"`     // fused == unfused within 1e-9
	PlanPass     bool    `json:"plan_pass"`      // merged at scale, declined on tiny input
	MergedPlan   bool    `json:"merged_plan"`    // flagship explain shows a Horizontal operator
	DeclinedTiny bool    `json:"declined_tiny"`  // adversarial explain keeps vertical-only plan
	Pass         bool    `json:"pass"`
}

// hfuseSession builds a warm session over x for the flagship script.
func hfuseSession(x *matrix.Matrix, disable bool) *dml.Session {
	cfg := codegen.DefaultConfig()
	cfg.DisableHFuse = disable
	s := dml.NewSession(cfg)
	s.Out = io.Discard
	s.Bind("X", x)
	return s
}

// hfusePlan is the CPlan of the merged flagship operator: colSums(X),
// sum(X^2), and X*3+1 as three roots over one main input.
func hfusePlan() *cplan.Plan {
	roots := []*cplan.CNode{
		cplan.Main(0),
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0)),
		cplan.Binary(matrix.BinAdd,
			cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Lit(3)), cplan.Lit(1)),
	}
	return &cplan.Plan{
		Type:   cplan.TemplateHorizontal,
		Roots:  roots,
		AggOps: []matrix.AggOp{matrix.AggSum, matrix.AggSum, matrix.AggSum},
		HKinds: []cplan.CellType{cplan.CellColAgg, cplan.CellFullAgg, cplan.CellNoAgg},
	}
}

// hfuseIdeal is the hand-written ideal fused loop the chunk programs are
// measured against: one parallel pass producing column sums, the squared
// sum, and the mapped output.
func hfuseIdeal(x *matrix.Matrix) {
	rows, cols := x.Rows, x.Cols
	xd := x.Dense()
	y := matrix.NewDenseUninit(rows, cols)
	yd := y.Dense()
	nw, _ := par.Chunks(rows, 16)
	colP := make([][]float64, nw)
	sumP := make([]float64, nw)
	par.ForIndexed(rows, 16, func(w, lo, hi int) {
		cp := colP[w]
		if cp == nil {
			cp = make([]float64, cols)
			colP[w] = cp
		}
		acc := 0.0
		for i := lo; i < hi; i++ {
			base := i * cols
			for j := 0; j < cols; j++ {
				v := xd[base+j]
				cp[j] += v
				acc += v * v
				yd[base+j] = v*3 + 1
			}
		}
		sumP[w] += acc
	})
	colSums := matrix.NewDense(1, cols)
	cd := colSums.Dense()
	for _, cp := range colP {
		if cp != nil {
			vector.Add(cp, cd, 0, 0, cols)
		}
	}
	total := 0.0
	for _, v := range sumP {
		total += v
	}
	_ = total
	colSums.Release()
	y.Release()
}

// maxRelDiffHF returns the maximum relative element difference of two
// same-shaped dense results.
func maxRelDiffHF(a, b *matrix.Matrix) float64 {
	ad, bd := a.ToDense().Dense(), b.ToDense().Dense()
	worst := 0.0
	for i := range ad {
		d := math.Abs(ad[i] - bd[i])
		if d == 0 {
			continue
		}
		if s := math.Abs(ad[i]); s > 1 {
			d /= s
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// HFuse measures the horizontal-fusion tentpole and writes
// BENCH_hfuse.json:
//
//  1. End-to-end speedup of the merged single-scan plan over the same
//     optimizer with horizontal fusion disabled, flagship sibling script,
//     warm plan cache (gate: >= 1.5x).
//  2. The merged operator's fingerprint-dispatched chunk programs vs a
//     hand-written ideal fused loop (gate: < 10% gap); the interpreted
//     genexec-style program is reported for reference (the pre-JIT
//     analog, not gated).
//  3. Merged results vs unfused Base-mode results (gate: max relative
//     error < 1e-9).
//  4. Plan quality: the flagship script at scale must merge (EXPLAIN
//     shows a Horizontal operator) while an adversarial tiny shared input
//     must keep the vertical-only plan.
func HFuse(o Options) *Table {
	reps := o.Reps
	if reps < 3 {
		reps = 3
	}
	rows := o.rows(2048)
	x := matrix.Rand(rows, 2048, 1, -1, 1, 41)

	// --- Gate 1: end-to-end speedup, warm sessions. ---
	run := func(s *dml.Session) func() {
		return func() {
			if err := s.Run(hfuseScript); err != nil {
				panic(fmt.Sprintf("hfuse bench failed: %v", err))
			}
		}
	}
	merged := minTime(reps, run(hfuseSession(x, false)))
	baseline := minTime(reps, run(hfuseSession(x, true)))
	speedup := float64(baseline) / float64(merged)

	// --- Gate 2: chunk programs vs the ideal fused loop. ---
	plan := hfusePlan()
	chunkOp := cplan.Compile(plan, "TMP_HF")
	interpOp := cplan.CompileInterpreted(plan, "TMP_HFI")
	execH := func(op *cplan.Operator) func() {
		return func() {
			for _, m := range runtime.ExecHorizontal(op, x, nil) {
				m.Release()
			}
		}
	}
	chunk := minTime(reps, execH(chunkOp))
	interp := minTime(reps, execH(interpOp))
	ideal := minTime(reps, func() { hfuseIdeal(x) })
	chunkGap := 100 * (float64(chunk) - float64(ideal)) / float64(ideal)

	// --- Gate 3: merged vs unfused results. ---
	sGen := hfuseSession(x, false)
	sBase := hfuseSession(x, false)
	sBase.Config.Mode = codegen.ModeBase
	run(sGen)()
	run(sBase)()
	worst := 0.0
	for _, name := range []string{"C", "s", "Y"} {
		a, b := sGen.Env[name], sBase.Env[name]
		if a == nil || b == nil {
			worst = math.Inf(1)
			break
		}
		if d := maxRelDiffHF(a, b); d > worst {
			worst = d
		}
	}

	// --- Gate 4: merged at scale, declined on a tiny shared input. ---
	explain := func(m *matrix.Matrix) string {
		s := hfuseSession(m, false)
		text, err := s.Explain(hfuseScript)
		if err != nil {
			panic(fmt.Sprintf("hfuse explain failed: %v", err))
		}
		return text
	}
	mergedPlan := strings.Contains(explain(x), "Horizontal TMP")
	tiny := matrix.Rand(100, 100, 1, -1, 1, 42)
	declinedTiny := !strings.Contains(explain(tiny), "Horizontal TMP")

	res := HFuseResult{
		BaselineMS:   float64(baseline.Nanoseconds()) / 1e6,
		MergedMS:     float64(merged.Nanoseconds()) / 1e6,
		Speedup:      speedup,
		SpeedupPass:  speedup >= hfuseMinSpeedup,
		IdealMS:      float64(ideal.Nanoseconds()) / 1e6,
		ChunkMS:      float64(chunk.Nanoseconds()) / 1e6,
		InterpMS:     float64(interp.Nanoseconds()) / 1e6,
		ChunkGapPct:  chunkGap,
		ChunkPass:    chunkGap < hfuseChunkMaxGapPct,
		MaxRelErr:    worst,
		EquivPass:    worst < hfuseMaxRelErr,
		MergedPlan:   mergedPlan,
		DeclinedTiny: declinedTiny,
	}
	res.PlanPass = res.MergedPlan && res.DeclinedTiny
	res.Pass = res.SpeedupPass && res.ChunkPass && res.EquivPass && res.PlanPass
	if data, err := json.MarshalIndent(res, "", "  "); err == nil {
		if err := os.WriteFile(hfuseFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(o.Out, "hfuse: cannot write %s: %v\n", hfuseFile, err)
		}
	}

	t := &Table{
		Title:   "Horizontal fusion gates: sibling merge speedup, chunk programs, equivalence, plan quality",
		Columns: []string{"gate", "baseline", "new", "delta", "pass"},
	}
	t.Add("sibling merge", ms(baseline), ms(merged),
		fmt.Sprintf("%.2fx (need >=%.1fx)", speedup, hfuseMinSpeedup), fmt.Sprintf("%v", res.SpeedupPass))
	t.Add("chunk vs ideal loop", ms(ideal), ms(chunk),
		fmt.Sprintf("%+.1f%% (limit <%.0f%%; interp %s)", chunkGap, hfuseChunkMaxGapPct, ms(interp)),
		fmt.Sprintf("%v", res.ChunkPass))
	t.Add("fused == unfused", "Base", "Gen",
		fmt.Sprintf("maxrel %.2g (limit <%.0g)", worst, hfuseMaxRelErr), fmt.Sprintf("%v", res.EquivPass))
	t.Add("plan quality", fmt.Sprintf("tiny declined=%v", declinedTiny),
		fmt.Sprintf("scale merged=%v", mergedPlan), "", fmt.Sprintf("%v", res.PlanPass))
	return t
}
