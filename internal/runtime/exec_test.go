package runtime

import (
	"strings"
	"testing"

	"sysml/internal/hop"
	"sysml/internal/matrix"
)

func TestExecuteDAGAllBasicKinds(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 6, 4, -1)
	d.Output("lit", d.Lit(3))
	d.Output("gen", d.Rand(4, 4, 1, 0, 1, 9))
	d.Output("fill", d.FillGen(2, 2, 7))
	d.Output("bin", d.Binary(matrix.BinAdd, x, x))
	d.Output("un", d.Unary(matrix.UnAbs, x))
	d.Output("agg", d.ColSums(x))
	d.Output("mm", d.MatMult(x, d.Transpose(x)))
	d.Output("tr", d.Transpose(x))
	d.Output("ix", d.Index(x, 1, 3, 0, 2))
	d.Output("cb", d.CBindOp(x, x))
	d.Output("rb", d.RBindOp(x, x))
	d.Output("rim", d.RowIndexMaxOp(x))
	d.Output("diag", d.DiagOp(d.Read("v", 4, 1, -1)))
	env := Env{
		"X": matrix.Rand(6, 4, 1, -1, 1, 1),
		"v": matrix.Rand(4, 1, 1, -1, 1, 2),
	}
	out, err := ExecuteDAG(d, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out["lit"].Scalar() != 3 {
		t.Fatal("literal")
	}
	if out["fill"].At(1, 1) != 7 {
		t.Fatal("fill")
	}
	if out["mm"].Rows != 6 || out["mm"].Cols != 6 {
		t.Fatal("matmult dims")
	}
	if out["cb"].Cols != 8 || out["rb"].Rows != 12 {
		t.Fatal("bind dims")
	}
	if out["diag"].Rows != 4 || out["diag"].Cols != 4 {
		t.Fatal("diag dims")
	}
}

func TestExecuteDAGUnboundVariable(t *testing.T) {
	d := hop.NewDAG()
	d.Output("s", d.Sum(d.Read("missing", 3, 3, -1)))
	_, err := ExecuteDAG(d, Env{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("expected unbound-variable error, got %v", err)
	}
}

func TestSeqGeneration(t *testing.T) {
	d := hop.NewDAG()
	g := d.FillGen(5, 1, 0)
	g.Gen = hop.GenSeq
	g.GenArgs = []float64{2, 10, 2}
	d.Output("s", g)
	out, err := ExecuteDAG(d, Env{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out["s"].At(0, 0) != 2 || out["s"].At(4, 0) != 10 {
		t.Fatalf("seq = %v", out["s"])
	}
}

func TestSpoofWithoutOperatorErrors(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 3, 3, -1)
	sp := d.NewSpoof("Cell", nil, 3, 3, -1, x)
	d.Output("o", sp)
	_, err := ExecuteDAG(d, Env{"X": matrix.Rand(3, 3, 1, 0, 1, 1)}, Options{})
	if err == nil {
		t.Fatal("expected error for spoof hop without compiled operator")
	}
}
