package codegen

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"sysml/internal/obs"
)

// Feedback-driven cost calibration: the analytical cost model (§4.3) prices
// plans with four hardware constants (ReadBW, WriteBW, ComputeBW,
// BroadcastBW) that the paper measured on its cluster. On any other machine
// those constants are wrong by an unknown factor each, and mis-costed plans
// follow. The Calibrator closes the loop: it consumes the cost-audit
// ledger's measured bytes/flops-vs-wall-time observations, fits the four
// constants by robust regression, and republishes them so the interpreter
// can re-optimize cached block plans under the corrected model. Fitted
// constants persist to a small per-machine JSON profile (Profile) that
// NewSession/NewEngine callers can load to start warm.

// Calibration tuning constants. The floors guard the fit against clock
// noise and cold-start effects; the cadence bounds refit work.
const (
	// calibMinSec drops observations faster than 20µs: at that scale the
	// wall time is clock granularity and dispatch overhead, not bandwidth.
	calibMinSec = 20e-6
	// calibWarmupPerOp skips the first observation of every operator label
	// (cold caches, first-touch page faults).
	calibWarmupPerOp = 1
	// calibMinSamples is the observation count below which Refit declines.
	calibMinSamples = 16
	// calibRefitEvery triggers an automatic refit after this many fresh
	// observations.
	calibRefitEvery = 32
	// calibReservoirCap bounds the retained observation window (a ring:
	// newest observations overwrite the oldest).
	calibReservoirCap = 1024
	// calibPriorWeight is the pseudo-sample count of the prior constants in
	// the ridge blend: with n real observations the data-vs-prior mix is
	// n/(n+calibPriorWeight).
	calibPriorWeight = 8.0
	// calibGenBumpRatio is the per-constant change factor above which a
	// refit bumps the generation counter (invalidating optimized plans);
	// smaller drifts keep plans stable.
	calibGenBumpRatio = 1.25
	// calibMinDistObs is the minimum number of distributed observations
	// with broadcast traffic required before BroadcastBW is refit.
	calibMinDistObs = 3
)

// Bandwidth/compute plausibility bounds: fitted constants outside
// [calibMinRate, calibMaxRate] are rejected (the fit degenerated).
const (
	calibMinRate = 1e6
	calibMaxRate = 1e15
)

// calObs is one calibration observation: measured wall time against the
// byte and flop volumes the model charges, weighted (summary-derived
// observations carry their group's count).
type calObs struct {
	sec    float64
	flops  float64
	readB  float64 // input bytes read at ReadBW (excludes broadcast side)
	writeB float64 // output bytes written at WriteBW
	bcastB float64 // broadcast side-input bytes (distributed only)
	weight float64
}

// Calibrator fits the cost model's hardware constants from measured
// operator executions. It is safe for concurrent use: a serving engine
// shares one calibrator across every tenant session (runtime executors call
// Observe; interpreters poll Model/Gen before optimizing).
type Calibrator struct {
	mu      sync.Mutex
	prior   CostModel // fallback and ridge target (defaults or loaded profile)
	model   CostModel // current published constants
	gen     uint64    // bumped when a refit materially changes the model
	samples int64     // observations accepted into the reservoir
	skipped int64     // observations rejected by warm-up or the time floor
	refits  int64
	source  string // "defaults", "profile <path>", or "summary"

	obs      []calObs
	next     int // ring write index once the reservoir is full
	fresh    int // accepted observations since the last refit
	seenOps  map[string]int64
	profiled int64 // pseudo-samples carried in from an applied profile
}

// NewCalibrator returns a calibrator whose prior (and initial published
// model) is base — typically DefaultCostModel or a loaded Profile's model.
func NewCalibrator(base CostModel) *Calibrator {
	return &Calibrator{prior: base, model: base, source: "defaults", seenOps: map[string]int64{}}
}

// Observe feeds one cost-audit entry into the calibrator. Warm-up guarded:
// the first observation of each operator label and any observation below
// the 20µs floor are dropped. Every calibRefitEvery accepted observations
// the constants are refit automatically. Nil-safe.
func (c *Calibrator) Observe(e obs.AuditEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.seenOps) >= 4096 {
		c.seenOps = map[string]int64{}
	}
	c.seenOps[e.Op]++
	if c.seenOps[e.Op] <= calibWarmupPerOp || e.ActualSec < calibMinSec {
		c.skipped++
		return
	}
	c.addLocked(calObs{
		sec:    e.ActualSec,
		flops:  e.ActualFlops,
		readB:  float64(e.ActualInBytes - e.BcastBytes),
		writeB: float64(e.ActualOutBytes),
		bcastB: float64(e.BcastBytes),
		weight: 1,
	})
	if c.fresh >= calibRefitEvery && len(c.obs) >= calibMinSamples {
		c.refitLocked()
	}
}

// FitSummary fits the constants directly from a cost-audit ledger roll-up:
// each operator group contributes one observation at its per-execution mean
// volumes, weighted by its count. It returns the number of usable groups;
// when at least calibMinSamples observations (weighted) are present the
// model is refit immediately. This is the offline path ("calibrate from
// the ledger of a finished run"); Observe is the online path.
func (c *Calibrator) FitSummary(s obs.AuditSummary) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, g := range s.Groups {
		if g.Count == 0 {
			continue
		}
		n := float64(g.Count)
		sec := g.ActualSec / n
		if sec < calibMinSec {
			continue
		}
		c.addLocked(calObs{
			sec:    sec,
			flops:  g.ActualFlops / n,
			readB:  float64(g.ActualInBytes-g.BcastBytes) / n,
			writeB: float64(g.ActualOutBytes) / n,
			bcastB: float64(g.BcastBytes) / n,
			weight: n,
		})
		added++
	}
	if added > 0 {
		c.source = "summary"
		c.refitLocked()
	}
	return added
}

func (c *Calibrator) addLocked(o calObs) {
	if o.readB < 0 {
		o.readB = 0
	}
	if len(c.obs) < calibReservoirCap {
		c.obs = append(c.obs, o)
	} else {
		c.obs[c.next] = o
		c.next = (c.next + 1) % calibReservoirCap
	}
	c.samples++
	c.fresh++
}

// Refit forces a fit from the retained observation window; it reports
// whether the published constants changed materially (generation bumped).
func (c *Calibrator) Refit() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.gen
	c.refitLocked()
	return c.gen != before
}

// refitLocked solves for the four constants. Method: weighted least squares
// on the additive surrogate sec ≈ readB/R + writeB/W + flops/C with
// relative-error weights and a ridge pull toward the prior (which also
// keeps the system well-posed when a column is absent), hardened by two
// IRLS rounds with Cauchy weights against outliers; BroadcastBW from the
// median residual rate of distributed observations; and a final median
// rescale under the model's true tw + max(tr, tc) form so the median
// signed error of the fit window is centered at zero.
func (c *Calibrator) refitLocked() {
	c.fresh = 0
	// The sample floor counts weighted observations: summary-derived entries
	// carry their group's execution count, so a short ledger with heavy
	// groups is as informative as many single observations. Three distinct
	// entries are the floor for a three-parameter fit.
	var totalWeight float64
	for _, o := range c.obs {
		totalWeight += o.weight
	}
	if len(c.obs) < 3 || totalWeight < calibMinSamples {
		return
	}
	c.refits++

	x0 := [3]float64{1 / c.prior.ReadBW, 1 / c.prior.WriteBW, 1 / c.prior.ComputeBW}
	x := x0
	w := make([]float64, len(c.obs))
	for i, o := range c.obs {
		w[i] = o.weight / (o.sec * o.sec)
	}
	tau := calibPriorWeight / (calibPriorWeight + totalWeight)
	for round := 0; round < 3; round++ {
		if round > 0 {
			// IRLS: down-weight observations the current fit misses badly.
			for i, o := range c.obs {
				pred := o.readB*x[0] + o.writeB*x[1] + o.flops*x[2]
				r := (pred - o.sec) / o.sec
				w[i] = o.weight / (o.sec * o.sec) / (1 + r*r)
			}
		}
		var ata [3][3]float64
		var atb [3]float64
		for i, o := range c.obs {
			a := [3]float64{o.readB, o.writeB, o.flops}
			for j := 0; j < 3; j++ {
				for k := 0; k < 3; k++ {
					ata[j][k] += w[i] * a[j] * a[k]
				}
				atb[j] += w[i] * a[j] * o.sec
			}
		}
		lambda := tau * (ata[0][0] + ata[1][1] + ata[2][2]) / 3
		if lambda <= 0 {
			return // no byte/flop signal at all; keep the current model
		}
		for j := 0; j < 3; j++ {
			// Per-column ridge scaled to the prior's magnitude so absent
			// columns resolve exactly to the prior constant.
			lj := lambda
			if ata[j][j] == 0 {
				lj = 1 // any positive value pins x[j] = x0[j]
			}
			ata[j][j] += lj
			atb[j] += lj * x0[j]
		}
		sol, ok := solve3(ata, atb)
		if !ok {
			return
		}
		x = sol
	}
	for j := 0; j < 3; j++ {
		if !(x[j] > 0) || math.IsInf(x[j], 0) {
			x[j] = x0[j]
		}
	}

	// BroadcastBW from distributed observations: the residual after the
	// local terms, attributed to broadcast bytes.
	xb := 1 / c.prior.BroadcastBW
	var rates []float64
	for _, o := range c.obs {
		if o.bcastB <= 0 {
			continue
		}
		resid := o.sec - o.writeB*x[1] - math.Max(o.readB*x[0], o.flops*x[2])
		if resid > 0 {
			rates = append(rates, resid/o.bcastB)
		}
	}
	if len(rates) >= calibMinDistObs {
		xb = median(rates)
	}

	// Median rescale under the true prediction form: makes the median
	// signed relative error of the fit window zero, correcting the additive
	// surrogate's systematic over-count versus max(tr, tc).
	var ratios []float64
	for _, o := range c.obs {
		tr := o.readB*x[0] + o.bcastB*xb
		pred := o.writeB*x[1] + math.Max(tr, o.flops*x[2])
		if pred > 0 {
			ratios = append(ratios, o.sec/pred)
		}
	}
	if len(ratios) > 0 {
		med := median(ratios)
		if med > 0 && !math.IsInf(med, 0) {
			for j := 0; j < 3; j++ {
				x[j] *= med
			}
			xb *= med
		}
	}

	fitted := CostModel{
		ReadBW:      clampRate(1/x[0], c.prior.ReadBW),
		WriteBW:     clampRate(1/x[1], c.prior.WriteBW),
		ComputeBW:   clampRate(1/x[2], c.prior.ComputeBW),
		BroadcastBW: clampRate(1/xb, c.prior.BroadcastBW),
	}
	if materialChange(c.model, fitted) {
		c.gen++
	}
	c.model = fitted
}

// materialChange reports whether any constant moved by more than the
// generation-bump ratio.
func materialChange(a, b CostModel) bool {
	moved := func(x, y float64) bool {
		r := x / y
		return r > calibGenBumpRatio || r < 1/calibGenBumpRatio
	}
	return moved(a.ReadBW, b.ReadBW) || moved(a.WriteBW, b.WriteBW) ||
		moved(a.ComputeBW, b.ComputeBW) || moved(a.BroadcastBW, b.BroadcastBW)
}

func clampRate(v, fallback float64) float64 {
	if math.IsNaN(v) || v < calibMinRate || v > calibMaxRate {
		return fallback
	}
	return v
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting; ok is false when the system is singular.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return [3]float64{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for k := col; k < 3; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

// Model returns the currently published constants.
func (c *Calibrator) Model() CostModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.model
}

// Gen returns the model generation: interpreters that cached an optimized
// plan under an older generation re-optimize it under the current
// constants (the "loops pick the better plan next iteration" hook).
func (c *Calibrator) Gen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// CalibState is a point-in-time snapshot of a calibrator, surfaced in
// session metrics (calib.* counters and gauges) and the EXPLAIN
// CALIBRATION section.
type CalibState struct {
	Model   CostModel
	Prior   CostModel
	Gen     uint64
	Samples int64
	Skipped int64
	Refits  int64
	Source  string
}

// State snapshots the calibrator.
func (c *Calibrator) State() CalibState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CalibState{
		Model: c.model, Prior: c.prior, Gen: c.gen,
		Samples: c.samples, Skipped: c.skipped, Refits: c.refits,
		Source: c.source,
	}
}

// ProfileVersion is the calibration profile schema version; LoadProfile
// rejects files written under a different version.
const ProfileVersion = 1

// ProfileMaxAge is the staleness bound: profiles older than this are
// rejected by LoadProfile (hardware and build characteristics drift; a
// months-old fit is worse than re-measuring).
const ProfileMaxAge = 90 * 24 * time.Hour

// Profile is the persisted per-machine calibration result: the four fitted
// cost-model constants plus provenance (schema version, creation time,
// sample count). See docs/COST_MODEL.md for the on-disk contract.
type Profile struct {
	Version     int     `json:"version"`
	CreatedUnix int64   `json:"created_unix"`
	Samples     int64   `json:"samples"`
	ReadBW      float64 `json:"read_bw"`
	WriteBW     float64 `json:"write_bw"`
	FlopRate    float64 `json:"flop_rate"`
	BroadcastBW float64 `json:"broadcast_bw"`
}

// CostModel converts the profile to optimizer constants.
func (p Profile) CostModel() CostModel {
	return CostModel{ReadBW: p.ReadBW, WriteBW: p.WriteBW, ComputeBW: p.FlopRate, BroadcastBW: p.BroadcastBW}
}

// Validate checks the profile's schema version and that every constant is
// a finite positive rate within plausible hardware bounds.
func (p Profile) Validate() error {
	if p.Version != ProfileVersion {
		return fmt.Errorf("calibration profile version %d (want %d)", p.Version, ProfileVersion)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"read_bw", p.ReadBW}, {"write_bw", p.WriteBW},
		{"flop_rate", p.FlopRate}, {"broadcast_bw", p.BroadcastBW},
	} {
		if math.IsNaN(c.v) || c.v < calibMinRate || c.v > calibMaxRate {
			return fmt.Errorf("calibration profile %s %g outside [%g, %g]", c.name, c.v, float64(calibMinRate), float64(calibMaxRate))
		}
	}
	return nil
}

// LoadProfile reads and validates a calibration profile. It returns an
// error — and callers fall back to DefaultCostModel — for unreadable or
// corrupt JSON, a schema version mismatch, implausible constants, or a
// profile older than ProfileMaxAge.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("calibration profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("calibration profile %s: %w", path, err)
	}
	if age := time.Since(time.Unix(p.CreatedUnix, 0)); age > ProfileMaxAge {
		return Profile{}, fmt.Errorf("calibration profile %s is stale (%s old, max %s)", path, age.Round(time.Hour), ProfileMaxAge)
	}
	return p, nil
}

// Save writes the profile as indented JSON (atomic enough for a config
// file: full rewrite, no partial append).
func (p Profile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Profile exports the calibrator's current constants as a persistable
// profile stamped with the current time.
func (c *Calibrator) Profile() Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Profile{
		Version:     ProfileVersion,
		CreatedUnix: time.Now().Unix(),
		Samples:     c.samples + c.profiled,
		ReadBW:      c.model.ReadBW,
		WriteBW:     c.model.WriteBW,
		FlopRate:    c.model.ComputeBW,
		BroadcastBW: c.model.BroadcastBW,
	}
}

// ApplyProfile validates p and, on success, adopts its constants as both
// the published model and the fit prior (subsequent refits blend toward
// the profile rather than the paper defaults). The generation is bumped so
// sessions re-optimize under the loaded constants.
func (c *Calibrator) ApplyProfile(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prior = p.CostModel()
	c.model = c.prior
	c.profiled = p.Samples
	c.source = "profile"
	c.gen++
	return nil
}
