package dml

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/matrix"
)

func newTestSession(mode codegen.Mode) *Session {
	cfg := codegen.DefaultConfig()
	cfg.Mode = mode
	s := NewSession(cfg)
	s.Out = &bytes.Buffer{}
	return s
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"x = ", "if (x { }", "x = foo(", `x = "unterminated`,
		"x = 1 $ 2", "while (1) x = 2",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestLexerNumbersAndRanges(t *testing.T) {
	toks, err := lex("x = X[1:20, 3]\ny = 1.5e-3 + 2.")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "1 : 20") {
		t.Fatalf("range mis-lexed: %v", joined)
	}
	if !strings.Contains(joined, "1.5e-3") {
		t.Fatalf("exponent mis-lexed: %v", joined)
	}
}

func TestScalarArithmetic(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	err := s.Run(`
		a = 2 + 3 * 4
		b = (2 + 3) * 4
		c = 2 ^ 3 ^ 2      # right associative: 2^(3^2) = 512
		d = -a
		e = a < b
		f = a == 14
	`)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"a": 14, "b": 20, "c": 512, "d": -14, "e": 1, "f": 1}
	for name, want := range checks {
		if got, _ := s.Scalar(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestMatrixProgram(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	x := matrix.Rand(50, 10, 1, -1, 1, 1)
	s.Bind("X", x)
	err := s.Run(`
		n = nrow(X)
		m = ncol(X)
		s = sum(X * X)
		r = rowSums(X)
		c = colSums(X)
		Xt = t(X)
		v = matrix(1, rows=m, cols=1)
		q = X %*% v
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Scalar("n"); got != 50 {
		t.Fatalf("nrow = %v", got)
	}
	if got, _ := s.Scalar("m"); got != 10 {
		t.Fatalf("ncol = %v", got)
	}
	want := matrix.Sum(matrix.Binary(matrix.BinMul, x, x))
	if got, _ := s.Scalar("s"); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum(X*X) = %v, want %v", got, want)
	}
	r, _ := s.Get("r")
	if !r.EqualsApprox(matrix.Agg(matrix.AggSum, matrix.DirRow, x), 1e-9) {
		t.Fatal("rowSums mismatch")
	}
	xt, _ := s.Get("Xt")
	if xt.Rows != 10 || xt.Cols != 50 {
		t.Fatal("transpose dims")
	}
	q, _ := s.Get("q")
	if !q.EqualsApprox(matrix.MatMult(x, matrix.Fill(10, 1, 1)), 1e-9) {
		t.Fatal("matmult mismatch")
	}
}

func TestControlFlow(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	err := s.Run(`
		total = 0
		for (i in 1:10) {
			total = total + i
		}
		j = 0
		k = 0
		while (j < 5) {
			j = j + 1
			k = k + 2
		}
		if (k == 10) { flag = 1 } else { flag = 0 }
		if (k > 100) { big = 1 } else { if (k > 5) { big = 2 } else { big = 3 } }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Scalar("total"); got != 55 {
		t.Fatalf("total = %v", got)
	}
	if got, _ := s.Scalar("k"); got != 10 {
		t.Fatalf("k = %v", got)
	}
	if got, _ := s.Scalar("flag"); got != 1 {
		t.Fatalf("flag = %v", got)
	}
	if got, _ := s.Scalar("big"); got != 2 {
		t.Fatalf("big = %v", got)
	}
}

func TestIndexing(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	x := matrix.NewDenseData(3, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	s.Bind("X", x)
	err := s.Run(`
		k = 2
		A = X[1:2, ]
		B = X[, 1:k]
		c = X[2, 3]
		D = X[, 2]
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get("A")
	if a.Rows != 2 || a.Cols != 4 || a.At(1, 3) != 8 {
		t.Fatalf("A = %v", a)
	}
	b, _ := s.Get("B")
	if b.Rows != 3 || b.Cols != 2 || b.At(2, 1) != 10 {
		t.Fatalf("B = %v", b)
	}
	if got, _ := s.Scalar("c"); got != 7 {
		t.Fatalf("c = %v", got)
	}
	d, _ := s.Get("D")
	if d.Rows != 3 || d.Cols != 1 || d.At(0, 0) != 2 {
		t.Fatalf("D = %v", d)
	}
}

func TestPrint(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	buf := &bytes.Buffer{}
	s.Out = buf
	if err := s.Run(`print("value: " + (1 + 2) + " end")`); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "value: 3 end" {
		t.Fatalf("print output %q", got)
	}
}

func TestRandAndBuiltins(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	err := s.Run(`
		R = rand(rows=100, cols=20, sparsity=0.1, min=-1, max=1, seed=42)
		sp = sum(R != 0) / (nrow(R) * ncol(R))
		mn = min(R)
		mx = max(R)
		clipped = min(max(R, -0.5), 0.5)
		i = seq(1, 5, 1)
		si = sum(i)
		e = exp(matrix(0, rows=2, cols=2))
		se = sum(e)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if sp, _ := s.Scalar("sp"); sp < 0.05 || sp > 0.2 {
		t.Fatalf("sparsity = %v", sp)
	}
	if mn, _ := s.Scalar("mn"); mn >= 0 {
		t.Fatalf("min = %v", mn)
	}
	if si, _ := s.Scalar("si"); si != 15 {
		t.Fatalf("sum(seq) = %v", si)
	}
	if se, _ := s.Scalar("se"); se != 4 {
		t.Fatalf("sum(exp(0)) = %v", se)
	}
	cl, _ := s.Get("clipped")
	if matrix.Agg(matrix.AggMax, matrix.DirAll, cl).Scalar() > 0.5 {
		t.Fatal("clip failed")
	}
}

func TestModesAgreeOnProgram(t *testing.T) {
	// An MLogreg-like inner iteration must produce identical results under
	// every optimizer mode.
	script := `
		k = 3
		P = Pfull[, 1:k]
		Q = P * (X %*% B)
		H = t(X) %*% (Q - P * rowSums(Q))
		obj = sum(Q)
	`
	x := matrix.Rand(200, 30, 1, -1, 1, 5)
	b := matrix.Rand(30, 3, 1, -1, 1, 6)
	p := matrix.Rand(200, 4, 1, 0, 1, 7)
	var ref *matrix.Matrix
	var refObj float64
	for _, mode := range []codegen.Mode{codegen.ModeBase, codegen.ModeFused,
		codegen.ModeGen, codegen.ModeGenFA, codegen.ModeGenFNR} {
		s := newTestSession(mode)
		s.Bind("X", x)
		s.Bind("B", b)
		s.Bind("Pfull", p)
		if err := s.Run(script); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		h, _ := s.Get("H")
		obj, _ := s.Scalar("obj")
		if ref == nil {
			ref, refObj = h, obj
			continue
		}
		if !h.EqualsApprox(ref, 1e-7) {
			t.Errorf("mode %v: H differs from Base", mode)
		}
		if math.Abs(obj-refObj) > 1e-7*math.Abs(refObj) {
			t.Errorf("mode %v: obj differs", mode)
		}
	}
}

func TestPlanCacheAcrossIterations(t *testing.T) {
	// With block-plan reuse disabled, every iteration recompiles the block
	// and the operator plan cache absorbs the redundant compilations.
	cfg := codegen.DefaultConfig()
	cfg.ReuseBlockPlans = false
	s := NewSession(cfg)
	s.Out = &bytes.Buffer{}
	s.Bind("X", matrix.Rand(100, 10, 1, -1, 1, 8))
	script := `
		acc = 0
		for (i in 1:10) {
			acc = acc + sum(X * X * i)
		}
	`
	if err := s.Run(script); err != nil {
		t.Fatal(err)
	}
	if s.Stats.CacheHits < 5 {
		t.Fatalf("expected plan cache hits across iterations, got %d (compiled %d)",
			s.Stats.CacheHits, s.Stats.OperatorsCompiled)
	}
	if s.Blocks < 10 {
		t.Fatalf("expected >= 10 compiled blocks, got %d", s.Blocks)
	}
	want, _ := s.Scalar("acc")

	// With block-plan reuse (the default), the block optimizes once and
	// subsequent iterations hit the block cache — same result.
	s2 := newTestSession(codegen.ModeGen)
	s2.Bind("X", matrix.Rand(100, 10, 1, -1, 1, 8))
	if err := s2.Run(script); err != nil {
		t.Fatal(err)
	}
	if s2.BlockCacheHits < 8 {
		t.Fatalf("expected block cache hits, got %d", s2.BlockCacheHits)
	}
	if got, _ := s2.Scalar("acc"); got != want {
		t.Fatalf("block cache changed result: %v vs %v", got, want)
	}
}

func TestUndefinedVariable(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	if err := s.Run("y = missing + 1"); err == nil {
		t.Fatal("expected undefined-variable error")
	}
}

func TestArrowAssignAndNot(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	err := s.Run(`
		a <- 5
		b = !(a > 10)
		c = !b
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Scalar("a"); v != 5 {
		t.Fatal("arrow assign")
	}
	if v, _ := s.Scalar("b"); v != 1 {
		t.Fatal("not operator")
	}
	if v, _ := s.Scalar("c"); v != 0 {
		t.Fatal("double negation")
	}
}

func TestElseIfChain(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	err := s.Run(`
		x = 7
		if (x > 10) { r = 1 } else if (x > 5) { r = 2 } else { r = 3 }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Scalar("r"); v != 2 {
		t.Fatalf("else-if chain: r = %v", v)
	}
}

func TestParserErrorLineNumbers(t *testing.T) {
	_, err := Parse("a = 1\nb = 2\nc = @")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("expected line-3 error, got %v", err)
	}
}

func TestUnaryMinusPrecedence(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	if err := s.Run("a = -2 ^ 2\nb = (-2) ^ 2"); err != nil {
		t.Fatal(err)
	}
	// R semantics: unary minus binds looser than ^.
	if v, _ := s.Scalar("a"); v != -4 {
		t.Fatalf("-2^2 = %v, want -4", v)
	}
	if v, _ := s.Scalar("b"); v != 4 {
		t.Fatalf("(-2)^2 = %v, want 4", v)
	}
}

func TestMatMulPrecedence(t *testing.T) {
	// In R, %*% binds tighter than * and /.
	s := newTestSession(codegen.ModeGen)
	s.Bind("X", matrix.Fill(2, 2, 1))
	s.Bind("Y", matrix.Fill(2, 2, 1))
	if err := s.Run("Z = 2 * X %*% Y"); err != nil {
		t.Fatal(err)
	}
	z, _ := s.Get("Z")
	if z.At(0, 0) != 4 { // 2 * (X %*% Y) = 2 * 2
		t.Fatalf("precedence: Z[0][0] = %v, want 4", z.At(0, 0))
	}
}

func TestCumsumBuiltin(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	s.Bind("X", matrix.NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	if err := s.Run(`Y = t(cumsum(t(X)))`); err != nil {
		t.Fatal(err)
	}
	y, _ := s.Get("Y")
	// Row-wise running sums.
	want := matrix.NewDenseData(2, 3, []float64{1, 3, 6, 4, 9, 15})
	if !y.EqualsApprox(want, 0) {
		t.Fatalf("Y = %v", y)
	}
}
