// MLogreg: multinomial logistic regression with a conjugate-gradient inner
// loop. The Hessian-vector product is the paper's Expression (2):
// Q = P * (X %*% S); HS = t(X) %*% (Q - P * rowSums(Q)) — a single fused
// Row-template pass over X instead of six large intermediates.
package main

import (
	"fmt"
	"log"

	"sysml"
)

const trainScript = `
	m = ncol(X)
	km1 = k - 1
	B = matrix(0, rows=m, cols=km1)
	for (outer in 1:maxiter) {
		linear = X %*% B
		elin = exp(linear - rowMaxs(linear))
		P = elin / (rowSums(elin) + exp(0 - rowMaxs(linear)))
		grad = t(X) %*% (P - Yind) + lambda * B
		S = 0 - grad
		R = 0 - grad
		D = matrix(0, rows=m, cols=km1)
		rsold = sum(R * R)
		for (i in 1:inneriter) {
			Q = P * (X %*% S)
			HS = t(X) %*% (Q - P * rowSums(Q)) + lambda * S
			alpha = rsold / max(sum(S * HS), 1e-12)
			D = D + alpha * S
			R = R - alpha * HS
			rsnew = sum(R * R)
			S = R + (rsnew / max(rsold, 1e-12)) * S
			rsold = rsnew
		}
		B = B + D
	}
`

const predictScript = `
	linear = X %*% B
	scores = cbind(linear, matrix(0, rows=nrow(X), cols=1))
	pred = rowIndexMax(scores)
	acc = sum(pred == labels) / nrow(X)
	print("train accuracy: " + acc)
`

func main() {
	const n, m, k = 20000, 40, 3
	// Synthetic k-class data from a random linear model.
	gen := sysml.NewSession()
	gen.Bind("X", sysml.RandMatrix(n, m, 1, -1, 1, 11))
	gen.BindScalar("k", k)
	if err := gen.Run(`
		W = rand(rows=ncol(X), cols=k, min=-1, max=1, seed=5)
		scores = X %*% W
		labels = rowIndexMax(scores)
		Yind = matrix(0, rows=nrow(X), cols=k)
	`); err != nil {
		log.Fatal(err)
	}
	x, _ := gen.Get("X")
	labels, _ := gen.Get("labels")
	// One-hot indicator (first k-1 classes) built on the Go side.
	yind := sysml.NewDenseMatrix(n, k-1)
	for i := 0; i < n; i++ {
		if c := int(labels.At(i, 0)); c < k {
			yind.Set(i, c-1, 1)
		}
	}

	train := sysml.NewSession()
	train.Bind("X", x)
	train.Bind("Yind", yind)
	train.BindScalar("k", k)
	train.BindScalar("lambda", 1e-3)
	train.BindScalar("maxiter", 6)
	train.BindScalar("inneriter", 6)
	if err := train.Run(trainScript); err != nil {
		log.Fatal(err)
	}
	b, _ := train.Get("B")

	eval := sysml.NewSession()
	eval.Bind("X", x)
	eval.Bind("B", b)
	eval.Bind("labels", labels)
	if err := eval.Run(predictScript); err != nil {
		log.Fatal(err)
	}
	st := train.Stats
	fmt.Printf("fused operators: %d compiled, %d cache hits across %d optimized DAGs\n",
		st.OperatorsCompiled, st.CacheHits, st.DAGsOptimized)
}
