package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// TraceEvent is one record in the Chrome trace-event ("catapult") format.
// All spans are exported as complete events (ph "X") with microsecond
// timestamps relative to the earliest span start, so the file loads
// directly in Perfetto or chrome://tracing.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // µs since trace start
	Dur  float64        `json:"dur,omitempty"` // µs
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceSink buffers completed spans and renders them as a Chrome
// trace-event JSON array. Spans arrive end-first (children complete before
// parents), so the sink re-sorts by start time at export; viewers nest
// events on the same track by time containment, which holds because every
// child's [start, start+dur) lies inside its parent's.
type TraceSink struct {
	mu    sync.Mutex
	spans []Event
}

// NewTraceSink returns an empty trace collector.
func NewTraceSink() *TraceSink { return &TraceSink{} }

// Emit implements Sink; non-span events are ignored.
func (t *TraceSink) Emit(e Event) {
	if e.Kind != EventSpan {
		return
	}
	e.Attrs = append([]Attr(nil), e.Attrs...) // detach from the emitting span
	t.mu.Lock()
	t.spans = append(t.spans, e)
	t.mu.Unlock()
}

// Reset discards buffered spans but keeps the backing capacity, so a
// serving path can pool sinks and trace every request without per-request
// slice growth (Events() copies, so previously exported traces survive).
func (t *TraceSink) Reset() {
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.mu.Unlock()
}

// Len returns the number of buffered spans.
func (t *TraceSink) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Events returns the buffered spans as trace-event records sorted by start
// time (ties broken longest-first so parents precede their children).
func (t *TraceSink) Events() []TraceEvent {
	t.mu.Lock()
	spans := append([]Event(nil), t.spans...)
	t.mu.Unlock()

	var base time.Time
	for _, e := range spans {
		if base.IsZero() || e.Start.Before(base) {
			base = e.Start
		}
	}
	out := make([]TraceEvent, 0, len(spans))
	for _, e := range spans {
		te := TraceEvent{
			Name: e.Name,
			Cat:  "sysml",
			Ph:   "X",
			TS:   float64(e.Start.Sub(base)) / 1e3,
			Dur:  float64(e.Dur) / 1e3,
			PID:  1,
			TID:  1,
			Args: map[string]any{"span": e.Span},
		}
		if e.Parent != 0 {
			te.Args["parent"] = e.Parent
		}
		for _, a := range e.Attrs {
			te.Args[a.Key] = a.Value
		}
		out = append(out, te)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

// WriteTo writes the trace as an indented JSON array.
func (t *TraceSink) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(t.Events(), "", " ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the trace to path, ready to open in Perfetto.
func (t *TraceSink) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
