package codegen

import (
	"sort"

	"sysml/internal/hop"
)

// Edge is a data dependency (consumer -> input) that is an interesting
// point: a boolean materialization decision of the plan search space (§4.2).
type Edge struct {
	From, To int64
}

// Partition is a connected component of partial fusion plans: nodes not
// reachable via fusion references from other partitions, optimized and
// costed independently (§4.2).
type Partition struct {
	Nodes  map[int64]bool
	Roots  []int64 // entry points: never referenced via fusion from within
	Inputs []int64 // nodes read by the partition but outside it
	// MatPoints are materialization points: partition nodes with multiple
	// consumers (excluding roots).
	MatPoints []int64
	// Points are the interesting points M'i: materialization-point
	// consumers and template switches.
	Points []Edge
}

// BuildPartitions analyzes the populated memo table and returns the plan
// partitions with their interesting points.
func BuildPartitions(m *Memo, roots []*hop.Hop) []*Partition {
	// Collect fusion-reference edges between groups.
	type refEdge struct{ from, to int64 }
	var refs []refEdge
	referenced := map[int64]bool{}
	for id, g := range m.Groups {
		for _, e := range g.Entries {
			for _, to := range e.Refs() {
				refs = append(refs, refEdge{id, to})
				referenced[to] = true
			}
		}
	}
	// Union-find over fusion references.
	parent := map[int64]int64{}
	var find func(x int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			parent[x] = find(p)
		}
		return parent[x]
	}
	union := func(a, b int64) { parent[find(a)] = find(b) }
	for id := range m.Groups {
		find(id)
	}
	for _, r := range refs {
		union(r.from, r.to)
	}
	// Group nodes by component.
	comps := map[int64]*Partition{}
	for id := range m.Groups {
		root := find(id)
		p, ok := comps[root]
		if !ok {
			p = &Partition{Nodes: map[int64]bool{}}
			comps[root] = p
		}
		p.Nodes[id] = true
	}
	// Fill per-partition metadata.
	var out []*Partition
	for _, p := range comps {
		fillPartition(p, m, referenced)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return minID(out[i]) < minID(out[j]) })
	return out
}

func minID(p *Partition) int64 {
	min := int64(1 << 62)
	for id := range p.Nodes {
		if id < min {
			min = id
		}
	}
	return min
}

func fillPartition(p *Partition, m *Memo, referenced map[int64]bool) {
	inputSeen := map[int64]bool{}
	for id := range p.Nodes {
		h := m.Hop(id)
		if !referenced[id] {
			p.Roots = append(p.Roots, id)
		}
		for _, in := range h.Inputs {
			if !p.Nodes[in.ID] && !inputSeen[in.ID] {
				inputSeen[in.ID] = true
				p.Inputs = append(p.Inputs, in.ID)
			}
		}
	}
	sort.Slice(p.Roots, func(i, j int) bool { return p.Roots[i] < p.Roots[j] })
	sort.Slice(p.Inputs, func(i, j int) bool { return p.Inputs[i] < p.Inputs[j] })

	rootSet := map[int64]bool{}
	for _, r := range p.Roots {
		rootSet[r] = true
	}
	// Materialization points: multiple consumers, not a root.
	for id := range p.Nodes {
		h := m.Hop(id)
		if h.NumConsumers() > 1 && !rootSet[id] {
			p.MatPoints = append(p.MatPoints, id)
		}
	}
	sort.Slice(p.MatPoints, func(i, j int) bool { return p.MatPoints[i] < p.MatPoints[j] })

	// Interesting points: (1) each consumer of a materialization point with
	// a fusion alternative; (2) template switches.
	pointSet := map[Edge]bool{}
	addPoint := func(e Edge) {
		if !pointSet[e] {
			pointSet[e] = true
			p.Points = append(p.Points, e)
		}
	}
	matSet := map[int64]bool{}
	for _, id := range p.MatPoints {
		matSet[id] = true
	}
	for id := range p.Nodes {
		g := m.Get(id)
		edges := map[int64]bool{}
		for _, e := range g.Entries {
			for _, to := range e.Refs() {
				edges[to] = true
			}
		}
		for to := range edges {
			if matSet[to] {
				addPoint(Edge{id, to})
				continue
			}
			// Template switch: the input group has template types the
			// consumer group lacks (e.g. an Outer plan below a Cell plan).
			if hasTypeSwitch(m.Get(id), m.Get(to)) {
				addPoint(Edge{id, to})
				continue
			}
			// Broadcast point: fusing a driver-computable vector chain into
			// a distributed operator turns the chain's inputs into
			// broadcasts (§4.4 constraints and distributed operations;
			// Table 6 Gen-FA pathology). Materializing keeps the chain on
			// the driver with a single broadcast of its result.
			consumer, input := m.Hop(id), m.Hop(to)
			if consumer.ExecType == hop.ExecDist && input.IsVector() && !input.IsScalar() {
				addPoint(Edge{id, to})
			}
		}
	}
	sort.Slice(p.Points, func(i, j int) bool {
		if p.Points[i].From != p.Points[j].From {
			return p.Points[i].From < p.Points[j].From
		}
		return p.Points[i].To < p.Points[j].To
	})
}

func hasTypeSwitch(consumer, input *Group) bool {
	if consumer == nil || input == nil {
		return false
	}
	ctypes := map[string]bool{}
	for _, t := range consumer.Types() {
		ctypes[t.String()] = true
	}
	for _, t := range input.Types() {
		if !ctypes[t.String()] {
			return true
		}
	}
	return false
}

// ReachGraph captures reachability between interesting points for
// structural pruning (§4.4): point b is below point a if b's target is
// reachable from a's target through partition-internal inputs.
type ReachGraph struct {
	below [][]bool // below[i][j]: j strictly below i
	n     int
}

// BuildReachGraph computes the reachability relation over the partition's
// interesting points.
func BuildReachGraph(m *Memo, p *Partition) *ReachGraph {
	n := len(p.Points)
	rg := &ReachGraph{n: n, below: make([][]bool, n)}
	// Node reachability within partition by DFS over inputs.
	reach := map[int64]map[int64]bool{}
	var dfs func(id int64) map[int64]bool
	dfs = func(id int64) map[int64]bool {
		if r, ok := reach[id]; ok {
			return r
		}
		r := map[int64]bool{}
		reach[id] = r
		h := m.Hop(id)
		if h == nil {
			return r
		}
		for _, in := range h.Inputs {
			if !p.Nodes[in.ID] {
				continue
			}
			r[in.ID] = true
			for x := range dfs(in.ID) {
				r[x] = true
			}
		}
		return r
	}
	for i := range p.Points {
		rg.below[i] = make([]bool, n)
		ri := dfs(p.Points[i].To)
		for j := range p.Points {
			if i == j {
				continue
			}
			if ri[p.Points[j].To] {
				rg.below[i][j] = true
			}
		}
	}
	return rg
}

// CutSet is a candidate fusion barrier: assigning all its points true
// splits the remaining points into independent subproblems S1 (above) and
// S2 (below).
type CutSet struct {
	Points []int // indexes into Partition.Points
	S1, S2 []int
	Score  float64
}

// FindCutSets returns valid cut sets ordered by ascending score (Eq. 5):
// candidates are single points, composite points with equivalent targets,
// and non-overlapping pairs.
func FindCutSets(m *Memo, p *Partition, rg *ReachGraph) []CutSet {
	n := len(p.Points)
	if n < 3 {
		return nil
	}
	var candidates [][]int
	for i := 0; i < n; i++ {
		candidates = append(candidates, []int{i})
	}
	// Composite points over the same target node.
	byTarget := map[int64][]int{}
	for i, pt := range p.Points {
		byTarget[pt.To] = append(byTarget[pt.To], i)
	}
	for _, idxs := range byTarget {
		if len(idxs) > 1 {
			candidates = append(candidates, idxs)
		}
	}
	// Non-overlapping pairs of the above.
	base := append([][]int(nil), candidates...)
	for i := 0; i < len(base) && len(candidates) < 64; i++ {
		for j := i + 1; j < len(base); j++ {
			if overlaps(base[i], base[j]) {
				continue
			}
			candidates = append(candidates, append(append([]int(nil), base[i]...), base[j]...))
		}
	}
	var out []CutSet
	for _, cs := range candidates {
		inCS := map[int]bool{}
		for _, i := range cs {
			inCS[i] = true
		}
		var s1, s2 []int
		for j := 0; j < n; j++ {
			if inCS[j] {
				continue
			}
			// j is below the cut set if reachable from any cut point.
			below := false
			for _, c := range cs {
				if rg.below[c][j] {
					below = true
					break
				}
			}
			if below {
				s2 = append(s2, j)
			} else {
				s1 = append(s1, j)
			}
		}
		// Validity: S1 and S2 non-empty and disjoint by construction; also
		// require that no S2 point reaches an S1 point (true independence).
		if len(s1) == 0 || len(s2) == 0 {
			continue
		}
		indep := true
		for _, a := range s2 {
			for _, b := range s1 {
				if rg.below[a][b] {
					indep = false
					break
				}
			}
			if !indep {
				break
			}
		}
		if !indep {
			continue
		}
		out = append(out, CutSet{Points: cs, S1: s1, S2: s2, Score: cutScore(len(cs), len(s1), len(s2), n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out
}

func overlaps(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// cutScore implements Eq. (5): (2^|cs|-1)/2^|cs| * 2^|M'| + 1/2^|cs| *
// (2^|S1| + 2^|S2|), balancing cut set size against partitioning quality.
func cutScore(cs, s1, s2, m int) float64 {
	p2 := func(k int) float64 { return float64(int64(1) << uint(min(k, 62))) }
	return (p2(cs)-1)/p2(cs)*p2(m) + 1/p2(cs)*(p2(s1)+p2(s2))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
