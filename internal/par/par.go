// Package par provides small data-parallel helpers used by the matrix
// kernels and fused-operator skeletons. All helpers degrade gracefully to
// sequential execution for small inputs so that parallelization overhead
// never dominates.
//
// Parallel regions run on persistent worker pools (goroutines started
// lazily and kept alive for the process lifetime) instead of spawning fresh
// goroutines per call. Work is split into more chunks than workers and
// participants claim chunks through an atomic counter, so skewed work —
// ragged sparse rows, uneven row-template iterations — load-balances
// dynamically: a worker that finishes its chunk early simply claims the
// next one.
//
// Parallelism is instance-scoped: a Pool owns its worker cap, its task
// channel and workers, and its utilization counters, so independent engines
// hosted in one process can be capped independently without sharing any
// mutable state. The package-level For/ForIndexed/... helpers delegate to
// the process-wide Default pool, preserving the original API.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of work items per chunk. Work smaller
// than one grain runs on the calling goroutine.
const DefaultGrain = 1024

// chunkFactor is the target number of dynamically claimed chunks per
// participant. Values above 1 trade slightly more dispatch overhead for
// load balancing of skewed chunks; 4 keeps the claim counter cold while
// bounding the idle tail at ~1/4 of a worker's share.
const chunkFactor = 4

// Pool is an independent parallel-execution domain: a worker cap, a
// persistent set of helper goroutines, and utilization counters. Pools are
// safe for concurrent use. A nil *Pool is valid and behaves as the Default
// pool, so zero-valued execution contexts need no special-casing.
//
// Pools have no Close: helper goroutines block on the task channel between
// regions and cost only a parked goroutine each, so they are kept for the
// process lifetime. This makes enqueue-after-shutdown races impossible.
type Pool struct {
	// maxWorkers caps the number of participants of a parallel region. It
	// is read on every For/ForIndexed/Chunks call and written by
	// SetMaxWorkers (tests, concurrent engines), hence atomic.
	maxWorkers atomic.Int64

	// Workers block on the task channel between regions. The pool grows to
	// (max requested workers - 1) — the caller of a region is always
	// participant 0 — and never shrinks.
	mu      sync.Mutex
	tasks   chan *region
	workers int

	// Utilization counters: every For/ForIndexed call is counted, along
	// with the pool workers it engaged (0 for calls that ran sequentially).
	statCalls      atomic.Int64
	statGoroutines atomic.Int64
	statSequential atomic.Int64
}

// Default is the process-wide pool backing the package-level helpers and
// any nil *Pool receiver.
var Default = NewPool(0)

// NewPool returns an independent worker pool capped at n participants per
// parallel region. n <= 0 means GOMAXPROCS. Worker goroutines are started
// lazily on first parallel dispatch.
func NewPool(n int) *Pool {
	p := &Pool{}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p.maxWorkers.Store(int64(n))
	return p
}

// orDefault resolves the nil receiver to the Default pool.
func (p *Pool) orDefault() *Pool {
	if p == nil {
		return Default
	}
	return p
}

// SetMaxWorkers overrides the pool's worker cap and returns the previous
// value. Passing n <= 0 resets to GOMAXPROCS. Raising the cap grows the
// persistent pool so that future regions can use the extra workers.
func (p *Pool) SetMaxWorkers(n int) int {
	p = p.orDefault()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	old := p.maxWorkers.Swap(int64(n))
	p.ensureWorkers(n - 1)
	return int(old)
}

// MaxWorkers reports the pool's current worker cap.
func (p *Pool) MaxWorkers() int { return int(p.orDefault().maxWorkers.Load()) }

// SetMaxWorkers overrides the Default pool's worker cap and returns the
// previous value. Passing n <= 0 resets to GOMAXPROCS.
func SetMaxWorkers(n int) int { return Default.SetMaxWorkers(n) }

// MaxWorkers reports the Default pool's current worker cap.
func MaxWorkers() int { return Default.MaxWorkers() }

// Usage is a snapshot of a pool's parallel-for utilization counters.
type Usage struct {
	Calls      int64 // For/ForIndexed invocations
	Goroutines int64 // pool workers engaged across all parallel calls
	Sequential int64 // calls that ran inline on the caller's goroutine
}

// Utilization returns engaged workers as a fraction of the maximum the
// worker cap would have allowed (1.0 = every call saturated the cap).
func (u Usage) Utilization(workers int) float64 {
	if u.Calls == 0 || workers <= 0 {
		return 0
	}
	return float64(u.Goroutines) / float64(u.Calls*int64(workers))
}

// Stats returns the pool's current utilization counters.
func (p *Pool) Stats() Usage {
	p = p.orDefault()
	return Usage{
		Calls:      p.statCalls.Load(),
		Goroutines: p.statGoroutines.Load(),
		Sequential: p.statSequential.Load(),
	}
}

// ResetStats zeroes the pool's utilization counters.
func (p *Pool) ResetStats() {
	p = p.orDefault()
	p.statCalls.Store(0)
	p.statGoroutines.Store(0)
	p.statSequential.Store(0)
}

// Stats returns the Default pool's utilization counters.
func Stats() Usage { return Default.Stats() }

// ResetStats zeroes the Default pool's utilization counters.
func ResetStats() { Default.ResetStats() }

func (p *Pool) ensureWorkers(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	if p.tasks == nil {
		// Buffered far beyond any realistic fan-out so that region dispatch
		// never blocks; dispatch falls back to inline execution if full.
		p.tasks = make(chan *region, 1024)
	}
	for p.workers < n {
		p.workers++
		go func(tasks chan *region) {
			for r := range tasks {
				r.help()
			}
		}(p.tasks)
	}
	p.mu.Unlock()
}

// region is one parallel-for invocation: participants claim chunk indexes
// from next until all nchunks are taken.
type region struct {
	fn      func(worker, lo, hi int)
	n       int
	chunk   int
	nchunks int64
	next    atomic.Int64
	ids     atomic.Int64 // participant id allocator (caller is 0)
	wg      sync.WaitGroup
}

// help is run by a pool worker: claim a participant id and drain chunks.
// Exactly (participants-1) help entries are enqueued per region, so ids
// stay within [1, participants).
func (r *region) help() {
	defer r.wg.Done()
	r.run(int(r.ids.Add(1)))
}

func (r *region) run(worker int) {
	for {
		c := r.next.Add(1) - 1
		if c >= r.nchunks {
			return
		}
		lo := int(c) * r.chunk
		hi := lo + r.chunk
		if hi > r.n {
			hi = r.n
		}
		r.fn(worker, lo, hi)
	}
}

// plan computes the chunking of n items: the participant count, the chunk
// size, and the chunk count. Chunks are at least one grain; the chunk
// count targets chunkFactor chunks per participant for dynamic balance.
func (p *Pool) plan(n, grain int) (workers, chunk, nchunks int) {
	w := int(p.maxWorkers.Load())
	return planFor(n, grain, w)
}

func planFor(n, grain, limit int) (workers, chunk, nchunks int) {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if limit < 1 {
		limit = 1
	}
	maxChunks := (n + grain - 1) / grain
	workers = limit
	if workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		return 1, n, 1
	}
	nchunks = workers * chunkFactor
	if nchunks > maxChunks {
		nchunks = maxChunks
	}
	chunk = (n + nchunks - 1) / nchunks
	nchunks = (n + chunk - 1) / chunk
	if nchunks < workers {
		workers = nchunks
	}
	return workers, chunk, nchunks
}

// dispatch runs fn over the chunks of [0, n) on the worker pool, with the
// caller participating as worker 0. Enqueueing never blocks: when the pool
// is saturated (e.g. nested regions), the caller simply drains the chunks
// itself, so dispatch is deadlock-free under arbitrary nesting.
func (p *Pool) dispatch(n int, workers, chunk, nchunks int, fn func(worker, lo, hi int)) {
	p.ensureWorkers(workers - 1)
	r := &region{fn: fn, n: n, chunk: chunk, nchunks: int64(nchunks)}
	engaged := 1 // the caller
	for i := 1; i < workers; i++ {
		r.wg.Add(1)
		select {
		case p.tasks <- r:
			engaged++
		default:
			r.wg.Done() // pool saturated: caller covers the work
		}
	}
	p.statGoroutines.Add(int64(engaged))
	r.run(0)
	r.wg.Wait()
}

// For executes fn over half-open ranges that partition [0, n) into chunks
// of at least grain items, running chunks on the pool's persistent workers.
// fn must be safe for concurrent invocation on disjoint ranges.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	p = p.orDefault()
	if n <= 0 {
		return
	}
	workers, chunk, nchunks := p.plan(n, grain)
	p.statCalls.Add(1)
	if workers <= 1 {
		p.statSequential.Add(1)
		fn(0, n)
		return
	}
	p.dispatch(n, workers, chunk, nchunks, func(_, lo, hi int) { fn(lo, hi) })
}

// ForIndexed is like For but also passes a zero-based worker index, which
// callers use to select per-worker state (scratch buffers, partial
// aggregates). Worker indexes are dense in [0, count) where count is
// reported by Chunks for preallocation.
//
// Unlike a static partition, a worker may be invoked several times with
// distinct disjoint ranges (dynamic chunk claiming): per-worker state must
// therefore be initialized lazily on first use and accumulated across
// invocations, never reset per invocation.
func (p *Pool) ForIndexed(n, grain int, fn func(worker, lo, hi int)) {
	p = p.orDefault()
	if n <= 0 {
		return
	}
	workers, chunk, nchunks := p.plan(n, grain)
	p.statCalls.Add(1)
	if workers <= 1 {
		p.statSequential.Add(1)
		fn(0, 0, n)
		return
	}
	p.dispatch(n, workers, chunk, nchunks, fn)
}

// Chunks reports how many workers ForIndexed will use for n items with the
// given grain — the size needed for per-worker state arrays — along with
// the dynamic chunk size (ranges handed to each fn invocation).
func (p *Pool) Chunks(n, grain int) (count, size int) {
	p = p.orDefault()
	if n <= 0 {
		return 0, 0
	}
	count, size, _ = p.plan(n, grain)
	return count, size
}

// ForIndexedLimit is ForIndexed with an explicit participant cap: at most
// limit workers (including the caller) run fn, regardless of the pool's
// SetMaxWorkers cap. Unlike the pool cap it may exceed GOMAXPROCS: callers
// like the simulated distributed backend model external concurrency
// (executors), where oversubscribing cores is exactly the point. Worker
// indexes are dense in [0, count) with count as reported by ChunksLimit.
func (p *Pool) ForIndexedLimit(n, grain, limit int, fn func(worker, lo, hi int)) {
	p = p.orDefault()
	if n <= 0 {
		return
	}
	workers, chunk, nchunks := planFor(n, grain, limit)
	p.statCalls.Add(1)
	if workers <= 1 {
		p.statSequential.Add(1)
		fn(0, 0, n)
		return
	}
	p.dispatch(n, workers, chunk, nchunks, fn)
}

// ChunksLimit reports how many workers ForIndexedLimit will use for n items
// with the given grain and participant cap — the size needed for
// per-worker state arrays.
func (p *Pool) ChunksLimit(n, grain, limit int) (count, size int) {
	if n <= 0 {
		return 0, 0
	}
	count, size, _ = planFor(n, grain, limit)
	return count, size
}

// For executes fn over chunked ranges of [0, n) on the Default pool.
func For(n, grain int, fn func(lo, hi int)) { Default.For(n, grain, fn) }

// ForIndexed is For with a zero-based worker index, on the Default pool.
func ForIndexed(n, grain int, fn func(worker, lo, hi int)) { Default.ForIndexed(n, grain, fn) }

// Chunks reports the Default pool's worker count and chunk size for n items.
func Chunks(n, grain int) (count, size int) { return Default.Chunks(n, grain) }

// ForIndexedLimit is ForIndexed with an explicit participant cap, on the
// Default pool.
func ForIndexedLimit(n, grain, limit int, fn func(worker, lo, hi int)) {
	Default.ForIndexedLimit(n, grain, limit, fn)
}

// ChunksLimit reports how many workers ForIndexedLimit will use on the
// Default pool.
func ChunksLimit(n, grain, limit int) (count, size int) {
	return Default.ChunksLimit(n, grain, limit)
}
