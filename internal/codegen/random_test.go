package codegen_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/rewrite"
	"sysml/internal/runtime"
)

// randomDAG generates a random but shape-valid HOP DAG over a fixed leaf
// population, exercising the optimizer against arbitrary operator mixes.
func randomDAG(seed int64) (*hop.DAG, runtime.Env) {
	rng := rand.New(rand.NewSource(seed))
	const n, m, r = 60, 24, 6
	d := hop.NewDAG()
	env := runtime.Env{
		"A": matrix.Rand(n, m, 1, 0.2, 2, seed+1),
		"B": matrix.Rand(n, m, 0.15, 0.2, 2, seed+2),
		"c": matrix.Rand(n, 1, 1, 0.2, 2, seed+3),
		"w": matrix.Rand(m, 1, 1, 0.2, 2, seed+4),
		"U": matrix.Rand(n, r, 1, 0.2, 1, seed+5),
		"V": matrix.Rand(m, r, 1, 0.2, 1, seed+6),
	}
	pool := []*hop.Hop{
		d.Read("A", n, m, -1),
		d.Read("B", n, m, int64(env["B"].Nnz())),
		d.Read("c", n, 1, -1),
		d.Read("w", m, 1, -1),
		d.Read("U", n, r, -1),
		d.Read("V", m, r, -1),
	}
	// Positive-value-safe op sets avoid NaN mismatches from reordered
	// floating-point reductions feeding log/sqrt of near-zero values.
	binOps := []matrix.BinOp{matrix.BinAdd, matrix.BinMul, matrix.BinMax, matrix.BinMin}
	unOps := []matrix.UnOp{matrix.UnAbs, matrix.UnSqrt, matrix.UnSigmoid, matrix.UnSign}

	pick := func(pred func(h *hop.Hop) bool) *hop.Hop {
		var cands []*hop.Hop
		for _, h := range pool {
			if pred(h) {
				cands = append(cands, h)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		return cands[rng.Intn(len(cands))]
	}
	anyMatrix := func(h *hop.Hop) bool { return !h.IsScalar() }
	nSteps := 4 + rng.Intn(8)
	for i := 0; i < nSteps; i++ {
		switch rng.Intn(6) {
		case 0: // binary same shape / broadcast
			a := pick(anyMatrix)
			b := pick(func(h *hop.Hop) bool {
				return h.Rows == a.Rows && h.Cols == a.Cols ||
					h.Cols == 1 && h.Rows == a.Rows || h.IsScalar()
			})
			if b == nil {
				continue
			}
			pool = append(pool, d.Binary(binOps[rng.Intn(len(binOps))], a, b))
		case 1: // scalar op
			a := pick(anyMatrix)
			pool = append(pool, d.Binary(binOps[rng.Intn(len(binOps))], a, d.Lit(0.5+rng.Float64())))
		case 2: // unary
			a := pick(anyMatrix)
			pool = append(pool, d.Unary(unOps[rng.Intn(len(unOps))], a))
		case 3: // aggregate
			a := pick(func(h *hop.Hop) bool { return h.Cols > 1 })
			if a == nil {
				continue
			}
			dirs := []matrix.AggDir{matrix.DirAll, matrix.DirRow, matrix.DirCol}
			pool = append(pool, d.Agg(matrix.AggSum, dirs[rng.Intn(3)], a))
		case 4: // matmult with a narrow right side
			a := pick(func(h *hop.Hop) bool { return h.Cols > 1 })
			if a == nil {
				continue
			}
			b := pick(func(h *hop.Hop) bool { return h.Rows == a.Cols && h.Cols <= 8 })
			if b == nil {
				continue
			}
			pool = append(pool, d.MatMult(a, b))
		case 5: // transpose then multiply pattern
			a := pick(func(h *hop.Hop) bool { return h.Rows > 1 && h.Cols > 1 })
			b := pick(func(h *hop.Hop) bool { return h.Rows == a.Rows && h.Cols <= 8 })
			if a == nil || b == nil {
				continue
			}
			pool = append(pool, d.MatMult(d.Transpose(a), b))
		}
	}
	outs := 1 + rng.Intn(2)
	for i := 0; i < outs; i++ {
		h := pool[len(pool)-1-i]
		if h.Cells() > 1 {
			// Keep outputs small-ish by aggregating large results.
			h = d.Sum(h)
		}
		d.Output(fmt.Sprintf("out%d", i), h)
	}
	// Also emit one matrix output to exercise NoAgg fusion.
	d.Output("m0", pool[len(pool)-1])
	return d, env
}

func TestRandomDAGEquivalenceAcrossModes(t *testing.T) {
	modes := []codegen.Mode{codegen.ModeFused, codegen.ModeGen, codegen.ModeGenFA, codegen.ModeGenFNR}
	for seed := int64(0); seed < 60; seed++ {
		build, env := randomDAG(seed)
		refDAG, _ := rewrite.Apply(build)
		ref, err := runtime.ExecuteDAG(refDAG, env, runtime.Options{})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, mode := range modes {
			d2, env2 := randomDAG(seed) // fresh DAG (same structure), fresh parents
			_ = env2
			dd, _ := rewrite.Apply(d2)
			cfg := codegen.DefaultConfig()
			cfg.Mode = mode
			dd = codegen.Optimize(dd, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
			got, err := runtime.ExecuteDAG(dd, env, runtime.Options{})
			if err != nil {
				t.Fatalf("seed %d mode %v: %v\n%s", seed, mode, err, hop.Explain(dd.Roots()))
			}
			for name, want := range ref {
				if !got[name].EqualsApprox(want, 1e-6) {
					t.Errorf("seed %d mode %v: output %q differs\n%s",
						seed, mode, name, hop.Explain(dd.Roots()))
				}
			}
		}
	}
}
