package serve

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/matrix"
)

// TestEngineSharedCalibration: tenant sessions acquired concurrently all
// feed one engine-level calibrator (the -race stress of the feedback
// loop), and the fitted constants survive SaveProfile -> WithCalibration
// into a second engine.
func TestEngineSharedCalibration(t *testing.T) {
	e := NewEngine(
		WithMaxWorkers(4),
		WithTenantQuota(TenantQuota{MaxSessions: 2}),
		WithCalibration(""),
	)
	cal := e.Calibrator()
	if cal == nil {
		t.Fatal("WithCalibration did not attach a calibrator")
	}

	const tenants, reps = 4, 6
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tn := e.Tenant(fmt.Sprintf("tenant-%d", ti))
			for r := 0; r < reps; r++ {
				s, err := tn.Acquire(time.Second)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if s.Calib != cal {
					t.Error("session does not share the engine calibrator")
				}
				ec := matrix.Ctx{Par: s.Par, Buf: s.Alloc}
				s.Env["X"] = ec.Rand(512, 64, 1, -1, 1, int64(ti))
				s.Env["Y"] = ec.Rand(512, 64, 1, -1, 1, int64(ti)+1)
				if err := s.Run(`s = sum(X * Y)`); err != nil {
					t.Errorf("run: %v", err)
				}
				tn.Release(s)
			}
		}(ti)
	}
	wg.Wait()

	st := cal.State()
	if st.Samples+st.Skipped == 0 {
		t.Fatal("no session execution reached the shared calibrator")
	}
	snap := e.Metrics()
	if snap.Counters["calib.samples"] != st.Samples {
		t.Errorf("engine metrics report %d calib samples, calibrator has %d",
			snap.Counters["calib.samples"], st.Samples)
	}

	// Persist and reload into a fresh engine: the loaded profile must become
	// the second engine's published constants.
	path := filepath.Join(t.TempDir(), "profile.json")
	cal.Refit()
	if err := e.SaveProfile(path); err != nil {
		t.Fatal(err)
	}
	p, err := codegen.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(WithCalibration(path))
	if got := e2.Calibrator().Model(); got != p.CostModel() {
		t.Errorf("second engine model %+v, profile %+v", got, p.CostModel())
	}
	if st := e2.Calibrator().State(); st.Source != "profile" {
		t.Errorf("second engine calibration source %q, want \"profile\"", st.Source)
	}
	s := e2.NewSession(codegen.DefaultConfig())
	if s.Config.Costs != p.CostModel() {
		t.Error("session did not inherit the loaded profile constants")
	}
}

// TestEngineCalibrationBadProfile: an unreadable profile path must not
// poison the engine — it silently starts from the defaults.
func TestEngineCalibrationBadProfile(t *testing.T) {
	e := NewEngine(WithCalibration(filepath.Join(t.TempDir(), "missing.json")))
	cal := e.Calibrator()
	if cal == nil {
		t.Fatal("engine dropped the calibrator on a bad profile path")
	}
	if got := cal.Model(); got != codegen.DefaultCostModel() {
		t.Errorf("bad profile changed the model: %+v", got)
	}
}

// TestEngineNoCalibration: without WithCalibration the engine has no
// calibrator and SaveProfile refuses.
func TestEngineNoCalibration(t *testing.T) {
	e := NewEngine()
	if e.Calibrator() != nil {
		t.Error("engine grew a calibrator without WithCalibration")
	}
	if err := e.SaveProfile("x.json"); err == nil {
		t.Error("SaveProfile succeeded without a calibrator")
	}
}
