package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

type fakeSource struct{}

func (fakeSource) Metrics() Snapshot {
	m := NewMetrics()
	m.Inc("exec.hops")
	m.Add("plancache.hits", 3)
	m.Add("plancache.misses", 1)
	m.SetGauge("plancache.size", 2)
	return m.Snapshot()
}

func (fakeSource) CostAudit() AuditSummary {
	a := NewAudit()
	a.Record(AuditEntry{Op: "spoof(Cell)", Template: "Cell", PredSec: 0.01, ActualSec: 0.02})
	return a.Summary()
}

func TestServeEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fakeSource{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		var v map[string]any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, body)
		}
		return v
	}

	metrics := get("/metrics")
	counters, ok := metrics["Counters"].(map[string]any)
	if !ok || counters["exec.hops"] != float64(1) {
		t.Fatalf("/metrics counters = %+v", metrics["Counters"])
	}

	audit := get("/audit")
	tmpl, ok := audit["Templates"].(map[string]any)
	if !ok || tmpl["Cell"] == nil {
		t.Fatalf("/audit templates = %+v", audit["Templates"])
	}

	pc := get("/plancache")
	pcCounters, ok := pc["counters"].(map[string]any)
	if !ok || pcCounters["plancache.hits"] != float64(3) {
		t.Fatalf("/plancache = %+v", pc)
	}
	if _, filtered := pcCounters["exec.hops"]; filtered {
		t.Fatal("/plancache must only expose plancache.* keys")
	}

	if resp, err := http.Get("http://" + srv.Addr() + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get("http://" + srv.Addr() + "/nosuch"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("unknown path must 404: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}
