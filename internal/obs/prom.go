package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for any Snapshot. The
// runtime's dotted instrument names ("plancache.hits",
// "pool.bytes.recycled") are sanitized into the Prometheus metric-name
// grammar ("plancache_hits"); fixed-bucket histograms are rendered with
// cumulative le-buckets plus _sum and _count, exactly what
// histogram_quantile expects. Instrument names may carry pre-rendered
// labels — build them with LabeledName — which are passed through on every
// sample of that instrument, so per-tenant serving metrics expose as one
// metric family with a tenant label.

// PromContentType is the Content-Type of the Prometheus text exposition
// format served on /metrics under content negotiation.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WantsPrometheus reports whether an HTTP Accept header value asks for the
// Prometheus text exposition instead of the default JSON snapshot: any
// text/plain or OpenMetrics media type matches (Prometheus scrapers send
// both).
func WantsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// LabeledName attaches Prometheus labels to an instrument name:
// LabeledName("serve.request.seconds", "tenant", "alpha") returns
// `serve.request.seconds{tenant="alpha"}`. Label values are escaped per the
// exposition format; keys are sanitized like metric names. Snapshots render
// labeled names as one metric family per base name with per-label samples.
func LabeledName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(kv[i]))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// text exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promName sanitizes one instrument name into the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*; every other rune becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// splitLabels splits an instrument name built by LabeledName into its base
// name and the pre-rendered label body (without braces, "" when unlabeled).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promSample is one exposition line of a family: its label body and value.
type promSample struct {
	labels string
	value  string
	hist   *HistSnapshot // histogram families carry the snapshot instead
}

// promFamily groups every sample sharing one sanitized metric name so the
// TYPE line is emitted once and samples stay contiguous, as the exposition
// format requires.
type promFamily struct {
	name    string
	kind    string // "counter", "gauge", "histogram"
	samples []promSample
}

// collectFamilies buckets a snapshot's instruments into sorted families.
func collectFamilies(s Snapshot) []promFamily {
	byName := map[string]*promFamily{}
	add := func(name, kind string, sm promSample) {
		base, labels := splitLabels(name)
		fam := promName(base)
		f, ok := byName[fam]
		if !ok {
			f = &promFamily{name: fam, kind: kind}
			byName[fam] = f
		}
		sm.labels = labels
		f.samples = append(f.samples, sm)
	}
	for name, v := range s.Counters {
		add(name, "counter", promSample{value: strconv.FormatInt(v, 10)})
	}
	for name, v := range s.Gauges {
		add(name, "gauge", promSample{value: formatPromFloat(v)})
	}
	for name := range s.Hists {
		h := s.Hists[name]
		add(name, "histogram", promSample{hist: &h})
	}
	out := make([]promFamily, 0, len(byName))
	for _, f := range byName {
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatPromFloat renders a float as the exposition format expects
// (shortest round-trip representation; Prometheus accepts e-notation).
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as cumulative
// le-buckets plus _sum and _count. Families are sorted by name and each is
// preceded by its # TYPE line. Serve it with Content-Type PromContentType.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, f := range collectFamilies(s) {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sm := range f.samples {
			if f.kind != "histogram" {
				if err := writeSample(w, f.name, sm.labels, sm.value); err != nil {
					return err
				}
				continue
			}
			if err := writeHistogram(w, f.name, sm.labels, sm.hist); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample writes one exposition line: name{labels} value.
func writeSample(w io.Writer, name, labels, value string) error {
	if labels != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, value)
	return err
}

// writeHistogram writes a histogram family instance: cumulative buckets
// (le is an upper bound, so bucket counts accumulate), the mandatory +Inf
// bucket, and the _sum/_count samples.
func writeHistogram(w io.Writer, name, labels string, h *HistSnapshot) error {
	joinLe := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	var cum int64
	for i, bound := range histBuckets {
		cum += h.Buckets[i]
		if err := writeSample(w, name+"_bucket", joinLe(formatPromFloat(bound)),
			strconv.FormatInt(cum, 10)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", joinLe("+Inf"),
		strconv.FormatInt(h.Count, 10)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, formatPromFloat(h.Sum)); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, strconv.FormatInt(h.Count, 10))
}
