package cplan

import (
	"sync"

	"sysml/internal/matrix"
	"sysml/internal/vector"
)

// CellVecProgram is a vectorized execution form of a Cell-template plan:
// the CNode DAG lowered onto chunks of contiguous cells using the shared
// vector primitives. It stands in for the machine code a JIT produces from
// the scalar genexec body — Go cannot JIT, so the vectorization is made
// explicit. It applies when every side input is addressed flat (same shape
// as the main input) or as a pre-read scalar; per-row/per-column broadcast
// sides keep the scalar genexec path.
type CellVecProgram struct {
	Instrs     []RowInstr
	NumVec     int
	NumScalars int
	ResultReg  int
	ResultVec  bool
	// ChunkSides lists side indexes loaded as flat chunks (they must be
	// dense and main-shaped at execution time).
	ChunkSides []int

	// bufPool recycles chunk registers across invocations (see
	// RowProgram.GetBuf).
	bufPool sync.Pool
}

// ChunkLen is the number of cells processed per vectorized step.
const ChunkLen = 512

// CompileCellVec lowers a cell expression into a chunk program, or nil
// when the expression uses access patterns that need per-cell evaluation
// (row/column broadcasts, the Outer dot, aggregates).
func CompileCellVec(root *CNode) *CellVecProgram {
	c := &cellVecCompiler{
		prog: &CellVecProgram{NumVec: 1}, // register 0: main chunk view
		memo: map[*CNode]regRef{},
	}
	res, ok := c.compile(root)
	if !ok || !res.vec {
		return nil
	}
	c.prog.ResultReg = res.idx
	c.prog.ResultVec = res.vec
	return c.prog
}

type cellVecCompiler struct {
	prog *CellVecProgram
	memo map[*CNode]regRef
}

func (c *cellVecCompiler) newVec() int {
	c.prog.NumVec++
	return c.prog.NumVec - 1
}

func (c *cellVecCompiler) newScal() int {
	c.prog.NumScalars++
	return c.prog.NumScalars - 1
}

func (c *cellVecCompiler) emit(in RowInstr) { c.prog.Instrs = append(c.prog.Instrs, in) }

func (c *cellVecCompiler) compile(n *CNode) (regRef, bool) {
	if r, ok := c.memo[n]; ok {
		return r, true
	}
	r, ok := c.compileNode(n)
	if ok {
		c.memo[n] = r
	}
	return r, ok
}

func (c *cellVecCompiler) compileNode(n *CNode) (regRef, bool) {
	switch n.Kind {
	case NodeMain:
		return regRef{0, true}, true
	case NodeLit:
		d := c.newScal()
		c.emit(RowInstr{Op: RLit, Dst: d, Scalar: n.Value})
		return regRef{d, false}, true
	case NodeSide:
		switch n.Access {
		case AccessScalar:
			d := c.newScal()
			c.emit(RowInstr{Op: RLoadSideVal, Dst: d, Side: n.Side, RowZero: true})
			return regRef{d, false}, true
		case AccessCell:
			d := c.newVec()
			c.emit(RowInstr{Op: RLoadSideRow, Dst: d, Side: n.Side})
			c.prog.ChunkSides = append(c.prog.ChunkSides, n.Side)
			return regRef{d, true}, true
		default:
			return regRef{}, false // row/column broadcasts: per-cell path
		}
	case NodeBinary:
		l, ok1 := c.compile(n.Children[0])
		r, ok2 := c.compile(n.Children[1])
		if !ok1 || !ok2 {
			return regRef{}, false
		}
		switch {
		case l.vec && r.vec:
			d := c.newVec()
			c.emit(RowInstr{Op: RBinVV, BinOp: n.BinOp, Dst: d, Src1: l.idx, Src2: r.idx})
			return regRef{d, true}, true
		case l.vec:
			d := c.newVec()
			c.emit(RowInstr{Op: RBinVS, BinOp: n.BinOp, Dst: d, Src1: l.idx, Src2: r.idx})
			return regRef{d, true}, true
		case r.vec:
			d := c.newVec()
			c.emit(RowInstr{Op: RBinSV, BinOp: n.BinOp, Dst: d, Src1: l.idx, Src2: r.idx})
			return regRef{d, true}, true
		default:
			d := c.newScal()
			c.emit(RowInstr{Op: RBinSS, BinOp: n.BinOp, Dst: d, Src1: l.idx, Src2: r.idx})
			return regRef{d, false}, true
		}
	case NodeUnary:
		s, ok := c.compile(n.Children[0])
		if !ok {
			return regRef{}, false
		}
		if s.vec {
			d := c.newVec()
			c.emit(RowInstr{Op: RUnV, UnOp: n.UnOp, Dst: d, Src1: s.idx})
			return regRef{d, true}, true
		}
		d := c.newScal()
		c.emit(RowInstr{Op: RUnS, UnOp: n.UnOp, Dst: d, Src1: s.idx})
		return regRef{d, false}, true
	}
	return regRef{}, false
}

// CellVecBuf holds per-thread chunk registers.
type CellVecBuf struct {
	buf RowBuf
}

// NewBuf allocates chunk registers.
func (p *CellVecProgram) NewBuf() *CellVecBuf {
	b := &CellVecBuf{buf: RowBuf{
		Vec:  make([][]float64, p.NumVec),
		Off:  make([]int, p.NumVec),
		Scal: make([]float64, p.NumScalars),
	}}
	for i := 1; i < p.NumVec; i++ {
		b.buf.Vec[i] = make([]float64, ChunkLen)
	}
	return b
}

// GetBuf returns chunk registers from the per-program recycling pool.
func (p *CellVecProgram) GetBuf() *CellVecBuf {
	if b, ok := p.bufPool.Get().(*CellVecBuf); ok {
		return b
	}
	return p.NewBuf()
}

// PutBuf parks chunk registers for reuse, dropping the main-chunk view
// (register 0) so the pool does not pin the input matrix.
func (p *CellVecProgram) PutBuf(b *CellVecBuf) {
	if b == nil {
		return
	}
	b.buf.Vec[0], b.buf.Off[0] = nil, 0
	p.bufPool.Put(b)
}

// Exec evaluates the program over n cells starting at flat offset lo of
// the main input (n <= ChunkLen) and returns the result chunk.
func (p *CellVecProgram) Exec(ctx *Ctx, b *CellVecBuf, main []float64, lo, n int) ([]float64, int) {
	buf := &b.buf
	buf.Vec[0], buf.Off[0] = main, lo
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case RLoadSideRow: // flat chunk view of a dense, main-shaped side
			buf.Vec[in.Dst], buf.Off[in.Dst] = ctx.Sides[in.Side].DenseData(), lo
		case RLoadSideVal:
			buf.Scal[in.Dst] = ctx.SideScalars[in.Side]
		case RLit:
			buf.Scal[in.Dst] = in.Scalar
		case RBinVV:
			execBinVV(in.BinOp, buf, in.Dst, in.Src1, in.Src2, n)
		case RBinVS:
			execBinVS(in.BinOp, buf, in.Dst, in.Src1, buf.Scal[in.Src2], n)
		case RBinSV:
			execBinSV(in.BinOp, buf, in.Dst, buf.Scal[in.Src1], in.Src2, n)
		case RBinSS:
			buf.Scal[in.Dst] = in.BinOp.Apply(buf.Scal[in.Src1], buf.Scal[in.Src2])
		case RUnV:
			execUnV(in.UnOp, buf, in.Dst, in.Src1, n)
		case RUnS:
			buf.Scal[in.Dst] = in.UnOp.Apply(buf.Scal[in.Src1])
		}
	}
	return buf.Vec[p.ResultReg], buf.Off[p.ResultReg]
}

// ChunkCompatible reports whether the bound inputs allow vectorized
// execution: a dense main and dense, exactly main-shaped chunk sides.
func (p *CellVecProgram) ChunkCompatible(main *matrix.Matrix, sides []*matrix.Matrix) bool {
	if p == nil || main.IsSparse() {
		return false
	}
	for _, si := range p.ChunkSides {
		s := sides[si]
		if s.IsSparse() || s.Rows != main.Rows || s.Cols != main.Cols {
			return false
		}
	}
	return true
}

// SumChunk adds up a result chunk (FullAgg fast path).
func SumChunk(vals []float64, off, n int) float64 { return vector.Sum(vals, off, n) }
