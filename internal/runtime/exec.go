package runtime

import (
	"fmt"

	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
)

// Env maps variable names to matrices (SystemML's symbol table; scalars are
// held as 1×1 matrices).
type Env map[string]*matrix.Matrix

// Options configures DAG execution.
type Options struct {
	// Dist, when non-nil, executes operators marked ExecDist through the
	// simulated distributed backend.
	Dist DistBackend
}

// DistBackend abstracts the simulated distributed runtime (implemented in
// internal/dist; injected here to avoid a dependency cycle).
type DistBackend interface {
	// ExecHop executes one distributed operator over already-computed
	// inputs and returns its result.
	ExecHop(h *hop.Hop, inputs []*matrix.Matrix) (*matrix.Matrix, bool)
}

// ExecuteDAG evaluates all outputs of a HOP DAG against the environment
// and returns the named results.
func ExecuteDAG(d *hop.DAG, env Env, opts Options) (Env, error) {
	cache := map[int64]*matrix.Matrix{}
	for _, h := range hop.TopoOrder(d.Roots()) {
		m, err := evalHop(h, cache, env, opts)
		if err != nil {
			return nil, err
		}
		cache[h.ID] = m
	}
	out := Env{}
	for _, name := range d.OutputNames() {
		out[name] = cache[d.Outputs[name].ID]
	}
	return out, nil
}

func evalHop(h *hop.Hop, cache map[int64]*matrix.Matrix, env Env, opts Options) (*matrix.Matrix, error) {
	ins := make([]*matrix.Matrix, len(h.Inputs))
	for i, in := range h.Inputs {
		m, ok := cache[in.ID]
		if !ok {
			return nil, fmt.Errorf("runtime: input %v of %v not yet computed", in, h)
		}
		ins[i] = m
	}
	if h.ExecType == hop.ExecDist && opts.Dist != nil {
		if m, ok := opts.Dist.ExecHop(h, ins); ok {
			return m, nil
		}
	}
	return evalLocal(h, ins, env)
}

func evalLocal(h *hop.Hop, ins []*matrix.Matrix, env Env) (*matrix.Matrix, error) {
	switch h.Kind {
	case hop.OpData:
		m, ok := env[h.Name]
		if !ok {
			return nil, fmt.Errorf("runtime: unbound variable %q", h.Name)
		}
		return m, nil
	case hop.OpLiteral:
		return matrix.NewScalar(h.Value), nil
	case hop.OpDataGen:
		switch h.Gen {
		case hop.GenRand:
			return matrix.Rand(int(h.Rows), int(h.Cols), h.GenArgs[0], h.GenArgs[1], h.GenArgs[2], int64(h.GenArgs[3])), nil
		case hop.GenFill:
			return matrix.Fill(int(h.Rows), int(h.Cols), h.GenArgs[0]), nil
		case hop.GenSeq:
			return matrix.Seq(h.GenArgs[0], h.GenArgs[1], h.GenArgs[2]), nil
		}
	case hop.OpBinary:
		return matrix.Binary(h.BinOp, ins[0], ins[1]), nil
	case hop.OpUnary:
		return matrix.Unary(h.UnOp, ins[0]), nil
	case hop.OpAggUnary:
		return matrix.Agg(h.AggOp, h.AggDir, ins[0]), nil
	case hop.OpMatMult:
		return matrix.MatMult(ins[0], ins[1]), nil
	case hop.OpTranspose:
		return matrix.Transpose(ins[0]), nil
	case hop.OpIndex:
		return matrix.IndexRange(ins[0], int(h.RL), int(h.RU), int(h.CL), int(h.CU)), nil
	case hop.OpCBind:
		return matrix.CBind(ins[0], ins[1]), nil
	case hop.OpRBind:
		return matrix.RBind(ins[0], ins[1]), nil
	case hop.OpRowIndexMax:
		return matrix.RowIndexMax(ins[0]), nil
	case hop.OpDiag:
		return matrix.Diag(ins[0]), nil
	case hop.OpCumsum:
		return matrix.Cumsum(ins[0]), nil
	case hop.OpSpoof:
		return ExecSpoof(h, ins)
	}
	return nil, fmt.Errorf("runtime: unsupported hop kind %v", h.Kind)
}

// ExecSpoof dispatches a fused operator to its template skeleton. Input
// conventions: Cell/MAgg/Row operators receive [main, sides...]; Outer
// operators receive [X, U, V, sides...].
func ExecSpoof(h *hop.Hop, ins []*matrix.Matrix) (*matrix.Matrix, error) {
	op, ok := h.Spoof.(*cplan.Operator)
	if !ok {
		return nil, fmt.Errorf("runtime: spoof hop %d has no compiled operator", h.ID)
	}
	switch op.Plan.Type {
	case cplan.TemplateCell:
		return ExecCellwise(op, ins[0], ins[1:]), nil
	case cplan.TemplateMAgg:
		return ExecMAgg(op, ins[0], ins[1:]), nil
	case cplan.TemplateRow:
		return ExecRowwise(op, ins[0], ins[1:]), nil
	case cplan.TemplateOuter:
		if len(ins) < 3 {
			return nil, fmt.Errorf("runtime: outer operator needs X, U, V inputs, got %d", len(ins))
		}
		return ExecOuter(op, ins[0], ins[1], ins[2], ins[3:]), nil
	}
	return nil, fmt.Errorf("runtime: unknown template %v", op.Plan.Type)
}
