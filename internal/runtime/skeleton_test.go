package runtime

import (
	"math"
	"testing"

	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
)

// Reference plans built by hand, mirroring the paper's example expressions.

func TestCellNoAggDense(t *testing.T) {
	// f(a, b0) = a*b0 + 2
	root := cplan.Binary(matrix.BinAdd,
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0)),
		cplan.Lit(2))
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellNoAgg, Root: root, NumSides: 1}
	op := cplan.Compile(p, "TMP1")
	x := matrix.Rand(30, 20, 1, -1, 1, 1)
	y := matrix.Rand(30, 20, 1, -1, 1, 2)
	got := ExecCellwise(op, x, []*matrix.Matrix{y})
	want := matrix.ScalarRight(matrix.BinAdd, matrix.Binary(matrix.BinMul, x, y), 2)
	if !got.EqualsApprox(want, 1e-12) {
		t.Fatal("cell no-agg mismatch")
	}
}

func TestCellFullAggSumXYZ(t *testing.T) {
	// sum(X*Y*Z): Fig. 1(a) pattern.
	root := cplan.Binary(matrix.BinMul,
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0)),
		cplan.Side(1, cplan.AccessCell, 0))
	sparseSafe := cplan.ProbeSparseSafe(root)
	if !sparseSafe {
		t.Fatal("X*Y*Z must probe sparse-safe")
	}
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg,
		AggOp: matrix.AggSum, Root: root, SparseSafe: sparseSafe, NumSides: 2}
	op := cplan.Compile(p, "TMP2")
	for _, sp := range []float64{1, 0.1} {
		x := matrix.Rand(50, 40, sp, -1, 1, 3)
		y := matrix.Rand(50, 40, 1, -1, 1, 4)
		z := matrix.Rand(50, 40, 1, -1, 1, 5)
		got := ExecCellwise(op, x, []*matrix.Matrix{y, z}).Scalar()
		want := matrix.Sum(matrix.Binary(matrix.BinMul, matrix.Binary(matrix.BinMul, x, y), z))
		if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
			t.Fatalf("sp=%v: got %v want %v", sp, got, want)
		}
	}
}

func TestCellRowColAgg(t *testing.T) {
	// rowSums(X^2) and colSums(X^2).
	root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0))
	for _, tc := range []struct {
		cell cplan.CellType
		dir  matrix.AggDir
	}{
		{cplan.CellRowAgg, matrix.DirRow},
		{cplan.CellColAgg, matrix.DirCol},
	} {
		p := &cplan.Plan{Type: cplan.TemplateCell, Cell: tc.cell,
			AggOp: matrix.AggSum, Root: root, SparseSafe: true}
		op := cplan.Compile(p, "TMP3")
		for _, sp := range []float64{1, 0.15} {
			x := matrix.Rand(40, 30, sp, -2, 2, 6)
			got := ExecCellwise(op, x, nil)
			want := matrix.Agg(matrix.AggSum, tc.dir, matrix.Binary(matrix.BinMul, x, x))
			if !got.EqualsApprox(want, 1e-9) {
				t.Fatalf("cell %v sp=%v mismatch", tc.cell, sp)
			}
		}
	}
}

func TestCellSparseSafeKeepsPattern(t *testing.T) {
	// (X != 0) * 7 over a sparse X stays sparse.
	root := cplan.Binary(matrix.BinMul,
		cplan.Binary(matrix.BinNeq, cplan.Main(0), cplan.Lit(0)), cplan.Lit(7))
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellNoAgg,
		Root: root, SparseSafe: cplan.ProbeSparseSafe(root)}
	if !p.SparseSafe {
		t.Fatal("(X!=0)*7 must be sparse safe")
	}
	op := cplan.Compile(p, "TMP4")
	x := matrix.Rand(60, 60, 0.05, -1, 1, 7)
	got := ExecCellwise(op, x, nil)
	if !got.IsSparse() {
		t.Fatal("output should be sparse")
	}
	want := matrix.ScalarRight(matrix.BinMul, matrix.ScalarRight(matrix.BinNeq, x, 0), 7)
	if !got.EqualsApprox(want, 0) {
		t.Fatal("sparse-safe cell values mismatch")
	}
}

func TestCellSideAccessModes(t *testing.T) {
	// X * colvec + rowvec + scalarSide
	root := cplan.Binary(matrix.BinAdd,
		cplan.Binary(matrix.BinAdd,
			cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCol, 0)),
			cplan.Side(1, cplan.AccessRow, 0)),
		cplan.Side(2, cplan.AccessScalar, 0))
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellNoAgg, Root: root, NumSides: 3}
	op := cplan.Compile(p, "TMP5")
	x := matrix.Rand(20, 10, 1, -1, 1, 8)
	cv := matrix.Rand(20, 1, 1, -1, 1, 9)
	rv := matrix.Rand(1, 10, 1, -1, 1, 10)
	s := matrix.NewScalar(3)
	got := ExecCellwise(op, x, []*matrix.Matrix{cv, rv, s})
	want := matrix.ScalarRight(matrix.BinAdd,
		matrix.Binary(matrix.BinAdd, matrix.Binary(matrix.BinMul, x, cv), rv), 3)
	if !got.EqualsApprox(want, 1e-12) {
		t.Fatal("side access mismatch")
	}
	// Sparse side input exercises the stateful cursor.
	xs := matrix.Rand(20, 10, 1, -1, 1, 11)
	side := matrix.Rand(20, 10, 0.2, -1, 1, 12)
	root2 := cplan.Binary(matrix.BinAdd, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0))
	op2 := cplan.Compile(&cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellNoAgg, Root: root2}, "TMP6")
	got2 := ExecCellwise(op2, xs, []*matrix.Matrix{side})
	want2 := matrix.Binary(matrix.BinAdd, xs, side)
	if !got2.EqualsApprox(want2, 1e-12) {
		t.Fatal("sparse side cursor mismatch")
	}
}

func TestMAggSharedInput(t *testing.T) {
	// Fig. 1(c): sum(X*Y), sum(X*Z) in one pass.
	r1 := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0))
	r2 := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(1, cplan.AccessCell, 0))
	p := &cplan.Plan{Type: cplan.TemplateMAgg,
		Roots:      []*cplan.CNode{r1, r2},
		AggOps:     []matrix.AggOp{matrix.AggSum, matrix.AggSum},
		SparseSafe: cplan.ProbeSparseSafe(r1, r2)}
	if !p.SparseSafe {
		t.Fatal("multi-agg should be sparse safe (X is driver)")
	}
	op := cplan.Compile(p, "TMP7")
	for _, sp := range []float64{1, 0.1} {
		x := matrix.Rand(50, 40, sp, -1, 1, 13)
		y := matrix.Rand(50, 40, 1, -1, 1, 14)
		z := matrix.Rand(50, 40, 1, -1, 1, 15)
		got := ExecMAgg(op, x, []*matrix.Matrix{y, z})
		if got.Rows != 1 || got.Cols != 2 {
			t.Fatalf("magg output shape %dx%d", got.Rows, got.Cols)
		}
		w1 := matrix.Sum(matrix.Binary(matrix.BinMul, x, y))
		w2 := matrix.Sum(matrix.Binary(matrix.BinMul, x, z))
		if math.Abs(got.At(0, 0)-w1) > 1e-9 || math.Abs(got.At(0, 1)-w2) > 1e-9 {
			t.Fatalf("magg sp=%v: got %v, want (%v, %v)", sp, got, w1, w2)
		}
	}
}

func TestRowTemplateMVChain(t *testing.T) {
	// Fig. 1(b): t(X) %*% (X %*% v) in a single pass.
	// Per row: q_i = dot(X_i, v); accumulate C += q_i * X_i.
	n := 25
	vSide := cplan.Side(0, cplan.AccessRow, n) // v read as a length-n vector
	q := cplan.Agg(matrix.AggSum, cplan.Binary(matrix.BinMul, cplan.Main(n), vSide))
	p := &cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowColAggT, Root: q, MainWidth: n}
	op := cplan.Compile(p, "TMP8")
	for _, sp := range []float64{1, 0.1} {
		x := matrix.Rand(200, n, sp, -1, 1, 16)
		v := matrix.Rand(n, 1, 1, -1, 1, 17)
		got := ExecRowwise(op, x, []*matrix.Matrix{v})
		want := matrix.MatMult(matrix.Transpose(x), matrix.MatMult(x, v))
		if got.Rows != n || got.Cols != 1 {
			t.Fatalf("row output shape %dx%d", got.Rows, got.Cols)
		}
		if !got.EqualsApprox(want, 1e-9) {
			t.Fatalf("sp=%v: mvchain mismatch", sp)
		}
	}
}

func TestRowTemplateMLogregCore(t *testing.T) {
	// Expression (2): Q = P * (X %*% B); H = t(X) %*% (Q - P * rowSums(Q)).
	n, k := 12, 3
	xb := cplan.MatMultNode(cplan.Main(n), 0, k) // X_i %*% B -> 1×k
	pRow := cplan.Side(1, cplan.AccessCell, k)   // P_i
	q := cplan.Binary(matrix.BinMul, pRow, xb)   // Q_i
	rs := cplan.Agg(matrix.AggSum, q)            // rowSums(Q)_i
	inner := cplan.Binary(matrix.BinSub, q, cplan.Binary(matrix.BinMul, pRow, rs))
	p := &cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowColAggT, Root: inner, MainWidth: n}
	op := cplan.Compile(p, "TMP25")
	for _, sp := range []float64{1, 0.15} {
		x := matrix.Rand(150, n, sp, -1, 1, 18)
		b := matrix.Rand(n, k, 1, -1, 1, 19)
		pm := matrix.Rand(150, k, 1, 0, 1, 20)
		got := ExecRowwise(op, x, []*matrix.Matrix{b, pm})
		qm := matrix.Binary(matrix.BinMul, pm, matrix.MatMult(x, b))
		want := matrix.MatMult(matrix.Transpose(x),
			matrix.Binary(matrix.BinSub, qm,
				matrix.Binary(matrix.BinMul, pm, matrix.Agg(matrix.AggSum, matrix.DirRow, qm))))
		if !got.EqualsApprox(want, 1e-9) {
			t.Fatalf("sp=%v: mlogreg core mismatch", sp)
		}
	}
}

func TestRowTemplateVariants(t *testing.T) {
	n := 10
	x := matrix.Rand(50, n, 1, -1, 1, 21)
	// NoAgg: X * 2 + 1 row-wise.
	body := cplan.Binary(matrix.BinAdd,
		cplan.Binary(matrix.BinMul, cplan.Main(n), cplan.Lit(2)), cplan.Lit(1))
	opNo := cplan.Compile(&cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowNoAgg, Root: body, MainWidth: n}, "T1")
	got := ExecRowwise(opNo, x, nil)
	want := matrix.ScalarRight(matrix.BinAdd, matrix.ScalarRight(matrix.BinMul, x, 2), 1)
	if !got.EqualsApprox(want, 1e-12) {
		t.Fatal("row no-agg mismatch")
	}
	// RowAgg: rowSums(X*X).
	ra := cplan.Agg(matrix.AggSum, cplan.Binary(matrix.BinMul, cplan.Main(n), cplan.Main(n)))
	opRA := cplan.Compile(&cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowRowAgg, Root: ra, MainWidth: n}, "T2")
	got = ExecRowwise(opRA, x, nil)
	want = matrix.Agg(matrix.AggSum, matrix.DirRow, matrix.Binary(matrix.BinMul, x, x))
	if !got.EqualsApprox(want, 1e-9) {
		t.Fatal("row row-agg mismatch")
	}
	// ColAgg: colSums(X*2).
	ca := cplan.Binary(matrix.BinMul, cplan.Main(n), cplan.Lit(2))
	opCA := cplan.Compile(&cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowColAgg, Root: ca, MainWidth: n}, "T3")
	got = ExecRowwise(opCA, x, nil)
	want = matrix.Agg(matrix.AggSum, matrix.DirCol, matrix.ScalarRight(matrix.BinMul, x, 2))
	if !got.EqualsApprox(want, 1e-9) {
		t.Fatal("row col-agg mismatch")
	}
	// FullAgg: sum(X/rowSums-like scalar chain) – here sum(rowSums(X)*3).
	fa := cplan.Binary(matrix.BinMul, cplan.Agg(matrix.AggSum, cplan.Main(n)), cplan.Lit(3))
	opFA := cplan.Compile(&cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowFullAgg, Root: fa, MainWidth: n}, "T4")
	got = ExecRowwise(opFA, x, nil)
	if math.Abs(got.Scalar()-3*matrix.Sum(x)) > 1e-9 {
		t.Fatal("row full-agg mismatch")
	}
	// Idx: rowSums(X[, 2:5]).
	ix := cplan.Agg(matrix.AggSum, cplan.Idx(cplan.Main(n), 2, 5))
	opIx := cplan.Compile(&cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowRowAgg, Root: ix, MainWidth: n}, "T5")
	got = ExecRowwise(opIx, x, nil)
	want = matrix.Agg(matrix.AggSum, matrix.DirRow, matrix.IndexRange(x, 0, 50, 2, 5))
	if !got.EqualsApprox(want, 1e-9) {
		t.Fatal("row idx mismatch")
	}
}

func TestOuterRightMM(t *testing.T) {
	// Expression (1) core: ((X != 0) * (U V')) V.
	rank := 8
	root := cplan.Binary(matrix.BinMul,
		cplan.Binary(matrix.BinNeq, cplan.Main(0), cplan.Lit(0)), cplan.Dot())
	p := &cplan.Plan{Type: cplan.TemplateOuter, Out: cplan.OuterRightMM,
		Root: root, SparseSafe: cplan.ProbeSparseSafe(root), OuterRank: rank}
	if !p.SparseSafe {
		t.Fatal("(X!=0)*dot must be sparse safe")
	}
	op := cplan.Compile(p, "TMP9")
	x := matrix.Rand(80, 60, 0.1, 1, 2, 22)
	u := matrix.Rand(80, rank, 1, -1, 1, 23)
	v := matrix.Rand(60, rank, 1, -1, 1, 24)
	got := ExecOuter(op, x, u, v, nil)
	mask := matrix.ScalarRight(matrix.BinNeq, x, 0)
	uvt := matrix.MatMult(u, matrix.Transpose(v))
	want := matrix.MatMult(matrix.Binary(matrix.BinMul, mask, uvt), v)
	if !got.EqualsApprox(want, 1e-9) {
		t.Fatal("outer right-mm mismatch")
	}
}

func TestOuterLeftMM(t *testing.T) {
	rank := 6
	root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Dot())
	p := &cplan.Plan{Type: cplan.TemplateOuter, Out: cplan.OuterLeftMM,
		Root: root, SparseSafe: true, OuterRank: rank}
	op := cplan.Compile(p, "TMP10")
	x := matrix.Rand(50, 70, 0.12, 1, 2, 25)
	u := matrix.Rand(50, rank, 1, -1, 1, 26)
	v := matrix.Rand(70, rank, 1, -1, 1, 27)
	got := ExecOuter(op, x, u, v, nil)
	uvt := matrix.MatMult(u, matrix.Transpose(v))
	want := matrix.MatMult(matrix.Transpose(matrix.Binary(matrix.BinMul, x, uvt)), u)
	if !got.EqualsApprox(want, 1e-9) {
		t.Fatal("outer left-mm mismatch")
	}
}

func TestOuterAggAndNoAgg(t *testing.T) {
	// Fig. 1(d): sum(X * log(UV' + eps)).
	rank := 5
	root := cplan.Binary(matrix.BinMul, cplan.Main(0),
		cplan.Unary(matrix.UnLog, cplan.Binary(matrix.BinAdd, cplan.Dot(), cplan.Lit(1e-15))))
	p := &cplan.Plan{Type: cplan.TemplateOuter, Out: cplan.OuterAgg,
		Root: root, SparseSafe: cplan.ProbeSparseSafe(root), OuterRank: rank}
	if !p.SparseSafe {
		t.Fatal("X*log(dot+eps) must probe sparse-safe")
	}
	op := cplan.Compile(p, "TMP11")
	x := matrix.Rand(40, 50, 0.1, 1, 2, 28)
	u := matrix.Rand(40, rank, 1, 0.1, 1, 29)
	v := matrix.Rand(50, rank, 1, 0.1, 1, 30)
	got := ExecOuter(op, x, u, v, nil).Scalar()
	uvt := matrix.MatMult(u, matrix.Transpose(v))
	logm := matrix.Unary(matrix.UnLog, matrix.ScalarRight(matrix.BinAdd, uvt, 1e-15))
	want := matrix.Sum(matrix.Binary(matrix.BinMul, x, logm))
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("outer agg: got %v want %v", got, want)
	}
	// NoAgg keeps X's pattern.
	p2 := &cplan.Plan{Type: cplan.TemplateOuter, Out: cplan.OuterNoAgg,
		Root: root, SparseSafe: true, OuterRank: rank}
	op2 := cplan.Compile(p2, "TMP12")
	got2 := ExecOuter(op2, x, u, v, nil)
	if !got2.IsSparse() {
		t.Fatal("outer no-agg should stay sparse")
	}
	want2 := matrix.Binary(matrix.BinMul, x, logm)
	if !got2.EqualsApprox(want2, 1e-9) {
		t.Fatal("outer no-agg mismatch")
	}
}

func TestOuterDenseX(t *testing.T) {
	rank := 4
	root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Dot())
	p := &cplan.Plan{Type: cplan.TemplateOuter, Out: cplan.OuterAgg,
		Root: root, SparseSafe: true, OuterRank: rank}
	op := cplan.Compile(p, "TMP13")
	x := matrix.Rand(30, 30, 1, -1, 1, 31)
	u := matrix.Rand(30, rank, 1, -1, 1, 32)
	v := matrix.Rand(30, rank, 1, -1, 1, 33)
	got := ExecOuter(op, x, u, v, nil).Scalar()
	uvt := matrix.MatMult(u, matrix.Transpose(v))
	want := matrix.Sum(matrix.Binary(matrix.BinMul, x, uvt))
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("outer dense: got %v want %v", got, want)
	}
}

func TestInterpretedMatchesCompiled(t *testing.T) {
	root := cplan.Binary(matrix.BinAdd,
		cplan.Unary(matrix.UnExp, cplan.Main(0)),
		cplan.Binary(matrix.BinMul, cplan.Side(0, cplan.AccessCell, 0), cplan.Lit(2)))
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellNoAgg, Root: root}
	fast := cplan.Compile(p, "F")
	slow := cplan.CompileInterpreted(p, "S")
	x := matrix.Rand(20, 20, 1, -1, 1, 34)
	y := matrix.Rand(20, 20, 1, -1, 1, 35)
	a := ExecCellwise(fast, x, []*matrix.Matrix{y})
	b := ExecCellwise(slow, x, []*matrix.Matrix{y})
	if !a.EqualsApprox(b, 0) {
		t.Fatal("interpreted and compiled genexec disagree")
	}
}

func TestCompileSlowProducesSameOperator(t *testing.T) {
	root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Lit(3))
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg, AggOp: matrix.AggSum, Root: root, SparseSafe: true}
	op, err := cplan.CompileSlow(p, "TMP14")
	if err != nil {
		t.Fatalf("CompileSlow: %v", err)
	}
	x := matrix.Rand(10, 10, 1, -1, 1, 36)
	got := ExecCellwise(op, x, nil).Scalar()
	if math.Abs(got-3*matrix.Sum(x)) > 1e-9 {
		t.Fatal("slow-compiled operator wrong")
	}
	if op.Source == "" || op.Hash == 0 {
		t.Fatal("operator missing source artifact or hash")
	}
}

func TestExecuteDAGBasicOps(t *testing.T) {
	d := buildSimpleDAG()
	x := matrix.Rand(30, 10, 1, -1, 1, 37)
	out, err := ExecuteDAG(d, Env{"X": x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Sum(matrix.Binary(matrix.BinMul, x, x))
	if math.Abs(out["s"].Scalar()-want) > 1e-9 {
		t.Fatal("DAG execution mismatch")
	}
}

func buildSimpleDAG() *dagAlias {
	d := newDAG()
	x := d.Read("X", 30, 10, -1)
	d.Output("s", d.Sum(d.Binary(matrix.BinMul, x, x)))
	return d
}

// aliases keep the DAG-building test terse.
type dagAlias = hop.DAG

func newDAG() *dagAlias { return hop.NewDAG() }

func TestRowCumsumInstruction(t *testing.T) {
	// Row program with RCumsumV: per-row running sums.
	n := 16
	p := &cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowNoAgg,
		Root: cplan.CumsumNode(cplan.Main(n)), MainWidth: n}
	op := cplan.Compile(p, "TC")
	x := matrix.Rand(40, n, 1, -1, 1, 77)
	got := ExecRowwise(op, x, nil)
	want := matrix.Transpose(matrix.Cumsum(matrix.Transpose(x)))
	if !got.EqualsApprox(want, 1e-12) {
		t.Fatal("row cumsum mismatch")
	}
}
