package codegen_test

import (
	"sync"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/cplan"
)

// litPlan builds a minimal distinct Cell plan (hash varies with v).
func litPlan(v float64) *cplan.Plan {
	return &cplan.Plan{Type: cplan.TemplateCell, Root: cplan.Lit(v), SparseSafe: true}
}

// TestSharedPlanCacheConcurrentViews hammers one shared store through one
// view per tenant from concurrent goroutines: per-tenant hit/miss counters
// must account for exactly that tenant's lookups, aggregate counters must
// equal the per-view sums, and generated class IDs must never collide.
func TestSharedPlanCacheConcurrentViews(t *testing.T) {
	const tenants, plans, reps = 8, 16, 10
	cfg := codegen.DefaultConfig()
	shared := codegen.NewSharedPlanCache(true, 0, 4, 1)
	views := make([]*codegen.PlanCache, tenants)
	for i := range views {
		views[i] = shared.View()
	}
	ids := make([][]int, tenants)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			v := views[ti]
			for r := 0; r < reps; r++ {
				for p := 0; p < plans; p++ {
					_, _, err := v.GetOrCompile(litPlan(float64(p)), &cfg, func() string { return "T" })
					if err != nil {
						t.Errorf("tenant %d: %v", ti, err)
						return
					}
				}
				ids[ti] = append(ids[ti], v.NextClassID())
			}
		}(ti)
	}
	wg.Wait()

	var sumHits, sumMisses int64
	for ti, v := range views {
		hits, misses, _ := v.Counters()
		if hits+misses != plans*reps {
			t.Errorf("tenant %d: %d lookups accounted, want %d", ti, hits+misses, plans*reps)
		}
		sumHits += hits
		sumMisses += misses
	}
	hits, misses, _ := shared.TotalCounters()
	if hits != sumHits || misses != sumMisses {
		t.Errorf("aggregate (%d, %d) != per-view sums (%d, %d)", hits, misses, sumHits, sumMisses)
	}
	if got := shared.Size(); got != plans {
		t.Errorf("store holds %d plans, want %d", got, plans)
	}
	seen := map[int]bool{}
	for _, tenantIDs := range ids {
		for _, id := range tenantIDs {
			if seen[id] {
				t.Fatalf("class ID %d issued twice", id)
			}
			seen[id] = true
		}
	}
}

// TestPlanCacheViewIsolation: lookups through one view must not move
// another view's counters, even though the store is shared.
func TestPlanCacheViewIsolation(t *testing.T) {
	cfg := codegen.DefaultConfig()
	shared := codegen.NewSharedPlanCache(true, 0, 2, 1)
	a, b := shared.View(), shared.View()
	for i := 0; i < 5; i++ {
		a.GetOrCompile(litPlan(1), &cfg, func() string { return "T" })
	}
	if hits, misses, _ := b.Counters(); hits != 0 || misses != 0 {
		t.Errorf("idle view counted (%d hits, %d misses)", hits, misses)
	}
	aHits, aMisses, _ := a.Counters()
	if aMisses != 1 || aHits != 4 {
		t.Errorf("active view counted (%d hits, %d misses), want (4, 1)", aHits, aMisses)
	}
	// The second view shares the store: its first lookup is a hit.
	_, hit, _ := b.GetOrCompile(litPlan(1), &cfg, func() string { return "T" })
	if !hit {
		t.Error("shared store did not serve the other view's plan")
	}
}

// TestPlanCacheAdmission: with admitAfter=2 a plan enters the store only
// on its second compile, keeping one-off plans out.
func TestPlanCacheAdmission(t *testing.T) {
	cfg := codegen.DefaultConfig()
	pc := codegen.NewSharedPlanCache(true, 0, 1, 2)
	p := litPlan(7)
	pc.GetOrCompile(p, &cfg, func() string { return "T" })
	if pc.Contains(p.Hash()) {
		t.Error("plan admitted on first compile despite admitAfter=2")
	}
	pc.GetOrCompile(p, &cfg, func() string { return "T" })
	if !pc.Contains(p.Hash()) {
		t.Error("plan not admitted on second compile")
	}
	if _, hit, _ := pc.GetOrCompile(p, &cfg, func() string { return "T" }); !hit {
		t.Error("admitted plan not served from the store")
	}
}

// TestPlanCacheInvalidate: invalidation must remove the entry from the
// store, the FIFO order, and the admission ledger symmetrically — a ghost
// order entry would shrink the effective capacity and a surviving
// admission count would readmit a stale plan on its next first compile.
func TestPlanCacheInvalidate(t *testing.T) {
	cfg := codegen.DefaultConfig()
	const maxEntries = 8
	pc := codegen.NewSharedPlanCache(true, maxEntries, 1, 2)
	p := litPlan(3)
	pc.GetOrCompile(p, &cfg, func() string { return "T" })
	pc.GetOrCompile(p, &cfg, func() string { return "T" })
	if !pc.Contains(p.Hash()) {
		t.Fatal("plan not admitted after two compiles")
	}

	v := pc.View()
	if removed := v.Invalidate(p.Hash()); removed != 1 {
		t.Fatalf("Invalidate removed %d entries, want 1", removed)
	}
	if pc.Contains(p.Hash()) {
		t.Error("plan still in the store after invalidation")
	}
	if got := pc.Size(); got != 0 {
		t.Errorf("store size %d after invalidating its only entry", got)
	}
	if got := v.Invalidations(); got != 1 {
		t.Errorf("view counted %d invalidations, want 1", got)
	}
	if got := pc.TotalInvalidations(); got != 1 {
		t.Errorf("store counted %d invalidations, want 1", got)
	}
	// Admission ledger cleared: the plan must earn admission from scratch.
	pc.GetOrCompile(p, &cfg, func() string { return "T" })
	if pc.Contains(p.Hash()) {
		t.Error("invalidated plan readmitted on its first recompile (seen not cleared)")
	}
	pc.GetOrCompile(p, &cfg, func() string { return "T" })
	if !pc.Contains(p.Hash()) {
		t.Error("plan not readmitted on its second recompile")
	}
	// Unknown hashes are a no-op, not a phantom removal.
	if removed := v.Invalidate(0xdead); removed != 0 {
		t.Errorf("Invalidate removed %d entries for an unknown hash", removed)
	}

	// No phantom capacity loss: fill the bounded store, invalidate half,
	// refill — the freed slots must absorb the new plans without evictions.
	pc2 := codegen.NewSharedPlanCache(true, maxEntries, 1, 1)
	hashes := make([]uint64, maxEntries)
	for i := 0; i < maxEntries; i++ {
		p := litPlan(float64(100 + i))
		hashes[i] = p.Hash()
		pc2.GetOrCompile(p, &cfg, func() string { return "T" })
	}
	v2 := pc2.View()
	if removed := v2.Invalidate(hashes[:maxEntries/2]...); removed != maxEntries/2 {
		t.Fatalf("bulk Invalidate removed %d, want %d", removed, maxEntries/2)
	}
	for i := 0; i < maxEntries/2; i++ {
		pc2.GetOrCompile(litPlan(float64(200+i)), &cfg, func() string { return "T" })
	}
	if _, _, evictions := pc2.Counters(); evictions != 0 {
		t.Errorf("%d evictions after refilling invalidated slots (ghost order entries)", evictions)
	}
	if got := pc2.Size(); got != maxEntries {
		t.Errorf("store size %d, want %d", got, maxEntries)
	}
}

// TestPlanCacheInvalidateViewIsolation: per-tenant invalidation counters
// move only on the invoking view, mirroring hit/miss isolation.
func TestPlanCacheInvalidateViewIsolation(t *testing.T) {
	cfg := codegen.DefaultConfig()
	shared := codegen.NewSharedPlanCache(true, 0, 2, 1)
	a, b := shared.View(), shared.View()
	p := litPlan(9)
	a.GetOrCompile(p, &cfg, func() string { return "T" })
	b.Invalidate(p.Hash())
	if got := a.Invalidations(); got != 0 {
		t.Errorf("idle view counted %d invalidations", got)
	}
	if got := b.Invalidations(); got != 1 {
		t.Errorf("invoking view counted %d invalidations, want 1", got)
	}
	if got := shared.TotalInvalidations(); got != 1 {
		t.Errorf("aggregate %d invalidations, want 1", got)
	}
}

// TestPlanCacheBounded: a bounded sharded store evicts FIFO per shard and
// never exceeds its per-shard ceilings.
func TestPlanCacheBounded(t *testing.T) {
	cfg := codegen.DefaultConfig()
	const maxEntries, shards = 8, 4
	pc := codegen.NewSharedPlanCache(true, maxEntries, shards, 1)
	for i := 0; i < 100; i++ {
		pc.GetOrCompile(litPlan(float64(i)), &cfg, func() string { return "T" })
	}
	// shardMax = ceil(8/4) = 2 per shard, so at most 8 total survive.
	if got := pc.Size(); got > maxEntries {
		t.Errorf("bounded cache holds %d entries, cap %d", got, maxEntries)
	}
	if _, _, evictions := pc.Counters(); evictions == 0 {
		t.Error("no evictions counted after overflowing a bounded cache")
	}
}
