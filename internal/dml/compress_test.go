package dml

import (
	"math"
	"strings"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/compress"
	"sysml/internal/matrix"
)

// claInput generates a low-cardinality bound input large enough to clear
// the auto-compress size floor.
func claInput(rows, cols, card int, seed int64) *matrix.Matrix {
	m := matrix.Rand(rows, cols, 1, 0, float64(card), seed)
	d := m.Dense()
	for i := range d {
		d[i] = math.Floor(d[i])
	}
	return m
}

func TestAutoCompressAttachesAndMatchesDense(t *testing.T) {
	script := `
		s = sum(X * X)
		c = colSums(X + 1)
		m = sum(X) / (nrow(X) * ncol(X))
	`
	x := claInput(4000, 6, 8, 11)
	xc := x.Clone()

	auto := newTestSession(codegen.ModeGen)
	auto.Bind("X", x)
	if err := auto.Run(script); err != nil {
		t.Fatal(err)
	}
	if compress.Of(x) == nil {
		t.Fatal("auto-compress should attach a compressed form to X")
	}
	snap := auto.Metrics()
	if snap.Counters["compress.auto.compressed"] == 0 {
		t.Fatal("compress.auto.compressed counter not incremented")
	}
	if r := snap.Gauges["compress.ratio"]; r < 2 {
		t.Fatalf("compress.ratio gauge = %v, want >= 2", r)
	}

	off := newTestSession(codegen.ModeGen)
	off.Config.Compress = codegen.CompressOff
	off.Bind("X", xc)
	if err := off.Run(script); err != nil {
		t.Fatal(err)
	}
	if compress.Of(xc) != nil {
		t.Fatal("CompressOff must not attach")
	}
	for _, name := range []string{"s", "c", "m"} {
		a, err1 := auto.Get(name)
		b, err2 := off.Get(name)
		if err1 != nil || err2 != nil {
			t.Fatalf("missing output %s: %v %v", name, err1, err2)
		}
		if !a.EqualsApprox(b, 1e-9) {
			t.Fatalf("compressed result %s differs from dense", name)
		}
	}
	compress.Drop(x)
	compress.Drop(xc)
}

func TestAutoCompressDeclinesIncompressible(t *testing.T) {
	x := matrix.Rand(4000, 6, 1, -1, 1, 12) // all-distinct: ratio ~1
	s := newTestSession(codegen.ModeGen)
	s.Bind("X", x)
	if err := s.Run("s = sum(X * X)"); err != nil {
		t.Fatal(err)
	}
	if compress.Of(x) != nil {
		t.Fatal("incompressible input must not be compressed")
	}
	if reason, ok := compress.DeclineReason(x); !ok || reason == "" {
		t.Fatal("decline must be cached with a reason")
	}
	if s.Metrics().Counters["compress.auto.declined"] == 0 {
		t.Fatal("compress.auto.declined counter not incremented")
	}
	// Re-running must reuse the cached decline, not re-estimate per block.
	declined := s.Metrics().Counters["compress.auto.declined"]
	if err := s.Run("t = sum(X)"); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Counters["compress.auto.declined"]; got != declined {
		t.Fatalf("decline not cached: counter %d -> %d", declined, got)
	}
	compress.Drop(x)
}

func TestCompressOnForcesCompression(t *testing.T) {
	x := claInput(3000, 4, 5, 13)
	s := newTestSession(codegen.ModeGen)
	s.Config.Compress = codegen.CompressOn
	s.Bind("X", x)
	if err := s.Run("s = sum(X)"); err != nil {
		t.Fatal(err)
	}
	if compress.Of(x) == nil {
		t.Fatal("CompressOn must attach")
	}
	compress.Drop(x)
}

func TestExplainCompressedSection(t *testing.T) {
	x := claInput(4000, 5, 6, 14)
	s := newTestSession(codegen.ModeGen)
	s.Bind("X", x)
	out, err := s.Explain("s = sum(X * X)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "COMPRESSED") {
		t.Fatalf("EXPLAIN lacks COMPRESSED section:\n%s", out)
	}
	if !strings.Contains(out, "X 4000x5") {
		t.Fatalf("EXPLAIN lacks per-input compression line:\n%s", out)
	}
	compress.Drop(x)
}

func TestRebindReleasesAttachment(t *testing.T) {
	x := claInput(3000, 4, 5, 15)
	s := newTestSession(codegen.ModeGen)
	s.Config.Compress = codegen.CompressOn
	s.Bind("X", x)
	if err := s.Run("s = sum(X)\nX = X + 1\nt = sum(X)"); err != nil {
		t.Fatal(err)
	}
	// The block output X is rebound; its new matrix must not inherit the old
	// attachment, and results must stay consistent.
	a, _ := s.Scalar("s")
	b, _ := s.Scalar("t")
	if math.Abs((a+3000*4)-b) > 1e-6 {
		t.Fatalf("rebound X results inconsistent: s=%v t=%v", a, b)
	}
	compress.Drop(x)
}
