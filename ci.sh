#!/usr/bin/env bash
# CI gate for the sysml repo: static checks, docs lint, full test suite
# under the race detector, the kernel performance gates (BENCH_kernels.json
# must report "pass": true), the distributed-backend gates (BENCH_dist.json
# likewise), the fault-tolerance gates (BENCH_fault.json likewise), the
# multi-tenant serving gates (BENCH_serve.json likewise), the serving
# observability gates (BENCH_serveobs.json likewise), the
# horizontal-fusion gates (BENCH_hfuse.json likewise), the
# compressed-execution gates (BENCH_cla.json likewise), and the
# feedback/re-optimization gates (BENCH_recost.json likewise).
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== docs lint (docscheck) =="
go run ./cmd/docscheck

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== kernel gates (fusebench -exp kernels) =="
go run ./cmd/fusebench -exp kernels
if ! grep -q '"pass": true' BENCH_kernels.json; then
  echo "FAIL: BENCH_kernels.json gates did not pass" >&2
  cat BENCH_kernels.json >&2
  exit 1
fi
echo "== distributed gates (fusebench -exp dist) =="
go run ./cmd/fusebench -exp dist
if ! grep -q '"pass": true' BENCH_dist.json; then
  echo "FAIL: BENCH_dist.json gates did not pass" >&2
  cat BENCH_dist.json >&2
  exit 1
fi
echo "== fault-tolerance gates (fusebench -exp fault) =="
go run ./cmd/fusebench -exp fault
if ! grep -q '"pass": true' BENCH_fault.json; then
  echo "FAIL: BENCH_fault.json gates did not pass" >&2
  cat BENCH_fault.json >&2
  exit 1
fi
echo "== serving gates (fusebench -exp serve) =="
go run ./cmd/fusebench -exp serve
if ! grep -q '"pass": true' BENCH_serve.json; then
  echo "FAIL: BENCH_serve.json gates did not pass" >&2
  cat BENCH_serve.json >&2
  exit 1
fi
echo "== serving observability gates (fusebench -exp serveobs) =="
go run ./cmd/fusebench -exp serveobs
if ! grep -q '"pass": true' BENCH_serveobs.json; then
  echo "FAIL: BENCH_serveobs.json gates did not pass" >&2
  cat BENCH_serveobs.json >&2
  exit 1
fi
echo "== horizontal fusion gates (fusebench -exp hfuse) =="
go run ./cmd/fusebench -exp hfuse
if ! grep -q '"pass": true' BENCH_hfuse.json; then
  echo "FAIL: BENCH_hfuse.json gates did not pass" >&2
  cat BENCH_hfuse.json >&2
  exit 1
fi
echo "== compressed execution gates (fusebench -exp cla) =="
go run ./cmd/fusebench -exp cla
if ! grep -q '"pass": true' BENCH_cla.json; then
  echo "FAIL: BENCH_cla.json gates did not pass" >&2
  cat BENCH_cla.json >&2
  exit 1
fi
echo "== feedback/re-optimization gates (fusebench -exp recost) =="
go run ./cmd/fusebench -exp recost
if ! grep -q '"pass": true' BENCH_recost.json; then
  echo "FAIL: BENCH_recost.json gates did not pass" >&2
  cat BENCH_recost.json >&2
  exit 1
fi
echo "OK: all CI gates passed"
