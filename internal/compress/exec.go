package compress

// Execution helpers for the runtime's compressed fused skeleton: the
// scatter-shaped paths (cellwise NoAgg, rowwise outputs) need to map a
// function over each distinct dictionary tuple once and then fan the mapped
// results out by row. These helpers keep the encoding-specific iteration
// (codes, runs, offset lists) inside the package, next to the group
// representations.

// MapInto evaluates fn element-wise over the group's columns for rows
// [lo, hi) and writes each result into the row-major destination:
// dst[r*stride + c] = fn(value(r, c), c) for every absolute column c of the
// group. Dictionary-coded groups evaluate fn once per distinct tuple and
// scatter the mapped tuple by row — the per-distinct-value win; the
// uncompressed fallback applies fn per cell.
func MapInto(g ColGroup, dst []float64, stride, lo, hi int, fn func(v float64, c int) float64) {
	cols := g.Cols()
	switch g := g.(type) {
	case *DDCGroup:
		mapped := mapDict(g.dict, cols, fn)
		for r := lo; r < hi; r++ {
			t := mapped[g.codes[r]]
			base := r * stride
			for j, c := range cols {
				dst[base+c] = t[j]
			}
		}
	case *RLEGroup:
		mapped := mapDict(g.dict, cols, fn)
		for code, runs := range g.runs {
			t := mapped[code]
			for k := 0; k < len(runs); k += 2 {
				start, n := int(runs[k]), int(runs[k+1])
				end := start + n
				if start < lo {
					start = lo
				}
				if end > hi {
					end = hi
				}
				for r := start; r < end; r++ {
					base := r * stride
					for j, c := range cols {
						dst[base+c] = t[j]
					}
				}
			}
		}
	case *OLEGroup:
		// Fill the mapped zero tuple everywhere first (fn(0) may be
		// non-zero), then overwrite the offset rows per non-zero tuple.
		zt := make([]float64, len(cols))
		for j, c := range cols {
			zt[j] = fn(0, c)
		}
		for r := lo; r < hi; r++ {
			base := r * stride
			for j, c := range cols {
				dst[base+c] = zt[j]
			}
		}
		mapped := mapDict(g.dict, cols, fn)
		for code, offs := range g.offsets {
			t := mapped[code]
			for _, o := range offs {
				r := int(o)
				if r < lo || r >= hi {
					continue
				}
				base := r * stride
				for j, c := range cols {
					dst[base+c] = t[j]
				}
			}
		}
	default:
		for r := lo; r < hi; r++ {
			base := r * stride
			for j, c := range cols {
				dst[base+c] = fn(g.ValueAt(r, j), c)
			}
		}
	}
}

func mapDict(dict [][]float64, cols []int, fn func(v float64, c int) float64) [][]float64 {
	mapped := make([][]float64, len(dict))
	for i, tuple := range dict {
		mt := make([]float64, len(tuple))
		for j, v := range tuple {
			mt[j] = fn(v, cols[j])
		}
		mapped[i] = mt
	}
	return mapped
}

// Codes returns a per-row dictionary-code vector for the group, with codes
// in the order ForEachDistinct visits tuples (OLE's implicit zero tuple
// gets the last code). Uncompressed groups return nil — they have no
// dictionary to index. The rowwise compressed skeleton uses this to scatter
// per-distinct row-program results back to output rows.
func Codes(g ColGroup) []int32 {
	switch g := g.(type) {
	case *DDCGroup:
		out := make([]int32, len(g.codes))
		for i, c := range g.codes {
			out[i] = int32(c)
		}
		return out
	case *RLEGroup:
		out := make([]int32, g.rows)
		for code, runs := range g.runs {
			for k := 0; k < len(runs); k += 2 {
				start, n := int(runs[k]), int(runs[k+1])
				for i := 0; i < n; i++ {
					out[start+i] = int32(code)
				}
			}
		}
		return out
	case *OLEGroup:
		zeroCode := int32(len(g.dict))
		out := make([]int32, g.rows)
		for i := range out {
			out[i] = zeroCode
		}
		for code, offs := range g.offsets {
			for _, o := range offs {
				out[o] = int32(code)
			}
		}
		return out
	}
	return nil
}
