// Package sysml is a Go reproduction of "On Optimizing Operator Fusion
// Plans for Large-Scale Machine Learning in SystemML" (Boehm et al., VLDB
// 2018): a declarative machine-learning runtime with a cost-based operator
// fusion optimizer.
//
// The public API exposes three layers:
//
//   - Matrices: dense/sparse FP64 matrices with multi-threaded kernels
//     (NewDenseMatrix, RandMatrix, ...).
//   - Sessions: execute DML-subset scripts; every statement block flows
//     through rewrites and the fusion optimizer before execution
//     (NewSession, Session.Run).
//   - Configuration: choose the plan selection policy — Base (no fusion),
//     Fused (hand-coded operators), Gen (cost-based optimizer, default),
//     GenFA / GenFNR (the fuse-all and fuse-no-redundancy heuristics) —
//     and inspect optimizer statistics.
//
// Quick start:
//
//	s := sysml.NewSession()
//	s.Bind("X", sysml.RandMatrix(10000, 100, 1, -1, 1, 7))
//	err := s.Run(`w = t(X) %*% (X %*% t(colSums(X / 100)))`)
//
// Sessions are observable: Session.Explain returns the optimizer's plan
// report for a script, Session.Metrics snapshots runtime counters and
// phase timings, and WithSink streams explain reports and trace spans to
// any writer.
//
// Large operators can run on a simulated Spark-like cluster (NewCluster,
// WithCluster) with broadcast/shuffle byte accounting, and the cluster's
// fault-tolerant scheduler survives injected failures (WithFaultPlan):
// transient task errors are retried with backoff, a killed executor's
// unexecuted panels are reassigned via lineage, and stragglers are
// speculatively re-executed.
//
// See DESIGN.md for the system inventory, docs/ARCHITECTURE.md for the
// package map, and EXPERIMENTS.md for the paper-reproduction results.
package sysml

import (
	"io"
	"sync"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dist"
	"sysml/internal/dml"
	"sysml/internal/matrix"
	"sysml/internal/obs"
	"sysml/internal/serve"
)

// Matrix is a two-dimensional FP64 matrix in dense or sparse (CSR)
// representation.
type Matrix = matrix.Matrix

// NewDenseMatrix returns an all-zero dense rows×cols matrix.
func NewDenseMatrix(rows, cols int) *Matrix { return matrix.NewDense(rows, cols) }

// NewDenseMatrixData wraps an existing row-major backing slice.
func NewDenseMatrixData(rows, cols int, data []float64) *Matrix {
	return matrix.NewDenseData(rows, cols, data)
}

// RandMatrix generates a random matrix with the given non-zero fraction
// and value range, deterministically from the seed.
func RandMatrix(rows, cols int, sparsity, lo, hi float64, seed int64) *Matrix {
	return matrix.Rand(rows, cols, sparsity, lo, hi, seed)
}

// Scalar wraps a float64 as a 1×1 matrix (how scalars flow through the
// runtime).
func Scalar(v float64) *Matrix { return matrix.NewScalar(v) }

// Config controls the fusion optimizer; construct with DefaultConfig and
// adjust fields.
type Config = codegen.Config

// Mode selects the plan selection policy.
type Mode = codegen.Mode

// Plan selection policies (paper §4-5 baselines).
const (
	ModeBase   = codegen.ModeBase
	ModeFused  = codegen.ModeFused
	ModeGen    = codegen.ModeGen
	ModeGenFA  = codegen.ModeGenFA
	ModeGenFNR = codegen.ModeGenFNR
)

// DefaultConfig returns the production configuration: the cost-based
// optimizer with plan cache and both pruning techniques enabled.
func DefaultConfig() Config { return codegen.DefaultConfig() }

// Session executes DML-subset scripts against bound inputs.
type Session = dml.Session

// Option configures a Session at construction time.
type Option func(*sessionOpts)

type sessionOpts struct {
	cfg     Config
	sink    Sink
	cluster *Cluster
}

// WithConfig replaces the whole optimizer configuration (the default is
// DefaultConfig). Apply it before options that adjust single fields.
func WithConfig(cfg Config) Option {
	return func(o *sessionOpts) { o.cfg = cfg }
}

// WithMode selects the fusion plan selection policy.
func WithMode(m Mode) Option {
	return func(o *sessionOpts) { o.cfg.Mode = m }
}

// WithCluster attaches a simulated distributed backend; operators marked
// for distributed execution then run across its executors with
// broadcast/shuffle accounting.
func WithCluster(c *Cluster) Option {
	return func(o *sessionOpts) { o.cluster = c }
}

// WithSink streams observability events — per-block EXPLAIN reports and
// compile/optimize/execute trace spans — to the given sink.
func WithSink(sink Sink) Option {
	return func(o *sessionOpts) { o.sink = sink }
}

// WithPlanCacheSize bounds the compiled-operator plan cache to n entries
// (0 = unbounded); the oldest entry is evicted when full.
func WithPlanCacheSize(n int) Option {
	return func(o *sessionOpts) {
		o.cfg.PlanCache = true
		o.cfg.PlanCacheSize = n
	}
}

// NewSession creates a script session on the default engine. With no
// options it uses DefaultConfig; combine options to adjust it:
//
//	s := sysml.NewSession(
//		sysml.WithMode(sysml.ModeGen),
//		sysml.WithSink(sysml.NewWriterSink(os.Stderr)),
//	)
//
// Sessions needing dedicated resources — a private worker-pool cap, a
// memory budget, a shared plan cache — come from an explicit Engine via
// NewEngine and Engine.NewSession.
func NewSession(opts ...Option) *Session {
	return newSessionOn(DefaultEngine(), opts...)
}

func newSessionOn(e *Engine, opts ...Option) *Session {
	so := sessionOpts{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&so)
	}
	s := e.NewSession(so.cfg)
	s.Sink = so.sink
	if so.cluster != nil {
		s.Dist = so.cluster
	}
	return s
}

// Engine owns the execution resources that back sessions and serving: a
// worker pool, a buffer pool with a live-bytes gauge, and a sharded
// compiled-plan cache with per-tenant accounting. Two engines in one
// process share no mutable state, so service tiers can run side by side
// with different caps and budgets. Construct with NewEngine; serve over
// HTTP with ServeEngine.
type Engine = serve.Engine

// EngineOption configures an Engine at construction time; see
// WithMaxWorkers, WithMemoryBudget, WithTenantQuota, WithSharedPlanCache,
// and WithEngineConfig.
type EngineOption = serve.EngineOption

// TenantQuota bounds one tenant's slice of an engine: concurrent
// sessions, cached plans, and live pooled bytes.
type TenantQuota = serve.TenantQuota

// NewEngine builds an execution engine:
//
//	e := sysml.NewEngine(
//		sysml.WithMaxWorkers(8),
//		sysml.WithMemoryBudget(1<<30),
//		sysml.WithTenantQuota(sysml.TenantQuota{MaxSessions: 4}),
//	)
//	s := e.NewSession(sysml.DefaultConfig())
//
// With no options the engine delegates to the process-wide default pools.
func NewEngine(opts ...EngineOption) *Engine { return serve.NewEngine(opts...) }

// WithMaxWorkers gives the engine a private worker pool capped at n
// goroutines (n <= 0 means GOMAXPROCS).
func WithMaxWorkers(n int) EngineOption { return serve.WithMaxWorkers(n) }

// WithMemoryBudget gives the engine a private buffer pool and sheds
// serving requests (HTTP 429) while live pooled bytes exceed the budget.
func WithMemoryBudget(bytes int64) EngineOption { return serve.WithMemoryBudget(bytes) }

// WithTenantQuota sets the default quota for tenants created on first use.
func WithTenantQuota(q TenantQuota) EngineOption { return serve.WithTenantQuota(q) }

// WithSharedPlanCache sizes the engine's sharded compiled-plan cache and
// makes Engine.NewSession hand out views of it (shared operators,
// per-view hit/miss counters).
func WithSharedPlanCache(maxEntries, shards, admitAfter int) EngineOption {
	return serve.WithSharedPlanCache(maxEntries, shards, admitAfter)
}

// WithEngineConfig replaces the optimizer configuration the engine's
// tenant sessions run under (default DefaultConfig).
func WithEngineConfig(cfg Config) EngineOption { return serve.WithConfig(cfg) }

// WithCalibration attaches an engine-level shared cost-model calibrator:
// every tenant session streams its measured operator executions into it,
// the fitted ReadBW/WriteBW/FlopRate/BroadcastBW constants flow back into
// plan costing, and cached plans re-optimize when the constants change.
// When path is non-empty, a valid profile there seeds the constants and
// Engine.SaveProfile persists the fit back; see docs/COST_MODEL.md for the
// profile format and divergence thresholds.
func WithCalibration(path string) EngineOption { return serve.WithCalibration(path) }

// Calibrator fits the cost model's hardware constants from measured
// executions; attach one to a Session (Session.Calib) or an engine
// (WithCalibration).
type Calibrator = codegen.Calibrator

// NewCalibrator returns a calibrator whose prior is the given cost model's
// constants (typically DefaultConfig().Costs).
func NewCalibrator(base codegen.CostModel) *Calibrator { return codegen.NewCalibrator(base) }

// CalibrationProfile is the persisted per-machine calibration result: the
// fitted cost-model constants plus provenance.
type CalibrationProfile = codegen.Profile

// LoadCalibrationProfile reads and validates a calibration profile JSON
// file, rejecting corrupt, version-mismatched, implausible, or stale
// profiles (callers then fall back to the paper-default constants).
func LoadCalibrationProfile(path string) (CalibrationProfile, error) {
	return codegen.LoadProfile(path)
}

// CostModel holds the analytical cost model's bandwidth and compute
// constants (Config.Costs).
type CostModel = codegen.CostModel

// ReoptConfig holds the divergence thresholds for mid-script
// re-optimization (Config.Reopt).
type ReoptConfig = codegen.ReoptConfig

// defaultEngine backs NewSession: created lazily on first use, it wraps
// the process-wide default pools, so plain sessions behave exactly as
// before engines existed.
var defaultEngine struct {
	once sync.Once
	e    *Engine
}

// DefaultEngine returns the lazily created engine behind NewSession.
func DefaultEngine() *Engine {
	defaultEngine.once.Do(func() { defaultEngine.e = serve.NewEngine() })
	return defaultEngine.e
}

// ScoreServer is a running multi-tenant scoring HTTP server; see
// ServeEngine.
type ScoreServer = serve.Server

// ScoreRequest is the /v1/run payload accepted by a ScoreServer.
type ScoreRequest = serve.RunRequest

// ScoreResponse is the /v1/run result returned by a ScoreServer.
type ScoreResponse = serve.RunResponse

// ScoreServerOption configures a ScoreServer started by ServeEngine; see
// WithFlightRecorder and WithPprof.
type ScoreServerOption = serve.ServerOption

// FlightRecorder is the serving path's fixed-size ring of completed
// request records with tail-sampled trace-span trees; exposed over
// GET /debug/requests on a ScoreServer.
type FlightRecorder = obs.FlightRecorder

// RequestRecord is one completed request retained by a FlightRecorder:
// identity (request ID, tenant, plan key), micro-batch placement, latency
// split, status, and — for slow or failed requests — the full span tree.
type RequestRecord = obs.RequestRecord

// WithFlightRecorder resizes a ScoreServer's request flight recorder:
// keep the last size requests, retaining full trace-span trees for
// requests slower than slow or that failed (slow <= 0 retains every
// tree). size < 0 disables recording and request tracing; size 0 keeps
// the default 256-entry ring.
func WithFlightRecorder(size int, slow time.Duration) ScoreServerOption {
	return serve.WithFlightRecorder(size, slow)
}

// WithPprof mounts Go's net/http/pprof profile handlers on a ScoreServer
// under /debug/pprof/ (off by default; profiles expose internals).
func WithPprof() ScoreServerOption { return serve.WithPprof() }

// WithSLOTarget sets an engine-wide per-request total-latency SLO:
// requests slower than target increment their tenant's SLO burn counter,
// reported by GET /v1/tenants and the serve.slo.burn metric.
func WithSLOTarget(target time.Duration) EngineOption {
	return serve.WithSLOTarget(target)
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (counters, gauges, and cumulative histograms). A
// ScoreServer serves the same rendering from GET /metrics when the
// request's Accept header asks for text/plain.
func WritePrometheus(w io.Writer, s MetricsSnapshot) error {
	return obs.WritePrometheus(w, s)
}

// ServeEngine starts the multi-tenant scoring server on addr (e.g.
// "localhost:8080", or "127.0.0.1:0" for an ephemeral port): POST /v1/run
// submits a script for a tenant with micro-batching of same-plan
// requests, load shedding (429 + Retry-After) under memory pressure,
// per-tenant quotas, and an X-Request-ID per request; GET /v1/tenants
// (latency quantiles, SLO burn), /metrics (JSON, or Prometheus text under
// Accept: text/plain), and /debug/requests expose serving state. Close
// the returned server to stop it (in-flight requests drain; /healthz
// turns 503 while draining).
func ServeEngine(addr string, e *Engine, opts ...ScoreServerOption) (*ScoreServer, error) {
	return serve.NewServer(addr, e, opts...)
}

// Sink receives observability events (explain reports, trace spans) from
// a session; see WithSink and NewWriterSink.
type Sink = obs.Sink

// WriterSink is a Sink that writes events to an io.Writer.
type WriterSink = obs.WriterSink

// NewWriterSink returns a Sink printing explain reports to w. Set
// IncludeSpans on the result to also print phase trace spans.
func NewWriterSink(w io.Writer) *WriterSink { return obs.NewWriterSink(w) }

// MultiSink fans observability events out to several sinks; use it to
// combine e.g. a WriterSink for explain output with a TraceSink.
type MultiSink = obs.MultiSink

// TraceSink buffers a run's hierarchical trace spans and exports them as
// Chrome trace-event JSON loadable in chrome://tracing or Perfetto; see
// NewTraceSink.
type TraceSink = obs.TraceSink

// NewTraceSink returns an empty TraceSink. Attach it via WithSink, run
// scripts, then call WriteFile (or WriteTo) to export the trace:
//
//	ts := sysml.NewTraceSink()
//	s := sysml.NewSession(sysml.WithSink(ts))
//	_ = s.Run(script)
//	_ = ts.WriteFile("trace.json")
func NewTraceSink() *TraceSink { return obs.NewTraceSink() }

// MetricsSnapshot is a point-in-time copy of a session's metrics
// (counters, gauges, histograms); returned by Session.Metrics.
type MetricsSnapshot = obs.Snapshot

// CostAuditSummary reports the optimizer's predicted cost against measured
// execution per fused-operator template; returned by Session.CostAudit.
type CostAuditSummary = obs.AuditSummary

// ObsServer is a live metrics HTTP server started by Serve.
type ObsServer = obs.Server

// Serve starts an HTTP server on addr (e.g. "localhost:9090", or
// "127.0.0.1:0" for an ephemeral port) exposing the session's live
// observability state as JSON: /metrics (full snapshot), /audit
// (cost-audit summary), /plancache (plan-cache statistics), /healthz.
// Close the returned server to stop it (in-flight requests drain).
//
// Deprecated: single-session observability remains available, but the
// serving path is ServeEngine, which adds /v1/run scoring, tenants,
// quotas, micro-batching, and load shedding on top of metrics exposure.
func Serve(addr string, s *Session) (*ObsServer, error) { return obs.Serve(addr, s) }

// Typed errors returned by sessions: match with errors.As for field
// access, or errors.Is against a zero value for class-level tests, e.g.
// errors.Is(err, &sysml.ParseError{}).
type (
	// ParseError reports a lexical, syntactic, or compile-time script
	// error with its 1-based line.
	ParseError = dml.ParseError
	// UnboundVarError reports a reference to an unbound variable.
	UnboundVarError = dml.UnboundVarError
	// ShapeError reports a dimension mismatch (matmul shapes, non-scalar
	// where a scalar is required, index bounds).
	ShapeError = dml.ShapeError
)

// Stats aggregates codegen statistics (compiled plans, cache hits,
// evaluated plans, compile time).
type Stats = codegen.Stats

// Cluster is the simulated distributed backend; assign it to
// Session.Dist (or use WithCluster) to execute large operators across
// simulated executors with broadcast/shuffle accounting.
type Cluster = dist.Cluster

// ClusterOption configures a Cluster at construction time; see
// WithExecutors and WithFaultPlan.
type ClusterOption = dist.Option

// NewCluster returns a simulated cluster mirroring the paper's 6-executor
// setup. Options adjust the executor count or attach a fault-injection
// plan:
//
//	cl := sysml.NewCluster(
//		sysml.WithExecutors(8),
//		sysml.WithFaultPlan(&sysml.FaultPlan{Seed: 7, TransientRate: 0.05}),
//	)
func NewCluster(opts ...ClusterOption) *Cluster { return dist.NewCluster(opts...) }

// WithExecutors overrides the simulated executor count (default 6).
func WithExecutors(n int) ClusterOption { return dist.WithExecutors(n) }

// WithFaultPlan attaches a deterministic fault-injection plan to the
// cluster: seeded transient task failures, a scheduled executor kill, and
// straggler slowdowns. The fault-tolerant panel scheduler recovers via
// retries with backoff, lineage-based reassignment, and speculative
// execution; results are unchanged, and recovery activity is surfaced in
// Session.Metrics ("dist.fault.*", "dist.retry.*", "dist.spec.*") and the
// EXPLAIN report's FAULTS subsection.
func WithFaultPlan(p *FaultPlan) ClusterOption { return dist.WithFaultPlan(p) }

// FaultPlan is a deterministic, seedable fault-injection plan for a
// simulated cluster; zero-valued fields inject nothing. See the
// internal/dist package and DESIGN.md §11 for the recovery semantics.
type FaultPlan = dist.FaultPlan

// FaultStats counts injected faults and recovery actions on a cluster;
// returned by Cluster.FaultStats.
type FaultStats = dist.FaultStats
