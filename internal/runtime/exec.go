package runtime

import (
	"context"
	"fmt"
	"time"

	"sysml/internal/compress"
	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/obs"
)

// Env maps variable names to matrices (SystemML's symbol table; scalars are
// held as 1×1 matrices).
type Env map[string]*matrix.Matrix

// Options configures DAG execution.
type Options struct {
	// Dist, when non-nil, executes operators marked ExecDist through the
	// simulated distributed backend.
	Dist DistBackend

	// Exec is the matrix execution context — the worker pool running the
	// kernels' parallel regions and the buffer pool their allocations draw
	// from. The zero value uses the process-wide defaults; engines inject
	// their own pools here so co-hosted engines stay isolated.
	Exec matrix.Ctx

	// Ctx, when non-nil, cancels execution: checked between operators and
	// polled inside the fused-operator skeleton loops.
	Ctx context.Context

	// Metrics, when non-nil, receives per-operator wall time, FLOP/byte
	// estimates vs. actual output bytes, and fused-operator invocation
	// counts.
	Metrics *obs.Metrics

	// Trace, when active (a sink-attached span), becomes the parent of one
	// child span per executed operator and of the distributed backend's
	// broadcast/shuffle spans, for timeline export via obs.TraceSink.
	Trace obs.Span

	// Audit, when non-nil, receives one predicted-vs-measured entry per
	// executed operator that carries a cost-model prediction
	// (hop.PredSec > 0, annotated by codegen.AnnotatePredictions).
	Audit *obs.Audit

	// Calib, when non-nil, receives the same predicted-vs-measured entries
	// as Audit — the online cost-model calibrator's observation stream.
	// Declared as an interface so runtime does not depend on codegen.
	Calib CalibSink

	// Feedback, when non-nil, collects execution observations the
	// interpreter's re-optimization check consumes: actual nonzero counts
	// of the tracked bound inputs and the block's summed predicted vs
	// measured operator seconds.
	Feedback *Feedback
}

// CalibSink receives cost-audit observations; satisfied by
// codegen.Calibrator.
type CalibSink interface {
	Observe(obs.AuditEntry)
}

// Feedback accumulates one DAG execution's divergence evidence. The
// interpreter allocates it per block run, names the inputs whose sparsity
// estimates came from hints (Track), and reads the results after the run.
type Feedback struct {
	// Track selects which bound-input names to measure; nnz capture costs
	// a stored-entry scan per tracked input, so only hint-estimated inputs
	// (the ones that can actually diverge) are tracked.
	Track map[string]bool

	// Inputs holds one entry per tracked input actually read by the DAG.
	Inputs []InputFeedback

	// PredSec / ActualSec sum the optimizer-predicted and measured wall
	// seconds of every operator carrying a prediction.
	PredSec   float64
	ActualSec float64
}

// InputFeedback compares one bound input's compile-time nonzero estimate
// with the matrix observed at execution.
type InputFeedback struct {
	Name       string
	Rows, Cols int64
	EstNnz     int64 // estimate the plan was compiled under
	ActualNnz  int64
}

// StopFn polls for cancellation; fused-operator loops call it at chunk
// boundaries and every stopCheckMask+1 rows. A nil StopFn never stops.
type StopFn func() bool

// stopCheckMask throttles cancellation polls inside row loops: a check
// every 1024 rows keeps the overhead unmeasurable while bounding the
// cancellation latency of even the largest fused operators.
const stopCheckMask = 1023

func pollStop(stop StopFn, i int) bool {
	return stop != nil && i&stopCheckMask == 0 && stop()
}

// DistBackend abstracts the simulated distributed runtime (implemented in
// internal/dist; injected here to avoid a dependency cycle).
type DistBackend interface {
	// ExecHop executes one distributed operator over already-computed
	// inputs and returns its result. sp is the executing operator's trace
	// span; the backend hangs broadcast/shuffle stage spans off it.
	ExecHop(h *hop.Hop, inputs []*matrix.Matrix, sp obs.Span) (*matrix.Matrix, bool)

	// Invalidate tells the backend that m's storage is about to be
	// recycled or its binding rewritten, so any broadcast handle derived
	// from it must be dropped. Called by the executor before releasing a
	// dead intermediate to the buffer pool and by the interpreter on every
	// variable rebind.
	Invalidate(m *matrix.Matrix)
}

// ExecuteDAG evaluates all outputs of a HOP DAG against the environment
// and returns the named results.
func ExecuteDAG(d *hop.DAG, env Env, opts Options) (Env, error) {
	var stop StopFn
	if opts.Ctx != nil {
		ctx := opts.Ctx
		stop = func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		}
	}
	topo := hop.TopoOrder(d.Roots())

	// Lineage-aware buffer recycling: refs[id] counts the remaining readers
	// of each hop's result (one per consumer occurrence, plus one if the hop
	// is a named DAG output). When the count hits zero the intermediate is
	// dead and its backing storage returns to the matrix buffer pool, where
	// the next NewDense of the same shape picks it up.
	refs := make(map[int64]int, len(topo))
	for _, h := range topo {
		for _, in := range h.Inputs {
			refs[in.ID]++
		}
	}
	for _, name := range d.OutputNames() {
		refs[d.Outputs[name].ID]++
	}
	// held counts live cache entries per matrix pointer and owned marks
	// results whose storage the executor may recycle — both guard against
	// aliasing: ops such as ToDense can return an input unchanged, and
	// OpData results belong to the caller's environment, never to us.
	held := map[*matrix.Matrix]int{}
	owned := map[*matrix.Matrix]bool{}

	cache := map[int64]*matrix.Matrix{}
	// bundles holds the output sets of multi-output (Horizontal-template)
	// fused operators, keyed by spoof hop ID. The spoof hop's own cache
	// entry is a dummy scalar; OpSpoofOut extractors hand each bundled
	// output to its consumers. A bundle dies with its spoof hop (every
	// extractor is a consumer, so all outputs are extracted before then).
	bundles := map[int64][]*matrix.Matrix{}
	observed := opts.Metrics != nil || opts.Audit != nil || opts.Calib != nil || opts.Feedback != nil
	for _, h := range topo {
		if stop != nil && stop() {
			return nil, opts.Ctx.Err()
		}
		ins, err := gatherInputs(h, cache)
		if err != nil {
			return nil, err
		}
		var sp obs.Span
		if opts.Trace.Active() {
			sp = opts.Trace.Child(h.String(),
				obs.KV("hop", h.ID),
				obs.KV("rows", h.Rows),
				obs.KV("cols", h.Cols),
				obs.KV("exec", h.ExecType.String()))
		}
		var start time.Time
		if observed {
			start = time.Now()
		}
		var m *matrix.Matrix
		switch {
		case h.Kind == hop.OpSpoofOut:
			b := bundles[h.Inputs[0].ID]
			if h.OutIdx >= len(b) {
				sp.End()
				return nil, fmt.Errorf("runtime: spoofOut %d references missing output %d of hop %d",
					h.ID, h.OutIdx, h.Inputs[0].ID)
			}
			m = b[h.OutIdx]
		case h.Kind == hop.OpSpoof && isHorizontalSpoof(h):
			// Horizontal fused operators always execute locally: the one
			// shared pass over the main input produces every sibling output.
			op := h.Spoof.(*cplan.Operator)
			bundles[h.ID] = execHorizontal(opts.Exec, op, ins[0], ins[1:], stop)
			m = matrix.NewScalar(0)
		default:
			m, err = evalHop(h, ins, env, opts, stop, sp)
			if err != nil {
				sp.End()
				return nil, err
			}
		}
		if observed {
			observeHop(&opts, h, ins, m, time.Since(start))
		}
		sp.End()
		if stop != nil && stop() {
			// A canceled skeleton returns a partial result: discard it.
			return nil, opts.Ctx.Err()
		}
		cache[h.ID] = m
		held[m]++
		if h.Kind != hop.OpData && !aliasesAny(m, ins) {
			owned[m] = true
		}
		// This hop has consumed its inputs; release the ones it killed.
		for _, in := range h.Inputs {
			refs[in.ID]--
			if refs[in.ID] > 0 {
				continue
			}
			im := cache[in.ID]
			delete(cache, in.ID)
			delete(bundles, in.ID)
			if im == nil {
				continue
			}
			held[im]--
			if held[im] > 0 {
				continue
			}
			delete(held, im)
			if owned[im] {
				delete(owned, im)
				if opts.Dist != nil {
					// The pool may hand im's storage to the next allocation;
					// a broadcast handle for it would go stale.
					opts.Dist.Invalidate(im)
				}
				im.Release()
			}
		}
	}
	out := Env{}
	for _, name := range d.OutputNames() {
		out[name] = cache[d.Outputs[name].ID]
	}
	return out, nil
}

// isHorizontalSpoof reports whether a spoof hop carries a multi-output
// Horizontal-template operator (executed via bundle interception, never
// through evalHop).
func isHorizontalSpoof(h *hop.Hop) bool {
	op, ok := h.Spoof.(*cplan.Operator)
	return ok && op.Plan.Type == cplan.TemplateHorizontal
}

// observeHop records one executed operator: wall time per operator kind,
// the analytical FLOP and output-byte estimates next to the actual output
// bytes and measured work, fused-operator invocation counts per template,
// predicted-vs-measured entries for the audit ledger and the calibrator,
// and input-sparsity/time feedback for the re-optimization check.
func observeHop(opts *Options, h *hop.Hop, ins []*matrix.Matrix, out *matrix.Matrix, d time.Duration) {
	m, audit := opts.Metrics, opts.Audit
	if fb := opts.Feedback; fb != nil && h.Kind == hop.OpData && fb.Track[h.Name] && out != nil {
		fb.Inputs = append(fb.Inputs, InputFeedback{
			Name: h.Name, Rows: h.Rows, Cols: h.Cols,
			EstNnz: h.Nnz, ActualNnz: int64(out.Nnz()),
		})
	}
	actualFlops := ActualFlops(h, ins, out)
	m.Inc("exec.ops")
	m.ObserveDuration("op."+h.Kind.String(), d)
	m.Add("exec.est.flops", int64(EstFlops(h)))
	m.Add("exec.est.bytes", h.OutputSizeBytes())
	m.Add("exec.actual.flops", int64(actualFlops))
	if out != nil {
		m.Add("exec.actual.bytes", out.SizeBytes())
	}
	if h.Kind == hop.OpSpoof {
		m.Inc("spoof.invocations")
		m.Inc("spoof." + h.SpoofType)
		m.ObserveDuration("op.spoof."+h.SpoofType, d)
		// Runtime chunk-dispatch attribution: did this invocation run on a
		// specialized AOT chunk program (admission-time counters live in the
		// plan cache; these count actual executions).
		if op, ok := h.Spoof.(*cplan.Operator); ok && len(op.ChunkClasses()) > 0 {
			if ChunkDispatched(op, ins) {
				m.Inc("spoof.chunk.hit")
			} else {
				m.Inc("spoof.chunk.miss")
			}
		}
		// Compressed-dispatch attribution: the main input carried a
		// compressed form — did the skeleton run over it or fall back?
		if op, ok := h.Spoof.(*cplan.Operator); ok && h.ExecType != hop.ExecDist &&
			len(ins) > 0 && compress.Of(ins[0]) != nil {
			if CompressedDispatched(op, ins) {
				m.Inc("compress.exec.hit")
			} else {
				m.Inc("compress.exec.fallback")
			}
		}
	}
	if h.Kind == hop.OpAggUnary && h.ExecType != hop.ExecDist &&
		len(ins) > 0 && compress.Of(ins[0]) != nil {
		if compressedAggUsable(h.AggOp, h.AggDir) {
			m.Inc("compress.exec.hit")
		} else {
			m.Inc("compress.exec.fallback")
		}
	}
	if h.ExecType == hop.ExecDist {
		m.Inc("exec.dist.ops")
	}
	if h.PredSec > 0 {
		if fb := opts.Feedback; fb != nil {
			fb.PredSec += h.PredSec
			fb.ActualSec += d.Seconds()
		}
		if audit != nil || opts.Calib != nil {
			var inBytes, maxIn, outBytes int64
			for _, in := range ins {
				b := in.SizeBytes()
				inBytes += b
				if b > maxIn {
					maxIn = b
				}
			}
			if out != nil {
				outBytes = out.SizeBytes()
			}
			dist := h.ExecType == hop.ExecDist && opts.Dist != nil
			var bcast int64
			if dist {
				// The distributed cost model reads the largest input locally
				// and receives the rest as broadcast side inputs.
				bcast = inBytes - maxIn
			}
			e := obs.AuditEntry{
				Op:             h.String(),
				Template:       h.SpoofType,
				PredSec:        h.PredSec,
				PredFlops:      h.PredFlops,
				PredBytes:      h.PredBytes,
				ActualSec:      d.Seconds(),
				ActualFlops:    actualFlops,
				ActualBytes:    inBytes + outBytes,
				ActualInBytes:  inBytes,
				ActualOutBytes: outBytes,
				BcastBytes:     bcast,
				Dist:           dist,
			}
			audit.Record(e)
			if opts.Calib != nil {
				opts.Calib.Observe(e)
			}
		}
	}
}

// storedCells returns the number of stored entries of a matrix — the cells
// a sparse-aware kernel actually touches — without triggering a dense
// non-zero scan.
func storedCells(m *matrix.Matrix) float64 {
	if m == nil {
		return 0
	}
	if m.IsSparse() {
		return float64(len(m.Sparse().Values))
	}
	return float64(m.Rows) * float64(m.Cols)
}

// ActualFlops measures the data-touch work of one executed operator from
// its realized inputs and output. Unlike EstFlops (the static estimate
// from size metadata), it reflects the kernel's actual iteration strategy:
// sparse non-zero iteration counts stored entries, dense scans count
// cells. Fused operators dispatch to per-skeleton work measures.
func ActualFlops(h *hop.Hop, ins []*matrix.Matrix, out *matrix.Matrix) float64 {
	if h.Kind == hop.OpSpoof {
		op, ok := h.Spoof.(*cplan.Operator)
		if !ok || len(ins) == 0 {
			return 0
		}
		switch op.Plan.Type {
		case cplan.TemplateCell:
			return workCellwise(op, ins[0])
		case cplan.TemplateMAgg:
			return workMAgg(op, ins[0])
		case cplan.TemplateRow:
			return workRowwise(op, ins[0])
		case cplan.TemplateOuter:
			return workOuter(op, ins[0])
		case cplan.TemplateHorizontal:
			return workHorizontal(op, ins[0])
		}
		return 0
	}
	switch h.Kind {
	case hop.OpBinary, hop.OpUnary, hop.OpCumsum:
		return storedCells(out)
	case hop.OpAggUnary, hop.OpRowIndexMax:
		if len(ins) > 0 {
			return storedCells(ins[0])
		}
	case hop.OpMatMult:
		if len(ins) == 2 {
			return 2 * storedCells(ins[0]) * float64(ins[1].Cols)
		}
	case hop.OpTranspose, hop.OpIndex, hop.OpCBind, hop.OpRBind, hop.OpDiag:
		return storedCells(out)
	}
	return 0
}

// EstFlops is the analytical floating-point-operation estimate of one
// operator, mirroring the optimizer's cost model at the granularity the
// metrics layer needs (estimate vs. actual attribution, not plan choice).
func EstFlops(h *hop.Hop) float64 {
	cells := float64(h.Cells())
	switch h.Kind {
	case hop.OpBinary, hop.OpUnary, hop.OpCumsum:
		return cells
	case hop.OpAggUnary:
		return float64(h.Inputs[0].Cells())
	case hop.OpMatMult:
		if len(h.Inputs) == 2 {
			return 2 * float64(h.Inputs[0].Rows) * float64(h.Inputs[0].Cols) * float64(h.Inputs[1].Cols)
		}
	case hop.OpSpoof:
		// One pass over the main input per covered operator is a lower
		// bound; the invocation count is what the metrics layer tracks.
		if len(h.Inputs) > 0 {
			return float64(h.Inputs[0].Cells())
		}
	}
	return 0
}

// aliasesAny reports whether m is one of the input matrices (an operator
// returned its input unchanged, e.g. ToDense on an already dense matrix).
func aliasesAny(m *matrix.Matrix, ins []*matrix.Matrix) bool {
	for _, in := range ins {
		if in == m {
			return true
		}
	}
	return false
}

func gatherInputs(h *hop.Hop, cache map[int64]*matrix.Matrix) ([]*matrix.Matrix, error) {
	ins := make([]*matrix.Matrix, len(h.Inputs))
	for i, in := range h.Inputs {
		m, ok := cache[in.ID]
		if !ok {
			return nil, fmt.Errorf("runtime: input %v of %v not yet computed", in, h)
		}
		ins[i] = m
	}
	return ins, nil
}

func evalHop(h *hop.Hop, ins []*matrix.Matrix, env Env, opts Options, stop StopFn, sp obs.Span) (*matrix.Matrix, error) {
	if h.ExecType == hop.ExecDist && opts.Dist != nil {
		if m, ok := opts.Dist.ExecHop(h, ins, sp); ok {
			return m, nil
		}
	}
	return evalLocal(opts.Exec, h, ins, env, stop)
}

func evalLocal(ec matrix.Ctx, h *hop.Hop, ins []*matrix.Matrix, env Env, stop StopFn) (*matrix.Matrix, error) {
	switch h.Kind {
	case hop.OpData:
		m, ok := env[h.Name]
		if !ok {
			return nil, fmt.Errorf("runtime: unbound variable %q", h.Name)
		}
		return m, nil
	case hop.OpLiteral:
		return matrix.NewScalar(h.Value), nil
	case hop.OpDataGen:
		switch h.Gen {
		case hop.GenRand:
			return ec.Rand(int(h.Rows), int(h.Cols), h.GenArgs[0], h.GenArgs[1], h.GenArgs[2], int64(h.GenArgs[3])), nil
		case hop.GenFill:
			return ec.Fill(int(h.Rows), int(h.Cols), h.GenArgs[0]), nil
		case hop.GenSeq:
			return ec.Seq(h.GenArgs[0], h.GenArgs[1], h.GenArgs[2]), nil
		}
	case hop.OpBinary:
		return ec.Binary(h.BinOp, ins[0], ins[1]), nil
	case hop.OpUnary:
		return ec.Unary(h.UnOp, ins[0]), nil
	case hop.OpAggUnary:
		if m, done := compressedAgg(ec, h.AggOp, h.AggDir, ins[0]); done {
			return m, nil
		}
		return ec.Agg(h.AggOp, h.AggDir, ins[0]), nil
	case hop.OpMatMult:
		return ec.MatMult(ins[0], ins[1]), nil
	case hop.OpTranspose:
		return ec.Transpose(ins[0]), nil
	case hop.OpIndex:
		return ec.IndexRange(ins[0], int(h.RL), int(h.RU), int(h.CL), int(h.CU)), nil
	case hop.OpCBind:
		return ec.CBind(ins[0], ins[1]), nil
	case hop.OpRBind:
		return ec.RBind(ins[0], ins[1]), nil
	case hop.OpRowIndexMax:
		return ec.RowIndexMax(ins[0]), nil
	case hop.OpDiag:
		return ec.Diag(ins[0]), nil
	case hop.OpCumsum:
		return ec.Cumsum(ins[0]), nil
	case hop.OpSpoof:
		return execSpoofStop(ec, h, ins, stop)
	}
	return nil, fmt.Errorf("runtime: unsupported hop kind %v", h.Kind)
}

// ExecSpoof dispatches a fused operator to its template skeleton. Input
// conventions: Cell/MAgg/Row operators receive [main, sides...]; Outer
// operators receive [X, U, V, sides...].
func ExecSpoof(h *hop.Hop, ins []*matrix.Matrix) (*matrix.Matrix, error) {
	return ExecSpoofStop(h, ins, nil)
}

// ExecSpoofStop is ExecSpoof with a cancellation poll threaded into the
// skeleton loops; a canceled operator returns a partial (invalid) result,
// so callers must check cancellation before using it.
func ExecSpoofStop(h *hop.Hop, ins []*matrix.Matrix, stop StopFn) (*matrix.Matrix, error) {
	return execSpoofStop(matrix.Ctx{}, h, ins, stop)
}

func execSpoofStop(ec matrix.Ctx, h *hop.Hop, ins []*matrix.Matrix, stop StopFn) (*matrix.Matrix, error) {
	op, ok := h.Spoof.(*cplan.Operator)
	if !ok {
		return nil, fmt.Errorf("runtime: spoof hop %d has no compiled operator", h.ID)
	}
	// Compressed fast path: eligible bodies run once per distinct
	// dictionary tuple when the main input has an attached compressed form.
	if len(ins) > 0 {
		if cm := compress.Of(ins[0]); cm != nil {
			if out, done := execCompressed(ec, op, cm, ins[1:], stop); done {
				return out, nil
			}
		}
	}
	switch op.Plan.Type {
	case cplan.TemplateCell:
		return execCellwise(ec, op, ins[0], ins[1:], stop), nil
	case cplan.TemplateMAgg:
		return execMAgg(ec, op, ins[0], ins[1:], stop), nil
	case cplan.TemplateRow:
		return execRowwise(ec, op, ins[0], ins[1:], stop), nil
	case cplan.TemplateOuter:
		if len(ins) < 3 {
			return nil, fmt.Errorf("runtime: outer operator needs X, U, V inputs, got %d", len(ins))
		}
		return execOuter(ec, op, ins[0], ins[1], ins[2], ins[3:], stop), nil
	case cplan.TemplateHorizontal:
		return nil, fmt.Errorf("runtime: horizontal operator %d is multi-output; execute via ExecuteDAG or ExecHorizontal", h.ID)
	}
	return nil, fmt.Errorf("runtime: unknown template %v", op.Plan.Type)
}
