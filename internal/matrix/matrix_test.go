package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func mustDense(rows, cols int, vals ...float64) *Matrix {
	return NewDenseData(rows, cols, vals)
}

func TestAtSetDenseSparse(t *testing.T) {
	m := mustDense(2, 3, 1, 0, 2, 0, 3, 0)
	s := m.ToSparse()
	if !s.IsSparse() {
		t.Fatal("ToSparse did not produce sparse")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != s.At(i, j) {
				t.Fatalf("At(%d,%d) mismatch: %v vs %v", i, j, m.At(i, j), s.At(i, j))
			}
		}
	}
	d2 := s.ToDense()
	if !d2.EqualsApprox(m, 0) {
		t.Fatal("round-trip dense→sparse→dense mismatch")
	}
	s.Set(0, 1, 9) // densifies
	if s.At(0, 1) != 9 || s.IsSparse() {
		t.Fatal("Set on sparse must densify and assign")
	}
}

func TestNnzSparsity(t *testing.T) {
	m := mustDense(2, 2, 1, 0, 0, 2)
	if m.Nnz() != 2 {
		t.Fatalf("Nnz = %d", m.Nnz())
	}
	if m.Sparsity() != 0.5 {
		t.Fatalf("Sparsity = %v", m.Sparsity())
	}
	if m.ToSparse().Nnz() != 2 {
		t.Fatal("sparse Nnz mismatch")
	}
}

func TestScalarMatrix(t *testing.T) {
	s := NewScalar(3.5)
	if s.Scalar() != 3.5 {
		t.Fatal("Scalar round trip")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scalar() on non-1x1 must panic")
		}
	}()
	NewDense(2, 2).Scalar()
}

func TestBinarySameShape(t *testing.T) {
	a := mustDense(2, 2, 1, 2, 3, 4)
	b := mustDense(2, 2, 5, 6, 7, 8)
	cases := []struct {
		op   BinOp
		want []float64
	}{
		{BinAdd, []float64{6, 8, 10, 12}},
		{BinSub, []float64{-4, -4, -4, -4}},
		{BinMul, []float64{5, 12, 21, 32}},
		{BinDiv, []float64{0.2, 2. / 6, 3. / 7, 0.5}},
		{BinMin, []float64{1, 2, 3, 4}},
		{BinMax, []float64{5, 6, 7, 8}},
		{BinLt, []float64{1, 1, 1, 1}},
		{BinGe, []float64{0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := Binary(c.op, a, b)
		if !got.EqualsApprox(mustDense(2, 2, c.want...), 1e-12) {
			t.Errorf("op %v: got %v", c.op, got)
		}
	}
}

func TestBinarySparsePaths(t *testing.T) {
	a := mustDense(3, 4, 0, 1, 0, 2, 0, 0, 3, 0, 4, 0, 0, 5).ToSparse()
	b := mustDense(3, 4, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3)
	// sparse * dense stays sparse (sparse driver).
	got := Binary(BinMul, a, b)
	if !got.IsSparse() {
		t.Fatal("sparse*dense should stay sparse")
	}
	want := Binary(BinMul, a.ToDense(), b)
	if !got.EqualsApprox(want, 0) {
		t.Fatalf("sparse mul mismatch: %v vs %v", got, want)
	}
	// dense * sparse symmetric driver.
	got2 := Binary(BinMul, b, a)
	if !got2.IsSparse() || !got2.EqualsApprox(want, 0) {
		t.Fatal("dense*sparse driver mismatch")
	}
	// sparse + sparse merge.
	c := mustDense(3, 4, 1, 0, 0, 0, 0, 0, -3, 0, 0, 0, 0, 1).ToSparse()
	sum := Binary(BinAdd, a, c)
	if !sum.IsSparse() {
		t.Fatal("sparse+sparse should stay sparse")
	}
	wantSum := Binary(BinAdd, a.ToDense(), c.ToDense())
	if !sum.EqualsApprox(wantSum, 0) {
		t.Fatalf("sparse merge mismatch: %v vs %v", sum, wantSum)
	}
	// Cancellation drops explicit zeros: a[1][2]=3, c[1][2]=-3.
	if sum.At(1, 2) != 0 {
		t.Fatal("cancellation not applied")
	}
}

func TestBinaryBroadcasts(t *testing.T) {
	a := mustDense(2, 3, 1, 2, 3, 4, 5, 6)
	colv := mustDense(2, 1, 10, 100)
	rowv := mustDense(1, 3, 1, 2, 3)
	got := Binary(BinMul, a, colv)
	if !got.EqualsApprox(mustDense(2, 3, 10, 20, 30, 400, 500, 600), 0) {
		t.Fatalf("col broadcast: %v", got)
	}
	got = Binary(BinAdd, a, rowv)
	if !got.EqualsApprox(mustDense(2, 3, 2, 4, 6, 5, 7, 9), 0) {
		t.Fatalf("row broadcast: %v", got)
	}
	// Vector on the left.
	got = Binary(BinMul, colv, a)
	if !got.EqualsApprox(mustDense(2, 3, 10, 20, 30, 400, 500, 600), 0) {
		t.Fatalf("left col broadcast: %v", got)
	}
	// Scalar matrices on either side.
	got = Binary(BinAdd, a, NewScalar(1))
	if got.At(1, 2) != 7 {
		t.Fatal("scalar right")
	}
	got = Binary(BinSub, NewScalar(10), a)
	if got.At(0, 0) != 9 {
		t.Fatal("scalar left")
	}
	// Sparse column broadcast stays sparse for mul.
	sp := mustDense(2, 3, 0, 2, 0, 3, 0, 0).ToSparse()
	got = Binary(BinMul, sp, colv)
	if !got.IsSparse() || got.At(0, 1) != 20 || got.At(1, 0) != 300 {
		t.Fatalf("sparse col broadcast: %v", got)
	}
	// Sparse row broadcast.
	got = Binary(BinMul, sp, rowv)
	if !got.IsSparse() || got.At(0, 1) != 4 {
		t.Fatalf("sparse row broadcast: %v", got)
	}
}

func TestUnaryOps(t *testing.T) {
	a := mustDense(1, 4, -4, 0, 1, 9)
	if got := Unary(UnAbs, a); got.At(0, 0) != 4 {
		t.Fatal("abs")
	}
	if got := Unary(UnSqrt, a); got.At(0, 3) != 3 {
		t.Fatal("sqrt")
	}
	if got := Unary(UnSign, a); got.At(0, 0) != -1 || got.At(0, 1) != 0 {
		t.Fatal("sign")
	}
	if got := Unary(UnExp, a); math.Abs(got.At(0, 1)-1) > 1e-12 {
		t.Fatal("exp")
	}
	if got := Unary(UnSigmoid, a); got.At(0, 1) != 0.5 {
		t.Fatal("sigmoid")
	}
	if got := Unary(UnNot, a); got.At(0, 1) != 1 || got.At(0, 2) != 0 {
		t.Fatal("not")
	}
	// Sparse-safe unary keeps sparse.
	sp := mustDense(2, 3, 0, -2, 0, 3, 0, 0).ToSparse()
	got := Unary(UnAbs, sp)
	if !got.IsSparse() || got.At(0, 1) != 2 {
		t.Fatal("sparse abs")
	}
	// exp densifies (exp(0)=1).
	if Unary(UnExp, sp).IsSparse() {
		t.Fatal("exp must densify")
	}
}

func TestMatMultAllFormats(t *testing.T) {
	a := mustDense(2, 3, 1, 2, 3, 4, 5, 6)
	b := mustDense(3, 2, 7, 8, 9, 10, 11, 12)
	want := mustDense(2, 2, 58, 64, 139, 154)
	for _, al := range []*Matrix{a, a.ToSparse()} {
		for _, br := range []*Matrix{b, b.ToSparse()} {
			got := MatMult(al, br)
			if !got.EqualsApprox(want, 1e-12) {
				t.Fatalf("matmult(%v sparse=%v, %v sparse=%v) = %v",
					al, al.IsSparse(), br, br.IsSparse(), got)
			}
		}
	}
}

func TestMatMultVector(t *testing.T) {
	a := Rand(50, 7, 1, -1, 1, 42)
	v := Rand(7, 1, 1, -1, 1, 43)
	got := MatMult(a, v)
	for i := 0; i < 50; i++ {
		var want float64
		for j := 0; j < 7; j++ {
			want += a.At(i, j) * v.At(j, 0)
		}
		if math.Abs(got.At(i, 0)-want) > 1e-9 {
			t.Fatalf("row %d: %v vs %v", i, got.At(i, 0), want)
		}
	}
	gotSp := MatMult(a.ToSparse(), v)
	if !gotSp.EqualsApprox(got, 1e-9) {
		t.Fatal("sparse matvec mismatch")
	}
}

func TestMatMultPropertyAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		m, k, n := int(seed%5)+1, int(seed%7)+1, int(seed%3)+1
		if seed < 0 {
			seed = -seed
			m, k, n = 2, 9, 4
		}
		a := Rand(m, k, 0.7, -2, 2, seed)
		b := Rand(k, n, 0.7, -2, 2, seed+1)
		got := MatMult(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for p := 0; p < k; p++ {
					want += a.At(i, p) * b.At(p, j)
				}
				if math.Abs(got.At(i, j)-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTSMM(t *testing.T) {
	x := Rand(40, 6, 1, -1, 1, 7)
	want := MatMult(Transpose(x), x)
	if got := TSMM(x); !got.EqualsApprox(want, 1e-9) {
		t.Fatalf("dense TSMM mismatch")
	}
	xs := Rand(40, 6, 0.2, -1, 1, 8)
	want = MatMult(Transpose(xs), xs)
	if got := TSMM(xs); !got.EqualsApprox(want, 1e-9) {
		t.Fatalf("sparse TSMM mismatch")
	}
}

func TestAggregations(t *testing.T) {
	a := mustDense(2, 3, 1, 2, 3, 4, 5, 6)
	if Sum(a) != 21 {
		t.Fatal("sum")
	}
	if got := Agg(AggSum, DirRow, a); !got.EqualsApprox(mustDense(2, 1, 6, 15), 0) {
		t.Fatalf("rowSums: %v", got)
	}
	if got := Agg(AggSum, DirCol, a); !got.EqualsApprox(mustDense(1, 3, 5, 7, 9), 0) {
		t.Fatalf("colSums: %v", got)
	}
	if got := Agg(AggMin, DirAll, a).Scalar(); got != 1 {
		t.Fatal("min")
	}
	if got := Agg(AggMax, DirRow, a); !got.EqualsApprox(mustDense(2, 1, 3, 6), 0) {
		t.Fatal("rowMaxs")
	}
	if got := Agg(AggMean, DirAll, a).Scalar(); got != 3.5 {
		t.Fatal("mean")
	}
	if got := Agg(AggSumSq, DirAll, a).Scalar(); got != 91 {
		t.Fatal("sumsq")
	}
	if got := Agg(AggMean, DirCol, a); !got.EqualsApprox(mustDense(1, 3, 2.5, 3.5, 4.5), 0) {
		t.Fatal("colMeans")
	}
}

func TestAggregationsSparse(t *testing.T) {
	sp := mustDense(2, 3, 0, -2, 0, 3, 0, 0).ToSparse()
	if Sum(sp) != 1 {
		t.Fatal("sparse sum")
	}
	// Min over sparse must account for implicit zeros.
	if got := Agg(AggMin, DirAll, sp).Scalar(); got != -2 {
		t.Fatalf("sparse min = %v", got)
	}
	if got := Agg(AggMax, DirAll, sp).Scalar(); got != 3 {
		t.Fatalf("sparse max = %v", got)
	}
	sp2 := mustDense(1, 3, 2, 0, 4).ToSparse()
	if got := Agg(AggMin, DirAll, sp2).Scalar(); got != 0 {
		t.Fatalf("sparse min with implicit zeros = %v", got)
	}
	if got := Agg(AggSum, DirRow, sp); !got.EqualsApprox(mustDense(2, 1, -2, 3), 0) {
		t.Fatal("sparse rowSums")
	}
	if got := Agg(AggSum, DirCol, sp); !got.EqualsApprox(mustDense(1, 3, 3, -2, 0), 0) {
		t.Fatal("sparse colSums")
	}
	if got := Agg(AggMax, DirRow, sp); !got.EqualsApprox(mustDense(2, 1, 0, 3), 0) {
		t.Fatal("sparse rowMaxs must see zeros")
	}
}

func TestRowIndexMax(t *testing.T) {
	a := mustDense(2, 3, 1, 9, 2, 8, 3, 4)
	got := RowIndexMax(a)
	if got.At(0, 0) != 2 || got.At(1, 0) != 1 {
		t.Fatalf("RowIndexMax = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := Rand(33, 17, 1, -1, 1, 3)
	at := Transpose(a)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("dense transpose mismatch")
			}
		}
	}
	s := Rand(33, 17, 0.15, -1, 1, 4)
	st := Transpose(s)
	if !st.IsSparse() {
		t.Fatal("sparse transpose should stay sparse")
	}
	if !st.EqualsApprox(Transpose(s.ToDense()), 0) {
		t.Fatal("sparse transpose mismatch")
	}
}

func TestIndexRange(t *testing.T) {
	a := mustDense(3, 4, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	got := IndexRange(a, 1, 3, 1, 3)
	if !got.EqualsApprox(mustDense(2, 2, 6, 7, 10, 11), 0) {
		t.Fatalf("IndexRange = %v", got)
	}
	sp := a.ToSparse()
	if !IndexRange(sp, 1, 3, 1, 3).EqualsApprox(got, 0) {
		t.Fatal("sparse IndexRange mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range must panic")
		}
	}()
	IndexRange(a, 2, 2, 0, 1)
}

func TestCBindRBindDiag(t *testing.T) {
	a := mustDense(2, 2, 1, 2, 3, 4)
	b := mustDense(2, 1, 5, 6)
	got := CBind(a, b)
	if !got.EqualsApprox(mustDense(2, 3, 1, 2, 5, 3, 4, 6), 0) {
		t.Fatalf("CBind = %v", got)
	}
	c := mustDense(1, 2, 7, 8)
	got = RBind(a, c)
	if !got.EqualsApprox(mustDense(3, 2, 1, 2, 3, 4, 7, 8), 0) {
		t.Fatalf("RBind = %v", got)
	}
	d := Diag(mustDense(2, 1, 3, 4))
	if !d.EqualsApprox(mustDense(2, 2, 3, 0, 0, 4), 0) {
		t.Fatalf("Diag expand = %v", d)
	}
	dd := Diag(a)
	if !dd.EqualsApprox(mustDense(2, 1, 1, 4), 0) {
		t.Fatalf("Diag extract = %v", dd)
	}
}

func TestRandAndFill(t *testing.T) {
	m := Rand(100, 50, 0.1, -1, 1, 11)
	if !m.IsSparse() {
		t.Fatal("low-sparsity Rand should be sparse")
	}
	sp := m.Sparsity()
	if sp < 0.05 || sp > 0.2 {
		t.Fatalf("sparsity %v far from 0.1", sp)
	}
	// Determinism.
	m2 := Rand(100, 50, 0.1, -1, 1, 11)
	if !m.EqualsApprox(m2, 0) {
		t.Fatal("Rand not deterministic for same seed")
	}
	d := Rand(10, 10, 1, 5, 5.0001, 1)
	if d.IsSparse() || d.Nnz() != 100 {
		t.Fatal("dense Rand")
	}
	f := Fill(3, 3, 2)
	if Sum(f) != 18 {
		t.Fatal("Fill")
	}
	s := Seq(1, 5, 2)
	if s.Rows != 3 || s.At(2, 0) != 5 {
		t.Fatalf("Seq = %v", s)
	}
	id := Identity(3)
	if Sum(id) != 3 || id.At(1, 1) != 1 {
		t.Fatal("Identity")
	}
}

func TestInPreferredFormat(t *testing.T) {
	dense := Rand(20, 20, 0.9, -1, 1, 1)
	if dense.InPreferredFormat().IsSparse() {
		t.Fatal("dense data should stay dense")
	}
	sparse := Rand(50, 50, 0.05, -1, 1, 2).ToDense()
	if !sparse.InPreferredFormat().IsSparse() {
		t.Fatal("sparse data should convert to sparse")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mustDense(1, 2, 1, 2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy dense")
	}
	s := a.ToSparse()
	c := s.Clone()
	c.sparse.Values[0] = 9
	if s.sparse.Values[0] != 1 {
		t.Fatal("Clone must deep-copy sparse")
	}
}

func TestSizeBytes(t *testing.T) {
	d := NewDense(10, 10)
	if d.SizeBytes() != 800 {
		t.Fatalf("dense SizeBytes = %d", d.SizeBytes())
	}
	s := mustDense(2, 2, 1, 0, 0, 1).ToSparse()
	if s.SizeBytes() != 2*16+3*8 {
		t.Fatalf("sparse SizeBytes = %d", s.SizeBytes())
	}
}

func TestCumsum(t *testing.T) {
	a := mustDense(3, 2, 1, 2, 3, 4, 5, 6)
	got := Cumsum(a)
	want := mustDense(3, 2, 1, 2, 4, 6, 9, 12)
	if !got.EqualsApprox(want, 0) {
		t.Fatalf("Cumsum = %v", got)
	}
	sp := Rand(20, 5, 0.3, -1, 1, 9)
	if !Cumsum(sp).EqualsApprox(Cumsum(sp.ToDense()), 1e-12) {
		t.Fatal("sparse cumsum mismatch")
	}
}
