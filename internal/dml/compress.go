package dml

import (
	"fmt"

	"sysml/internal/codegen"
	"sysml/internal/compress"
	"sysml/internal/hop"
	"sysml/internal/matrix"
)

// autoCompress is the interpreter's compression pass, run on every block
// DAG after rewrites and before plan optimization. For each transient read
// that is not also a block output (the loop-invariance proxy: the binding
// survives the block, so a compressed form amortizes across iterations) it
// either reuses an attached compressed form, respects a cached decline
// marker, or — depending on the configured policy — samples the input with
// the ratio estimator and compresses when the estimate clears the
// threshold. Annotation of the OpData hops makes the plan optimizer's read
// terms compression-aware; the attachment itself is what the runtime
// skeletons and the dist backend's wire codec dispatch on.
func (s *Session) autoCompress(d *hop.DAG) {
	if s.Config.Compress == codegen.CompressOff {
		return
	}
	outputs := map[string]bool{}
	for _, name := range d.OutputNames() {
		outputs[name] = true
	}
	var denseTotal, compTotal int64
	for _, h := range hop.TopoOrder(d.Roots()) {
		if h.Kind != hop.OpData || outputs[h.Name] {
			continue
		}
		m := s.Env[h.Name]
		if m == nil || m.Rows <= 1 || m.Cols < 1 || m.SizeBytes() < s.Config.CompressMinBytes {
			continue
		}
		cm := compress.Of(m)
		if cm == nil {
			cm = s.compressInput(m)
		}
		if cm == nil {
			continue
		}
		h.CompressedBytes = cm.SizeBytes()
		h.CompressedDesc = compress.Summary(cm)
		denseTotal += m.SizeBytes()
		compTotal += cm.SizeBytes()
	}
	if compTotal > 0 {
		s.Obs.SetGauge("compress.ratio", float64(denseTotal)/float64(compTotal))
	}
}

// compressInput decides whether to compress one bound input and attaches
// the result. Returns nil when the input is declined (the decline is cached
// on the matrix so loop iterations pay one map lookup, not a re-sample).
func (s *Session) compressInput(m *matrix.Matrix) *compress.CMatrix {
	mode := s.Config.Compress
	if _, declined := compress.DeclineReason(m); declined && mode != codegen.CompressOn {
		return nil
	}
	if mode == codegen.CompressAuto {
		est := compress.EstimateRatio(m, 0)
		ratio := float64(m.SizeBytes()) / float64(est.CompressedBytes)
		if ratio < s.Config.CompressMinRatio {
			compress.Decline(m, fmt.Sprintf("estimated ratio %.2f < %.2f", ratio, s.Config.CompressMinRatio))
			s.Obs.Inc("compress.auto.declined")
			return nil
		}
	}
	cm := compress.Compress(m, compress.DefaultOptions())
	realRatio := float64(m.SizeBytes()) / float64(cm.SizeBytes())
	if mode == codegen.CompressAuto && realRatio < 1.2 {
		// The sample looked compressible but the full input was not; cache
		// the decline so the compression attempt is not repeated.
		compress.Decline(m, fmt.Sprintf("actual ratio %.2f too low", realRatio))
		s.Obs.Inc("compress.auto.declined")
		return nil
	}
	compress.Attach(m, cm)
	s.Obs.Inc("compress.auto.compressed")
	return cm
}
