package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dist"
	"sysml/internal/dml"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/obs"
)

// distFile is the JSON artifact Dist writes next to the harness output; CI
// gates on its "pass" field.
const distFile = "BENCH_dist.json"

// Distributed-backend gate thresholds.
const (
	// bcastMinRatio: a 10-iteration loop re-using one loop-invariant side
	// input must broadcast at least this factor fewer bytes with the handle
	// cache on than off (one shipment instead of ten → expect ~10x).
	bcastMinRatio = 5.0

	// shuffleMinRatio: tree aggregation must ship at least this factor
	// fewer bytes than the retained seed model (every map partition's
	// densified partial to a single reducer).
	shuffleMinRatio = 1.5

	// distMaxRegressionPct: the pooled zero-copy panel executor at ONE
	// executor may not regress wall-clock by more than this vs the
	// seed-style extract/allocate/copy-back executor.
	distMaxRegressionPct = 2.0

	// distEqTol: distributed results must match local execution within
	// this absolute tolerance.
	distEqTol = 1e-9
)

// DistResult is the serialized outcome of the distributed-backend gates.
type DistResult struct {
	BcastUncachedB int64   `json:"bcast_uncached_bytes"` // cache off: re-broadcast per iteration
	BcastCachedB   int64   `json:"bcast_cached_bytes"`   // cache on: one shipment per side
	BcastRatio     float64 `json:"bcast_ratio"`
	BcastHits      int64   `json:"bcast_hits"`
	BcastMisses    int64   `json:"bcast_misses"`
	BcastPass      bool    `json:"bcast_pass"` // ratio >= 5.0

	ShuffleSeedB int64   `json:"shuffle_seed_bytes"` // retained seed model: partial-per-panel star
	ShuffleTreeB int64   `json:"shuffle_tree_bytes"` // tree aggregation, per-executor pre-reduce
	ShuffleRatio float64 `json:"shuffle_ratio"`
	ShufflePass  bool    `json:"shuffle_pass"`  // ratio >= 1.5
	ResultsEqual bool    `json:"results_equal"` // dist vs local within 1e-9
	EqualChecked int     `json:"equal_checked"` // comparisons performed
	MapmmRefMS   float64 `json:"mapmm_ref_ms"`  // seed-style panel executor, 1 executor
	MapmmNewMS   float64 `json:"mapmm_new_ms"`  // zero-copy pooled executor, 1 executor
	MapmmRegrPct float64 `json:"mapmm_regression_pct"`
	MapmmPass    bool    `json:"mapmm_pass"` // regression < 2%
	Pass         bool    `json:"pass"`
}

// distIterSession runs a 10-iteration loop whose matmult re-uses the
// loop-invariant broadcast side W on every iteration, with the broadcast
// handle cache toggled, and reports the broadcast volume and cache
// counters. Base mode keeps the operator mix fixed across both runs.
func distIterSession(o Options, cached bool) (bytes, hits, misses int64) {
	x := matrix.Rand(o.rows(20000), 100, 1, -1, 1, 21)
	w := matrix.Rand(100, 50, 1, -1, 1, 22)
	cfg := codegen.DefaultConfig()
	cfg.Mode = codegen.ModeBase
	cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2 // force X operators distributed
	cl := dist.NewCluster()
	cl.SetBroadcastCache(cached)
	s := dml.NewSession(cfg)
	s.Dist = cl
	s.Out = io.Discard
	s.Bind("X", x)
	s.Bind("W", w)
	script := `acc = X %*% W
for (i in 1:9) {
  acc = acc + X %*% W
}`
	if err := s.Run(script); err != nil {
		panic(fmt.Sprintf("dist bench failed: %v", err))
	}
	h, m, _ := cl.BroadcastCacheStats()
	return cl.BytesBroadcast(), h, m
}

// seedPanelMatMultReference is the pre-overhaul panel executor retained as
// the benchmark baseline: per panel, extract the row slice (allocation +
// copy), run the allocating matmult, densify, and copy the panel result
// back into the output — run at one executor (sequential), matching the
// single-executor configuration of the new path it gates.
func seedPanelMatMultReference(a, b *matrix.Matrix, blocksize int) *matrix.Matrix {
	out := matrix.NewDense(a.Rows, b.Cols)
	od := out.Dense()
	n := b.Cols
	for lo := 0; lo < a.Rows; lo += blocksize {
		hi := lo + blocksize
		if hi > a.Rows {
			hi = a.Rows
		}
		panel := matrix.IndexRange(a, lo, hi, 0, a.Cols)
		part := matrix.MatMult(panel, b)
		copy(od[lo*n:hi*n], part.ToDense().Dense())
		part.Release()
		panel.Release()
	}
	return out
}

// Dist measures the distributed-backend overhaul against retained seed
// behavior and writes BENCH_dist.json:
//
//  1. Broadcast: a 10-iteration loop with a loop-invariant side input,
//     handle cache on vs off (gate: >= 5x fewer broadcast bytes — the side
//     ships once per cluster lifetime instead of once per operator).
//  2. Shuffle: aggregation-heavy colSums/sum over a tall matrix, tree
//     aggregation vs the seed model of one densified partial per map
//     partition to a single reducer (gate: >= 1.5x fewer bytes), with the
//     distributed results checked against local execution within 1e-9.
//  3. Wall-clock: the zero-copy pooled panel executor at ONE executor vs
//     the seed-style extract/allocate/copy-back executor (gate: < 2%
//     regression; removing the double allocation should win outright).
func Dist(o Options) *Table {
	reps := o.Reps
	if reps < 3 {
		reps = 3
	}

	// --- Gate 1: broadcast handle cache on the iterative loop. ---
	bytesOff, _, _ := distIterSession(o, false)
	bytesOn, hits, misses := distIterSession(o, true)
	bcastRatio := 0.0
	if bytesOn > 0 {
		bcastRatio = float64(bytesOff) / float64(bytesOn)
	}

	// --- Gate 2: tree aggregation vs the seed star shuffle. ---
	x := matrix.Rand(o.rows(200000), 50, 1, -1, 1, 23)
	cfg := codegen.DefaultConfig()
	cfg.Mode = codegen.ModeBase
	cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2
	cl := dist.NewCluster()
	s := dml.NewSession(cfg)
	s.Dist = cl
	s.Out = io.Discard
	s.Bind("X", x)
	if err := s.Run("cs = colSums(X)\nts = sum(X)"); err != nil {
		panic(fmt.Sprintf("dist bench failed: %v", err))
	}
	shuffleTree := cl.BytesShuffled()
	shuffleSeed := cl.BytesShuffledBaseline()
	shuffleRatio := 0.0
	if shuffleTree > 0 {
		shuffleRatio = float64(shuffleSeed) / float64(shuffleTree)
	}
	equal, checked := true, 0
	if cs, err := s.Get("cs"); err == nil {
		equal = equal && cs.EqualsApprox(matrix.Agg(matrix.AggSum, matrix.DirCol, x), distEqTol)
		checked++
	}
	if ts, err := s.Get("ts"); err == nil {
		equal = equal && ts.EqualsApprox(matrix.Agg(matrix.AggSum, matrix.DirAll, x), distEqTol)
		checked++
	}

	// --- Gate 3: single-executor wall-clock, zero-copy vs seed-style. ---
	a := matrix.Rand(o.rows(20000), 100, 1, -1, 1, 24)
	b := matrix.Rand(100, 50, 1, -1, 1, 25)
	one := dist.NewCluster()
	one.NumExecutors = 1
	mm := &hop.Hop{Kind: hop.OpMatMult, Rows: int64(a.Rows), Cols: int64(b.Cols)}
	newRun := func() {
		out, ok := one.ExecHop(mm, []*matrix.Matrix{a, b}, obs.Span{})
		if !ok {
			panic("dist bench: matmult fell back to local")
		}
		out.Release()
	}
	refRun := func() { seedPanelMatMultReference(a, b, one.Blocksize).Release() }
	// Correctness before timing: both paths vs the local kernel.
	want := matrix.MatMult(a, b)
	got, ok := one.ExecHop(mm, []*matrix.Matrix{a, b}, obs.Span{})
	equal = equal && ok && got.EqualsApprox(want, distEqTol)
	checked++
	got.Release()
	want.Release()
	// Interleaved minimums: scheduler noise hits both variants alike.
	refMin, newMin := time.Duration(1<<62), time.Duration(1<<62)
	newRun()
	refRun()
	for i := 0; i < reps*3; i++ {
		start := time.Now()
		newRun()
		if d := time.Since(start); d < newMin {
			newMin = d
		}
		start = time.Now()
		refRun()
		if d := time.Since(start); d < refMin {
			refMin = d
		}
	}
	regression := 100 * (float64(newMin) - float64(refMin)) / float64(refMin)

	res := DistResult{
		BcastUncachedB: bytesOff,
		BcastCachedB:   bytesOn,
		BcastRatio:     bcastRatio,
		BcastHits:      hits,
		BcastMisses:    misses,
		BcastPass:      bcastRatio >= bcastMinRatio,
		ShuffleSeedB:   shuffleSeed,
		ShuffleTreeB:   shuffleTree,
		ShuffleRatio:   shuffleRatio,
		ShufflePass:    shuffleRatio >= shuffleMinRatio,
		ResultsEqual:   equal,
		EqualChecked:   checked,
		MapmmRefMS:     float64(refMin.Nanoseconds()) / 1e6,
		MapmmNewMS:     float64(newMin.Nanoseconds()) / 1e6,
		MapmmRegrPct:   regression,
		MapmmPass:      regression < distMaxRegressionPct,
	}
	res.Pass = res.BcastPass && res.ShufflePass && res.MapmmPass && res.ResultsEqual
	if data, err := json.MarshalIndent(res, "", "  "); err == nil {
		if err := os.WriteFile(distFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(o.Out, "dist: cannot write %s: %v\n", distFile, err)
		}
	}

	t := &Table{
		Title:   "Distributed backend gates: broadcast cache, tree shuffle, zero-copy panels",
		Columns: []string{"gate", "baseline", "new", "delta", "pass"},
	}
	t.Add("broadcast 10-iter", fmt.Sprintf("%d", bytesOff), fmt.Sprintf("%d", bytesOn),
		fmt.Sprintf("%.1fx (need >=%.0fx)", bcastRatio, bcastMinRatio), fmt.Sprintf("%v", res.BcastPass))
	t.Add("shuffle colSums", fmt.Sprintf("%d", shuffleSeed), fmt.Sprintf("%d", shuffleTree),
		fmt.Sprintf("%.1fx (need >=%.1fx)", shuffleRatio, shuffleMinRatio), fmt.Sprintf("%v", res.ShufflePass))
	t.Add("mapmm 1 executor", ms(refMin), ms(newMin),
		fmt.Sprintf("%+.2f%% (limit <%.0f%%)", regression, distMaxRegressionPct), fmt.Sprintf("%v", res.MapmmPass))
	t.Add("dist == local", fmt.Sprintf("%d checks", checked), fmt.Sprintf("tol %g", distEqTol),
		"", fmt.Sprintf("%v", res.ResultsEqual))
	return t
}
