package matrix

import (
	"fmt"

	"sysml/internal/par"
	"sysml/internal/vector"
)

// MatMult computes C = A %*% B, dispatching on representations. Dense×dense
// uses a cache-blocked ikj loop parallelized over row blocks; sparse left
// inputs iterate nonzeros per row. The output is dense (matrix products of
// sparse inputs are typically much denser than their inputs).
func MatMult(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: matmult shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	switch {
	case !a.IsSparse() && !b.IsSparse():
		matMultDenseDense(a, b, out)
	case a.IsSparse() && !b.IsSparse():
		matMultSparseDense(a, b, out)
	case !a.IsSparse() && b.IsSparse():
		matMultDenseSparse(a, b, out)
	default:
		matMultSparseSparse(a, b, out)
	}
	return out
}

func matMultDenseDense(a, b, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	ad, bd, cd := a.dense, b.dense, c.dense
	if n == 1 {
		// Matrix-vector: per-row dot products.
		par.For(m, 32, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				cd[i] = vector.DotProduct(ad, bd, i*k, 0, k)
			}
		})
		return
	}
	if n < 8 {
		// Narrow outputs: inline accumulation beats per-row primitive calls.
		par.For(m, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ci := i * n
				ai := i * k
				for kk := 0; kk < k; kk++ {
					av := ad[ai+kk]
					if av == 0 {
						continue
					}
					bo := kk * n
					for j := 0; j < n; j++ {
						cd[ci+j] += av * bd[bo+j]
					}
				}
			}
		})
		return
	}
	par.For(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := i * n
			ai := i * k
			for kk := 0; kk < k; kk++ {
				vector.MultAdd(bd, ad[ai+kk], cd, kk*n, ci, n)
			}
		}
	})
}

func matMultSparseDense(a, b, c *Matrix) {
	n := b.Cols
	as, bd, cd := a.sparse, b.dense, c.dense
	if n == 1 {
		par.For(a.Rows, 32, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				vals, cols := as.Row(i)
				cd[i] = vector.DotProductSparse(vals, cols, bd, 0)
			}
		})
		return
	}
	par.For(a.Rows, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals, cols := as.Row(i)
			ci := i * n
			for kk, j := range cols {
				vector.MultAdd(bd, vals[kk], cd, j*n, ci, n)
			}
		}
	})
}

func matMultDenseSparse(a, b, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	ad, bs, cd := a.dense, b.sparse, c.dense
	par.For(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai, ci := i*k, i*n
			for kk := 0; kk < k; kk++ {
				av := ad[ai+kk]
				if av == 0 {
					continue
				}
				vals, cols := bs.Row(kk)
				for p, j := range cols {
					cd[ci+j] += av * vals[p]
				}
			}
		}
	})
}

func matMultSparseSparse(a, b, c *Matrix) {
	n := b.Cols
	as, bs, cd := a.sparse, b.sparse, c.dense
	par.For(a.Rows, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			avals, acols := as.Row(i)
			ci := i * n
			for ka, kk := range acols {
				av := avals[ka]
				bvals, bcols := bs.Row(kk)
				for p, j := range bcols {
					cd[ci+j] += av * bvals[p]
				}
			}
		}
	})
}

// TSMM computes t(X) %*% X exploiting symmetry of the result.
func TSMM(x *Matrix) *Matrix {
	n := x.Cols
	out := NewDense(n, n)
	od := out.dense
	if x.IsSparse() {
		xs := x.sparse
		for i := 0; i < x.Rows; i++ {
			vals, cols := xs.Row(i)
			for p, jp := range cols {
				vp := vals[p]
				for q := p; q < len(cols); q++ {
					od[jp*n+cols[q]] += vp * vals[q]
				}
			}
		}
	} else {
		xd := x.dense
		for i := 0; i < x.Rows; i++ {
			off := i * n
			for jp := 0; jp < n; jp++ {
				vp := xd[off+jp]
				if vp == 0 {
					continue
				}
				vector.MultAdd(xd, vp, od, off+jp, jp*n+jp, n-jp)
			}
		}
	}
	for i := 0; i < n; i++ { // mirror upper triangle
		for j := i + 1; j < n; j++ {
			od[j*n+i] = od[i*n+j]
		}
	}
	return out
}
