package codegen

import (
	"fmt"
	"time"

	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
)

// constructor turns selected fusion plans into CPlans, compiles them (via
// the plan cache), and splices the resulting fused operators into the DAG.
type constructor struct {
	cfg   *Config
	memo  *Memo
	d     *hop.DAG
	q     map[Edge]bool
	cache *PlanCache
	stats *Stats
	rep   *PlanReport // optional EXPLAIN record (nil when not observing)

	coster *Coster // reused for its entry-pick rule
	done   map[int64]bool
	inMAgg map[int64]bool
}

func construct(d *hop.DAG, m *Memo, parts []*Partition, q map[Edge]bool,
	cfg *Config, cache *PlanCache, stats *Stats, rep *PlanReport) error {
	// Multi-aggregates combine across partitions: their fusion opportunity
	// is a *shared input*, which creates no fusion reference and therefore
	// no partition connectivity.
	merged := mergePartitions(parts)
	c := &constructor{
		cfg: cfg, memo: m, d: d, q: q, cache: cache, stats: stats, rep: rep,
		coster: &Coster{cfg: cfg, memo: m, part: merged, q: q},
		done:   map[int64]bool{},
		inMAgg: map[int64]bool{},
	}
	// Horizontal sibling fusion runs first: it can claim row/column
	// aggregates and cellwise maps the multi-aggregate pass cannot, and it
	// deliberately leaves pure full-aggregate groups to combineMulti-
	// Aggregates (which owns the paper's 1×k layout).
	c.combineHorizontal()
	c.combineMultiAggregates(merged)
	for _, p := range parts {
		for _, r := range p.Roots {
			if err := c.walk(m.Hop(r)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *constructor) nextClass() string {
	return fmt.Sprintf("TMP%d", c.cache.NextClassID())
}

// walk visits a node top-down, constructing a fused operator when a valid
// entry is selected, and recursing into the materialized inputs.
func (c *constructor) walk(h *hop.Hop) error {
	if c.done[h.ID] || c.inMAgg[h.ID] {
		return nil
	}
	c.done[h.ID] = true
	entry, ok := c.coster.pickEntry(h)
	if ok {
		region := c.collect(h, entry)
		if len(region.covered) >= 2 {
			if built, leaves := c.buildAndSplice(h, entry, region); built {
				for _, leaf := range leaves {
					if err := c.walk(leaf); err != nil {
						return err
					}
				}
				return nil
			}
		}
	}
	for _, in := range h.Inputs {
		if err := c.walk(in); err != nil {
			return err
		}
	}
	return nil
}

// region is the set of hops covered by one fused operator plus its
// materialized leaf inputs in deterministic first-encounter order.
type region struct {
	covered map[int64]bool
	leaves  []*hop.Hop
	leafSet map[int64]bool
}

func (r *region) addLeaf(h *hop.Hop) {
	if !r.leafSet[h.ID] {
		r.leafSet[h.ID] = true
		r.leaves = append(r.leaves, h)
	}
}

func (c *constructor) collect(h *hop.Hop, entry Entry) *region {
	r := &region{covered: map[int64]bool{}, leafSet: map[int64]bool{}}
	c.collectInto(h, entry, r)
	return r
}

func (c *constructor) collectInto(h *hop.Hop, entry Entry, r *region) {
	if r.covered[h.ID] {
		return
	}
	r.covered[h.ID] = true
	for j, in := range h.Inputs {
		if entry.Inputs[j] >= 0 && !c.q[Edge{h.ID, in.ID}] {
			if childEntry, ok := c.coster.pickEntryCompat(in, entry.Type); ok {
				c.collectInto(in, childEntry, r)
				continue
			}
		}
		if in.Kind != hop.OpLiteral {
			r.addLeaf(in)
		}
	}
}

// buildAndSplice constructs the template-specific CPlan; on success it
// compiles the operator, splices a spoof HOP, and returns the materialized
// leaves to continue walking. Construction bails out (returning false) on
// patterns the backend cannot express, falling back to basic operators.
func (c *constructor) buildAndSplice(h *hop.Hop, entry Entry, r *region) (bool, []*hop.Hop) {
	var plan *cplan.Plan
	var inputs []*hop.Hop
	switch entry.Type {
	case cplan.TemplateCell:
		plan, inputs = c.buildCellPlan(h, r)
	case cplan.TemplateRow:
		plan, inputs = c.buildRowPlan(h, r)
	case cplan.TemplateOuter:
		plan, inputs = c.buildOuterPlan(h, r)
	case cplan.TemplateMAgg:
		// Single MAgg plans are constructed as Cell full aggregates.
		plan, inputs = c.buildCellPlan(h, r)
	}
	if plan == nil {
		return false, nil
	}
	op, hit, err := c.compile(plan)
	if err != nil {
		return false, nil
	}
	c.record(plan.Type.String(), op, len(inputs), h.Rows, h.Cols, hit)
	spoof := c.d.NewSpoof(plan.Type.String(), op, h.Rows, h.Cols, h.Nnz, inputs...)
	spoof.ExecType = h.ExecType
	c.predictSpoof(spoof, entry.Type, []*region{r}, h)
	c.splice(h, spoof)
	return true, r.leaves
}

func (c *constructor) compile(p *cplan.Plan) (*cplan.Operator, bool, error) {
	start := time.Now()
	op, hit, err := c.cache.GetOrCompile(p, c.cfg, c.nextClass)
	if err != nil {
		return nil, false, err
	}
	c.stats.CPlansConstructed++
	if hit {
		c.stats.CacheHits++
	} else {
		c.stats.OperatorsCompiled++
		c.stats.CompileTime += time.Since(start)
	}
	return op, hit, nil
}

// record appends one constructed operator to the EXPLAIN report, including
// the specialized chunk-program classes its fingerprint resolved to.
func (c *constructor) record(template string, op *cplan.Operator, inputs int, rows, cols int64, hit bool) {
	if c.rep == nil {
		return
	}
	cok, cwhy := cplan.CompressedEligible(op.Plan)
	c.rep.Operators = append(c.rep.Operators, OperatorReport{
		Template: template, ClassName: op.ClassName, NumInputs: inputs,
		Rows: rows, Cols: cols, CacheHit: hit, Chunks: op.ChunkClasses(),
		CompressedOK: cok, CompressedWhy: cwhy,
	})
}

func (c *constructor) splice(h, spoof *hop.Hop) {
	for _, p := range append([]*hop.Hop(nil), h.Parents...) {
		p.ReplaceInput(h, spoof)
	}
	for _, name := range c.d.OutputNames() {
		if c.d.Outputs[name] == h {
			c.d.Outputs[name] = spoof
		}
	}
}

// ------------------------------------------------------------- Cell ----

type sideEnv struct {
	sides    []*hop.Hop
	sideIdx  map[int64]int
	nodeMemo map[int64]*cplan.CNode
}

func (e *sideEnv) idx(h *hop.Hop) int {
	if i, ok := e.sideIdx[h.ID]; ok {
		return i
	}
	i := len(e.sides)
	e.sides = append(e.sides, h)
	e.sideIdx[h.ID] = i
	return i
}

func newSideEnv() *sideEnv { return &sideEnv{sideIdx: map[int64]int{}} }

func accessFor(x *hop.Hop, outRows, outCols int64) (cplan.SideAccess, bool) {
	switch {
	case x.IsScalar():
		return cplan.AccessScalar, true
	case x.Rows == outRows && x.Cols == outCols:
		return cplan.AccessCell, true
	case x.Cols == 1 && x.Rows == outRows:
		return cplan.AccessCol, true
	case x.Rows == 1 && x.Cols == outCols:
		return cplan.AccessRow, true
	}
	return 0, false
}

func (c *constructor) buildCellPlan(h *hop.Hop, r *region) (*cplan.Plan, []*hop.Hop) {
	// Root: optional aggregation on top of the cell expression.
	cellType := cplan.CellNoAgg
	aggOp := matrix.AggSum
	exprRoot := h
	if h.Kind == hop.OpAggUnary {
		switch h.AggDir {
		case matrix.DirAll:
			cellType = cplan.CellFullAgg
		case matrix.DirRow:
			cellType = cplan.CellRowAgg
		case matrix.DirCol:
			cellType = cplan.CellColAgg
		}
		aggOp = h.AggOp
		exprRoot = h.Inputs[0]
		if !r.covered[exprRoot.ID] {
			return nil, nil
		}
	}
	outRows, outCols := exprRoot.Rows, exprRoot.Cols
	// Main input: a leaf with the output's dimensions, preferring sparse.
	main := pickMain(r.leaves, outRows, outCols)
	if main == nil {
		return nil, nil
	}
	env := newSideEnv()
	root, ok := c.buildCellNode(exprRoot, r, main, env, outRows, outCols)
	if !ok {
		return nil, nil
	}
	plan := &cplan.Plan{
		Type:       cplan.TemplateCell,
		Cell:       cellType,
		AggOp:      aggOp,
		Root:       root,
		NumSides:   len(env.sides),
		SparseSafe: cplan.ProbeSparseSafe(root),
	}
	// Cell plans that cannot vectorize (row/column-broadcast sides) run
	// per-cell closures; decline fusion when that dispatch overhead
	// exceeds the intermediates it saves (the sparse-safe sparse path
	// iterates non-zeros and keeps its own advantage).
	if !(plan.SparseSafe && main.IsSparse()) && cplan.CompileCellVec(root) == nil {
		m := c.cfg.Costs
		var interiorBytes float64
		for id := range r.covered {
			if x := c.memo.Hop(id); x != nil && x != h {
				interiorBytes += float64(x.OutputSizeBytes())
			}
		}
		overhead := float64(main.Cells()) * float64(len(r.covered)) * cellDispatchFlops / m.ComputeBW
		saved := interiorBytes * (1/m.WriteBW + 1/m.ReadBW)
		if overhead > saved {
			return nil, nil
		}
	}
	return plan, append([]*hop.Hop{main}, env.sides...)
}

// cellDispatchFlops is the per-cell closure-dispatch overhead (FLOP
// equivalents) of non-vectorized Cell operators.
const cellDispatchFlops = 400

func pickMain(leaves []*hop.Hop, rows, cols int64) *hop.Hop {
	var main *hop.Hop
	for _, l := range leaves {
		if l.Rows == rows && l.Cols == cols {
			if main == nil || (l.IsSparse() && !main.IsSparse()) {
				main = l
			}
		}
	}
	return main
}

func (c *constructor) buildCellNode(x *hop.Hop, r *region, main *hop.Hop,
	env *sideEnv, outRows, outCols int64) (*cplan.CNode, bool) {
	if env.nodeMemo == nil {
		env.nodeMemo = map[int64]*cplan.CNode{}
	}
	if n, ok := env.nodeMemo[x.ID]; ok {
		return n, true
	}
	n, ok := c.buildCellNodeUncached(x, r, main, env, outRows, outCols)
	if ok {
		env.nodeMemo[x.ID] = n
	}
	return n, ok
}

func (c *constructor) buildCellNodeUncached(x *hop.Hop, r *region, main *hop.Hop,
	env *sideEnv, outRows, outCols int64) (*cplan.CNode, bool) {
	if !r.covered[x.ID] {
		if x == main {
			return cplan.Main(0), true
		}
		if x.Kind == hop.OpLiteral {
			return cplan.Lit(x.Value), true
		}
		access, ok := accessFor(x, outRows, outCols)
		if !ok {
			return nil, false
		}
		return cplan.Side(env.idx(x), access, 0), true
	}
	switch x.Kind {
	case hop.OpBinary:
		l, ok1 := c.buildCellNode(x.Inputs[0], r, main, env, outRows, outCols)
		rr, ok2 := c.buildCellNode(x.Inputs[1], r, main, env, outRows, outCols)
		if !ok1 || !ok2 {
			return nil, false
		}
		return cplan.Binary(x.BinOp, l, rr), true
	case hop.OpUnary:
		in, ok := c.buildCellNode(x.Inputs[0], r, main, env, outRows, outCols)
		if !ok {
			return nil, false
		}
		return cplan.Unary(x.UnOp, in), true
	}
	return nil, false
}

// ------------------------------------------------------------- MAgg ----

// combineMultiAggregates finds selected multi-aggregate candidates sharing
// inputs and fuses up to three of them into one SpoofMultiAggregate with a
// 1×k output, rewiring consumers through indexing extractors (paper §2.2,
// Fig. 1c).
func (c *constructor) combineMultiAggregates(p *Partition) {
	if c.cfg.DisableMAgg {
		return
	}
	var cands []*hop.Hop
	for id := range p.Nodes {
		if c.done[id] || c.inMAgg[id] {
			continue // already claimed (e.g. by a horizontal sibling group)
		}
		h := c.memo.Hop(id)
		g := c.memo.Get(id)
		if g == nil || !g.HasType(cplan.TemplateMAgg) {
			continue
		}
		// Only full aggregates with a fusable cell expression below.
		if h.Kind == hop.OpAggUnary && h.AggDir == matrix.DirAll {
			cands = append(cands, h)
		}
	}
	if len(cands) < 2 {
		return
	}
	// Group by shared leaf inputs.
	var items []maggCand
	for _, h := range cands {
		entry, ok := c.coster.pickEntry(h)
		if !ok {
			continue
		}
		items = append(items, maggCand{h: h, expr: h.Inputs[0], region: c.collect(h, entry)})
	}
	used := map[int64]bool{}
	for i := 0; i < len(items); i++ {
		if used[items[i].h.ID] {
			continue
		}
		group := []maggCand{items[i]}
		leafIDs := map[int64]bool{}
		for _, l := range items[i].region.leaves {
			leafIDs[l.ID] = true
		}
		for j := i + 1; j < len(items) && len(group) < 3; j++ {
			if used[items[j].h.ID] {
				continue
			}
			shared := false
			for _, l := range items[j].region.leaves {
				if leafIDs[l.ID] {
					shared = true
					break
				}
			}
			// Combining aggregates that transitively depend on each other
			// would create a cycle through the shared operator.
			indep := true
			for _, g := range group {
				if dependsOn(items[j].h, g.h) || dependsOn(g.h, items[j].h) {
					indep = false
					break
				}
			}
			if shared && indep {
				group = append(group, items[j])
				for _, l := range items[j].region.leaves {
					leafIDs[l.ID] = true
				}
			}
		}
		if len(group) < 2 {
			continue
		}
		if c.buildMAggGroup(group) {
			for _, it := range group {
				used[it.h.ID] = true
				c.inMAgg[it.h.ID] = true
			}
		}
	}
}

// dependsOn reports whether hop a transitively consumes hop b.
func dependsOn(a, b *hop.Hop) bool {
	seen := map[int64]bool{}
	var dfs func(h *hop.Hop) bool
	dfs = func(h *hop.Hop) bool {
		if h == b {
			return true
		}
		if seen[h.ID] {
			return false
		}
		seen[h.ID] = true
		for _, in := range h.Inputs {
			if dfs(in) {
				return true
			}
		}
		return false
	}
	return dfs(a)
}

// maggCand is one full-aggregate candidate for multi-aggregate fusion.
type maggCand struct {
	h      *hop.Hop
	expr   *hop.Hop
	region *region
}

func (c *constructor) buildMAggGroup(group []maggCand) bool {
	// Shared main input: prefer a sparse leaf common to all aggregates.
	var allLeaves []*hop.Hop
	counts := map[int64]int{}
	for _, it := range group {
		for _, l := range it.region.leaves {
			if counts[l.ID] == 0 {
				allLeaves = append(allLeaves, l)
			}
			counts[l.ID]++
		}
	}
	var main *hop.Hop
	for _, l := range allLeaves {
		if counts[l.ID] == len(group) && l.Cols > 1 {
			if main == nil || (l.IsSparse() && !main.IsSparse()) || l.Cells() > main.Cells() {
				main = l
			}
		}
	}
	if main == nil {
		return false
	}
	env := newSideEnv()
	var roots []*cplan.CNode
	var aggOps []matrix.AggOp
	for _, it := range group {
		root, ok := c.buildCellNode(it.expr, it.region, main, env, main.Rows, main.Cols)
		if !ok {
			return false
		}
		roots = append(roots, root)
		aggOps = append(aggOps, it.h.AggOp)
	}
	plan := &cplan.Plan{
		Type:       cplan.TemplateMAgg,
		Roots:      roots,
		AggOps:     aggOps,
		NumSides:   len(env.sides),
		SparseSafe: cplan.ProbeSparseSafe(roots...),
	}
	op, hit, err := c.compile(plan)
	if err != nil {
		return false
	}
	inputs := append([]*hop.Hop{main}, env.sides...)
	c.record("MAgg", op, len(inputs), 1, int64(len(roots)), hit)
	spoof := c.d.NewSpoof("MAgg", op, 1, int64(len(roots)), int64(len(roots)), inputs...)
	regions := make([]*region, 0, len(group))
	for _, it := range group {
		regions = append(regions, it.region)
	}
	c.predictSpoof(spoof, cplan.TemplateMAgg, regions, nil)
	for k, it := range group {
		extract := c.d.Index(spoof, 0, 1, int64(k), int64(k)+1)
		c.splice(it.h, extract)
		c.done[extract.ID] = true
	}
	// Continue walking from the leaves.
	for _, l := range allLeaves {
		_ = c.walk(l)
	}
	return true
}

// -------------------------------------------------------------- Row ----

func (c *constructor) buildRowPlan(h *hop.Hop, r *region) (*cplan.Plan, []*hop.Hop) {
	mainRows := rowMainRows(h)
	if mainRows <= 0 {
		return nil, nil
	}
	// Main: the row-iterated matrix. For t(X)%*%W the transpose child; else
	// the largest leaf with matching row count.
	var main *hop.Hop
	rowType := cplan.RowNoAgg
	exprRoot := h
	// t(cumsum(t(X))): the row-wise running-sum special form (§3.2).
	if h.Kind == hop.OpTranspose && h.Inputs[0].Kind == hop.OpCumsum &&
		h.Inputs[0].Inputs[0].Kind == hop.OpTranspose {
		x := h.Inputs[0].Inputs[0].Inputs[0]
		if r.covered[x.ID] {
			return nil, nil
		}
		if !c.rowFusionProfitable(h, r, x) {
			return nil, nil
		}
		plan := &cplan.Plan{
			Type:      cplan.TemplateRow,
			Row:       cplan.RowNoAgg,
			Root:      cplan.CumsumNode(cplan.Main(int(x.Cols))),
			MainWidth: int(x.Cols),
		}
		return plan, []*hop.Hop{x}
	}
	switch {
	case h.Kind == hop.OpMatMult && h.Inputs[0].Kind == hop.OpTranspose && r.covered[h.Inputs[0].ID]:
		main = h.Inputs[0].Inputs[0]
		if r.covered[main.ID] {
			return nil, nil // t(f(X)) left expressions not supported
		}
		rowType = cplan.RowColAggT
		exprRoot = h.Inputs[1]
	case h.Kind == hop.OpAggUnary:
		switch h.AggDir {
		case matrix.DirAll:
			rowType = cplan.RowFullAgg
		case matrix.DirCol:
			rowType = cplan.RowColAgg
		case matrix.DirRow:
			rowType = cplan.RowRowAgg
		}
		exprRoot = h.Inputs[0]
	case h.Kind == hop.OpMatMult:
		// X %*% v (RowAgg via dot) or X %*% V (NoAgg): handled by node
		// construction; the root stays h.
		rowType = cplan.RowNoAgg
		if h.Cols == 1 {
			rowType = cplan.RowRowAgg
		}
	}
	if main == nil {
		for _, l := range r.leaves {
			if l.Rows == mainRows && l.Cols > 1 {
				if main == nil || l.Cells() > main.Cells() {
					main = l
				}
			}
		}
	}
	if main == nil {
		return nil, nil
	}
	env := newSideEnv()
	b := &rowBuilder{c: c, r: r, main: main, env: env, mainWidth: int(main.Cols)}
	var root *cplan.CNode
	var ok bool
	if rowType == cplan.RowColAggT {
		root, ok = b.build(exprRoot)
	} else if h.Kind == hop.OpAggUnary {
		root, ok = b.build(exprRoot)
		if ok && (rowType == cplan.RowFullAgg || rowType == cplan.RowRowAgg) && root.Vector {
			root = cplan.Agg(h.AggOp, root)
		}
		if ok && rowType == cplan.RowColAgg && !root.Vector {
			return nil, nil
		}
	} else {
		root, ok = b.build(h)
		if ok && rowType == cplan.RowRowAgg && root.Vector {
			return nil, nil
		}
		if ok && rowType == cplan.RowNoAgg && !root.Vector {
			// Scalar per row (e.g. y * (X %*% w)): a row-agg shaped output.
			if h.Cols != 1 {
				return nil, nil
			}
			rowType = cplan.RowRowAgg
		}
	}
	if !ok {
		return nil, nil
	}
	if !c.rowFusionProfitable(h, r, main) {
		return nil, nil
	}
	plan := &cplan.Plan{
		Type:      cplan.TemplateRow,
		Row:       rowType,
		Root:      root,
		NumSides:  len(env.sides),
		MainWidth: b.mainWidth,
	}
	return plan, append([]*hop.Hop{main}, env.sides...)
}

// rowFusionProfitable weighs a Row operator's per-row dispatch overhead
// against what fusion saves: materialized interior intermediates and
// repeated scans of the main input. SystemML's JIT-compiled genexec has no
// such overhead. A Go row program usually does — unless its fingerprint
// maps to a specialized whole-row chunk body (row.dot, row.rank1; see the
// dispatch contract in cplan/chunks.go and runtime.execRowChunk), which
// runs straight over the vector kernels. The gate keeps the conservative
// interpreted-dispatch estimate because chunk applicability also depends
// on runtime operand layout (dense, row-aligned sides) that construction
// cannot see; fingerprinted regions that clear the gate simply run faster
// than modeled.
func (c *constructor) rowFusionProfitable(h *hop.Hop, r *region, main *hop.Hop) bool {
	m := c.cfg.Costs
	var interiorBytes float64
	mainScans := 0
	for id := range r.covered {
		x := c.memo.Hop(id)
		if x == nil {
			continue
		}
		if x != h {
			w := 1.0
			if x.Kind == hop.OpTranspose {
				// A materialized transpose costs far more than its bytes
				// suggest (random-access writes, worse for sparse inputs).
				w = 4
			}
			interiorBytes += w * float64(x.OutputSizeBytes())
		}
		for _, in := range x.Inputs {
			if in == main || (in.Kind == hop.OpTranspose && len(in.Inputs) > 0 && in.Inputs[0] == main) {
				mainScans++
			}
		}
	}
	extraScans := mainScans - 1
	if extraScans < 0 {
		extraScans = 0
	}
	saved := interiorBytes*(1/m.WriteBW+1/m.ReadBW) +
		float64(main.ReadSizeBytes())*float64(extraScans)/m.ReadBW
	overhead := float64(main.Rows) * float64(len(r.covered)) * rowDispatchFlops / m.ComputeBW
	return overhead <= saved
}

type rowBuilder struct {
	c         *constructor
	r         *region
	main      *hop.Hop
	env       *sideEnv
	mainWidth int
	memo      map[int64]*cplan.CNode
}

// build memoizes per hop so CSEs inside the fused operator share one CNode
// (and therefore one register after program compilation).
func (b *rowBuilder) build(x *hop.Hop) (*cplan.CNode, bool) {
	if b.memo == nil {
		b.memo = map[int64]*cplan.CNode{}
	}
	if n, ok := b.memo[x.ID]; ok {
		return n, true
	}
	n, ok := b.buildNode(x)
	if ok {
		b.memo[x.ID] = n
	}
	return n, ok
}

func (b *rowBuilder) buildNode(x *hop.Hop) (*cplan.CNode, bool) {
	if !b.r.covered[x.ID] {
		return b.leaf(x)
	}
	switch x.Kind {
	case hop.OpBinary:
		l, ok1 := b.build(x.Inputs[0])
		r, ok2 := b.build(x.Inputs[1])
		if !ok1 || !ok2 {
			return nil, false
		}
		return cplan.Binary(x.BinOp, l, r), true
	case hop.OpUnary:
		in, ok := b.build(x.Inputs[0])
		if !ok {
			return nil, false
		}
		return cplan.Unary(x.UnOp, in), true
	case hop.OpAggUnary:
		if x.AggDir != matrix.DirRow {
			return nil, false
		}
		in, ok := b.build(x.Inputs[0])
		if !ok || !in.Vector {
			return nil, false
		}
		return cplan.Agg(x.AggOp, in), true
	case hop.OpIndex:
		if x.RL != 0 || x.RU != x.Inputs[0].Rows {
			return nil, false
		}
		in, ok := b.build(x.Inputs[0])
		if !ok || !in.Vector {
			return nil, false
		}
		return cplan.Idx(in, int(x.CL), int(x.CU)), true
	case hop.OpMatMult:
		left, right := x.Inputs[0], x.Inputs[1]
		l, ok := b.build(left)
		if !ok || !l.Vector {
			return nil, false
		}
		if b.r.covered[right.ID] {
			return nil, false // right side must be materialized
		}
		if right.Cols == 1 {
			// Dot product with a whole-vector side.
			width := int(right.Rows)
			side := cplan.Side(b.env.idx(right), cplan.AccessRow, width)
			return cplan.Agg(matrix.AggSum, cplan.Binary(matrix.BinMul, l, side)), true
		}
		return cplan.MatMultNode(l, b.env.idx(right), int(right.Cols)), true
	}
	return nil, false
}

func (b *rowBuilder) leaf(x *hop.Hop) (*cplan.CNode, bool) {
	switch {
	case x == b.main:
		return cplan.Main(b.mainWidth), true
	case x.Kind == hop.OpLiteral:
		return cplan.Lit(x.Value), true
	case x.IsScalar():
		return cplan.Side(b.env.idx(x), cplan.AccessScalar, 0), true
	case x.Cols == 1 && x.Rows == b.main.Rows:
		return cplan.Side(b.env.idx(x), cplan.AccessCol, 0), true
	case x.Rows == b.main.Rows && x.Cols > 1:
		return cplan.Side(b.env.idx(x), cplan.AccessCell, int(x.Cols)), true
	case x.Rows == 1 && x.Cols > 1:
		return cplan.Side(b.env.idx(x), cplan.AccessRow, int(x.Cols)), true
	}
	return nil, false
}

// ------------------------------------------------------------- Outer ---

func (c *constructor) buildOuterPlan(h *hop.Hop, r *region) (*cplan.Plan, []*hop.Hop) {
	// Locate the covered opening outer-product multiplication.
	var mm *hop.Hop
	for id := range r.covered {
		x := c.memo.Hop(id)
		if x.Kind == hop.OpMatMult && x.Inputs[0].Cols <= int64(c.cfg.OuterMaxRank) &&
			x.Inputs[0].Cols == x.Inputs[1].Rows && x.Cells() > x.Inputs[0].Cols*x.Inputs[0].Cols {
			if mm == nil || x.Cells() > mm.Cells() {
				mm = x
			}
		}
	}
	if mm == nil || r.covered[mm.Inputs[0].ID] {
		return nil, nil
	}
	u := mm.Inputs[0]
	vt := mm.Inputs[1]
	var v *hop.Hop
	if vt.Kind == hop.OpTranspose {
		v = vt.Inputs[0]
	} else {
		// Materialize the transpose of the right factor as V.
		v = c.d.Transpose(vt)
	}
	// Output variant from the root operator.
	outType := cplan.OuterNoAgg
	exprRoot := h
	switch {
	case h.Kind == hop.OpAggUnary && h.AggDir == matrix.DirAll:
		outType = cplan.OuterAgg
		exprRoot = h.Inputs[0]
	case h.Kind == hop.OpMatMult && h != mm:
		left, right := h.Inputs[0], h.Inputs[1]
		switch {
		case r.covered[left.ID] && left.Kind == hop.OpTranspose && right == u:
			outType = cplan.OuterLeftMM
			exprRoot = left.Inputs[0]
		case r.covered[left.ID] && right == v:
			outType = cplan.OuterRightMM
			exprRoot = left
		default:
			return nil, nil
		}
	}
	if !r.covered[exprRoot.ID] {
		return nil, nil
	}
	// Main X: the sparse driver among leaves with the outer dimensions.
	var mainX *hop.Hop
	for _, l := range r.leaves {
		if l == u || l == v || l == vt {
			continue
		}
		if l.Rows == mm.Rows && l.Cols == mm.Cols {
			if mainX == nil || (l.IsSparse() && !mainX.IsSparse()) {
				mainX = l
			}
		}
	}
	env := newSideEnv()
	root, ok := c.buildOuterNode(exprRoot, r, mm, mainX, env)
	if !ok {
		return nil, nil
	}
	sparseSafe := mainX != nil && cplan.ProbeSparseSafe(root)
	plan := &cplan.Plan{
		Type:       cplan.TemplateOuter,
		Out:        outType,
		Root:       root,
		NumSides:   len(env.sides),
		SparseSafe: sparseSafe,
		OuterRank:  int(u.Cols),
	}
	if mainX == nil {
		// No driver: execute densely over the outer dimensions using a
		// synthetic dense main (fall back to basic execution instead).
		return nil, nil
	}
	inputs := append([]*hop.Hop{mainX, u, v}, env.sides...)
	return plan, inputs
}

func (c *constructor) buildOuterNode(x *hop.Hop, r *region, mm, mainX *hop.Hop,
	env *sideEnv) (*cplan.CNode, bool) {
	if env.nodeMemo == nil {
		env.nodeMemo = map[int64]*cplan.CNode{}
	}
	if n, ok := env.nodeMemo[x.ID]; ok {
		return n, true
	}
	n, ok := c.buildOuterNodeUncached(x, r, mm, mainX, env)
	if ok {
		env.nodeMemo[x.ID] = n
	}
	return n, ok
}

func (c *constructor) buildOuterNodeUncached(x *hop.Hop, r *region, mm, mainX *hop.Hop,
	env *sideEnv) (*cplan.CNode, bool) {
	if x == mm {
		return cplan.Dot(), true
	}
	if !r.covered[x.ID] {
		if x == mainX {
			return cplan.Main(0), true
		}
		if x.Kind == hop.OpLiteral {
			return cplan.Lit(x.Value), true
		}
		access, ok := accessFor(x, mm.Rows, mm.Cols)
		if !ok {
			return nil, false
		}
		return cplan.Side(env.idx(x), access, 0), true
	}
	switch x.Kind {
	case hop.OpBinary:
		l, ok1 := c.buildOuterNode(x.Inputs[0], r, mm, mainX, env)
		rr, ok2 := c.buildOuterNode(x.Inputs[1], r, mm, mainX, env)
		if !ok1 || !ok2 {
			return nil, false
		}
		return cplan.Binary(x.BinOp, l, rr), true
	case hop.OpUnary:
		in, ok := c.buildOuterNode(x.Inputs[0], r, mm, mainX, env)
		if !ok {
			return nil, false
		}
		return cplan.Unary(x.UnOp, in), true
	}
	return nil, false
}
