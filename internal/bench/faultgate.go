package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dist"
	"sysml/internal/dml"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/obs"
)

// faultFile is the JSON artifact Fault writes next to the harness output;
// CI gates on its "pass" field.
const faultFile = "BENCH_fault.json"

// Fault-tolerance gate thresholds.
const (
	// faultEqTol: results computed under injected faults must match local
	// execution within this absolute tolerance.
	faultEqTol = 1e-9

	// faultMaxOverheadPct: with a fault plan attached but nothing injected
	// (the scheduler runs, no faults fire), wall-clock may exceed the
	// plan-free fast path by at most this percentage.
	faultMaxOverheadPct = 3.0

	// faultMaxRecoveryX: losing one of six executors at the first task may
	// stretch wall-clock by at most this factor over the fault-free run
	// (capacity drops 1/6; recovery adds reassignment, not recomputation
	// of completed panels).
	faultMaxRecoveryX = 2.5
)

// FaultResult is the serialized outcome of the fault-tolerance gates.
type FaultResult struct {
	ChaosRuns      int   `json:"chaos_runs"`      // session runs under injected faults
	ChaosChecked   int   `json:"chaos_checked"`   // result comparisons vs local
	ChaosTransient int64 `json:"chaos_transient"` // transient failures injected
	ChaosRetries   int64 `json:"chaos_retries"`
	ChaosKills     int64 `json:"chaos_kills"`
	ChaosStraggler int64 `json:"chaos_stragglers"`
	ChaosPass      bool  `json:"chaos_pass"` // all equal AND faults actually injected

	OverheadOffMS float64 `json:"overhead_off_ms"` // no fault plan (par fast path)
	OverheadOnMS  float64 `json:"overhead_on_ms"`  // inert plan (fault scheduler, no injection)
	OverheadPct   float64 `json:"overhead_pct"`
	OverheadPass  bool    `json:"overhead_pass"` // < 3%

	RecoveryFreeMS float64 `json:"recovery_free_ms"` // 6 live executors
	RecoveryKillMS float64 `json:"recovery_kill_ms"` // 1 of 6 killed at first task
	RecoveryX      float64 `json:"recovery_x"`
	RecoveryPass   bool    `json:"recovery_pass"` // <= 2.5x

	Pass bool `json:"pass"`
}

// faultChaosSession runs an iterative map/matmult/aggregate script on a
// cluster with the given fault plan (operators forced distributed) and
// compares every variable against fault-free local execution. It reports
// the comparisons performed and whether all matched.
func faultChaosSession(o Options, plan *dist.FaultPlan, seed int64) (cl *dist.Cluster, equal bool, checked int) {
	x := matrix.Rand(o.rows(8000), 24, 1, -1, 1, seed)
	w := matrix.Rand(24, 6, 1, -1, 1, seed+90)
	cfg := codegen.DefaultConfig()
	cfg.Mode = codegen.ModeBase
	cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2 // force X operators distributed
	cl = dist.NewCluster(dist.WithFaultPlan(plan))
	s := dml.NewSession(cfg)
	s.Dist = cl
	s.Out = io.Discard
	s.Bind("X", x)
	s.Bind("W", w)
	script := `P = X %*% W
A = abs(X)
cs = colSums(A)
t = sum(P)`
	if err := s.Run(script); err != nil {
		panic(fmt.Sprintf("fault bench failed: %v", err))
	}
	equal = true
	for name, want := range map[string]*matrix.Matrix{
		"P":  matrix.MatMult(x, w),
		"A":  matrix.Unary(matrix.UnAbs, x),
		"cs": matrix.Agg(matrix.AggSum, matrix.DirCol, matrix.Unary(matrix.UnAbs, x)),
		"t":  matrix.Agg(matrix.AggSum, matrix.DirAll, matrix.MatMult(x, w)),
	} {
		got, err := s.Get(name)
		if err != nil {
			panic(fmt.Sprintf("fault bench: %v", err))
		}
		equal = equal && got.EqualsApprox(want, faultEqTol)
		checked++
	}
	return cl, equal, checked
}

// Fault measures the fault-injection and recovery layer and writes
// BENCH_fault.json:
//
//  1. Chaos correctness: sessions under transient failures, an executor
//     kill, stragglers, and all three combined, across seeds — every
//     distributed result must match fault-free local execution within
//     1e-9, and the sweep must have actually injected faults.
//  2. Overhead: mapmm wall-clock with an inert fault plan (scheduler on,
//     nothing injected) vs no plan (gate: < 3% — resilience may not tax
//     fault-free runs).
//  3. Recovery: mapmm wall-clock with one of six executors killed at the
//     first task vs fault-free (gate: <= 2.5x — reassignment, not rerun).
func Fault(o Options) *Table {
	reps := o.Reps
	if reps < 3 {
		reps = 3
	}

	// --- Gate 1: chaos correctness sweep. ---
	fast := func(p *dist.FaultPlan) *dist.FaultPlan {
		p.BackoffBase = 10 * time.Microsecond
		p.BackoffCap = 200 * time.Microsecond
		return p
	}
	var runs, checked int
	var transients, retries, kills, stragglers int64
	equal := true
	for seed := int64(1); seed <= 3; seed++ {
		plans := []*dist.FaultPlan{
			fast(&dist.FaultPlan{Seed: seed, TransientRate: 0.15}),
			fast(&dist.FaultPlan{Seed: seed, KillExecutor: int(seed) % 6, KillAtTask: 3 * seed}),
			fast(&dist.FaultPlan{Seed: seed, StragglerRate: 0.05, StragglerDelay: 300 * time.Microsecond}),
			fast(&dist.FaultPlan{Seed: seed, TransientRate: 0.1, KillExecutor: 1, KillAtTask: 7,
				StragglerRate: 0.03, StragglerDelay: 200 * time.Microsecond}),
		}
		for _, plan := range plans {
			cl, eq, n := faultChaosSession(o, plan, seed)
			st := cl.FaultStats()
			transients += st.TransientInjected
			retries += st.Retries
			kills += st.Kills
			stragglers += st.StragglersInjected
			equal = equal && eq
			runs++
			checked += n
		}
	}
	injected := transients > 0 && retries > 0 && kills > 0 && stragglers > 0
	chaosPass := equal && injected

	// --- Gates 2+3 share the workload: a broadcast mapmm. ---
	a := matrix.Rand(o.rows(20000), 100, 1, -1, 1, 26)
	b := matrix.Rand(100, 50, 1, -1, 1, 27)
	mm := &hop.Hop{Kind: hop.OpMatMult, Rows: int64(a.Rows), Cols: int64(b.Cols)}
	run := func(cl *dist.Cluster) {
		out, ok := cl.ExecHop(mm, []*matrix.Matrix{a, b}, obs.Span{})
		if !ok {
			panic("fault bench: matmult degraded unexpectedly")
		}
		out.Release()
	}

	// --- Gate 2: inert-plan overhead, interleaved minimums. ---
	plain := dist.NewCluster()
	inert := dist.NewCluster(dist.WithFaultPlan(&dist.FaultPlan{Seed: 1}))
	run(plain)
	run(inert)
	offMin, onMin := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < reps*3; i++ {
		start := time.Now()
		run(plain)
		if d := time.Since(start); d < offMin {
			offMin = d
		}
		start = time.Now()
		run(inert)
		if d := time.Since(start); d < onMin {
			onMin = d
		}
	}
	overheadPct := 100 * (float64(onMin) - float64(offMin)) / float64(offMin)

	// --- Gate 3: single-kill recovery wall-clock. ---
	// Fresh cluster per killed rep: the scheduled kill fires once per
	// cluster lifetime. The fault-free baseline runs the same scheduler
	// with the kill disarmed, so the ratio isolates recovery cost.
	freeMin, killMin := time.Duration(1<<62), time.Duration(1<<62)
	recoveryEqual := true
	for i := 0; i < reps*3; i++ {
		free := dist.NewCluster(dist.WithFaultPlan(&dist.FaultPlan{Seed: 1}))
		start := time.Now()
		run(free)
		if d := time.Since(start); d < freeMin {
			freeMin = d
		}
		killed := dist.NewCluster(dist.WithFaultPlan(
			&dist.FaultPlan{Seed: 1, KillExecutor: 2, KillAtTask: 1}))
		start = time.Now()
		out, ok := killed.ExecHop(mm, []*matrix.Matrix{a, b}, obs.Span{})
		d := time.Since(start)
		if !ok {
			panic("fault bench: killed run degraded")
		}
		if d < killMin {
			killMin = d
		}
		if i == 0 {
			want := matrix.MatMult(a, b)
			recoveryEqual = out.EqualsApprox(want, faultEqTol)
			want.Release()
			if killed.FaultStats().Kills != 1 {
				panic("fault bench: scheduled kill did not fire")
			}
		}
		out.Release()
	}
	recoveryX := float64(killMin) / float64(freeMin)

	res := FaultResult{
		ChaosRuns:      runs,
		ChaosChecked:   checked,
		ChaosTransient: transients,
		ChaosRetries:   retries,
		ChaosKills:     kills,
		ChaosStraggler: stragglers,
		ChaosPass:      chaosPass,
		OverheadOffMS:  float64(offMin.Nanoseconds()) / 1e6,
		OverheadOnMS:   float64(onMin.Nanoseconds()) / 1e6,
		OverheadPct:    overheadPct,
		OverheadPass:   overheadPct < faultMaxOverheadPct,
		RecoveryFreeMS: float64(freeMin.Nanoseconds()) / 1e6,
		RecoveryKillMS: float64(killMin.Nanoseconds()) / 1e6,
		RecoveryX:      recoveryX,
		RecoveryPass:   recoveryX <= faultMaxRecoveryX && recoveryEqual,
	}
	res.Pass = res.ChaosPass && res.OverheadPass && res.RecoveryPass
	if data, err := json.MarshalIndent(res, "", "  "); err == nil {
		if err := os.WriteFile(faultFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(o.Out, "fault: cannot write %s: %v\n", faultFile, err)
		}
	}

	t := &Table{
		Title:   "Fault-tolerance gates: chaos correctness, scheduler overhead, kill recovery",
		Columns: []string{"gate", "baseline", "faulty", "delta", "pass"},
	}
	t.Add("chaos == local", fmt.Sprintf("%d checks", checked),
		fmt.Sprintf("inj %d/%d/%d/%d", transients, kills, stragglers, retries),
		fmt.Sprintf("tol %g", faultEqTol), fmt.Sprintf("%v", chaosPass))
	t.Add("inert overhead", ms(offMin), ms(onMin),
		fmt.Sprintf("%+.2f%% (limit <%.0f%%)", overheadPct, faultMaxOverheadPct),
		fmt.Sprintf("%v", res.OverheadPass))
	t.Add("1-of-6 kill", ms(freeMin), ms(killMin),
		fmt.Sprintf("%.2fx (limit <=%.1fx)", recoveryX, faultMaxRecoveryX),
		fmt.Sprintf("%v", res.RecoveryPass))
	return t
}
