// Package hop implements SystemML-style high-level operators (HOPs) and
// their DAGs: the intermediate representation that the rewrite engine and
// the codegen fusion optimizer work on. Each statement block of a script
// compiles to one HOP DAG; sizes (dimensions and non-zero estimates)
// propagate bottom-up and drive memory estimates and execution-type
// decisions (paper §2.1).
package hop

import (
	"fmt"

	"sysml/internal/matrix"
)

// OpKind identifies the high-level operator class.
type OpKind int

// HOP kinds. OpSpoof represents a fused operator produced by the code
// generator; its Spoof field holds the compiled operator (opaque to this
// package to avoid dependency cycles).
const (
	OpData        OpKind = iota // named (transient) read
	OpLiteral                   // scalar constant
	OpDataGen                   // rand/fill/seq generation
	OpBinary                    // element-wise binary, b(+), b(*), ...
	OpUnary                     // element-wise unary, u(exp), ...
	OpAggUnary                  // unary aggregate, ua(R+), ua(C+), ua(+), ...
	OpMatMult                   // binary aggregate ba(+*): matrix multiplication
	OpTranspose                 // reorg r(t)
	OpIndex                     // right indexing rix with static bounds
	OpCBind                     // column concatenation
	OpRBind                     // row concatenation
	OpRowIndexMax               // per-row argmax (1-based)
	OpDiag                      // diagonal extract/expand
	OpCumsum                    // column-wise prefix sums
	OpSpoof                     // generated fused operator
	OpSpoofOut                  // output extractor of a multi-output fused operator
)

var kindNames = [...]string{
	"data", "lit", "datagen", "b", "u", "ua", "ba(+*)", "r(t)", "rix",
	"cbind", "rbind", "rowIndexMax", "diag", "cumsum", "spoof", "spoofOut",
}

func (k OpKind) String() string { return kindNames[k] }

// ExecType selects local in-memory or simulated-distributed execution.
type ExecType int

// Execution types.
const (
	ExecLocal ExecType = iota
	ExecDist
)

func (e ExecType) String() string {
	if e == ExecDist {
		return "DIST"
	}
	return "LOCAL"
}

// DataGenKind distinguishes data generation methods.
type DataGenKind int

// Data generation methods.
const (
	GenRand DataGenKind = iota
	GenFill
	GenSeq
)

// Hop is a single high-level operator in a DAG. Inputs order matters and
// corresponds to operand position; Parents lists all consumers (multiple
// consumers make this node a potential materialization point for fusion).
type Hop struct {
	ID     int64
	Kind   OpKind
	BinOp  matrix.BinOp
	UnOp   matrix.UnOp
	AggOp  matrix.AggOp
	AggDir matrix.AggDir

	Value float64 // OpLiteral
	Name  string  // OpData: variable name

	Gen       DataGenKind // OpDataGen
	GenArgs   []float64   // rand: sparsity, lo, hi, seed; fill: value; seq: from, to, incr
	RL, RU    int64       // OpIndex row bounds (half-open, zero-based)
	CL, CU    int64       // OpIndex col bounds
	Inputs    []*Hop
	Parents   []*Hop
	Rows      int64
	Cols      int64
	Nnz       int64 // estimated non-zeros; -1 if unknown
	ExecType  ExecType
	Spoof     any // compiled fused operator (set by codegen)
	SpoofType string
	OutIdx    int // OpSpoofOut: which output of the multi-output input

	// Cost-model predictions, annotated by codegen after optimization and
	// consumed by the runtime's cost-audit ledger (internal/obs.Audit).
	// PredSec 0 means "not annotated" and suppresses auditing.
	PredSec   float64 // predicted execution time (seconds)
	PredFlops float64 // predicted floating-point work
	PredBytes int64   // predicted IO volume (input reads + output write)

	// Compressed-input annotation (OpData hops whose bound matrix carries
	// an attached compressed form, set by the interpreter's auto-compress
	// pass): the compressed size replaces the dense size wherever the cost
	// model charges for *reading* this node's output, and the encoding
	// summary feeds the EXPLAIN report. 0/"" = not compressed.
	CompressedBytes int64
	CompressedDesc  string
}

// IsScalar reports whether the node produces a scalar (held as a 1×1
// matrix throughout the runtime).
func (h *Hop) IsScalar() bool { return h.Rows == 1 && h.Cols == 1 }

// IsVector reports whether the node produces a row or column vector.
func (h *Hop) IsVector() bool { return h.Rows == 1 || h.Cols == 1 }

// Sparsity returns the estimated non-zero fraction, defaulting to dense
// when the estimate is unknown.
func (h *Hop) Sparsity() float64 {
	cells := float64(h.Rows) * float64(h.Cols)
	if h.Nnz < 0 || cells == 0 {
		return 1
	}
	return float64(h.Nnz) / cells
}

// IsSparse reports whether the output is expected to be in sparse format.
func (h *Hop) IsSparse() bool {
	return h.Nnz >= 0 && h.Cols > 1 && h.Sparsity() < matrix.SparsityThreshold
}

// Cells returns the number of output cells.
func (h *Hop) Cells() int64 { return h.Rows * h.Cols }

// OutputSizeBytes estimates the in-memory output size for cost and memory
// estimation.
func (h *Hop) OutputSizeBytes() int64 {
	if h.IsSparse() {
		return h.Nnz*16 + h.Rows*8
	}
	return h.Cells() * 8
}

// InputSizeBytes sums the output sizes of all inputs.
func (h *Hop) InputSizeBytes() int64 {
	var s int64
	for _, in := range h.Inputs {
		s += in.OutputSizeBytes()
	}
	return s
}

// ReadSizeBytes returns the bytes a consumer streams to read this node's
// output: the compressed size when the bound input carries an attached
// compressed form, the dense/sparse estimate otherwise. Cost terms that
// model scanning an operand use this; terms that model materializing one
// keep OutputSizeBytes.
func (h *Hop) ReadSizeBytes() int64 {
	if h.CompressedBytes > 0 && h.CompressedBytes < h.OutputSizeBytes() {
		return h.CompressedBytes
	}
	return h.OutputSizeBytes()
}

// ReadInputSizeBytes sums the read sizes of all inputs.
func (h *Hop) ReadInputSizeBytes() int64 {
	var s int64
	for _, in := range h.Inputs {
		s += in.ReadSizeBytes()
	}
	return s
}

// MemEstimate returns the operation's memory estimate: inputs + output
// (intermediates of basic operators are the output itself).
func (h *Hop) MemEstimate() int64 { return h.InputSizeBytes() + h.OutputSizeBytes() }

// String renders a compact description, e.g. "b(*)" or "ua(R+)".
func (h *Hop) String() string {
	switch h.Kind {
	case OpData:
		return fmt.Sprintf("data(%s)", h.Name)
	case OpLiteral:
		return fmt.Sprintf("lit(%g)", h.Value)
	case OpBinary:
		return fmt.Sprintf("b(%v)", h.BinOp)
	case OpUnary:
		return fmt.Sprintf("u(%v)", h.UnOp)
	case OpAggUnary:
		dir := map[matrix.AggDir]string{matrix.DirAll: "", matrix.DirRow: "R", matrix.DirCol: "C"}[h.AggDir]
		return fmt.Sprintf("ua(%s%v)", dir, h.AggOp)
	case OpSpoof:
		return fmt.Sprintf("spoof(%s)", h.SpoofType)
	case OpSpoofOut:
		return fmt.Sprintf("spoofOut[%d]", h.OutIdx)
	default:
		return h.Kind.String()
	}
}

// ReplaceInput substitutes old with new in the input list and fixes both
// parent lists. Used by rewrites and by codegen when splicing fused
// operators into the DAG.
func (h *Hop) ReplaceInput(old, new_ *Hop) {
	for i, in := range h.Inputs {
		if in == old {
			h.Inputs[i] = new_
			old.removeParent(h)
			new_.Parents = append(new_.Parents, h)
		}
	}
}

func (h *Hop) removeParent(p *Hop) {
	for i, x := range h.Parents {
		if x == p {
			h.Parents = append(h.Parents[:i], h.Parents[i+1:]...)
			return
		}
	}
}

// NumConsumers returns the number of distinct parent references (a parent
// consuming the node twice counts twice, matching materialization-point
// semantics per data dependency).
func (h *Hop) NumConsumers() int { return len(h.Parents) }
