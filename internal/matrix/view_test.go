package matrix

import (
	"math"
	"testing"
)

func viewShapes() []struct{ r, c int } {
	return []struct{ r, c int }{{1, 7}, {5, 1}, {17, 9}, {64, 33}, {100, 3}}
}

func TestRowViewMatchesIndexRange(t *testing.T) {
	for _, sh := range viewShapes() {
		for _, sparsity := range []float64{1, 0.3, 0.05} {
			m := Rand(sh.r, sh.c, sparsity, -2, 2, int64(sh.r*sh.c)+int64(sparsity*100))
			for _, rep := range []*Matrix{m.ToDense(), m.ToSparse()} {
				for _, span := range [][2]int{{0, sh.r}, {0, (sh.r + 1) / 2}, {sh.r / 2, sh.r}} {
					lo, hi := span[0], span[1]
					if lo >= hi {
						continue
					}
					got := rep.RowView(lo, hi)
					want := IndexRange(rep, lo, hi, 0, sh.c)
					if !got.EqualsApprox(want, 0) {
						t.Fatalf("RowView(%d,%d) of %dx%d sparse=%v differs", lo, hi, sh.r, sh.c, rep.IsSparse())
					}
				}
			}
		}
	}
}

func TestRowViewSharesDenseStorage(t *testing.T) {
	m := Rand(10, 4, 1, -1, 1, 7)
	v := m.RowView(2, 5)
	m.Set(3, 1, 42)
	if v.At(1, 1) != 42 {
		t.Fatal("dense row view does not alias parent storage")
	}
	v.Release() // must not recycle the parent's storage
	if m.At(3, 1) != 42 {
		t.Fatal("releasing a view corrupted the parent")
	}
}

func TestBinaryIntoMatchesBinary(t *testing.T) {
	ops := []BinOp{BinAdd, BinMul, BinDiv, BinMax}
	type pair struct{ a, b *Matrix }
	a := Rand(20, 7, 1, -1, 1, 1)
	pairs := []pair{
		{a, Rand(20, 7, 1, -1, 1, 2)},              // same shape dense
		{a, Rand(20, 7, 0.2, -1, 1, 3).ToSparse()}, // sparse rhs fallback
		{a.ToSparse(), Rand(20, 7, 1, -1, 1, 4)},   // sparse lhs fallback
		{a, Rand(20, 1, 1, -1, 1, 5)},              // col-vector broadcast
		{a, Rand(1, 7, 1, -1, 1, 6)},               // row-vector broadcast
		{a, NewScalar(1.5)},                        // scalar rhs
		{NewScalar(-0.5), a},                       // scalar lhs
	}
	for _, op := range ops {
		for i, p := range pairs {
			want := Binary(op, p.a, p.b)
			rows, cols := want.Rows, want.Cols
			dst := NewDense(rows, cols)
			BinaryInto(dst, op, p.a, p.b)
			if !dst.EqualsApprox(want, 1e-12) {
				t.Fatalf("BinaryInto op=%v pair=%d differs", op, i)
			}
		}
	}
}

func TestUnaryIntoMatchesUnary(t *testing.T) {
	for _, rep := range []*Matrix{Rand(15, 6, 1, -2, 2, 8), Rand(15, 6, 0.3, -2, 2, 9).ToSparse()} {
		for _, op := range []UnOp{UnAbs, UnExp, UnSign} {
			want := Unary(op, rep)
			dst := NewDense(15, 6)
			UnaryInto(dst, op, rep)
			if !dst.EqualsApprox(want, 1e-12) {
				t.Fatalf("UnaryInto op=%v sparse=%v differs", op, rep.IsSparse())
			}
		}
	}
}

func TestMatMultIntoMatchesMatMult(t *testing.T) {
	dense := func(r, c int, seed int64) *Matrix { return Rand(r, c, 1, -1, 1, seed) }
	sparse := func(r, c int, seed int64) *Matrix { return Rand(r, c, 0.15, -1, 1, seed).ToSparse() }
	cases := []struct{ a, b *Matrix }{
		{dense(12, 8, 1), dense(8, 5, 2)},
		{sparse(12, 8, 3), dense(8, 5, 4)},
		{dense(12, 8, 5), sparse(8, 5, 6)},
		{sparse(12, 8, 7), sparse(8, 5, 8)},
		{dense(9, 4, 9), dense(4, 1, 10)}, // matrix-vector
	}
	for i, cse := range cases {
		want := MatMult(cse.a, cse.b)
		dst := NewDense(cse.a.Rows, cse.b.Cols)
		MatMultInto(dst, cse.a, cse.b)
		if !dst.EqualsApprox(want, 1e-9) {
			t.Fatalf("MatMultInto case %d differs", i)
		}
	}
}

func TestMatMultIntoWritesRowViewOfPooledOutput(t *testing.T) {
	a := Rand(30, 10, 1, -1, 1, 11)
	b := Rand(10, 6, 1, -1, 1, 12)
	want := MatMult(a, b)
	out := NewDense(30, 6)
	for _, span := range [][2]int{{0, 13}, {13, 30}} {
		MatMultInto(out.RowView(span[0], span[1]), a.RowView(span[0], span[1]), b)
	}
	if !out.EqualsApprox(want, 1e-9) {
		t.Fatal("panel-wise MatMultInto through row views differs from MatMult")
	}
}

func TestAggIntoMatchesAgg(t *testing.T) {
	for _, rep := range []*Matrix{Rand(25, 7, 1, -1, 3, 13), Rand(25, 7, 0.2, -1, 3, 14).ToSparse()} {
		for _, op := range []AggOp{AggSum, AggSumSq, AggMin, AggMax} {
			for _, dir := range []AggDir{DirAll, DirRow, DirCol} {
				want := Agg(op, dir, rep)
				dst := NewDense(want.Rows, want.Cols)
				AggInto(dst, op, dir, rep)
				if !dst.EqualsApprox(want, 1e-12) {
					t.Fatalf("AggInto op=%v dir=%v sparse=%v differs", op, dir, rep.IsSparse())
				}
			}
		}
	}
}

func TestCopyIntoZeroesStaleCells(t *testing.T) {
	dst := NewDense(3, 3)
	for i := range dst.Dense() {
		dst.Dense()[i] = math.Pi // dirty destination
	}
	src := NewDense(3, 3)
	src.Set(1, 1, 5)
	CopyInto(dst, src.ToSparse())
	for i, v := range dst.Dense() {
		want := 0.0
		if i == 4 {
			want = 5
		}
		if v != want {
			t.Fatalf("cell %d = %v, want %v", i, v, want)
		}
	}
}
