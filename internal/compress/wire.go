package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"sysml/internal/matrix"
)

// Wire format for compressed matrices: the dist backend ships column
// groups, not dense blocks, so broadcast and shuffle traffic scales with
// the compressed size. Counts, zero tuples, and other derivable state are
// recomputed on decode rather than shipped.
//
//	"CLA1" | rows i32 | cols i32 | ngroups i32
//	per group: kind u8 | ncols i32 | cols []i32 | payload
//	  DDC: ndist i32 | dict []f64 | codes []u16
//	  RLE: ndist i32 | dict []f64 | per tuple: nruns i32, runs []i32
//	  OLE: ndist i32 | dict []f64 | per tuple: noff i32, offsets []i32
//	  UC:  data []f64 (column-major)
const wireMagic = "CLA1"

const (
	wireKindDDC = byte(iota)
	wireKindRLE
	wireKindOLE
	wireKindUC
)

// Encode serializes a compressed matrix into its wire form.
func Encode(cm *CMatrix) []byte {
	buf := make([]byte, 0, WireSizeBytes(cm))
	buf = append(buf, wireMagic...)
	buf = putI32(buf, int32(cm.Rows))
	buf = putI32(buf, int32(cm.Cols))
	buf = putI32(buf, int32(len(cm.Groups)))
	for _, g := range cm.Groups {
		switch g := g.(type) {
		case *DDCGroup:
			buf = append(buf, wireKindDDC)
			buf = putCols(buf, g.cols)
			buf = putDict(buf, g.dict)
			for _, c := range g.codes {
				buf = binary.LittleEndian.AppendUint16(buf, c)
			}
		case *RLEGroup:
			buf = append(buf, wireKindRLE)
			buf = putCols(buf, g.cols)
			buf = putDict(buf, g.dict)
			for _, runs := range g.runs {
				buf = putI32(buf, int32(len(runs)/2))
				for _, v := range runs {
					buf = putI32(buf, v)
				}
			}
		case *OLEGroup:
			buf = append(buf, wireKindOLE)
			buf = putCols(buf, g.cols)
			buf = putDict(buf, g.dict)
			for _, offs := range g.offsets {
				buf = putI32(buf, int32(len(offs)))
				for _, v := range offs {
					buf = putI32(buf, v)
				}
			}
		case *UCGroup:
			buf = append(buf, wireKindUC)
			buf = putCols(buf, g.cols)
			for _, v := range g.data {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		default:
			panic("compress: unknown column group type")
		}
	}
	return buf
}

// WireSizeBytes returns the exact byte length Encode produces for cm —
// what the dist backend charges for compressed transfers.
func WireSizeBytes(cm *CMatrix) int64 {
	s := int64(4 + 3*4)
	for _, g := range cm.Groups {
		s += 1 + 4 + int64(len(g.Cols()))*4
		switch g := g.(type) {
		case *DDCGroup:
			s += 4 + int64(len(g.dict)*len(g.cols))*8 + int64(len(g.codes))*2
		case *RLEGroup:
			s += 4 + int64(len(g.dict)*len(g.cols))*8
			for _, runs := range g.runs {
				s += 4 + int64(len(runs))*4
			}
		case *OLEGroup:
			s += 4 + int64(len(g.dict)*len(g.cols))*8
			for _, offs := range g.offsets {
				s += 4 + int64(len(offs))*4
			}
		case *UCGroup:
			s += int64(len(g.data)) * 8
		}
	}
	return s
}

// Decode reconstructs a compressed matrix from its wire form.
func Decode(b []byte) (*CMatrix, error) {
	r := &wireReader{b: b}
	if string(r.bytes(4)) != wireMagic {
		return nil, fmt.Errorf("compress: bad wire magic")
	}
	cm := &CMatrix{Rows: int(r.i32()), Cols: int(r.i32())}
	ng := int(r.i32())
	for i := 0; i < ng && r.err == nil; i++ {
		kind := r.u8()
		cols := r.cols()
		switch kind {
		case wireKindDDC:
			dict := r.dict(len(cols))
			codes := make([]uint16, cm.Rows)
			for j := range codes {
				codes[j] = r.u16()
			}
			counts := make([]int, len(dict))
			for _, c := range codes {
				if int(c) < len(counts) {
					counts[c]++
				}
			}
			cm.Groups = append(cm.Groups, &DDCGroup{cols: cols, dict: dict, codes: codes, counts: counts})
		case wireKindRLE:
			dict := r.dict(len(cols))
			runs := make([][]int32, len(dict))
			counts := make([]int, len(dict))
			for t := range runs {
				nr := int(r.i32())
				runs[t] = make([]int32, 2*nr)
				for k := range runs[t] {
					runs[t][k] = r.i32()
				}
				for k := 1; k < len(runs[t]); k += 2 {
					counts[t] += int(runs[t][k])
				}
			}
			cm.Groups = append(cm.Groups, &RLEGroup{cols: cols, dict: dict, runs: runs, counts: counts, rows: cm.Rows})
		case wireKindOLE:
			dict := r.dict(len(cols))
			offsets := make([][]int32, len(dict))
			counts := make([]int, len(dict))
			nonZero := 0
			for t := range offsets {
				no := int(r.i32())
				offsets[t] = make([]int32, no)
				for k := range offsets[t] {
					offsets[t][k] = r.i32()
				}
				counts[t] = no
				nonZero += no
			}
			cm.Groups = append(cm.Groups, &OLEGroup{
				cols: cols, dict: dict, offsets: offsets, counts: counts,
				rows: cm.Rows, zeroCount: cm.Rows - nonZero,
				zeroTuple: make([]float64, len(cols)),
			})
		case wireKindUC:
			data := make([]float64, len(cols)*cm.Rows)
			for j := range data {
				data[j] = r.f64()
			}
			cm.Groups = append(cm.Groups, &UCGroup{cols: cols, data: data, rows: cm.Rows})
		default:
			return nil, fmt.Errorf("compress: unknown wire group kind %d", kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return cm, nil
}

type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) bytes(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = fmt.Errorf("compress: truncated wire payload")
		return make([]byte, n)
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *wireReader) u8() byte    { return r.bytes(1)[0] }
func (r *wireReader) u16() uint16 { return binary.LittleEndian.Uint16(r.bytes(2)) }
func (r *wireReader) i32() int32  { return int32(binary.LittleEndian.Uint32(r.bytes(4))) }
func (r *wireReader) f64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.bytes(8)))
}

func (r *wireReader) cols() []int {
	n := int(r.i32())
	if r.err != nil || n < 0 || n > 1<<20 {
		r.err = fmt.Errorf("compress: implausible column count in wire payload")
		return nil
	}
	cols := make([]int, n)
	for i := range cols {
		cols[i] = int(r.i32())
	}
	return cols
}

func (r *wireReader) dict(ncols int) [][]float64 {
	n := int(r.i32())
	if r.err != nil || n < 0 || n > 1<<16 {
		r.err = fmt.Errorf("compress: implausible dictionary size in wire payload")
		return nil
	}
	dict := make([][]float64, n)
	for i := range dict {
		dict[i] = make([]float64, ncols)
		for j := range dict[i] {
			dict[i][j] = r.f64()
		}
	}
	return dict
}

func putI32(b []byte, v int32) []byte { return binary.LittleEndian.AppendUint32(b, uint32(v)) }

func putCols(b []byte, cols []int) []byte {
	b = putI32(b, int32(len(cols)))
	for _, c := range cols {
		b = putI32(b, int32(c))
	}
	return b
}

func putDict(b []byte, dict [][]float64) []byte {
	b = putI32(b, int32(len(dict)))
	for _, tuple := range dict {
		for _, v := range tuple {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	return b
}

// denseWireScanCap bounds the dense sizes DenseWireBytes is willing to
// scan: shuffle partials are small (per-executor aggregates), and scanning
// multi-hundred-MB blocks per transfer would cost more than it saves.
const denseWireScanCap = 8 << 20

// DenseWireBytes estimates the dictionary-coded wire size of a small dense
// matrix with no attached compressed form — the shuffle-partial codec. It
// returns ok=false when the matrix is sparse, too large to scan, or the
// dictionary does not pay for itself.
func DenseWireBytes(m *matrix.Matrix) (int64, bool) {
	raw := m.SizeBytes()
	if m.IsSparse() || raw > denseWireScanCap || m.Rows*m.Cols == 0 {
		return 0, false
	}
	d := m.Dense()
	seen := make(map[float64]struct{}, 64)
	for _, v := range d {
		seen[v] = struct{}{}
		if len(seen) > 1<<16 {
			return 0, false
		}
	}
	bytes := int64(16) + int64(len(seen))*8 + int64(len(d))*2
	if bytes >= raw {
		return 0, false
	}
	return bytes, true
}
