// KMeans: a clustering pipeline — feature standardization followed by
// Lloyd iterations — showing hybrid plans: cell-template fusion for the
// standardization block and row/cell fusion inside the distance
// computation, with optional simulated-distributed execution.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sysml"
)

const script = `
	# standardize features: one fused cell pass over X per statement block
	mu = colMeans(X)
	sd = sqrt(colMeans(X ^ 2) - mu ^ 2) + 1e-12
	Z = (X - mu) / sd

	C = Z[1:k, ]                       # first-k initialization
	rs2 = rowSums(Z ^ 2)
	for (iter in 1:maxiter) {
		D = t(rowSums(C ^ 2)) - 2 * (Z %*% t(C))
		mind = rowMins(D)
		P = (D <= mind)
		P = P / rowSums(P)
		C = (t(P) %*% Z) / max(t(colSums(P)), 1)
		wcss = sum(mind + rs2)
		print("iter " + iter + ": wcss = " + wcss)
	}
`

func main() {
	distributed := flag.Bool("dist", false, "run on the simulated cluster")
	flag.Parse()

	s := sysml.NewSession()
	x := sysml.RandMatrix(100000, 20, 1, 0, 10, 3)
	if *distributed {
		cfg := sysml.DefaultConfig()
		cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2 // force ExecDist
		cl := sysml.NewCluster()
		s = sysml.NewSession(sysml.WithConfig(cfg), sysml.WithCluster(cl))
		defer func() {
			fmt.Printf("simulated cluster: %.1f MB broadcast, %.1f MB shuffled, net time %v\n",
				float64(cl.BytesBroadcast())/1e6, float64(cl.BytesShuffled())/1e6, cl.NetTime())
		}()
	}
	s.Bind("X", x)
	s.BindScalar("k", 5)
	s.BindScalar("maxiter", 10)

	start := time.Now()
	if err := s.Run(script); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %dx%d in %v (%d fused operators, %d plan-cache hits)\n",
		x.Rows, x.Cols, time.Since(start), s.Stats.OperatorsCompiled, s.Stats.CacheHits)
	c, _ := s.Get("C")
	fmt.Printf("centroids: %d x %d\n", c.Rows, c.Cols)
}
