package runtime

import (
	"sysml/internal/cplan"
	"sysml/internal/matrix"
	"sysml/internal/vector"
)

// The Horizontal skeleton executes a multi-output fused operator: sibling
// cell-bound plans over one shared main input, evaluated in a single pass
// that writes several destinations (a NoAgg map, row/col sums, full
// aggregates — one per root, see Plan.HKinds). Each root dispatches
// independently to the tightest available body — specialized AOT chunk
// program, vectorized chunk program, or per-cell genexec closure — and a
// sparse-safe sparse main keeps non-zero iteration with same-pattern CSR
// outputs for NoAgg roots.

// ExecHorizontal runs a compiled Horizontal-template operator, returning
// one output matrix per plan root (in root order).
func ExecHorizontal(op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix) []*matrix.Matrix {
	return execHorizontal(matrix.Ctx{}, op, main, sides, nil)
}

// Per-root dispatch modes of the dense path.
const (
	hModeCell  = iota // per-cell genexec closure
	hModeVec          // vectorized chunk program
	hModeChunk        // specialized AOT chunk program
)

// chunkUsable reports whether a specialized chunk program can be
// dispatched for the bound inputs: per the contract in cplan/chunks.go it
// needs a dense main and each referenced side dense and exactly
// main-shaped (same condition as CellVecProgram.ChunkCompatible).
func chunkUsable(c *cplan.ChunkProgram, main *matrix.Matrix, sides []*matrix.Matrix) bool {
	if c == nil || main.IsSparse() {
		return false
	}
	for _, si := range c.Sides {
		s := sides[si]
		if s.IsSparse() || s.Rows != main.Rows || s.Cols != main.Cols {
			return false
		}
	}
	return true
}

// horizontalSparseIter mirrors the Cell skeleton's sparse decision per
// root: non-zero iteration needs every root sparse-safe and every
// aggregating root sum-style (min/max must see implicit zeros).
func horizontalSparseIter(p *cplan.Plan, main *matrix.Matrix) bool {
	if !p.SparseSafe || !main.IsSparse() {
		return false
	}
	for q := range p.Roots {
		if p.HKinds[q] != cplan.CellNoAgg && !aggIsSum(p.AggOps[q]) {
			return false
		}
	}
	return true
}

// horizontalVecOK reports whether root q can run its vectorized chunk
// program inside the horizontal pass (dense-compatible accesses and a
// sum-style aggregation the skeleton can combine).
func horizontalVecOK(p *cplan.Plan, op *cplan.Operator, q int, main *matrix.Matrix, sides []*matrix.Matrix) bool {
	if !op.MAggVecs[q].ChunkCompatible(main, sides) {
		return false
	}
	if p.HKinds[q] == cplan.CellNoAgg {
		return true
	}
	return p.AggOps[q] == matrix.AggSum || p.AggOps[q] == matrix.AggSumSq
}

// hstate is one worker's per-root accumulation state.
type hstate struct {
	ctx  *cplan.Ctx
	bufs []*cplan.CellVecBuf
	col  [][]float64 // ColAgg roots: per-column partials
	full []float64   // FullAgg roots: scalar partials
}

func execHorizontal(ec matrix.Ctx, op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix, stop StopFn) []*matrix.Matrix {
	p := op.Plan
	k := len(p.Roots)
	rows, cols := main.Rows, main.Cols
	proto := cplan.NewCtx(sides)
	if horizontalSparseIter(p, main) {
		return execHorizontalSparse(ec, op, main, proto, stop)
	}
	if hf := op.HFused; hf != nil && !main.IsSparse() {
		return execHorizontalFused(ec, hf, main, stop)
	}

	modes := make([]int, k)
	for q := 0; q < k; q++ {
		switch {
		case chunkUsable(op.MAggChunks[q], main, sides):
			modes[q] = hModeChunk
		case horizontalVecOK(p, op, q, main, sides):
			modes[q] = hModeVec
		default:
			modes[q] = hModeCell
		}
	}

	outs := make([]*matrix.Matrix, k)
	dsts := make([][]float64, k)
	for q := 0; q < k; q++ {
		switch p.HKinds[q] {
		case cplan.CellNoAgg:
			// Every cell is written below; eliding the pool's zeroing pass
			// saves a full write over the (large) map output.
			outs[q] = ec.NewDenseUninit(rows, cols)
		case cplan.CellRowAgg:
			outs[q] = ec.NewDense(rows, 1) // hRowVec accumulates (+=): keep zeroed
		case cplan.CellColAgg:
			outs[q] = ec.NewDense(1, cols)
		}
		if outs[q] != nil {
			dsts[q] = outs[q].Dense()
		}
	}

	var md []float64
	if !main.IsSparse() {
		md = main.Dense()
	}
	// Tile the row loop so each root's dispatch runs once per tile, not once
	// per row: chunk-mode NoAgg/FullAgg roots take one flat-span call over
	// the whole tile, and the tile size keeps the shared main slice
	// cache-resident across the sibling roots.
	tile := hTileCells / cols
	if tile < 1 {
		tile = 1
	}
	nw, _ := ec.Par.Chunks(rows, 64)
	states := make([]*hstate, nw)
	ec.Par.ForIndexed(rows, 64, func(w, lo, hi int) {
		st := states[w]
		if st == nil {
			st = &hstate{ctx: proto.Clone(), bufs: make([]*cplan.CellVecBuf, k),
				col: make([][]float64, k), full: make([]float64, k)}
			for q := 0; q < k; q++ {
				if modes[q] == hModeVec {
					st.bufs[q] = op.MAggVecs[q].GetBuf()
				}
				switch p.HKinds[q] {
				case cplan.CellColAgg:
					st.col[q] = make([]float64, cols)
					for j := range st.col[q] {
						st.col[q][j] = aggInit(p.AggOps[q])
					}
				case cplan.CellFullAgg:
					st.full[q] = aggInit(p.AggOps[q])
				}
			}
			states[w] = st
		}
		scratch := newRowScratch(ec, main)
		defer releaseRowScratch(ec, scratch)
		for i0 := lo; i0 < hi; i0 += tile {
			if pollStop(stop, i0-lo) {
				break
			}
			i1 := i0 + tile
			if i1 > hi {
				i1 = hi
			}
			for q := 0; q < k; q++ {
				switch modes[q] {
				case hModeChunk:
					hTileChunk(op.MAggChunks[q], p, st, md, dsts[q], i0, i1, cols, q)
				case hModeVec:
					for i := i0; i < i1; i++ {
						hRowVec(op.MAggVecs[q], p, st, md, dsts[q], i, cols, q)
					}
				default:
					for i := i0; i < i1; i++ {
						row, off := denseRowView(main, i, scratch)
						hRowCell(op.MAggFns[q], p, st, row, dsts[q], off, i, cols, q)
					}
				}
			}
		}
	})

	// Reduce worker partials into the aggregate outputs.
	for q := 0; q < k; q++ {
		switch p.HKinds[q] {
		case cplan.CellColAgg:
			od := dsts[q]
			for j := 0; j < cols; j++ {
				od[j] = aggInit(p.AggOps[q])
			}
			for _, st := range states {
				if st == nil {
					continue
				}
				for j := 0; j < cols; j++ {
					od[j] = aggMerge(p.AggOps[q], od[j], st.col[q][j])
				}
			}
		case cplan.CellFullAgg:
			acc := aggInit(p.AggOps[q])
			for _, st := range states {
				if st != nil {
					acc = aggMerge(p.AggOps[q], acc, st.full[q])
				}
			}
			outs[q] = matrix.NewScalar(acc)
		}
	}
	for _, st := range states {
		if st == nil {
			continue
		}
		for q := 0; q < k; q++ {
			if st.bufs[q] != nil {
				op.MAggVecs[q].PutBuf(st.bufs[q])
			}
		}
	}
	return outs
}

// hTileCells sizes the horizontal pass's row tiles (in cells): big enough
// to amortize per-root dispatch and keep the vector kernels in long runs,
// small enough that the tile stays cache-resident while every sibling root
// consumes it.
const hTileCells = 8 * 1024

// hTileChunk applies root q's specialized chunk program to main rows
// [i0,i1): NoAgg and FullAgg bodies are position-independent flat spans, so
// the whole tile goes through one call; RowAgg and ColAgg keep per-row
// calls for their row-aligned destinations.
func hTileChunk(c *cplan.ChunkProgram, p *cplan.Plan, st *hstate, md, dst []float64, i0, i1, cols, q int) {
	base := i0 * cols
	switch p.HKinds[q] {
	case cplan.CellNoAgg:
		c.Map(st.ctx, md, dst, base, base, (i1-i0)*cols)
	case cplan.CellRowAgg:
		for i := i0; i < i1; i++ {
			dst[i] = c.Agg(st.ctx, md, i*cols, cols)
		}
	case cplan.CellColAgg:
		for i := i0; i < i1; i++ {
			c.Col(st.ctx, md, i*cols, st.col[q], cols)
		}
	default: // CellFullAgg
		st.full[q] += c.Agg(st.ctx, md, base, (i1-i0)*cols)
	}
}

// execHorizontalFused runs the whole-group fused body of a Horizontal
// operator: one specialized loop per row computes the shared power sums
// S1/S2, the column partials, and the map outputs in a single read of the
// main input; every aggregate root is then a closed form A·S1+B·S2+C·n
// (see cplan/hfused.go). This is the Fig. 10 "ideal generated code" analog:
// per-root dispatch re-reads the main once per root, which on compute-bound
// scalar loops costs a full pass per sibling.
func execHorizontalFused(ec matrix.Ctx, hf *cplan.HFusedProgram, main *matrix.Matrix, stop StopFn) []*matrix.Matrix {
	k := len(hf.Cols) + len(hf.Aggs) + len(hf.Maps)
	rows, cols := main.Rows, main.Cols
	md := main.Dense()
	outs := make([]*matrix.Matrix, k)

	// Map destinations, in hfMap slot order (full-write: uninit pool alloc).
	mapDsts := make([][]float64, len(hf.Maps))
	for mi, m := range hf.Maps {
		outs[m.Root] = ec.NewDenseUninit(rows, cols)
		mapDsts[mi] = outs[m.Root].Dense()
	}
	// Row-aggregate destinations with precomputed closed-form coefficients
	// (C folds in the per-row cell count).
	var rowDst [][]float64
	var rowA, rowB, rowC []float64
	for _, a := range hf.Aggs {
		if !a.Row {
			continue
		}
		outs[a.Root] = ec.NewDenseUninit(rows, 1)
		rowDst = append(rowDst, outs[a.Root].Dense())
		rowA, rowB, rowC = append(rowA, a.A), append(rowB, a.B), append(rowC, a.C*float64(cols))
	}

	hasCol := len(hf.Cols) == 1
	nw, _ := ec.Par.Chunks(rows, 64)
	colP := make([][]float64, nw)
	s1P := make([]float64, nw)
	s2P := make([]float64, nw)
	row := hf.Row
	ec.Par.ForIndexed(rows, 64, func(w, lo, hi int) {
		var cp []float64
		if hasCol {
			cp = colP[w]
			if cp == nil {
				cp = make([]float64, cols)
				colP[w] = cp
			}
		}
		ws1, ws2 := 0.0, 0.0
		for i := lo; i < hi; i++ {
			if pollStop(stop, i-lo) {
				break
			}
			rs1, rs2 := row(md, i*cols, cols, cp, mapDsts)
			ws1 += rs1
			ws2 += rs2
			for t := range rowDst {
				rowDst[t][i] = rowA[t]*rs1 + rowB[t]*rs2 + rowC[t]
			}
		}
		s1P[w] += ws1
		s2P[w] += ws2
	})

	// Reduce worker partials: grand power sums for the full aggregates,
	// column partial sums for the column root.
	s1, s2 := 0.0, 0.0
	for w := 0; w < nw; w++ {
		s1 += s1P[w]
		s2 += s2P[w]
	}
	n := float64(rows) * float64(cols)
	for _, a := range hf.Aggs {
		if !a.Row {
			outs[a.Root] = matrix.NewScalar(a.A*s1 + a.B*s2 + a.C*n)
		}
	}
	if hasCol {
		out := ec.NewDense(1, cols)
		od := out.Dense()
		for _, cp := range colP {
			if cp != nil {
				vector.Add(cp, od, 0, 0, cols)
			}
		}
		outs[hf.Cols[0].Root] = out
	}
	return outs
}

// hRowVec runs root q's vectorized chunk program over main row i in
// ChunkLen slices, steering each result chunk to the root's destination.
// Aggregating roots are sum-style by horizontalVecOK, so plain additive
// accumulation into the (zero-initialized) destinations is exact.
func hRowVec(prog *cplan.CellVecProgram, p *cplan.Plan, st *hstate, md, dst []float64, i, cols, q int) {
	base := i * cols
	kind := p.HKinds[q]
	sumsq := kind != cplan.CellNoAgg && p.AggOps[q] == matrix.AggSumSq
	for o := 0; o < cols; o += cplan.ChunkLen {
		n := cplan.ChunkLen
		if o+n > cols {
			n = cols - o
		}
		res, ro := prog.Exec(st.ctx, st.bufs[q], md, base+o, n)
		switch kind {
		case cplan.CellNoAgg:
			copy(dst[base+o:base+o+n], res[ro:ro+n])
		case cplan.CellRowAgg:
			if sumsq {
				for t := 0; t < n; t++ {
					dst[i] += res[ro+t] * res[ro+t]
				}
			} else {
				dst[i] += cplan.SumChunk(res, ro, n)
			}
		case cplan.CellColAgg:
			col := st.col[q]
			if sumsq {
				for t := 0; t < n; t++ {
					col[o+t] += res[ro+t] * res[ro+t]
				}
			} else {
				vector.Add(res, col, ro, o, n)
			}
		default: // CellFullAgg
			if sumsq {
				for t := 0; t < n; t++ {
					st.full[q] += res[ro+t] * res[ro+t]
				}
			} else {
				st.full[q] += cplan.SumChunk(res, ro, n)
			}
		}
	}
}

// hRowCell evaluates root q per cell over main row i (the genexec
// fallback for access patterns the chunk forms cannot express).
func hRowCell(fn cplan.CellFunc, p *cplan.Plan, st *hstate, row, dst []float64, off, i, cols, q int) {
	switch p.HKinds[q] {
	case cplan.CellNoAgg:
		base := i * cols
		for j := 0; j < cols; j++ {
			dst[base+j] = fn(st.ctx, row[off+j], i, j)
		}
	case cplan.CellRowAgg:
		acc := aggInit(p.AggOps[q])
		for j := 0; j < cols; j++ {
			acc = aggStep(p.AggOps[q], acc, fn(st.ctx, row[off+j], i, j))
		}
		dst[i] = acc
	case cplan.CellColAgg:
		col := st.col[q]
		for j := 0; j < cols; j++ {
			col[j] = aggStep(p.AggOps[q], col[j], fn(st.ctx, row[off+j], i, j))
		}
	default: // CellFullAgg
		acc := st.full[q]
		for j := 0; j < cols; j++ {
			acc = aggStep(p.AggOps[q], acc, fn(st.ctx, row[off+j], i, j))
		}
		st.full[q] = acc
	}
}

// execHorizontalSparse is the sparse-safe non-zero iteration path: NoAgg
// outputs clone the main input's CSR pattern, aggregating roots are
// sum-style (checked by horizontalSparseIter) so implicit zeros
// contribute nothing.
func execHorizontalSparse(ec matrix.Ctx, op *cplan.Operator, main *matrix.Matrix, proto *cplan.Ctx, stop StopFn) []*matrix.Matrix {
	p := op.Plan
	k := len(p.Roots)
	rows, cols := main.Rows, main.Cols
	ms := main.Sparse()
	outs := make([]*matrix.Matrix, k)
	csrs := make([]*matrix.CSR, k)
	dsts := make([][]float64, k)
	for q := 0; q < k; q++ {
		switch p.HKinds[q] {
		case cplan.CellNoAgg:
			csrs[q] = &matrix.CSR{
				RowPtr: append([]int(nil), ms.RowPtr...),
				ColIdx: append([]int(nil), ms.ColIdx...),
				Values: make([]float64, len(ms.Values)),
			}
		case cplan.CellRowAgg:
			outs[q] = ec.NewDense(rows, 1)
			dsts[q] = outs[q].Dense()
		}
	}
	nw, _ := ec.Par.Chunks(rows, 64)
	states := make([]*hstate, nw)
	ec.Par.ForIndexed(rows, 64, func(w, lo, hi int) {
		st := states[w]
		if st == nil {
			st = &hstate{ctx: proto.Clone(), col: make([][]float64, k), full: make([]float64, k)}
			for q := 0; q < k; q++ {
				if p.HKinds[q] == cplan.CellColAgg {
					st.col[q] = make([]float64, cols)
				}
			}
			states[w] = st
		}
		for i := lo; i < hi; i++ {
			if pollStop(stop, i-lo) {
				break
			}
			vals, cix := ms.Row(i)
			base := ms.RowPtr[i]
			for q := 0; q < k; q++ {
				fn := op.MAggFns[q]
				switch p.HKinds[q] {
				case cplan.CellNoAgg:
					ov := csrs[q].Values
					for t := range cix {
						ov[base+t] = fn(st.ctx, vals[t], i, cix[t])
					}
				case cplan.CellRowAgg:
					acc := 0.0
					for t := range cix {
						acc = aggStep(p.AggOps[q], acc, fn(st.ctx, vals[t], i, cix[t]))
					}
					dsts[q][i] = acc
				case cplan.CellColAgg:
					col := st.col[q]
					for t := range cix {
						j := cix[t]
						col[j] = aggStep(p.AggOps[q], col[j], fn(st.ctx, vals[t], i, j))
					}
				default: // CellFullAgg
					acc := st.full[q]
					for t := range cix {
						acc = aggStep(p.AggOps[q], acc, fn(st.ctx, vals[t], i, cix[t]))
					}
					st.full[q] = acc
				}
			}
		}
	})
	for q := 0; q < k; q++ {
		switch p.HKinds[q] {
		case cplan.CellNoAgg:
			outs[q] = matrix.NewSparseCSR(rows, cols, csrs[q])
		case cplan.CellColAgg:
			out := ec.NewDense(1, cols)
			od := out.Dense()
			for _, st := range states {
				if st == nil {
					continue
				}
				for j := 0; j < cols; j++ {
					od[j] += st.col[q][j]
				}
			}
			outs[q] = out
		case cplan.CellFullAgg:
			acc := 0.0
			for _, st := range states {
				if st != nil {
					acc += st.full[q]
				}
			}
			outs[q] = matrix.NewScalar(acc)
		}
	}
	return outs
}

// workHorizontal measures the data-touch work of one Horizontal
// invocation: cells the single shared pass visits times the covered
// operations across all root expressions. Feeds the cost-audit ledger.
func workHorizontal(op *cplan.Operator, main *matrix.Matrix) float64 {
	p := op.Plan
	visited := float64(main.Rows) * float64(main.Cols)
	if horizontalSparseIter(p, main) {
		visited = storedCells(main)
	}
	return visited * float64(p.NumNodes())
}
