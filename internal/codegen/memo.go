package codegen

import (
	"fmt"
	"sort"
	"strings"

	"sysml/internal/cplan"
	"sysml/internal/hop"
)

// Entry is a memo table entry: one partial fusion plan
// (type, {i1,...,ik}, closed) per §3.1. Inputs aligns with the HOP's input
// positions; each element is either the referenced group ID (fusion) or -1
// (materialized intermediate).
type Entry struct {
	Type   cplan.TemplateType
	Inputs []int64
	Closed CloseStatus
}

// HasRef reports whether the entry references any input group.
func (e Entry) HasRef() bool {
	for _, in := range e.Inputs {
		if in >= 0 {
			return true
		}
	}
	return false
}

// RefCount returns the number of referenced input groups.
func (e Entry) RefCount() int {
	n := 0
	for _, in := range e.Inputs {
		if in >= 0 {
			n++
		}
	}
	return n
}

// Refs returns the entry's referenced group IDs.
func (e Entry) Refs() []int64 {
	var out []int64
	for _, in := range e.Inputs {
		if in >= 0 {
			out = append(out, in)
		}
	}
	return out
}

func (e Entry) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", e.Type)
	for _, in := range e.Inputs {
		fmt.Fprintf(&b, "%d,", in)
	}
	return b.String()
}

// String renders the entry in the paper's notation, e.g. "R(10,9)".
func (e Entry) String() string {
	letter := map[cplan.TemplateType]string{
		cplan.TemplateCell: "C", cplan.TemplateRow: "R",
		cplan.TemplateMAgg: "M", cplan.TemplateOuter: "O",
	}[e.Type]
	parts := make([]string, len(e.Inputs))
	for i, in := range e.Inputs {
		parts[i] = fmt.Sprintf("%d", in)
	}
	s := letter + "(" + strings.Join(parts, ",") + ")"
	if e.Closed == StatusClosedValid {
		s += "*"
	}
	return s
}

// Group holds all partial fusion plans for one operator's output (§3.1).
type Group struct {
	Hop     *hop.Hop
	Entries []Entry
}

// HasType reports whether the group contains an entry of template type t.
func (g *Group) HasType(t cplan.TemplateType) bool {
	for _, e := range g.Entries {
		if e.Type == t {
			return true
		}
	}
	return false
}

// HasOpenType reports whether the group contains an open (not closed)
// entry of type t, i.e. a plan that can still be extended by consumers.
func (g *Group) HasOpenType(t cplan.TemplateType) bool {
	for _, e := range g.Entries {
		if e.Type == t && e.Closed == StatusOpen {
			return true
		}
	}
	return false
}

// Types returns the distinct template types present in the group.
func (g *Group) Types() []cplan.TemplateType {
	seen := map[cplan.TemplateType]bool{}
	var out []cplan.TemplateType
	for _, e := range g.Entries {
		if !seen[e.Type] {
			seen[e.Type] = true
			out = append(out, e.Type)
		}
	}
	return out
}

// Memo is the memoization table of partial fusion plans, organized by
// operator (group) ID.
type Memo struct {
	Groups  map[int64]*Group
	visited map[int64]bool
	hops    map[int64]*hop.Hop
}

// NewMemo returns an empty memo table.
func NewMemo() *Memo {
	return &Memo{
		Groups:  map[int64]*Group{},
		visited: map[int64]bool{},
		hops:    map[int64]*hop.Hop{},
	}
}

// Contains reports whether the operator has a group with at least one plan.
func (m *Memo) Contains(id int64) bool {
	g, ok := m.Groups[id]
	return ok && len(g.Entries) > 0
}

// Get returns the group for an operator ID, or nil.
func (m *Memo) Get(id int64) *Group {
	return m.Groups[id]
}

// Hop resolves an operator ID to its HOP.
func (m *Memo) Hop(id int64) *hop.Hop { return m.hops[id] }

// add inserts entries into h's group, deduplicating by structural key.
func (m *Memo) add(h *hop.Hop, entries ...Entry) {
	if len(entries) == 0 {
		return
	}
	g, ok := m.Groups[h.ID]
	if !ok {
		g = &Group{Hop: h}
		m.Groups[h.ID] = g
		m.hops[h.ID] = h
	}
	for _, e := range entries {
		dup := false
		for _, old := range g.Entries {
			if old.key() == e.key() {
				dup = true
				break
			}
		}
		if !dup {
			g.Entries = append(g.Entries, e)
		}
	}
}

// remove drops entries matching the predicate from h's group.
func (m *Memo) remove(id int64, drop func(Entry) bool) {
	g := m.Groups[id]
	if g == nil {
		return
	}
	kept := g.Entries[:0]
	for _, e := range g.Entries {
		if !drop(e) {
			kept = append(kept, e)
		}
	}
	g.Entries = kept
	if len(g.Entries) == 0 {
		delete(m.Groups, id)
	}
}

// String renders the memo table in the paper's Fig. 5 style for debugging.
func (m *Memo) String() string {
	ids := make([]int64, 0, len(m.Groups))
	for id := range m.Groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	var b strings.Builder
	for _, id := range ids {
		g := m.Groups[id]
		fmt.Fprintf(&b, "%d %v:", id, g.Hop)
		for _, e := range g.Entries {
			fmt.Fprintf(&b, " %v", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}
