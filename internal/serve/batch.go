package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Micro-batching: scoring traffic is dominated by many small requests
// running the same script over same-shaped inputs — i.e. resolving to the
// same compiled plan. Executing each on its own session slot serializes on
// the tenant quota and re-enters the block compiler per request. Instead,
// the first request for a plan key becomes the batch leader: it holds the
// key open for a short window, absorbs followers that arrive for the same
// key, then executes the whole batch back-to-back on ONE session — one
// quota slot, one warm block-plan cache, one warm operator cache — and
// fans the results back out.

// DefaultBatchWindow is how long a leader holds its batch open. Zero on a
// Server disables batching (every request leads its own batch of one).
const DefaultBatchWindow = 500 * time.Microsecond

// maxBatch caps how many requests one leader may execute back-to-back, so
// an unlucky leader's latency stays bounded under a flood.
const maxBatch = 32

// planKey identifies requests that resolve to the same compiled plan:
// same tenant, same script, same input shapes (shape changes recompile
// under dynamic recompilation, so they must not share a batch).
type planKey struct {
	tenant string
	script uint64
	shapes uint64
}

// String renders the key for flight-recorder records: tenant plus the
// script and shape fingerprints in hex.
func (k planKey) String() string {
	return fmt.Sprintf("%s/%016x/%016x", k.tenant, k.script, k.shapes)
}

// keyFor fingerprints a request. Input names are hashed in sorted order so
// map iteration order cannot split a batch.
func keyFor(tenant, script string, inputs map[string]InputSpec) planKey {
	h := fnv.New64a()
	h.Write([]byte(script))
	k := planKey{tenant: tenant, script: h.Sum64()}
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	h = fnv.New64a()
	for _, name := range names {
		in := inputs[name]
		h.Write([]byte(name))
		for _, v := range []int{in.Rows, in.Cols} {
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	k.shapes = h.Sum64()
	return k
}

// batchJob is one request riding a batch; the leader signals done after
// filling result or err.
type batchJob struct {
	id    string    // request ID (X-Request-ID or generated)
	start time.Time // arrival time, for the per-job latency split
	req   *RunRequest
	resp  *RunResponse
	err   error
	done  chan struct{}
}

type batchGroup struct {
	jobs []*batchJob
}

// batcher coalesces same-plan requests. One per Server.
type batcher struct {
	window time.Duration
	mu     sync.Mutex
	groups map[planKey]*batchGroup
}

func newBatcher(window time.Duration) *batcher {
	return &batcher{window: window, groups: map[planKey]*batchGroup{}}
}

// submit enrolls a job under its plan key. The returned slice is non-nil
// exactly when the caller is the batch leader: after the batch window it
// holds every job (the leader's own first) to execute in order. Followers
// get nil and wait on job.done.
func (b *batcher) submit(key planKey, job *batchJob) []*batchJob {
	if b.window <= 0 {
		return []*batchJob{job}
	}
	b.mu.Lock()
	if g, ok := b.groups[key]; ok && len(g.jobs) < maxBatch {
		g.jobs = append(g.jobs, job)
		b.mu.Unlock()
		return nil
	}
	g := &batchGroup{jobs: []*batchJob{job}}
	b.groups[key] = g
	b.mu.Unlock()

	time.Sleep(b.window)

	b.mu.Lock()
	if b.groups[key] == g {
		delete(b.groups, key)
	}
	jobs := g.jobs
	b.mu.Unlock()
	return jobs
}
