// Package dml implements the scripting frontend: a lexer, parser, and
// interpreter for a subset of SystemML's R-like declarative ML language.
// Scripts are parsed into statement blocks delineated by control flow; each
// block compiles to a HOP DAG that flows through rewrites and the codegen
// optimizer before execution, with dynamic recompilation per iteration and
// operator reuse through the plan cache (paper §2.1).
package dml

import (
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"if": true, "else": true, "while": true, "for": true, "in": true,
	"print": true, "TRUE": true, "FALSE": true,
}

type token struct {
	kind tokKind
	text string
	pos  int
	line int
}

type lexer struct {
	src    string
	pos    int
	line   int
	tokens []token
}

// lex tokenizes a script, reporting the first error with its line.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r' || c == ';':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.emit(tokEOF, "")
	return l.tokens, nil
}

func (l *lexer) emit(kind tokKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: l.pos, line: l.line})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(rune(c)):
		case c == '.' && !seenDot && !seenExp:
			// "1:3" ranges must not swallow "1." of "1.:"; a plain dot
			// followed by a digit or end-of-number is part of the literal.
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.src) &&
			(unicode.IsDigit(rune(l.src[l.pos+1])) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+'):
			seenExp = true
			l.pos++ // consume sign or first digit below
		default:
			l.emit(tokNumber, l.src[start:l.pos])
			return
		}
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' || c == '.' {
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if keywords[text] {
		l.emit(tokKeyword, text)
	} else {
		l.emit(tokIdent, text)
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		if l.src[l.pos] == '\n' {
			return parseErrf(l.line, "unterminated string")
		}
		l.pos++
	}
	if l.pos >= len(l.src) {
		return parseErrf(l.line, "unterminated string")
	}
	l.pos++
	l.emit(tokString, l.src[start+1:l.pos-1])
	return nil
}

var multiOps = []string{"%*%", "<=", ">=", "==", "!=", "&&", "||", "<-"}
var singleOps = "+-*/^()[]{},:<>=!&|"

func (l *lexer) lexOp() error {
	for _, op := range multiOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			l.emit(tokOp, op)
			return nil
		}
	}
	c := l.src[l.pos]
	if strings.IndexByte(singleOps, c) >= 0 {
		l.pos++
		l.emit(tokOp, string(c))
		return nil
	}
	return parseErrf(l.line, "unexpected character %q", c)
}
