// Package cplan implements code generation plans (CPlans): the backend-
// independent representation of fused operators (paper §2.2). A CPlan is a
// DAG of CNodes under a template node; "code generation" compiles the CNode
// DAG into executable Go closures (Cell/MAgg/Outer genexec functions) or a
// register-based vector program (Row template), plus a readable Go source
// artifact mirroring the Java classes SystemML emits.
package cplan

import (
	"fmt"
	"hash/fnv"
	"strings"

	"sysml/internal/matrix"
)

// TemplateType identifies the fused-operator skeleton a CPlan binds to
// (paper Table 1).
type TemplateType int

// The four paper template types, plus the horizontal multi-output variant:
// TemplateHorizontal fuses sibling cell-bound plans over one shared main
// input into a single pass producing several outputs of mixed aggregation
// kinds (per-root HKinds), generalizing MAgg beyond full aggregates.
const (
	TemplateCell TemplateType = iota
	TemplateRow
	TemplateMAgg
	TemplateOuter
	TemplateHorizontal
)

var templateNames = [...]string{"Cell", "Row", "MAgg", "Outer", "Horizontal"}

func (t TemplateType) String() string { return templateNames[t] }

// CellType is the aggregation variant of a Cell template.
type CellType int

// Cell template variants.
const (
	CellNoAgg CellType = iota
	CellRowAgg
	CellColAgg
	CellFullAgg
)

var cellTypeNames = [...]string{"NO_AGG", "ROW_AGG", "COL_AGG", "FULL_AGG"}

func (t CellType) String() string { return cellTypeNames[t] }

// RowType is the aggregation variant of a Row template.
type RowType int

// Row template variants (paper Table 1: no agg, row agg, col agg, full agg,
// col t agg, B1 variants are reflected in the side-input binding).
const (
	RowNoAgg RowType = iota
	RowRowAgg
	RowColAgg
	RowFullAgg
	RowColAggT // t(X) %*% W pattern: accumulate X_i ⊗ W_i
)

var rowTypeNames = [...]string{"NO_AGG", "ROW_AGG", "COL_AGG", "FULL_AGG", "COL_AGG_B1_T"}

func (t RowType) String() string { return rowTypeNames[t] }

// OuterType is the output variant of an Outer template.
type OuterType int

// Outer template variants.
const (
	OuterRightMM OuterType = iota // C = f(X, UV') %*% V
	OuterLeftMM                   // C = t(f(X, UV')) %*% U
	OuterAgg                      // s = sum(f(X, UV'))
	OuterNoAgg                    // C = f(X, UV') with X's sparsity pattern
)

var outerTypeNames = [...]string{"RIGHT_MM", "LEFT_MM", "FULL_AGG", "NO_AGG"}

func (t OuterType) String() string { return outerTypeNames[t] }

// SideAccess describes how a Cell-template side input is addressed.
type SideAccess int

// Side-input access modes: full matrix cell, broadcast column vector,
// broadcast row vector, or a constant scalar read from a 1×1 matrix.
const (
	AccessCell SideAccess = iota
	AccessCol
	AccessRow
	AccessScalar
)

// NodeKind identifies a CNode operation.
type NodeKind int

// CNode kinds. NodeMain is the bound main-input value (cell for Cell/MAgg/
// Outer, row for Row); NodeSide reads a side input; NodeDot is the Outer
// template's precomputed dotProduct(U_i, V_j).
const (
	NodeMain NodeKind = iota
	NodeSide
	NodeLit
	NodeBinary
	NodeUnary
	NodeAgg     // Row: aggregate a vector child to a scalar
	NodeMatMult // Row: vector child × dense side matrix -> vector
	NodeIdx     // Row: column-range subvector of child
	NodeDot     // Outer: U_i · V_j
	NodeCumsum  // Row: running prefix sum along the row
)

// CNode is one basic-operation node in a CPlan DAG.
type CNode struct {
	Kind     NodeKind
	BinOp    matrix.BinOp
	UnOp     matrix.UnOp
	AggOp    matrix.AggOp
	Value    float64 // NodeLit
	Side     int     // NodeSide / NodeMatMult: side-input index
	Access   SideAccess
	CL, CU   int // NodeIdx bounds
	Children []*CNode
	Vector   bool // Row template: node produces a row vector
	Width    int  // Row template: vector width (0 for scalars)
}

// Lit returns a literal CNode.
func Lit(v float64) *CNode { return &CNode{Kind: NodeLit, Value: v} }

// Main returns the main-input CNode; width is the row width for Row
// templates (0 for cell binding).
func Main(width int) *CNode {
	return &CNode{Kind: NodeMain, Vector: width > 0, Width: width}
}

// Side returns a side-input CNode with the given access mode; width > 0
// marks a Row-template vector access.
func Side(idx int, access SideAccess, width int) *CNode {
	return &CNode{Kind: NodeSide, Side: idx, Access: access, Vector: width > 0, Width: width}
}

// Binary returns an element-wise binary CNode; vector-ness and width
// propagate from the children.
func Binary(op matrix.BinOp, a, b *CNode) *CNode {
	n := &CNode{Kind: NodeBinary, BinOp: op, Children: []*CNode{a, b}}
	n.Vector = a.Vector || b.Vector
	n.Width = maxInt(a.Width, b.Width)
	return n
}

// Unary returns an element-wise unary CNode.
func Unary(op matrix.UnOp, a *CNode) *CNode {
	return &CNode{Kind: NodeUnary, UnOp: op, Children: []*CNode{a}, Vector: a.Vector, Width: a.Width}
}

// Agg returns a Row-template vector aggregation (vector -> scalar).
func Agg(op matrix.AggOp, a *CNode) *CNode {
	return &CNode{Kind: NodeAgg, AggOp: op, Children: []*CNode{a}}
}

// MatMultNode returns a Row-template vector × side-matrix product.
func MatMultNode(a *CNode, side, outWidth int) *CNode {
	return &CNode{Kind: NodeMatMult, Side: side, Children: []*CNode{a}, Vector: true, Width: outWidth}
}

// Idx returns a Row-template subvector selection [cl, cu).
func Idx(a *CNode, cl, cu int) *CNode {
	return &CNode{Kind: NodeIdx, CL: cl, CU: cu, Children: []*CNode{a}, Vector: true, Width: cu - cl}
}

// Dot returns the Outer-template U_i·V_j node.
func Dot() *CNode { return &CNode{Kind: NodeDot} }

// CumsumNode returns a Row-template running prefix sum over a vector child
// (the t(cumsum(t(X))) row-operation of §3.2).
func CumsumNode(a *CNode) *CNode {
	return &CNode{Kind: NodeCumsum, Children: []*CNode{a}, Vector: true, Width: a.Width}
}

// Plan is a complete code generation plan for one fused operator.
type Plan struct {
	Type TemplateType
	Cell CellType
	Row  RowType
	Out  OuterType

	// Root is the cell/row function; for MAgg and Horizontal, Roots holds
	// one function per output and AggOps their aggregation functions.
	Root   *CNode
	Roots  []*CNode
	AggOps []matrix.AggOp

	// HKinds gives each Horizontal root its output kind (NoAgg map,
	// row/col/full aggregate); AggOps entries for NoAgg roots are unused.
	HKinds []CellType

	// AggOp is the aggregation function for aggregating Cell variants.
	AggOp matrix.AggOp

	SparseSafe bool
	NumSides   int
	MainWidth  int // Row: ncol of main input

	// OuterRank is the common rank of U and V for Outer templates.
	OuterRank int
}

// Hash returns a structural hash identifying equivalent CPlans; the plan
// cache uses it to avoid recompiling existing operators (paper §2.1).
func (p *Plan) Hash() uint64 {
	h := fnv.New64a()
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|%d|%d|%v|%d|%d|", p.Type, p.Cell, p.Row, p.Out, p.AggOp, p.SparseSafe, p.NumSides, p.MainWidth)
	if p.Root != nil {
		writeNode(&b, p.Root)
	}
	for i, r := range p.Roots {
		fmt.Fprintf(&b, "|agg%d:%d:", i, p.AggOps[i])
		if i < len(p.HKinds) {
			fmt.Fprintf(&b, "h%d:", p.HKinds[i])
		}
		writeNode(&b, r)
	}
	h.Write([]byte(b.String()))
	return h.Sum64()
}

func writeNode(b *strings.Builder, n *CNode) {
	fmt.Fprintf(b, "(%d:%d:%d:%d:%g:%d:%d:%d:%d", n.Kind, n.BinOp, n.UnOp, n.AggOp, n.Value, n.Side, n.Access, n.CL, n.CU)
	for _, c := range n.Children {
		writeNode(b, c)
	}
	b.WriteString(")")
}

// NumNodes counts the CNodes of the plan (for codegen statistics and the
// instruction-footprint experiment).
func (p *Plan) NumNodes() int {
	count := 0
	var walk func(n *CNode)
	walk = func(n *CNode) {
		count++
		for _, c := range n.Children {
			walk(c)
		}
	}
	if p.Root != nil {
		walk(p.Root)
	}
	for _, r := range p.Roots {
		walk(r)
	}
	return count
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
