package codegen

import (
	"testing"

	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/rewrite"
)

// chainWithTwoCSEs builds a partition with stacked materialization points:
//
//	X,Y -> m (2 consumers) -> u (2 consumers) -> two roots
//
// so cut sets can split the interesting points into subproblems.
func chainWithTwoCSEs() *hop.DAG {
	d := hop.NewDAG()
	x := d.Read("X", 10000, 40, -1)
	y := d.Read("Y", 10000, 40, -1)
	m := d.Binary(matrix.BinMul, x, y)
	u := d.Unary(matrix.UnAbs, d.Binary(matrix.BinAdd, m, d.Lit(1)))
	d.Output("a", d.Sum(u))
	d.Output("b", d.RowSums(u))
	d.Output("c", d.Sum(d.Binary(matrix.BinMul, m, m)))
	return d
}

func exploreParts(t *testing.T, d *hop.DAG) (*Memo, []*Partition, Config) {
	t.Helper()
	cfg := DefaultConfig()
	dd, _ := rewrite.Apply(d)
	memo := Explore(dd.Roots(), &cfg)
	parts := BuildPartitions(memo, dd.Roots())
	return memo, parts, cfg
}

func TestPartitionMetadata(t *testing.T) {
	memo, parts, _ := exploreParts(t, chainWithTwoCSEs())
	if len(parts) != 1 {
		t.Fatalf("expected one connected partition, got %d", len(parts))
	}
	p := parts[0]
	if len(p.Roots) < 2 {
		t.Fatalf("expected multiple roots (sum, rowSums, sum), got %v", p.Roots)
	}
	if len(p.MatPoints) < 2 {
		t.Fatalf("expected >= 2 materialization points (m and u), got %v", p.MatPoints)
	}
	// Every interesting point references a node of the partition.
	for _, pt := range p.Points {
		if !p.Nodes[pt.From] || !p.Nodes[pt.To] {
			t.Fatalf("interesting point %v escapes the partition", pt)
		}
		if memo.Hop(pt.To) == nil {
			t.Fatalf("point target %d has no hop", pt.To)
		}
	}
	// Partition inputs are outside the node set.
	for _, in := range p.Inputs {
		if p.Nodes[in] {
			t.Fatalf("input %d is inside the partition", in)
		}
	}
}

func TestReachGraphAndCutSets(t *testing.T) {
	memo, parts, _ := exploreParts(t, chainWithTwoCSEs())
	p := parts[0]
	if len(p.Points) < 3 {
		t.Skipf("need >= 3 points for cut sets, got %d", len(p.Points))
	}
	rg := BuildReachGraph(memo, p)
	// Reachability must be antisymmetric for a DAG.
	for i := 0; i < len(p.Points); i++ {
		for j := 0; j < len(p.Points); j++ {
			if i != j && rg.below[i][j] && rg.below[j][i] {
				t.Fatalf("cyclic reachability between points %d and %d", i, j)
			}
		}
	}
	cuts := FindCutSets(memo, p, rg)
	for _, cs := range cuts {
		if len(cs.S1) == 0 || len(cs.S2) == 0 {
			t.Fatalf("invalid cut set with empty side: %+v", cs)
		}
		//

		// S1 and S2 are disjoint and cover all non-cut points.
		seen := map[int]bool{}
		for _, i := range cs.Points {
			seen[i] = true
		}
		for _, i := range append(append([]int{}, cs.S1...), cs.S2...) {
			if seen[i] {
				t.Fatalf("cut set overlaps subproblem: %+v", cs)
			}
			seen[i] = true
		}
		if len(seen) != len(p.Points) {
			t.Fatalf("cut set does not cover all points: %+v", cs)
		}
		// No S2 point may reach an S1 point (independence).
		for _, a := range cs.S2 {
			for _, b := range cs.S1 {
				if rg.below[a][b] {
					t.Fatalf("S2 reaches S1 in %+v", cs)
				}
			}
		}
	}
	// Cut sets are sorted by ascending score (Eq. 5).
	for i := 1; i < len(cuts); i++ {
		if cuts[i-1].Score > cuts[i].Score {
			t.Fatal("cut sets not sorted by score")
		}
	}
}

func TestCutScoreFormula(t *testing.T) {
	// Eq. (5): (2^|cs|-1)/2^|cs| * 2^|M'| + 1/2^|cs| * (2^|S1| + 2^|S2|).
	got := cutScore(1, 2, 3, 6)
	want := 0.5*64 + 0.5*(4+8)
	if got != want {
		t.Fatalf("cutScore(1,2,3,6) = %v, want %v", got, want)
	}
	// Larger cut sets cost more of the full space.
	if cutScore(2, 2, 2, 6) <= cutScore(1, 2, 3, 6)-32 {
		t.Fatal("score ordering implausible")
	}
}

func TestStaticCostIsLowerBound(t *testing.T) {
	memo, parts, cfg := exploreParts(t, chainWithTwoCSEs())
	for _, p := range parts {
		co := NewCoster(&cfg, memo, p)
		static := co.StaticCost()
		if static <= 0 {
			t.Fatal("static cost must be positive")
		}
		// The fuse-all plan's full cost can never be below the bound.
		full := co.PlanCost(map[Edge]bool{}, 1e18)
		if full < static*0.999 {
			t.Fatalf("plan cost %v below static lower bound %v", full, static)
		}
	}
}
