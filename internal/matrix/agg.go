package matrix

import (
	"fmt"
	"math"

	"sysml/internal/vector"
)

// Agg evaluates an aggregation on the default execution context.
func Agg(op AggOp, dir AggDir, a *Matrix) *Matrix { return Ctx{}.Agg(op, dir, a) }

// Agg evaluates an aggregation over the full matrix, per row, or per
// column. DirAll yields a 1×1 matrix, DirRow an r×1 column vector, DirCol a
// 1×c row vector.
func (ctx Ctx) Agg(op AggOp, dir AggDir, a *Matrix) *Matrix {
	switch dir {
	case DirAll:
		return NewScalar(ctx.aggAll(op, a))
	case DirRow:
		return ctx.aggRows(op, a)
	case DirCol:
		return ctx.aggCols(op, a)
	}
	panic(fmt.Sprintf("matrix: unknown aggregation direction %v", dir))
}

// Sum returns sum(A) as a scalar.
func Sum(a *Matrix) float64 { return Ctx{}.aggAll(AggSum, a) }

func (ctx Ctx) aggAll(op AggOp, a *Matrix) float64 {
	nCells := a.Rows * a.Cols
	switch op {
	case AggSum, AggSumSq, AggMean:
		var s float64
		if a.IsSparse() {
			vals := a.sparse.Values
			if op == AggSumSq {
				s = vector.SumSq(vals, 0, len(vals))
			} else {
				s = vector.Sum(vals, 0, len(vals))
			}
		} else {
			nc, _ := ctx.Par.Chunks(len(a.dense), 4096)
			partial := make([]float64, nc)
			ctx.Par.ForIndexed(len(a.dense), 4096, func(w, lo, hi int) {
				if op == AggSumSq {
					partial[w] += vector.SumSq(a.dense, lo, hi-lo)
				} else {
					partial[w] += vector.Sum(a.dense, lo, hi-lo)
				}
			})
			s = vector.Sum(partial, 0, len(partial))
		}
		if op == AggMean {
			return s / float64(nCells)
		}
		return s
	case AggMin, AggMax:
		var m float64
		if a.IsSparse() {
			vals := a.sparse.Values
			if op == AggMin {
				m = vector.Min(vals, 0, len(vals))
			} else {
				m = vector.Max(vals, 0, len(vals))
			}
			if len(vals) < nCells { // implicit zeros participate
				if op == AggMin {
					m = math.Min(m, 0)
				} else {
					m = math.Max(m, 0)
				}
			}
		} else {
			if op == AggMin {
				m = vector.Min(a.dense, 0, len(a.dense))
			} else {
				m = vector.Max(a.dense, 0, len(a.dense))
			}
		}
		return m
	}
	panic(fmt.Sprintf("matrix: unsupported full aggregation %v", op))
}

func (ctx Ctx) aggRows(op AggOp, a *Matrix) *Matrix {
	out := ctx.NewDense(a.Rows, 1)
	ctx.aggRowsInto(out.dense, op, a)
	return out
}

// aggRowsInto writes the per-row aggregate into a caller-provided a.Rows
// destination slice (the backing of AggInto's zero-copy row views).
func (ctx Ctx) aggRowsInto(od []float64, op AggOp, a *Matrix) {
	n := a.Cols
	ctx.Par.For(a.Rows, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var vals []float64
			var nvals int
			if a.IsSparse() {
				vals, _ = a.sparse.Row(i)
				nvals = len(vals)
			} else {
				vals = a.dense[i*n : (i+1)*n]
				nvals = n
			}
			switch op {
			case AggSum:
				od[i] = vector.Sum(vals, 0, nvals)
			case AggSumSq:
				od[i] = vector.SumSq(vals, 0, nvals)
			case AggMean:
				od[i] = vector.Sum(vals, 0, nvals) / float64(n)
			case AggMin:
				m := vector.Min(vals, 0, nvals)
				if nvals < n {
					m = math.Min(m, 0)
				}
				od[i] = m
			case AggMax:
				m := vector.Max(vals, 0, nvals)
				if nvals < n {
					m = math.Max(m, 0)
				}
				od[i] = m
			}
		}
	})
}

func (ctx Ctx) aggCols(op AggOp, a *Matrix) *Matrix {
	n := a.Cols
	out := ctx.NewDense(1, n)
	od := out.dense
	switch op {
	case AggSum, AggSumSq, AggMean:
		if a.IsSparse() {
			for i := 0; i < a.Rows; i++ {
				vals, cols := a.sparse.Row(i)
				for k, j := range cols {
					if op == AggSumSq {
						od[j] += vals[k] * vals[k]
					} else {
						od[j] += vals[k]
					}
				}
			}
		} else {
			for i := 0; i < a.Rows; i++ {
				off := i * n
				for j := 0; j < n; j++ {
					if op == AggSumSq {
						od[j] += a.dense[off+j] * a.dense[off+j]
					} else {
						od[j] += a.dense[off+j]
					}
				}
			}
		}
		if op == AggMean {
			for j := 0; j < n; j++ {
				od[j] /= float64(a.Rows)
			}
		}
	case AggMin, AggMax:
		ad := a.ToDense().dense
		for j := 0; j < n; j++ {
			m := ad[j]
			for i := 1; i < a.Rows; i++ {
				v := ad[i*n+j]
				if (op == AggMin && v < m) || (op == AggMax && v > m) {
					m = v
				}
			}
			od[j] = m
		}
	}
	return out
}

// RowIndexMax returns rowIndexMax(A) on the default execution context.
func RowIndexMax(a *Matrix) *Matrix { return Ctx{}.RowIndexMax(a) }

// RowIndexMax returns, per row, the 1-based column index of the row maximum
// (SystemML's rowIndexMax, used for predictions).
func (ctx Ctx) RowIndexMax(a *Matrix) *Matrix {
	ad := a.ToDense().dense
	out := ctx.NewDense(a.Rows, 1)
	n := a.Cols
	ctx.Par.For(a.Rows, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.dense[i] = float64(vector.IndexMax(ad, i*n, n) + 1)
		}
	})
	return out
}
