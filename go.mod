module sysml

go 1.22
