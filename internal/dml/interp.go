package dml

import (
	"fmt"
	"io"
	"os"
	"strings"

	"sysml/internal/codegen"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/rewrite"
	"sysml/internal/runtime"
)

// Session executes DML-subset scripts. Statement blocks compile to HOP
// DAGs that flow through rewrites and the codegen optimizer; the plan cache
// and codegen statistics persist across blocks and loop iterations
// (dynamic recompilation per §2.1).
type Session struct {
	Config codegen.Config
	Cache  *codegen.PlanCache
	Stats  *codegen.Stats
	Env    runtime.Env
	Out    io.Writer
	Dist   runtime.DistBackend

	// ExplainOut, when set, receives the optimized HOP DAG of every
	// compiled block (SystemML's EXPLAIN hops output).
	ExplainOut io.Writer

	// Blocks counts compiled statement blocks (optimized HOP DAGs);
	// BlockCacheHits counts reuses of previously optimized blocks.
	Blocks         int64
	BlockCacheHits int64

	blockCache map[string]*hop.DAG
}

// NewSession creates a session with the given optimizer configuration.
func NewSession(cfg codegen.Config) *Session {
	return &Session{
		Config: cfg,
		Cache:  codegen.NewPlanCache(cfg.PlanCache),
		Stats:  codegen.NewStats(),
		Env:    runtime.Env{},
		Out:    os.Stdout,
	}
}

// Bind sets an input variable.
func (s *Session) Bind(name string, m *matrix.Matrix) { s.Env[name] = m }

// BindScalar sets a scalar input variable.
func (s *Session) BindScalar(name string, v float64) { s.Env[name] = matrix.NewScalar(v) }

// Run parses and executes a script against the bound inputs; results stay
// in the session environment.
func (s *Session) Run(script string) error {
	prog, err := Parse(script)
	if err != nil {
		return err
	}
	return s.exec(prog.Stmts)
}

// Get returns a variable from the environment.
func (s *Session) Get(name string) (*matrix.Matrix, bool) {
	m, ok := s.Env[name]
	return m, ok
}

// Scalar returns a scalar variable's value.
func (s *Session) Scalar(name string) (float64, bool) {
	m, ok := s.Env[name]
	if !ok || m.Rows != 1 || m.Cols != 1 {
		return 0, false
	}
	return m.Scalar(), true
}

func (s *Session) exec(stmts []Stmt) error {
	var pending []Stmt
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := s.runBlock(pending)
		pending = pending[:0]
		return err
	}
	for _, st := range stmts {
		switch n := st.(type) {
		case *Assign, *PrintStmt:
			pending = append(pending, st)
		case *IfStmt:
			if err := flush(); err != nil {
				return err
			}
			cond, err := s.evalScalar(n.Cond)
			if err != nil {
				return err
			}
			if cond != 0 {
				if err := s.exec(n.Then); err != nil {
					return err
				}
			} else if len(n.Else) > 0 {
				if err := s.exec(n.Else); err != nil {
					return err
				}
			}
		case *WhileStmt:
			if err := flush(); err != nil {
				return err
			}
			for iter := 0; ; iter++ {
				if iter > 1_000_000 {
					return fmt.Errorf("dml: line %d: while loop exceeded iteration bound", n.Line)
				}
				cond, err := s.evalScalar(n.Cond)
				if err != nil {
					return err
				}
				if cond == 0 {
					break
				}
				if err := s.exec(n.Body); err != nil {
					return err
				}
			}
		case *ForStmt:
			if err := flush(); err != nil {
				return err
			}
			from, err := s.evalScalar(n.From)
			if err != nil {
				return err
			}
			to, err := s.evalScalar(n.To)
			if err != nil {
				return err
			}
			for i := from; i <= to; i++ {
				s.Env[n.Var] = matrix.NewScalar(i)
				if err := s.exec(n.Body); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// runBlock compiles, optimizes, and executes one statement block.
func (s *Session) runBlock(stmts []Stmt) error {
	c := newBlockCompiler(s.Env)
	type printOut struct {
		line  int
		parts []any // string literals and output variable names
	}
	var prints []printOut
	npr := 0
	for _, st := range stmts {
		switch n := st.(type) {
		case *Assign:
			if err := c.assign(n.Target, n.Value); err != nil {
				return err
			}
		case *PrintStmt:
			po := printOut{line: n.Line}
			for _, part := range flattenConcat(n.Value) {
				if str, ok := part.(*Str); ok {
					po.parts = append(po.parts, str.Value)
					continue
				}
				h, err := c.compile(part)
				if err != nil {
					return err
				}
				name := fmt.Sprintf("__print%d", npr)
				npr++
				c.d.Output(name, h)
				po.parts = append(po.parts, printRef(name))
			}
			prints = append(prints, po)
		}
	}
	d, _ := rewrite.Apply(c.d)
	// Reuse the optimized plan while the block's structure, sizes, and
	// sparsity are unchanged (SystemML recompiles only dirty blocks).
	var key string
	if s.Config.ReuseBlockPlans {
		key = blockKey(d)
		if cached, ok := s.blockCache[key]; ok {
			d = cached
			s.BlockCacheHits++
		} else {
			d = codegen.Optimize(d, &s.Config, s.Cache, s.Stats)
			s.Blocks++
			if s.blockCache == nil {
				s.blockCache = map[string]*hop.DAG{}
			}
			s.blockCache[key] = d
		}
	} else {
		d = codegen.Optimize(d, &s.Config, s.Cache, s.Stats)
		s.Blocks++
	}
	if s.ExplainOut != nil {
		fmt.Fprintf(s.ExplainOut, "# EXPLAIN block %d\n%s", s.Blocks, hop.Explain(d.Roots()))
	}
	out, err := runtime.ExecuteDAG(d, s.Env, runtime.Options{Dist: s.Dist})
	if err != nil {
		return err
	}
	for name, m := range out {
		s.Env[name] = m
	}
	for _, po := range prints {
		line := ""
		for _, part := range po.parts {
			switch v := part.(type) {
			case string:
				line += v
			case printRef:
				m := s.Env[string(v)]
				if m.Rows == 1 && m.Cols == 1 {
					line += fmt.Sprintf("%g", m.Scalar())
				} else {
					line += m.String()
				}
			}
		}
		fmt.Fprintln(s.Out, line)
	}
	return nil
}

type printRef string

// blockKey fingerprints a rewritten block DAG: operator structure, input
// names, dimensions, format, and bucketed sparsity, plus the output
// binding. Matching keys produce identical optimized plans.
func blockKey(d *hop.DAG) string {
	var b strings.Builder
	for _, h := range hop.TopoOrder(d.Roots()) {
		fmt.Fprintf(&b, "%d:%d:%d:%d:%d:%g:%s:%d:%d:%v:%.1f:%d:%d:%d:%d:%v",
			h.ID, h.Kind, h.BinOp, h.UnOp, h.AggOp, h.Value, h.Name,
			h.Rows, h.Cols, h.IsSparse(), h.Sparsity(), h.RL, h.RU, h.CL, h.CU, h.GenArgs)
		for _, in := range h.Inputs {
			fmt.Fprintf(&b, ",%d", in.ID)
		}
		b.WriteByte('|')
	}
	for _, name := range d.OutputNames() {
		fmt.Fprintf(&b, "%s=%d;", name, d.Outputs[name].ID)
	}
	return b.String()
}

// flattenConcat splits a "+"-chain mixing strings and expressions into
// printable parts.
func flattenConcat(e Expr) []Expr {
	if b, ok := e.(*BinExpr); ok && b.Op == "+" && (containsStr(b.L) || containsStr(b.R)) {
		return append(flattenConcat(b.L), flattenConcat(b.R)...)
	}
	return []Expr{e}
}

func containsStr(e Expr) bool {
	switch n := e.(type) {
	case *Str:
		return true
	case *BinExpr:
		return n.Op == "+" && (containsStr(n.L) || containsStr(n.R))
	}
	return false
}

// evalScalar evaluates a predicate or loop-bound expression through the
// regular block pipeline (a one-output DAG), mirroring SystemML's handling
// of scalar instructions.
func (s *Session) evalScalar(e Expr) (float64, error) {
	c := newBlockCompiler(s.Env)
	h, err := c.compile(e)
	if err != nil {
		return 0, err
	}
	c.d.Output("__cond", h)
	d, _ := rewrite.Apply(c.d)
	out, err := runtime.ExecuteDAG(d, s.Env, runtime.Options{Dist: s.Dist})
	if err != nil {
		return 0, err
	}
	m := out["__cond"]
	if m.Rows != 1 || m.Cols != 1 {
		return 0, fmt.Errorf("dml: condition is not scalar (%dx%d)", m.Rows, m.Cols)
	}
	return m.Scalar(), nil
}
