package obs

import (
	"sync/atomic"
	"time"
)

// spanSeq issues process-wide unique span IDs; ID 0 means "no span".
var spanSeq uint64

// Attr is one key/value attribute attached to a span (partition counts,
// byte sizes, operator shapes). Values should be strings, integers, or
// floats so they serialize cleanly into trace-event args.
type Attr struct {
	Key   string
	Value any
}

// KV constructs a span attribute.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one in-flight trace region. Spans form a hierarchy: StartSpan
// opens a root, Child opens a sub-region for the trace timeline, and Phase
// opens a sub-region that additionally records a "phase.<name>" duration
// histogram in a Metrics registry. Each span carries a process-unique ID
// and its parent's ID so sinks can reconstruct the tree.
//
// Spans are values; each is started and ended by one goroutine, but
// different goroutines may hold children of the same parent concurrently.
type Span struct {
	m      *Metrics
	sink   Sink
	name   string
	start  time.Time
	id     uint64
	parent uint64
	attrs  []Attr
}

func newSpan(m *Metrics, sink Sink, name string, parent uint64, attrs []Attr) Span {
	return Span{
		m:      m,
		sink:   sink,
		name:   name,
		start:  time.Now(),
		id:     atomic.AddUint64(&spanSeq, 1),
		parent: parent,
		attrs:  attrs,
	}
}

// StartSpan begins a root span. Ending it records histogram "phase.<name>"
// into m (if non-nil) and emits an EventSpan to sink (if non-nil). Both may
// be nil; a zero-overhead no-op span is returned when both are.
func StartSpan(m *Metrics, sink Sink, name string) Span {
	if m == nil && sink == nil {
		return Span{}
	}
	return newSpan(m, sink, name, 0, nil)
}

// Active reports whether ending the span will emit a sink event. Use it to
// skip attribute construction on hot paths when no sink is attached.
func (sp Span) Active() bool { return sp.sink != nil }

// ID returns the span's process-unique ID (0 for a no-op span).
func (sp Span) ID() uint64 { return sp.id }

// Child begins a sub-span for the trace timeline. Children record no phase
// histogram — per-operator metrics are aggregated separately — so with no
// sink attached the returned span is a zero-cost no-op.
func (sp Span) Child(name string, attrs ...Attr) Span {
	if sp.sink == nil {
		return Span{}
	}
	return newSpan(nil, sp.sink, name, sp.id, attrs)
}

// Phase begins a sub-span that also records its duration into m as
// histogram "phase.<name>". It works on a zero receiver so phase timings
// survive sinkless sessions.
func (sp Span) Phase(m *Metrics, name string) Span {
	if m == nil && sp.sink == nil {
		return Span{}
	}
	return newSpan(m, sp.sink, name, sp.id, nil)
}

// Annotate appends attributes discovered after the span started. Not safe
// for concurrent use on the same span.
func (sp *Span) Annotate(attrs ...Attr) {
	if sp.id != 0 {
		sp.attrs = append(sp.attrs, attrs...)
	}
}

// End closes the span and returns its duration.
func (sp Span) End() time.Duration {
	if sp.m == nil && sp.sink == nil {
		return 0
	}
	d := time.Since(sp.start)
	if sp.m != nil {
		sp.m.ObserveDuration("phase."+sp.name, d)
	}
	if sp.sink != nil {
		sp.sink.Emit(Event{
			Kind:   EventSpan,
			Name:   sp.name,
			Dur:    d,
			Span:   sp.id,
			Parent: sp.parent,
			Start:  sp.start,
			Attrs:  sp.attrs,
		})
	}
	return d
}
