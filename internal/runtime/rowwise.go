package runtime

import (
	"sysml/internal/cplan"
	"sysml/internal/matrix"
	"sysml/internal/vector"
)

// ExecRowwise runs a compiled Row-template operator: one pass over the
// rows of the main input with per-thread ring buffers for row
// intermediates (paper Fig. 3c). Sparse main rows are densified into a
// scratch vector; side matrices consumed by inner matrix products are
// densified once up front.
func ExecRowwise(op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix) *matrix.Matrix {
	return execRowwise(matrix.Ctx{}, op, main, sides, nil)
}

// workRowwise measures the data-touch work of one Row invocation: the
// main-input elements the row program streams (stored entries when it
// executes directly over sparse rows, all cells otherwise) times the
// instruction count applied per element. Feeds the cost-audit ledger.
func workRowwise(op *cplan.Operator, main *matrix.Matrix) float64 {
	prog := op.RowProg
	elems := float64(main.Rows) * float64(main.Cols)
	if main.IsSparse() && prog.MainSparseCapable() {
		elems = storedCells(main)
	}
	return elems * float64(len(prog.Instrs))
}

func execRowwise(ec matrix.Ctx, op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix, stop StopFn) *matrix.Matrix {
	if out, ok := execRowChunk(ec, op, main, sides, stop); ok {
		return out
	}
	prog := op.RowProg
	sides = densifyMatMulSides(prog, sides)
	proto := cplan.NewCtx(sides)
	rows := main.Rows
	w := prog.OutWidth

	switch prog.RowT {
	case cplan.RowNoAgg:
		out := ec.NewDense(rows, w)
		od := out.Dense()
		forEachRow(ec, main, prog, proto, stop, func(buf *cplan.RowBuf, i int) {
			src, so := buf.Vec[prog.ResultReg], buf.Off[prog.ResultReg]
			vector.CopyWrite(src, od, so, i*w, w)
		})
		return out

	case cplan.RowRowAgg:
		out := ec.NewDense(rows, 1)
		od := out.Dense()
		forEachRow(ec, main, prog, proto, stop, func(buf *cplan.RowBuf, i int) {
			od[i] = buf.Scal[prog.ResultReg]
		})
		return out

	case cplan.RowColAgg:
		nw, _ := ec.Par.Chunks(rows, 16)
		partials := make([][]float64, nw)
		forEachRowIndexed(ec, main, prog, proto, stop, func(wk int) any {
			if partials[wk] == nil {
				partials[wk] = make([]float64, w)
			}
			return partials[wk]
		}, func(state any, buf *cplan.RowBuf, i int) {
			part := state.([]float64)
			src, so := buf.Vec[prog.ResultReg], buf.Off[prog.ResultReg]
			vector.Add(src, part, so, 0, w)
		})
		out := ec.NewDense(1, w)
		od := out.Dense()
		for _, part := range partials {
			if part != nil {
				vector.Add(part, od, 0, 0, w)
			}
		}
		return out

	case cplan.RowFullAgg:
		nw, _ := ec.Par.Chunks(rows, 16)
		partials := make([]float64, nw)
		forEachRowIndexed(ec, main, prog, proto, stop, func(wk int) any {
			return wk
		}, func(state any, buf *cplan.RowBuf, i int) {
			partials[state.(int)] += buf.Scal[prog.ResultReg]
		})
		var acc float64
		for _, v := range partials {
			acc += v
		}
		return matrix.NewScalar(acc)

	default: // RowColAggT: C (mainWidth × w) += left_i ⊗ result_i
		mw := prog.MainWidth
		nw, _ := ec.Par.Chunks(rows, 16)
		partials := make([][]float64, nw)
		forEachRowIndexed(ec, main, prog, proto, stop, func(wk int) any {
			if partials[wk] == nil {
				partials[wk] = make([]float64, mw*w)
			}
			return partials[wk]
		}, func(state any, buf *cplan.RowBuf, i int) {
			part := state.([]float64)
			if buf.SparseMain && prog.LeftReg == 0 {
				// genexecSparse: accumulate over the non-zeros of X_i only.
				if !prog.ResultVec {
					q := buf.Scal[prog.ResultReg]
					for k, j := range buf.SparseIdx {
						part[j] += q * buf.SparseVals[k]
					}
					return
				}
				bvec, bo := buf.Vec[prog.ResultReg], buf.Off[prog.ResultReg]
				vector.OuterMultAddSparse(buf.SparseVals, buf.SparseIdx, bvec, part, bo, 0, w)
				return
			}
			a, ao := buf.Vec[prog.LeftReg], buf.Off[prog.LeftReg]
			if !prog.ResultVec {
				// Scalar result q_i: C (mw×1) += q_i * left_i.
				vector.MultAdd(a, buf.Scal[prog.ResultReg], part, ao, 0, mw)
				return
			}
			bvec, bo := buf.Vec[prog.ResultReg], buf.Off[prog.ResultReg]
			vector.OuterMultAdd(a, bvec, part, ao, bo, 0, mw, w)
		})
		out := ec.NewDense(mw, w)
		od := out.Dense()
		for _, part := range partials {
			if part != nil {
				vector.Add(part, od, 0, 0, mw*w)
			}
		}
		return out
	}
}

// rowChunkApplicable reports whether the operator's specialized whole-row
// body (fingerprint classes row.dot / row.rank1) can serve this
// invocation: the single side input must be dense and row-aligned with
// the main input, with the widths the class assumes.
func rowChunkApplicable(op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix) bool {
	rc := op.RowChunk
	if rc == nil || rc.Side >= len(sides) {
		return false
	}
	s := sides[rc.Side]
	if s.IsSparse() || s.Rows != main.Rows {
		return false
	}
	if rc.Kind == cplan.RowChunkDot {
		return s.Cols == main.Cols
	}
	return op.RowProg.OutWidth == s.Cols && op.RowProg.MainWidth == main.Cols
}

// execRowChunk runs the specialized whole-row bodies: the fused per-row
// dot product (out_i = X_i · S_i) and the rank-1 accumulation of
// t(X) %*% S (C += X_i ⊗ S_i), both straight over the vector kernels with
// no register-machine dispatch. Returns ok=false to fall back to the
// interpreted row program.
func execRowChunk(ec matrix.Ctx, op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix, stop StopFn) (*matrix.Matrix, bool) {
	if !rowChunkApplicable(op, main, sides) {
		return nil, false
	}
	rc := op.RowChunk
	rows, mc := main.Rows, main.Cols
	sd := sides[rc.Side].Dense()
	if rc.Kind == cplan.RowChunkDot {
		out := ec.NewDense(rows, 1)
		od := out.Dense()
		if main.IsSparse() {
			ms := main.Sparse()
			ec.Par.For(rows, 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						return
					}
					vals, cix := ms.Row(i)
					od[i] = vector.DotProductSparse(vals, cix, sd, i*mc)
				}
			})
		} else {
			md := main.Dense()
			ec.Par.For(rows, 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						return
					}
					od[i] = vector.DotProduct(md, sd, i*mc, i*mc, mc)
				}
			})
		}
		return out, true
	}
	// RowChunkRank1: per-worker mc×w partials, reduced by addition.
	w := sides[rc.Side].Cols
	nw, _ := ec.Par.Chunks(rows, 16)
	partials := make([][]float64, nw)
	ec.Par.ForIndexed(rows, 16, func(wk, lo, hi int) {
		part := partials[wk]
		if part == nil {
			part = make([]float64, mc*w)
			partials[wk] = part
		}
		if main.IsSparse() {
			ms := main.Sparse()
			for i := lo; i < hi; i++ {
				if pollStop(stop, i-lo) {
					return
				}
				vals, cix := ms.Row(i)
				vector.OuterMultAddSparse(vals, cix, sd, part, i*w, 0, w)
			}
		} else {
			md := main.Dense()
			for i := lo; i < hi; i++ {
				if pollStop(stop, i-lo) {
					return
				}
				vector.OuterMultAdd(md, sd, part, i*mc, i*w, 0, mc, w)
			}
		}
	})
	out := ec.NewDense(mc, w)
	od := out.Dense()
	for _, part := range partials {
		if part != nil {
			vector.Add(part, od, 0, 0, mc*w)
		}
	}
	return out, true
}

func forEachRow(ec matrix.Ctx, main *matrix.Matrix, prog *cplan.RowProgram, proto *cplan.Ctx,
	stop StopFn, sink func(buf *cplan.RowBuf, i int)) {
	sparseExec := main.IsSparse() && prog.MainSparseCapable()
	ec.Par.For(main.Rows, 16, func(lo, hi int) {
		ctx := proto.Clone()
		buf := prog.GetBuf()
		defer prog.PutBuf(buf)
		scratch := newRowScratch(ec, main)
		defer releaseRowScratch(ec, scratch)
		for i := lo; i < hi; i++ {
			if pollStop(stop, i-lo) {
				return
			}
			execProgRow(prog, ctx, buf, main, i, scratch, sparseExec)
			sink(buf, i)
		}
	})
}

// forEachRowIndexed streams rows through the program with per-worker state.
// initState may be invoked several times for the same worker id (the pool
// hands a worker multiple chunks), so it must memoize, not reallocate.
func forEachRowIndexed(ec matrix.Ctx, main *matrix.Matrix, prog *cplan.RowProgram, proto *cplan.Ctx,
	stop StopFn, initState func(worker int) any, sink func(state any, buf *cplan.RowBuf, i int)) {
	sparseExec := main.IsSparse() && prog.MainSparseCapable()
	ec.Par.ForIndexed(main.Rows, 16, func(w, lo, hi int) {
		ctx := proto.Clone()
		buf := prog.GetBuf()
		defer prog.PutBuf(buf)
		scratch := newRowScratch(ec, main)
		defer releaseRowScratch(ec, scratch)
		state := initState(w)
		for i := lo; i < hi; i++ {
			if pollStop(stop, i-lo) {
				return
			}
			execProgRow(prog, ctx, buf, main, i, scratch, sparseExec)
			sink(state, buf, i)
		}
	})
}

// execProgRow runs the program on row i, binding the main row sparse
// (genexecSparse) when the program supports it, otherwise as a dense view.
func execProgRow(prog *cplan.RowProgram, ctx *cplan.Ctx, buf *cplan.RowBuf,
	main *matrix.Matrix, i int, scratch []float64, sparseExec bool) {
	if sparseExec {
		vals, cix := main.Sparse().Row(i)
		buf.SparseMain, buf.SparseVals, buf.SparseIdx = true, vals, cix
		prog.ExecRow(ctx, buf, nil, 0, i)
		return
	}
	row, off := denseRowView(main, i, scratch)
	buf.SparseMain = false
	prog.ExecRow(ctx, buf, row, off, i)
}

// densifyMatMulSides converts side inputs consumed by RMatMul instructions
// (the inner vector-matrix product requires dense layout) and sides read as
// whole vectors (row-zero loads, where a sparse n×1 column vector would
// otherwise be misread) to dense form.
func densifyMatMulSides(prog *cplan.RowProgram, sides []*matrix.Matrix) []*matrix.Matrix {
	var needed []int
	for _, in := range prog.Instrs {
		if in.Op == cplan.RMatMul || (in.Op == cplan.RLoadSideRow && in.RowZero) {
			needed = append(needed, in.Side)
		}
	}
	if len(needed) == 0 {
		return sides
	}
	out := append([]*matrix.Matrix(nil), sides...)
	for _, k := range needed {
		out[k] = out[k].ToDense()
	}
	return out
}
