package codegen

import (
	"math/big"
	"sync"
	"time"

	"sysml/internal/cplan"
)

// PlanCache caches compiled fused operators keyed by CPlan hash, avoiding
// redundant code generation and compilation across DAGs and during dynamic
// recompilation (§2.1).
type PlanCache struct {
	mu      sync.Mutex
	enabled bool
	max     int // 0 = unbounded
	ops     map[uint64]*cplan.Operator
	order   []uint64 // insertion order for FIFO eviction when bounded

	hits      int64
	misses    int64
	evictions int64
}

// NewPlanCache returns a plan cache; when disabled it compiles every
// request fresh (the Fig. 11 "without plan cache" configuration).
func NewPlanCache(enabled bool) *PlanCache {
	return NewPlanCacheSized(enabled, 0)
}

// NewPlanCacheSized returns a plan cache holding at most maxEntries
// compiled operators (0 = unbounded); when full, the oldest entry is
// evicted.
func NewPlanCacheSized(enabled bool, maxEntries int) *PlanCache {
	return &PlanCache{enabled: enabled, max: maxEntries, ops: map[uint64]*cplan.Operator{}}
}

// GetOrCompile returns the cached operator for an equivalent CPlan or
// compiles a new one via the configured compiler path.
func (pc *PlanCache) GetOrCompile(p *cplan.Plan, cfg *Config, nextClass func() string) (op *cplan.Operator, hit bool, err error) {
	h := p.Hash()
	if pc.enabled {
		pc.mu.Lock()
		cached, ok := pc.ops[h]
		if ok {
			pc.hits++
		} else {
			pc.misses++
		}
		pc.mu.Unlock()
		if ok {
			return cached, true, nil
		}
	}
	name := nextClass()
	if cfg.Compiler == CompilerJavac {
		op, err = cplan.CompileSlow(p, name)
		if err != nil {
			return nil, false, err
		}
	} else {
		op = cplan.Compile(p, name)
	}
	if pc.enabled {
		pc.mu.Lock()
		if _, exists := pc.ops[h]; !exists {
			if pc.max > 0 {
				for len(pc.order) >= pc.max {
					delete(pc.ops, pc.order[0])
					pc.order = pc.order[1:]
					pc.evictions++
				}
				pc.order = append(pc.order, h)
			}
			pc.ops[h] = op
		}
		pc.mu.Unlock()
	}
	return op, false, nil
}

// Size returns the number of cached operators.
func (pc *PlanCache) Size() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.ops)
}

// Counters returns the lifetime hit/miss/eviction counts. A disabled cache
// counts nothing (every compile bypasses it).
func (pc *PlanCache) Counters() (hits, misses, evictions int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.evictions
}

// Stats aggregates codegen statistics across DAG compilations (paper
// Table 3, Figs. 11-12).
type Stats struct {
	DAGsOptimized     int64
	CPlansConstructed int64
	OperatorsCompiled int64
	CacheHits         int64

	PlansEvaluated    int64
	HypotheticalPlans *big.Int

	CodegenTime time.Duration
	CompileTime time.Duration
}

// NewStats returns zeroed statistics.
func NewStats() *Stats { return &Stats{HypotheticalPlans: new(big.Int)} }
