// Package dist implements the simulated distributed (Spark-like) backend:
// block-partitioned matrices executed by a pool of simulated executor
// workers, with explicit accounting of broadcast and shuffle volumes and a
// simulated network time derived from configurable bandwidths. Computation
// is real (the same kernels as local execution, so results are identical);
// only the cluster topology is simulated (see DESIGN.md substitutions).
package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/obs"
	rt "sysml/internal/runtime"
)

// Cluster models the simulated cluster: executor count, per-executor
// memory, distributed blocksize, and network bandwidth for broadcast and
// shuffle traffic.
type Cluster struct {
	NumExecutors     int
	ExecutorMemBytes int64
	Blocksize        int
	NetBandwidth     float64 // bytes/s

	bytesBroadcast int64
	bytesShuffled  int64
	netNanos       int64
}

// NewCluster mirrors the paper's 6-executor setup scaled down.
func NewCluster() *Cluster {
	return &Cluster{
		NumExecutors:     6,
		ExecutorMemBytes: 1 << 30,
		Blocksize:        1000,
		NetBandwidth:     1.25e9, // 10 Gb Ethernet
	}
}

// BytesBroadcast returns the accumulated broadcast volume.
func (c *Cluster) BytesBroadcast() int64 { return atomic.LoadInt64(&c.bytesBroadcast) }

// BytesShuffled returns the accumulated shuffle volume.
func (c *Cluster) BytesShuffled() int64 { return atomic.LoadInt64(&c.bytesShuffled) }

// NetTime returns the simulated network time implied by the traffic.
func (c *Cluster) NetTime() time.Duration { return time.Duration(atomic.LoadInt64(&c.netNanos)) }

// Reset clears the traffic counters.
func (c *Cluster) Reset() {
	atomic.StoreInt64(&c.bytesBroadcast, 0)
	atomic.StoreInt64(&c.bytesShuffled, 0)
	atomic.StoreInt64(&c.netNanos, 0)
}

func (c *Cluster) addBroadcast(bytes int64) {
	atomic.AddInt64(&c.bytesBroadcast, bytes)
	atomic.AddInt64(&c.netNanos, int64(float64(bytes)/c.NetBandwidth*1e9))
}

func (c *Cluster) addShuffle(bytes int64) {
	atomic.AddInt64(&c.bytesShuffled, bytes)
	atomic.AddInt64(&c.netNanos, int64(float64(bytes)/c.NetBandwidth*1e9))
}

// ExecHop implements runtime.DistBackend: it executes one operator over
// row panels of its main input across the simulated executors. Unsupported
// shapes report ok=false and fall back to local execution. sp is the
// operator's trace span; broadcast, map, and shuffle stages emit child
// spans with byte-size and partition-count attributes.
func (c *Cluster) ExecHop(h *hop.Hop, inputs []*matrix.Matrix, sp obs.Span) (*matrix.Matrix, bool) {
	switch h.Kind {
	case hop.OpBinary, hop.OpUnary:
		return c.mapOp(h, inputs, sp)
	case hop.OpAggUnary:
		return c.aggOp(h, inputs, sp)
	case hop.OpMatMult:
		return c.matMult(h, inputs, sp)
	case hop.OpSpoof:
		return c.spoof(h, inputs, sp)
	}
	return nil, false
}

// panels splits [0, rows) into executor work units of Blocksize rows.
func (c *Cluster) panels(rows int) [][2]int {
	var out [][2]int
	for lo := 0; lo < rows; lo += c.Blocksize {
		hi := lo + c.Blocksize
		if hi > rows {
			hi = rows
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runPanels executes fn per panel on NumExecutors workers, under a
// "dist.map" span carrying the partition count.
func (c *Cluster) runPanels(sp obs.Span, rows int, fn func(panel int, lo, hi int)) int {
	ps := c.panels(rows)
	msp := sp.Child("dist.map",
		obs.KV("partitions", len(ps)),
		obs.KV("rows", rows),
		obs.KV("executors", c.NumExecutors))
	defer msp.End()
	var wg sync.WaitGroup
	work := make(chan int)
	workers := c.NumExecutors
	if workers > len(ps) {
		workers = len(ps)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i, ps[i][0], ps[i][1])
			}
		}()
	}
	for i := range ps {
		work <- i
	}
	close(work)
	wg.Wait()
	return len(ps)
}

func rowSlice(m *matrix.Matrix, lo, hi int) *matrix.Matrix {
	return matrix.IndexRange(m, lo, hi, 0, m.Cols)
}

// broadcastAll accounts for shipping the given side inputs to every
// executor, under a "dist.broadcast" span carrying the shipped volume.
func (c *Cluster) broadcastAll(sides []*matrix.Matrix, sp obs.Span) {
	var bytes int64
	for _, s := range sides {
		if s != nil {
			bytes += s.SizeBytes() * int64(c.NumExecutors)
		}
	}
	if bytes == 0 {
		return
	}
	bsp := sp.Child("dist.broadcast",
		obs.KV("bytes", bytes),
		obs.KV("sides", len(sides)),
		obs.KV("executors", c.NumExecutors))
	c.addBroadcast(bytes)
	bsp.End()
}

// shuffle accounts for moving n partial results of partialBytes each to the
// reducer, under a "dist.shuffle" span carrying volume and partition count.
func (c *Cluster) shuffle(sp obs.Span, n int, partialBytes int64) {
	ssp := sp.Child("dist.shuffle",
		obs.KV("bytes", int64(n)*partialBytes),
		obs.KV("partitions", n))
	c.addShuffle(int64(n) * partialBytes)
	ssp.End()
}

func (c *Cluster) mapOp(h *hop.Hop, inputs []*matrix.Matrix, sp obs.Span) (*matrix.Matrix, bool) {
	main := inputs[0]
	if main.Rows < 2 {
		return nil, false
	}
	aligned := func(m *matrix.Matrix) bool { return m.Rows == main.Rows && m.Cols > 1 }
	var bcast []*matrix.Matrix
	for _, in := range inputs[1:] {
		if !aligned(in) {
			bcast = append(bcast, in)
		}
	}
	c.broadcastAll(bcast, sp)
	out := matrix.NewDense(main.Rows, int(h.Cols))
	od := out.Dense()
	c.runPanels(sp, main.Rows, func(_, lo, hi int) {
		var part *matrix.Matrix
		switch h.Kind {
		case hop.OpUnary:
			part = matrix.Unary(h.UnOp, rowSlice(main, lo, hi))
		default:
			b := inputs[1]
			rb := b
			if b.Rows == main.Rows && b.Rows > 1 {
				rb = rowSlice(b, lo, hi)
			}
			part = matrix.Binary(h.BinOp, rowSlice(main, lo, hi), rb)
		}
		pd := part.ToDense().Dense()
		copy(od[lo*out.Cols:], pd)
	})
	return out.InPreferredFormat(), true
}

func (c *Cluster) aggOp(h *hop.Hop, inputs []*matrix.Matrix, sp obs.Span) (*matrix.Matrix, bool) {
	main := inputs[0]
	if main.Rows < 2 || h.AggDir == matrix.DirCol && h.AggOp != matrix.AggSum {
		return nil, false
	}
	switch h.AggDir {
	case matrix.DirRow:
		out := matrix.NewDense(main.Rows, 1)
		od := out.Dense()
		c.runPanels(sp, main.Rows, func(_, lo, hi int) {
			part := matrix.Agg(h.AggOp, matrix.DirRow, rowSlice(main, lo, hi))
			copy(od[lo:hi], part.Dense())
		})
		return out, true
	case matrix.DirCol, matrix.DirAll:
		var mu sync.Mutex
		var partials []*matrix.Matrix
		n := c.runPanels(sp, main.Rows, func(_, lo, hi int) {
			part := matrix.Agg(h.AggOp, h.AggDir, rowSlice(main, lo, hi))
			mu.Lock()
			partials = append(partials, part)
			mu.Unlock()
		})
		// Partial aggregates shuffle to the reducer.
		c.shuffle(sp, n, partials[0].SizeBytes())
		acc := partials[0]
		for _, p := range partials[1:] {
			switch h.AggOp {
			case matrix.AggMin:
				acc = matrix.Binary(matrix.BinMin, acc, p)
			case matrix.AggMax:
				acc = matrix.Binary(matrix.BinMax, acc, p)
			default:
				acc = matrix.Binary(matrix.BinAdd, acc, p)
			}
		}
		if h.AggOp == matrix.AggMean {
			return nil, false // mean over partials needs counts; fall back
		}
		return acc, true
	}
	return nil, false
}

// matMult executes the broadcast-based mapmm: the larger side stays
// partitioned, the smaller side is broadcast.
func (c *Cluster) matMult(h *hop.Hop, inputs []*matrix.Matrix, sp obs.Span) (*matrix.Matrix, bool) {
	a, b := inputs[0], inputs[1]
	if b.SizeBytes() > c.ExecutorMemBytes/2 || a.Rows < 2 {
		return nil, false
	}
	c.broadcastAll([]*matrix.Matrix{b}, sp)
	out := matrix.NewDense(a.Rows, b.Cols)
	od := out.Dense()
	c.runPanels(sp, a.Rows, func(_, lo, hi int) {
		part := matrix.MatMult(rowSlice(a, lo, hi), b)
		copy(od[lo*out.Cols:], part.Dense())
	})
	return out, true
}

// spoof executes a fused operator over row panels of the main input with
// broadcast side inputs, reducing aggregated variants.
func (c *Cluster) spoof(h *hop.Hop, inputs []*matrix.Matrix, sp obs.Span) (*matrix.Matrix, bool) {
	op, ok := h.Spoof.(*cplan.Operator)
	if !ok {
		return nil, false
	}
	main := inputs[0]
	if main.Rows < 2 {
		return nil, false
	}
	// Row templates require whole rows per block (§4.1): enforced at plan
	// time, double-checked here.
	if op.Plan.Type == cplan.TemplateRow && main.Cols > c.Blocksize {
		return nil, false
	}
	// Aggregated variants reduce partials by addition: only sums are safe.
	for _, a := range append([]matrix.AggOp{op.Plan.AggOp}, op.Plan.AggOps...) {
		if a != matrix.AggSum && a != matrix.AggSumSq {
			if op.Plan.Type == cplan.TemplateCell && op.Plan.Cell == cplan.CellNoAgg {
				continue
			}
			if op.Plan.Type == cplan.TemplateCell && op.Plan.Cell == cplan.CellRowAgg {
				continue
			}
			return nil, false
		}
	}
	c.broadcastAll(inputs[1:], sp)

	rowAligned := op.Plan.Type == cplan.TemplateCell &&
		(op.Plan.Cell == cplan.CellNoAgg || op.Plan.Cell == cplan.CellRowAgg) ||
		op.Plan.Type == cplan.TemplateRow &&
			(op.RowProg.RowT == cplan.RowNoAgg || op.RowProg.RowT == cplan.RowRowAgg) ||
		op.Plan.Type == cplan.TemplateOuter && op.Plan.Out == cplan.OuterRightMM

	slicedInputs := func(lo, hi int) []*matrix.Matrix {
		ins := append([]*matrix.Matrix(nil), inputs...)
		ins[0] = rowSlice(main, lo, hi)
		// Outer's U and row-aligned side inputs are co-partitioned.
		for i := 1; i < len(ins); i++ {
			if ins[i].Rows == main.Rows && main.Rows > 1 && ins[i].Cols >= 1 {
				ins[i] = rowSlice(ins[i], lo, hi)
			}
		}
		return ins
	}

	if rowAligned {
		var mu sync.Mutex
		parts := map[int]*matrix.Matrix{}
		c.runPanels(sp, main.Rows, func(p, lo, hi int) {
			res, err := rt.ExecSpoof(h, slicedInputs(lo, hi))
			if err != nil {
				return
			}
			mu.Lock()
			parts[p] = res
			mu.Unlock()
		})
		ps := c.panels(main.Rows)
		if len(parts) != len(ps) {
			return nil, false
		}
		out := parts[0]
		for i := 1; i < len(ps); i++ {
			out = matrix.RBind(out, parts[i])
		}
		return out.InPreferredFormat(), true
	}
	// Aggregated variants: per-panel partials reduced by addition.
	var mu sync.Mutex
	var partials []*matrix.Matrix
	bad := false
	n := c.runPanels(sp, main.Rows, func(_, lo, hi int) {
		res, err := rt.ExecSpoof(h, slicedInputs(lo, hi))
		if err != nil {
			mu.Lock()
			bad = true
			mu.Unlock()
			return
		}
		mu.Lock()
		partials = append(partials, res)
		mu.Unlock()
	})
	if bad || len(partials) == 0 {
		return nil, false
	}
	c.shuffle(sp, n, partials[0].SizeBytes())
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = matrix.Binary(matrix.BinAdd, acc, p)
	}
	return acc, true
}
