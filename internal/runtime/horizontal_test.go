package runtime

import (
	"math"
	"testing"

	"sysml/internal/cplan"
	"sysml/internal/matrix"
	"sysml/internal/par"
)

// hfuseGroupPlan is the flagship sibling group — colSums(X), sum(X^2),
// X*3+1 — merged into one Horizontal plan.
func hfuseGroupPlan() *cplan.Plan {
	roots := []*cplan.CNode{
		cplan.Main(0),
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0)),
		cplan.Binary(matrix.BinAdd,
			cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Lit(3)), cplan.Lit(1)),
	}
	return &cplan.Plan{
		Type:       cplan.TemplateHorizontal,
		Roots:      roots,
		AggOps:     []matrix.AggOp{matrix.AggSum, matrix.AggSum, matrix.AggSum},
		HKinds:     []cplan.CellType{cplan.CellColAgg, cplan.CellFullAgg, cplan.CellNoAgg},
		SparseSafe: cplan.ProbeSparseSafe(roots...),
	}
}

// hfuseGroupWant computes the group's per-member reference results with the
// plain matrix kernels.
func hfuseGroupWant(x *matrix.Matrix) []*matrix.Matrix {
	return []*matrix.Matrix{
		matrix.Agg(matrix.AggSum, matrix.DirCol, x),
		matrix.NewScalar(matrix.Agg(matrix.AggSumSq, matrix.DirAll, x).Scalar()),
		matrix.ScalarRight(matrix.BinAdd, matrix.ScalarRight(matrix.BinMul, x, 3), 1),
	}
}

func checkHorizontalOuts(t *testing.T, tag string, got, want []*matrix.Matrix) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d outputs, want %d", tag, len(got), len(want))
	}
	for q := range want {
		gd, wd := got[q].ToDense().Dense(), want[q].ToDense().Dense()
		if len(gd) != len(wd) {
			t.Fatalf("%s root %d: shape mismatch", tag, q)
		}
		for i := range wd {
			tol := 1e-9*math.Abs(wd[i]) + 1e-12
			if math.Abs(gd[i]-wd[i]) > tol {
				t.Fatalf("%s root %d cell %d: got %v want %v", tag, q, i, gd[i], wd[i])
			}
		}
	}
}

// TestHorizontalMatchesPerMember sweeps shapes x sparsities x worker
// counts and checks the merged single-pass execution against per-member
// kernel results within 1e-9.
func TestHorizontalMatchesPerMember(t *testing.T) {
	p := hfuseGroupPlan()
	op := cplan.Compile(p, "TMPH")
	if op.HFused == nil {
		t.Fatal("flagship affine group must select the fused body")
	}
	shapes := [][2]int{{1, 1}, {1, 64}, {64, 1}, {17, 31}, {128, 200}, {3, 1000}}
	for _, sh := range shapes {
		for _, sp := range []float64{1, 0.3, 0.01} {
			x := matrix.Rand(sh[0], sh[1], sp, -2, 2, int64(sh[0]*1000+sh[1]))
			want := hfuseGroupWant(x)
			for _, workers := range []int{1, 2, 7} {
				ec := matrix.Ctx{Par: par.NewPool(workers)}
				got := execHorizontal(ec, op, x, nil, nil)
				checkHorizontalOuts(t, "dense", got, want)
			}
		}
	}
}

// TestHorizontalSparseIteration checks the sparse-safe non-zero iteration
// path (all roots sparse-safe) against per-member kernels, including the
// same-pattern CSR NoAgg output.
func TestHorizontalSparseIteration(t *testing.T) {
	roots := []*cplan.CNode{
		cplan.Main(0),
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0)),
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Lit(2)),
	}
	p := &cplan.Plan{
		Type:       cplan.TemplateHorizontal,
		Roots:      roots,
		AggOps:     []matrix.AggOp{matrix.AggSum, matrix.AggSum, matrix.AggSum},
		HKinds:     []cplan.CellType{cplan.CellColAgg, cplan.CellFullAgg, cplan.CellNoAgg},
		SparseSafe: cplan.ProbeSparseSafe(roots...),
	}
	if !p.SparseSafe {
		t.Fatal("group must probe sparse-safe")
	}
	op := cplan.Compile(p, "TMPHS")
	x := matrix.Rand(80, 60, 0.1, -2, 2, 9)
	if !x.IsSparse() {
		t.Fatal("test input must be sparse")
	}
	got := ExecHorizontal(op, x, nil)
	if !got[2].IsSparse() {
		t.Fatal("sparse-safe NoAgg output must stay sparse")
	}
	want := []*matrix.Matrix{
		matrix.Agg(matrix.AggSum, matrix.DirCol, x),
		matrix.NewScalar(matrix.Agg(matrix.AggSumSq, matrix.DirAll, x).Scalar()),
		matrix.ScalarRight(matrix.BinMul, x, 2),
	}
	checkHorizontalOuts(t, "sparse", got, want)
}

// TestHorizontalFusedMatchesInterpreted pins the fused whole-group body
// against the interpreted genexec reference (which drops every specialized
// form, HFused included).
func TestHorizontalFusedMatchesInterpreted(t *testing.T) {
	p := hfuseGroupPlan()
	fused := cplan.Compile(p, "TMPF")
	interp := cplan.CompileInterpreted(p, "TMPI")
	if fused.HFused == nil {
		t.Fatal("compiled operator must carry the fused body")
	}
	if interp.HFused != nil {
		t.Fatal("interpreted operator must not carry the fused body")
	}
	for _, workers := range []int{1, 3, 8} {
		ec := matrix.Ctx{Par: par.NewPool(workers)}
		x := matrix.Rand(97, 113, 1, -1, 1, int64(workers))
		got := execHorizontal(ec, fused, x, nil, nil)
		want := execHorizontal(ec, interp, x, nil, nil)
		checkHorizontalOuts(t, "fused-vs-interp", got, want)
	}
}

// TestHorizontalRowAggFusedClosedForm exercises the per-row closed form
// dst[i] = A*S1 + B*S2 + C*n: rowSums(X*2+1) alongside sum(X^2) and a map.
func TestHorizontalRowAggFusedClosedForm(t *testing.T) {
	roots := []*cplan.CNode{
		cplan.Binary(matrix.BinAdd,
			cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Lit(2)), cplan.Lit(1)),
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0)),
		cplan.Binary(matrix.BinSub, cplan.Main(0), cplan.Lit(4)),
	}
	p := &cplan.Plan{
		Type:   cplan.TemplateHorizontal,
		Roots:  roots,
		AggOps: []matrix.AggOp{matrix.AggSum, matrix.AggSum, matrix.AggSum},
		HKinds: []cplan.CellType{cplan.CellRowAgg, cplan.CellFullAgg, cplan.CellNoAgg},
	}
	op := cplan.Compile(p, "TMPR")
	if op.HFused == nil {
		t.Fatal("row-aggregate affine group must select the fused body")
	}
	x := matrix.Rand(53, 29, 1, -3, 3, 11)
	got := ExecHorizontal(op, x, nil)
	want := []*matrix.Matrix{
		matrix.Agg(matrix.AggSum, matrix.DirRow,
			matrix.ScalarRight(matrix.BinAdd, matrix.ScalarRight(matrix.BinMul, x, 2), 1)),
		matrix.NewScalar(matrix.Agg(matrix.AggSumSq, matrix.DirAll, x).Scalar()),
		matrix.ScalarRight(matrix.BinSub, x, 4),
	}
	checkHorizontalOuts(t, "rowagg", got, want)
}

// TestHorizontalFusedDeclinesNonAffine: a non-affine root (exp) keeps the
// per-root dispatch path, and results still match the reference.
func TestHorizontalFusedDeclinesNonAffine(t *testing.T) {
	roots := []*cplan.CNode{
		cplan.Main(0),
		cplan.Unary(matrix.UnExp, cplan.Main(0)),
	}
	p := &cplan.Plan{
		Type:   cplan.TemplateHorizontal,
		Roots:  roots,
		AggOps: []matrix.AggOp{matrix.AggSum, matrix.AggSum},
		HKinds: []cplan.CellType{cplan.CellColAgg, cplan.CellFullAgg},
	}
	op := cplan.Compile(p, "TMPE")
	if op.HFused != nil {
		t.Fatal("exp root must decline the fused body")
	}
	x := matrix.Rand(40, 25, 1, -1, 1, 13)
	got := ExecHorizontal(op, x, nil)
	want := []*matrix.Matrix{
		matrix.Agg(matrix.AggSum, matrix.DirCol, x),
		matrix.NewScalar(matrix.Agg(matrix.AggSum, matrix.DirAll, matrix.Unary(matrix.UnExp, x)).Scalar()),
	}
	checkHorizontalOuts(t, "nonaffine", got, want)
}

// TestHorizontalChunkDispatched pins the dispatch counter classification:
// the fused group reports a chunk dispatch on dense input and none under
// sparse non-zero iteration.
func TestHorizontalChunkDispatched(t *testing.T) {
	p := hfuseGroupPlan()
	op := cplan.Compile(p, "TMPD")
	dense := matrix.Rand(32, 32, 1, -1, 1, 3)
	if !ChunkDispatched(op, []*matrix.Matrix{dense}) {
		t.Fatal("dense fused group must report chunk dispatch")
	}
	if ChunkDispatched(cplan.CompileInterpreted(p, "TMPDI"), []*matrix.Matrix{dense}) {
		t.Fatal("interpreted operator must not report chunk dispatch")
	}
}
