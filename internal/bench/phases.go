package bench

import (
	"fmt"
	"time"

	"sysml/internal/matrix"
)

// PhaseAttribution breaks one representative workload (the Fig. 8e
// mmchain t(X)(Xv) plus a cellwise aggregate) down by pipeline phase per
// mode, attributing wall time to script compilation, fusion plan
// optimization + code generation, and kernel execution. This separates
// codegen overhead from runtime benefit: Base pays nothing in optimize
// but more in execute; the Gen variants shift time the other way.
func PhaseAttribution(o Options) *Table {
	rows := o.rows(50000)
	cols := 100
	x := matrix.Rand(rows, cols, 1, -1, 1, 7)
	v := matrix.Rand(cols, 1, 1, -1, 1, 8)
	inputs := map[string]*matrix.Matrix{"X": x, "v": v}
	script := `
		w = t(X) %*% (X %*% v)
		s = sum(X * X)
	`
	t := &Table{
		Title:   fmt.Sprintf("Phase attribution, t(X)(Xv) + sum(X*X), %dx%d", rows, cols),
		Columns: []string{"mode", "parse", "compile", "optimize", "execute", "total"},
	}
	for _, mode := range Modes {
		phases, err := PhaseBreakdown(mode, script, inputs, nil)
		if err != nil {
			panic(fmt.Sprintf("phase breakdown failed (%v): %v", mode, err))
		}
		var total time.Duration
		for _, d := range phases {
			total += d
		}
		t.Add(mode.String(), ms(phases["parse"]), ms(phases["compile"]),
			ms(phases["optimize"]), ms(phases["execute"]), ms(total))
	}
	return t
}
