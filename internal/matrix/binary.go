package matrix

import "fmt"

// Binary evaluates C = A op B on the default execution context.
func Binary(op BinOp, a, b *Matrix) *Matrix { return Ctx{}.Binary(op, a, b) }

// Binary evaluates C = A op B element-wise. Supported shapes: identical
// shapes, scalar (1×1) on either side, column-vector (r×1) broadcast on
// either side, and row-vector (1×c) broadcast of the right side. Sparse
// inputs produce sparse outputs whenever the operation is sparse-safe.
func (ctx Ctx) Binary(op BinOp, a, b *Matrix) *Matrix {
	switch {
	case b.Rows == 1 && b.Cols == 1:
		return ctx.ScalarRight(op, a, b.Scalar())
	case a.Rows == 1 && a.Cols == 1:
		return ctx.ScalarLeft(op, a.Scalar(), b)
	case a.Rows == b.Rows && a.Cols == b.Cols:
		return ctx.binarySameShape(op, a, b)
	case b.Rows == a.Rows && b.Cols == 1:
		return ctx.binaryColVector(op, a, b, false)
	case a.Cols == 1 && b.Cols > 1 && a.Rows == b.Rows:
		return ctx.binaryColVector(op, b, a, true)
	case b.Rows == 1 && b.Cols == a.Cols:
		return ctx.binaryRowVector(op, a, b, false)
	case a.Rows == 1 && a.Cols == b.Cols && b.Rows > 1:
		return ctx.binaryRowVector(op, b, a, true)
	}
	panic(fmt.Sprintf("matrix: incompatible shapes %dx%d %s %dx%d", a.Rows, a.Cols, op, b.Rows, b.Cols))
}

// ScalarRight evaluates C = A op s on the default execution context.
func ScalarRight(op BinOp, a *Matrix, s float64) *Matrix { return Ctx{}.ScalarRight(op, a, s) }

// ScalarRight evaluates C = A op s.
func (ctx Ctx) ScalarRight(op BinOp, a *Matrix, s float64) *Matrix {
	sparseSafe := op.Apply(0, s) == 0
	if a.IsSparse() && sparseSafe {
		out := a.Clone()
		vals := out.sparse.Values
		for k := range vals {
			vals[k] = op.Apply(vals[k], s)
		}
		return out
	}
	ad := a.ToDense().dense
	out := ctx.NewDense(a.Rows, a.Cols)
	ctx.Par.For(len(ad), 4096, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out.dense[k] = op.Apply(ad[k], s)
		}
	})
	return out
}

// ScalarLeft evaluates C = s op B on the default execution context.
func ScalarLeft(op BinOp, s float64, b *Matrix) *Matrix { return Ctx{}.ScalarLeft(op, s, b) }

// ScalarLeft evaluates C = s op B.
func (ctx Ctx) ScalarLeft(op BinOp, s float64, b *Matrix) *Matrix {
	sparseSafe := op.Apply(s, 0) == 0
	if b.IsSparse() && sparseSafe {
		out := b.Clone()
		vals := out.sparse.Values
		for k := range vals {
			vals[k] = op.Apply(s, vals[k])
		}
		return out
	}
	bd := b.ToDense().dense
	out := ctx.NewDense(b.Rows, b.Cols)
	ctx.Par.For(len(bd), 4096, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out.dense[k] = op.Apply(s, bd[k])
		}
	})
	return out
}

func (ctx Ctx) binarySameShape(op BinOp, a, b *Matrix) *Matrix {
	// Sparse-driver cases: a sparse and op(0,y)==0, or symmetric for mul.
	if a.IsSparse() && op.SparseSafeLeft() {
		return sparseDriverLeft(op, a, b)
	}
	if b.IsSparse() && op == BinMul {
		return sparseDriverLeft(op, b, a)
	}
	if a.IsSparse() && b.IsSparse() && op.SparseSafe() {
		return sparseMerge(op, a, b)
	}
	ad, bd := a.ToDense().dense, b.ToDense().dense
	out := ctx.NewDense(a.Rows, a.Cols)
	ctx.Par.For(len(ad), 4096, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out.dense[k] = op.Apply(ad[k], bd[k])
		}
	})
	return out
}

// sparseDriverLeft evaluates op over the nonzeros of sparse a only; valid
// when op(0, y) == 0 for all y.
func sparseDriverLeft(op BinOp, a, b *Matrix) *Matrix {
	as := a.sparse
	csr := &CSR{
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int, 0, as.Nnz()),
		Values: make([]float64, 0, as.Nnz()),
	}
	// When the driver is the right operand (mul only), commutativity makes
	// op(vals[k], b) == op(b, vals[k]), so a single code path suffices.
	for i := 0; i < a.Rows; i++ {
		vals, cols := as.Row(i)
		for k, j := range cols {
			if v := op.Apply(vals[k], b.At(i, j)); v != 0 {
				csr.ColIdx = append(csr.ColIdx, j)
				csr.Values = append(csr.Values, v)
			}
		}
		csr.RowPtr[i+1] = len(csr.Values)
	}
	return NewSparseCSR(a.Rows, a.Cols, csr)
}

// sparseMerge merges two sparse matrices row-wise for sparse-safe ops.
func sparseMerge(op BinOp, a, b *Matrix) *Matrix {
	as, bs := a.sparse, b.sparse
	csr := &CSR{RowPtr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		avals, acols := as.Row(i)
		bvals, bcols := bs.Row(i)
		ka, kb := 0, 0
		for ka < len(acols) || kb < len(bcols) {
			var j int
			var va, vb float64
			switch {
			case kb >= len(bcols) || (ka < len(acols) && acols[ka] < bcols[kb]):
				j, va = acols[ka], avals[ka]
				ka++
			case ka >= len(acols) || bcols[kb] < acols[ka]:
				j, vb = bcols[kb], bvals[kb]
				kb++
			default:
				j, va, vb = acols[ka], avals[ka], bvals[kb]
				ka, kb = ka+1, kb+1
			}
			if v := op.Apply(va, vb); v != 0 {
				csr.ColIdx = append(csr.ColIdx, j)
				csr.Values = append(csr.Values, v)
			}
		}
		csr.RowPtr[i+1] = len(csr.Values)
	}
	return NewSparseCSR(a.Rows, a.Cols, csr)
}

// binaryColVector evaluates A op v for a column vector v (r×1); swap
// indicates the vector is the left operand (v op A).
func (ctx Ctx) binaryColVector(op BinOp, a, v *Matrix, swap bool) *Matrix {
	vd := v.ToDense().dense
	if a.IsSparse() && ((!swap && op.SparseSafeLeft()) || (swap && op == BinMul)) {
		as := a.sparse
		csr := &CSR{RowPtr: make([]int, a.Rows+1)}
		for i := 0; i < a.Rows; i++ {
			vals, cols := as.Row(i)
			for k, j := range cols {
				var r float64
				if swap {
					r = op.Apply(vd[i], vals[k])
				} else {
					r = op.Apply(vals[k], vd[i])
				}
				if r != 0 {
					csr.ColIdx = append(csr.ColIdx, j)
					csr.Values = append(csr.Values, r)
				}
			}
			csr.RowPtr[i+1] = len(csr.Values)
		}
		return NewSparseCSR(a.Rows, a.Cols, csr)
	}
	ad := a.ToDense().dense
	out := ctx.NewDense(a.Rows, a.Cols)
	n := a.Cols
	ctx.Par.For(a.Rows, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := vd[i]
			off := i * n
			for j := 0; j < n; j++ {
				if swap {
					out.dense[off+j] = op.Apply(s, ad[off+j])
				} else {
					out.dense[off+j] = op.Apply(ad[off+j], s)
				}
			}
		}
	})
	return out
}

// binaryRowVector evaluates A op v for a row vector v (1×c); swap
// indicates the vector is the left operand (v op A).
func (ctx Ctx) binaryRowVector(op BinOp, a, v *Matrix, swap bool) *Matrix {
	vd := v.ToDense().dense
	if a.IsSparse() && ((!swap && op.SparseSafeLeft()) || (swap && op == BinMul)) {
		as := a.sparse
		csr := &CSR{RowPtr: make([]int, a.Rows+1)}
		for i := 0; i < a.Rows; i++ {
			vals, cols := as.Row(i)
			for k, j := range cols {
				var r float64
				if swap {
					r = op.Apply(vd[j], vals[k])
				} else {
					r = op.Apply(vals[k], vd[j])
				}
				if r != 0 {
					csr.ColIdx = append(csr.ColIdx, j)
					csr.Values = append(csr.Values, r)
				}
			}
			csr.RowPtr[i+1] = len(csr.Values)
		}
		return NewSparseCSR(a.Rows, a.Cols, csr)
	}
	ad := a.ToDense().dense
	out := ctx.NewDense(a.Rows, a.Cols)
	n := a.Cols
	ctx.Par.For(a.Rows, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off := i * n
			for j := 0; j < n; j++ {
				if swap {
					out.dense[off+j] = op.Apply(vd[j], ad[off+j])
				} else {
					out.dense[off+j] = op.Apply(ad[off+j], vd[j])
				}
			}
		}
	})
	return out
}

// Unary evaluates C = f(A) on the default execution context.
func Unary(op UnOp, a *Matrix) *Matrix { return Ctx{}.Unary(op, a) }

// Unary evaluates C = f(A) element-wise; sparse-safe functions preserve the
// sparse representation.
func (ctx Ctx) Unary(op UnOp, a *Matrix) *Matrix {
	if a.IsSparse() && op.SparseSafe() {
		out := a.Clone()
		vals := out.sparse.Values
		for k := range vals {
			vals[k] = op.Apply(vals[k])
		}
		return out
	}
	ad := a.ToDense().dense
	out := ctx.NewDense(a.Rows, a.Cols)
	ctx.Par.For(len(ad), 4096, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out.dense[k] = op.Apply(ad[k])
		}
	})
	return out
}
