package bench

import (
	"fmt"
	"io"
	"time"

	"sysml/internal/algos"
	"sysml/internal/codegen"
	"sysml/internal/data"
	"sysml/internal/dist"
	"sysml/internal/matrix"
)

// Table6Distributed reproduces Table 6: end-to-end runtimes of the four
// data-intensive algorithms on the simulated distributed backend. Reported
// time is wall time plus the simulated network time implied by broadcast
// and shuffle volumes; the heuristics' eager fusion of driver-computable
// vector operations into distributed operators shows up as broadcast
// overhead (the paper's Gen-FA slowdowns).
func Table6Distributed(o Options) *Table {
	t := &Table{
		Title:   "Table 6: Runtime of Distributed Algorithms [s] (wall + simulated net)",
		Columns: append([]string{"algorithm", "data"}, append(ModeNames(), "Gen bcastMB", "FA bcastMB")...),
	}
	type ds struct {
		name string
		gen  func(a algos.Algorithm) map[string]*matrix.Matrix
	}
	mk := func(x *matrix.Matrix, a algos.Algorithm, seed int64) map[string]*matrix.Matrix {
		in := map[string]*matrix.Matrix{"X": x}
		switch a.Name {
		case "L2SVM":
			in["Y"] = data.BinaryLabels(x, 0.05, seed)
		case "GLM":
			in["Y"] = data.ZeroOneLabels(data.BinaryLabels(x, 0.05, seed))
		case "MLogreg":
			in["Yfull"] = data.MultiClassIndicator(x, 3, seed)
		case "KMeans":
			in["C0"] = matrix.Rand(5, x.Cols, 1, -1, 1, seed)
		}
		return in
	}
	datasets := []ds{
		{"D-like dense", func(a algos.Algorithm) map[string]*matrix.Matrix {
			return mk(data.Dense(o.rows(200000), 100, 71), a, 81)
		}},
		{"S-like sparse", func(a algos.Algorithm) map[string]*matrix.Matrix {
			return mk(data.Sparse(o.rows(200000), 500, 0.05, 72), a, 82)
		}},
		{"Mnist80m-like", func(a algos.Algorithm) map[string]*matrix.Matrix {
			return mk(data.MnistLike(o.rows(30000), 73), a, 83)
		}},
	}
	jobs := []struct {
		a         algos.Algorithm
		overrides map[string]float64
	}{
		{algos.L2SVM, map[string]float64{"maxiter": 5}},
		{algos.MLogreg, map[string]float64{"maxiter": 3, "inneriter": 3, "k": 3}},
		{algos.GLM, map[string]float64{"maxiter": 3, "inneriter": 3}},
		{algos.KMeans, map[string]float64{"maxiter": 5}},
	}
	for _, job := range jobs {
		for _, d := range datasets {
			inputs := d.gen(job.a)
			row := []string{job.a.Name, d.name}
			var genBcast, faBcast int64
			for _, mode := range Modes {
				cfg := codegen.DefaultConfig()
				cfg.Mode = mode
				// Force the feature-matrix operators onto the cluster.
				cfg.Exec.MemBudgetBytes = inputs["X"].SizeBytes() / 2
				cl := dist.NewCluster()
				cl.Blocksize = 1000
				start := time.Now()
				_, err := job.a.Run(cfg, inputs, job.overrides, cl, io.Discard)
				wall := time.Since(start)
				if err != nil {
					row = append(row, "ERR")
					continue
				}
				total := wall + cl.NetTime()
				row = append(row, secs(total))
				switch mode {
				case codegen.ModeGen:
					genBcast = cl.BytesBroadcast()
				case codegen.ModeGenFA:
					faBcast = cl.BytesBroadcast()
				}
			}
			row = append(row, fmt.Sprintf("%.1f", float64(genBcast)/1e6),
				fmt.Sprintf("%.1f", float64(faBcast)/1e6))
			t.Add(row...)
		}
	}
	return t
}
