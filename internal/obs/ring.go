package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: an always-on, fixed-size ring of completed serving
// requests. Every request leaves a cheap record (identity, latency split,
// status); requests that were slow or failed additionally retain their full
// trace-span tree (tail sampling), so the one request that mattered is
// still debuggable after the fact without paying span-retention cost on the
// healthy 99%.

// RequestRecord is one completed request in the flight recorder.
type RequestRecord struct {
	// ID is the request ID (client-supplied X-Request-ID or generated).
	ID string `json:"id"`
	// Tenant is the principal the request ran as.
	Tenant string `json:"tenant"`
	// PlanKey fingerprints the compiled plan the request resolved to
	// (tenant + script + input shapes); same-key requests micro-batch.
	PlanKey string `json:"plan_key,omitempty"`
	// Start is the request's arrival time.
	Start time.Time `json:"start"`
	// Batch is the micro-batch size the request rode in; Leader marks the
	// request that executed the batch.
	Batch  int  `json:"batch"`
	Leader bool `json:"leader"`
	// QueueNS, ExecNS, and TotalNS split the request's latency:
	// queueing (batch window + session wait), script execution, and
	// arrival-to-completion, in nanoseconds.
	QueueNS int64 `json:"queue_ns"`
	ExecNS  int64 `json:"exec_ns"`
	TotalNS int64 `json:"total_ns"`
	// Status is the HTTP status the request was answered with.
	Status int `json:"status"`
	// Error is the error message for non-200 requests.
	Error string `json:"error,omitempty"`
	// CompressedExec and CompressedFallback count the operators of this
	// request that executed directly over compressed column groups versus
	// fell back to dense (deltas of the session's compress.exec.* counters).
	CompressedExec     int64 `json:"compressed_exec,omitempty"`
	CompressedFallback int64 `json:"compressed_fallback,omitempty"`
	// Sampled reports whether the span tree was retained (the request was
	// slower than the recorder's threshold or ended in error).
	Sampled bool `json:"sampled"`
	// Spans is the request's full trace-span tree (request → run →
	// compile/optimize/execute → per-operator), present only when Sampled.
	Spans []TraceEvent `json:"spans,omitempty"`
}

// FlightRecorder keeps the last N completed request records in a ring,
// tail-sampling span trees for slow or failed requests. All methods are
// safe for concurrent use and nil-safe, so a serving path can thread an
// optional recorder without nil checks.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []RequestRecord
	next int // ring index of the next write
	full bool

	slow time.Duration // retain spans at/over this total latency (<=0: always)

	recorded atomic.Int64
	sampled  atomic.Int64
}

// DefaultFlightRecorderSize is the ring capacity when NewFlightRecorder is
// given a non-positive size.
const DefaultFlightRecorderSize = 256

// NewFlightRecorder returns a recorder keeping the last size requests
// (DefaultFlightRecorderSize when size <= 0). Requests whose total latency
// reaches slow, or that ended in error, retain their full span tree;
// slow <= 0 retains every request's spans.
func NewFlightRecorder(size int, slow time.Duration) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &FlightRecorder{ring: make([]RequestRecord, size), slow: slow}
}

// SlowThreshold returns the tail-sampling latency threshold.
func (f *FlightRecorder) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.slow
}

// Size returns the ring capacity.
func (f *FlightRecorder) Size() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Record stores one completed request. spans is invoked only when the
// record tail-samples (error status or total latency at/over the
// threshold), so callers can defer building the span tree to the slow
// path; a nil spans records without a tree.
func (f *FlightRecorder) Record(rec RequestRecord, spans func() []TraceEvent) {
	if f == nil {
		return
	}
	rec.Sampled = rec.Error != "" || (rec.Status != 0 && rec.Status != 200) ||
		f.slow <= 0 || time.Duration(rec.TotalNS) >= f.slow
	if rec.Sampled && spans != nil {
		rec.Spans = spans()
	} else {
		rec.Spans = nil
	}
	f.recorded.Add(1)
	if rec.Sampled {
		f.sampled.Add(1)
	}
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next++
	if f.next == len(f.ring) {
		f.next, f.full = 0, true
	}
	f.mu.Unlock()
}

// Records returns the retained request records, newest first, with span
// trees stripped (fetch one record by ID via Get for its spans).
func (f *FlightRecorder) Records() []RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = len(f.ring)
	}
	out := make([]RequestRecord, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent write.
		idx := f.next - 1 - i
		if idx < 0 {
			idx += len(f.ring)
		}
		rec := f.ring[idx]
		rec.Spans = nil
		out = append(out, rec)
	}
	return out
}

// Get returns the retained record with the given request ID, including its
// span tree when the request tail-sampled. The newest record wins if an ID
// repeats.
func (f *FlightRecorder) Get(id string) (RequestRecord, bool) {
	if f == nil {
		return RequestRecord{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = len(f.ring)
	}
	for i := 0; i < n; i++ {
		idx := f.next - 1 - i
		if idx < 0 {
			idx += len(f.ring)
		}
		if f.ring[idx].ID == id {
			return f.ring[idx], true
		}
	}
	return RequestRecord{}, false
}

// Stats reports how many requests were recorded and how many tail-sampled
// a span tree over the recorder's lifetime (not bounded by the ring).
func (f *FlightRecorder) Stats() (recorded, sampled int64) {
	if f == nil {
		return 0, 0
	}
	return f.recorded.Load(), f.sampled.Load()
}

// requestIDKey keys the request ID in a context.
type requestIDKey struct{}

// ContextWithRequestID returns a context carrying the request ID, threaded
// by the serving frontend into Session.RunContext so the run's root span is
// annotated with the originating request.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID carried by the context ("" if
// none).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
