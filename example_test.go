package sysml_test

import (
	"fmt"
	"strings"

	"sysml"
)

// ExampleSession_Run compiles and executes a script; every statement block
// runs through the fusion optimizer.
func ExampleSession_Run() {
	s := sysml.NewSession()
	s.Bind("X", sysml.NewDenseMatrixData(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	if err := s.Run(`
		s = sum(X * X)           # fused cell aggregate
		r = rowSums(X)
	`); err != nil {
		panic(err)
	}
	v, _ := s.Scalar("s")
	r, _ := s.Get("r")
	fmt.Printf("sum(X*X) = %g\n", v)
	fmt.Printf("rowSums = [%g %g]\n", r.At(0, 0), r.At(1, 0))
	// Output:
	// sum(X*X) = 91
	// rowSums = [6 15]
}

// ExampleSession_Explain shows the optimizer's plan report for a script
// without disturbing the session: the mmchain t(X)(Xv) fuses into a
// single Row-template operator.
func ExampleSession_Explain() {
	s := sysml.NewSession()
	s.Bind("X", sysml.RandMatrix(2000, 100, 1, -1, 1, 7))
	s.Bind("v", sysml.RandMatrix(100, 1, 1, -1, 1, 8))
	report, err := s.Explain(`w = t(X) %*% (X %*% v)`)
	if err != nil {
		panic(err)
	}
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "fused operators:") {
			fmt.Println(line)
		}
	}
	// Output:
	// fused operators: 1 (Row)
}

// ExampleConfig demonstrates selecting a plan-selection policy.
func ExampleConfig() {
	// fuse-no-redundancy heuristic
	s := sysml.NewSession(sysml.WithMode(sysml.ModeGenFNR))
	s.Bind("X", sysml.NewDenseMatrixData(2, 2, []float64{1, 2, 3, 4}))
	if err := s.Run(`y = sum(X + 1)`); err != nil {
		panic(err)
	}
	y, _ := s.Scalar("y")
	fmt.Println(y)
	// Output:
	// 14
}
