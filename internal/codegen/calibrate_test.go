package codegen_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/obs"
)

// synthEntry builds a cost-audit entry whose wall time follows the model's
// true prediction form tw + max(tr, tc) under the given ground-truth
// constants.
func synthEntry(op string, truth codegen.CostModel, readB, writeB, bcastB, flops float64) obs.AuditEntry {
	tr := readB/truth.ReadBW + bcastB/truth.BroadcastBW
	sec := writeB/truth.WriteBW + math.Max(tr, flops/truth.ComputeBW)
	return obs.AuditEntry{
		Op:             op,
		PredSec:        sec, // prediction quality is not under test here
		ActualSec:      sec,
		ActualFlops:    flops,
		ActualInBytes:  int64(readB + bcastB),
		ActualOutBytes: int64(writeB),
		BcastBytes:     int64(bcastB),
		Dist:           bcastB > 0,
	}
}

// feedSynthetic streams a mixed diet of read-bound, write-heavy,
// compute-bound, and broadcast-heavy observations generated from truth.
func feedSynthetic(c *codegen.Calibrator, truth codegen.CostModel) {
	for i := 0; i < 9; i++ {
		scale := 1 + float64(i)/8
		c.Observe(synthEntry("read", truth, 8e6*scale, 64, 0, 1e5))
		c.Observe(synthEntry("write", truth, 1e6, 8e6*scale, 0, 1e5))
		c.Observe(synthEntry("flop", truth, 1e6, 64, 0, 1e8*scale))
		c.Observe(synthEntry("bcast", truth, 1e6, 64, 4e6*scale, 1e5))
	}
}

// TestCalibratorRecoversConstants: fitting a clean synthetic workload must
// land every constant within 2x of the ground truth that generated it,
// even though the truth sits 4-8x away from the paper-default prior.
func TestCalibratorRecoversConstants(t *testing.T) {
	truth := codegen.CostModel{ReadBW: 8e9, WriteBW: 4e9, ComputeBW: 2e10, BroadcastBW: 1e9}
	cal := codegen.NewCalibrator(codegen.DefaultCostModel())
	feedSynthetic(cal, truth)
	// 32 accepted observations trip the automatic refit; the explicit call
	// only needs to be a no-op on the already-fitted window.
	cal.Refit()
	if cal.Gen() == 0 {
		t.Fatal("no refit changed the model generation")
	}
	got := cal.Model()
	check := func(name string, got, want float64) {
		t.Helper()
		if r := got / want; r < 0.5 || r > 2 {
			t.Errorf("%s fitted %.3g, truth %.3g (off %.2fx)", name, got, want, r)
		}
	}
	check("ReadBW", got.ReadBW, truth.ReadBW)
	check("WriteBW", got.WriteBW, truth.WriteBW)
	check("ComputeBW", got.ComputeBW, truth.ComputeBW)
	check("BroadcastBW", got.BroadcastBW, truth.BroadcastBW)

	st := cal.State()
	if st.Gen == 0 || st.Refits == 0 {
		t.Errorf("state gen=%d refits=%d after a material refit", st.Gen, st.Refits)
	}
	// Warm-up guard: the first observation of each of the 4 labels skipped.
	if st.Skipped != 4 {
		t.Errorf("skipped %d observations, want 4 warm-ups", st.Skipped)
	}
	if st.Samples != 4*9-4 {
		t.Errorf("accepted %d observations, want %d", st.Samples, 4*9-4)
	}
}

// TestCalibratorTooFewSamples: below the weighted sample floor the model
// must stay at the prior and the generation must not move.
func TestCalibratorTooFewSamples(t *testing.T) {
	truth := codegen.CostModel{ReadBW: 8e9, WriteBW: 4e9, ComputeBW: 2e10, BroadcastBW: 1e9}
	cal := codegen.NewCalibrator(codegen.DefaultCostModel())
	for i := 0; i < 5; i++ {
		cal.Observe(synthEntry("read", truth, 8e6, 64, 0, 1e5))
	}
	if cal.Refit() {
		t.Error("refit reported a model change on 4 accepted samples")
	}
	if got := cal.Model(); got != codegen.DefaultCostModel() {
		t.Errorf("model moved off the prior on insufficient data: %+v", got)
	}
}

// TestProfileRoundTrip: fitted constants survive Save -> LoadProfile ->
// ApplyProfile bit-exactly, and the applied profile becomes both model and
// prior of the receiving calibrator.
func TestProfileRoundTrip(t *testing.T) {
	truth := codegen.CostModel{ReadBW: 8e9, WriteBW: 4e9, ComputeBW: 2e10, BroadcastBW: 1e9}
	cal := codegen.NewCalibrator(codegen.DefaultCostModel())
	feedSynthetic(cal, truth)
	cal.Refit()
	p := cal.Profile()
	if p.Version != codegen.ProfileVersion {
		t.Fatalf("profile version %d, want %d", p.Version, codegen.ProfileVersion)
	}
	if p.Samples == 0 {
		t.Fatal("profile carries zero samples")
	}

	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := codegen.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != p {
		t.Errorf("round-trip mismatch:\nsaved  %+v\nloaded %+v", p, loaded)
	}

	fresh := codegen.NewCalibrator(codegen.DefaultCostModel())
	genBefore := fresh.Gen()
	if err := fresh.ApplyProfile(loaded); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Model(); got != p.CostModel() {
		t.Errorf("applied model %+v != profile constants %+v", got, p.CostModel())
	}
	st := fresh.State()
	if st.Prior != p.CostModel() {
		t.Errorf("profile did not become the fit prior: %+v", st.Prior)
	}
	if st.Source != "profile" {
		t.Errorf("source %q, want \"profile\"", st.Source)
	}
	if fresh.Gen() == genBefore {
		t.Error("applying a profile did not bump the generation")
	}
}

// TestLoadProfileRejects: unreadable files, corrupt JSON, schema version
// mismatches, implausible constants, and stale profiles must all fail
// LoadProfile so callers fall back to defaults.
func TestLoadProfileRejects(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().Unix()
	good := codegen.Profile{
		Version: codegen.ProfileVersion, CreatedUnix: now, Samples: 10,
		ReadBW: 8e9, WriteBW: 4e9, FlopRate: 2e10, BroadcastBW: 1e9,
	}
	cases := []struct {
		name    string
		prepare func(path string) error
	}{
		{"missing", func(path string) error { return nil }},
		{"corrupt", func(path string) error {
			return os.WriteFile(path, []byte("{not json"), 0o644)
		}},
		{"wrong-version", func(path string) error {
			p := good
			p.Version = codegen.ProfileVersion + 1
			return p.Save(path)
		}},
		{"implausible-rate", func(path string) error {
			p := good
			p.ReadBW = -1
			return p.Save(path)
		}},
		{"zero-rate", func(path string) error {
			p := good
			p.FlopRate = 0
			return p.Save(path)
		}},
		{"stale", func(path string) error {
			p := good
			p.CreatedUnix = time.Now().Add(-codegen.ProfileMaxAge - time.Hour).Unix()
			return p.Save(path)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".json")
			if err := tc.prepare(path); err != nil {
				t.Fatal(err)
			}
			if _, err := codegen.LoadProfile(path); err == nil {
				t.Fatalf("LoadProfile accepted a %s profile", tc.name)
			}
			// The fallback a rejecting caller takes: defaults, untouched.
			cal := codegen.NewCalibrator(codegen.DefaultCostModel())
			if cal.Model() != codegen.DefaultCostModel() {
				t.Error("fallback calibrator does not publish the defaults")
			}
		})
	}
	// Sanity: the unmodified profile loads.
	path := filepath.Join(dir, "good.json")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.LoadProfile(path); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}
