package hop

import (
	"strings"
	"testing"

	"sysml/internal/matrix"
)

func TestBuilderShapes(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 100, 10, -1)
	v := d.Read("v", 10, 1, -1)
	q := d.MatMult(x, v)
	if q.Rows != 100 || q.Cols != 1 {
		t.Fatalf("matmult dims %dx%d", q.Rows, q.Cols)
	}
	xt := d.Transpose(x)
	if xt.Rows != 10 || xt.Cols != 100 {
		t.Fatal("transpose dims")
	}
	h := d.MatMult(xt, q)
	if h.Rows != 10 || h.Cols != 1 {
		t.Fatal("chain dims")
	}
	s := d.Sum(h)
	if !s.IsScalar() {
		t.Fatal("sum must be scalar")
	}
	rs := d.RowSums(x)
	if rs.Rows != 100 || rs.Cols != 1 {
		t.Fatal("rowSums dims")
	}
	cs := d.ColSums(x)
	if cs.Rows != 1 || cs.Cols != 10 {
		t.Fatal("colSums dims")
	}
	ix := d.Index(x, 0, 100, 0, 5)
	if ix.Cols != 5 {
		t.Fatal("index dims")
	}
	cb := d.CBindOp(x, rs)
	if cb.Cols != 11 {
		t.Fatal("cbind dims")
	}
	rb := d.RBindOp(x, d.Read("Y", 5, 10, -1))
	if rb.Rows != 105 {
		t.Fatal("rbind dims")
	}
	rim := d.RowIndexMaxOp(x)
	if rim.Cols != 1 {
		t.Fatal("rowIndexMax dims")
	}
	dg := d.DiagOp(v)
	if dg.Rows != 10 || dg.Cols != 10 {
		t.Fatal("diag dims")
	}
}

func TestBroadcastShapes(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 100, 10, -1)
	cv := d.Read("c", 100, 1, -1)
	rv := d.Read("r", 1, 10, -1)
	s := d.Lit(3)
	if got := d.Binary(matrix.BinMul, x, cv); got.Rows != 100 || got.Cols != 10 {
		t.Fatal("col broadcast dims")
	}
	if got := d.Binary(matrix.BinAdd, x, rv); got.Rows != 100 || got.Cols != 10 {
		t.Fatal("row broadcast dims")
	}
	if got := d.Binary(matrix.BinMul, cv, x); got.Rows != 100 || got.Cols != 10 {
		t.Fatal("left col broadcast dims")
	}
	if got := d.Binary(matrix.BinMul, s, x); got.Rows != 100 || got.Cols != 10 {
		t.Fatal("scalar broadcast dims")
	}
}

func TestSparsityEstimates(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 1000, 1000, 10000) // sparsity 0.01
	y := d.Read("Y", 1000, 1000, -1)    // dense
	m := d.Binary(matrix.BinMul, x, y)
	if sp := m.Sparsity(); sp < 0.005 || sp > 0.02 {
		t.Fatalf("mul sparsity estimate %v", sp)
	}
	if !m.IsSparse() {
		t.Fatal("sparse*dense output should be estimated sparse")
	}
	a := d.Binary(matrix.BinAdd, x, y)
	if a.IsSparse() {
		t.Fatal("sparse+dense should be dense")
	}
	e := d.Unary(matrix.UnExp, x)
	if e.IsSparse() {
		t.Fatal("exp densifies")
	}
	ab := d.Unary(matrix.UnAbs, x)
	if !ab.IsSparse() {
		t.Fatal("abs preserves sparsity")
	}
	// Ultra-sparse matmult stays sparse-ish; dense matmult estimates dense.
	u := d.Read("U", 1000, 10, -1)
	vt := d.Read("Vt", 10, 1000, -1)
	uv := d.MatMult(u, vt)
	if uv.IsSparse() {
		t.Fatal("dense outer product must be dense")
	}
}

func TestTopoOrderAndParents(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 10, 10, -1)
	y := d.Read("Y", 10, 10, -1)
	m := d.Binary(matrix.BinMul, x, y)
	s1 := d.Sum(m)
	s2 := d.RowSums(m)
	d.Output("s1", s1)
	d.Output("s2", s2)
	if m.NumConsumers() != 2 {
		t.Fatalf("m consumers = %d", m.NumConsumers())
	}
	order := TopoOrder(d.Roots())
	pos := map[int64]int{}
	for i, h := range order {
		pos[h.ID] = i
	}
	for _, h := range order {
		for _, in := range h.Inputs {
			if pos[in.ID] >= pos[h.ID] {
				t.Fatal("topo order violated")
			}
		}
	}
	if len(order) != 5 {
		t.Fatalf("expected 5 nodes, got %d", len(order))
	}
}

func TestExecTypeAssignment(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 1000000, 100, -1) // 800 MB dense
	s := d.Sum(x)
	d.Output("s", s)
	AssignExecTypes(d.Roots(), ExecConfig{MemBudgetBytes: 1 << 20, Blocksize: 1000})
	if s.ExecType != ExecDist {
		t.Fatal("large op must be distributed")
	}
	AssignExecTypes(d.Roots(), DefaultExecConfig())
	if s.ExecType != ExecLocal {
		t.Fatal("op within budget must be local")
	}
	AssignExecTypes(d.Roots(), ExecConfig{MemBudgetBytes: 1, ForceLocal: true})
	if s.ExecType != ExecLocal {
		t.Fatal("ForceLocal must win")
	}
}

func TestExplain(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 10, 10, -1)
	s := d.Sum(d.Binary(matrix.BinMul, x, x))
	d.Output("s", s)
	out := Explain(d.Roots())
	if !strings.Contains(out, "data(X)") || !strings.Contains(out, "b(*)") || !strings.Contains(out, "ua(sum)") {
		t.Fatalf("explain output missing pieces:\n%s", out)
	}
}

func TestReplaceInput(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 10, 10, -1)
	y := d.Read("Y", 10, 10, -1)
	m := d.Binary(matrix.BinMul, x, y)
	z := d.Read("Z", 10, 10, -1)
	m.ReplaceInput(y, z)
	if m.Inputs[1] != z {
		t.Fatal("input not replaced")
	}
	if len(y.Parents) != 0 {
		t.Fatal("old parent not removed")
	}
	if len(z.Parents) != 1 || z.Parents[0] != m {
		t.Fatal("new parent not added")
	}
}

func TestOutputSizeBytes(t *testing.T) {
	d := NewDAG()
	x := d.Read("X", 1000, 1000, 1000) // very sparse
	if x.OutputSizeBytes() >= 8*1000*1000 {
		t.Fatal("sparse output size should be far below dense")
	}
	y := d.Read("Y", 1000, 1000, -1)
	if y.OutputSizeBytes() != 8*1000*1000 {
		t.Fatal("dense output size")
	}
}
