package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"sysml/internal/codegen"
	"sysml/internal/compress"
	"sysml/internal/cplan"
	"sysml/internal/data"
	"sysml/internal/dist"
	"sysml/internal/dml"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/runtime"
)

// claFile is the JSON artifact CLA writes; CI gates on its "pass" field.
const claFile = "BENCH_cla.json"

// Compressed-execution gate thresholds.
const (
	// claMinSpeedup: executing the fused operator directly over column
	// groups must beat decompress-then-fuse by at least this factor on
	// Airline78-like data.
	claMinSpeedup = 3.0

	// claMinWireRatio: compressed shipping must cut broadcast and shuffle
	// volume by at least this factor when the side compresses >= 3x.
	claMinWireRatio = 2.0

	// claMinSideRatio: the distributed gate only counts when the broadcast
	// side actually compresses this well.
	claMinSideRatio = 3.0

	// claMaxRelErr: compressed execution must match dense within this
	// relative tolerance.
	claMaxRelErr = 1e-9

	// claMaxOverheadPct: the auto-compress pass on incompressible data
	// (estimate once, cached decline afterwards) may cost at most this
	// much end to end.
	claMaxOverheadPct = 3.0
)

// CLAResult is the serialized outcome of the compressed-execution gates.
type CLAResult struct {
	DecompressMS float64 `json:"decompress_ms"` // decompress + dense fused op
	CompressedMS float64 `json:"compressed_ms"` // fused op over column groups
	Speedup      float64 `json:"speedup"`
	SpeedupPass  bool    `json:"speedup_pass"` // >= 3x

	SideRatio    float64 `json:"side_ratio"`    // compression ratio of the broadcast side
	BcastDense   int64   `json:"bcast_dense"`   // broadcast bytes, codec off
	BcastComp    int64   `json:"bcast_comp"`    // broadcast bytes, codec on
	ShuffleDense int64   `json:"shuffle_dense"` // shuffle bytes, codec off
	ShuffleComp  int64   `json:"shuffle_comp"`  // shuffle bytes, codec on
	WireRatio    float64 `json:"wire_ratio"`    // dense / compressed, bcast+shuffle
	WirePass     bool    `json:"wire_pass"`     // >= 2x at side ratio >= 3

	MaxRelErr float64 `json:"max_rel_err"`
	EquivPass bool    `json:"equiv_pass"` // compressed == dense within 1e-9

	BaselineMS  float64 `json:"baseline_ms"` // CompressOff on incompressible data
	AutoMS      float64 `json:"auto_ms"`     // CompressAuto, cached decline
	OverheadPct float64 `json:"overhead_pct"`
	DeclinePass bool    `json:"decline_pass"` // overhead < 3% and nothing attached

	Pass bool `json:"pass"`
}

// claOps are the fused bodies the equivalence gate sweeps: a full
// aggregate, a column aggregate, and a cellwise map.
func claOps() map[string]*cplan.Operator {
	sumsq := &cplan.Plan{
		Type: cplan.TemplateCell, Cell: cplan.CellFullAgg, AggOp: matrix.AggSum,
		Root:       cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0)),
		SparseSafe: true,
	}
	colagg := &cplan.Plan{
		Type: cplan.TemplateCell, Cell: cplan.CellColAgg, AggOp: matrix.AggSum,
		Root: cplan.Binary(matrix.BinAdd, cplan.Main(0), cplan.Lit(1)),
	}
	noagg := &cplan.Plan{
		Type: cplan.TemplateCell, Cell: cplan.CellNoAgg,
		Root: cplan.Binary(matrix.BinAdd,
			cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Lit(2)), cplan.Lit(1)),
	}
	return map[string]*cplan.Operator{
		"sumsq":  cplan.Compile(sumsq, "TMP_CLA1"),
		"colagg": cplan.Compile(colagg, "TMP_CLA2"),
		"noagg":  cplan.Compile(noagg, "TMP_CLA3"),
	}
}

// claLowCard builds a dense matrix with card distinct values per column.
func claLowCard(rows, cols, card int, seed int64) *matrix.Matrix {
	m := matrix.Rand(rows, cols, 1, 0, float64(card), seed)
	d := m.Dense()
	for i := range d {
		d[i] = math.Floor(d[i])
	}
	return m
}

// claWireBytes runs one distributed matmult with a compressible broadcast
// side and reports (broadcast, shuffle) bytes with the codec toggled.
func claWireBytes(o Options, codec bool) (bcast, shuffle int64, sideRatio float64) {
	x := matrix.Rand(o.rows(4000), 200, 1, -1, 1, 62)
	w := claLowCard(200, 100, 3, 63)
	c := claLowCard(o.rows(4000), 200, 2, 66)
	cfg := codegen.DefaultConfig()
	cfg.Mode = codegen.ModeBase
	cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2 // force X operators distributed
	cl := dist.NewCluster()
	cl.SetCompressedWire(codec)
	s := dml.NewSession(cfg)
	s.Dist = cl
	s.Out = io.Discard
	s.Bind("X", x)
	s.Bind("W", w)
	s.Bind("C", c)
	// The auto-compress pass attaches W's column groups; the wire codec
	// then ships those instead of the dense block. colSums over the
	// low-cardinality C produces low-cardinality aggregation partials,
	// exercising the shuffle-side dictionary codec.
	if err := s.Run("P = X %*% W\ncs = colSums(C)"); err != nil {
		panic(fmt.Sprintf("cla dist bench failed: %v", err))
	}
	compress.Drop(c)
	if cm := compress.Of(w); cm != nil {
		sideRatio = cm.CompressionRatio()
	}
	compress.Drop(w)
	return cl.BytesBroadcast(), cl.BytesShuffled(), sideRatio
}

// claDeclineTimes times warm sessions over incompressible data with
// auto-compression off vs on. The auto pass must estimate once, cache the
// decline, and stay out of the way. Runs are interleaved and each sample
// amortizes several executions so the sub-millisecond workload is not at
// the mercy of GC pauses from earlier gates.
func claDeclineTimes(o Options, reps int) (baseMS, autoMS float64) {
	const inner = 10
	mkRun := func(mode codegen.CompressMode) (*matrix.Matrix, func()) {
		x := matrix.Rand(o.rows(100000), 10, 1, -1, 1, 64)
		cfg := codegen.DefaultConfig()
		cfg.Compress = mode
		s := dml.NewSession(cfg)
		s.Out = io.Discard
		s.Bind("X", x)
		return x, func() {
			for i := 0; i < inner; i++ {
				if err := s.Run("s = sum(X * X)"); err != nil {
					panic(fmt.Sprintf("cla decline bench failed: %v", err))
				}
			}
		}
	}
	xOff, runOff := mkRun(codegen.CompressOff)
	xAuto, runAuto := mkRun(codegen.CompressAuto)
	runOff() // warm: plan cache, and in auto mode the cached decline
	runAuto()
	base, auto := minTime(1, runOff), minTime(1, runAuto)
	for i := 1; i < reps; i++ {
		if d := minTime(1, runOff); d < base {
			base = d
		}
		if d := minTime(1, runAuto); d < auto {
			auto = d
		}
	}
	if compress.Of(xAuto) != nil {
		panic("cla decline bench: incompressible input was compressed")
	}
	compress.Drop(xOff)
	compress.Drop(xAuto)
	return float64(base.Nanoseconds()) / 1e6 / inner, float64(auto.Nanoseconds()) / 1e6 / inner
}

// CLA measures compressed linear algebra execution and writes
// BENCH_cla.json:
//
//  1. The fused sum(X^2) operator over column groups (one evaluation per
//     distinct dictionary tuple, scaled by counts) vs decompressing and
//     running the dense fused operator, Airline78-like data (gate: >= 3x).
//  2. Distributed traffic with a compressible broadcast side: wire bytes
//     with the compressed codec on vs off (gate: >= 2x fewer bytes while
//     the side compresses >= 3x).
//  3. Compressed execution vs dense execution across full-aggregate,
//     column-aggregate, and cellwise-map bodies on Airline-like, constant,
//     and sparse data (gate: max relative error < 1e-9).
//  4. Auto-compression on incompressible data: sampled estimate once, then
//     a cached decline (gate: < 3% end-to-end overhead, nothing attached).
func CLA(o Options) *Table {
	reps := o.Reps
	if reps < 5 {
		reps = 5
	}

	// --- Gate 1: fused over column groups vs decompress-then-fuse. ---
	air := data.AirlineLike(o.rows(100000), 61)
	ops := claOps()
	cm := compress.Compress(air, compress.DefaultOptions())
	compress.Attach(air, cm)
	h := &hop.Hop{Kind: hop.OpSpoof, Spoof: ops["sumsq"]}
	if !runtime.CompressedDispatched(ops["sumsq"], []*matrix.Matrix{air}) {
		panic("cla bench: sum(X^2) did not dispatch compressed")
	}
	compressed := minTime(reps, func() {
		out, err := runtime.ExecSpoof(h, []*matrix.Matrix{air})
		if err != nil {
			panic(err)
		}
		out.Release()
	})
	decomp := minTime(reps, func() {
		d := cm.Decompress()
		runtime.ExecCellwise(ops["sumsq"], d, nil).Release()
		d.Release()
	})
	speedup := float64(decomp) / float64(compressed)

	// --- Gate 3: compressed == dense across bodies and datasets. ---
	worst := 0.0
	constant := matrix.NewDense(2000, 8)
	for i := range constant.Dense() {
		constant.Dense()[i] = 4
	}
	sparse := matrix.Rand(5000, 12, 0.1, 1, 4, 65)
	sd := sparse.ToDense()
	for i, v := range sd.Dense() {
		sd.Dense()[i] = math.Floor(v)
	}
	datasets := map[string]*matrix.Matrix{
		"airline": air, "constant": constant, "sparse": sd,
	}
	for dn, m := range datasets {
		if compress.Of(m) == nil {
			compress.Attach(m, compress.Compress(m, compress.DefaultOptions()))
		}
		for opn, op := range ops {
			if !runtime.CompressedDispatched(op, []*matrix.Matrix{m}) {
				panic(fmt.Sprintf("cla bench: %s/%s did not dispatch compressed", dn, opn))
			}
			got, err := runtime.ExecSpoof(&hop.Hop{Kind: hop.OpSpoof, Spoof: op}, []*matrix.Matrix{m})
			if err != nil {
				panic(err)
			}
			want := runtime.ExecCellwise(op, m, nil)
			if d := maxRelDiffHF(got, want); d > worst {
				worst = d
			}
		}
		compress.Drop(m)
	}

	// --- Gate 2: compressed wire vs dense shipping. ---
	bd, sdn, _ := claWireBytes(o, false)
	bc, sc, sideRatio := claWireBytes(o, true)
	wireRatio := 0.0
	if bc+sc > 0 {
		wireRatio = float64(bd+sdn) / float64(bc+sc)
	}

	// --- Gate 4: cached decline on incompressible data. ---
	baseMS, autoMS := claDeclineTimes(o, reps)
	overhead := 100 * (autoMS - baseMS) / baseMS

	res := CLAResult{
		DecompressMS: float64(decomp.Nanoseconds()) / 1e6,
		CompressedMS: float64(compressed.Nanoseconds()) / 1e6,
		Speedup:      speedup,
		SpeedupPass:  speedup >= claMinSpeedup,
		SideRatio:    sideRatio,
		BcastDense:   bd,
		BcastComp:    bc,
		ShuffleDense: sdn,
		ShuffleComp:  sc,
		WireRatio:    wireRatio,
		WirePass:     wireRatio >= claMinWireRatio && sideRatio >= claMinSideRatio,
		MaxRelErr:    worst,
		EquivPass:    worst < claMaxRelErr,
		BaselineMS:   baseMS,
		AutoMS:       autoMS,
		OverheadPct:  overhead,
		DeclinePass:  overhead < claMaxOverheadPct,
	}
	res.Pass = res.SpeedupPass && res.WirePass && res.EquivPass && res.DeclinePass
	if data, err := json.MarshalIndent(res, "", "  "); err == nil {
		if err := os.WriteFile(claFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(o.Out, "cla: cannot write %s: %v\n", claFile, err)
		}
	}

	t := &Table{
		Title:   "Compressed execution gates: fused-over-groups speedup, wire bytes, equivalence, decline overhead",
		Columns: []string{"gate", "baseline", "new", "delta", "pass"},
	}
	t.Add("fused over groups", ms(decomp), ms(compressed),
		fmt.Sprintf("%.2fx (need >=%.1fx)", speedup, claMinSpeedup), fmt.Sprintf("%v", res.SpeedupPass))
	t.Add("compressed wire", fmt.Sprintf("%d B", bd+sdn), fmt.Sprintf("%d B", bc+sc),
		fmt.Sprintf("%.2fx (need >=%.1fx at ratio %.2f)", wireRatio, claMinWireRatio, sideRatio),
		fmt.Sprintf("%v", res.WirePass))
	t.Add("compressed == dense", "dense", "groups",
		fmt.Sprintf("maxrel %.2g (limit <%.0g)", worst, claMaxRelErr), fmt.Sprintf("%v", res.EquivPass))
	t.Add("decline overhead", fmt.Sprintf("%.2f ms", baseMS), fmt.Sprintf("%.2f ms", autoMS),
		fmt.Sprintf("%+.2f%% (limit <%.0f%%)", overhead, claMaxOverheadPct), fmt.Sprintf("%v", res.DeclinePass))
	return t
}
