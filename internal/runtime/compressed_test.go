package runtime

import (
	"math"
	"testing"

	"sysml/internal/compress"
	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/par"
)

// claMatrix generates a CLA-friendly matrix: card distinct values per
// column at the given sparsity (zeros count toward the distinct set).
func claMatrix(rows, cols, card int, sparsity float64, seed int64) *matrix.Matrix {
	m := matrix.Rand(rows, cols, sparsity, 0, float64(card), seed).ToDense()
	d := m.Dense()
	for i := range d {
		d[i] = math.Floor(d[i])
	}
	return m
}

func attached(m *matrix.Matrix) *compress.CMatrix {
	cm := compress.Compress(m, compress.DefaultOptions())
	compress.Attach(m, cm)
	return cm
}

// TestCompressedCellMatchesDense sweeps the Cell template's aggregation
// variants over shapes × sparsities × cardinalities × worker counts and
// requires the compressed skeleton to agree with the dense one within 1e-9.
func TestCompressedCellMatchesDense(t *testing.T) {
	// Body: X*s + 2 with a scalar side (position independent).
	root := cplan.Binary(matrix.BinAdd,
		cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessScalar, 0)),
		cplan.Lit(2))
	variants := []struct {
		cell cplan.CellType
		aop  matrix.AggOp
	}{
		{cplan.CellNoAgg, matrix.AggSum},
		{cplan.CellFullAgg, matrix.AggSum},
		{cplan.CellFullAgg, matrix.AggSumSq},
		{cplan.CellFullAgg, matrix.AggMin},
		{cplan.CellFullAgg, matrix.AggMax},
		{cplan.CellColAgg, matrix.AggSum},
	}
	shapes := [][2]int{{64, 3}, {500, 7}, {1000, 2}}
	seed := int64(100)
	for _, v := range variants {
		p := &cplan.Plan{Type: cplan.TemplateCell, Cell: v.cell, AggOp: v.aop, Root: root, NumSides: 1}
		if ok, why := cplan.CompressedEligible(p); !ok {
			t.Fatalf("cell %v/%v should be eligible: %s", v.cell, v.aop, why)
		}
		op := cplan.Compile(p, "CC1")
		for _, sh := range shapes {
			for _, sp := range []float64{1, 0.3} {
				for _, card := range []int{1, 4, 40} {
					for _, workers := range []int{1, 4} {
						seed++
						x := claMatrix(sh[0], sh[1], card, sp, seed)
						s := matrix.NewScalar(1.5)
						cm := attached(x)
						ec := matrix.Ctx{Par: par.NewPool(workers)}
						got, ok := execCompressed(ec, op, cm, []*matrix.Matrix{s}, nil)
						if !ok {
							t.Fatalf("cell %v/%v: compressed skeleton declined", v.cell, v.aop)
						}
						want := ExecCellwise(op, x, []*matrix.Matrix{s})
						if !got.EqualsApprox(want, 1e-9) {
							t.Fatalf("cell %v/%v %dx%d sp=%v card=%d w=%d: mismatch",
								v.cell, v.aop, sh[0], sh[1], sp, card, workers)
						}
						compress.Drop(x)
					}
				}
			}
		}
	}
}

// TestCompressedCellEmptyAndConstant pins the edge encodings: an all-zero
// matrix (single zero tuple) and constant columns.
func TestCompressedCellEmptyAndConstant(t *testing.T) {
	root := cplan.Binary(matrix.BinAdd, cplan.Main(0), cplan.Lit(1)) // not sparse safe
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellNoAgg, Root: root}
	op := cplan.Compile(p, "CC2")
	zero := matrix.NewDense(200, 3)
	constant := matrix.NewDense(200, 3)
	for i := range constant.Dense() {
		constant.Dense()[i] = 4
	}
	for _, m := range []*matrix.Matrix{zero, constant} {
		cm := attached(m)
		got, ok := execCompressed(matrix.Ctx{}, op, cm, nil, nil)
		if !ok {
			t.Fatal("compressed skeleton declined")
		}
		want := ExecCellwise(op, m, nil)
		if !got.EqualsApprox(want, 0) {
			t.Fatal("edge encoding mismatch")
		}
		compress.Drop(m)
	}
}

// TestCompressedMAggMatchesDense: multi-aggregate over co-coded dictionary
// tuples (several roots, mixed aggregation ops).
func TestCompressedMAggMatchesDense(t *testing.T) {
	r1 := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0))
	r2 := cplan.Binary(matrix.BinAdd, cplan.Main(0), cplan.Lit(1))
	p := &cplan.Plan{Type: cplan.TemplateMAgg,
		Roots:  []*cplan.CNode{r1, r2},
		AggOps: []matrix.AggOp{matrix.AggSum, matrix.AggMax}}
	if ok, why := cplan.CompressedEligible(p); !ok {
		t.Fatalf("magg should be eligible: %s", why)
	}
	op := cplan.Compile(p, "CM1")
	for _, card := range []int{2, 12} {
		x := claMatrix(600, 4, card, 1, int64(200+card))
		cm := attached(x)
		got, ok := execCompressed(matrix.Ctx{}, op, cm, nil, nil)
		if !ok {
			t.Fatal("compressed magg declined")
		}
		want := ExecMAgg(op, x, nil)
		if !got.EqualsApprox(want, 1e-9) {
			t.Fatalf("magg card=%d mismatch: got %v want %v", card, got, want)
		}
		compress.Drop(x)
	}
}

// TestCompressedRowMatchesDense: row-template variants where a whole row is
// one dictionary tuple (single co-coded group).
func TestCompressedRowMatchesDense(t *testing.T) {
	n := 2 // two columns co-code into one group (dict product stays small)
	variants := []struct {
		row  cplan.RowType
		root *cplan.CNode
	}{
		{cplan.RowFullAgg, cplan.Binary(matrix.BinMul, cplan.Agg(matrix.AggSum, cplan.Main(n)), cplan.Lit(3))},
		{cplan.RowRowAgg, cplan.Agg(matrix.AggSum, cplan.Binary(matrix.BinMul, cplan.Main(n), cplan.Main(n)))},
		{cplan.RowColAgg, cplan.Binary(matrix.BinMul, cplan.Main(n), cplan.Lit(2))},
		{cplan.RowNoAgg, cplan.Binary(matrix.BinAdd, cplan.Main(n), cplan.Lit(1))},
	}
	for _, v := range variants {
		p := &cplan.Plan{Type: cplan.TemplateRow, Row: v.row, Root: v.root, MainWidth: n}
		if ok, why := cplan.CompressedEligible(p); !ok {
			t.Fatalf("row %v should be eligible: %s", v.row, why)
		}
		op := cplan.Compile(p, "CR1")
		for _, workers := range []int{1, 3} {
			x := claMatrix(800, n, 3, 1, int64(300+int(v.row)))
			cm := attached(x)
			if len(cm.Groups) != 1 {
				t.Fatalf("row test needs a single co-coded group, got %d", len(cm.Groups))
			}
			ec := matrix.Ctx{Par: par.NewPool(workers)}
			got, ok := execCompressed(ec, op, cm, nil, nil)
			if !ok {
				t.Fatalf("row %v: compressed skeleton declined", v.row)
			}
			want := ExecRowwise(op, x, nil)
			if !got.EqualsApprox(want, 1e-9) {
				t.Fatalf("row %v w=%d mismatch", v.row, workers)
			}
			compress.Drop(x)
		}
	}
}

// TestCompressedIneligibleFallsBack: bodies the probe rejects must not
// dispatch compressed, and the dense path still runs through ExecSpoof.
func TestCompressedIneligibleFallsBack(t *testing.T) {
	// Per-cell side access is position dependent.
	root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0))
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg, AggOp: matrix.AggSum, Root: root, NumSides: 1}
	if ok, _ := cplan.CompressedEligible(p); ok {
		t.Fatal("per-cell side access must be ineligible")
	}
	op := cplan.Compile(p, "CF1")
	x := claMatrix(300, 3, 5, 1, 400)
	y := matrix.Rand(300, 3, 1, -1, 1, 401)
	attached(x)
	defer compress.Drop(x)
	if CompressedDispatched(op, []*matrix.Matrix{x, y}) {
		t.Fatal("dispatch mirror disagrees with eligibility")
	}
	h := &hop.Hop{Kind: hop.OpSpoof, Spoof: op}
	got, err := ExecSpoof(h, []*matrix.Matrix{x, y})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Sum(matrix.Binary(matrix.BinMul, x, y))
	if math.Abs(got.Scalar()-want) > 1e-9*math.Abs(want) {
		t.Fatal("dense fallback produced a wrong result")
	}
}

// TestCompressedDispatchThroughExecSpoof: the executor entry point picks the
// compressed path for an attached eligible input and matches dense.
func TestCompressedDispatchThroughExecSpoof(t *testing.T) {
	root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0))
	p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg,
		AggOp: matrix.AggSum, Root: root, SparseSafe: true}
	op := cplan.Compile(p, "CD1")
	x := claMatrix(500, 4, 6, 1, 500)
	want := matrix.Sum(matrix.Binary(matrix.BinMul, x, x))
	attached(x)
	defer compress.Drop(x)
	if !CompressedDispatched(op, []*matrix.Matrix{x}) {
		t.Fatal("eligible attached input should dispatch compressed")
	}
	h := &hop.Hop{Kind: hop.OpSpoof, Spoof: op}
	got, err := ExecSpoof(h, []*matrix.Matrix{x})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Scalar()-want) > 1e-9*math.Abs(want) {
		t.Fatalf("compressed dispatch: got %v want %v", got.Scalar(), want)
	}
}

// TestCompressedBasicAgg: the Base-mode aggregate path (sum, colSums, min,
// max, mean) served from dictionaries.
func TestCompressedBasicAgg(t *testing.T) {
	x := claMatrix(700, 5, 8, 0.5, 600)
	attached(x)
	defer compress.Drop(x)
	for _, aop := range []matrix.AggOp{matrix.AggSum, matrix.AggSumSq, matrix.AggMin, matrix.AggMax, matrix.AggMean} {
		for _, dir := range []matrix.AggDir{matrix.DirAll, matrix.DirCol} {
			got, ok := compressedAgg(matrix.Ctx{}, aop, dir, x)
			if !ok {
				t.Fatalf("agg %v/%v declined", aop, dir)
			}
			want := matrix.Agg(aop, dir, x)
			if !got.EqualsApprox(want, 1e-9) {
				t.Fatalf("agg %v/%v mismatch", aop, dir)
			}
		}
	}
	if _, ok := compressedAgg(matrix.Ctx{}, matrix.AggSum, matrix.DirRow, x); ok {
		t.Fatal("row aggregates need per-row evaluation, must decline")
	}
}
