package bench

import (
	"fmt"
	"time"

	"sysml/internal/compress"
	"sysml/internal/cplan"
	"sysml/internal/data"
	"sysml/internal/matrix"
)

// Fig9CLA reproduces Fig. 9: sum(X^2) over uncompressed (ULA) and
// compressed (CLA) representations of Airline78-like (dense) and
// Mnist8m-like (sparse) data, for Base, Fused, and Gen.
//
// ULA Base materializes X^2 and sums it; ULA Fused/Gen run the fused
// sum-of-squares in one pass. On CLA, Base/Fused compute over the
// dictionary of distinct values (a shallow-copy special case, per §5.2),
// and Gen calls the generated genexec once per distinct value.
func Fig9CLA(o Options) *Table {
	t := &Table{
		Title:   "Fig 9 CLA: sum(X^2), ULA vs CLA (ms; ratio = compression)",
		Columns: []string{"dataset", "repr", "Base", "Fused", "Gen", "ratio"},
	}
	datasets := []struct {
		name string
		m    *matrix.Matrix
	}{
		{"Airline78-like", data.AirlineLike(o.rows(100000), 21)},
		{"Mnist8m-like", data.MnistLike(o.rows(20000), 22)},
	}
	// The generated cell operator for sum(X^2).
	plan := &cplan.Plan{
		Type: cplan.TemplateCell, Cell: cplan.CellFullAgg, AggOp: matrix.AggSum,
		Root:       cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0)),
		SparseSafe: true,
	}
	genOp := cplan.Compile(plan, "TMP_SumSq")
	for _, ds := range datasets {
		x := ds.m
		// --- ULA ---
		base := Median(o.Reps, func() {
			sq := matrix.Binary(matrix.BinMul, x, x)
			_ = matrix.Sum(sq)
		})
		fused := Median(o.Reps, func() {
			_ = matrix.Agg(matrix.AggSumSq, matrix.DirAll, x)
		})
		gen := Median(o.Reps, func() {
			_ = runtimeExecCell(genOp, x)
		})
		t.Add(ds.name, "ULA", ms(base), ms(fused), ms(gen), "1.00")
		// --- CLA ---
		cm := compress.Compress(x, compress.DefaultOptions())
		claBase := Median(o.Reps, func() { _ = cm.SumSq() })
		claFused := claBase
		fn := genOp.CellFn
		claGen := Median(o.Reps, func() {
			_ = cm.AggCell(func(v float64) float64 { return fn(nil, v, 0, 0) })
		})
		t.Add(ds.name, "CLA", ms(claBase), ms(time.Duration(claFused)), ms(claGen),
			fmt.Sprintf("%.2f", cm.CompressionRatio()))
	}
	return t
}
