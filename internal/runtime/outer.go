package runtime

import (
	"sysml/internal/cplan"
	"sysml/internal/matrix"
	"sysml/internal/vector"
)

// ExecOuter runs a compiled Outer-product-template operator over the
// sparse driver X and factor matrices U (m×r) and V (n×r), exploiting
// sparsity: the genexec body runs only for non-zero cells of X (paper
// Fig. 3a). Dense X falls back to full iteration.
func ExecOuter(op *cplan.Operator, x, u, v *matrix.Matrix, sides []*matrix.Matrix) *matrix.Matrix {
	return execOuter(matrix.Ctx{}, op, x, u, v, sides, nil)
}

// workOuter measures the data-touch work of one Outer invocation: the
// driver cells the skeleton visits (non-zeros when sparse-safe) times the
// per-cell cost of the rank-r dot product plus the genexec body. Feeds the
// cost-audit ledger.
func workOuter(op *cplan.Operator, x *matrix.Matrix) float64 {
	p := op.Plan
	visited := float64(x.Rows) * float64(x.Cols)
	if p.SparseSafe && x.IsSparse() {
		visited = storedCells(x)
	}
	return visited * float64(p.OuterRank+p.NumNodes())
}

func execOuter(ec matrix.Ctx, op *cplan.Operator, x, u, v *matrix.Matrix, sides []*matrix.Matrix, stop StopFn) *matrix.Matrix {
	p := op.Plan
	ud, vd := u.ToDense().Dense(), v.ToDense().Dense()
	r := u.Cols
	proto := cplan.NewCtx(sides)

	switch p.Out {
	case cplan.OuterRightMM:
		// C (m×r): C_i += w_ij * V_j, row-disjoint across workers.
		out := ec.NewDense(x.Rows, r)
		od := out.Dense()
		iterateOuter(ec, x, proto, ud, vd, r, op.CellFn, p.SparseSafe, stop,
			func(_ *cplan.Ctx, w float64, i, j int) {
				vector.MultAdd(vd, w, od, j*r, i*r, r)
			})
		return out

	case cplan.OuterLeftMM:
		// C (n×r): C_j += w_ij * U_i. Iterate the transposed driver so that
		// output rows are again disjoint across workers.
		xt := ec.Transpose(x)
		out := ec.NewDense(x.Cols, r)
		od := out.Dense()
		// Note the swapped roles: iterating X^T at (j, i) must still present
		// genexec with rix=i, cix=j and U_i, V_j.
		iterateOuterTransposed(ec, xt, proto, ud, vd, r, op.CellFn, p.SparseSafe, stop,
			func(_ *cplan.Ctx, w float64, i, j int) {
				vector.MultAdd(ud, w, od, i*r, j*r, r)
			})
		return out

	case cplan.OuterNoAgg:
		if x.IsSparse() && p.SparseSafe {
			xs := x.Sparse()
			outCSR := &matrix.CSR{
				RowPtr: append([]int(nil), xs.RowPtr...),
				ColIdx: append([]int(nil), xs.ColIdx...),
				Values: make([]float64, len(xs.Values)),
			}
			ec.Par.For(x.Rows, 32, func(lo, hi int) {
				ctx := proto.Clone()
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						return
					}
					vals, cix := xs.Row(i)
					base := xs.RowPtr[i]
					for k, j := range cix {
						ctx.Dot = vector.DotProduct(ud, vd, i*r, j*r, r)
						outCSR.Values[base+k] = op.CellFn(ctx, vals[k], i, j)
					}
				}
			})
			return matrix.NewSparseCSR(x.Rows, x.Cols, outCSR)
		}
		out := ec.NewDense(x.Rows, x.Cols)
		od := out.Dense()
		cols := x.Cols
		iterateOuter(ec, x, proto, ud, vd, r, op.CellFn, false, stop,
			func(_ *cplan.Ctx, w float64, i, j int) { od[i*cols+j] = w })
		return out

	default: // OuterAgg
		nw, _ := ec.Par.Chunks(x.Rows, 32)
		partials := make([]float64, nw)
		cols := x.Cols
		ec.Par.ForIndexed(x.Rows, 32, func(wk, lo, hi int) {
			ctx := proto.Clone()
			var acc float64
			if x.IsSparse() && p.SparseSafe {
				xs := x.Sparse()
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						break
					}
					vals, cix := xs.Row(i)
					for k, j := range cix {
						ctx.Dot = vector.DotProduct(ud, vd, i*r, j*r, r)
						acc += op.CellFn(ctx, vals[k], i, j)
					}
				}
			} else {
				scratch := newRowScratch(ec, x)
				defer releaseRowScratch(ec, scratch)
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						break
					}
					row, off := denseRowView(x, i, scratch)
					for j := 0; j < cols; j++ {
						ctx.Dot = vector.DotProduct(ud, vd, i*r, j*r, r)
						acc += op.CellFn(ctx, row[off+j], i, j)
					}
				}
			}
			partials[wk] += acc // accumulate: a worker may claim several chunks
		})
		var acc float64
		for _, v := range partials {
			acc += v
		}
		return matrix.NewScalar(acc)
	}
}

// iterateOuter visits cells of x (non-zeros only when sparseSafe and x is
// sparse), computing the genexec value w with ctx.Dot preset, and hands
// (w, i, j) to the sink. Parallel over row ranges.
func iterateOuter(ec matrix.Ctx, x *matrix.Matrix, proto *cplan.Ctx, ud, vd []float64, r int,
	fn cplan.CellFunc, sparseSafe bool, stop StopFn, sink func(ctx *cplan.Ctx, w float64, i, j int)) {
	cols := x.Cols
	ec.Par.For(x.Rows, 32, func(lo, hi int) {
		ctx := proto.Clone()
		if x.IsSparse() && sparseSafe {
			xs := x.Sparse()
			for i := lo; i < hi; i++ {
				if pollStop(stop, i-lo) {
					return
				}
				vals, cix := xs.Row(i)
				for k, j := range cix {
					ctx.Dot = vector.DotProduct(ud, vd, i*r, j*r, r)
					sink(ctx, fn(ctx, vals[k], i, j), i, j)
				}
			}
			return
		}
		scratch := newRowScratch(ec, x)
		defer releaseRowScratch(ec, scratch)
		for i := lo; i < hi; i++ {
			if pollStop(stop, i-lo) {
				return
			}
			row, off := denseRowView(x, i, scratch)
			for j := 0; j < cols; j++ {
				ctx.Dot = vector.DotProduct(ud, vd, i*r, j*r, r)
				sink(ctx, fn(ctx, row[off+j], i, j), i, j)
			}
		}
	})
}

// iterateOuterTransposed is iterateOuter over X^T: the iteration row is j
// (a column of X) and the inner index is i, preserving genexec's (i, j)
// coordinate contract.
func iterateOuterTransposed(ec matrix.Ctx, xt *matrix.Matrix, proto *cplan.Ctx, ud, vd []float64, r int,
	fn cplan.CellFunc, sparseSafe bool, stop StopFn, sink func(ctx *cplan.Ctx, w float64, i, j int)) {
	cols := xt.Cols
	ec.Par.For(xt.Rows, 32, func(lo, hi int) {
		ctx := proto.Clone()
		if xt.IsSparse() && sparseSafe {
			xs := xt.Sparse()
			for j := lo; j < hi; j++ {
				if pollStop(stop, j-lo) {
					return
				}
				vals, iix := xs.Row(j)
				for k, i := range iix {
					ctx.Dot = vector.DotProduct(ud, vd, i*r, j*r, r)
					sink(ctx, fn(ctx, vals[k], i, j), i, j)
				}
			}
			return
		}
		scratch := newRowScratch(ec, xt)
		defer releaseRowScratch(ec, scratch)
		for j := lo; j < hi; j++ {
			if pollStop(stop, j-lo) {
				return
			}
			row, off := denseRowView(xt, j, scratch)
			for i := 0; i < cols; i++ {
				ctx.Dot = vector.DotProduct(ud, vd, i*r, j*r, r)
				sink(ctx, fn(ctx, row[off+i], i, j), i, j)
			}
		}
	})
}
