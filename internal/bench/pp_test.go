package bench

import (
	"io"
	"testing"

	"sysml/internal/algos"
	"sysml/internal/codegen"
)

func BenchmarkL2SVMGenProf(b *testing.B) {
	inputs := algos.L2SVM.Gen(30000, 10, 42)
	cfg := codegen.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := algos.L2SVM.Run(cfg, inputs, map[string]float64{"maxiter": 10}, nil, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
