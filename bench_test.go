package sysml

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5). Each benchmark runs the experiment's core workload at a fixed
// laptop-friendly size with sub-benchmarks per system variant; the full
// parameter sweeps (all sizes, sparsities, datasets) are produced by
// cmd/fusebench, which prints the complete tables.

import (
	"io"
	"testing"

	"sysml/internal/algos"
	"sysml/internal/bench"
	"sysml/internal/codegen"
	"sysml/internal/compress"
	"sysml/internal/cplan"
	"sysml/internal/data"
	"sysml/internal/dist"
	"sysml/internal/dml"
	"sysml/internal/matrix"
	"sysml/internal/runtime"
)

// benchScript runs a script repeatedly on a warm session per mode.
func benchScript(b *testing.B, script string, inputs map[string]*matrix.Matrix,
	scalars map[string]float64) {
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := codegen.DefaultConfig()
			cfg.Mode = mode
			s := dml.NewSession(cfg)
			s.Out = io.Discard
			for n, m := range inputs {
				s.Bind(n, m)
			}
			for n, v := range scalars {
				s.BindScalar(n, v)
			}
			if err := s.Run(script); err != nil { // warmup + correctness
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Run(script); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Cell: sum(X*Y*Z) dense (Fig. 8a).
func BenchmarkFig8Cell(b *testing.B) {
	benchScript(b, `s = sum(X * Y * Z)`, map[string]*matrix.Matrix{
		"X": matrix.Rand(50000, 100, 1, -1, 1, 1),
		"Y": matrix.Rand(50000, 100, 1, -1, 1, 2),
		"Z": matrix.Rand(50000, 100, 1, -1, 1, 3),
	}, nil)
}

// BenchmarkFig8CellSparse: sum(X*Y*Z) sparse X (Fig. 8b).
func BenchmarkFig8CellSparse(b *testing.B) {
	benchScript(b, `s = sum(X * Y * Z)`, map[string]*matrix.Matrix{
		"X": matrix.Rand(50000, 100, 0.1, -1, 1, 1),
		"Y": matrix.Rand(50000, 100, 1, -1, 1, 2),
		"Z": matrix.Rand(50000, 100, 1, -1, 1, 3),
	}, nil)
}

// BenchmarkFig8MAgg: sum(X*Y), sum(X*Z) shared input (Fig. 8c).
func BenchmarkFig8MAgg(b *testing.B) {
	benchScript(b, "s1 = sum(X * Y)\ns2 = sum(X * Z)", map[string]*matrix.Matrix{
		"X": matrix.Rand(50000, 100, 1, -1, 1, 4),
		"Y": matrix.Rand(50000, 100, 1, -1, 1, 5),
		"Z": matrix.Rand(50000, 100, 1, -1, 1, 6),
	}, nil)
}

// BenchmarkFig8Row: t(X)%*%(X%*%v) (Fig. 8e).
func BenchmarkFig8Row(b *testing.B) {
	benchScript(b, `w = t(X) %*% (X %*% v)`, map[string]*matrix.Matrix{
		"X": matrix.Rand(50000, 100, 1, -1, 1, 7),
		"v": matrix.Rand(100, 1, 1, -1, 1, 8),
	}, nil)
}

// BenchmarkFig8RowMM: t(X)%*%(X%*%V) (Fig. 8g).
func BenchmarkFig8RowMM(b *testing.B) {
	benchScript(b, `W = t(X) %*% (X %*% V)`, map[string]*matrix.Matrix{
		"X": matrix.Rand(50000, 100, 1, -1, 1, 9),
		"V": matrix.Rand(100, 2, 1, -1, 1, 10),
	}, nil)
}

// BenchmarkFig8Outer: sum(X*log(UV'+eps)) at sparsity 0.01 (Fig. 8h).
func BenchmarkFig8Outer(b *testing.B) {
	n, rank := 2000, 100
	benchScript(b, `s = sum(X * log(U %*% t(V) + 1e-15))`, map[string]*matrix.Matrix{
		"X": matrix.Rand(n, n, 0.01, 1, 2, 11),
		"U": matrix.Rand(n, rank, 1, 0.1, 1, 12),
		"V": matrix.Rand(n, rank, 1, 0.1, 1, 13),
	}, nil)
}

// BenchmarkFig9CLA: sum(X^2) over ULA vs CLA (Fig. 9).
func BenchmarkFig9CLA(b *testing.B) {
	x := data.AirlineLike(50000, 21)
	plan := &cplan.Plan{
		Type: cplan.TemplateCell, Cell: cplan.CellFullAgg, AggOp: matrix.AggSum,
		Root:       cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0)),
		SparseSafe: true,
	}
	op := cplan.Compile(plan, "TMP_SumSq")
	cm := compress.Compress(x, compress.DefaultOptions())
	b.Run("ULA/Base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = matrix.Sum(matrix.Binary(matrix.BinMul, x, x))
		}
	})
	b.Run("ULA/Gen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = runtime.ExecCellwise(op, x, nil).Scalar()
		}
	})
	b.Run("CLA/Base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cm.SumSq()
		}
	})
	b.Run("CLA/Gen", func(b *testing.B) {
		fn := op.CellFn
		for i := 0; i < b.N; i++ {
			_ = cm.AggCell(func(v float64) float64 { return fn(nil, v, 0, 0) })
		}
	})
}

// BenchmarkFig10Footprint: vector primitives vs inlined genexec at 48 row
// operations (past the JIT-threshold analog; Fig. 10).
func BenchmarkFig10Footprint(b *testing.B) {
	rows, cols, n := 20000, 100, 48
	x := matrix.Rand(rows, cols, 1, 1, 2, 31)
	rs := matrix.Agg(matrix.AggSum, matrix.DirRow, x)
	chain := cplan.Binary(matrix.BinDiv, cplan.Main(cols), cplan.Side(0, cplan.AccessCol, 0))
	cell := cplan.Binary(matrix.BinDiv, cplan.Main(0), cplan.Side(0, cplan.AccessCol, 0))
	for i := 1; i <= n; i++ {
		chain = cplan.Binary(matrix.BinMul, chain, cplan.Lit(1+1/float64(i)))
		cell = cplan.Binary(matrix.BinMul, cell, cplan.Lit(1+1/float64(i)))
	}
	rowOp := cplan.Compile(&cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowFullAgg,
		Root: cplan.Agg(matrix.AggSum, chain), MainWidth: cols}, "T")
	inlined := cplan.Compile(&cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg,
		AggOp: matrix.AggSum, Root: cell}, "T")
	interp := cplan.CompileInterpreted(&cplan.Plan{Type: cplan.TemplateCell,
		Cell: cplan.CellFullAgg, AggOp: matrix.AggSum, Root: cell}, "T")
	b.Run("Gen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = runtime.ExecRowwise(rowOp, x, []*matrix.Matrix{rs})
		}
	})
	b.Run("GenInlined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = runtime.ExecCellwise(inlined, x, []*matrix.Matrix{rs})
		}
	})
	b.Run("GenInlinedNoJIT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = runtime.ExecCellwise(interp, x, []*matrix.Matrix{rs})
		}
	})
}

// BenchmarkFig11Compile: operator compilation via the janino-analog and
// javac-analog paths (Fig. 11).
func BenchmarkFig11Compile(b *testing.B) {
	plan := &cplan.Plan{
		Type: cplan.TemplateCell, Cell: cplan.CellFullAgg, AggOp: matrix.AggSum,
		Root: cplan.Binary(matrix.BinMul,
			cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0)),
			cplan.Side(1, cplan.AccessCell, 0)),
	}
	b.Run("Janino", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cplan.Compile(plan, "TMP")
		}
	})
	b.Run("Javac", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cplan.CompileSlow(plan, "TMP"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12Enumeration: MPSkipEnum over the MLogreg inner DAG with
// and without pruning (Fig. 12).
func BenchmarkFig12Enumeration(b *testing.B) {
	build := func() map[string]*matrix.Matrix {
		return map[string]*matrix.Matrix{
			"X":     data.Dense(2000, 30, 1),
			"Yfull": data.MultiClassIndicator(data.Dense(2000, 30, 1), 3, 2),
		}
	}
	for _, pruned := range []bool{false, true} {
		name := "NoPrune"
		if pruned {
			name = "Pruned"
		}
		b.Run(name, func(b *testing.B) {
			inputs := build()
			for i := 0; i < b.N; i++ {
				cfg := codegen.DefaultConfig()
				cfg.EnableCostPrune = pruned
				cfg.EnableStructPrune = pruned
				cfg.MaxPointsExact = 14
				if _, err := algos.MLogreg.Run(cfg, inputs,
					map[string]float64{"maxiter": 1, "inneriter": 2, "k": 3}, nil, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4: L2SVM end-to-end per mode (Table 4 representative row).
func BenchmarkTable4(b *testing.B) {
	x := data.Dense(50000, 10, 31)
	inputs := map[string]*matrix.Matrix{"X": x, "Y": data.BinaryLabels(x, 0.05, 41)}
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := codegen.DefaultConfig()
				cfg.Mode = mode
				if _, err := algos.L2SVM.Run(cfg, inputs,
					map[string]float64{"maxiter": 5}, nil, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Hybrid: KMeans with k=16 centroids per mode (Fig. 13b
// representative point).
func BenchmarkFig13Hybrid(b *testing.B) {
	x := data.Dense(20000, 100, 51)
	inputs := map[string]*matrix.Matrix{"X": x, "C0": matrix.Rand(16, 100, 1, -1, 1, 53)}
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := codegen.DefaultConfig()
				cfg.Mode = mode
				if _, err := algos.KMeans.Run(cfg, inputs,
					map[string]float64{"maxiter": 3, "k": 16}, nil, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5: ALS-CG end-to-end per mode (Table 5 representative row;
// the Outer-template sparsity exploitation dominates).
func BenchmarkTable5(b *testing.B) {
	n := 1500
	inputs := map[string]*matrix.Matrix{
		"X":  matrix.Unary(matrix.UnAbs, data.Sparse(n, n, 0.01, 63)),
		"U0": matrix.Rand(n, 20, 1, 0.01, 0.1, 61),
		"V0": matrix.Rand(n, 20, 1, 0.01, 0.1, 62),
	}
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := codegen.DefaultConfig()
				cfg.Mode = mode
				if _, err := algos.ALSCG.Run(cfg, inputs,
					map[string]float64{"maxiter": 1, "rank": 5}, nil, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6: distributed L2SVM per mode on the simulated cluster
// (Table 6 representative row; reported ns include wall time only — the
// fusebench table adds the simulated network time).
func BenchmarkTable6(b *testing.B) {
	x := data.Dense(100000, 100, 71)
	inputs := map[string]*matrix.Matrix{"X": x, "Y": data.BinaryLabels(x, 0.05, 81)}
	for _, mode := range bench.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := codegen.DefaultConfig()
				cfg.Mode = mode
				cfg.Exec.MemBudgetBytes = x.SizeBytes() / 2
				cl := dist.NewCluster()
				if _, err := algos.L2SVM.Run(cfg, inputs,
					map[string]float64{"maxiter": 3}, cl, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
