package dml

import (
	"math"
	"strings"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/matrix"
)

// TestReoptCorrectsSparsityHint: binding a 2%-sparse matrix with a
// claimed-dense nonzero hint forces a dense plan; after the first
// execution the runtime feedback must drop the lying hint, invalidate the
// cached block plan, and re-optimize into the sparsity-exploiting Outer
// plan — with identical results before and after the switch.
func TestReoptCorrectsSparsityHint(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	const n, rank = 128, 16
	x := matrix.Rand(n, n, 0.02, 1, 2, 1)
	s.BindWithNnz("X", x, n*n) // lie: claim every cell is nonzero
	s.Bind("U", matrix.Rand(n, rank, 1, 0.1, 1, 2))
	s.Bind("V", matrix.Rand(n, rank, 1, 0.1, 1, 3))
	script := `s = sum(X * log(U %*% t(V) + 1e-15))`

	// Under the dense lie the optimizer must not pick the Outer template.
	before, err := s.Explain(script)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before, "Outer") {
		t.Fatalf("dense-hinted plan already uses Outer:\n%s", before)
	}

	if err := s.Run(script); err != nil {
		t.Fatal(err)
	}
	first, _ := s.Scalar("s")
	if err := s.Run(script); err != nil {
		t.Fatal(err)
	}
	second, _ := s.Scalar("s")
	if math.Abs(first-second) > 1e-6*math.Abs(first) {
		t.Errorf("result changed across re-optimization: %g vs %g", first, second)
	}

	snap := s.Metrics()
	if got := snap.Counters["reopt.sparsity"]; got < 1 {
		t.Errorf("reopt.sparsity = %d, want >= 1", got)
	}
	if got := snap.Counters["reopt.invalidations"]; got < 1 {
		t.Errorf("reopt.invalidations = %d, want >= 1", got)
	}

	// With the hint dropped the optimizer sees the true nonzero count.
	after, err := s.Explain(script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after, "Outer") {
		t.Errorf("re-optimized plan does not use Outer:\n%s", after)
	}
}

// TestReoptDisabled: with Reopt.Enabled=false the lying hint persists —
// no counters move and the plan stays dense.
func TestReoptDisabled(t *testing.T) {
	cfg := codegen.DefaultConfig()
	cfg.Reopt.Enabled = false
	s := newTestSessionCfg(cfg)
	const n, rank = 128, 16
	s.BindWithNnz("X", matrix.Rand(n, n, 0.02, 1, 2, 1), n*n)
	s.Bind("U", matrix.Rand(n, rank, 1, 0.1, 1, 2))
	s.Bind("V", matrix.Rand(n, rank, 1, 0.1, 1, 3))
	script := `s = sum(X * log(U %*% t(V) + 1e-15))`
	for i := 0; i < 2; i++ {
		if err := s.Run(script); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics()
	for _, c := range []string{"reopt.sparsity", "reopt.time", "reopt.invalidations"} {
		if got := snap.Counters[c]; got != 0 {
			t.Errorf("%s = %d with re-optimization disabled", c, got)
		}
	}
	after, err := s.Explain(script)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(after, "Outer") {
		t.Error("hint dropped despite Reopt.Enabled=false")
	}
}

// TestReoptAccurateHintStable: a truthful hint must not trigger
// re-optimization — the divergence factor guards against thrash.
func TestReoptAccurateHintStable(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	const n, rank = 128, 16
	x := matrix.Rand(n, n, 0.02, 1, 2, 1)
	s.BindWithNnz("X", x, int64(x.Nnz()))
	s.Bind("U", matrix.Rand(n, rank, 1, 0.1, 1, 2))
	s.Bind("V", matrix.Rand(n, rank, 1, 0.1, 1, 3))
	script := `s = sum(X * log(U %*% t(V) + 1e-15))`
	for i := 0; i < 3; i++ {
		if err := s.Run(script); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().Counters["reopt.sparsity"]; got != 0 {
		t.Errorf("reopt.sparsity = %d for a truthful hint", got)
	}
}

// newTestSessionCfg builds a quiet session from an explicit config.
func newTestSessionCfg(cfg codegen.Config) *Session {
	s := NewSession(cfg)
	s.Out = &nullWriter{}
	return s
}

type nullWriter struct{}

func (*nullWriter) Write(p []byte) (int, error) { return len(p), nil }
