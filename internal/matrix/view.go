package matrix

import "fmt"

// Row views and destination-passing ("Into") kernel variants. They exist
// for the distributed backend's zero-copy panel execution: a map task reads
// its row panel through a view of the partitioned input (no extraction
// copy) and writes its result through a view of the pooled output (no
// per-panel intermediate plus copy-back). Views share storage with their
// parent: they are never pooled (Release on a view leaves the parent's
// storage alone) and must not outlive or mutate the parent beyond the
// writer contract stated on each function.

// RowView returns the row panel [lo, hi) of m as a matrix sharing m's
// storage. Dense views alias the backing slice directly; sparse views
// share Values/ColIdx and rebase a copy of the RowPtr window (O(rows)
// ints, no payload copy). The view must not be written unless the caller
// owns the parent, and must not be Released for reuse (it is unpooled).
func (m *Matrix) RowView(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo >= hi {
		panic(fmt.Sprintf("matrix: invalid row view [%d:%d) of %dx%d", lo, hi, m.Rows, m.Cols))
	}
	if m.dense != nil {
		return &Matrix{Rows: hi - lo, Cols: m.Cols, dense: m.dense[lo*m.Cols : hi*m.Cols]}
	}
	rp := m.sparse.RowPtr
	base := rp[lo]
	rowPtr := make([]int, hi-lo+1)
	for i := range rowPtr {
		rowPtr[i] = rp[lo+i] - base
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, sparse: &CSR{
		RowPtr: rowPtr,
		ColIdx: m.sparse.ColIdx[base:rp[hi]],
		Values: m.sparse.Values[base:rp[hi]],
	}}
}

// checkInto validates the destination of an Into kernel: dense storage of
// exactly rows×cols.
func checkInto(dst *Matrix, rows, cols int, kernel string) {
	if dst.dense == nil {
		panic(fmt.Sprintf("matrix: %s destination must be dense", kernel))
	}
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("matrix: %s destination %dx%d, result %dx%d", kernel, dst.Rows, dst.Cols, rows, cols))
	}
}

// CopyInto writes src into dst's dense storage (densifying sparse sources
// row by row). dst must be dense and shape-equal; cells of dst not covered
// by sparse nonzeros are zeroed.
func CopyInto(dst, src *Matrix) {
	checkInto(dst, src.Rows, src.Cols, "CopyInto")
	if src.dense != nil {
		copy(dst.dense, src.dense)
		return
	}
	n := src.Cols
	for i := 0; i < src.Rows; i++ {
		row := dst.dense[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
		vals, cols := src.sparse.Row(i)
		for k, j := range cols {
			row[j] = vals[k]
		}
	}
}

// BinaryInto evaluates dst = A op B without allocating the result,
// supporting the same shape combinations as Binary. dst must be dense with
// the result shape; aliasing dst with a dense A or B is allowed (the loops
// are element-local). Sparse operands fall back to the allocating kernel
// with the scratch result returned to the buffer pool.
func BinaryInto(dst *Matrix, op BinOp, a, b *Matrix) {
	rows, cols := a.Rows, a.Cols
	if rows == 1 && cols == 1 && (b.Rows > 1 || b.Cols > 1) {
		rows, cols = b.Rows, b.Cols
	}
	checkInto(dst, rows, cols, "BinaryInto")
	dd := dst.dense
	switch {
	case b.Rows == 1 && b.Cols == 1 && a.dense != nil:
		s := b.Scalar()
		for k, v := range a.dense {
			dd[k] = op.Apply(v, s)
		}
		return
	case a.Rows == 1 && a.Cols == 1 && b.dense != nil:
		s := a.Scalar()
		for k, v := range b.dense {
			dd[k] = op.Apply(s, v)
		}
		return
	case a.Rows == b.Rows && a.Cols == b.Cols && a.dense != nil && b.dense != nil:
		for k, v := range a.dense {
			dd[k] = op.Apply(v, b.dense[k])
		}
		return
	case b.Rows == a.Rows && b.Cols == 1 && a.dense != nil && b.dense != nil:
		for i := 0; i < rows; i++ {
			s, row := b.dense[i], a.dense[i*cols:(i+1)*cols]
			di := i * cols
			for j, v := range row {
				dd[di+j] = op.Apply(v, s)
			}
		}
		return
	case b.Rows == 1 && b.Cols == a.Cols && a.dense != nil && b.dense != nil:
		for i := 0; i < rows; i++ {
			row := a.dense[i*cols : (i+1)*cols]
			di := i * cols
			for j, v := range row {
				dd[di+j] = op.Apply(v, b.dense[j])
			}
		}
		return
	}
	r := Binary(op, a, b)
	CopyInto(dst, r)
	r.Release()
}

// UnaryInto evaluates dst = op(A) without allocating the result. dst must
// be dense with A's shape; aliasing dst with a dense A is allowed.
func UnaryInto(dst *Matrix, op UnOp, a *Matrix) {
	checkInto(dst, a.Rows, a.Cols, "UnaryInto")
	if a.dense != nil {
		for k, v := range a.dense {
			dst.dense[k] = op.Apply(v)
		}
		return
	}
	r := Unary(op, a)
	CopyInto(dst, r)
	r.Release()
}

// MatMultInto computes dst = A %*% B into a caller-provided dense, ZEROED
// destination (the kernels accumulate). dst must be a.Rows×b.Cols; the
// sparse×sparse pairing falls back to the allocating kernel.
func MatMultInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: matmult shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto(dst, a.Rows, b.Cols, "MatMultInto")
	switch {
	case !a.IsSparse() && !b.IsSparse():
		Ctx{}.matMultDenseDense(a, b, dst)
	case a.IsSparse() && !b.IsSparse():
		Ctx{}.matMultSparseDense(a, b, dst)
	case !a.IsSparse() && b.IsSparse():
		Ctx{}.matMultDenseSparse(a, b, dst)
	default:
		r := Ctx{}.matMultSparseSparse(a, b)
		CopyInto(dst, r)
		r.Release()
	}
}

// AggInto evaluates dst = agg(A) without allocating the result. dst must
// be dense with the aggregate's shape (rows×1 for DirRow, 1×cols for
// DirCol, 1×1 for DirAll).
func AggInto(dst *Matrix, op AggOp, dir AggDir, a *Matrix) {
	switch dir {
	case DirAll:
		checkInto(dst, 1, 1, "AggInto")
		dst.dense[0] = Ctx{}.aggAll(op, a)
	case DirRow:
		checkInto(dst, a.Rows, 1, "AggInto")
		Ctx{}.aggRowsInto(dst.dense, op, a)
	case DirCol:
		checkInto(dst, 1, a.Cols, "AggInto")
		r := Ctx{}.aggCols(op, a)
		copy(dst.dense, r.dense)
		r.Release()
	default:
		panic(fmt.Sprintf("matrix: unknown aggregation direction %v", dir))
	}
}
