package bench

import (
	"fmt"

	"sysml/internal/matrix"
)

// Fig8Cell reproduces Fig. 8(a)/(b): sum(X*Y*Z) over dense or sparse
// inputs of increasing size.
func Fig8Cell(o Options, sparse bool) *Table {
	kind := "dense"
	sp := 1.0
	if sparse {
		kind, sp = "sparse", 0.1
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 8 Cell: sum(X*Y*Z), %s", kind),
		Columns: append([]string{"cells"}, ModeNames()...),
	}
	script := `s = sum(X * Y * Z)`
	cols := 100
	for _, rows := range []int{o.rows(1000), o.rows(10000), o.rows(100000)} {
		inputs := map[string]*matrix.Matrix{
			"X": matrix.Rand(rows, cols, sp, -1, 1, 1),
			"Y": matrix.Rand(rows, cols, 1, -1, 1, 2),
			"Z": matrix.Rand(rows, cols, 1, -1, 1, 3),
		}
		row := []string{fmt.Sprintf("%d", rows*cols)}
		for _, mode := range Modes {
			row = append(row, ms(timeScript(mode, o.Reps, script, inputs, nil)))
		}
		t.Add(row...)
	}
	return t
}

// Fig8MAgg reproduces Fig. 8(c)/(d): the multi-aggregate pair sum(X*Y),
// sum(X*Z) with shared input X.
func Fig8MAgg(o Options, sparse bool) *Table {
	kind := "dense"
	sp := 1.0
	if sparse {
		kind, sp = "sparse", 0.1
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 8 MAgg: sum(X*Y), sum(X*Z), %s", kind),
		Columns: append([]string{"cells"}, ModeNames()...),
	}
	script := "s1 = sum(X * Y)\ns2 = sum(X * Z)"
	cols := 100
	for _, rows := range []int{o.rows(1000), o.rows(10000), o.rows(100000)} {
		inputs := map[string]*matrix.Matrix{
			"X": matrix.Rand(rows, cols, sp, -1, 1, 4),
			"Y": matrix.Rand(rows, cols, 1, -1, 1, 5),
			"Z": matrix.Rand(rows, cols, 1, -1, 1, 6),
		}
		row := []string{fmt.Sprintf("%d", rows*cols)}
		for _, mode := range Modes {
			row = append(row, ms(timeScript(mode, o.Reps, script, inputs, nil)))
		}
		t.Add(row...)
	}
	return t
}

// Fig8Row reproduces Fig. 8(e)/(f): the matrix-vector chain t(X)%*%(X%*%v).
func Fig8Row(o Options, sparse bool) *Table {
	kind := "dense"
	sp := 1.0
	if sparse {
		kind, sp = "sparse", 0.1
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 8 Row: t(X)%%*%%(X%%*%%v), %s", kind),
		Columns: append([]string{"cells"}, ModeNames()...),
	}
	script := `w = t(X) %*% (X %*% v)`
	cols := 100
	for _, rows := range []int{o.rows(1000), o.rows(10000), o.rows(100000)} {
		inputs := map[string]*matrix.Matrix{
			"X": matrix.Rand(rows, cols, sp, -1, 1, 7),
			"v": matrix.Rand(cols, 1, 1, -1, 1, 8),
		}
		row := []string{fmt.Sprintf("%d", rows*cols)}
		for _, mode := range Modes {
			row = append(row, ms(timeScript(mode, o.Reps, script, inputs, nil)))
		}
		t.Add(row...)
	}
	return t
}

// Fig8RowMM reproduces Fig. 8(g): the matrix-matrix chain t(X)%*%(X%*%V)
// with a narrow V, where the hand-coded mmchain operator does not apply.
func Fig8RowMM(o Options) *Table {
	t := &Table{
		Title:   "Fig 8 RowMM: t(X)%*%(X%*%V), V 100x2, dense",
		Columns: append([]string{"cells"}, ModeNames()...),
	}
	script := `W = t(X) %*% (X %*% V)`
	cols := 100
	for _, rows := range []int{o.rows(1000), o.rows(10000), o.rows(100000)} {
		inputs := map[string]*matrix.Matrix{
			"X": matrix.Rand(rows, cols, 1, -1, 1, 9),
			"V": matrix.Rand(cols, 2, 1, -1, 1, 10),
		}
		row := []string{fmt.Sprintf("%d", rows*cols)}
		for _, mode := range Modes {
			row = append(row, ms(timeScript(mode, o.Reps, script, inputs, nil)))
		}
		t.Add(row...)
	}
	return t
}

// Fig8Outer reproduces Fig. 8(h): sum(X*log(U%*%t(V)+1e-15)) over a
// sparsity sweep of X, the sparsity-exploitation showcase.
func Fig8Outer(o Options) *Table {
	t := &Table{
		Title:   "Fig 8 Outer: sum(X*log(U%*%t(V)+1e-15)), sparsity sweep",
		Columns: append([]string{"sparsity"}, ModeNames()...),
	}
	script := `s = sum(X * log(U %*% t(V) + 1e-15))`
	n := o.rows(2000)
	rank := 100
	u := matrix.Rand(n, rank, 1, 0.1, 1, 11)
	v := matrix.Rand(n, rank, 1, 0.1, 1, 12)
	for _, sp := range []float64{1, 0.1, 0.01, 0.001, 0.0001} {
		inputs := map[string]*matrix.Matrix{
			"X": matrix.Rand(n, n, sp, 1, 2, 13),
			"U": u,
			"V": v,
		}
		row := []string{fmt.Sprintf("%g", sp)}
		for _, mode := range Modes {
			row = append(row, ms(timeScript(mode, o.Reps, script, inputs, nil)))
		}
		t.Add(row...)
	}
	return t
}
