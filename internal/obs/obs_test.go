package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Inc("a")
				m.Add("b", 2)
				m.SetGauge("g", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("a"); got != workers*per {
		t.Fatalf("counter a = %d, want %d", got, workers*per)
	}
	snap := m.Snapshot()
	if got := snap.Counter("b"); got != 2*workers*per {
		t.Fatalf("counter b = %d, want %d", got, 2*workers*per)
	}
	if g := snap.Gauge("g"); g != per-1 {
		t.Fatalf("gauge g = %g, want %d", g, per-1)
	}
	if got := m.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Observe("h", float64(i%10)+1)
			}
		}(w)
	}
	wg.Wait()
	h := m.Snapshot().Hist("h")
	if h.Count != workers*per {
		t.Fatalf("count = %d, want %d", h.Count, workers*per)
	}
	// Sum of 1..10 repeated evenly.
	want := float64(workers*per/10) * 55
	if math.Abs(h.Sum-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum, want)
	}
	if h.Min != 1 || h.Max != 10 {
		t.Fatalf("min/max = %g/%g, want 1/10", h.Min, h.Max)
	}
	if got := h.Mean(); math.Abs(got-5.5) > 1e-9 {
		t.Fatalf("mean = %g, want 5.5", got)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b
	}
	if total != h.Count {
		t.Fatalf("bucket total = %d, count = %d", total, h.Count)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	h := NewMetrics().Hist("empty").Snapshot()
	if h.Count != 0 || h.Min != 0 || h.Max != 0 || h.Mean() != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", h)
	}
}

func TestSpanRecordsPhase(t *testing.T) {
	m := NewMetrics()
	var c Collector
	sp := StartSpan(m, &c, "compile")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatal("span duration not positive")
	}
	h := m.Snapshot().Hist("phase.compile")
	if h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("phase histogram not recorded: %+v", h)
	}
	ev := c.Events()
	if len(ev) != 1 || ev[0].Kind != EventSpan || ev[0].Name != "compile" {
		t.Fatalf("sink events = %+v", ev)
	}
	// Zero-instrument span is a no-op.
	if d := StartSpan(nil, nil, "x").End(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	s.Emit(Event{Kind: EventExplain, Name: "block 1", Text: "# EXPLAIN\n"})
	s.Emit(Event{Kind: EventSpan, Name: "execute", Dur: time.Millisecond})
	if got := buf.String(); got != "# EXPLAIN\n" {
		t.Fatalf("spans must be off by default, got %q", got)
	}
	s.IncludeSpans = true
	s.Emit(Event{Kind: EventSpan, Name: "execute", Dur: time.Millisecond})
	if !strings.Contains(buf.String(), "span execute: 1ms") {
		t.Fatalf("span line missing: %q", buf.String())
	}
}

func TestMultiSink(t *testing.T) {
	var a, b Collector
	MultiSink{&a, nil, &b}.Emit(Event{Kind: EventExplain, Text: "x"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink did not fan out")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Inc("a")
	m.Observe("h", 1)
	m.SetGauge("g", 1)
	if m.Counter("a") != 0 {
		t.Fatal("nil metrics counter")
	}
	s := m.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil metrics snapshot")
	}
}

func TestSnapshotString(t *testing.T) {
	m := NewMetrics()
	m.Inc("exec.ops")
	m.SetGauge("par.workers", 8)
	m.ObserveDuration("phase.execute", 2*time.Millisecond)
	out := m.Snapshot().String()
	for _, want := range []string{"exec.ops 1", "par.workers 8", "phase.execute count=1",
		"min=2ms", "max=2ms", "p99=2ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot string missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramRaceHammer hammers one histogram from many goroutines under
// the race detector: concurrent observes, snapshots, and quantile reads
// must be data-race free, and the final quiescent snapshot exact.
func TestHistogramRaceHammer(t *testing.T) {
	m := NewMetrics()
	const workers, per = 16, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Observe("h", float64(w*per+i)*1e-6)
				if i%32 == 0 {
					// Concurrent readers: exercise snapshot + quantile under
					// load (values are only checked at quiescence below —
					// count is incremented before the bucket, so mid-flight
					// snapshots may be ahead by in-progress observations).
					_ = m.Snapshot().Hist("h").Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	h := m.Snapshot().Hist("h")
	if h.Count != workers*per {
		t.Fatalf("count = %d, want %d", h.Count, workers*per)
	}
	if h.Min != 0 || h.Max != float64(workers*per-1)*1e-6 {
		t.Fatalf("min/max = %g/%g", h.Min, h.Max)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b
	}
	if total != h.Count {
		t.Fatalf("quiescent bucket total %d != count %d", total, h.Count)
	}
}

// TestHistogramBucketBoundaries pins the placement of values exactly on
// bucket bounds: v == histBuckets[i] must land in bucket i (bounds are
// inclusive upper bounds, matching the Prometheus le semantics), and a
// value above the last bound must land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	for i, bound := range histBuckets {
		m := NewMetrics()
		m.Observe("h", bound)
		s := m.Snapshot().Hist("h")
		if s.Buckets[i] != 1 {
			t.Errorf("v == histBuckets[%d] (%g) landed in bucket %v, want %d",
				i, bound, s.Buckets, i)
		}
		// Just above the bound spills into the next bucket.
		m2 := NewMetrics()
		m2.Observe("h", bound*(1+1e-12))
		if s2 := m2.Snapshot().Hist("h"); s2.Buckets[i+1] != 1 {
			t.Errorf("v just above histBuckets[%d] stayed in bucket %d", i, i)
		}
	}
	m := NewMetrics()
	m.Observe("h", histBuckets[numHistBuckets-1]*1000)
	if s := m.Snapshot().Hist("h"); s.Buckets[numHistBuckets] != 1 {
		t.Errorf("overflow value not in overflow bucket: %v", s.Buckets)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is 0.
	var empty HistSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	// Single value: clamped to the exact observation for every q.
	m := NewMetrics()
	m.Observe("one", 3e-4)
	one := m.Snapshot().Hist("one")
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := one.Quantile(q); math.Abs(got-3e-4) > 1e-18 {
			t.Errorf("single-value Quantile(%g) = %g, want 3e-4", q, got)
		}
	}

	// Overflow bucket: values beyond the last bound interpolate toward the
	// exact Max, never +Inf.
	m2 := NewMetrics()
	top := histBuckets[numHistBuckets-1]
	for _, v := range []float64{top * 2, top * 5, top * 10} {
		m2.Observe("over", v)
	}
	over := m2.Snapshot().Hist("over")
	if got := over.Quantile(0.99); math.IsInf(got, 1) || got > over.Max {
		t.Errorf("overflow Quantile(0.99) = %g, max %g", got, over.Max)
	}
	if got := over.Quantile(1); got != over.Max {
		t.Errorf("Quantile(1) = %g, want max %g", got, over.Max)
	}
	if got := over.Quantile(0); got != over.Min {
		t.Errorf("Quantile(0) = %g, want min %g", got, over.Min)
	}

	// Monotonicity across a spread distribution.
	m3 := NewMetrics()
	for i := 1; i <= 1000; i++ {
		m3.Observe("spread", float64(i)*1e-5)
	}
	spread := m3.Snapshot().Hist("spread")
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		got := spread.Quantile(q)
		if got < prev {
			t.Errorf("Quantile not monotone: q=%g -> %g after %g", q, got, prev)
		}
		prev = got
	}
	// The median of 10µs..10ms must land inside the observed range and
	// near the true median (bucket interpolation, so allow a 4x bucket).
	med := spread.Quantile(0.5)
	if med < spread.Min || med > spread.Max {
		t.Errorf("median %g outside [%g, %g]", med, spread.Min, spread.Max)
	}
	if med < 1e-3 || med > 17e-3 {
		t.Errorf("median %g implausible for 1e-5..1e-2", med)
	}
}
