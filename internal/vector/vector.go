// Package vector implements the library of vector primitives that generated
// fused operators call into, mirroring the SPOOF/SystemML codegen primitive
// library (dotProduct, vectMultAdd, vectMatMult, vectOuterMultAdd, ...).
//
// Keeping these primitives out of the generated operators keeps the per-
// operator instruction footprint small (paper §5.2, Fig. 10); the hot loops
// here are written with 8-fold unrolling like their Java counterparts.
//
// Conventions: dense vectors are slices with an explicit offset and length so
// that rows of a row-major matrix can be addressed without sub-slicing;
// sparse rows are (values, indexes) pairs relative to a column offset.
package vector

import "math"

// DotProduct returns sum(a[ai+k]*b[bi+k]) for k in [0,n).
func DotProduct(a, b []float64, ai, bi, n int) float64 {
	var v0, v1, v2, v3 float64
	k := 0
	for ; k+8 <= n; k += 8 {
		v0 += a[ai+k]*b[bi+k] + a[ai+k+4]*b[bi+k+4]
		v1 += a[ai+k+1]*b[bi+k+1] + a[ai+k+5]*b[bi+k+5]
		v2 += a[ai+k+2]*b[bi+k+2] + a[ai+k+6]*b[bi+k+6]
		v3 += a[ai+k+3]*b[bi+k+3] + a[ai+k+7]*b[bi+k+7]
	}
	s := v0 + v1 + v2 + v3
	for ; k < n; k++ {
		s += a[ai+k] * b[bi+k]
	}
	return s
}

// DotProductSparse returns the inner product of a sparse row (avals over
// column indexes aix) with a dense vector b starting at bi.
func DotProductSparse(avals []float64, aix []int, b []float64, bi int) float64 {
	var s float64
	for k, j := range aix {
		s += avals[k] * b[bi+j]
	}
	return s
}

// Sum returns the sum of a[ai:ai+n].
func Sum(a []float64, ai, n int) float64 {
	var v0, v1, v2, v3 float64
	k := 0
	for ; k+8 <= n; k += 8 {
		v0 += a[ai+k] + a[ai+k+4]
		v1 += a[ai+k+1] + a[ai+k+5]
		v2 += a[ai+k+2] + a[ai+k+6]
		v3 += a[ai+k+3] + a[ai+k+7]
	}
	s := v0 + v1 + v2 + v3
	for ; k < n; k++ {
		s += a[ai+k]
	}
	return s
}

// SumSq returns the sum of squares of a[ai:ai+n].
func SumSq(a []float64, ai, n int) float64 {
	var s float64
	for k := 0; k < n; k++ {
		s += a[ai+k] * a[ai+k]
	}
	return s
}

// Min returns the minimum of a[ai:ai+n]; +Inf for n == 0.
func Min(a []float64, ai, n int) float64 {
	m := math.Inf(1)
	for k := 0; k < n; k++ {
		if a[ai+k] < m {
			m = a[ai+k]
		}
	}
	return m
}

// Max returns the maximum of a[ai:ai+n]; -Inf for n == 0.
func Max(a []float64, ai, n int) float64 {
	m := math.Inf(-1)
	for k := 0; k < n; k++ {
		if a[ai+k] > m {
			m = a[ai+k]
		}
	}
	return m
}

// IndexMax returns the zero-based index of the maximum of a[ai:ai+n]
// (first occurrence); -1 for n == 0.
func IndexMax(a []float64, ai, n int) int {
	if n == 0 {
		return -1
	}
	ix, m := 0, a[ai]
	for k := 1; k < n; k++ {
		if a[ai+k] > m {
			ix, m = k, a[ai+k]
		}
	}
	return ix
}

// CountNnz returns the number of non-zero entries in a[ai:ai+n].
func CountNnz(a []float64, ai, n int) int {
	c := 0
	for k := 0; k < n; k++ {
		if a[ai+k] != 0 {
			c++
		}
	}
	return c
}

// MultAdd computes c[ci+k] += bval * a[ai+k] for k in [0,n)
// (the vectMultAdd primitive used by the Outer template).
func MultAdd(a []float64, bval float64, c []float64, ai, ci, n int) {
	if bval == 0 {
		return
	}
	if n < 8 {
		for k := 0; k < n; k++ {
			c[ci+k] += bval * a[ai+k]
		}
		return
	}
	k := 0
	for ; k+8 <= n; k += 8 {
		c[ci+k] += bval * a[ai+k]
		c[ci+k+1] += bval * a[ai+k+1]
		c[ci+k+2] += bval * a[ai+k+2]
		c[ci+k+3] += bval * a[ai+k+3]
		c[ci+k+4] += bval * a[ai+k+4]
		c[ci+k+5] += bval * a[ai+k+5]
		c[ci+k+6] += bval * a[ai+k+6]
		c[ci+k+7] += bval * a[ai+k+7]
	}
	for ; k < n; k++ {
		c[ci+k] += bval * a[ai+k]
	}
}

// MultAdd4 computes the rank-4 update
//
//	c[ci+k] += b0*a[a0+k] + b1*a[a1+k] + b2*a[a2+k] + b3*a[a3+k]
//
// for k in [0,n). Fusing four MultAdd calls into one pass loads and stores
// each c element once per four multiplies instead of once per multiply,
// which is what makes the blocked matmult and TSMM kernels faster than
// their row-at-a-time versions even single-threaded.
func MultAdd4(a []float64, b0, b1, b2, b3 float64, c []float64, a0, a1, a2, a3, ci, n int) {
	if b0 == 0 && b1 == 0 && b2 == 0 && b3 == 0 {
		return
	}
	k := 0
	for ; k+4 <= n; k += 4 {
		s0 := b0*a[a0+k] + b1*a[a1+k] + b2*a[a2+k] + b3*a[a3+k]
		s1 := b0*a[a0+k+1] + b1*a[a1+k+1] + b2*a[a2+k+1] + b3*a[a3+k+1]
		s2 := b0*a[a0+k+2] + b1*a[a1+k+2] + b2*a[a2+k+2] + b3*a[a3+k+2]
		s3 := b0*a[a0+k+3] + b1*a[a1+k+3] + b2*a[a2+k+3] + b3*a[a3+k+3]
		c[ci+k] += s0
		c[ci+k+1] += s1
		c[ci+k+2] += s2
		c[ci+k+3] += s3
	}
	for ; k < n; k++ {
		c[ci+k] += b0*a[a0+k] + b1*a[a1+k] + b2*a[a2+k] + b3*a[a3+k]
	}
}

// MultAdd8 is the rank-8 variant of MultAdd4: eight scaled rows of a are
// accumulated into c in one pass, so each c element is loaded and stored
// once per eight multiplies. The pre-sliced row views let the compiler
// eliminate bounds checks in the hot loop.
func MultAdd8(a []float64, b0, b1, b2, b3, b4, b5, b6, b7 float64, c []float64, a0, a1, a2, a3, a4, a5, a6, a7, ci, n int) {
	r0, r1, r2, r3 := a[a0:a0+n], a[a1:a1+n], a[a2:a2+n], a[a3:a3+n]
	r4, r5, r6, r7 := a[a4:a4+n], a[a5:a5+n], a[a6:a6+n], a[a7:a7+n]
	cc := c[ci : ci+n]
	for k := range cc {
		cc[k] += b0*r0[k] + b1*r1[k] + b2*r2[k] + b3*r3[k] +
			b4*r4[k] + b5*r5[k] + b6*r6[k] + b7*r7[k]
	}
}

// Add computes c[ci+k] += a[ai+k] for k in [0,n).
func Add(a, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] += a[ai+k]
	}
}

// AddSparse computes c[ci+j] += avals[k] for each sparse entry (j, avals[k]).
func AddSparse(avals []float64, aix []int, c []float64, ci int) {
	for k, j := range aix {
		c[ci+j] += avals[k]
	}
}

// MatMult computes the row-vector/matrix product c = a (1×n) * B (n×m),
// with B row-major at offset bi; c must have length >= ci+m
// (the vectMatMult primitive of the Row template).
func MatMult(a, b, c []float64, ai, bi, ci, n, m int) {
	for j := 0; j < m; j++ {
		c[ci+j] = 0
	}
	if m < 8 {
		// Narrow outputs: inline accumulation avoids per-row call overhead
		// (the dominant case for Row templates with few classes/centroids).
		for i := 0; i < n; i++ {
			av := a[ai+i]
			if av == 0 {
				continue
			}
			bo := bi + i*m
			for j := 0; j < m; j++ {
				c[ci+j] += av * b[bo+j]
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		MultAdd(b, a[ai+i], c, bi+i*m, ci, m)
	}
}

// MatMultSparse computes c = a * B for a sparse row a over an n×m dense B.
func MatMultSparse(avals []float64, aix []int, b, c []float64, bi, ci, m int) {
	for j := 0; j < m; j++ {
		c[ci+j] = 0
	}
	for k, i := range aix {
		MultAdd(b, avals[k], c, bi+i*m, ci, m)
	}
}

// TMatMult computes c = t(B (n×m)) * a (n×1) = a^T B as a column result of
// length m; equivalent to MatMult but kept for readability at call sites.
func TMatMult(a, b, c []float64, ai, bi, ci, n, m int) {
	MatMult(a, b, c, ai, bi, ci, n, m)
}

// OuterMultAdd accumulates the outer product a (len n) ⊗ b (len m) into the
// row-major n×m matrix c (the vectOuterMultAdd primitive).
func OuterMultAdd(a, b, c []float64, ai, bi, ci, n, m int) {
	if m < 8 {
		for i := 0; i < n; i++ {
			av := a[ai+i]
			if av == 0 {
				continue
			}
			co := ci + i*m
			for j := 0; j < m; j++ {
				c[co+j] += av * b[bi+j]
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		MultAdd(b, a[ai+i], c, bi, ci+i*m, m)
	}
}

// OuterMultAddSparse accumulates a sparse row (avals, aix) ⊗ b into c.
func OuterMultAddSparse(avals []float64, aix []int, b, c []float64, bi, ci, m int) {
	for k, i := range aix {
		MultAdd(b, avals[k], c, bi, ci+i*m, m)
	}
}
