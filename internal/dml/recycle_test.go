package dml

import (
	"io"
	"math"
	"strings"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/matrix"
)

// TestEnvRecyclingSameBlockAlias pins the hazard the batch release in
// setEnvAll exists for: a block whose outputs alias each other
// (tmp = Y; Y = Y + 1) must not recycle Y's old storage while tmp still
// references it.
func TestEnvRecyclingSameBlockAlias(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	s.Bind("X", matrix.Rand(50, 40, 1, -1, 1, 3))
	if err := s.Run("Y = X + 1\n"); err != nil {
		t.Fatal(err)
	}
	wantOld := s.Env["Y"].ToDense().Dense()
	snapshot := append([]float64(nil), wantOld...)
	if err := s.Run("tmp = Y\nY = Y + 1\n"); err != nil {
		t.Fatal(err)
	}
	tmp := s.Env["tmp"].ToDense().Dense()
	y := s.Env["Y"].ToDense().Dense()
	for i := range snapshot {
		if tmp[i] != snapshot[i] {
			t.Fatalf("tmp cell %d corrupted by recycling: got %v want %v", i, tmp[i], snapshot[i])
		}
		if math.Abs(y[i]-(snapshot[i]+1)) > 1e-12 {
			t.Fatalf("Y cell %d: got %v want %v", i, y[i], snapshot[i]+1)
		}
	}
}

// TestEnvRecyclingKeepsBoundInputs: reassigning a variable the user bound
// must not recycle the user's matrix.
func TestEnvRecyclingKeepsBoundInputs(t *testing.T) {
	s := newTestSession(codegen.ModeGen)
	x := matrix.Rand(30, 30, 1, -1, 1, 5)
	orig := append([]float64(nil), x.Dense()...)
	s.Bind("X", x)
	for i := 0; i < 3; i++ {
		if err := s.Run("X = X + 1\nZ = X * 2\n"); err != nil {
			t.Fatal(err)
		}
	}
	for i := range orig {
		if x.Dense()[i] != orig[i] {
			t.Fatalf("bound input cell %d overwritten/recycled: got %v want %v",
				i, x.Dense()[i], orig[i])
		}
	}
}

// TestHorizontalEndToEnd runs the flagship sibling script through the full
// session path: merged results must match Base mode, EXPLAIN must show the
// merged Horizontal operator at scale and decline it on a tiny input, and
// the dispatch counters must attribute the fused chunk class.
func TestHorizontalEndToEnd(t *testing.T) {
	script := "C = colSums(X)\ns = sum(X^2)\nY = X*3+1\n"
	x := matrix.Rand(1024, 1024, 1, -1, 1, 17)

	gen := newTestSession(codegen.ModeGen)
	gen.Bind("X", x)
	base := newTestSession(codegen.ModeBase)
	base.Bind("X", x)
	if err := gen.Run(script); err != nil {
		t.Fatal(err)
	}
	if err := base.Run(script); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C", "s", "Y"} {
		g, b := gen.Env[name].ToDense().Dense(), base.Env[name].ToDense().Dense()
		for i := range b {
			if math.Abs(g[i]-b[i]) > 1e-9*math.Abs(b[i])+1e-12 {
				t.Fatalf("%s cell %d: gen %v base %v", name, i, g[i], b[i])
			}
		}
	}

	snap := gen.Metrics()
	if snap.Counter("codegen.chunk.hit.horiz.fused") == 0 {
		t.Error("fused horizontal dispatch not counted under codegen.chunk.hit.horiz.fused")
	}

	explain := func(m *matrix.Matrix) string {
		s := NewSession(codegen.DefaultConfig())
		s.Out = io.Discard
		s.Bind("X", m)
		text, err := s.Explain(script)
		if err != nil {
			t.Fatal(err)
		}
		return text
	}
	big := explain(x)
	if !strings.Contains(big, "HORIZONTAL") || !strings.Contains(big, "Horizontal TMP") {
		t.Fatalf("EXPLAIN at scale must show the merged Horizontal operator:\n%s", big)
	}
	if !strings.Contains(big, "horiz.fused") {
		t.Fatalf("EXPLAIN must list the fused chunk class:\n%s", big)
	}
	tiny := explain(matrix.Rand(50, 50, 1, -1, 1, 18))
	if strings.Contains(tiny, "Horizontal TMP") {
		t.Fatalf("tiny input must keep the vertical-only plan:\n%s", tiny)
	}
}
