package compress

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sysml/internal/matrix"
)

// The attachment registry associates compressed sidecar state with dense
// matrices by identity: either a compressed form (the runtime executes
// fused operators over it, the dist backend ships its encoded bytes) or a
// decline marker recording why auto-compression passed on the input (so the
// sampling estimator runs once per binding, not once per loop iteration).
// The registry lives here rather than as a field on matrix.Matrix so that
// concurrent sessions sharing bound inputs never race on matrix state: all
// access is mutex-guarded, and a release hook drops entries when the
// backing storage is recycled.
type attachState struct {
	cm     *CMatrix
	reason string // non-empty = declined
}

const attachCap = 512

var (
	attachMu   sync.Mutex
	attachMap  map[*matrix.Matrix]*attachState
	attachFIFO []*matrix.Matrix // insertion order for capacity eviction
	attachLen  atomic.Int64     // fast-path guard for the release hook
)

func init() {
	matrix.OnRelease(func(m *matrix.Matrix) {
		if attachLen.Load() == 0 {
			return
		}
		Drop(m)
	})
}

// Attach records cm as the compressed form of m, replacing any prior
// attachment or decline marker. The oldest entry is evicted once the
// registry exceeds its capacity.
func Attach(m *matrix.Matrix, cm *CMatrix) {
	if m == nil || cm == nil {
		return
	}
	setState(m, &attachState{cm: cm})
}

// Decline marks m as not worth compressing, with a human-readable reason
// surfaced by EXPLAIN. Later Attach calls override the marker.
func Decline(m *matrix.Matrix, reason string) {
	if m == nil {
		return
	}
	if reason == "" {
		reason = "declined"
	}
	setState(m, &attachState{reason: reason})
}

func setState(m *matrix.Matrix, st *attachState) {
	attachMu.Lock()
	defer attachMu.Unlock()
	if attachMap == nil {
		attachMap = make(map[*matrix.Matrix]*attachState)
	}
	if _, ok := attachMap[m]; !ok {
		attachFIFO = append(attachFIFO, m)
		for len(attachFIFO) > attachCap {
			old := attachFIFO[0]
			attachFIFO = attachFIFO[1:]
			delete(attachMap, old)
		}
	}
	attachMap[m] = st
	attachLen.Store(int64(len(attachMap)))
}

// Of returns the compressed form attached to m, or nil.
func Of(m *matrix.Matrix) *CMatrix {
	if m == nil || attachLen.Load() == 0 {
		return nil
	}
	attachMu.Lock()
	defer attachMu.Unlock()
	if st := attachMap[m]; st != nil {
		return st.cm
	}
	return nil
}

// DeclineReason reports whether m carries a decline marker and its reason.
func DeclineReason(m *matrix.Matrix) (string, bool) {
	if m == nil || attachLen.Load() == 0 {
		return "", false
	}
	attachMu.Lock()
	defer attachMu.Unlock()
	if st := attachMap[m]; st != nil && st.cm == nil {
		return st.reason, true
	}
	return "", false
}

// Drop removes any attachment or decline marker for m.
func Drop(m *matrix.Matrix) {
	if m == nil || attachLen.Load() == 0 {
		return
	}
	attachMu.Lock()
	defer attachMu.Unlock()
	if _, ok := attachMap[m]; !ok {
		return
	}
	delete(attachMap, m)
	for i, e := range attachFIFO {
		if e == m {
			attachFIFO = append(attachFIFO[:i], attachFIFO[i+1:]...)
			break
		}
	}
	attachLen.Store(int64(len(attachMap)))
}

// DropAll clears the registry (test hygiene and session resets).
func DropAll() {
	attachMu.Lock()
	defer attachMu.Unlock()
	attachMap = nil
	attachFIFO = nil
	attachLen.Store(0)
}

// Summary describes the encoding mix of a compressed matrix, e.g.
// "DDC×12 RLE×3 OLE×2" — the per-input encoding line of the COMPRESSED
// EXPLAIN section.
func Summary(cm *CMatrix) string {
	if cm == nil {
		return ""
	}
	byKind := map[string]int{}
	for _, g := range cm.Groups {
		switch g.(type) {
		case *DDCGroup:
			byKind["DDC"]++
		case *RLEGroup:
			byKind["RLE"]++
		case *OLEGroup:
			byKind["OLE"]++
		case *UCGroup:
			byKind["UC"]++
		default:
			byKind["?"]++
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s×%d", k, byKind[k]))
	}
	return strings.Join(parts, " ")
}
