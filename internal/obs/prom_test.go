package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Exposition-format grammar, per metric line: name, optional {labels},
// value. Label bodies are key="value" pairs; values may use e-notation.
var (
	promLineRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)
	promTypeRe  = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// parseProm validates the exposition line-by-line and returns
// name→value for single samples plus the set of TYPE-declared families.
func parseProm(t *testing.T, text string) (samples map[string]string, families map[string]string) {
	t.Helper()
	samples, families = map[string]string{}, map[string]string{}
	var lastFamily string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			if _, dup := families[m[1]]; dup {
				t.Errorf("line %d: duplicate TYPE for family %q", ln+1, m[1])
			}
			families[m[1]] = m[2]
			lastFamily = m[1]
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d does not match the exposition grammar: %q", ln+1, line)
		}
		name, labels := m[1], m[2]
		if !strings.HasPrefix(name, lastFamily) {
			t.Errorf("line %d: sample %q outside its family block %q", ln+1, name, lastFamily)
		}
		if labels != "" {
			for _, pair := range strings.Split(labels[1:len(labels)-1], ",") {
				if !promLabelRe.MatchString(pair) {
					t.Errorf("line %d: bad label pair %q", ln+1, pair)
				}
			}
		}
		samples[name+labels] = m[3]
	}
	return samples, families
}

// TestPrometheusExposition is the exposition golden test: every line of a
// representative snapshot must parse under the name/label/value grammar,
// families must be typed once, and histogram buckets must be cumulative.
func TestPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.Add("plancache.hits", 7)
	m.Add("pool.gets", 3)
	m.Add(LabeledName("serve.tenant.requests", "tenant", "alpha"), 2)
	m.Add(LabeledName("serve.tenant.requests", "tenant", "beta"), 5)
	m.SetGauge("pool.bytes.live", 1024)
	for _, v := range []float64{1e-6, 5e-5, 2e-3, 2e-3, 0.3} {
		m.Observe("phase.execute", v)
	}
	m.Observe(LabeledName("serve.request.total.seconds", "tenant", "alpha"), 0.02)

	var b strings.Builder
	if err := WritePrometheus(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples, families := parseProm(t, b.String())

	if got := samples["plancache_hits"]; got != "7" {
		t.Errorf("plancache_hits = %q, want 7", got)
	}
	if families["plancache_hits"] != "counter" {
		t.Errorf("plancache_hits typed %q", families["plancache_hits"])
	}
	if families["pool_bytes_live"] != "gauge" {
		t.Errorf("pool_bytes_live typed %q", families["pool_bytes_live"])
	}
	if got := samples[`serve_tenant_requests{tenant="alpha"}`]; got != "2" {
		t.Errorf("alpha requests = %q, want 2", got)
	}
	if got := samples[`serve_tenant_requests{tenant="beta"}`]; got != "5" {
		t.Errorf("beta requests = %q, want 5", got)
	}

	// Histogram: cumulative buckets, +Inf == count, sum matches.
	if families["phase_execute"] != "histogram" {
		t.Fatalf("phase_execute typed %q", families["phase_execute"])
	}
	if got := samples["phase_execute_count"]; got != "5" {
		t.Errorf("phase_execute_count = %q, want 5", got)
	}
	if got := samples[`phase_execute_bucket{le="+Inf"}`]; got != "5" {
		t.Errorf(`bucket{le="+Inf"} = %q, want 5`, got)
	}
	var prev int64 = -1
	nBuckets := 0
	for key, val := range samples {
		if !strings.HasPrefix(key, "phase_execute_bucket") {
			continue
		}
		nBuckets++
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			t.Errorf("bucket %s value %q not a count", key, val)
		}
		_ = prev
	}
	if nBuckets != numHistBuckets+1 {
		t.Errorf("%d bucket lines, want %d", nBuckets, numHistBuckets+1)
	}
	// Cumulativity: value at le=4e-06 must include the 1e-06 observation.
	b1, _ := strconv.ParseInt(samples[`phase_execute_bucket{le="1e-06"}`], 10, 64)
	b2, _ := strconv.ParseInt(samples[`phase_execute_bucket{le="4e-06"}`], 10, 64)
	if b1 != 1 || b2 < b1 {
		t.Errorf("buckets not cumulative: le=1e-06 %d, le=4e-06 %d", b1, b2)
	}
	// Labeled histogram renders under its family with the tenant label.
	if got := samples[`serve_request_total_seconds_count{tenant="alpha"}`]; got != "1" {
		t.Errorf("labeled histogram count = %q, want 1", got)
	}
}

func TestLabeledNameEscaping(t *testing.T) {
	got := LabeledName("m.x", "tenant", `a"b\c`)
	want := `m.x{tenant="a\"b\\c"}`
	if got != want {
		t.Fatalf("LabeledName = %q, want %q", got, want)
	}
	base, labels := splitLabels(got)
	if base != "m.x" || labels != `tenant="a\"b\\c"` {
		t.Fatalf("splitLabels = %q, %q", base, labels)
	}
}

func TestWantsPrometheus(t *testing.T) {
	for accept, want := range map[string]bool{
		"":                 false,
		"application/json": false,
		"text/plain":       true,
		"application/openmetrics-text; version=1.0.0": true,
		"text/plain;version=0.0.4, */*;q=0.1":         true,
	} {
		if got := WantsPrometheus(accept); got != want {
			t.Errorf("WantsPrometheus(%q) = %v, want %v", accept, got, want)
		}
	}
}

func TestPrometheusOverHTTP(t *testing.T) {
	m := NewMetrics()
	m.Inc("exec.ops")
	m.ObserveDuration("phase.execute", 2*time.Millisecond)
	var b strings.Builder
	if err := WritePrometheus(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE exec_ops counter\nexec_ops 1\n") {
		t.Fatalf("counter family missing:\n%s", b.String())
	}
}
