package runtime

import (
	"sysml/internal/compress"
	"sysml/internal/cplan"
	"sysml/internal/matrix"
)

// Compressed fused skeleton: when the main input carries an attached
// compressed form (compress.Of), eligible Cell/MAgg/Row operators execute
// directly over the column groups — the CPlan body is evaluated once per
// distinct dictionary tuple and the result scaled by the tuple's occurrence
// count, turning O(rows) genexec work into O(distinct) (paper Fig. 9,
// Gen-over-CLA). Ineligible bodies fall back transparently to the dense
// skeletons; the executor attributes the decision via the
// compress.exec.hit/fallback counters.

// CompressedDispatched mirrors the skeleton dispatch decision exactly: it
// reports whether this invocation of the fused operator runs over the
// compressed form of its main input. The executor uses it for counter
// attribution without instrumenting the hot loops.
func CompressedDispatched(op *cplan.Operator, ins []*matrix.Matrix) bool {
	if len(ins) == 0 {
		return false
	}
	cm := compress.Of(ins[0])
	return cm != nil && compressedUsable(op, cm)
}

// compressedUsable combines the plan-level eligibility probe with the
// invocation-level conditions the skeleton needs (Row requires one
// dictionary-coded group covering every column in order).
func compressedUsable(op *cplan.Operator, cm *compress.CMatrix) bool {
	ok, _ := cplan.CompressedEligible(op.Plan)
	if !ok {
		return false
	}
	if op.Plan.Type == cplan.TemplateRow {
		return rowGroupUsable(cm)
	}
	return true
}

// rowGroupUsable reports whether the compressed matrix is a single
// dictionary-coded group whose columns are exactly 0..C-1 in order — the
// shape under which a whole row IS a dictionary tuple, so the row program
// runs once per distinct tuple.
func rowGroupUsable(cm *compress.CMatrix) bool {
	if len(cm.Groups) != 1 || cm.Groups[0].NumDistinct() == 0 {
		return false
	}
	cols := cm.Groups[0].Cols()
	if len(cols) != cm.Cols {
		return false
	}
	for j, c := range cols {
		if c != j {
			return false
		}
	}
	return true
}

// execCompressed runs the fused operator over the compressed main input.
// ok=false means the invocation is not compressible and the caller must use
// the dense skeleton.
func execCompressed(ec matrix.Ctx, op *cplan.Operator, cm *compress.CMatrix, sides []*matrix.Matrix, stop StopFn) (*matrix.Matrix, bool) {
	if !compressedUsable(op, cm) {
		return nil, false
	}
	switch op.Plan.Type {
	case cplan.TemplateCell:
		return execCompressedCell(ec, op, cm, sides, stop), true
	case cplan.TemplateMAgg:
		return execCompressedMAgg(ec, op, cm, sides, stop), true
	case cplan.TemplateRow:
		return execCompressedRow(ec, op, cm, stop), true
	}
	return nil, false
}

// aggStepCount folds one per-distinct result r occurring count times into
// the accumulator. Sum-style aggregates scale by the count; min/max ignore
// it (counts are always >= 1).
func aggStepCount(op matrix.AggOp, acc, r float64, count int) float64 {
	switch op {
	case matrix.AggMin, matrix.AggMax:
		return aggStep(op, acc, r)
	case matrix.AggSumSq:
		return acc + r*r*float64(count)
	}
	return acc + r*float64(count)
}

func execCompressedCell(ec matrix.Ctx, op *cplan.Operator, cm *compress.CMatrix, sides []*matrix.Matrix, stop StopFn) *matrix.Matrix {
	p := op.Plan
	fn := op.CellFn
	ctx := cplan.NewCtx(sides)

	switch p.Cell {
	case cplan.CellFullAgg:
		acc := aggInit(p.AggOp)
		for gi, g := range cm.Groups {
			if pollStop(stop, gi) {
				break
			}
			cols := g.Cols()
			g.ForEachDistinct(func(vals []float64, count int) {
				for j, v := range vals {
					acc = aggStepCount(p.AggOp, acc, fn(ctx, v, 0, cols[j]), count)
				}
			})
		}
		return matrix.NewScalar(acc)

	case cplan.CellColAgg:
		out := ec.NewDenseUninit(1, cm.Cols)
		od := out.Dense()
		for j := range od {
			od[j] = aggInit(p.AggOp)
		}
		for gi, g := range cm.Groups {
			if pollStop(stop, gi) {
				break
			}
			cols := g.Cols()
			g.ForEachDistinct(func(vals []float64, count int) {
				for j, v := range vals {
					c := cols[j]
					od[c] = aggStepCount(p.AggOp, od[c], fn(ctx, v, 0, c), count)
				}
			})
		}
		return out

	default: // CellNoAgg: map each group's dictionary once, scatter by row.
		out := ec.NewDenseUninit(cm.Rows, cm.Cols)
		od := out.Dense()
		for _, g := range cm.Groups {
			g := g
			ec.Par.For(cm.Rows, 512, func(lo, hi int) {
				if stop != nil && stop() {
					return
				}
				wctx := ctx.Clone()
				compress.MapInto(g, od, cm.Cols, lo, hi, func(v float64, c int) float64 {
					return fn(wctx, v, 0, c)
				})
			})
		}
		return out
	}
}

func execCompressedMAgg(ec matrix.Ctx, op *cplan.Operator, cm *compress.CMatrix, sides []*matrix.Matrix, stop StopFn) *matrix.Matrix {
	p := op.Plan
	k := len(op.MAggFns)
	ctx := cplan.NewCtx(sides)
	out := ec.NewDenseUninit(1, k)
	od := out.Dense()
	for q := 0; q < k; q++ {
		od[q] = aggInit(p.AggOps[q])
	}
	for gi, g := range cm.Groups {
		if pollStop(stop, gi) {
			break
		}
		cols := g.Cols()
		g.ForEachDistinct(func(vals []float64, count int) {
			for j, v := range vals {
				c := cols[j]
				for q := 0; q < k; q++ {
					od[q] = aggStepCount(p.AggOps[q], od[q], op.MAggFns[q](ctx, v, 0, c), count)
				}
			}
		})
	}
	return out
}

// execCompressedRow runs the row program once per distinct dictionary tuple
// (each tuple is a complete main row under rowGroupUsable) and combines the
// per-tuple results: count-weighted accumulation for the aggregating
// variants, a code-indexed scatter for the per-row outputs.
func execCompressedRow(ec matrix.Ctx, op *cplan.Operator, cm *compress.CMatrix, stop StopFn) *matrix.Matrix {
	prog := op.RowProg
	g := cm.Groups[0]
	proto := cplan.NewCtx(nil)
	w := prog.OutWidth
	nd := g.NumDistinct()

	switch prog.RowT {
	case cplan.RowFullAgg:
		var acc float64
		buf := prog.GetBuf()
		defer prog.PutBuf(buf)
		i := 0
		g.ForEachDistinct(func(tuple []float64, count int) {
			if pollStop(stop, i) {
				return
			}
			i++
			buf.SparseMain = false
			prog.ExecRow(proto, buf, tuple, 0, 0)
			acc += float64(count) * buf.Scal[prog.ResultReg]
		})
		return matrix.NewScalar(acc)

	case cplan.RowColAgg:
		out := ec.NewDense(1, w)
		od := out.Dense()
		buf := prog.GetBuf()
		defer prog.PutBuf(buf)
		i := 0
		g.ForEachDistinct(func(tuple []float64, count int) {
			if pollStop(stop, i) {
				return
			}
			i++
			buf.SparseMain = false
			prog.ExecRow(proto, buf, tuple, 0, 0)
			src, so := buf.Vec[prog.ResultReg], buf.Off[prog.ResultReg]
			cf := float64(count)
			for j := 0; j < w; j++ {
				od[j] += cf * src[so+j]
			}
		})
		return out

	case cplan.RowRowAgg:
		table := make([]float64, nd)
		runRowProgPerDistinct(prog, proto, g, stop, func(code int, buf *cplan.RowBuf) {
			table[code] = buf.Scal[prog.ResultReg]
		})
		out := ec.NewDenseUninit(cm.Rows, 1)
		od := out.Dense()
		codes := compress.Codes(g)
		for r, c := range codes {
			od[r] = table[c]
		}
		return out

	default: // RowNoAgg
		table := make([]float64, nd*w)
		runRowProgPerDistinct(prog, proto, g, stop, func(code int, buf *cplan.RowBuf) {
			src, so := buf.Vec[prog.ResultReg], buf.Off[prog.ResultReg]
			copy(table[code*w:(code+1)*w], src[so:so+w])
		})
		out := ec.NewDenseUninit(cm.Rows, w)
		od := out.Dense()
		codes := compress.Codes(g)
		ec.Par.For(cm.Rows, 512, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				copy(od[r*w:(r+1)*w], table[int(codes[r])*w:])
			}
		})
		return out
	}
}

// runRowProgPerDistinct evaluates the row program on every dictionary tuple
// and hands the per-tuple buffer to sink with the tuple's code (the index
// ForEachDistinct visits it at, matching compress.Codes).
func runRowProgPerDistinct(prog *cplan.RowProgram, proto *cplan.Ctx, g compress.ColGroup,
	stop StopFn, sink func(code int, buf *cplan.RowBuf)) {
	buf := prog.GetBuf()
	defer prog.PutBuf(buf)
	code := 0
	g.ForEachDistinct(func(tuple []float64, count int) {
		if pollStop(stop, code) {
			return
		}
		buf.SparseMain = false
		prog.ExecRow(proto, buf, tuple, 0, 0)
		sink(code, buf)
		code++
	})
}

// compressedAgg serves basic (non-fused) full and column aggregates over an
// attached compressed form — the Base-mode analog of the fused path.
func compressedAgg(ec matrix.Ctx, aop matrix.AggOp, dir matrix.AggDir, m *matrix.Matrix) (*matrix.Matrix, bool) {
	cm := compress.Of(m)
	if cm == nil || !compressedAggUsable(aop, dir) {
		return nil, false
	}
	cells := float64(cm.Rows) * float64(cm.Cols)
	base := aop
	if base == matrix.AggMean {
		base = matrix.AggSum
	}
	switch dir {
	case matrix.DirAll:
		acc := aggInit(base)
		for _, g := range cm.Groups {
			g.ForEachDistinct(func(vals []float64, count int) {
				for _, v := range vals {
					acc = aggStepCount(base, acc, v, count)
				}
			})
		}
		if aop == matrix.AggMean {
			acc /= cells
		}
		return matrix.NewScalar(acc), true
	default: // DirCol (compressedAggUsable admits only All/Col)
		out := ec.NewDenseUninit(1, cm.Cols)
		od := out.Dense()
		for j := range od {
			od[j] = aggInit(base)
		}
		for _, g := range cm.Groups {
			cols := g.Cols()
			g.ForEachDistinct(func(vals []float64, count int) {
				for j, v := range vals {
					od[cols[j]] = aggStepCount(base, od[cols[j]], v, count)
				}
			})
		}
		if aop == matrix.AggMean {
			for j := range od {
				od[j] /= float64(cm.Rows)
			}
		}
		return out, true
	}
}

// compressedAggUsable reports whether the basic aggregate (aop, dir) can be
// served from dictionaries: full and per-column directions, count-scalable
// functions. Row direction needs per-row evaluation.
func compressedAggUsable(aop matrix.AggOp, dir matrix.AggDir) bool {
	if dir == matrix.DirRow {
		return false
	}
	switch aop {
	case matrix.AggSum, matrix.AggSumSq, matrix.AggMin, matrix.AggMax, matrix.AggMean:
		return true
	}
	return false
}
