package dist

import (
	"math"
	"testing"

	"sysml/internal/compress"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	rt "sysml/internal/runtime"
)

// lowCard returns a dense matrix with ~card distinct values per column, the
// shape CLA compresses well.
func lowCard(rows, cols, card int, seed int64) *matrix.Matrix {
	m := matrix.Rand(rows, cols, 1, 0, float64(card), seed)
	d := m.Dense()
	for i := range d {
		d[i] = math.Floor(d[i])
	}
	return m
}

// TestCompressedBroadcastAccounting: a broadcast side with an attached
// compressed form ships its column groups, not the dense block.
func TestCompressedBroadcastAccounting(t *testing.T) {
	build := func() (*hop.DAG, rt.Env) {
		d := hop.NewDAG()
		x := d.Read("X", 2000, 200, -1)
		w := d.Read("W", 200, 30, -1)
		d.Output("P", d.MatMult(x, w))
		hop.AssignExecTypes(d.Roots(), hop.ExecConfig{MemBudgetBytes: 1, Blocksize: 64})
		return d, rt.Env{
			"X": matrix.Rand(2000, 200, 1, -1, 1, 70),
			"W": lowCard(200, 30, 3, 71),
		}
	}

	d, env := build()
	wm := env["W"]
	cm := compress.Compress(wm, compress.DefaultOptions())
	if compress.WireSizeBytes(cm) >= wm.SizeBytes() {
		t.Fatalf("test premise broken: wire %d >= raw %d", compress.WireSizeBytes(cm), wm.SizeBytes())
	}
	compress.Attach(wm, cm)
	defer compress.Drop(wm)

	cl := distCluster()
	got, err := rt.ExecuteDAG(d, env, rt.Options{Dist: cl})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MatMult(env["X"], wm)
	if !got["P"].EqualsApprox(want, 1e-7) {
		t.Fatal("compressed broadcast changed the result")
	}

	rawShip := wm.SizeBytes() * int64(cl.NumExecutors)
	bb, bs, _, _ := cl.CompressedWireStats()
	if bb == 0 || bs == 0 {
		t.Fatalf("compressed broadcast counters not recorded: bytes=%d saved=%d", bb, bs)
	}
	if bb+bs != rawShip {
		t.Fatalf("bcast bytes %d + saved %d != dense ship %d", bb, bs, rawShip)
	}
	if cl.BytesBroadcast() >= rawShip {
		t.Fatalf("broadcast bytes %d not reduced below dense %d", cl.BytesBroadcast(), rawShip)
	}

	// With the codec off the same plan ships dense blocks and the
	// compressed counters stay where they were.
	d2, env2 := build()
	compress.Attach(env2["W"], compress.Compress(env2["W"], compress.DefaultOptions()))
	defer compress.Drop(env2["W"])
	cl2 := distCluster()
	if prev := cl2.SetCompressedWire(false); !prev {
		t.Fatal("compressed wire should default on")
	}
	if _, err := rt.ExecuteDAG(d2, env2, rt.Options{Dist: cl2}); err != nil {
		t.Fatal(err)
	}
	if bb2, bs2, sb2, ss2 := cl2.CompressedWireStats(); bb2+bs2+sb2+ss2 != 0 {
		t.Fatal("codec off must not touch compressed counters")
	}
	if cl2.BytesBroadcast() < rawShip {
		t.Fatalf("codec off: broadcast bytes %d below dense %d", cl2.BytesBroadcast(), rawShip)
	}
}

// TestCompressedShufflePartials: aggregation partials with low-cardinality
// payloads ship through the dictionary codec.
func TestCompressedShufflePartials(t *testing.T) {
	build := func() (*hop.DAG, rt.Env) {
		d := hop.NewDAG()
		x := d.Read("X", 1000, 40, -1)
		d.Output("s", d.ColSums(x))
		hop.AssignExecTypes(d.Roots(), hop.ExecConfig{MemBudgetBytes: 1, Blocksize: 64})
		// A constant input makes every partition's colSums partial a
		// single-value row vector — exactly what the dict codec wins on.
		c := matrix.NewDense(1000, 40)
		cd := c.Dense()
		for i := range cd {
			cd[i] = 7
		}
		return d, rt.Env{"X": c}
	}

	d, env := build()
	cl := distCluster()
	out, err := rt.ExecuteDAG(d, env, rt.Options{Dist: cl})
	if err != nil {
		t.Fatal(err)
	}
	if !out["s"].EqualsApprox(matrix.Agg(matrix.AggSum, matrix.DirCol, env["X"]), 1e-9) {
		t.Fatal("distributed colSums mismatch")
	}
	_, _, sb, ss := cl.CompressedWireStats()
	if sb == 0 || ss == 0 {
		t.Fatalf("compressed shuffle counters not recorded: bytes=%d saved=%d", sb, ss)
	}

	d2, env2 := build()
	cl2 := distCluster()
	cl2.SetCompressedWire(false)
	if _, err := rt.ExecuteDAG(d2, env2, rt.Options{Dist: cl2}); err != nil {
		t.Fatal(err)
	}
	if cl.BytesShuffled() >= cl2.BytesShuffled() {
		t.Fatalf("compressed shuffle %d not below dense %d", cl.BytesShuffled(), cl2.BytesShuffled())
	}
}
