package dist

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sysml/internal/obs"
)

// This file implements the fault-injection and recovery layer of the
// simulated cluster (DESIGN.md §11). The real Spark stack the paper runs on
// survives executor loss through RDD lineage (Zaharia et al., NSDI 2012)
// and hides stragglers through speculative execution (Dean & Barroso, "The
// Tail at Scale"); this layer reproduces both behaviours over the panel
// scheduler so chaos tests can assert that distributed results stay
// bit-compatible with local execution under injected failures:
//
//   - A FaultPlan deterministically injects transient task failures,
//     one permanent executor kill, and straggler slowdowns, all derived
//     from a seed (reproducible chaos — same plan, same faults).
//   - Failed task attempts retry with capped exponential backoff under a
//     per-task cap and a per-operator retry budget.
//   - A killed executor's not-yet-executed panels (queued, or sleeping in
//     backoff/straggler delays) are reassigned to survivors — the panel
//     lineage (operator + row range) is enough to recompute them anywhere.
//     Completed panels are durable: kernels write zero-copy into the
//     driver-side output buffer, so death after a kernel finishes loses
//     nothing. Broadcast blocks lost with the executor are re-shipped,
//     charged against the traffic counters.
//   - A panel running slower than specMultiple × the median completed
//     task time gets a speculative duplicate on an idle executor;
//     whichever attempt finishes first wins and cancels the loser through
//     its task context.
//   - When the retry budget is exhausted or live executors drop below
//     MinSurvivors, the operator degrades gracefully: runPanels reports
//     failure, ExecHop answers ok=false, and the runtime transparently
//     recomputes the operator on the local backend (counted in
//     dist.degraded) instead of erroring the run.

// FaultPlan configures deterministic, seedable fault injection for a
// Cluster. The zero value injects nothing but still routes execution
// through the fault-tolerant scheduler (the <3% overhead bench gate runs
// exactly that configuration); a nil plan on the Cluster bypasses the
// scheduler entirely. Every injection decision is a pure function of
// (Seed, operator sequence, panel, attempt), so a plan replays identically
// across runs regardless of goroutine scheduling.
type FaultPlan struct {
	// Seed drives every injection decision. Two runs of the same plan over
	// the same operator sequence inject identical faults.
	Seed int64

	// TransientRate is the per-attempt probability that a task fails
	// transiently (the attempt is discarded and retried after backoff).
	TransientRate float64

	// StragglerRate is the per-attempt probability that a task is slowed
	// by StragglerDelay before executing (the straggler-mitigation path:
	// slow attempts become speculation candidates).
	StragglerRate float64

	// StragglerDelay is the injected slowdown per straggling attempt;
	// 0 defaults to 2ms when StragglerRate > 0.
	StragglerDelay time.Duration

	// KillExecutor is the executor id to kill permanently. The kill is
	// armed only when KillExecutor >= 0 AND KillAtTask > 0 (the zero-value
	// plan never kills). Ids at or beyond the executor count clamp to the
	// last executor.
	KillExecutor int

	// KillAtTask is the 1-based global task-attempt index whose start
	// triggers the kill; 0 disables it. The counter spans the cluster
	// lifetime, so the kill fires once, at a reproducible point.
	KillAtTask int64

	// MaxTaskRetries caps transient retries of one task before the
	// operator degrades; 0 defaults to 4.
	MaxTaskRetries int

	// RetryBudget caps total transient retries per operator before it
	// degrades; 0 defaults to 64.
	RetryBudget int

	// MinSurvivors is the live-executor floor: an operator starting (or a
	// reassignment landing) below it degrades to local execution instead
	// of running on a cluster too small to be credible; 0 defaults to 1.
	MinSurvivors int

	// SpecMultiple is the straggler threshold: a task whose first attempt
	// has been running longer than SpecMultiple × the median completed
	// task duration gets a speculative duplicate; 0 defaults to 3.
	SpecMultiple float64

	// BackoffBase and BackoffCap bound the capped exponential backoff
	// between transient retries (base·2^attempt, clamped to cap). Zero
	// values default to 100µs and 5ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
}

// Defaulted knob accessors: the zero value of every tuning field maps to a
// documented default so FaultPlan literals stay terse in tests and flags.

func (p *FaultPlan) maxTaskRetries() int {
	if p.MaxTaskRetries <= 0 {
		return 4
	}
	return p.MaxTaskRetries
}

func (p *FaultPlan) retryBudget() int {
	if p.RetryBudget <= 0 {
		return 64
	}
	return p.RetryBudget
}

func (p *FaultPlan) minSurvivors() int {
	if p.MinSurvivors <= 0 {
		return 1
	}
	return p.MinSurvivors
}

func (p *FaultPlan) specMultiple() float64 {
	if p.SpecMultiple <= 0 {
		return 3
	}
	return p.SpecMultiple
}

func (p *FaultPlan) stragglerDelay() time.Duration {
	if p.StragglerDelay <= 0 {
		return 2 * time.Millisecond
	}
	return p.StragglerDelay
}

func (p *FaultPlan) backoff(attempt int) time.Duration {
	base := p.BackoffBase
	if base <= 0 {
		base = 100 * time.Microsecond
	}
	cap := p.BackoffCap
	if cap <= 0 {
		cap = 5 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// killArmed reports whether the plan schedules a permanent executor kill.
func (p *FaultPlan) killArmed() bool {
	return p != nil && p.KillExecutor >= 0 && p.KillAtTask > 0
}

// Injection decision domains: mixed into the hash so the transient and
// straggler decisions of the same attempt are independent draws.
const (
	faultDomainTransient = 0x7261
	faultDomainStraggler = 0x7374
)

// chance maps (seed, domain, op, panel, attempt) to a uniform [0,1) draw
// via a splitmix64-style finalizer. Purely functional: injection does not
// depend on which goroutine claims which panel first.
func (p *FaultPlan) chance(domain, op, panel, attempt int64) float64 {
	x := uint64(p.Seed)*0x9E3779B97F4A7C15 +
		uint64(domain)*0xBF58476D1CE4E5B9 +
		uint64(op)*0x94D049BB133111EB +
		uint64(panel)*0xD6E8FEB86659FD93 +
		uint64(attempt)*0xA3EC647659359ACD
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

func (p *FaultPlan) failTransient(op, panel, attempt int64) bool {
	return p.TransientRate > 0 && p.chance(faultDomainTransient, op, panel, attempt) < p.TransientRate
}

func (p *FaultPlan) straggle(op, panel, attempt int64) bool {
	return p.StragglerRate > 0 && p.chance(faultDomainStraggler, op, panel, attempt) < p.StragglerRate
}

// FaultStats is a snapshot of the cluster's fault-injection and recovery
// counters, all cumulative over the cluster lifetime.
type FaultStats struct {
	// TransientInjected counts injected transient task failures.
	TransientInjected int64
	// StragglersInjected counts attempts slowed by the straggler delay.
	StragglersInjected int64
	// Kills counts permanent executor kills (0 or 1 per cluster).
	Kills int64
	// Reassigned counts panels moved from a dead executor to survivors.
	Reassigned int64
	// Retries counts task re-executions after transient failures.
	Retries int64
	// BackoffNanos accumulates time spent in retry backoff sleeps.
	BackoffNanos int64
	// SpecLaunched counts speculative duplicate attempts started.
	SpecLaunched int64
	// SpecWins counts tasks completed by the speculative attempt first.
	SpecWins int64
	// BcastReships counts broadcast handles re-shipped after a kill.
	BcastReships int64
	// BcastReshipBytes is the broadcast volume charged by those reships.
	BcastReshipBytes int64
	// Degraded counts operators that fell back to local execution after
	// recovery was exhausted (the dist.degraded marker).
	Degraded int64
}

// FaultStats returns the cluster's fault and recovery counters.
func (c *Cluster) FaultStats() FaultStats {
	return FaultStats{
		TransientInjected:  atomic.LoadInt64(&c.ftTransient),
		StragglersInjected: atomic.LoadInt64(&c.ftStragglers),
		Kills:              atomic.LoadInt64(&c.ftKills),
		Reassigned:         atomic.LoadInt64(&c.ftReassigned),
		Retries:            atomic.LoadInt64(&c.ftRetries),
		BackoffNanos:       atomic.LoadInt64(&c.ftBackoffNanos),
		SpecLaunched:       atomic.LoadInt64(&c.ftSpecLaunched),
		SpecWins:           atomic.LoadInt64(&c.ftSpecWins),
		BcastReships:       atomic.LoadInt64(&c.bcastReships),
		BcastReshipBytes:   atomic.LoadInt64(&c.bcastReshipBytes),
		Degraded:           atomic.LoadInt64(&c.ftDegraded),
	}
}

// FaultCounters returns the fault and recovery counters keyed by metric
// suffix ("fault.transient" → Session.Metrics "dist.fault.transient"); the
// interpreter merges them into metric snapshots through a small interface,
// keeping internal/dml decoupled from this package.
func (c *Cluster) FaultCounters() map[string]int64 {
	s := c.FaultStats()
	return map[string]int64{
		"fault.transient":    s.TransientInjected,
		"fault.stragglers":   s.StragglersInjected,
		"fault.kills":        s.Kills,
		"fault.reassigned":   s.Reassigned,
		"retry.attempts":     s.Retries,
		"retry.backoff.ns":   s.BackoffNanos,
		"spec.launched":      s.SpecLaunched,
		"spec.wins":          s.SpecWins,
		"bcast.reships":      s.BcastReships,
		"bcast.reship.bytes": s.BcastReshipBytes,
		"degraded":           s.Degraded,
	}
}

// FaultActive reports whether a fault plan is attached (execution routes
// through the fault-tolerant scheduler).
func (c *Cluster) FaultActive() bool { return c.fault != nil }

// DeadExecutors returns the ids of permanently killed executors.
func (c *Cluster) DeadExecutors() []int {
	c.execMu.Lock()
	defer c.execMu.Unlock()
	out := make([]int, 0, len(c.deadExec))
	for e := range c.deadExec {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// execDead reports whether executor e has been killed. The atomic
// dead-count fast path keeps the no-faults case branch-cheap.
func (c *Cluster) execDead(e int) bool {
	if atomic.LoadInt64(&c.deadCount) == 0 {
		return false
	}
	c.execMu.Lock()
	dead := c.deadExec[e]
	c.execMu.Unlock()
	return dead
}

// liveExecutorIDs returns the ids of executors still alive, in order.
func (c *Cluster) liveExecutorIDs() []int {
	n := c.NumExecutors
	if n < 1 {
		n = 1
	}
	out := make([]int, 0, n)
	if atomic.LoadInt64(&c.deadCount) == 0 {
		for e := 0; e < n; e++ {
			out = append(out, e)
		}
		return out
	}
	c.execMu.Lock()
	for e := 0; e < n; e++ {
		if !c.deadExec[e] {
			out = append(out, e)
		}
	}
	c.execMu.Unlock()
	return out
}

// maybeKill fires the plan's scheduled executor kill when the global
// task-attempt counter crosses KillAtTask. Exactly one caller wins the
// CAS; it marks the executor dead and re-ships the broadcast blocks that
// died with it.
func (c *Cluster) maybeKill(p *FaultPlan, attemptIndex int64) {
	if !p.killArmed() || attemptIndex < p.KillAtTask {
		return
	}
	if !atomic.CompareAndSwapInt32(&c.killFired, 0, 1) {
		return
	}
	e := p.KillExecutor
	if n := c.NumExecutors; e >= n && n > 0 {
		e = n - 1
	}
	c.execMu.Lock()
	if c.deadExec == nil {
		c.deadExec = map[int]bool{}
	}
	c.deadExec[e] = true
	c.execMu.Unlock()
	atomic.AddInt64(&c.deadCount, 1)
	atomic.AddInt64(&c.ftKills, 1)
	c.reshipBroadcasts()
}

// reshipBroadcasts accounts the broadcast recovery after an executor kill:
// every cached handle had a block replica on the dead executor, and the
// survivors taking over its panels must re-fetch those blocks, so each
// handle is charged one executor-share of fresh broadcast traffic. The
// handles stay cached (survivor replicas remain valid).
func (c *Cluster) reshipBroadcasts() {
	c.bcastMu.Lock()
	var bytes int64
	var n int64
	for m := range c.bcastSeen {
		bytes += m.SizeBytes()
		n++
	}
	c.bcastMu.Unlock()
	if n == 0 {
		return
	}
	atomic.AddInt64(&c.bcastReships, n)
	atomic.AddInt64(&c.bcastReshipBytes, bytes)
	c.addBroadcast(bytes)
}

// Task lifecycle states. A task is claimed for execution by CASing
// pending→executing, so the panel kernel runs under exactly one attempt at
// a time even while a speculative duplicate races the original.
const (
	taskPending int32 = iota
	taskExecuting
	taskDone
)

// idlePoll is how often an out-of-work executor rescans for speculation
// candidates or run completion. Short enough that speculation reacts
// within a straggler delay, long enough to stay invisible next to real
// panel kernels.
const idlePoll = 50 * time.Microsecond

// panelTask is one row-panel map task tracked by the fault scheduler: its
// lineage (panel index + row range, enough to recompute it anywhere), its
// lifecycle state, and the cancellation context that lets the winner of a
// speculative race cancel the loser.
type panelTask struct {
	panel, lo, hi int
	state         atomic.Int32
	attempts      atomic.Int32
	startedNanos  atomic.Int64 // first attempt start, for straggler detection
	spec          atomic.Bool  // speculative duplicate launched
	ctx           context.Context
	cancel        context.CancelFunc
}

// faultRun schedules one operator's panels across simulated executors with
// retry, reassignment, and speculation. Tasks are queued per executor
// following the same static owner mapping the shuffle accounting uses;
// each live executor runs one scheduler goroutine that drains its own
// queue, then speculates on stragglers, until every task is done or the
// run degrades.
type faultRun struct {
	c     *Cluster
	plan  *FaultPlan
	opSeq int64
	sp    obs.Span
	fn    func(panel, lo, hi int)
	start time.Time

	mu       sync.Mutex
	queues   map[int][]*panelTask
	live     []int // executor ids participating in this run
	tasks    []*panelTask
	done     int
	durs     []time.Duration // completed first-result durations (median)
	retries  int             // operator-level retry budget consumed
	degraded atomic.Bool
}

// runPanelsFaulty executes fn once per panel under the fault-tolerant
// scheduler. It returns false when the operator degraded (retry budget or
// survivor floor exhausted); the caller then discards partial output and
// reports ok=false so the runtime recomputes locally.
func (c *Cluster) runPanelsFaulty(sp obs.Span, ps [][2]int, fn func(panel, lo, hi int)) bool {
	plan := c.fault
	live := c.liveExecutorIDs()
	if len(live) < plan.minSurvivors() {
		return false
	}
	if len(live) > len(ps) {
		live = live[:len(ps)]
	}
	r := &faultRun{
		c:      c,
		plan:   plan,
		opSeq:  atomic.AddInt64(&c.faultOpSeq, 1),
		sp:     sp,
		fn:     fn,
		start:  time.Now(),
		queues: make(map[int][]*panelTask, len(live)),
		live:   live,
		tasks:  make([]*panelTask, len(ps)),
	}
	for p, span := range ps {
		ctx, cancel := context.WithCancel(context.Background())
		t := &panelTask{panel: p, lo: span[0], hi: span[1], ctx: ctx, cancel: cancel}
		r.tasks[p] = t
		e := live[owner(p, len(ps), len(live))]
		r.queues[e] = append(r.queues[e], t)
	}
	defer func() {
		for _, t := range r.tasks {
			t.cancel()
		}
	}()
	var wg sync.WaitGroup
	for _, e := range live {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			r.executorLoop(e)
		}(e)
	}
	wg.Wait()
	return !r.degraded.Load()
}

// executorLoop is the scheduler body of one simulated executor: drain own
// queue, then speculate on stragglers, until completion, degradation, or
// death (a dead executor evacuates its queue to survivors and stops).
func (r *faultRun) executorLoop(e int) {
	for {
		if r.degraded.Load() {
			return
		}
		if r.c.execDead(e) {
			r.evacuate(e)
			return
		}
		if t := r.next(e); t != nil {
			r.attempt(e, t, false)
			continue
		}
		if r.finished() {
			return
		}
		if t := r.specCandidate(); t != nil {
			r.attempt(e, t, true)
			continue
		}
		time.Sleep(idlePoll)
	}
}

func (r *faultRun) next(e int) *panelTask {
	r.mu.Lock()
	defer r.mu.Unlock()
	q := r.queues[e]
	if len(q) == 0 {
		return nil
	}
	t := q[0]
	r.queues[e] = q[1:]
	return t
}

func (r *faultRun) finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done == len(r.tasks)
}

// complete records a finished task and its duration (attempt start to
// completion, injected delays included — exactly what a straggler inflates
// and speculation must beat).
func (r *faultRun) complete(t *panelTask) {
	d := time.Since(r.start) - time.Duration(t.startedNanos.Load())
	r.mu.Lock()
	r.done++
	r.durs = append(r.durs, d)
	r.mu.Unlock()
}

// evacuate reassigns a dead executor's queued panels to survivors —
// lineage-based recovery: a panel is recomputed from its row range on any
// executor, so the queue simply moves.
func (r *faultRun) evacuate(e int) {
	r.mu.Lock()
	orphans := r.queues[e]
	r.queues[e] = nil
	r.mu.Unlock()
	for _, t := range orphans {
		r.reassign(t)
	}
}

// reassign moves one panel to a surviving executor's queue (round-robin by
// panel index). With no survivors left above the floor the run degrades.
func (r *faultRun) reassign(t *panelTask) {
	var survivors []int
	for _, s := range r.live {
		if !r.c.execDead(s) {
			survivors = append(survivors, s)
		}
	}
	if len(survivors) < r.plan.minSurvivors() {
		r.degrade()
		return
	}
	s := survivors[t.panel%len(survivors)]
	atomic.AddInt64(&r.c.ftReassigned, 1)
	if r.sp.Active() {
		r.sp.Child("dist.reassign",
			obs.KV("panel", t.panel),
			obs.KV("to.executor", s)).End()
	}
	r.mu.Lock()
	r.queues[s] = append(r.queues[s], t)
	r.mu.Unlock()
}

func (r *faultRun) degrade() { r.degraded.Store(true) }

// specCandidate finds a task whose first attempt has run longer than
// specMultiple × the median completed-task duration and claims the right
// to launch its (single) speculative duplicate.
func (r *faultRun) specCandidate() *panelTask {
	r.mu.Lock()
	if len(r.durs) < 3 {
		r.mu.Unlock()
		return nil
	}
	med := append([]time.Duration(nil), r.durs...)
	r.mu.Unlock()
	sort.Slice(med, func(i, j int) bool { return med[i] < med[j] })
	threshold := time.Duration(float64(med[len(med)/2]) * r.plan.specMultiple())
	if threshold < time.Millisecond {
		threshold = time.Millisecond // floor: don't speculate on noise
	}
	elapsed := time.Since(r.start)
	for _, t := range r.tasks {
		started := t.startedNanos.Load()
		if t.state.Load() == taskDone || started == 0 {
			continue
		}
		if elapsed-time.Duration(started) <= threshold {
			continue
		}
		if !t.spec.CompareAndSwap(false, true) {
			continue
		}
		atomic.AddInt64(&r.c.ftSpecLaunched, 1)
		if r.sp.Active() {
			r.sp.Child("dist.speculate",
				obs.KV("panel", t.panel),
				obs.KV("threshold.ns", int64(threshold))).End()
		}
		return t
	}
	return nil
}

// attempt runs one (possibly retried, possibly speculative) execution of a
// task on executor e. The injected fault sequence per attempt is: executor
// death (reassign), transient failure (backoff + retry in place),
// straggler delay (cancellable sleep), then the kernel, guarded by the
// pending→executing CAS so the kernel runs at most once per task even
// while a speculative duplicate races the original. Running at most once
// matters beyond mutual exclusion: panel kernels accumulate into the
// zero-initialized output window (C += A·B), so a second execution would
// double the panel. That is also why executor death is checked only
// BEFORE the CAS: outputs are written zero-copy into the driver-side
// buffer, so once the kernel has run the result is durable — a kill can
// only orphan tasks that have not executed yet.
func (r *faultRun) attempt(e int, t *panelTask, isSpec bool) {
	for {
		if r.degraded.Load() || t.state.Load() == taskDone {
			return
		}
		a := int64(t.attempts.Add(1) - 1)
		n := atomic.AddInt64(&r.c.faultTaskStarts, 1)
		r.c.maybeKill(r.plan, n)
		if r.c.execDead(e) {
			// This executor died holding the task: hand it to a survivor.
			// The executor loop will notice death and evacuate the rest.
			r.reassign(t)
			return
		}
		t.startedNanos.CompareAndSwap(0, int64(time.Since(r.start)))
		if r.plan.failTransient(r.opSeq, int64(t.panel), a) {
			atomic.AddInt64(&r.c.ftTransient, 1)
			if int(a) >= r.plan.maxTaskRetries() || !r.budgetRetry() {
				r.degrade()
				return
			}
			atomic.AddInt64(&r.c.ftRetries, 1)
			d := r.plan.backoff(int(a))
			atomic.AddInt64(&r.c.ftBackoffNanos, int64(d))
			if r.sp.Active() {
				r.sp.Child("dist.retry",
					obs.KV("panel", t.panel),
					obs.KV("attempt", a+1),
					obs.KV("executor", e),
					obs.KV("backoff.ns", int64(d))).End()
			}
			if !sleepCtx(d, t.ctx) {
				return // task finished elsewhere while we backed off
			}
			continue
		}
		if r.plan.straggle(r.opSeq, int64(t.panel), a) {
			atomic.AddInt64(&r.c.ftStragglers, 1)
			if !sleepCtx(r.plan.stragglerDelay(), t.ctx) {
				return // speculative sibling won; we are the cancelled loser
			}
			if r.c.execDead(e) {
				// Killed while straggling: the kernel never ran here, so the
				// task is genuinely lost with this executor — reassign it.
				r.reassign(t)
				return
			}
		}
		if !t.state.CompareAndSwap(taskPending, taskExecuting) {
			return // sibling attempt is executing or already done
		}
		r.fn(t.panel, t.lo, t.hi)
		t.state.Store(taskDone)
		t.cancel()
		if isSpec {
			atomic.AddInt64(&r.c.ftSpecWins, 1)
		}
		r.complete(t)
		return
	}
}

// budgetRetry consumes one unit of the operator's retry budget; false
// means the budget is exhausted and the operator must degrade.
func (r *faultRun) budgetRetry() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retries++
	return r.retries <= r.plan.retryBudget()
}

// sleepCtx sleeps for d unless the context is cancelled first; it reports
// whether the full sleep elapsed.
func sleepCtx(d time.Duration, ctx context.Context) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
