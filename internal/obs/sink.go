package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies sink events.
type EventKind int

const (
	// EventExplain carries the rendered EXPLAIN report of one optimized
	// statement block in Text.
	EventExplain EventKind = iota
	// EventSpan reports a completed trace span: Name and Dur are set.
	EventSpan
)

// String returns the event kind's wire name as used in trace exports.
func (k EventKind) String() string {
	switch k {
	case EventExplain:
		return "explain"
	case EventSpan:
		return "span"
	}
	return "unknown"
}

// Event is one observability record pushed to a Sink.
type Event struct {
	Kind EventKind
	Name string        // block label for explains, span name for spans
	Text string        // rendered report (EventExplain)
	Dur  time.Duration // span duration (EventSpan)

	// Span identity and payload (EventSpan only). Span is the span's
	// process-unique ID, Parent the enclosing span's ID (0 for roots).
	Span   uint64
	Parent uint64
	Start  time.Time
	Attrs  []Attr
}

// Sink receives observability events. Implementations must be safe for
// concurrent use; Emit must not retain e.Text beyond the call unless it
// copies it.
type Sink interface {
	Emit(e Event)
}

// WriterSink renders events as text to an io.Writer. Explain reports are
// written verbatim; span events are written as one-line phase timings when
// IncludeSpans is set.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer

	// IncludeSpans also renders EventSpan completions (off by default so
	// explain output stays stable for golden tests).
	IncludeSpans bool
}

// NewWriterSink returns a sink writing to w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Emit implements Sink.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case EventExplain:
		fmt.Fprint(s.w, e.Text)
	case EventSpan:
		if s.IncludeSpans {
			fmt.Fprintf(s.w, "span %s: %v\n", e.Name, e.Dur.Round(time.Microsecond))
		}
	}
}

// Collector buffers events in memory; used by Session.Explain and tests.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the buffered events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// MultiSink fans events out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}
