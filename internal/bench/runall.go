package bench

import "fmt"

// Experiments maps experiment IDs (as used by cmd/fusebench -exp) to their
// drivers. Each driver prints one or more tables.
var Experiments = []struct {
	ID   string
	Desc string
	Run  func(o Options)
}{
	{"fig8cell", "Fig 8a/8b: Cell sum(X*Y*Z), dense + sparse", func(o Options) {
		Fig8Cell(o, false).Print(o.Out)
		Fig8Cell(o, true).Print(o.Out)
	}},
	{"fig8magg", "Fig 8c/8d: MAgg sum(X*Y), sum(X*Z), dense + sparse", func(o Options) {
		Fig8MAgg(o, false).Print(o.Out)
		Fig8MAgg(o, true).Print(o.Out)
	}},
	{"fig8row", "Fig 8e/8f: Row t(X)(Xv), dense + sparse", func(o Options) {
		Fig8Row(o, false).Print(o.Out)
		Fig8Row(o, true).Print(o.Out)
	}},
	{"fig8rowmm", "Fig 8g: Row t(X)(XV)", func(o Options) {
		Fig8RowMM(o).Print(o.Out)
	}},
	{"fig8outer", "Fig 8h: Outer sum(X*log(UV'+eps)) sparsity sweep", func(o Options) {
		Fig8Outer(o).Print(o.Out)
	}},
	{"fig9", "Fig 9: compressed operations sum(X^2)", func(o Options) {
		Fig9CLA(o).Print(o.Out)
	}},
	{"fig10", "Fig 10: instruction footprint", func(o Options) {
		Fig10Footprint(o, 31).Print(o.Out)
		Fig10Footprint(o, 0).Print(o.Out)
	}},
	{"table3", "Table 3: compilation overhead", func(o Options) {
		Table3Overhead(o).Print(o.Out)
	}},
	{"fig11", "Fig 11: compiler paths and plan cache", func(o Options) {
		Fig11Compile(o).Print(o.Out)
	}},
	{"fig12", "Fig 12: plan enumeration and pruning", func(o Options) {
		Fig12Enumeration(o).Print(o.Out)
	}},
	{"table4", "Table 4: data-intensive end-to-end", func(o Options) {
		Table4DataIntensive(o).Print(o.Out)
	}},
	{"fig13", "Fig 13: hybrid algorithms, growing intermediates", func(o Options) {
		for _, t := range Fig13Hybrid(o) {
			t.Print(o.Out)
		}
	}},
	{"table5", "Table 5: compute-intensive end-to-end", func(o Options) {
		Table5ComputeIntensive(o).Print(o.Out)
	}},
	{"table6", "Table 6: distributed algorithms", func(o Options) {
		Table6Distributed(o).Print(o.Out)
	}},
	{"phases", "Phase attribution: codegen vs kernel time per mode", func(o Options) {
		PhaseAttribution(o).Print(o.Out)
	}},
	{"ablation", "Ablations: linearization order, MAgg fusion, dominance pruning", func(o Options) {
		AblationOrder(o).Print(o.Out)
		AblationMAgg(o).Print(o.Out)
		AblationDominance(o).Print(o.Out)
	}},
	{"obsoverhead", "Observability overhead: instrumented vs stripped session (emits BENCH_obs_overhead.json)", func(o Options) {
		ObsOverhead(o).Print(o.Out)
	}},
	{"kernels", "Kernel overhaul gates: TSMM speedup, buffer-pool allocations, matmult regression (emits BENCH_kernels.json)", func(o Options) {
		Kernels(o).Print(o.Out)
	}},
	{"dist", "Distributed backend gates: broadcast cache, tree shuffle, zero-copy panels (emits BENCH_dist.json)", func(o Options) {
		Dist(o).Print(o.Out)
	}},
	{"fault", "Fault-tolerance gates: chaos correctness, scheduler overhead, kill recovery (emits BENCH_fault.json)", func(o Options) {
		Fault(o).Print(o.Out)
	}},
	{"serve", "Serving gates: multi-tenant p99, open-loop scaling, backpressure, micro-batching (emits BENCH_serve.json)", func(o Options) {
		Serve(o).Print(o.Out)
	}},
	{"serveobs", "Serving observability gates: flight-recorder p99 overhead, trace retention (emits BENCH_serveobs.json)", func(o Options) {
		ServeObs(o).Print(o.Out)
	}},
	{"hfuse", "Horizontal fusion gates: sibling merge speedup, chunk programs vs ideal loop, equivalence, plan quality (emits BENCH_hfuse.json)", func(o Options) {
		HFuse(o).Print(o.Out)
	}},
	{"cla", "Compressed execution gates: fused-over-groups speedup, compressed wire bytes, equivalence, decline overhead (emits BENCH_cla.json)", func(o Options) {
		CLA(o).Print(o.Out)
	}},
	{"recost", "Feedback gates: calibration halves cost error, adversarial re-optimization, feedback overhead (emits BENCH_recost.json)", func(o Options) {
		Recost(o).Print(o.Out)
	}},
}

// RunAll executes every experiment.
func RunAll(o Options) {
	for _, e := range Experiments {
		fmt.Fprintf(o.Out, "\n### %s — %s\n", e.ID, e.Desc)
		e.Run(o)
	}
}

// Run executes one experiment by ID; false if unknown.
func Run(id string, o Options) bool {
	for _, e := range Experiments {
		if e.ID == id {
			e.Run(o)
			return true
		}
	}
	return false
}
