package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1024, 10000} {
		seen := make([]int32, n)
		For(n, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForSmallRunsSequential(t *testing.T) {
	calls := 0
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 sequential call, got %d", calls)
	}
}

func TestForIndexedWorkerIndexes(t *testing.T) {
	nc, size := Chunks(1000, 10)
	if nc < 1 || size < 1 || nc*size < 1000 {
		t.Fatalf("Chunks(1000,10) = %d,%d", nc, size)
	}
	used := make([]int32, nc)
	var total int64
	ForIndexed(1000, 10, func(w, lo, hi int) {
		atomic.AddInt32(&used[w], 1)
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 1000 {
		t.Fatalf("covered %d of 1000", total)
	}
	for w, c := range used {
		if c != 1 {
			t.Fatalf("worker %d used %d times", w, c)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	if MaxWorkers() != 1 {
		t.Fatal("SetMaxWorkers(1) not applied")
	}
	chunks, _ := Chunks(1_000_000, 1)
	if chunks != 1 {
		t.Fatalf("with 1 worker expected 1 chunk, got %d", chunks)
	}
	SetMaxWorkers(0) // reset to GOMAXPROCS
	if MaxWorkers() < 1 {
		t.Fatal("reset failed")
	}
}
