// Package rewrite implements SystemML-style static (size-independent) and
// dynamic (size-dependent) HOP DAG rewrites: constant folding, algebraic
// simplifications, and common-subexpression elimination (paper §2.1).
//
// Apply reconstructs the DAG bottom-up, hash-consing nodes so structurally
// identical subexpressions collapse into one node; the rebuilt DAG has
// accurate parent lists, which downstream fusion optimization relies on for
// materialization-point detection.
package rewrite

import (
	"fmt"
	"strings"

	"sysml/internal/hop"
	"sysml/internal/matrix"
)

// Stats reports what a rewrite pass did.
type Stats struct {
	FoldedConstants int
	Simplified      int
	CSEMerged       int
}

// Apply rebuilds the DAG with constant folding, simplification rewrites,
// and CSE, returning the new DAG and rewrite statistics.
func Apply(d *hop.DAG) (*hop.DAG, Stats) {
	r := &rewriter{
		out:   hop.NewDAG(),
		byKey: map[string]*hop.Hop{},
		memo:  map[int64]*hop.Hop{},
	}
	for _, name := range d.OutputNames() {
		r.out.Output(name, r.rewrite(d.Outputs[name]))
	}
	return r.out, r.stats
}

type rewriter struct {
	out   *hop.DAG
	byKey map[string]*hop.Hop
	memo  map[int64]*hop.Hop
	stats Stats
}

func (r *rewriter) rewrite(h *hop.Hop) *hop.Hop {
	if n, ok := r.memo[h.ID]; ok {
		return n
	}
	ins := make([]*hop.Hop, len(h.Inputs))
	for i, in := range h.Inputs {
		ins[i] = r.rewrite(in)
	}
	n := r.build(h, ins)
	n = r.cse(n)
	r.memo[h.ID] = n
	return n
}

// build constructs the rewritten node, applying local simplifications.
func (r *rewriter) build(h *hop.Hop, ins []*hop.Hop) *hop.Hop {
	d := r.out
	switch h.Kind {
	case hop.OpData:
		return d.Read(h.Name, h.Rows, h.Cols, h.Nnz)
	case hop.OpLiteral:
		return d.Lit(h.Value)
	case hop.OpDataGen:
		switch h.Gen {
		case hop.GenRand:
			return d.Rand(h.Rows, h.Cols, h.GenArgs[0], h.GenArgs[1], h.GenArgs[2], int64(h.GenArgs[3]))
		case hop.GenFill:
			return d.FillGen(h.Rows, h.Cols, h.GenArgs[0])
		default:
			g := d.FillGen(h.Rows, h.Cols, 0)
			g.Gen, g.GenArgs = h.Gen, h.GenArgs
			return g
		}
	case hop.OpBinary:
		return r.buildBinary(h.BinOp, ins[0], ins[1])
	case hop.OpUnary:
		if ins[0].Kind == hop.OpLiteral {
			r.stats.FoldedConstants++
			return d.Lit(h.UnOp.Apply(ins[0].Value))
		}
		return d.Unary(h.UnOp, ins[0])
	case hop.OpAggUnary:
		// sum(t(X)) -> sum(X): transpose is irrelevant for full aggregates.
		if h.AggDir == matrix.DirAll && ins[0].Kind == hop.OpTranspose {
			r.stats.Simplified++
			ins[0] = ins[0].Inputs[0]
		}
		return d.Agg(h.AggOp, h.AggDir, ins[0])
	case hop.OpMatMult:
		return d.MatMult(ins[0], ins[1])
	case hop.OpTranspose:
		// t(t(X)) -> X.
		if ins[0].Kind == hop.OpTranspose {
			r.stats.Simplified++
			return ins[0].Inputs[0]
		}
		return d.Transpose(ins[0])
	case hop.OpIndex:
		// Full-range indexing is the identity.
		if h.RL == 0 && h.CL == 0 && h.RU == ins[0].Rows && h.CU == ins[0].Cols {
			r.stats.Simplified++
			return ins[0]
		}
		return d.Index(ins[0], h.RL, h.RU, h.CL, h.CU)
	case hop.OpCBind:
		return d.CBindOp(ins[0], ins[1])
	case hop.OpRBind:
		return d.RBindOp(ins[0], ins[1])
	case hop.OpRowIndexMax:
		return d.RowIndexMaxOp(ins[0])
	case hop.OpDiag:
		return d.DiagOp(ins[0])
	case hop.OpCumsum:
		return d.CumsumOp(ins[0])
	case hop.OpSpoof:
		return d.NewSpoof(h.SpoofType, h.Spoof, h.Rows, h.Cols, h.Nnz, ins...)
	}
	panic(fmt.Sprintf("rewrite: unknown hop kind %v", h.Kind))
}

func (r *rewriter) buildBinary(op matrix.BinOp, a, b *hop.Hop) *hop.Hop {
	d := r.out
	// Constant folding.
	if a.Kind == hop.OpLiteral && b.Kind == hop.OpLiteral {
		r.stats.FoldedConstants++
		return d.Lit(op.Apply(a.Value, b.Value))
	}
	// Identity-element simplifications.
	if lit, x, litLeft := litOperand(a, b); lit != nil {
		v := lit.Value
		switch {
		case op == matrix.BinMul && v == 1,
			op == matrix.BinAdd && v == 0,
			op == matrix.BinSub && v == 0 && !litLeft,
			op == matrix.BinDiv && v == 1 && !litLeft,
			op == matrix.BinPow && v == 1 && !litLeft:
			r.stats.Simplified++
			return x
		case op == matrix.BinMul && v == 0:
			r.stats.Simplified++
			if x.IsScalar() {
				return d.Lit(0)
			}
			return d.FillGen(x.Rows, x.Cols, 0)
		case op == matrix.BinSub && v == 0 && litLeft:
			r.stats.Simplified++
			return d.Unary(matrix.UnNeg, x)
		}
	}
	return d.Binary(op, a, b)
}

func litOperand(a, b *hop.Hop) (lit, other *hop.Hop, litLeft bool) {
	if a.Kind == hop.OpLiteral {
		return a, b, true
	}
	if b.Kind == hop.OpLiteral {
		return b, a, false
	}
	return nil, nil, false
}

// cse collapses the node into an existing structurally identical one.
func (r *rewriter) cse(n *hop.Hop) *hop.Hop {
	key := nodeKey(n)
	if prev, ok := r.byKey[key]; ok && prev != n {
		r.stats.CSEMerged++
		return prev
	}
	r.byKey[key] = n
	return n
}

func nodeKey(n *hop.Hop) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", n.Kind)
	switch n.Kind {
	case hop.OpData:
		b.WriteString(n.Name)
	case hop.OpLiteral:
		fmt.Fprintf(&b, "%g", n.Value)
	case hop.OpDataGen:
		fmt.Fprintf(&b, "%d:%v:%dx%d", n.Gen, n.GenArgs, n.Rows, n.Cols)
	case hop.OpBinary:
		fmt.Fprintf(&b, "%d", n.BinOp)
	case hop.OpUnary:
		fmt.Fprintf(&b, "%d", n.UnOp)
	case hop.OpAggUnary:
		fmt.Fprintf(&b, "%d:%d", n.AggOp, n.AggDir)
	case hop.OpIndex:
		fmt.Fprintf(&b, "%d:%d:%d:%d", n.RL, n.RU, n.CL, n.CU)
	case hop.OpSpoof:
		fmt.Fprintf(&b, "%p", n.Spoof)
	}
	for _, in := range n.Inputs {
		fmt.Fprintf(&b, "|%d", in.ID)
	}
	return b.String()
}
