package cplan

import (
	"math"

	"sysml/internal/matrix"
)

// CellFunc is the compiled genexec function of Cell/MAgg/Outer operators:
// it maps one main-input value (plus side inputs addressed via ctx) to one
// output value. rix/cix are the current cell coordinates.
type CellFunc func(ctx *Ctx, a float64, rix, cix int) float64

// Operator is a compiled fused operator: the analog of the generated and
// JIT-compiled Java class in SystemML. It pairs the CPlan with executable
// closures and the rendered source artifact.
type Operator struct {
	Plan      *Plan
	Hash      uint64
	ClassName string
	Source    string

	CellFn  CellFunc   // Cell and Outer genexec
	MAggFns []CellFunc // MAgg/Horizontal: one genexec per output
	RowProg *RowProgram
	// VecProg is the vectorized chunk form of a Cell plan and MAggVecs the
	// per-output forms of a MAgg/Horizontal plan (nil when the access
	// pattern requires per-cell evaluation).
	VecProg  *CellVecProgram
	MAggVecs []*CellVecProgram

	// Fingerprint is the canonical structural fingerprint (fingerprint.go)
	// and Chunk/MAggChunks/RowChunk the specialized AOT bodies it selected
	// at compile time (nil entries fall back to the interpreted programs
	// above). See chunks.go for the dispatch contract.
	Fingerprint string
	Chunk       *ChunkProgram
	MAggChunks  []*ChunkProgram
	RowChunk    *RowChunkProgram

	// HFused is the whole-group fused body of a Horizontal plan: one
	// specialized loop covering every root at once (hfused.go). Nil when any
	// root falls outside the affine normal form; the skeleton then uses the
	// per-root programs above.
	HFused *HFusedProgram
}

// Compile translates a CPlan into an executable Operator. This is the fast
// "janino" analog: closures are assembled directly from the CNode DAG.
func Compile(p *Plan, className string) *Operator {
	op := &Operator{Plan: p, Hash: p.Hash(), ClassName: className}
	switch p.Type {
	case TemplateCell, TemplateOuter:
		op.CellFn = compileCell(p.Root)
		if p.Type == TemplateCell {
			op.VecProg = CompileCellVec(p.Root)
			op.Chunk = BuildChunk(p.Root, p.Cell, p.AggOp)
		}
	case TemplateMAgg:
		for _, r := range p.Roots {
			op.MAggFns = append(op.MAggFns, compileCell(r))
			op.MAggVecs = append(op.MAggVecs, CompileCellVec(r))
			op.MAggChunks = append(op.MAggChunks, BuildChunk(r, CellFullAgg, p.AggOps[len(op.MAggFns)-1]))
		}
	case TemplateHorizontal:
		for i, r := range p.Roots {
			op.MAggFns = append(op.MAggFns, compileCell(r))
			op.MAggVecs = append(op.MAggVecs, CompileCellVec(r))
			op.MAggChunks = append(op.MAggChunks, BuildChunk(r, p.HKinds[i], p.AggOps[i]))
		}
		op.HFused = BuildHFused(p)
	case TemplateRow:
		op.RowProg = compileRow(p)
		op.RowChunk = buildRowChunk(op.RowProg)
	}
	op.Fingerprint = p.Fingerprint()
	op.Source = Render(p, className)
	return op
}

// Ctx is the per-worker execution context of a fused operator: side-input
// views with stateful row cursors (the paper's stateful iterators under the
// stateless getValue abstraction), pre-read scalar sides, and the Outer
// template's per-cell dot product.
type Ctx struct {
	Sides       []*SideView
	SideScalars []float64
	Dot         float64
}

// NewCtx builds a context over the side inputs.
func NewCtx(sides []*matrix.Matrix) *Ctx {
	c := &Ctx{
		Sides:       make([]*SideView, len(sides)),
		SideScalars: make([]float64, len(sides)),
	}
	for i, m := range sides {
		c.Sides[i] = NewSideView(m)
		if m.Rows == 1 && m.Cols == 1 {
			c.SideScalars[i] = m.At(0, 0)
		}
	}
	return c
}

// Clone returns an independent context for another worker thread.
func (c *Ctx) Clone() *Ctx {
	n := &Ctx{
		Sides:       make([]*SideView, len(c.Sides)),
		SideScalars: append([]float64(nil), c.SideScalars...),
	}
	for i, s := range c.Sides {
		n.Sides[i] = NewSideView(s.m)
	}
	return n
}

// SideView wraps one side input with a row cursor so that sparse sides are
// scanned, not binary-searched, under monotone per-row access.
type SideView struct {
	m     *matrix.Matrix
	dense []float64
	cols  int
	// sparse cursor
	row  int
	pos  int
	vals []float64
	cix  []int
}

// NewSideView wraps a matrix.
func NewSideView(m *matrix.Matrix) *SideView {
	v := &SideView{m: m, cols: m.Cols, row: -1}
	if !m.IsSparse() {
		v.dense = m.Dense()
	}
	return v
}

// Matrix returns the underlying side matrix.
func (v *SideView) Matrix() *matrix.Matrix { return v.m }

// Value returns element (r, c). For sparse sides, sequential access within
// a row advances a cursor; random access falls back to a rescan. The dense
// fast path is small enough to inline into generated closures.
func (v *SideView) Value(r, c int) float64 {
	if v.dense != nil {
		return v.dense[r*v.cols+c]
	}
	return v.sparseValue(r, c)
}

func (v *SideView) sparseValue(r, c int) float64 {
	if r != v.row {
		v.vals, v.cix = v.m.Sparse().Row(r)
		v.row, v.pos = r, 0
	}
	if v.pos > 0 && v.pos <= len(v.cix) && (v.pos == len(v.cix) || v.cix[v.pos] > c) && v.cix[v.pos-1] > c {
		v.pos = 0 // non-monotone access: restart scan
	}
	for v.pos < len(v.cix) && v.cix[v.pos] < c {
		v.pos++
	}
	if v.pos < len(v.cix) && v.cix[v.pos] == c {
		return v.vals[v.pos]
	}
	return 0
}

// DenseData returns the dense backing slice of the side input, or nil when
// the side is sparse.
func (v *SideView) DenseData() []float64 { return v.dense }

// Cols returns the side input's column count.
func (v *SideView) Cols() int { return v.cols }

// DensifyRow expands sparse row r into dst (which must have length >= the
// side's column count).
func (v *SideView) DensifyRow(r int, dst []float64) {
	for i := range dst[:v.cols] {
		dst[i] = 0
	}
	vals, cix := v.m.Sparse().Row(r)
	for k, j := range cix {
		dst[j] = vals[k]
	}
}

// compileCell assembles the genexec closure for cell-binding templates.
func compileCell(n *CNode) CellFunc {
	switch n.Kind {
	case NodeLit:
		v := n.Value
		return func(*Ctx, float64, int, int) float64 { return v }
	case NodeMain:
		return func(_ *Ctx, a float64, _, _ int) float64 { return a }
	case NodeDot:
		return func(ctx *Ctx, _ float64, _, _ int) float64 { return ctx.Dot }
	case NodeSide:
		idx := n.Side
		switch n.Access {
		case AccessScalar:
			return func(ctx *Ctx, _ float64, _, _ int) float64 { return ctx.SideScalars[idx] }
		case AccessCol:
			return func(ctx *Ctx, _ float64, rix, _ int) float64 { return ctx.Sides[idx].Value(rix, 0) }
		case AccessRow:
			return func(ctx *Ctx, _ float64, _, cix int) float64 { return ctx.Sides[idx].Value(0, cix) }
		default:
			return func(ctx *Ctx, _ float64, rix, cix int) float64 { return ctx.Sides[idx].Value(rix, cix) }
		}
	case NodeUnary:
		in := compileCell(n.Children[0])
		return compileCellUnary(n.UnOp, in)
	case NodeBinary:
		l := compileCell(n.Children[0])
		r := compileCell(n.Children[1])
		return compileCellBinary(n.BinOp, l, r)
	}
	panic("cplan: CNode kind not valid in cell context: " + nodeKindName(n.Kind))
}

func compileCellBinary(op matrix.BinOp, l, r CellFunc) CellFunc {
	switch op {
	case matrix.BinAdd:
		return func(c *Ctx, a float64, ri, ci int) float64 { return l(c, a, ri, ci) + r(c, a, ri, ci) }
	case matrix.BinSub:
		return func(c *Ctx, a float64, ri, ci int) float64 { return l(c, a, ri, ci) - r(c, a, ri, ci) }
	case matrix.BinMul:
		return func(c *Ctx, a float64, ri, ci int) float64 { return l(c, a, ri, ci) * r(c, a, ri, ci) }
	case matrix.BinDiv:
		return func(c *Ctx, a float64, ri, ci int) float64 { return l(c, a, ri, ci) / r(c, a, ri, ci) }
	default:
		o := op
		return func(c *Ctx, a float64, ri, ci int) float64 { return o.Apply(l(c, a, ri, ci), r(c, a, ri, ci)) }
	}
}

func compileCellUnary(op matrix.UnOp, in CellFunc) CellFunc {
	switch op {
	case matrix.UnExp:
		return func(c *Ctx, a float64, ri, ci int) float64 { return math.Exp(in(c, a, ri, ci)) }
	case matrix.UnLog:
		return func(c *Ctx, a float64, ri, ci int) float64 { return math.Log(in(c, a, ri, ci)) }
	case matrix.UnNeg:
		return func(c *Ctx, a float64, ri, ci int) float64 { return -in(c, a, ri, ci) }
	default:
		o := op
		return func(c *Ctx, a float64, ri, ci int) float64 { return o.Apply(in(c, a, ri, ci)) }
	}
}

// ProbeSparseSafe analyzes structurally whether the cell function is
// sparse-safe with respect to the main input, i.e. whether a zero main
// value forces a zero result so that zero cells can be skipped. Like
// SystemML, multiplication and division by the main input count as sparse
// drivers regardless of the other operand (the 0·NaN corner case is
// accepted by convention, which is what makes sum(X*log(UV'+eps))
// sparse-safe in the paper's Fig. 1d).
func ProbeSparseSafe(roots ...*CNode) bool {
	for _, r := range roots {
		if !zeroWhenMainZero(r) {
			return false
		}
	}
	return true
}

func zeroWhenMainZero(n *CNode) bool {
	switch n.Kind {
	case NodeMain:
		return true
	case NodeLit:
		return n.Value == 0
	case NodeSide, NodeDot:
		return false
	case NodeUnary:
		return n.UnOp.SparseSafe() && zeroWhenMainZero(n.Children[0])
	case NodeBinary:
		l := zeroWhenMainZero(n.Children[0])
		r := zeroWhenMainZero(n.Children[1])
		switch n.BinOp {
		case matrix.BinMul, matrix.BinAnd:
			return l || r
		case matrix.BinDiv, matrix.BinPow:
			return l
		default:
			// Zero-zero operands decide generically (covers e.g. X != 0,
			// X + 0, min/max with zero-propagating children).
			return l && r && n.BinOp.Apply(0, 0) == 0
		}
	case NodeAgg, NodeMatMult, NodeIdx:
		// Row-template reductions of a zero vector are zero for sums.
		return zeroWhenMainZero(n.Children[0])
	}
	return false
}

func nodeKindName(k NodeKind) string {
	names := [...]string{"main", "side", "lit", "binary", "unary", "agg", "matmult", "idx", "dot"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}
