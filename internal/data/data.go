// Package data provides the dataset generators of the evaluation: plain
// synthetic rand matrices and synthetic stand-ins for the paper's real
// datasets, matched to their published shape, sparsity, and value
// characteristics (see DESIGN.md substitutions; the experiments depend on
// dimensions, sparsity, and compressibility rather than semantic content).
package data

import (
	"math"
	"math/rand"

	"sysml/internal/matrix"
)

// Dense returns a dense uniform matrix in [-1, 1).
func Dense(rows, cols int, seed int64) *matrix.Matrix {
	return matrix.Rand(rows, cols, 1, -1, 1, seed)
}

// Sparse returns a sparse uniform matrix with the given non-zero fraction.
func Sparse(rows, cols int, sparsity float64, seed int64) *matrix.Matrix {
	return matrix.Rand(rows, cols, sparsity, -1, 1, seed)
}

// AirlineLike mimics the Airline78 dataset: dense, 29 columns, low
// per-column cardinality (categorical and small-integer fields), which is
// what makes CLA compression effective (paper reports ratio 7.44x).
func AirlineLike(rows int, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	const cols = 29
	card := make([]float64, cols)
	for j := range card {
		// Mix of low-cardinality categorical (days, carriers) and wider
		// numeric columns (delays, distances).
		switch {
		case j < 10:
			card[j] = float64(4 + rng.Intn(28))
		case j < 20:
			card[j] = float64(32 + rng.Intn(200))
		default:
			card[j] = float64(500 + rng.Intn(1500))
		}
	}
	out := matrix.NewDense(rows, cols)
	d := out.Dense()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d[i*cols+j] = math.Floor(rng.Float64() * card[j])
		}
	}
	return out
}

// MnistLike mimics the (Infi)MNIST datasets: 784 columns, sparsity 0.25,
// non-zero values clustered on a 256-level intensity grid.
func MnistLike(rows int, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	const cols = 784
	csr := &matrix.CSR{RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.25 {
				csr.ColIdx = append(csr.ColIdx, j)
				csr.Values = append(csr.Values, float64(1+rng.Intn(255))/255)
			}
		}
		csr.RowPtr[i+1] = len(csr.Values)
	}
	return matrix.NewSparseCSR(rows, cols, csr)
}

// NetflixLike mimics the Netflix ratings matrix: sparsity 0.012, integer
// ratings 1..5 with per-user activity skew.
func NetflixLike(rows, cols int, seed int64) *matrix.Matrix {
	return ratings(rows, cols, 0.012, seed)
}

// AmazonLike mimics the Amazon books review matrix: ultra-sparse
// (1.2e-6 at full scale; the fraction is scaled up with small shapes so
// rows keep at least a handful of non-zeros).
func AmazonLike(rows, cols int, seed int64) *matrix.Matrix {
	sparsity := math.Max(1.2e-6, 4/float64(cols))
	return ratings(rows, cols, sparsity, seed)
}

func ratings(rows, cols int, sparsity float64, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	csr := &matrix.CSR{RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		// Skewed per-row activity: a few heavy raters.
		rowSp := sparsity * math.Exp(rng.NormFloat64()*0.8)
		expected := rowSp * float64(cols)
		n := int(expected)
		if rng.Float64() < expected-float64(n) {
			n++
		}
		if n > cols {
			n = cols
		}
		seen := map[int]bool{}
		colsIdx := make([]int, 0, n)
		for len(colsIdx) < n {
			j := rng.Intn(cols)
			if !seen[j] {
				seen[j] = true
				colsIdx = append(colsIdx, j)
			}
		}
		sortInts(colsIdx)
		for _, j := range colsIdx {
			csr.ColIdx = append(csr.ColIdx, j)
			csr.Values = append(csr.Values, float64(1+rng.Intn(5)))
		}
		csr.RowPtr[i+1] = len(csr.Values)
	}
	return matrix.NewSparseCSR(rows, cols, csr)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// BinaryLabels generates ±1 labels from a random linear model over X with
// label noise, for classification workloads.
func BinaryLabels(x *matrix.Matrix, noise float64, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	w := matrix.Rand(x.Cols, 1, 1, -1, 1, seed+1)
	score := matrix.MatMult(x, w)
	y := matrix.NewDense(x.Rows, 1)
	for i := 0; i < x.Rows; i++ {
		v := 1.0
		if score.At(i, 0) < 0 {
			v = -1
		}
		if rng.Float64() < noise {
			v = -v
		}
		y.Set(i, 0, v)
	}
	return y
}

// ZeroOneLabels converts ±1 labels to {0, 1}.
func ZeroOneLabels(y *matrix.Matrix) *matrix.Matrix {
	out := matrix.NewDense(y.Rows, 1)
	for i := 0; i < y.Rows; i++ {
		if y.At(i, 0) > 0 {
			out.Set(i, 0, 1)
		}
	}
	return out
}

// MultiClassIndicator generates an n×k one-hot label matrix from a random
// linear model with k classes.
func MultiClassIndicator(x *matrix.Matrix, k int, seed int64) *matrix.Matrix {
	w := matrix.Rand(x.Cols, k, 1, -1, 1, seed)
	score := matrix.MatMult(x, w)
	cls := matrix.RowIndexMax(score)
	out := matrix.NewDense(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		out.Set(i, int(cls.At(i, 0))-1, 1)
	}
	return out
}
