package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sysml/internal/matrix"
)

const stressScript = `s = sum(X * Y)
w = t(X) %*% (X %*% t(colSums(Y / 100)))`

// runStress executes the fusible stress script once on a tenant session.
func runStress(t *testing.T, tn *Tenant, rows int, seed int64) {
	t.Helper()
	s, err := tn.Acquire(time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer tn.Release(s)
	ec := matrix.Ctx{Par: s.Par, Buf: s.Alloc}
	s.Env["X"] = ec.Rand(rows, 20, 1, -1, 1, seed)
	s.Env["Y"] = ec.Rand(rows, 20, 1, -1, 1, seed+1)
	if err := s.Run(stressScript); err != nil {
		t.Errorf("run: %v", err)
	}
}

// TestTwoEnginesConcurrentIsolation runs two engines with different worker
// caps, memory budgets, and quotas concurrently (the -race stress of the
// issue): results must stay correct and neither engine's pools, cache, or
// counters may observe the other's traffic.
func TestTwoEnginesConcurrentIsolation(t *testing.T) {
	a := NewEngine(
		WithMaxWorkers(2),
		WithMemoryBudget(64<<20),
		WithTenantQuota(TenantQuota{MaxSessions: 2}),
		WithSharedPlanCache(0, 4, 1),
	)
	b := NewEngine(
		WithMaxWorkers(4),
		WithMemoryBudget(256<<20),
		WithTenantQuota(TenantQuota{MaxSessions: 4}),
		WithSharedPlanCache(0, 8, 1),
	)
	if a.MaxWorkers() != 2 || b.MaxWorkers() != 4 {
		t.Fatalf("worker caps leaked: a=%d b=%d", a.MaxWorkers(), b.MaxWorkers())
	}

	const tenantsPer, repsPer = 3, 4
	var wg sync.WaitGroup
	for _, eng := range []*Engine{a, b} {
		for ti := 0; ti < tenantsPer; ti++ {
			wg.Add(1)
			go func(e *Engine, ti int) {
				defer wg.Done()
				tn := e.Tenant(fmt.Sprintf("tenant-%d", ti))
				for r := 0; r < repsPer; r++ {
					runStress(t, tn, 64, int64(ti*100+r))
				}
			}(eng, ti)
		}
	}
	wg.Wait()

	for name, e := range map[string]*Engine{"a": a, "b": b} {
		if got := e.Requests(); got != tenantsPer*repsPer {
			t.Errorf("engine %s: %d requests, want %d", name, got, tenantsPer*repsPer)
		}
		if e.Shed() != 0 {
			t.Errorf("engine %s shed %d requests at nominal load", name, e.Shed())
		}
		hits, misses, _ := e.Cache().TotalCounters()
		if hits+misses == 0 {
			t.Errorf("engine %s: plan cache saw no traffic", name)
		}
		// All sessions were released: nothing may still hold pooled bytes.
		if live := e.LiveBytes(); live != 0 {
			t.Errorf("engine %s: %d live bytes after all releases", name, live)
		}
	}
	// Per-tenant accounting stayed per-tenant.
	for name, st := range a.Tenants() {
		if st.Requests != repsPer {
			t.Errorf("engine a tenant %s: %d requests, want %d", name, st.Requests, repsPer)
		}
	}
}

// TestTenantSessionQuota: at MaxSessions the tenant sheds instead of
// oversubscribing, and releasing frees the slot.
func TestTenantSessionQuota(t *testing.T) {
	e := NewEngine(WithTenantQuota(TenantQuota{MaxSessions: 1}))
	tn := e.Tenant("q")
	s, err := tn.Acquire(0)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := tn.Acquire(5 * time.Millisecond); err != ErrTenantBusy {
		t.Fatalf("second acquire: got %v, want ErrTenantBusy", err)
	}
	if tn.Stats().Shed != 1 {
		t.Errorf("shed count %d, want 1", tn.Stats().Shed)
	}
	tn.Release(s)
	s2, err := tn.Acquire(0)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	tn.Release(s2)
}

// TestTenantMemoryQuota: a tenant with a private memory budget sheds while
// its live bytes exceed it and recovers once buffers come back.
func TestTenantMemoryQuota(t *testing.T) {
	e := NewEngine()
	tn, err := e.TenantWithQuota("m", TenantQuota{MaxSessions: 4, MemBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	buf := tn.alloc.Get(4096) // 32 KiB live > 4 KiB quota
	if !tn.OverBudget() {
		t.Fatal("tenant not over budget with 32 KiB live")
	}
	if _, err := tn.Acquire(0); err != ErrTenantOverBudget {
		t.Fatalf("acquire over budget: got %v, want ErrTenantOverBudget", err)
	}
	tn.alloc.Put(buf)
	s, err := tn.Acquire(0)
	if err != nil {
		t.Fatalf("acquire after recovery: %v", err)
	}
	tn.Release(s)
}

// TestTenantCacheAccountingIsolation: two tenants sharing the engine plan
// cache see shared compiled operators but isolated hit/miss counters.
func TestTenantCacheAccountingIsolation(t *testing.T) {
	e := NewEngine(WithSharedPlanCache(0, 4, 1))
	ta, tb := e.Tenant("a"), e.Tenant("b")

	run := func(tn *Tenant) {
		s, err := tn.Acquire(0)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		defer tn.Release(s)
		ec := matrix.Ctx{Par: s.Par, Buf: s.Alloc}
		s.Env["X"] = ec.Rand(32, 8, 1, -1, 1, 1)
		s.Env["Y"] = ec.Rand(32, 8, 1, -1, 1, 2)
		if err := s.Run(`s = sum(X * Y * 2)`); err != nil {
			t.Fatalf("run: %v", err)
		}
		s.Close() // drop the block cache so the next run re-enters codegen
	}

	run(ta)
	run(ta)
	run(tb)

	as, bs := ta.Stats(), tb.Stats()
	if as.CacheMisses != 1 || as.CacheHits < 1 {
		t.Errorf("tenant a: (%d hits, %d misses), want >=1 hit and exactly 1 miss",
			as.CacheHits, as.CacheMisses)
	}
	// b's first lookup hits the operator a compiled — shared store — but
	// the hit lands in b's own counters, not a's.
	if bs.CacheMisses != 0 || bs.CacheHits < 1 {
		t.Errorf("tenant b: (%d hits, %d misses), want >=1 hit and 0 misses",
			bs.CacheHits, bs.CacheMisses)
	}
	hits, misses, _ := e.Cache().TotalCounters()
	if hits != as.CacheHits+bs.CacheHits || misses != as.CacheMisses+bs.CacheMisses {
		t.Errorf("aggregate (%d, %d) != tenant sums (%d, %d)",
			hits, misses, as.CacheHits+bs.CacheHits, as.CacheMisses+bs.CacheMisses)
	}
}

// TestTenantPrivatePlanQuota: MaxPlans gives the tenant a private bounded
// cache whose evictions cannot touch other tenants.
func TestTenantPrivatePlanQuota(t *testing.T) {
	e := NewEngine(WithSharedPlanCache(0, 4, 1))
	shared := e.Tenant("shared")
	private, err := e.TenantWithQuota("private", TenantQuota{MaxSessions: 2, MaxPlans: 1})
	if err != nil {
		t.Fatal(err)
	}
	if private.cache == shared.cache {
		t.Fatal("MaxPlans tenant shares the engine cache view")
	}
	if private.cache.Size() != 0 {
		t.Fatal("private cache not empty at start")
	}
}

// TestSessionResetReturnsBuffers: Reset must return pooled intermediates
// so the engine's live-bytes gauge falls back to zero (the admission
// signal the server sheds on).
func TestSessionResetReturnsBuffers(t *testing.T) {
	e := NewEngine(WithMemoryBudget(64 << 20))
	tn := e.Tenant("r")
	s, err := tn.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	ec := matrix.Ctx{Par: s.Par, Buf: s.Alloc}
	s.Env["X"] = ec.Rand(128, 64, 1, -1, 1, 3)
	if err := s.Run(`Y = X %*% t(X)`); err != nil {
		t.Fatal(err)
	}
	if e.LiveBytes() == 0 {
		t.Fatal("no live bytes while results are held")
	}
	tn.Release(s)
	if live := e.LiveBytes(); live != 0 {
		t.Errorf("%d live bytes after release, want 0", live)
	}
}
