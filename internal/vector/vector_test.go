package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestDotProduct(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	got := DotProduct(a, b, 0, 0, len(a))
	var want float64
	for i := range a {
		want += a[i] * b[i]
	}
	if got != want {
		t.Fatalf("DotProduct = %v, want %v", got, want)
	}
	// Offsets.
	if got := DotProduct(a, b, 2, 3, 4); got != 3*7+4*6+5*5+6*4 {
		t.Fatalf("offset DotProduct = %v", got)
	}
}

func TestDotProductUnrolledMatchesNaive(t *testing.T) {
	// Property: 8-fold unrolled loop equals the naive loop for all lengths.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%40 + 1
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		return almostEq(DotProduct(a, b, 0, 0, n), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotProductSparse(t *testing.T) {
	avals := []float64{2, 3}
	aix := []int{1, 4}
	b := []float64{9, 10, 11, 12, 13}
	if got := DotProductSparse(avals, aix, b, 0); got != 2*10+3*13 {
		t.Fatalf("DotProductSparse = %v", got)
	}
}

func TestSumAggregates(t *testing.T) {
	a := []float64{1, -2, 3, -4, 5, -6, 7, -8, 9}
	if got := Sum(a, 0, len(a)); got != 5 {
		t.Fatalf("Sum = %v", got)
	}
	if got := SumSq(a, 0, 3); got != 1+4+9 {
		t.Fatalf("SumSq = %v", got)
	}
	if got := Min(a, 0, len(a)); got != -8 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(a, 0, len(a)); got != 9 {
		t.Fatalf("Max = %v", got)
	}
	if got := IndexMax(a, 0, len(a)); got != 8 {
		t.Fatalf("IndexMax = %v", got)
	}
	if got := CountNnz([]float64{0, 1, 0, 2}, 0, 4); got != 2 {
		t.Fatalf("CountNnz = %v", got)
	}
	if got := IndexMax(nil, 0, 0); got != -1 {
		t.Fatalf("IndexMax(empty) = %v", got)
	}
}

func TestMultAdd(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	c := make([]float64, 9)
	MultAdd(a, 2, c, 0, 0, 9)
	for i := range c {
		if c[i] != 2*a[i] {
			t.Fatalf("MultAdd c[%d] = %v", i, c[i])
		}
	}
	MultAdd(a, 0, c, 0, 0, 9) // zero scale is a no-op
	if c[0] != 2 {
		t.Fatal("MultAdd with 0 modified output")
	}
}

func TestMatMultPrimitive(t *testing.T) {
	// a (1x3) * B (3x2) row-major.
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3, 4, 5, 6}
	c := make([]float64, 2)
	MatMult(a, b, c, 0, 0, 0, 3, 2)
	if c[0] != 1*1+2*3+3*5 || c[1] != 1*2+2*4+3*6 {
		t.Fatalf("MatMult = %v", c)
	}
	// Sparse row variant agrees.
	cs := make([]float64, 2)
	MatMultSparse([]float64{1, 2, 3}, []int{0, 1, 2}, b, cs, 0, 0, 2)
	if cs[0] != c[0] || cs[1] != c[1] {
		t.Fatalf("MatMultSparse = %v, want %v", cs, c)
	}
}

func TestOuterMultAdd(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4, 5}
	c := make([]float64, 6)
	OuterMultAdd(a, b, c, 0, 0, 0, 2, 3)
	want := []float64{3, 4, 5, 6, 8, 10}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("OuterMultAdd = %v, want %v", c, want)
		}
	}
	c2 := make([]float64, 6)
	OuterMultAddSparse([]float64{1, 2}, []int{0, 1}, b, c2, 0, 0, 3)
	for i := range want {
		if c2[i] != want[i] {
			t.Fatalf("OuterMultAddSparse = %v, want %v", c2, want)
		}
	}
}

func TestBinaryWritePrimitives(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}
	c := make([]float64, 10)
	MultWrite(a, b, c, 0, 0, 0, 10)
	for i := range a {
		if c[i] != a[i]*2 {
			t.Fatalf("MultWrite c[%d] = %v", i, c[i])
		}
	}
	AddWrite(a, b, c, 0, 0, 0, 10)
	if c[0] != 3 {
		t.Fatalf("AddWrite = %v", c[0])
	}
	MinusWrite(a, b, c, 0, 0, 0, 10)
	if c[0] != -1 {
		t.Fatalf("MinusWrite = %v", c[0])
	}
	DivWrite(a, b, c, 0, 0, 0, 10)
	if c[3] != 2 {
		t.Fatalf("DivWrite = %v", c[3])
	}
	MinWrite(a, b, c, 0, 0, 0, 10)
	if c[0] != 1 || c[9] != 2 {
		t.Fatalf("MinWrite = %v", c)
	}
	MaxWrite(a, b, c, 0, 0, 0, 10)
	if c[0] != 2 || c[9] != 10 {
		t.Fatalf("MaxWrite = %v", c)
	}
}

func TestScalarWritePrimitives(t *testing.T) {
	a := []float64{1, 4, 9}
	c := make([]float64, 3)
	MultScalarWrite(a, 3, c, 0, 0, 3)
	if c[1] != 12 {
		t.Fatal("MultScalarWrite")
	}
	AddScalarWrite(a, 1, c, 0, 0, 3)
	if c[2] != 10 {
		t.Fatal("AddScalarWrite")
	}
	MinusScalarWrite(a, 1, c, 0, 0, 3)
	if c[0] != 0 {
		t.Fatal("MinusScalarWrite")
	}
	ScalarMinusWrite(10, a, c, 0, 0, 3)
	if c[2] != 1 {
		t.Fatal("ScalarMinusWrite")
	}
	DivScalarWrite(a, 2, c, 0, 0, 3)
	if c[1] != 2 {
		t.Fatal("DivScalarWrite")
	}
	ScalarDivWrite(36, a, c, 0, 0, 3)
	if c[2] != 4 {
		t.Fatal("ScalarDivWrite")
	}
	PowScalarWrite(a, 2, c, 0, 0, 3)
	if c[1] != 16 {
		t.Fatal("PowScalarWrite^2")
	}
	PowScalarWrite(a, 0.5, c, 0, 0, 3)
	if c[2] != 3 {
		t.Fatal("PowScalarWrite^0.5")
	}
	GreaterScalarWrite(a, 3, c, 0, 0, 3)
	if c[0] != 0 || c[1] != 1 {
		t.Fatal("GreaterScalarWrite")
	}
	NotEqualScalarWrite(a, 4, c, 0, 0, 3)
	if c[0] != 1 || c[1] != 0 {
		t.Fatal("NotEqualScalarWrite")
	}
}

func TestUnaryWritePrimitives(t *testing.T) {
	a := []float64{-1, 0, 1, 2.5}
	c := make([]float64, 4)
	ExpWrite(a, c, 0, 0, 4)
	if !almostEq(c[2], math.E) {
		t.Fatal("ExpWrite")
	}
	LogWrite([]float64{1, math.E}, c, 0, 0, 2)
	if !almostEq(c[1], 1) {
		t.Fatal("LogWrite")
	}
	SqrtWrite([]float64{4, 9}, c, 0, 0, 2)
	if c[1] != 3 {
		t.Fatal("SqrtWrite")
	}
	AbsWrite(a, c, 0, 0, 4)
	if c[0] != 1 {
		t.Fatal("AbsWrite")
	}
	SignWrite(a, c, 0, 0, 4)
	if c[0] != -1 || c[1] != 0 || c[3] != 1 {
		t.Fatal("SignWrite")
	}
	RoundWrite(a, c, 0, 0, 4)
	if c[3] != 3 {
		t.Fatal("RoundWrite")
	}
	FloorWrite(a, c, 0, 0, 4)
	if c[3] != 2 {
		t.Fatal("FloorWrite")
	}
	CeilWrite(a, c, 0, 0, 4)
	if c[3] != 3 {
		t.Fatal("CeilWrite")
	}
	NegWrite(a, c, 0, 0, 4)
	if c[0] != 1 {
		t.Fatal("NegWrite")
	}
	SigmoidWrite([]float64{0}, c, 0, 0, 1)
	if c[0] != 0.5 {
		t.Fatal("SigmoidWrite")
	}
	Pow2Write(a, c, 0, 0, 4)
	if c[3] != 6.25 {
		t.Fatal("Pow2Write")
	}
	CopyWrite(a, c, 0, 0, 4)
	if c[3] != 2.5 {
		t.Fatal("CopyWrite")
	}
	Fill(c, 7, 1, 2)
	if c[0] != -1 || c[1] != 7 || c[2] != 7 || c[3] != 2.5 {
		t.Fatal("Fill")
	}
	CumsumWrite([]float64{1, 2, 3}, c, 0, 0, 3)
	if c[2] != 6 {
		t.Fatal("CumsumWrite")
	}
}

func TestAddPrimitives(t *testing.T) {
	c := []float64{1, 1, 1, 1}
	Add([]float64{1, 2, 3, 4}, c, 0, 0, 4)
	if c[3] != 5 {
		t.Fatal("Add")
	}
	AddSparse([]float64{10}, []int{2}, c, 0)
	if c[2] != 14 {
		t.Fatal("AddSparse")
	}
}
