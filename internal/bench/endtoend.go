package bench

import (
	"fmt"
	"io"
	"time"

	"sysml/internal/algos"
	"sysml/internal/codegen"
	"sysml/internal/data"
	"sysml/internal/matrix"
)

// namedInput is one dataset configuration for an algorithm.
type namedInput struct {
	name   string
	inputs map[string]*matrix.Matrix
}

func timeAlgo(a algos.Algorithm, mode codegen.Mode, inputs map[string]*matrix.Matrix,
	overrides map[string]float64) (time.Duration, error) {
	cfg := codegen.DefaultConfig()
	cfg.Mode = mode
	start := time.Now()
	_, err := a.Run(cfg, inputs, overrides, nil, io.Discard)
	return time.Since(start), err
}

func endToEndRow(t *Table, a algos.Algorithm, in namedInput, overrides map[string]float64) {
	row := []string{a.Name, in.name}
	for _, mode := range Modes {
		d, err := timeAlgo(a, mode, in.inputs, overrides)
		if err != nil {
			row = append(row, "ERR")
			continue
		}
		row = append(row, secs(d))
	}
	t.Add(row...)
}

// classificationInputs builds the Table 4 dataset list for one algorithm:
// synthetic dense (two scales), Airline78-like, and Mnist-like.
func classificationInputs(o Options, a algos.Algorithm) []namedInput {
	withLabels := func(name string, x *matrix.Matrix, seed int64) namedInput {
		in := map[string]*matrix.Matrix{"X": x}
		switch a.Name {
		case "L2SVM":
			in["Y"] = data.BinaryLabels(x, 0.05, seed)
		case "GLM":
			in["Y"] = data.ZeroOneLabels(data.BinaryLabels(x, 0.05, seed))
		case "MLogreg":
			in["Yfull"] = data.MultiClassIndicator(x, 3, seed)
		case "KMeans":
			in["C0"] = matrix.Rand(5, x.Cols, 1, -1, 1, seed)
		}
		return namedInput{name, in}
	}
	return []namedInput{
		withLabels(fmt.Sprintf("%dx10 dense", o.rows(100000)), data.Dense(o.rows(100000), 10, 31), 41),
		withLabels(fmt.Sprintf("%dx10 dense", o.rows(300000)), data.Dense(o.rows(300000), 10, 32), 42),
		withLabels("Airline78-like", data.AirlineLike(o.rows(50000), 33), 43),
		withLabels("Mnist-like", data.MnistLike(o.rows(8000), 34), 44),
	}
}

// Table4DataIntensive reproduces Table 4: end-to-end runtimes of the four
// data-intensive algorithms across datasets and system variants.
func Table4DataIntensive(o Options) *Table {
	t := &Table{
		Title:   "Table 4: Runtime of Data-Intensive Algorithms [s]",
		Columns: append([]string{"algorithm", "data"}, ModeNames()...),
	}
	jobs := []struct {
		a         algos.Algorithm
		overrides map[string]float64
	}{
		{algos.L2SVM, map[string]float64{"maxiter": 10}},
		{algos.MLogreg, map[string]float64{"maxiter": 5, "inneriter": 5, "k": 3}},
		{algos.GLM, map[string]float64{"maxiter": 5, "inneriter": 5}},
		{algos.KMeans, map[string]float64{"maxiter": 10}},
	}
	for _, job := range jobs {
		for _, in := range classificationInputs(o, job.a) {
			endToEndRow(t, job.a, in, job.overrides)
		}
	}
	return t
}

// Fig13Hybrid reproduces Fig. 13: MLogreg and KMeans runtime with an
// increasing number of classes/centroids (growing intermediates shift the
// workload from memory-bandwidth- to compute-bound).
func Fig13Hybrid(o Options) []*Table {
	rows, cols := o.rows(50000), 100
	x := data.Dense(rows, cols, 51)
	ml := &Table{
		Title:   "Fig 13a: MLogreg, increasing #classes",
		Columns: append([]string{"k"}, ModeNames()...),
	}
	for _, k := range []int{2, 4, 8, 16, 32} {
		inputs := map[string]*matrix.Matrix{
			"X":     x,
			"Yfull": data.MultiClassIndicator(x, k, 52),
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, mode := range Modes {
			d, err := timeAlgo(algos.MLogreg, mode, inputs,
				map[string]float64{"maxiter": 3, "inneriter": 4, "k": float64(k)})
			if err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, secs(d))
		}
		ml.Add(row...)
	}
	km := &Table{
		Title:   "Fig 13b: KMeans, increasing #centroids",
		Columns: append([]string{"k"}, ModeNames()...),
	}
	for _, k := range []int{2, 4, 8, 16, 32} {
		inputs := map[string]*matrix.Matrix{
			"X":  x,
			"C0": matrix.Rand(k, cols, 1, -1, 1, 53),
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, mode := range Modes {
			d, err := timeAlgo(algos.KMeans, mode, inputs,
				map[string]float64{"maxiter": 5, "k": float64(k)})
			if err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, secs(d))
		}
		km.Add(row...)
	}
	return []*Table{ml, km}
}

// Table5ComputeIntensive reproduces Table 5: ALS-CG over synthetic sparse,
// Netflix-like, and Amazon-like data, and AutoEncoder over dense and
// Mnist-like data.
func Table5ComputeIntensive(o Options) *Table {
	t := &Table{
		Title:   "Table 5: Runtime of Compute-Intensive Algorithms [s]",
		Columns: append([]string{"algorithm", "data"}, ModeNames()...),
	}
	alsFactors := func(rows, cols int) map[string]*matrix.Matrix {
		return map[string]*matrix.Matrix{
			"U0": matrix.Rand(rows, 20, 1, 0.01, 0.1, 61),
			"V0": matrix.Rand(cols, 20, 1, 0.01, 0.1, 62),
		}
	}
	alsInputs := []namedInput{}
	addALS := func(name string, x *matrix.Matrix) {
		in := alsFactors(x.Rows, x.Cols)
		in["X"] = x
		alsInputs = append(alsInputs, namedInput{name, in})
	}
	n1 := o.rows(2000)
	addALS(fmt.Sprintf("%dx%d sparse(0.01)", n1, n1),
		matrix.Unary(matrix.UnAbs, data.Sparse(n1, n1, 0.01, 63)))
	addALS("Netflix-like", data.NetflixLike(o.rows(4000), o.rows(2000), 64))
	addALS("Amazon-like", data.AmazonLike(o.rows(20000), o.rows(8000), 65))
	for _, in := range alsInputs {
		endToEndRow(t, algos.ALSCG, in, map[string]float64{"maxiter": 2, "rank": 10})
	}
	aeInputs := []namedInput{
		{fmt.Sprintf("%dx50 dense", o.rows(20000)),
			map[string]*matrix.Matrix{"X": data.Dense(o.rows(20000), 50, 66)}},
		{"Mnist1m-like", map[string]*matrix.Matrix{"X": data.MnistLike(o.rows(6000), 67).ToDense()}},
	}
	for _, in := range aeInputs {
		batch := 512.0
		if n := in.inputs["X"].Rows; n < 2048 {
			batch = float64(n / 4)
		}
		endToEndRow(t, algos.AutoEncoder, in,
			map[string]float64{"epochs": 1, "batch": batch, "H1": 64, "H2": 2})
	}
	return t
}
