package compress

import (
	"math"
	"testing"
	"testing/quick"

	"sysml/internal/matrix"
)

// lowCardinality generates a matrix with few distinct values per column,
// the CLA-friendly case (Airline78-like).
func lowCardinality(rows, cols int, card int, seed int64) *matrix.Matrix {
	m := matrix.Rand(rows, cols, 1, 0, float64(card), seed)
	d := m.Dense()
	for i := range d {
		d[i] = math.Floor(d[i])
	}
	return m
}

func TestCompressRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *matrix.Matrix
	}{
		{"low-card", lowCardinality(500, 6, 10, 1)},
		{"sparse", matrix.Rand(500, 6, 0.1, 1, 3, 2)},
		{"high-card", matrix.Rand(300, 4, 1, -1, 1, 3)},
	} {
		cm := Compress(tc.m, DefaultOptions())
		dec := cm.Decompress()
		md := tc.m.ToDense()
		if !dec.EqualsApprox(md, 0) {
			t.Fatalf("%s: decompress mismatch", tc.name)
		}
		for _, rc := range [][2]int{{0, 0}, {10, 3}, {499 % tc.m.Rows, 2}} {
			if cm.At(rc[0], rc[1]) != md.At(rc[0], rc[1]) {
				t.Fatalf("%s: At(%d,%d) mismatch", tc.name, rc[0], rc[1])
			}
		}
	}
}

func TestCompressionRatioLowCardinality(t *testing.T) {
	m := lowCardinality(20000, 8, 12, 4)
	cm := Compress(m, DefaultOptions())
	if r := cm.CompressionRatio(); r < 2 {
		t.Fatalf("low-cardinality data should compress well, ratio = %v", r)
	}
	// High-cardinality data must fall back without breaking correctness.
	hc := matrix.Rand(2000, 3, 1, -1, 1, 5)
	cmhc := Compress(hc, Options{CoCode: true, MaxDistinct: 64})
	if !cmhc.Decompress().EqualsApprox(hc, 0) {
		t.Fatal("UC fallback round trip failed")
	}
	hasUC := false
	for _, g := range cmhc.Groups {
		if _, ok := g.(*UCGroup); ok {
			hasUC = true
		}
	}
	if !hasUC {
		t.Fatal("expected uncompressed fallback group")
	}
}

func TestSumAndSumSq(t *testing.T) {
	f := func(seed int64) bool {
		m := lowCardinality(300, 5, 7, seed)
		cm := Compress(m, DefaultOptions())
		wantSum := matrix.Sum(m)
		wantSq := matrix.Agg(matrix.AggSumSq, matrix.DirAll, m).Scalar()
		return math.Abs(cm.Sum()-wantSum) < 1e-6*math.Abs(wantSum)+1e-9 &&
			math.Abs(cm.SumSq()-wantSq) < 1e-6*wantSq+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAggCellMatchesDense(t *testing.T) {
	m := lowCardinality(400, 6, 9, 6)
	cm := Compress(m, DefaultOptions())
	got := cm.AggCell(func(v float64) float64 { return v*v + 2*v })
	var want float64
	md := m.ToDense().Dense()
	for _, v := range md {
		want += v*v + 2*v
	}
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("AggCell = %v, want %v", got, want)
	}
}

func TestRLESelection(t *testing.T) {
	// Long runs: a sorted column compresses to RLE.
	rows := 10000
	m := matrix.NewDense(rows, 1)
	d := m.Dense()
	for i := range d {
		d[i] = float64(i / 1000) // 10 runs of length 1000
	}
	cm := Compress(m, DefaultOptions())
	if len(cm.Groups) != 1 {
		t.Fatalf("expected 1 group, got %d", len(cm.Groups))
	}
	if _, ok := cm.Groups[0].(*RLEGroup); !ok {
		t.Fatalf("expected RLE group, got %T", cm.Groups[0])
	}
	if !cm.Decompress().EqualsApprox(m, 0) {
		t.Fatal("RLE round trip failed")
	}
	if cm.CompressionRatio() < 50 {
		t.Fatalf("run data should compress heavily, ratio %v", cm.CompressionRatio())
	}
}

func TestCoCoding(t *testing.T) {
	// Two binary columns co-code into one group with ≤4 tuples.
	rows := 5000
	m := matrix.NewDense(rows, 2)
	d := m.Dense()
	for i := 0; i < rows; i++ {
		d[i*2] = float64(i % 2)
		d[i*2+1] = float64((i / 2) % 2)
	}
	cm := Compress(m, DefaultOptions())
	if len(cm.Groups) != 1 {
		t.Fatalf("expected co-coded single group, got %d groups", len(cm.Groups))
	}
	if nd := cm.Groups[0].NumDistinct(); nd > 4 {
		t.Fatalf("co-coded dictionary too large: %d", nd)
	}
	if !cm.Decompress().EqualsApprox(m, 0) {
		t.Fatal("co-coded round trip failed")
	}
	// Without co-coding: two groups.
	cm2 := Compress(m, Options{CoCode: false, MaxDistinct: 1 << 16})
	if len(cm2.Groups) != 2 {
		t.Fatalf("expected 2 groups without co-coding, got %d", len(cm2.Groups))
	}
}

func TestSparseInputCompression(t *testing.T) {
	m := matrix.Rand(1000, 10, 0.05, 1, 2, 7)
	cm := Compress(m, DefaultOptions())
	if !cm.Decompress().EqualsApprox(m.ToDense(), 0) {
		t.Fatal("sparse input round trip failed")
	}
	want := matrix.Sum(m)
	if math.Abs(cm.Sum()-want) > 1e-9*math.Abs(want)+1e-9 {
		t.Fatal("sparse sum mismatch")
	}
}

func TestOLESelectionForSparse(t *testing.T) {
	m := matrix.Rand(5000, 4, 0.1, 1, 4, 9)
	md := m.ToDense()
	d := md.Dense()
	for i := range d {
		d[i] = math.Floor(d[i]) // few distinct non-zero values
	}
	cm := Compress(md, Options{CoCode: false, MaxDistinct: 1 << 16})
	hasOLE := false
	for _, g := range cm.Groups {
		if _, ok := g.(*OLEGroup); ok {
			hasOLE = true
		}
	}
	if !hasOLE {
		t.Fatal("sparse columns should select OLE groups")
	}
	if !cm.Decompress().EqualsApprox(md, 0) {
		t.Fatal("OLE round trip failed")
	}
	wantSum := matrix.Sum(md)
	if math.Abs(cm.Sum()-wantSum) > 1e-9*math.Abs(wantSum)+1e-9 {
		t.Fatal("OLE sum mismatch")
	}
	wantSq := matrix.Agg(matrix.AggSumSq, matrix.DirAll, md).Scalar()
	if math.Abs(cm.SumSq()-wantSq) > 1e-9*wantSq {
		t.Fatal("OLE sumsq mismatch")
	}
	// Non-sparse-safe function over the dictionary must include the
	// implicit zero tuple.
	got := cm.AggCell(func(v float64) float64 { return v + 1 })
	want := float64(md.Rows*md.Cols) + wantSum
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("OLE AggCell with zeros = %v, want %v", got, want)
	}
	// Sparse data compresses far better than dense codes.
	if cm.CompressionRatio() < 3 {
		t.Fatalf("OLE compression ratio %v too low", cm.CompressionRatio())
	}
}
