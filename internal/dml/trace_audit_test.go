package dml

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/dist"
	"sysml/internal/matrix"
	"sysml/internal/obs"
)

// runTraced executes script in a fresh session with a TraceSink attached
// and returns the exported Chrome trace events.
func runTraced(t *testing.T, cfg codegen.Config, cluster *dist.Cluster,
	bind map[string]*matrix.Matrix, script string) ([]obs.TraceEvent, *obs.TraceSink) {
	t.Helper()
	s := NewSession(cfg)
	s.Out = io.Discard
	ts := obs.NewTraceSink()
	s.Sink = ts
	if cluster != nil {
		s.Dist = cluster
	}
	for n, m := range bind {
		s.Bind(n, m)
	}
	if err := s.Run(script); err != nil {
		t.Fatal(err)
	}
	return ts.Events(), ts
}

// TestTraceGolden validates the Chrome-trace export of a full run: the
// JSON parses, the expected pipeline spans exist, every child nests inside
// its parent both by ID and by time containment, and timestamps are
// monotone (the format contract Perfetto / chrome://tracing rely on).
func TestTraceGolden(t *testing.T) {
	evs, ts := runTraced(t, codegen.DefaultConfig(), nil,
		map[string]*matrix.Matrix{
			"X": matrix.Rand(500, 50, 1, -1, 1, 7),
			"v": matrix.Rand(50, 1, 1, -1, 1, 8),
		},
		"s = sum(X * X)\nw = t(X) %*% (X %*% v)")

	// The export must round-trip as a plain JSON array.
	var buf bytes.Buffer
	if _, err := ts.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(parsed) != len(evs) {
		t.Fatalf("JSON has %d events, Events() has %d", len(parsed), len(evs))
	}

	byID := map[uint64]obs.TraceEvent{}
	count := map[string]int{}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Fatalf("event %q has ph %q, want X", e.Name, e.Ph)
		}
		id := e.Args["span"].(uint64)
		byID[id] = e
		count[e.Name]++
	}
	for _, name := range []string{"run", "parse", "compile", "optimize", "execute"} {
		if count[name] == 0 {
			t.Errorf("missing %q span", name)
		}
	}
	if count["spoof(Cell)"] == 0 || count["spoof(Row)"] == 0 {
		t.Errorf("missing per-operator spans: %v", count)
	}
	if count["enumerate"] == 0 || count["construct"] == 0 {
		t.Errorf("missing optimizer sub-spans: %v", count)
	}

	// Structural nesting: every parent reference resolves, and the child's
	// [ts, ts+dur] interval lies inside the parent's.
	for _, e := range evs {
		pid, ok := e.Args["parent"]
		if !ok {
			if e.Name != "run" {
				t.Errorf("span %q has no parent; only run may be a root", e.Name)
			}
			continue
		}
		p, ok := byID[pid.(uint64)]
		if !ok {
			t.Fatalf("span %q references unknown parent %v", e.Name, pid)
		}
		const slack = 1e-3 // µs; span clocks are captured a few ns apart
		if e.TS+slack < p.TS || e.TS+e.Dur > p.TS+p.Dur+slack {
			t.Errorf("span %q [%g, %g] escapes parent %q [%g, %g]",
				e.Name, e.TS, e.TS+e.Dur, p.Name, p.TS, p.TS+p.Dur)
		}
	}

	// Operator spans hang under an execute phase, with hop/shape attrs.
	for _, e := range evs {
		if e.Name != "spoof(Cell)" {
			continue
		}
		p := byID[e.Args["parent"].(uint64)]
		if p.Name != "execute" {
			t.Errorf("operator span parented to %q, want execute", p.Name)
		}
		if e.Args["rows"] == nil || e.Args["exec"] == nil {
			t.Errorf("operator span missing shape attrs: %v", e.Args)
		}
	}

	// Timestamps are monotone non-decreasing and start at zero.
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("timestamps not monotone at %d: %g after %g",
				i, evs[i].TS, evs[i-1].TS)
		}
	}
	if evs[0].TS != 0 || evs[0].Name != "run" {
		t.Fatalf("first event = %q at ts=%g, want run at 0", evs[0].Name, evs[0].TS)
	}
}

// TestTraceDistSpans forces distributed execution and checks the shuffle /
// broadcast / map stages appear as spans with partition and byte attrs.
func TestTraceDistSpans(t *testing.T) {
	cfg := codegen.DefaultConfig()
	cfg.Exec.MemBudgetBytes = 1 // force ExecDist
	cfg.Exec.Blocksize = 64
	cluster := dist.NewCluster()
	cluster.Blocksize = 64
	// Y is a 1x20 row vector: NOT row-aligned with X, so it must ship as a
	// broadcast (a 500x20 Y would be co-partitioned — sliced, not shipped).
	evs, _ := runTraced(t, cfg, cluster,
		map[string]*matrix.Matrix{
			"X": matrix.Rand(500, 20, 1, -1, 1, 1),
			"Y": matrix.Rand(1, 20, 1, -1, 1, 2),
		},
		"s = sum(X * Y)")

	found := map[string]obs.TraceEvent{}
	for _, e := range evs {
		found[e.Name] = e
	}
	mapSpan, ok := found["dist.map"]
	if !ok {
		t.Fatal("no dist.map span recorded")
	}
	if mapSpan.Args["partitions"] == nil || mapSpan.Args["executors"] == nil {
		t.Errorf("dist.map attrs = %v", mapSpan.Args)
	}
	bc, ok := found["dist.broadcast"]
	if !ok {
		t.Fatal("no dist.broadcast span recorded (side input must broadcast)")
	}
	if v, ok := bc.Args["bytes"].(int64); !ok || v <= 0 {
		t.Errorf("dist.broadcast bytes attr = %v", bc.Args["bytes"])
	}
	sh, ok := found["dist.shuffle"]
	if !ok {
		t.Fatal("no dist.shuffle span recorded (partial aggregates must shuffle)")
	}
	if sh.Args["partitions"] == nil {
		t.Errorf("dist.shuffle attrs = %v", sh.Args)
	}
}

// TestCostAuditSession exercises the audit ledger end-to-end on a kmeans
// run followed by an mvchain refinement step: after the run, the summary
// must report per-template rel-err histograms with nonzero entry counts
// for at least Cell and Row.
func TestCostAuditSession(t *testing.T) {
	s := NewSession(codegen.DefaultConfig())
	s.Out = io.Discard
	s.Bind("X", matrix.Rand(1000, 20, 1, -1, 1, 7))
	s.Bind("C0", matrix.Rand(5, 20, 1, -1, 1, 12))
	err := s.Run(`
		C = C0
		rs2 = rowSums(X ^ 2)
		wcss = 0
		for (iter in 1:5) {
			D = t(rowSums(C ^ 2)) - 2 * (X %*% t(C))
			mind = rowMins(D)
			P = (D <= mind)
			P = P / rowSums(P)
			counts = t(colSums(P))
			C = (t(P) %*% X) / max(counts, 1)
			wcss = sum(mind + rs2)
		}
		v = t(colSums(X))
		w = t(X) %*% (X %*% v)
	`)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.CostAudit()
	for _, tmpl := range []string{"Cell", "Row"} {
		ta, ok := sum.Templates[tmpl]
		if !ok || ta.Count == 0 {
			t.Errorf("no audit entries for template %s: %+v", tmpl, sum.Templates)
			continue
		}
		if ta.RelErr.Count() != ta.Count {
			t.Errorf("%s: histogram count %d != entries %d", tmpl, ta.RelErr.Count(), ta.Count)
		}
		if ta.PredSec <= 0 || ta.ActualSec <= 0 {
			t.Errorf("%s: pred/actual not positive: %+v", tmpl, ta)
		}
	}
	if sum.TotalActualSec <= 0 || len(sum.Groups) == 0 {
		t.Fatalf("empty audit summary: %+v", sum)
	}
	// Groups are ranked worst-misprediction-first.
	for i := 1; i < len(sum.Groups); i++ {
		if sum.Groups[i].AbsMispredSec() > sum.Groups[i-1].AbsMispredSec() {
			t.Fatal("audit groups not sorted by absolute misprediction")
		}
	}
}

// TestAuditTemplateCoverage checks each fused template type records audit
// entries tagged with its name.
func TestAuditTemplateCoverage(t *testing.T) {
	cases := []struct {
		template string
		bind     map[string]*matrix.Matrix
		script   string
	}{
		{"Cell", map[string]*matrix.Matrix{
			"X": matrix.Rand(400, 40, 1, -1, 1, 1),
			"Y": matrix.Rand(400, 40, 1, -1, 1, 2),
		}, `s = sum(X * Y * Y)`},
		{"Row", map[string]*matrix.Matrix{
			"X": matrix.Rand(400, 40, 1, -1, 1, 3),
			"v": matrix.Rand(40, 1, 1, -1, 1, 4),
		}, `w = t(X) %*% (X %*% v)`},
		{"MAgg", map[string]*matrix.Matrix{
			"X": matrix.Rand(400, 40, 1, -1, 1, 5),
			"Y": matrix.Rand(400, 40, 1, -1, 1, 6),
			"Z": matrix.Rand(400, 40, 1, -1, 1, 7),
		}, "s1 = sum(X * Y)\ns2 = sum(X * Z)"},
		{"Outer", map[string]*matrix.Matrix{
			"X": matrix.Rand(300, 300, 0.05, 1, 2, 8),
			"U": matrix.Rand(300, 10, 1, -1, 1, 9),
			"V": matrix.Rand(300, 10, 1, -1, 1, 10),
		}, `s = sum(X * log(U %*% t(V) + 1e-15))`},
	}
	for _, tc := range cases {
		t.Run(tc.template, func(t *testing.T) {
			s := NewSession(codegen.DefaultConfig())
			s.Out = io.Discard
			for n, m := range tc.bind {
				s.Bind(n, m)
			}
			if err := s.Run(tc.script); err != nil {
				t.Fatal(err)
			}
			ta, ok := s.CostAudit().Templates[tc.template]
			if !ok || ta.Count == 0 {
				t.Fatalf("no %s audit entries; templates = %+v",
					tc.template, s.CostAudit().Templates)
			}
		})
	}
}

// TestPlanCacheMetrics verifies the plan-cache hit/miss/eviction counters
// surface in Session.Metrics. ReuseBlockPlans is disabled so the second
// run re-optimizes and hits the compiled-operator cache.
func TestPlanCacheMetrics(t *testing.T) {
	cfg := codegen.DefaultConfig()
	cfg.ReuseBlockPlans = false
	s := NewSession(cfg)
	s.Out = io.Discard
	s.Bind("X", matrix.Rand(400, 40, 1, -1, 1, 1))
	s.Bind("Y", matrix.Rand(400, 40, 1, -1, 1, 2))
	for i := 0; i < 2; i++ {
		if err := s.Run(`s = sum(X * Y * Y)`); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics()
	if snap.Counter("plancache.misses") == 0 {
		t.Error("first run must miss the plan cache")
	}
	if snap.Counter("plancache.hits") == 0 {
		t.Error("second identical run must hit the plan cache")
	}
	if hr := snap.Gauge("plancache.hitrate"); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %g, want in (0, 1)", hr)
	}
}

// TestRunInSpanNestsUnderParent verifies the serving-path span threading:
// a run executed via RunInSpan nests its whole hierarchy under the given
// request span, and a request ID on the context lands on the run span.
func TestRunInSpanNestsUnderParent(t *testing.T) {
	s := NewSession(codegen.DefaultConfig())
	s.Out = io.Discard
	ts := obs.NewTraceSink()
	s.Sink = ts
	s.Bind("X", matrix.Rand(300, 30, 1, -1, 1, 3))

	req := obs.StartSpan(nil, ts, "request")
	req.Annotate(obs.KV("tenant", "alpha"))
	ctx := obs.ContextWithRequestID(context.Background(), "req-42")
	if err := s.RunInSpan(ctx, "s = sum(X * X)", req); err != nil {
		t.Fatal(err)
	}
	req.End()

	evs := ts.Events()
	byName := map[string]obs.TraceEvent{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	reqEv, ok := byName["request"]
	if !ok {
		t.Fatalf("no request span in %d events", len(evs))
	}
	runEv, ok := byName["run"]
	if !ok {
		t.Fatal("no run span")
	}
	if runEv.Args["parent"] != reqEv.Args["span"] {
		t.Fatalf("run parent = %v, want request span %v", runEv.Args["parent"], reqEv.Args["span"])
	}
	if runEv.Args["request.id"] != "req-42" {
		t.Fatalf("run span request.id = %v, want req-42", runEv.Args["request.id"])
	}
	// The execute phase must chain up to the run span, and at least one
	// per-operator child must chain to execute.
	execEv, ok := byName["execute"]
	if !ok {
		t.Fatal("no execute span")
	}
	if execEv.Args["parent"] != runEv.Args["span"] {
		t.Fatalf("execute parent = %v, want run %v", execEv.Args["parent"], runEv.Args["span"])
	}
	foundOp := false
	for _, e := range evs {
		if e.Name != "execute" && e.Args["parent"] == execEv.Args["span"] {
			foundOp = true
		}
	}
	if !foundOp {
		t.Error("no per-operator span under execute")
	}

	// A zero parent behaves exactly like RunContext: fresh root.
	s2 := NewSession(codegen.DefaultConfig())
	s2.Out = io.Discard
	ts2 := obs.NewTraceSink()
	s2.Sink = ts2
	s2.Bind("X", matrix.Rand(100, 10, 1, -1, 1, 3))
	if err := s2.RunInSpan(context.Background(), "s = sum(X)", obs.Span{}); err != nil {
		t.Fatal(err)
	}
	for _, e := range ts2.Events() {
		if e.Name == "run" && e.Args["parent"] != nil {
			t.Errorf("zero-parent run has parent %v", e.Args["parent"])
		}
	}
}
