// Package runtime executes HOP DAGs: basic operators via the matrix
// kernels, and generated fused operators via the four hand-coded template
// skeletons (SpoofCellwise, SpoofRowwise, SpoofMultiAggregate,
// SpoofOuterProduct). The skeletons own data access (dense, sparse,
// compressed), multi-threading, and aggregation; generated operators only
// supply the genexec body (paper §2.2, Fig. 4).
package runtime

import (
	"math"

	"sysml/internal/cplan"
	"sysml/internal/matrix"
)

// ExecCellwise runs a compiled Cell-template operator over the main input.
func ExecCellwise(op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix) *matrix.Matrix {
	return execCellwise(matrix.Ctx{}, op, main, sides, nil)
}

func execCellwise(ec matrix.Ctx, op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix, stop StopFn) *matrix.Matrix {
	p := op.Plan
	fn := op.CellFn
	rows, cols := main.Rows, main.Cols
	proto := cplan.NewCtx(sides)
	sparseIter := p.SparseSafe && main.IsSparse() && (p.Cell == cplan.CellNoAgg || aggIsSum(p.AggOp))

	switch p.Cell {
	case cplan.CellNoAgg:
		if sparseIter {
			// Sparse-safe: compute only for non-zero cells; the output
			// keeps the main input's sparsity pattern.
			ms := main.Sparse()
			out := &matrix.CSR{
				RowPtr: append([]int(nil), ms.RowPtr...),
				ColIdx: append([]int(nil), ms.ColIdx...),
				Values: make([]float64, len(ms.Values)),
			}
			ec.Par.For(rows, 64, func(lo, hi int) {
				ctx := proto.Clone()
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						return
					}
					vals, cix := ms.Row(i)
					base := ms.RowPtr[i]
					for k := range cix {
						out.Values[base+k] = fn(ctx, vals[k], i, cix[k])
					}
				}
			})
			return matrix.NewSparseCSR(rows, cols, out)
		}
		// Every dense path below writes every cell, so the pool's zeroing
		// pass over recycled storage would be a wasted full write.
		out := ec.NewDenseUninit(rows, cols)
		od := out.Dense()
		if chunkUsable(op.Chunk, main, sides) && op.Chunk.Kind == cplan.ChunkMap {
			// Specialized chunk program: the fingerprint-selected AOT loop
			// writes the output buffer directly (no result-chunk copy).
			md := main.Dense()
			total := rows * cols
			ec.Par.For((total+cplan.ChunkLen-1)/cplan.ChunkLen, 8, func(clo, chi int) {
				ctx := proto.Clone()
				for ci := clo; ci < chi; ci++ {
					if stop != nil && stop() {
						return
					}
					lo := ci * cplan.ChunkLen
					n := cplan.ChunkLen
					if lo+n > total {
						n = total - lo
					}
					op.Chunk.Map(ctx, md, od, lo, lo, n)
				}
			})
			return out
		}
		if op.VecProg.ChunkCompatible(main, sides) {
			// Vectorized genexec: evaluate the plan chunk-wise with the
			// shared vector primitives (the JIT-compiled-code analog).
			md := main.Dense()
			total := rows * cols
			ec.Par.For((total+cplan.ChunkLen-1)/cplan.ChunkLen, 8, func(clo, chi int) {
				ctx := proto.Clone()
				buf := op.VecProg.GetBuf()
				defer op.VecProg.PutBuf(buf)
				for ci := clo; ci < chi; ci++ {
					if stop != nil && stop() {
						return
					}
					lo := ci * cplan.ChunkLen
					n := cplan.ChunkLen
					if lo+n > total {
						n = total - lo
					}
					res, ro := op.VecProg.Exec(ctx, buf, md, lo, n)
					copy(od[lo:lo+n], res[ro:ro+n])
				}
			})
			return out
		}
		ec.Par.For(rows, 64, func(lo, hi int) {
			ctx := proto.Clone()
			scratch := newRowScratch(ec, main)
			defer releaseRowScratch(ec, scratch)
			for i := lo; i < hi; i++ {
				if pollStop(stop, i-lo) {
					return
				}
				row, off := denseRowView(main, i, scratch)
				base := i * cols
				for j := 0; j < cols; j++ {
					od[base+j] = fn(ctx, row[off+j], i, j)
				}
			}
		})
		return out

	case cplan.CellRowAgg:
		out := ec.NewDense(rows, 1)
		od := out.Dense()
		if chunkUsable(op.Chunk, main, sides) && op.Chunk.Kind == cplan.ChunkAgg {
			// Closed-form per-row aggregate over the dense row slice.
			md := main.Dense()
			ec.Par.For(rows, 64, func(lo, hi int) {
				ctx := proto.Clone()
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						return
					}
					od[i] = op.Chunk.Agg(ctx, md, i*cols, cols)
				}
			})
			return out
		}
		ec.Par.For(rows, 64, func(lo, hi int) {
			ctx := proto.Clone()
			scratch := newRowScratch(ec, main)
			defer releaseRowScratch(ec, scratch)
			for i := lo; i < hi; i++ {
				if pollStop(stop, i-lo) {
					return
				}
				acc := aggInit(p.AggOp)
				if sparseIter {
					vals, cix := main.Sparse().Row(i)
					for k := range cix {
						acc = aggStep(p.AggOp, acc, fn(ctx, vals[k], i, cix[k]))
					}
				} else {
					row, off := denseRowView(main, i, scratch)
					for j := 0; j < cols; j++ {
						acc = aggStep(p.AggOp, acc, fn(ctx, row[off+j], i, j))
					}
				}
				od[i] = acc
			}
		})
		return out

	case cplan.CellColAgg:
		if chunkUsable(op.Chunk, main, sides) && op.Chunk.Kind == cplan.ChunkColAgg {
			// colsums specialization: per-worker column partials accumulated
			// row-by-row with the vector kernels (AggSum only, so the
			// zero-initialized partials reduce by addition).
			md := main.Dense()
			nw, _ := ec.Par.Chunks(rows, 64)
			partials := make([][]float64, nw)
			ec.Par.ForIndexed(rows, 64, func(w, lo, hi int) {
				ctx := proto.Clone()
				part := partials[w]
				if part == nil {
					part = make([]float64, cols)
					partials[w] = part
				}
				for i := lo; i < hi; i++ {
					if pollStop(stop, i-lo) {
						break
					}
					op.Chunk.Col(ctx, md, i*cols, part, cols)
				}
			})
			out := ec.NewDense(1, cols)
			od := out.Dense()
			for _, part := range partials {
				if part == nil {
					continue
				}
				for j := 0; j < cols; j++ {
					od[j] += part[j]
				}
			}
			return out
		}
		nw, _ := ec.Par.Chunks(rows, 64)
		partials := make([][]float64, nw)
		ec.Par.ForIndexed(rows, 64, func(w, lo, hi int) {
			ctx := proto.Clone()
			scratch := newRowScratch(ec, main)
			defer releaseRowScratch(ec, scratch)
			// Per-worker state is lazily initialized and accumulated: a
			// worker id may be handed several chunks by the pool.
			part := partials[w]
			if part == nil {
				part = make([]float64, cols)
				for j := range part {
					part[j] = aggInit(p.AggOp)
				}
				partials[w] = part
			}
			for i := lo; i < hi; i++ {
				if pollStop(stop, i-lo) {
					break
				}
				if sparseIter {
					vals, cix := main.Sparse().Row(i)
					for k := range cix {
						j := cix[k]
						part[j] = aggStep(p.AggOp, part[j], fn(ctx, vals[k], i, j))
					}
				} else {
					row, off := denseRowView(main, i, scratch)
					for j := 0; j < cols; j++ {
						part[j] = aggStep(p.AggOp, part[j], fn(ctx, row[off+j], i, j))
					}
				}
			}
		})
		out := ec.NewDense(1, cols)
		od := out.Dense()
		for j := 0; j < cols; j++ {
			od[j] = aggInit(p.AggOp)
		}
		for _, part := range partials {
			if part == nil {
				continue
			}
			for j := 0; j < cols; j++ {
				od[j] = aggMerge(p.AggOp, od[j], part[j])
			}
		}
		return out

	default: // CellFullAgg
		if chunkUsable(op.Chunk, main, sides) && op.Chunk.Kind == cplan.ChunkAgg {
			// Closed-form full aggregate: per-worker scalar partials from the
			// chunk program (sum-style by construction, so they add).
			md := main.Dense()
			total := rows * cols
			nc := (total + cplan.ChunkLen - 1) / cplan.ChunkLen
			nwc, _ := ec.Par.Chunks(nc, 8)
			parts := make([]float64, nwc)
			ec.Par.ForIndexed(nc, 8, func(w, clo, chi int) {
				ctx := proto.Clone()
				var acc float64
				for ci := clo; ci < chi; ci++ {
					if stop != nil && stop() {
						break
					}
					lo := ci * cplan.ChunkLen
					n := cplan.ChunkLen
					if lo+n > total {
						n = total - lo
					}
					acc += op.Chunk.Agg(ctx, md, lo, n)
				}
				parts[w] += acc
			})
			var acc float64
			for _, v := range parts {
				acc += v
			}
			return matrix.NewScalar(acc)
		}
		nw, _ := ec.Par.Chunks(rows, 64)
		partials := make([]float64, nw)
		for i := range partials {
			partials[i] = aggInit(p.AggOp)
		}
		sum := aggIsSum(p.AggOp) && p.AggOp != matrix.AggSumSq
		if sum && op.VecProg.ChunkCompatible(main, sides) {
			md := main.Dense()
			total := rows * cols
			nc := (total + cplan.ChunkLen - 1) / cplan.ChunkLen
			nw2, _ := ec.Par.Chunks(nc, 8)
			part2 := make([]float64, nw2)
			ec.Par.ForIndexed(nc, 8, func(w, clo, chi int) {
				ctx := proto.Clone()
				buf := op.VecProg.GetBuf()
				defer op.VecProg.PutBuf(buf)
				var acc float64
				for ci := clo; ci < chi; ci++ {
					if stop != nil && stop() {
						break
					}
					lo := ci * cplan.ChunkLen
					n := cplan.ChunkLen
					if lo+n > total {
						n = total - lo
					}
					res, ro := op.VecProg.Exec(ctx, buf, md, lo, n)
					acc += cplan.SumChunk(res, ro, n)
				}
				part2[w] += acc
			})
			var acc float64
			for _, v := range part2 {
				acc += v
			}
			return matrix.NewScalar(acc)
		}
		ec.Par.ForIndexed(rows, 64, func(w, lo, hi int) {
			ctx := proto.Clone()
			scratch := newRowScratch(ec, main)
			defer releaseRowScratch(ec, scratch)
			acc := partials[w] // resume this worker's accumulator
			for i := lo; i < hi; i++ {
				if pollStop(stop, i-lo) {
					break
				}
				switch {
				case sparseIter:
					vals, cix := main.Sparse().Row(i)
					if sum {
						for k := range cix {
							acc += fn(ctx, vals[k], i, cix[k])
						}
					} else {
						for k := range cix {
							acc = aggStep(p.AggOp, acc, fn(ctx, vals[k], i, cix[k]))
						}
					}
				case sum:
					row, off := denseRowView(main, i, scratch)
					for j := 0; j < cols; j++ {
						acc += fn(ctx, row[off+j], i, j)
					}
				default:
					row, off := denseRowView(main, i, scratch)
					for j := 0; j < cols; j++ {
						acc = aggStep(p.AggOp, acc, fn(ctx, row[off+j], i, j))
					}
				}
			}
			partials[w] = acc
		})
		acc := aggInit(p.AggOp)
		for _, v := range partials {
			acc = aggMerge(p.AggOp, acc, v)
		}
		return matrix.NewScalar(acc)
	}
}

// ExecMAgg runs a compiled multi-aggregate operator, producing a 1×k row
// of aggregate values in one pass over the shared main input.
func ExecMAgg(op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix) *matrix.Matrix {
	return execMAgg(matrix.Ctx{}, op, main, sides, nil)
}

func execMAgg(ec matrix.Ctx, op *cplan.Operator, main *matrix.Matrix, sides []*matrix.Matrix, stop StopFn) *matrix.Matrix {
	p := op.Plan
	k := len(op.MAggFns)
	proto := cplan.NewCtx(sides)
	rows, cols := main.Rows, main.Cols
	sparseIter := p.SparseSafe && main.IsSparse()
	// Specialized multi-aggregate: when every root carries a usable chunk
	// program, each chunk of X is reduced by the closed-form bodies while
	// cache-resident. Mixed chunk/vec dispatch per root is the Horizontal
	// skeleton's job; here a single non-matching root falls back whole.
	chunkOK := !sparseIter && k > 0
	for q := 0; q < k && chunkOK; q++ {
		chunkOK = chunkUsable(op.MAggChunks[q], main, sides) && op.MAggChunks[q].Kind == cplan.ChunkAgg
	}
	if chunkOK {
		md := main.Dense()
		total := rows * cols
		nc := (total + cplan.ChunkLen - 1) / cplan.ChunkLen
		nw, _ := ec.Par.Chunks(nc, 8)
		partials := make([][]float64, nw)
		ec.Par.ForIndexed(nc, 8, func(w, clo, chi int) {
			ctx := proto.Clone()
			part := partials[w]
			if part == nil {
				part = make([]float64, k)
				partials[w] = part
			}
			for ci := clo; ci < chi; ci++ {
				if stop != nil && stop() {
					break
				}
				lo := ci * cplan.ChunkLen
				n := cplan.ChunkLen
				if lo+n > total {
					n = total - lo
				}
				for q := 0; q < k; q++ {
					part[q] += op.MAggChunks[q].Agg(ctx, md, lo, n)
				}
			}
		})
		out := ec.NewDense(1, k)
		od := out.Dense()
		for _, part := range partials {
			if part == nil {
				continue
			}
			for q := 0; q < k; q++ {
				od[q] += part[q]
			}
		}
		return out
	}
	// Vectorized multi-aggregate: all programs chunk over the shared main
	// input, so X is read once per chunk while it is cache-resident.
	vecOK := !sparseIter
	for q := 0; q < k && vecOK; q++ {
		vecOK = op.MAggVecs[q].ChunkCompatible(main, sides) &&
			(p.AggOps[q] == matrix.AggSum || p.AggOps[q] == matrix.AggSumSq)
	}
	if vecOK && k > 0 {
		md := main.Dense()
		total := rows * cols
		nc := (total + cplan.ChunkLen - 1) / cplan.ChunkLen
		nw, _ := ec.Par.Chunks(nc, 8)
		partials := make([][]float64, nw)
		ec.Par.ForIndexed(nc, 8, func(w, clo, chi int) {
			ctx := proto.Clone()
			bufs := make([]*cplan.CellVecBuf, k)
			for q := range bufs {
				bufs[q] = op.MAggVecs[q].GetBuf()
				defer op.MAggVecs[q].PutBuf(bufs[q])
			}
			part := partials[w] // lazily initialized, accumulated across chunks
			if part == nil {
				part = make([]float64, k)
				partials[w] = part
			}
			for ci := clo; ci < chi; ci++ {
				if stop != nil && stop() {
					break
				}
				lo := ci * cplan.ChunkLen
				n := cplan.ChunkLen
				if lo+n > total {
					n = total - lo
				}
				for q := 0; q < k; q++ {
					res, ro := op.MAggVecs[q].Exec(ctx, bufs[q], md, lo, n)
					if p.AggOps[q] == matrix.AggSumSq {
						for t := 0; t < n; t++ {
							part[q] += res[ro+t] * res[ro+t]
						}
					} else {
						part[q] += cplan.SumChunk(res, ro, n)
					}
				}
			}
		})
		out := ec.NewDense(1, k)
		od := out.Dense()
		for _, part := range partials {
			if part != nil {
				for q := 0; q < k; q++ {
					od[q] += part[q]
				}
			}
		}
		return out
	}
	nw, _ := ec.Par.Chunks(rows, 64)
	partials := make([][]float64, nw)
	ec.Par.ForIndexed(rows, 64, func(w, lo, hi int) {
		ctx := proto.Clone()
		scratch := newRowScratch(ec, main)
		defer releaseRowScratch(ec, scratch)
		part := partials[w] // lazily initialized, accumulated across chunks
		if part == nil {
			part = make([]float64, k)
			for q := 0; q < k; q++ {
				part[q] = aggInit(p.AggOps[q])
			}
			partials[w] = part
		}
		for i := lo; i < hi; i++ {
			if pollStop(stop, i-lo) {
				break
			}
			if sparseIter {
				vals, cix := main.Sparse().Row(i)
				for kk := range cix {
					for q := 0; q < k; q++ {
						part[q] = aggStep(p.AggOps[q], part[q], op.MAggFns[q](ctx, vals[kk], i, cix[kk]))
					}
				}
			} else {
				row, off := denseRowView(main, i, scratch)
				for j := 0; j < cols; j++ {
					for q := 0; q < k; q++ {
						part[q] = aggStep(p.AggOps[q], part[q], op.MAggFns[q](ctx, row[off+j], i, j))
					}
				}
			}
		}
	})
	out := ec.NewDense(1, k)
	od := out.Dense()
	for q := 0; q < k; q++ {
		od[q] = aggInit(p.AggOps[q])
	}
	for _, part := range partials {
		if part == nil {
			continue
		}
		for q := 0; q < k; q++ {
			od[q] = aggMerge(p.AggOps[q], od[q], part[q])
		}
	}
	return out
}

// ChunkDispatched reports whether an invocation of the fused operator over
// these inputs runs (at least one root) on a specialized chunk program. It
// mirrors the skeleton dispatch decisions exactly; the executor uses it to
// attribute spoof.chunk.hit/miss runtime counters without instrumenting
// the hot loops.
func ChunkDispatched(op *cplan.Operator, ins []*matrix.Matrix) bool {
	if len(ins) == 0 {
		return false
	}
	main, sides := ins[0], ins[1:]
	p := op.Plan
	switch p.Type {
	case cplan.TemplateCell:
		return chunkUsable(op.Chunk, main, sides)
	case cplan.TemplateMAgg:
		if p.SparseSafe && main.IsSparse() {
			return false
		}
		for _, c := range op.MAggChunks {
			if !chunkUsable(c, main, sides) {
				return false // execMAgg dispatches all-or-nothing
			}
		}
		return len(op.MAggChunks) > 0
	case cplan.TemplateHorizontal:
		if horizontalSparseIter(p, main) {
			return false
		}
		if op.HFused != nil && !main.IsSparse() {
			return true // whole-group fused body dispatches
		}
		for _, c := range op.MAggChunks {
			if chunkUsable(c, main, sides) {
				return true // per-root dispatch: any root counts
			}
		}
		return false
	case cplan.TemplateRow:
		return rowChunkApplicable(op, main, sides)
	}
	return false
}

// workCellwise measures the data-touch work of one Cell invocation: the
// cells the skeleton visits (stored entries under sparse-safe non-zero
// iteration, all cells otherwise) times the covered operations evaluated
// per cell. Mirrors execCellwise's iteration decision; feeds the
// cost-audit ledger's "actual FLOPs".
func workCellwise(op *cplan.Operator, main *matrix.Matrix) float64 {
	p := op.Plan
	visited := float64(main.Rows) * float64(main.Cols)
	if p.SparseSafe && main.IsSparse() && (p.Cell == cplan.CellNoAgg || aggIsSum(p.AggOp)) {
		visited = storedCells(main)
	}
	return visited * float64(p.NumNodes())
}

// workMAgg is workCellwise for the multi-aggregate skeleton: one pass over
// the shared main input evaluating every aggregate's expression per cell.
func workMAgg(op *cplan.Operator, main *matrix.Matrix) float64 {
	p := op.Plan
	visited := float64(main.Rows) * float64(main.Cols)
	if p.SparseSafe && main.IsSparse() {
		visited = storedCells(main)
	}
	return visited * float64(p.NumNodes())
}

func aggIsSum(op matrix.AggOp) bool {
	return op == matrix.AggSum || op == matrix.AggSumSq
}

func aggInit(op matrix.AggOp) float64 {
	switch op {
	case matrix.AggMin:
		return math.Inf(1)
	case matrix.AggMax:
		return math.Inf(-1)
	}
	return 0
}

func aggStep(op matrix.AggOp, acc, v float64) float64 {
	switch op {
	case matrix.AggMin:
		return math.Min(acc, v)
	case matrix.AggMax:
		return math.Max(acc, v)
	case matrix.AggSumSq:
		return acc + v*v
	}
	return acc + v
}

// aggMerge folds one worker's partial into the final accumulator. Unlike
// aggStep, the partial is already aggregated, so sum-of-squares partials
// add — squaring again would be wrong.
func aggMerge(op matrix.AggOp, acc, partial float64) float64 {
	switch op {
	case matrix.AggMin, matrix.AggMax:
		return aggStep(op, acc, partial)
	}
	return acc + partial
}

// newRowScratch returns a densification scratch row for sparse main inputs
// (nil for dense ones), drawn from the matrix buffer pool. Callers release
// it with releaseRowScratch when the worker closure finishes.
func newRowScratch(ec matrix.Ctx, m *matrix.Matrix) []float64 {
	if m.IsSparse() {
		return ec.GetBuf(m.Cols)
	}
	return nil
}

func releaseRowScratch(ec matrix.Ctx, s []float64) {
	if s != nil {
		ec.PutBuf(s)
	}
}

func denseRowView(m *matrix.Matrix, i int, scratch []float64) ([]float64, int) {
	if !m.IsSparse() {
		return m.Dense(), i * m.Cols
	}
	for j := range scratch {
		scratch[j] = 0
	}
	vals, cix := m.Sparse().Row(i)
	for k, j := range cix {
		scratch[j] = vals[k]
	}
	return scratch, 0
}
