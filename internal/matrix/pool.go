package matrix

import (
	"sync"
	"sync/atomic"
)

// A BufPool is a size-keyed free list of float64 backing slices. NewDense
// draws from it and the runtime executor returns dead intermediates'
// storage to it (lineage-aware reuse: iterative workloads allocate the
// same handful of shapes over and over, so exact-size reuse hits almost
// always after the first iteration). Scratch buffers of the parallel
// kernels (TSMM partial triangles, sparse accumulators, row densification
// scratch) cycle through the same pool.
//
// Unlike sync.Pool the free list is deterministic — nothing is dropped on
// GC — so allocation-reduction benchmarks and tests are stable; retention
// is instead bounded by poolMaxPerSize slices per size and the pool's byte
// cap.
//
// Allocation is instance-scoped: each engine owns a BufPool with its own
// byte budget and live-bytes gauge, so co-hosted engines neither share
// free lists nor see each other's memory pressure. A nil *BufPool is valid
// and behaves as the process-wide DefaultPool. Pools are safe for
// concurrent use.
const (
	// poolMinFloats: slices smaller than this are cheaper to allocate than
	// to recycle (they also tend to be long-lived scalars and tiny vectors).
	poolMinFloats = 64

	// poolMaxPerSize bounds the free slices retained per exact size.
	poolMaxPerSize = 8

	// DefaultPoolCapBytes bounds the total bytes parked in a pool by
	// default; surplus returned buffers are dropped for the GC to take.
	DefaultPoolCapBytes = 512 << 20
)

// BufPool is an independent buffer-recycling domain; see the package
// comment above. Construct with NewBufPool.
type BufPool struct {
	mu       sync.Mutex
	free     map[int][][]float64
	bytes    int64 // bytes currently parked
	capBytes int64 // retention bound for parked bytes
	enabled  atomic.Bool

	// live tracks pool-eligible bytes handed out and not yet returned —
	// the engine's admission-control gauge. Buffers that never come back
	// (user-held results) pin the gauge high until their matrices are
	// released, which is exactly the pressure signal serving wants.
	live atomic.Int64

	gets, hits, puts, discards atomic.Int64
	bytesRecycled              atomic.Int64 // bytes served from the free list
}

// DefaultPool is the process-wide buffer pool backing the package-level
// PoolGet/PoolPut helpers, any nil *BufPool receiver, and matrices
// allocated outside an engine.
var DefaultPool = NewBufPool(DefaultPoolCapBytes)

// NewBufPool returns an enabled pool retaining at most capBytes of parked
// buffers (capBytes <= 0 means DefaultPoolCapBytes).
func NewBufPool(capBytes int64) *BufPool {
	if capBytes <= 0 {
		capBytes = DefaultPoolCapBytes
	}
	p := &BufPool{free: map[int][][]float64{}, capBytes: capBytes}
	p.enabled.Store(true)
	return p
}

func (p *BufPool) orDefault() *BufPool {
	if p == nil {
		return DefaultPool
	}
	return p
}

// Enabled reports whether allocations draw from the pool.
func (p *BufPool) Enabled() bool { return p.orDefault().enabled.Load() }

// SetEnabled toggles the pool (benchmarking and debugging) and returns the
// previous setting. Disabling also drops all parked buffers.
func (p *BufPool) SetEnabled(on bool) bool {
	p = p.orDefault()
	old := p.enabled.Swap(on)
	if !on {
		p.mu.Lock()
		p.free = map[int][][]float64{}
		p.bytes = 0
		p.mu.Unlock()
	}
	return old
}

// Get returns a zeroed slice of exactly n float64s, recycled from the free
// list when a same-sized buffer is parked there.
func (p *BufPool) Get(n int) []float64 {
	p = p.orDefault()
	if n < poolMinFloats || !p.enabled.Load() {
		return make([]float64, n)
	}
	p.gets.Add(1)
	p.live.Add(int64(n) * 8)
	p.mu.Lock()
	list := p.free[n]
	if len(list) == 0 {
		p.mu.Unlock()
		return make([]float64, n)
	}
	s := list[len(list)-1]
	p.free[n] = list[:len(list)-1]
	p.bytes -= int64(n) * 8
	p.mu.Unlock()
	p.hits.Add(1)
	p.bytesRecycled.Add(int64(n) * 8)
	for i := range s {
		s[i] = 0
	}
	return s
}

// GetUninit is Get without the zeroing pass: recycled buffers keep their
// previous contents. Only for callers that overwrite every element before
// any read — for large outputs the elided zeroing is a full extra write
// pass over the buffer.
func (p *BufPool) GetUninit(n int) []float64 {
	p = p.orDefault()
	if n < poolMinFloats || !p.enabled.Load() {
		return make([]float64, n)
	}
	p.gets.Add(1)
	p.live.Add(int64(n) * 8)
	p.mu.Lock()
	list := p.free[n]
	if len(list) == 0 {
		p.mu.Unlock()
		return make([]float64, n)
	}
	s := list[len(list)-1]
	p.free[n] = list[:len(list)-1]
	p.bytes -= int64(n) * 8
	p.mu.Unlock()
	p.hits.Add(1)
	p.bytesRecycled.Add(int64(n) * 8)
	return s
}

// Put parks a slice for reuse. The buffer may be dirty (Get zeroes on the
// way out); the caller must not use it afterwards.
func (p *BufPool) Put(s []float64) {
	p = p.orDefault()
	n := len(s)
	if n < poolMinFloats || !p.enabled.Load() {
		return
	}
	p.puts.Add(1)
	p.live.Add(-int64(n) * 8)
	p.mu.Lock()
	if len(p.free[n]) >= poolMaxPerSize || p.bytes+int64(n)*8 > p.capBytes {
		p.mu.Unlock()
		p.discards.Add(1)
		return
	}
	p.free[n] = append(p.free[n], s)
	p.bytes += int64(n) * 8
	p.mu.Unlock()
}

// LiveBytes reports pool-eligible bytes handed out and not yet returned —
// a gauge of outstanding matrix memory drawn through this pool. It can go
// momentarily negative when buffers allocated while the pool was disabled
// are later returned; callers should clamp at zero.
func (p *BufPool) LiveBytes() int64 { return p.orDefault().live.Load() }

// CapBytes reports the pool's parked-byte retention bound.
func (p *BufPool) CapBytes() int64 { return p.orDefault().capBytes }

// NewDense returns an all-zero dense rows×cols matrix whose storage is
// drawn from this pool; Release returns the storage here.
func (p *BufPool) NewDense(rows, cols int) *Matrix {
	p = p.orDefault()
	checkDims(rows, cols)
	return &Matrix{Rows: rows, Cols: cols, dense: p.Get(rows * cols), pool: p}
}

// NewDenseUninit is NewDense without the zeroing pass: cell values of a
// recycled buffer are arbitrary. Only for producers that overwrite every
// cell before the matrix escapes (full-write skeleton outputs).
func (p *BufPool) NewDenseUninit(rows, cols int) *Matrix {
	p = p.orDefault()
	checkDims(rows, cols)
	return &Matrix{Rows: rows, Cols: cols, dense: p.GetUninit(rows * cols), pool: p}
}

// PoolUsage is a snapshot of a buffer pool's counters.
type PoolUsage struct {
	Gets          int64 // pool-eligible allocation requests
	Hits          int64 // requests served from the free list
	Misses        int64 // requests that fell through to make()
	Puts          int64 // buffers returned to the pool
	Discards      int64 // returned buffers dropped (per-size or byte cap)
	BytesRecycled int64 // bytes served from the free list
	BytesParked   int64 // bytes currently held by the free list
	BytesLive     int64 // pool-eligible bytes handed out, not yet returned
}

// HitRate returns Hits/Gets (0 when no requests were made).
func (u PoolUsage) HitRate() float64 {
	if u.Gets == 0 {
		return 0
	}
	return float64(u.Hits) / float64(u.Gets)
}

// Stats returns the pool's current counters.
func (p *BufPool) Stats() PoolUsage {
	p = p.orDefault()
	gets := p.gets.Load()
	hits := p.hits.Load()
	p.mu.Lock()
	parked := p.bytes
	p.mu.Unlock()
	return PoolUsage{
		Gets:          gets,
		Hits:          hits,
		Misses:        gets - hits,
		Puts:          p.puts.Load(),
		Discards:      p.discards.Load(),
		BytesRecycled: p.bytesRecycled.Load(),
		BytesParked:   parked,
		BytesLive:     p.live.Load(),
	}
}

// ResetStats zeroes the pool's counters (parked buffers and the live-bytes
// gauge stay).
func (p *BufPool) ResetStats() {
	p = p.orDefault()
	p.gets.Store(0)
	p.hits.Store(0)
	p.puts.Store(0)
	p.discards.Store(0)
	p.bytesRecycled.Store(0)
}

// PoolEnabled reports whether the DefaultPool serves allocations.
func PoolEnabled() bool { return DefaultPool.Enabled() }

// SetPoolEnabled toggles the DefaultPool and returns the previous setting.
func SetPoolEnabled(on bool) bool { return DefaultPool.SetEnabled(on) }

// PoolGet returns a zeroed slice of exactly n float64s from the DefaultPool.
func PoolGet(n int) []float64 { return DefaultPool.Get(n) }

// PoolPut parks a slice in the DefaultPool for reuse.
func PoolPut(s []float64) { DefaultPool.Put(s) }

// PoolStats returns the DefaultPool's counters.
func PoolStats() PoolUsage { return DefaultPool.Stats() }

// ResetPoolStats zeroes the DefaultPool's counters (parked buffers stay).
func ResetPoolStats() { DefaultPool.ResetStats() }

// releaseHooks are invoked on every Release with the matrix being cleared.
// Hooks must be registered at package init time (before any concurrent
// Release) — registration is not synchronized. The compress package uses
// this to drop sidecar state (attached compressed forms) keyed by matrix
// identity when the backing storage is recycled.
var releaseHooks []func(*Matrix)

// OnRelease registers fn to run at the start of every Matrix.Release. Call
// only from package init functions.
func OnRelease(fn func(*Matrix)) { releaseHooks = append(releaseHooks, fn) }

// Release returns the matrix's backing storage to the buffer pool it was
// drawn from and clears the matrix; the caller asserts nothing references
// the matrix (or its storage) anymore. Only dense storage allocated by
// NewDense (or BufPool.NewDense) is recycled — wrapped user slices
// (NewDenseData) and CSR storage are simply dropped. Safe to call on an
// already released matrix.
func (m *Matrix) Release() {
	for _, fn := range releaseHooks {
		fn(m)
	}
	if m.pool != nil && m.dense != nil {
		m.pool.Put(m.dense)
	}
	m.dense, m.sparse, m.pool = nil, nil, nil
}
