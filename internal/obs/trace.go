package obs

import "time"

// Span is one in-flight trace region. Ending a span records its duration
// into the owning Metrics registry (histogram "phase.<name>") and emits an
// EventSpan to the sink, so both the metrics snapshot and a live sink see
// the phase-time breakdown.
type Span struct {
	m     *Metrics
	sink  Sink
	name  string
	start time.Time
}

// StartSpan begins a span. Both m and sink may be nil; a zero-overhead
// span is returned when both are nil.
func StartSpan(m *Metrics, sink Sink, name string) Span {
	if m == nil && sink == nil {
		return Span{}
	}
	return Span{m: m, sink: sink, name: name, start: time.Now()}
}

// End closes the span and returns its duration.
func (sp Span) End() time.Duration {
	if sp.m == nil && sp.sink == nil {
		return 0
	}
	d := time.Since(sp.start)
	if sp.m != nil {
		sp.m.ObserveDuration("phase."+sp.name, d)
	}
	if sp.sink != nil {
		sp.sink.Emit(Event{Kind: EventSpan, Name: sp.name, Dur: d})
	}
	return d
}
