package cplan

import (
	"fmt"
	"strings"

	"sysml/internal/matrix"
)

// Structural fingerprints classify compiled CPlans into a small set of
// canonical shapes so the plan cache can admit a specialized AOT chunk
// program for the hot shapes (the Go stand-in for SystemML's JIT: instead of
// compiling arbitrary bodies to machine code, the common bodies are
// recognized and dispatched to pre-built tight loops; everything else keeps
// the interpreted genexec/vector-program path).
//
// The normal form recognized for cell-bound roots is
//
//	out = A2 · g(A1·x + B1) [· S] + B2
//
// where x is the main input cell, A1/B1/A2/B2 fold from literal constants
// only, g is one of a fixed set of unary shapes (identity, exp, log, sqrt,
// abs, sigmoid, x², relu-style max with a literal clamp), and S is an
// optional flat (main-shaped) side input factor. Scalar side inputs are
// deliberately NOT folded: their value is bound at execution, so folding
// them would specialize on data, not structure.

// gKind is the recognized unary shape of the normal form.
type gKind int

const (
	gNone gKind = iota
	gExp
	gLog
	gSqrt
	gAbs
	gSigmoid
	gPow2
	gRelu // max(affine, GP)
)

var gNames = [...]string{"id", "exp", "log", "sqrt", "abs", "sigmoid", "pow2", "relu"}

// cform is a cell expression in normal form. A constant subtree is carried
// as Const until it combines with an x-dependent form.
type cform struct {
	isConst bool
	c       float64

	a1, b1 float64 // inner affine of the main input
	g      gKind
	gp     float64 // relu clamp
	a2, b2 float64 // outer affine
	had    int     // flat side factor, -1 when absent
}

func xform() cform { return cform{a1: 1, a2: 1, had: -1} }

// affine reports whether the form is a plain A·x+B (no g, no side factor)
// and returns the folded coefficients.
func (f cform) affine() (a, b float64, ok bool) {
	if f.isConst || f.g != gNone || f.had >= 0 {
		return 0, 0, false
	}
	return f.a2 * f.a1, f.a2*f.b1 + f.b2, true
}

// normalizeCell matches a cell-bound CNode tree against the normal form.
func normalizeCell(n *CNode) (cform, bool) {
	switch n.Kind {
	case NodeLit:
		return cform{isConst: true, c: n.Value}, true
	case NodeMain:
		return xform(), true
	case NodeUnary:
		in, ok := normalizeCell(n.Children[0])
		if !ok {
			return cform{}, false
		}
		if in.isConst {
			return cform{isConst: true, c: n.UnOp.Apply(in.c)}, true
		}
		if n.UnOp == matrix.UnNeg {
			in.a2, in.b2 = -in.a2, -in.b2
			return in, true
		}
		a, b, ok := in.affine()
		if !ok {
			return cform{}, false
		}
		var g gKind
		switch n.UnOp {
		case matrix.UnExp:
			g = gExp
		case matrix.UnLog:
			g = gLog
		case matrix.UnSqrt:
			g = gSqrt
		case matrix.UnAbs:
			g = gAbs
		case matrix.UnSigmoid:
			g = gSigmoid
		default:
			return cform{}, false
		}
		return cform{a1: a, b1: b, g: g, a2: 1, had: -1}, true
	case NodeBinary:
		return normalizeBinary(n)
	}
	return cform{}, false
}

func normalizeBinary(n *CNode) (cform, bool) {
	// Hadamard factor: affine(x) · S with S a flat side input.
	if n.BinOp == matrix.BinMul {
		if f, ok := hadamard(n.Children[0], n.Children[1]); ok {
			return f, true
		}
		if f, ok := hadamard(n.Children[1], n.Children[0]); ok {
			return f, true
		}
	}
	l, okL := normalizeCell(n.Children[0])
	r, okR := normalizeCell(n.Children[1])
	if !okL || !okR {
		return cform{}, false
	}
	if l.isConst && r.isConst {
		return cform{isConst: true, c: n.BinOp.Apply(l.c, r.c)}, true
	}
	switch n.BinOp {
	case matrix.BinAdd:
		if l.isConst {
			l, r = r, l
		}
		if r.isConst {
			l.b2 += r.c
			return l, true
		}
		return combineAffine(l, r, 1)
	case matrix.BinSub:
		if r.isConst {
			l.b2 -= r.c
			return l, true
		}
		if l.isConst {
			r.a2, r.b2 = -r.a2, l.c-r.b2
			return r, true
		}
		return combineAffine(l, r, -1)
	case matrix.BinMul:
		if l.isConst {
			l, r = r, l
		}
		if r.isConst {
			l.a2 *= r.c
			l.b2 *= r.c
			return l, true
		}
		// x·x and, generally, equal-affine squares fold to pow2.
		la, lb, okA := l.affine()
		ra, rb, okB := r.affine()
		if okA && okB && la == ra && lb == rb {
			return cform{a1: la, b1: lb, g: gPow2, a2: 1, had: -1}, true
		}
		return cform{}, false
	case matrix.BinDiv:
		if r.isConst && r.c != 0 {
			l.a2 /= r.c
			l.b2 /= r.c
			return l, true
		}
		return cform{}, false
	case matrix.BinPow:
		if r.isConst && r.c == 2 {
			if a, b, ok := l.affine(); ok {
				return cform{a1: a, b1: b, g: gPow2, a2: 1, had: -1}, true
			}
		}
		return cform{}, false
	case matrix.BinMax:
		if l.isConst {
			l, r = r, l
		}
		if r.isConst {
			if a, b, ok := l.affine(); ok {
				return cform{a1: a, b1: b, g: gRelu, gp: r.c, a2: 1, had: -1}, true
			}
		}
		return cform{}, false
	}
	return cform{}, false
}

// combineAffine folds l + sign·r when both sides are plain affine forms
// of the main input: (La·x+Lb) ± (Ra·x+Rb) = (La±Ra)·x + (Lb±Rb).
func combineAffine(l, r cform, sign float64) (cform, bool) {
	la, lb, okL := l.affine()
	ra, rb, okR := r.affine()
	if !okL || !okR {
		return cform{}, false
	}
	return cform{a1: la + sign*ra, b1: lb + sign*rb, a2: 1, had: -1}, true
}

// hadamard matches affine(x) · S where side is a flat cell-access side.
func hadamard(expr, side *CNode) (cform, bool) {
	if side.Kind != NodeSide || side.Access != AccessCell {
		return cform{}, false
	}
	f, ok := normalizeCell(expr)
	if !ok || f.isConst {
		return cform{}, false
	}
	a, b, ok := f.affine()
	if !ok {
		return cform{}, false
	}
	return cform{a1: a, b1: b, a2: 1, had: side.Side}, true
}

// rootFingerprint renders the canonical class + parameter string for one
// cell-bound root in its output context. cell is the root's output kind and
// agg its aggregation function (ignored for CellNoAgg). The second return
// is false when the root does not match any specialized shape.
func rootFingerprint(root *CNode, cell CellType, agg matrix.AggOp) (string, bool) {
	f, ok := normalizeCell(root)
	if !ok || f.isConst {
		return "", false
	}
	switch cell {
	case CellNoAgg:
		return fmt.Sprintf("%s(%s)", mapClass(f), f.params()), true
	case CellFullAgg, CellRowAgg:
		cls, ok := aggClass(f, agg)
		if !ok {
			return "", false
		}
		prefix := "agg"
		if cell == CellRowAgg {
			prefix = "rowagg"
		}
		return fmt.Sprintf("%s.%s(%s)", prefix, cls, f.params()), true
	case CellColAgg:
		if _, _, ok := f.affine(); !ok || agg != matrix.AggSum {
			return "", false
		}
		return fmt.Sprintf("colsums(%s)", f.params()), true
	}
	return "", false
}

func mapClass(f cform) string {
	if f.had >= 0 {
		return "cell.hadamard"
	}
	if f.g == gNone {
		return "cell.axpy"
	}
	return "cell." + gNames[f.g]
}

// aggClass classifies a sum-style aggregation over the normal form. Only
// shapes whose partial sums combine by addition with a per-chunk closed
// form qualify; min/max and exotic bodies fall back.
func aggClass(f cform, agg matrix.AggOp) (string, bool) {
	switch agg {
	case matrix.AggSum:
		switch {
		case f.had >= 0 && f.g == gNone:
			return "dot", true
		case f.g == gNone:
			return "sum", true
		case f.g == gPow2:
			return "sumsq", true
		}
	case matrix.AggSumSq:
		// Σ f² needs f itself affine to stay closed-form.
		if _, _, ok := f.affine(); ok {
			return "sumsq", true
		}
	}
	return "", false
}

func (f cform) params() string {
	var b strings.Builder
	fmt.Fprintf(&b, "a1=%g,b1=%g,a2=%g,b2=%g", f.a1, f.b1, f.a2, f.b2)
	if f.g != gNone {
		fmt.Fprintf(&b, ",g=%s", gNames[f.g])
	}
	if f.g == gRelu {
		fmt.Fprintf(&b, ",gp=%g", f.gp)
	}
	if f.had >= 0 {
		fmt.Fprintf(&b, ",S=%d", f.had)
	}
	return b.String()
}

// Fingerprint returns the canonical structural fingerprint of the plan:
// the template header plus one classified shape per output root. Roots that
// match no specialized shape render as generic:<hash>, so two structurally
// different plans never share a fingerprint (up to plan-hash collisions)
// while equal shapes with equal folded constants do.
func (p *Plan) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", p.Type)
	switch p.Type {
	case TemplateCell:
		fp, ok := rootFingerprint(p.Root, p.Cell, p.AggOp)
		if !ok {
			return p.genericFingerprint()
		}
		fmt.Fprintf(&b, "[%s]:%s", p.Cell, fp)
	case TemplateMAgg:
		fmt.Fprintf(&b, ":")
		for i, r := range p.Roots {
			fp, ok := rootFingerprint(r, CellFullAgg, p.AggOps[i])
			if !ok {
				return p.genericFingerprint()
			}
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(fp)
		}
	case TemplateHorizontal:
		fmt.Fprintf(&b, ":")
		for i, r := range p.Roots {
			fp, ok := rootFingerprint(r, p.HKinds[i], p.AggOps[i])
			if !ok {
				return p.genericFingerprint()
			}
			if i > 0 {
				b.WriteString(";")
			}
			fmt.Fprintf(&b, "%s/%s", p.HKinds[i], fp)
		}
	case TemplateRow:
		cls, side, ok := rowChunkClass(compileRow(p))
		if !ok {
			return p.genericFingerprint()
		}
		fmt.Fprintf(&b, ":%s(S=%d)", cls, side)
	default:
		return p.genericFingerprint()
	}
	return b.String()
}

// genericFingerprint is the fallback identity for plans outside the
// specialized library: unique per plan structure, never chunk-dispatched.
func (p *Plan) genericFingerprint() string {
	return fmt.Sprintf("generic:%016x", p.Hash())
}

// rowChunkClass inspects a compiled row program for the specialized
// whole-row bodies: the fused dot product (out_i = X_i · S_i) and the
// rank-1 update (C += X_i ⊗ S_i of t(X) %*% S).
func rowChunkClass(prog *RowProgram) (class string, side int, ok bool) {
	switch prog.RowT {
	case RowRowAgg:
		// [load side row rix; dot(main, side)]
		if len(prog.Instrs) == 2 &&
			prog.Instrs[0].Op == RLoadSideRow && !prog.Instrs[0].RowZero &&
			prog.Instrs[1].Op == RDot && !prog.ResultVec &&
			prog.Instrs[1].Dst == prog.ResultReg &&
			((prog.Instrs[1].Src1 == 0 && prog.Instrs[1].Src2 == prog.Instrs[0].Dst) ||
				(prog.Instrs[1].Src2 == 0 && prog.Instrs[1].Src1 == prog.Instrs[0].Dst)) {
			return "row.dot", prog.Instrs[0].Side, true
		}
	case RowColAggT:
		// [load side row rix] with the side row as the accumulated result.
		if len(prog.Instrs) == 1 &&
			prog.Instrs[0].Op == RLoadSideRow && !prog.Instrs[0].RowZero &&
			prog.ResultVec && prog.ResultReg == prog.Instrs[0].Dst && prog.LeftReg == 0 {
			return "row.rank1", prog.Instrs[0].Side, true
		}
	}
	return "", 0, false
}
