package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Inc("a")
				m.Add("b", 2)
				m.SetGauge("g", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("a"); got != workers*per {
		t.Fatalf("counter a = %d, want %d", got, workers*per)
	}
	snap := m.Snapshot()
	if got := snap.Counter("b"); got != 2*workers*per {
		t.Fatalf("counter b = %d, want %d", got, 2*workers*per)
	}
	if g := snap.Gauge("g"); g != per-1 {
		t.Fatalf("gauge g = %g, want %d", g, per-1)
	}
	if got := m.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Observe("h", float64(i%10)+1)
			}
		}(w)
	}
	wg.Wait()
	h := m.Snapshot().Hist("h")
	if h.Count != workers*per {
		t.Fatalf("count = %d, want %d", h.Count, workers*per)
	}
	// Sum of 1..10 repeated evenly.
	want := float64(workers*per/10) * 55
	if math.Abs(h.Sum-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum, want)
	}
	if h.Min != 1 || h.Max != 10 {
		t.Fatalf("min/max = %g/%g, want 1/10", h.Min, h.Max)
	}
	if got := h.Mean(); math.Abs(got-5.5) > 1e-9 {
		t.Fatalf("mean = %g, want 5.5", got)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b
	}
	if total != h.Count {
		t.Fatalf("bucket total = %d, count = %d", total, h.Count)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	h := NewMetrics().Hist("empty").Snapshot()
	if h.Count != 0 || h.Min != 0 || h.Max != 0 || h.Mean() != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", h)
	}
}

func TestSpanRecordsPhase(t *testing.T) {
	m := NewMetrics()
	var c Collector
	sp := StartSpan(m, &c, "compile")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatal("span duration not positive")
	}
	h := m.Snapshot().Hist("phase.compile")
	if h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("phase histogram not recorded: %+v", h)
	}
	ev := c.Events()
	if len(ev) != 1 || ev[0].Kind != EventSpan || ev[0].Name != "compile" {
		t.Fatalf("sink events = %+v", ev)
	}
	// Zero-instrument span is a no-op.
	if d := StartSpan(nil, nil, "x").End(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	s.Emit(Event{Kind: EventExplain, Name: "block 1", Text: "# EXPLAIN\n"})
	s.Emit(Event{Kind: EventSpan, Name: "execute", Dur: time.Millisecond})
	if got := buf.String(); got != "# EXPLAIN\n" {
		t.Fatalf("spans must be off by default, got %q", got)
	}
	s.IncludeSpans = true
	s.Emit(Event{Kind: EventSpan, Name: "execute", Dur: time.Millisecond})
	if !strings.Contains(buf.String(), "span execute: 1ms") {
		t.Fatalf("span line missing: %q", buf.String())
	}
}

func TestMultiSink(t *testing.T) {
	var a, b Collector
	MultiSink{&a, nil, &b}.Emit(Event{Kind: EventExplain, Text: "x"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink did not fan out")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Inc("a")
	m.Observe("h", 1)
	m.SetGauge("g", 1)
	if m.Counter("a") != 0 {
		t.Fatal("nil metrics counter")
	}
	s := m.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil metrics snapshot")
	}
}

func TestSnapshotString(t *testing.T) {
	m := NewMetrics()
	m.Inc("exec.ops")
	m.SetGauge("par.workers", 8)
	m.ObserveDuration("phase.execute", 2*time.Millisecond)
	out := m.Snapshot().String()
	for _, want := range []string{"exec.ops 1", "par.workers 8", "phase.execute count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot string missing %q:\n%s", want, out)
		}
	}
}
