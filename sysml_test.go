package sysml

import (
	"bytes"
	"math"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	s := NewSession()
	s.Out = &bytes.Buffer{}
	x := RandMatrix(500, 20, 1, -1, 1, 7)
	s.Bind("X", x)
	s.BindScalar("alpha", 2)
	err := s.Run(`
		s = alpha * sum(X * X)
		w = t(X) %*% (X %*% matrix(1, rows=ncol(X), cols=1))
	`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Scalar("s")
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			want += x.At(i, j) * x.At(i, j)
		}
	}
	if math.Abs(got-2*want) > 1e-7*want {
		t.Fatalf("s = %v, want %v", got, 2*want)
	}
	w, _ := s.Get("w")
	if w.Rows != 20 || w.Cols != 1 {
		t.Fatalf("w dims %dx%d", w.Rows, w.Cols)
	}
	if s.Stats.CPlansConstructed == 0 {
		t.Fatal("expected fused operators under the default config")
	}
}

func TestModesExported(t *testing.T) {
	for _, m := range []Mode{ModeBase, ModeFused, ModeGen, ModeGenFA, ModeGenFNR} {
		s := NewSession(WithMode(m))
		s.Out = &bytes.Buffer{}
		s.Bind("X", RandMatrix(50, 5, 1, 0, 1, 1))
		if err := s.Run(`y = sum(X + 1)`); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestClusterExport(t *testing.T) {
	cl := NewCluster()
	cfg := DefaultConfig()
	cfg.Exec.MemBudgetBytes = 1
	s := NewSession(WithConfig(cfg), WithCluster(cl))
	s.Out = &bytes.Buffer{}
	s.Bind("X", RandMatrix(4000, 20, 1, -1, 1, 3))
	if err := s.Run(`q = X %*% matrix(1, rows=20, cols=1)`); err != nil {
		t.Fatal(err)
	}
	if cl.BytesBroadcast() == 0 {
		t.Fatal("distributed execution recorded no broadcast traffic")
	}
}

func TestScalarHelper(t *testing.T) {
	if Scalar(2.5).Scalar() != 2.5 {
		t.Fatal("Scalar round trip")
	}
	m := NewDenseMatrixData(2, 2, []float64{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Fatal("NewDenseMatrixData layout")
	}
	if NewDenseMatrix(3, 3).At(2, 2) != 0 {
		t.Fatal("NewDenseMatrix not zeroed")
	}
}
