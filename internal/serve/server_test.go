package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, e *Engine, opts ...ServerOption) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", e, opts...)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func postRun(t *testing.T, srv *Server, req *RunRequest) (*http.Response, *RunResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+srv.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, &rr
}

// TestServerRunEndToEnd: inline data in, matrix and scalar outputs back.
func TestServerRunEndToEnd(t *testing.T) {
	srv := startServer(t, NewEngine())
	resp, rr := postRun(t, srv, &RunRequest{
		Tenant: "t1",
		Script: "Y = X %*% X\ns = sum(X)",
		Inputs: map[string]InputSpec{
			"X": {Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}},
		},
		Outputs: []string{"Y", "s"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := []float64{7, 10, 15, 22}
	y := rr.Outputs["Y"]
	if y.Rows != 2 || y.Cols != 2 {
		t.Fatalf("Y is %dx%d", y.Rows, y.Cols)
	}
	for i, v := range want {
		if math.Abs(y.Data[i]-v) > 1e-12 {
			t.Errorf("Y[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
	s := rr.Outputs["s"]
	if s.Rows != 1 || s.Cols != 1 || math.Abs(s.Data[0]-10) > 1e-12 {
		t.Errorf("s = %+v, want scalar 10", s)
	}
}

// TestServerScriptError: script failures surface as 400 with a message.
func TestServerScriptError(t *testing.T) {
	srv := startServer(t, NewEngine())
	resp, _ := postRun(t, srv, &RunRequest{Script: "Y = Z %*% Z"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestServerShedsOverBudget: live pooled bytes over the engine budget turn
// /v1/run away with 429 + Retry-After until memory comes back.
func TestServerShedsOverBudget(t *testing.T) {
	e := NewEngine(WithMemoryBudget(64 << 10))
	srv := startServer(t, e)
	req := &RunRequest{
		Tenant:  "t1",
		Script:  "s = sum(X)",
		Inputs:  map[string]InputSpec{"X": {Rows: 8, Cols: 8, Rand: &RandSpec{Sparsity: 1, Lo: -1, Hi: 1, Seed: 1}}},
		Outputs: []string{"s"},
	}
	// Pin pooled memory past the budget: 16 K floats = 128 KiB > 64 KiB.
	pinned := e.alloc.Get(16 << 10)
	resp, _ := postRun(t, srv, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d under memory pressure, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if e.Shed() == 0 {
		t.Error("shed not counted")
	}
	e.alloc.Put(pinned)
	resp, _ = postRun(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after memory recovered, want 200", resp.StatusCode)
	}
}

// TestServerShedsAtSessionQuota: a tenant at its concurrency quota gets
// 429 after the queue wait, not an oversubscribed session.
func TestServerShedsAtSessionQuota(t *testing.T) {
	e := NewEngine(WithTenantQuota(TenantQuota{MaxSessions: 1}))
	srv := startServer(t, e, WithQueueWait(5*time.Millisecond), WithBatchWindow(0))
	tn := e.Tenant("t1")
	held, err := tn.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := postRun(t, srv, &RunRequest{Tenant: "t1", Script: "x = 1 + 1"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with quota exhausted, want 429", resp.StatusCode)
	}
	tn.Release(held)
	resp, _ = postRun(t, srv, &RunRequest{Tenant: "t1", Script: "x = 1 + 1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after release, want 200", resp.StatusCode)
	}
}

// TestServerMicroBatching: concurrent same-plan requests coalesce behind
// one leader and all complete correctly.
func TestServerMicroBatching(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(30*time.Millisecond))
	const clients = 8
	req := func(seed int64) *RunRequest {
		return &RunRequest{
			Tenant: "t1",
			Script: "s = sum(X * X)",
			Inputs: map[string]InputSpec{
				"X": {Rows: 64, Cols: 16, Rand: &RandSpec{Sparsity: 1, Lo: -1, Hi: 1, Seed: seed}},
			},
			Outputs: []string{"s"},
		}
	}
	var wg sync.WaitGroup
	results := make([]*RunResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, rr := postRun(t, srv, req(int64(i)))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			results[i] = rr
		}(i)
	}
	wg.Wait()
	maxBatchSeen, leaders := 0, 0
	for i, rr := range results {
		if rr == nil {
			continue
		}
		if rr.Outputs["s"].Data[0] <= 0 {
			t.Errorf("client %d: sum(X*X) = %g, want > 0", i, rr.Outputs["s"].Data[0])
		}
		if rr.Batch > maxBatchSeen {
			maxBatchSeen = rr.Batch
		}
		if rr.Leader {
			leaders++
		}
	}
	if maxBatchSeen < 2 {
		t.Errorf("no request rode a batch (max batch %d of %d concurrent)", maxBatchSeen, clients)
	}
	if leaders == clients {
		t.Error("every request led its own batch; coalescing never happened")
	}
	if st := e.Tenant("t1").Stats(); st.Batched == 0 {
		t.Error("tenant batched counter did not move")
	}
}

// TestServerGracefulDrain: Close must let an in-flight request finish
// instead of cutting its connection.
func TestServerGracefulDrain(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(0))
	slow := &RunRequest{
		Tenant: "t1",
		Script: "acc = 0\nfor (i in 1:40) {\n acc = acc + sum(X %*% X)\n}",
		Inputs: map[string]InputSpec{
			"X": {Rows: 200, Cols: 200, Rand: &RandSpec{Sparsity: 1, Lo: -1, Hi: 1, Seed: 4}},
		},
		Outputs: []string{"acc"},
	}
	type outcome struct {
		status int
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		body, _ := json.Marshal(slow)
		resp, err := http.Post("http://"+srv.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		resp.Body.Close()
		done <- outcome{status: resp.StatusCode}
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", o.err)
		}
		if o.status != http.StatusOK {
			t.Fatalf("in-flight request got %d during drain, want 200", o.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

// TestServerTenantsEndpoint: /v1/tenants exposes per-tenant accounting.
func TestServerTenantsEndpoint(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(0))
	for i := 0; i < 3; i++ {
		resp, _ := postRun(t, srv, &RunRequest{Tenant: "alpha", Script: "x = 1 + 1"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/tenants", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["alpha"].Requests != 3 {
		t.Errorf("alpha served %d requests, want 3", stats["alpha"].Requests)
	}
}
