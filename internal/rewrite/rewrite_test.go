package rewrite

import (
	"testing"

	"sysml/internal/hop"
	"sysml/internal/matrix"
)

func TestDoubleTransposeElimination(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 10, 20, -1)
	d.Output("y", d.Transpose(d.Transpose(x)))
	out, st := Apply(d)
	y := out.Outputs["y"]
	if y.Kind != hop.OpData || y.Name != "X" {
		t.Fatalf("t(t(X)) not eliminated: %v", y)
	}
	if st.Simplified == 0 {
		t.Fatal("no simplification recorded")
	}
}

func TestConstantFolding(t *testing.T) {
	d := hop.NewDAG()
	two := d.Lit(2)
	three := d.Lit(3)
	d.Output("c", d.Binary(matrix.BinMul, two, three))
	out, st := Apply(d)
	c := out.Outputs["c"]
	if c.Kind != hop.OpLiteral || c.Value != 6 {
		t.Fatalf("2*3 not folded: %v", c)
	}
	if st.FoldedConstants != 1 {
		t.Fatalf("folded count = %d", st.FoldedConstants)
	}
	// Unary fold.
	d2 := hop.NewDAG()
	d2.Output("c", d2.Unary(matrix.UnNeg, d2.Lit(5)))
	out2, _ := Apply(d2)
	if out2.Outputs["c"].Value != -5 {
		t.Fatal("neg(5) not folded")
	}
}

func TestIdentitySimplifications(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 10, 10, -1)
	d.Output("a", d.Binary(matrix.BinMul, x, d.Lit(1)))
	d.Output("b", d.Binary(matrix.BinAdd, d.Lit(0), x))
	d.Output("c", d.Binary(matrix.BinSub, x, d.Lit(0)))
	d.Output("d", d.Binary(matrix.BinDiv, x, d.Lit(1)))
	d.Output("e", d.Binary(matrix.BinPow, x, d.Lit(1)))
	out, _ := Apply(d)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if got := out.Outputs[name]; got.Kind != hop.OpData {
			t.Fatalf("%s not simplified to X: %v", name, got)
		}
	}
}

func TestZeroAndNegRewrites(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 10, 10, -1)
	d.Output("z", d.Binary(matrix.BinMul, x, d.Lit(0)))
	d.Output("n", d.Binary(matrix.BinSub, d.Lit(0), x))
	out, _ := Apply(d)
	if z := out.Outputs["z"]; z.Kind != hop.OpDataGen || z.Nnz != 0 {
		t.Fatalf("X*0 not rewritten to empty: %v", z)
	}
	if n := out.Outputs["n"]; n.Kind != hop.OpUnary || n.UnOp != matrix.UnNeg {
		t.Fatalf("0-X not rewritten to neg: %v", n)
	}
}

func TestCSE(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 10, 10, -1)
	y := d.Read("Y", 10, 10, -1)
	m1 := d.Binary(matrix.BinMul, x, y)
	m2 := d.Binary(matrix.BinMul, x, y) // identical subexpression
	d.Output("s1", d.Sum(m1))
	d.Output("s2", d.RowSums(m2))
	out, st := Apply(d)
	if st.CSEMerged == 0 {
		t.Fatal("CSE not applied")
	}
	s1 := out.Outputs["s1"]
	s2 := out.Outputs["s2"]
	if s1.Inputs[0] != s2.Inputs[0] {
		t.Fatal("shared subexpression not merged")
	}
	if s1.Inputs[0].NumConsumers() != 2 {
		t.Fatalf("merged node consumers = %d", s1.Inputs[0].NumConsumers())
	}
}

func TestSumTransposeRewrite(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 10, 20, -1)
	d.Output("s", d.Sum(d.Transpose(x)))
	out, _ := Apply(d)
	s := out.Outputs["s"]
	if s.Inputs[0].Kind != hop.OpData {
		t.Fatalf("sum(t(X)) not simplified: %v", s.Inputs[0])
	}
}

func TestFullRangeIndexElimination(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 10, 20, -1)
	d.Output("y", d.Index(x, 0, 10, 0, 20))
	d.Output("z", d.Index(x, 0, 10, 0, 5))
	out, _ := Apply(d)
	if out.Outputs["y"].Kind != hop.OpData {
		t.Fatal("full-range index not eliminated")
	}
	if out.Outputs["z"].Kind != hop.OpIndex {
		t.Fatal("partial index wrongly eliminated")
	}
}

func TestRewritePreservesStructure(t *testing.T) {
	// MLogreg inner expression shape survives a rewrite round trip.
	d := hop.NewDAG()
	x := d.Read("X", 100, 10, -1)
	v := d.Read("v", 10, 3, -1)
	p := d.Read("P", 100, 3, -1)
	q := d.Binary(matrix.BinMul, p, d.MatMult(x, v))
	h := d.MatMult(d.Transpose(x), d.Binary(matrix.BinSub, q, d.Binary(matrix.BinMul, p, d.RowSums(q))))
	d.Output("H", h)
	out, _ := Apply(d)
	got := out.Outputs["H"]
	if got.Kind != hop.OpMatMult || got.Rows != 10 || got.Cols != 3 {
		t.Fatalf("structure damaged: %v %dx%d", got, got.Rows, got.Cols)
	}
	// The two references to Q must resolve to one node (hash-consing).
	sub := got.Inputs[1]
	qNode := sub.Inputs[0]
	if qNode.NumConsumers() != 2 {
		t.Fatalf("Q consumers = %d, want 2", qNode.NumConsumers())
	}
}
