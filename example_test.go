package sysml_test

import (
	"fmt"

	"sysml"
)

// ExampleSession_Run compiles and executes a script; every statement block
// runs through the fusion optimizer.
func ExampleSession_Run() {
	s := sysml.NewSession(sysml.DefaultConfig())
	s.Bind("X", sysml.NewDenseMatrixData(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	if err := s.Run(`
		s = sum(X * X)           # fused cell aggregate
		r = rowSums(X)
	`); err != nil {
		panic(err)
	}
	v, _ := s.Scalar("s")
	r, _ := s.Get("r")
	fmt.Printf("sum(X*X) = %g\n", v)
	fmt.Printf("rowSums = [%g %g]\n", r.At(0, 0), r.At(1, 0))
	// Output:
	// sum(X*X) = 91
	// rowSums = [6 15]
}

// ExampleConfig demonstrates selecting a plan-selection policy.
func ExampleConfig() {
	cfg := sysml.DefaultConfig()
	cfg.Mode = sysml.ModeGenFNR // fuse-no-redundancy heuristic
	s := sysml.NewSession(cfg)
	s.Bind("X", sysml.NewDenseMatrixData(2, 2, []float64{1, 2, 3, 4}))
	if err := s.Run(`y = sum(X + 1)`); err != nil {
		panic(err)
	}
	y, _ := s.Scalar("y")
	fmt.Println(y)
	// Output:
	// 14
}
