package matrix

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sysml/internal/vector"
)

// Matrix-multiplication kernel dispatch thresholds. Representation choice
// (dense vs. CSR input kernels) follows the inputs; only the sparse×sparse
// product chooses its own output format, via spspOutputSparseThreshold.
const (
	// mmNarrowCols: below this output width, inline scalar accumulation
	// beats per-row vector-primitive calls (call overhead dominates).
	mmNarrowCols = 8

	// mmRowGrain is the minimum number of output rows per parallel chunk
	// for the dense and sparse-input kernels.
	mmRowGrain = 8

	// mmKTile and mmNTile are the cache-blocking tile sizes of the dense
	// kernel: the inner loops touch a kTile×nTile panel of B (128×1024
	// doubles = 1 MB, sized for L2) while streaming rows of A and C.
	mmKTile = 128
	mmNTile = 1024

	// spspOutputSparseThreshold: a sparse×sparse product whose estimated
	// output sparsity is below this builds a CSR result directly (avoiding
	// a dense rows×cols allocation); denser products accumulate into a
	// dense output. Deliberately below SparsityThreshold so borderline
	// products stay dense (matrix products densify quickly).
	spspOutputSparseThreshold = 0.1

	// spspOutputSparseMinCols: tiny outputs always stay dense — CSR
	// overhead only pays off with enough columns per row.
	spspOutputSparseMinCols = 64
)

// MatMult computes C = A %*% B on the default execution context.
func MatMult(a, b *Matrix) *Matrix { return Ctx{}.MatMult(a, b) }

// MatMult computes C = A %*% B, dispatching on representations. Dense×dense
// runs a cache-blocked (k- and n-tiled) rank-4 ikj loop parallelized over
// row blocks; sparse left inputs iterate nonzeros per row. The output is
// dense except for very sparse sparse×sparse products, which build CSR
// directly (see spspOutputSparseThreshold).
func (ctx Ctx) MatMult(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: matmult shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if a.IsSparse() && b.IsSparse() {
		return ctx.matMultSparseSparse(a, b)
	}
	out := ctx.NewDense(a.Rows, b.Cols)
	switch {
	case !a.IsSparse() && !b.IsSparse():
		ctx.matMultDenseDense(a, b, out)
	case a.IsSparse() && !b.IsSparse():
		ctx.matMultSparseDense(a, b, out)
	default:
		ctx.matMultDenseSparse(a, b, out)
	}
	return out
}

func (ctx Ctx) matMultDenseDense(a, b, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	ad, bd, cd := a.dense, b.dense, c.dense
	if n == 1 {
		// Matrix-vector: per-row dot products.
		ctx.Par.For(m, 32, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				cd[i] = vector.DotProduct(ad, bd, i*k, 0, k)
			}
		})
		return
	}
	if n < mmNarrowCols {
		// Narrow outputs: inline accumulation beats per-row primitive calls.
		ctx.Par.For(m, mmRowGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ci := i * n
				ai := i * k
				for kk := 0; kk < k; kk++ {
					av := ad[ai+kk]
					if av == 0 {
						continue
					}
					bo := kk * n
					for j := 0; j < n; j++ {
						cd[ci+j] += av * bd[bo+j]
					}
				}
			}
		})
		return
	}
	// Cache-blocked ikj: tile over k (mmKTile) and n (mmNTile) so the inner
	// loops reuse an L2-resident panel of B across the rows of the chunk,
	// and unroll k by 4 (MultAdd4) so each C element is loaded and stored
	// once per four multiplies.
	ctx.Par.For(m, mmRowGrain, func(lo, hi int) {
		for jj := 0; jj < n; jj += mmNTile {
			jn := n - jj
			if jn > mmNTile {
				jn = mmNTile
			}
			for kk := 0; kk < k; kk += mmKTile {
				kmax := kk + mmKTile
				if kmax > k {
					kmax = k
				}
				for i := lo; i < hi; i++ {
					ai := i * k
					ci := i*n + jj
					k4 := kk
					for ; k4+4 <= kmax; k4 += 4 {
						vector.MultAdd4(bd,
							ad[ai+k4], ad[ai+k4+1], ad[ai+k4+2], ad[ai+k4+3],
							cd, k4*n+jj, (k4+1)*n+jj, (k4+2)*n+jj, (k4+3)*n+jj,
							ci, jn)
					}
					for ; k4 < kmax; k4++ {
						vector.MultAdd(bd, ad[ai+k4], cd, k4*n+jj, ci, jn)
					}
				}
			}
		}
	})
}

func (ctx Ctx) matMultSparseDense(a, b, c *Matrix) {
	n := b.Cols
	as, bd, cd := a.sparse, b.dense, c.dense
	if n == 1 {
		ctx.Par.For(a.Rows, 32, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				vals, cols := as.Row(i)
				cd[i] = vector.DotProductSparse(vals, cols, bd, 0)
			}
		})
		return
	}
	ctx.Par.For(a.Rows, mmRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals, cols := as.Row(i)
			ci := i * n
			for kk, j := range cols {
				vector.MultAdd(bd, vals[kk], cd, j*n, ci, n)
			}
		}
	})
}

func (ctx Ctx) matMultDenseSparse(a, b, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	ad, bs, cd := a.dense, b.sparse, c.dense
	ctx.Par.For(m, mmRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai, ci := i*k, i*n
			for kk := 0; kk < k; kk++ {
				av := ad[ai+kk]
				if av == 0 {
					continue
				}
				vals, cols := bs.Row(kk)
				for p, j := range cols {
					cd[ci+j] += av * vals[p]
				}
			}
		}
	})
}

// estProductSparsity estimates the output sparsity of A %*% B under the
// standard independence assumption (Boehm et al., metadata propagation):
// P[c_ij != 0] = 1 - (1 - spA*spB)^k.
func estProductSparsity(a, b *Matrix) float64 {
	spA := float64(a.sparse.Nnz()) / (float64(a.Rows) * float64(a.Cols))
	spB := float64(b.sparse.Nnz()) / (float64(b.Rows) * float64(b.Cols))
	return 1 - math.Pow(1-spA*spB, float64(a.Cols))
}

func (ctx Ctx) matMultSparseSparse(a, b *Matrix) *Matrix {
	n := b.Cols
	if n >= spspOutputSparseMinCols && estProductSparsity(a, b) < spspOutputSparseThreshold {
		return ctx.matMultSparseSparseSparseOut(a, b)
	}
	out := ctx.NewDense(a.Rows, n)
	as, bs, cd := a.sparse, b.sparse, out.dense
	ctx.Par.For(a.Rows, mmRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			avals, acols := as.Row(i)
			ci := i * n
			for ka, kk := range acols {
				av := avals[ka]
				bvals, bcols := bs.Row(kk)
				for p, j := range bcols {
					cd[ci+j] += av * bvals[p]
				}
			}
		}
	})
	return out
}

// spa is a per-worker sparse accumulator (dense row accumulator with a
// touched-column list and per-row generation marks), reused across all
// chunks a worker claims.
type spa struct {
	acc     []float64
	mark    []int
	touched []int
	bp      *BufPool // pool acc was drawn from
}

func newSPA(n int, bp *BufPool) *spa {
	s := &spa{acc: bp.Get(n), mark: make([]int, n), touched: make([]int, 0, 256), bp: bp}
	for j := range s.mark {
		s.mark[j] = -1
	}
	return s
}

func (s *spa) release() { s.bp.Put(s.acc) }

// matMultSparseSparseSparseOut builds a CSR product: each worker scatters
// B-rows into its dense row accumulator, gathers the touched columns in
// sorted order, and appends finished rows to a per-chunk CSR fragment; the
// fragments are stitched in row order at the end.
func (ctx Ctx) matMultSparseSparseSparseOut(a, b *Matrix) *Matrix {
	n := b.Cols
	as, bs := a.sparse, b.sparse
	type frag struct {
		lo, hi int
		rowPtr []int // nnz per row, later prefix-summed globally
		cols   []int
		vals   []float64
	}
	var mu sync.Mutex
	var frags []*frag
	nw, _ := ctx.Par.Chunks(a.Rows, mmRowGrain)
	spas := make([]*spa, nw)
	ctx.Par.ForIndexed(a.Rows, mmRowGrain, func(w, lo, hi int) {
		s := spas[w]
		if s == nil {
			s = newSPA(n, ctx.Buf)
			spas[w] = s
		}
		f := &frag{lo: lo, hi: hi, rowPtr: make([]int, 0, hi-lo)}
		for i := lo; i < hi; i++ {
			avals, acols := as.Row(i)
			s.touched = s.touched[:0]
			for ka, kk := range acols {
				av := avals[ka]
				bvals, bcols := bs.Row(kk)
				for p, j := range bcols {
					if s.mark[j] != i {
						s.mark[j] = i
						s.acc[j] = 0
						s.touched = append(s.touched, j)
					}
					s.acc[j] += av * bvals[p]
				}
			}
			sort.Ints(s.touched)
			nnz := 0
			for _, j := range s.touched {
				if v := s.acc[j]; v != 0 {
					f.cols = append(f.cols, j)
					f.vals = append(f.vals, v)
					nnz++
				}
			}
			f.rowPtr = append(f.rowPtr, nnz)
		}
		mu.Lock()
		frags = append(frags, f)
		mu.Unlock()
	})
	for _, s := range spas {
		if s != nil {
			s.release()
		}
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].lo < frags[j].lo })
	csr := &CSR{RowPtr: make([]int, a.Rows+1)}
	total := 0
	for _, f := range frags {
		total += len(f.vals)
	}
	csr.ColIdx = make([]int, 0, total)
	csr.Values = make([]float64, 0, total)
	for _, f := range frags {
		for r, nnz := range f.rowPtr {
			csr.RowPtr[f.lo+r+1] = csr.RowPtr[f.lo+r] + nnz
		}
		csr.ColIdx = append(csr.ColIdx, f.cols...)
		csr.Values = append(csr.Values, f.vals...)
	}
	return NewSparseCSR(a.Rows, b.Cols, csr)
}

// TSMM row-blocking parameters.
const (
	// tsmmRowGrain is the minimum number of input rows per parallel chunk.
	tsmmRowGrain = 16

	// tsmmPartialCapBytes caps the total memory spent on per-worker
	// upper-triangle accumulators; beyond it TSMM runs single-threaded
	// (the result itself would dominate memory anyway).
	tsmmPartialCapBytes = 64 << 20
)

// TSMM computes t(X) %*% X on the default execution context.
func TSMM(x *Matrix) *Matrix { return Ctx{}.TSMM(x) }

// TSMM computes t(X) %*% X exploiting symmetry of the result: only the
// upper triangle is accumulated — in parallel into per-worker accumulators
// drawn from the buffer pool — then reduced and mirrored in parallel.
// The dense kernel is rank-4 row-blocked (MultAdd4): four input rows per
// pass over the triangle, so each output element is loaded and stored once
// per four updates.
func (ctx Ctx) TSMM(x *Matrix) *Matrix {
	n := x.Cols
	out := ctx.NewDense(n, n)
	od := out.dense
	nw, _ := ctx.Par.Chunks(x.Rows, tsmmRowGrain)
	if nw > 1 && int64(nw)*int64(n)*int64(n)*8 <= tsmmPartialCapBytes {
		partials := make([][]float64, nw)
		ctx.Par.ForIndexed(x.Rows, tsmmRowGrain, func(w, lo, hi int) {
			part := partials[w]
			if part == nil {
				part = ctx.Buf.Get(n * n)
				partials[w] = part
			}
			tsmmUpper(x, part, lo, hi)
		})
		// Reduce per-worker triangles into the output, parallel over rows
		// (row i owns the triangle segment [i, n)).
		ctx.Par.For(n, 32, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				off := i*n + i
				for _, part := range partials {
					if part != nil {
						vector.Add(part, od, off, off, n-i)
					}
				}
			}
		})
		for _, part := range partials {
			if part != nil {
				ctx.Buf.Put(part)
			}
		}
	} else {
		tsmmUpper(x, od, 0, x.Rows)
	}
	// Mirror the upper triangle, parallel over output rows: row j receives
	// column j of the triangle above it (disjoint contiguous writes).
	ctx.Par.For(n, 64, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			for i := 0; i < j; i++ {
				od[j*n+i] = od[i*n+j]
			}
		}
	})
	return out
}

// tsmmUpper accumulates the upper triangle of t(X[lo:hi]) %*% X[lo:hi]
// into od (a zeroed or partially accumulated n×n buffer).
func tsmmUpper(x *Matrix, od []float64, lo, hi int) {
	n := x.Cols
	if x.IsSparse() {
		xs := x.sparse
		for i := lo; i < hi; i++ {
			vals, cols := xs.Row(i)
			for p, jp := range cols {
				vp := vals[p]
				off := jp * n
				for q := p; q < len(cols); q++ {
					od[off+cols[q]] += vp * vals[q]
				}
			}
		}
		return
	}
	xd := x.dense
	i := lo
	for ; i+8 <= hi; i += 8 {
		o0 := i * n
		o1, o2, o3 := o0+n, o0+2*n, o0+3*n
		o4, o5, o6, o7 := o0+4*n, o0+5*n, o0+6*n, o0+7*n
		for jp := 0; jp < n; jp++ {
			vector.MultAdd8(xd,
				xd[o0+jp], xd[o1+jp], xd[o2+jp], xd[o3+jp],
				xd[o4+jp], xd[o5+jp], xd[o6+jp], xd[o7+jp],
				od, o0+jp, o1+jp, o2+jp, o3+jp, o4+jp, o5+jp, o6+jp, o7+jp,
				jp*n+jp, n-jp)
		}
	}
	for ; i+4 <= hi; i += 4 {
		o0 := i * n
		o1, o2, o3 := o0+n, o0+2*n, o0+3*n
		for jp := 0; jp < n; jp++ {
			vector.MultAdd4(xd,
				xd[o0+jp], xd[o1+jp], xd[o2+jp], xd[o3+jp],
				od, o0+jp, o1+jp, o2+jp, o3+jp,
				jp*n+jp, n-jp)
		}
	}
	for ; i < hi; i++ {
		off := i * n
		for jp := 0; jp < n; jp++ {
			vp := xd[off+jp]
			if vp == 0 {
				continue
			}
			vector.MultAdd(xd, vp, od, off+jp, jp*n+jp, n-jp)
		}
	}
}
