package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// The cost-audit ledger records, for every executed operator that carries
// an optimizer prediction, the predicted execution time / FLOPs / IO next
// to the measured wall time and actual data-touch work. Entries aggregate
// by operator label (bounded memory on long-running sessions) and roll up
// into per-template relative-error histograms, so a session can answer
// "where does the cost model diverge from reality, and by how much?".

// AuditEntry is one predicted-vs-measured observation of an executed
// operator.
type AuditEntry struct {
	Op       string // operator label, e.g. "spoof(Cell)" or "ba(+*)"
	Template string // fused template (Cell/Row/MAgg/Outer); "" for basic ops

	PredSec   float64 // optimizer-predicted execution time (seconds)
	PredFlops float64 // predicted floating-point work
	PredBytes int64   // predicted IO volume (input reads + output write)

	ActualSec   float64 // measured wall time
	ActualFlops float64 // measured data-touch work (sparse-aware)
	ActualBytes int64   // realized input + output bytes

	// ActualInBytes / ActualOutBytes split ActualBytes into the read and
	// write sides of the operator — the quantities the cost model charges at
	// ReadBW and WriteBW respectively — so the calibrator can fit the two
	// bandwidths independently.
	ActualInBytes  int64
	ActualOutBytes int64

	// BcastBytes is the portion of the input bytes a distributed operator
	// received as broadcast side inputs (charged at BroadcastBW, not
	// ReadBW); zero for local execution.
	BcastBytes int64

	// Dist marks operators that executed on the distributed backend.
	Dist bool
}

// minAuditSec floors measured wall time so clock-granularity zeros don't
// turn into infinite relative errors.
const minAuditSec = 1e-7

// RelErr returns the signed relative error of the time prediction,
// (predicted − actual) / actual: positive means the model over-estimated.
func (e AuditEntry) RelErr() float64 {
	actual := math.Max(e.ActualSec, minAuditSec)
	return (e.PredSec - actual) / actual
}

// RelErrBounds are the upper bounds of the |relative error| histogram
// buckets; a final overflow bucket catches everything above the last bound.
var RelErrBounds = []float64{0.1, 0.25, 0.5, 1, 2, 5}

// NumRelErrBuckets is len(RelErrBounds) plus the overflow bucket.
const NumRelErrBuckets = 7

// RelErrHist is a histogram of absolute relative errors, with a side tally
// of prediction direction (under- vs over-estimates).
type RelErrHist struct {
	Buckets [NumRelErrBuckets]int64
	Under   int64 // predictions below the measurement
	Over    int64 // predictions at or above the measurement
}

func (h *RelErrHist) add(rel float64) {
	if rel < 0 {
		h.Under++
	} else {
		h.Over++
	}
	abs := math.Abs(rel)
	i := sort.SearchFloat64s(RelErrBounds, abs)
	h.Buckets[i]++
}

func (h *RelErrHist) merge(o RelErrHist) {
	for i, v := range o.Buckets {
		h.Buckets[i] += v
	}
	h.Under += o.Under
	h.Over += o.Over
}

// Count returns the number of recorded observations.
func (h RelErrHist) Count() int64 {
	var n int64
	for _, v := range h.Buckets {
		n += v
	}
	return n
}

// Median estimates the median |relative error| of the histogram by linear
// interpolation within its buckets; the gate experiments compare this
// before and after cost-model calibration. Zero when empty.
func (h RelErrHist) Median() float64 { return h.Quantile(0.5) }

// Quantile estimates the q-th quantile (0 < q < 1) of the |relative error|
// distribution by linear interpolation within the histogram buckets. The
// overflow bucket extrapolates to twice the last bound.
func (h RelErrHist) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, v := range h.Buckets {
		if v == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = RelErrBounds[i-1]
		}
		hi := 2 * RelErrBounds[len(RelErrBounds)-1]
		if i < len(RelErrBounds) {
			hi = RelErrBounds[i]
		}
		if cum+float64(v) >= rank {
			frac := (rank - cum) / float64(v)
			return lo + frac*(hi-lo)
		}
		cum += float64(v)
	}
	return 2 * RelErrBounds[len(RelErrBounds)-1]
}

// String renders the bucket counts as "≤0.1:3 ≤0.25:1 ... >5:0".
func (h RelErrHist) String() string {
	var b strings.Builder
	for i, v := range h.Buckets {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i < len(RelErrBounds) {
			fmt.Fprintf(&b, "<=%g:%d", RelErrBounds[i], v)
		} else {
			fmt.Fprintf(&b, ">%g:%d", RelErrBounds[len(RelErrBounds)-1], v)
		}
	}
	return b.String()
}

// AuditGroup aggregates every observation of one operator label. Sec,
// FLOPs, and byte fields are sums over Count observations.
type AuditGroup struct {
	Op       string
	Template string
	Count    int64

	PredSec   float64
	ActualSec float64

	PredFlops   float64
	ActualFlops float64

	PredBytes   int64
	ActualBytes int64

	// Read/write/broadcast byte splits (sums, like ActualBytes) and the
	// number of distributed observations — the calibrator's fit inputs.
	ActualInBytes  int64
	ActualOutBytes int64
	BcastBytes     int64
	DistCount      int64

	RelErr RelErrHist

	// Worst is the single observation with the largest |relative error|.
	Worst    AuditEntry
	WorstRel float64
}

// MeanRelErr returns the signed relative error of the summed times — the
// time-weighted divergence of the group.
func (g AuditGroup) MeanRelErr() float64 {
	actual := math.Max(g.ActualSec, minAuditSec)
	return (g.PredSec - actual) / actual
}

// AbsMispredSec returns the absolute seconds of misprediction accumulated
// by the group; the summary ranks worst offenders by this.
func (g AuditGroup) AbsMispredSec() float64 {
	return math.Abs(g.PredSec - g.ActualSec)
}

// Audit is the concurrent-safe cost-audit ledger.
type Audit struct {
	mu     sync.Mutex
	groups map[string]*AuditGroup
}

// NewAudit returns an empty ledger.
func NewAudit() *Audit { return &Audit{groups: map[string]*AuditGroup{}} }

// Record adds one observation. Nil-safe.
func (a *Audit) Record(e AuditEntry) {
	if a == nil {
		return
	}
	rel := e.RelErr()
	a.mu.Lock()
	defer a.mu.Unlock()
	g, ok := a.groups[e.Op]
	if !ok {
		g = &AuditGroup{Op: e.Op, Template: e.Template}
		a.groups[e.Op] = g
	}
	g.Count++
	g.PredSec += e.PredSec
	g.ActualSec += e.ActualSec
	g.PredFlops += e.PredFlops
	g.ActualFlops += e.ActualFlops
	g.PredBytes += e.PredBytes
	g.ActualBytes += e.ActualBytes
	g.ActualInBytes += e.ActualInBytes
	g.ActualOutBytes += e.ActualOutBytes
	g.BcastBytes += e.BcastBytes
	if e.Dist {
		g.DistCount++
	}
	g.RelErr.add(rel)
	if abs := math.Abs(rel); g.Count == 1 || abs > g.WorstRel {
		g.Worst, g.WorstRel = e, abs
	}
}

// TemplateAudit is the per-template roll-up of the ledger. The empty
// template key is reported as "basic" (unfused HOPs).
type TemplateAudit struct {
	Template  string
	Count     int64
	PredSec   float64
	ActualSec float64
	RelErr    RelErrHist
}

// AuditSummary is a point-in-time roll-up of the ledger: per-template
// relative-error histograms plus per-operator groups ranked by absolute
// seconds of misprediction (worst offenders first).
type AuditSummary struct {
	Templates map[string]TemplateAudit
	Groups    []AuditGroup

	TotalPredSec   float64
	TotalActualSec float64
}

// Summary returns the current roll-up. Nil-safe: a nil ledger summarizes
// to an empty (but usable) summary.
func (a *Audit) Summary() AuditSummary {
	s := AuditSummary{Templates: map[string]TemplateAudit{}}
	if a == nil {
		return s
	}
	a.mu.Lock()
	for _, g := range a.groups {
		s.Groups = append(s.Groups, *g)
	}
	a.mu.Unlock()
	for _, g := range s.Groups {
		key := g.Template
		if key == "" {
			key = "basic"
		}
		t := s.Templates[key]
		t.Template = key
		t.Count += g.Count
		t.PredSec += g.PredSec
		t.ActualSec += g.ActualSec
		t.RelErr.merge(g.RelErr)
		s.Templates[key] = t
		s.TotalPredSec += g.PredSec
		s.TotalActualSec += g.ActualSec
	}
	sort.Slice(s.Groups, func(i, j int) bool {
		a, b := s.Groups[i], s.Groups[j]
		if a.AbsMispredSec() != b.AbsMispredSec() {
			return a.AbsMispredSec() > b.AbsMispredSec()
		}
		return a.Op < b.Op
	})
	return s
}

// String renders the summary as a fixed-width report: template roll-up
// first, then the worst-offending operators.
func (s AuditSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# COST AUDIT (predicted vs measured)\n")
	if len(s.Groups) == 0 {
		b.WriteString("no audited operators (run a script in Gen/Fused mode first)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "total: predicted %.3gs, measured %.3gs\n", s.TotalPredSec, s.TotalActualSec)
	b.WriteString("per template:\n")
	keys := make([]string, 0, len(s.Templates))
	for k := range s.Templates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := s.Templates[k]
		fmt.Fprintf(&b, "  %-5s n=%-4d pred=%.3gs actual=%.3gs |relerr| %s (under=%d over=%d)\n",
			t.Template, t.Count, t.PredSec, t.ActualSec, t.RelErr.String(), t.RelErr.Under, t.RelErr.Over)
	}
	b.WriteString("worst offenders (by absolute mispredicted seconds):\n")
	n := len(s.Groups)
	if n > 10 {
		n = 10
	}
	for _, g := range s.Groups[:n] {
		fmt.Fprintf(&b, "  %-24s n=%-4d pred=%.3gs actual=%.3gs relerr=%+.2f worst=%+.2f\n",
			g.Op, g.Count, g.PredSec, g.ActualSec, g.MeanRelErr(), signedWorst(g))
	}
	return b.String()
}

func signedWorst(g AuditGroup) float64 {
	return g.Worst.RelErr()
}
