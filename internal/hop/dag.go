package hop

import (
	"fmt"
	"sort"

	"sysml/internal/matrix"
)

// DAG is a builder and container for one statement block's HOP DAG.
// Outputs maps result variable names to their root HOPs.
type DAG struct {
	nextID  int64
	Outputs map[string]*Hop
	order   []string // deterministic output iteration order
}

// NewDAG returns an empty DAG builder.
func NewDAG() *DAG {
	return &DAG{Outputs: make(map[string]*Hop)}
}

func (d *DAG) newHop(kind OpKind, inputs ...*Hop) *Hop {
	d.nextID++
	h := &Hop{ID: d.nextID, Kind: kind, Inputs: inputs, Nnz: -1}
	for _, in := range inputs {
		in.Parents = append(in.Parents, h)
	}
	return h
}

// Output registers a named DAG result (transient write).
func (d *DAG) Output(name string, h *Hop) {
	if _, ok := d.Outputs[name]; !ok {
		d.order = append(d.order, name)
	}
	d.Outputs[name] = h
}

// OutputNames returns the output names in registration order.
func (d *DAG) OutputNames() []string { return d.order }

// Roots returns the distinct output root HOPs in registration order.
func (d *DAG) Roots() []*Hop {
	seen := map[int64]bool{}
	var roots []*Hop
	for _, name := range d.order {
		h := d.Outputs[name]
		if !seen[h.ID] {
			seen[h.ID] = true
			roots = append(roots, h)
		}
	}
	return roots
}

// Read creates a named matrix input with known dimensions and an optional
// non-zero estimate (nnz < 0 means assume dense).
func (d *DAG) Read(name string, rows, cols, nnz int64) *Hop {
	h := d.newHop(OpData)
	h.Name, h.Rows, h.Cols, h.Nnz = name, rows, cols, nnz
	if nnz < 0 {
		h.Nnz = rows * cols
	}
	return h
}

// Lit creates a scalar literal.
func (d *DAG) Lit(v float64) *Hop {
	h := d.newHop(OpLiteral)
	h.Value, h.Rows, h.Cols, h.Nnz = v, 1, 1, 1
	if v == 0 {
		h.Nnz = 0
	}
	return h
}

// Rand creates a datagen operator producing a rows×cols random matrix.
func (d *DAG) Rand(rows, cols int64, sparsity, lo, hi float64, seed int64) *Hop {
	h := d.newHop(OpDataGen)
	h.Gen = GenRand
	h.GenArgs = []float64{sparsity, lo, hi, float64(seed)}
	h.Rows, h.Cols = rows, cols
	h.Nnz = int64(float64(rows*cols) * sparsity)
	return h
}

// FillGen creates a datagen operator producing a constant matrix.
func (d *DAG) FillGen(rows, cols int64, value float64) *Hop {
	h := d.newHop(OpDataGen)
	h.Gen = GenFill
	h.GenArgs = []float64{value}
	h.Rows, h.Cols = rows, cols
	h.Nnz = rows * cols
	if value == 0 {
		h.Nnz = 0
	}
	return h
}

// Binary creates an element-wise binary operator with broadcast-aware size
// propagation.
func (d *DAG) Binary(op matrix.BinOp, a, b *Hop) *Hop {
	h := d.newHop(OpBinary, a, b)
	h.BinOp = op
	// Output shape: the non-scalar, non-vector-broadcast side.
	switch {
	case a.IsScalar():
		h.Rows, h.Cols = b.Rows, b.Cols
	case b.IsScalar():
		h.Rows, h.Cols = a.Rows, a.Cols
	case a.Rows == b.Rows && a.Cols == b.Cols:
		h.Rows, h.Cols = a.Rows, a.Cols
	case b.Cols == 1 && b.Rows == a.Rows, b.Rows == 1 && b.Cols == a.Cols:
		h.Rows, h.Cols = a.Rows, a.Cols
	case a.Cols == 1 && a.Rows == b.Rows, a.Rows == 1 && a.Cols == b.Cols:
		h.Rows, h.Cols = b.Rows, b.Cols
	default:
		panic(fmt.Sprintf("hop: incompatible binary shapes %dx%d %v %dx%d",
			a.Rows, a.Cols, op, b.Rows, b.Cols))
	}
	h.Nnz = estimateBinaryNnz(op, a, b, h)
	return h
}

// Unary creates an element-wise unary operator.
func (d *DAG) Unary(op matrix.UnOp, a *Hop) *Hop {
	h := d.newHop(OpUnary, a)
	h.UnOp = op
	h.Rows, h.Cols = a.Rows, a.Cols
	if op.SparseSafe() {
		h.Nnz = a.Nnz
	} else {
		h.Nnz = h.Cells()
	}
	return h
}

// Agg creates a unary aggregate (sum/min/max/mean, full/row/col).
func (d *DAG) Agg(op matrix.AggOp, dir matrix.AggDir, a *Hop) *Hop {
	h := d.newHop(OpAggUnary, a)
	h.AggOp, h.AggDir = op, dir
	switch dir {
	case matrix.DirAll:
		h.Rows, h.Cols = 1, 1
	case matrix.DirRow:
		h.Rows, h.Cols = a.Rows, 1
	case matrix.DirCol:
		h.Rows, h.Cols = 1, a.Cols
	}
	h.Nnz = h.Cells()
	return h
}

// Sum is shorthand for a full sum aggregate.
func (d *DAG) Sum(a *Hop) *Hop { return d.Agg(matrix.AggSum, matrix.DirAll, a) }

// RowSums is shorthand for a row-wise sum aggregate.
func (d *DAG) RowSums(a *Hop) *Hop { return d.Agg(matrix.AggSum, matrix.DirRow, a) }

// ColSums is shorthand for a column-wise sum aggregate.
func (d *DAG) ColSums(a *Hop) *Hop { return d.Agg(matrix.AggSum, matrix.DirCol, a) }

// MatMult creates a matrix multiplication (ba(+*)).
func (d *DAG) MatMult(a, b *Hop) *Hop {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("hop: matmult shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	h := d.newHop(OpMatMult, a, b)
	h.Rows, h.Cols = a.Rows, b.Cols
	// SystemML-style sparsity estimate: sp = 1-(1-spA*spB)^k.
	spA, spB := a.Sparsity(), b.Sparsity()
	sp := 1 - pow1m(spA*spB, a.Cols)
	h.Nnz = int64(sp * float64(h.Cells()))
	return h
}

func pow1m(p float64, k int64) float64 {
	// (1-p)^k without math.Pow edge cases for large k.
	r := 1.0
	base := 1 - p
	if base <= 0 {
		return 0
	}
	for e := k; e > 0; e >>= 1 {
		if e&1 == 1 {
			r *= base
		}
		base *= base
		if r == 0 {
			return 0
		}
	}
	return r
}

// Transpose creates a reorg transpose.
func (d *DAG) Transpose(a *Hop) *Hop {
	h := d.newHop(OpTranspose, a)
	h.Rows, h.Cols = a.Cols, a.Rows
	h.Nnz = a.Nnz
	return h
}

// Index creates a right-indexing operator with static half-open zero-based
// bounds.
func (d *DAG) Index(a *Hop, rl, ru, cl, cu int64) *Hop {
	if rl < 0 || cl < 0 || ru > a.Rows || cu > a.Cols || rl >= ru || cl >= cu {
		panic(fmt.Sprintf("hop: invalid index [%d:%d,%d:%d] of %dx%d", rl, ru, cl, cu, a.Rows, a.Cols))
	}
	h := d.newHop(OpIndex, a)
	h.RL, h.RU, h.CL, h.CU = rl, ru, cl, cu
	h.Rows, h.Cols = ru-rl, cu-cl
	h.Nnz = int64(a.Sparsity() * float64(h.Cells()))
	return h
}

// CBindOp concatenates two inputs horizontally.
func (d *DAG) CBindOp(a, b *Hop) *Hop {
	h := d.newHop(OpCBind, a, b)
	h.Rows, h.Cols = a.Rows, a.Cols+b.Cols
	h.Nnz = nnzOrDense(a) + nnzOrDense(b)
	return h
}

// RBindOp concatenates two inputs vertically.
func (d *DAG) RBindOp(a, b *Hop) *Hop {
	h := d.newHop(OpRBind, a, b)
	h.Rows, h.Cols = a.Rows+b.Rows, a.Cols
	h.Nnz = nnzOrDense(a) + nnzOrDense(b)
	return h
}

// RowIndexMaxOp creates a per-row argmax operator.
func (d *DAG) RowIndexMaxOp(a *Hop) *Hop {
	h := d.newHop(OpRowIndexMax, a)
	h.Rows, h.Cols = a.Rows, 1
	h.Nnz = a.Rows
	return h
}

// DiagOp creates a diagonal extract/expand operator.
func (d *DAG) DiagOp(a *Hop) *Hop {
	h := d.newHop(OpDiag, a)
	if a.Cols == 1 {
		h.Rows, h.Cols = a.Rows, a.Rows
		h.Nnz = a.Nnz
	} else {
		h.Rows, h.Cols = a.Rows, 1
		h.Nnz = a.Rows
	}
	return h
}

// CumsumOp creates a column-wise prefix-sum operator.
func (d *DAG) CumsumOp(a *Hop) *Hop {
	h := d.newHop(OpCumsum, a)
	h.Rows, h.Cols = a.Rows, a.Cols
	h.Nnz = h.Cells()
	return h
}

// NewSpoof wraps a compiled fused operator as a HOP with explicit output
// dimensions, consuming the given inputs.
func (d *DAG) NewSpoof(spoofType string, op any, rows, cols, nnz int64, inputs ...*Hop) *Hop {
	h := d.newHop(OpSpoof, inputs...)
	h.SpoofType = spoofType
	h.Spoof = op
	h.Rows, h.Cols, h.Nnz = rows, cols, nnz
	if nnz < 0 {
		h.Nnz = rows * cols
	}
	return h
}

// SpoofOut extracts output k of a multi-output fused operator (horizontal
// template): the spoof hop computes every sibling output in one pass and
// SpoofOut nodes hand each one to its consumers with its own dimensions.
func (d *DAG) SpoofOut(spoof *Hop, k int, rows, cols, nnz int64) *Hop {
	h := d.newHop(OpSpoofOut, spoof)
	h.OutIdx = k
	h.Rows, h.Cols, h.Nnz = rows, cols, nnz
	if nnz < 0 {
		h.Nnz = rows * cols
	}
	return h
}

func nnzOrDense(h *Hop) int64 {
	if h.Nnz < 0 {
		return h.Cells()
	}
	return h.Nnz
}

func estimateBinaryNnz(op matrix.BinOp, a, b, out *Hop) int64 {
	cells := float64(out.Cells())
	spA, spB := a.Sparsity(), b.Sparsity()
	switch op {
	case matrix.BinMul, matrix.BinAnd:
		return int64(spA * spB * cells)
	case matrix.BinAdd, matrix.BinSub, matrix.BinOr:
		sp := spA + spB - spA*spB
		return int64(sp * cells)
	default:
		if op.SparseSafe() {
			sp := spA + spB - spA*spB
			return int64(sp * cells)
		}
		return out.Cells()
	}
}

// TopoOrder returns all HOPs reachable from the given roots in topological
// order (inputs before consumers), deterministically by node ID.
func TopoOrder(roots []*Hop) []*Hop {
	var order []*Hop
	state := map[int64]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(h *Hop)
	visit = func(h *Hop) {
		switch state[h.ID] {
		case 1:
			panic("hop: cycle detected in DAG")
		case 2:
			return
		}
		state[h.ID] = 1
		for _, in := range h.Inputs {
			visit(in)
		}
		state[h.ID] = 2
		order = append(order, h)
	}
	sorted := append([]*Hop(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, r := range sorted {
		visit(r)
	}
	return order
}
