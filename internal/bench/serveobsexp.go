package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"sysml/internal/serve"
)

// serveObsFile is the JSON artifact ServeObs writes; CI gates on "pass".
const serveObsFile = "BENCH_serveobs.json"

// Serving-observability gate thresholds.
const (
	// serveObsMaxOverhead: the always-on flight recorder + request tracing
	// may cost at most this fraction of p99 latency over a server with
	// recording disabled.
	serveObsMaxOverhead = 0.05
	// serveObsSlackMS absorbs scheduler jitter on sub-millisecond
	// requests: the overhead gate passes if the absolute p99 delta stays
	// under this floor even when the relative gate trips on noise.
	serveObsSlackMS = 0.5
)

// ServeObsResult is the serialized outcome of the observability gates.
type ServeObsResult struct {
	Rounds   int `json:"rounds"`
	Requests int `json:"requests_per_variant"`

	P50OnMS  float64 `json:"p50_on_ms"`
	P50OffMS float64 `json:"p50_off_ms"`
	P99OnMS  float64 `json:"p99_on_ms"`  // min across rounds, recorder on
	P99OffMS float64 `json:"p99_off_ms"` // min across rounds, recorder off

	OverheadFrac float64 `json:"overhead_frac"`
	OverheadPass bool    `json:"overhead_pass"` // < 5% or within the slack floor

	Recorded   int64 `json:"recorded"`
	TraceSpans int   `json:"trace_spans"`
	TracePass  bool  `json:"trace_pass"` // a sampled record carries a full span tree

	Pass bool `json:"pass"`
}

// serveObsRound fires n closed-loop requests at addr and returns their
// end-to-end latencies.
func serveObsRound(o Options, addr, tenant string, n int) []time.Duration {
	req := scoreReq(o, tenant, 7)
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		status, _, err := postScore(addr, req)
		if err != nil || status != http.StatusOK {
			panic(fmt.Sprintf("serveobs bench: status %d err %v", status, err))
		}
		lats = append(lats, time.Since(start))
	}
	return lats
}

// ServeObs measures the cost of serving-path observability and writes
// BENCH_serveobs.json:
//
//  1. Overhead: identical engines behind two servers — flight recorder +
//     request tracing on (defaults) vs disabled — measured in interleaved
//     rounds (min p99 per variant de-noises scheduler interference). The
//     always-on path must cost < 5% p99, with a small absolute floor for
//     sub-millisecond jitter.
//  2. Trace sanity: a recorder sampling every request must retain a span
//     tree that reaches the per-operator execute spans.
func ServeObs(o Options) *Table {
	rounds := 3
	perRound := 200
	if o.Reps > 3 {
		perRound = 200 * o.Reps / 3
	}

	newEngine := func() *serve.Engine {
		return serve.NewEngine(
			serve.WithMemoryBudget(1 << 30),
			serve.WithTenantQuota(serve.TenantQuota{MaxSessions: 4}),
		)
	}
	// Batching off on both: a single closed-loop client never coalesces,
	// so the leader's batch window would only add identical constant sleep
	// to both variants and mask the instrumentation cost being measured.
	srvOn, err := serve.NewServer("127.0.0.1:0", newEngine(), serve.WithBatchWindow(0))
	if err != nil {
		panic(fmt.Sprintf("serveobs bench: %v", err))
	}
	defer srvOn.Close()
	srvOff, err := serve.NewServer("127.0.0.1:0", newEngine(),
		serve.WithBatchWindow(0), serve.WithFlightRecorder(-1, 0))
	if err != nil {
		panic(fmt.Sprintf("serveobs bench: %v", err))
	}
	defer srvOff.Close()

	// Warm both paths: plan caches, block caches, HTTP keep-alives.
	serveObsRound(o, srvOn.Addr(), "obs-on", 10)
	serveObsRound(o, srvOff.Addr(), "obs-off", 10)

	minP99On, minP99Off := -1.0, -1.0
	var allOn, allOff []time.Duration
	for r := 0; r < rounds; r++ {
		on := serveObsRound(o, srvOn.Addr(), "obs-on", perRound)
		off := serveObsRound(o, srvOff.Addr(), "obs-off", perRound)
		allOn = append(allOn, on...)
		allOff = append(allOff, off...)
		if p := percentileMS(on, 0.99); minP99On < 0 || p < minP99On {
			minP99On = p
		}
		if p := percentileMS(off, 0.99); minP99Off < 0 || p < minP99Off {
			minP99Off = p
		}
	}
	recorded, _ := srvOn.FlightRecorder().Stats()

	overhead := 0.0
	if minP99Off > 0 {
		overhead = (minP99On - minP99Off) / minP99Off
	}
	overheadPass := overhead < serveObsMaxOverhead ||
		minP99On-minP99Off < serveObsSlackMS

	// --- Trace sanity: sample-everything recorder retains full trees. ---
	srvT, err := serve.NewServer("127.0.0.1:0", newEngine(),
		serve.WithBatchWindow(0), serve.WithFlightRecorder(16, 0))
	if err != nil {
		panic(fmt.Sprintf("serveobs bench: %v", err))
	}
	serveObsRound(o, srvT.Addr(), "obs-trace", 1)
	traceSpans := 0
	tracePass := false
	if recs := srvT.FlightRecorder().Records(); len(recs) == 1 {
		if rec, ok := srvT.FlightRecorder().Get(recs[0].ID); ok && rec.Sampled {
			traceSpans = len(rec.Spans)
			names := map[string]bool{}
			for _, sp := range rec.Spans {
				names[sp.Name] = true
			}
			// Per-operator spans push the tree past the fixed phases.
			tracePass = names["request"] && names["run"] && names["execute"] &&
				traceSpans > 5
		}
	}
	srvT.Close()

	res := ServeObsResult{
		Rounds:       rounds,
		Requests:     rounds * perRound,
		P50OnMS:      percentileMS(allOn, 0.50),
		P50OffMS:     percentileMS(allOff, 0.50),
		P99OnMS:      minP99On,
		P99OffMS:     minP99Off,
		OverheadFrac: overhead,
		OverheadPass: overheadPass,
		Recorded:     recorded,
		TraceSpans:   traceSpans,
		TracePass:    tracePass,
	}
	res.Pass = res.OverheadPass && res.TracePass
	if data, err := json.MarshalIndent(res, "", "  "); err == nil {
		if err := os.WriteFile(serveObsFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(o.Out, "serveobs: cannot write %s: %v\n", serveObsFile, err)
		}
	}

	t := &Table{
		Title:   "Serving observability gates: recorder overhead, trace retention",
		Columns: []string{"gate", "measured", "limit", "pass"},
	}
	t.Add("p99 overhead", fmt.Sprintf("%.1f%% (on %.2f ms, off %.2f ms)",
		100*overhead, minP99On, minP99Off),
		fmt.Sprintf("< %.0f%% or < %.1f ms", 100*serveObsMaxOverhead, serveObsSlackMS),
		fmt.Sprintf("%v", res.OverheadPass))
	t.Add("trace retention", fmt.Sprintf("%d spans, %d recorded", traceSpans, recorded),
		"request/run/execute + operators", fmt.Sprintf("%v", res.TracePass))
	return t
}
