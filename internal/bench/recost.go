package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dml"
	"sysml/internal/matrix"
	"sysml/internal/obs"
)

// recostFile is the JSON artifact Recost writes next to the harness
// output; CI gates on its "pass" field.
const recostFile = "BENCH_recost.json"

const (
	// recostMaxMedianRatio gates the calibration fit: the median |relative
	// error| of cost predictions after fitting from the audit ledger must be
	// at most half the median under the paper defaults. When the defaults
	// already predict within recostCalibratedErr the machine happens to match
	// the paper constants and halving is neither possible nor needed.
	recostMaxMedianRatio = 0.5
	recostCalibratedErr  = 0.10

	// recostMaxIter2Ratio gates mid-script re-optimization: after binding a
	// 2%-sparse matrix with a claimed-dense nonzero hint, the second
	// execution of the block (re-optimized with the observed sparsity) must
	// run in at most this fraction of the first.
	recostMaxIter2Ratio = 0.7

	// recostMaxOverheadPct gates the price of the always-on feedback path:
	// with calibration off (no calibrator attached), re-optimization enabled
	// vs disabled must differ by less than this on the cellwise microbench.
	recostMaxOverheadPct = 2.0
)

// RecostResult is the serialized outcome of the calibration and
// re-optimization experiment.
type RecostResult struct {
	// Gate 1: cost-model calibration from the audit ledger.
	PreMedianRelErr  float64 `json:"pre_median_rel_err"`
	PostMedianRelErr float64 `json:"post_median_rel_err"`
	MedianRatio      float64 `json:"median_ratio"`
	FitObservations  int     `json:"fit_observations"`
	CalibPass        bool    `json:"calib_pass"`

	// Gate 2: adversarial sparsity hint and mid-script re-optimization.
	Iter1MS        float64 `json:"iter1_ms"`
	Iter2MS        float64 `json:"iter2_ms"`
	Iter2Ratio     float64 `json:"iter2_ratio"`
	SparsityReopts int64   `json:"sparsity_reopts"`
	Invalidations  int64   `json:"invalidations"`
	OuterAfter     bool    `json:"outer_after"`
	ReoptPass      bool    `json:"reopt_pass"`

	// Gate 3: overhead of the feedback path with calibration off.
	ReoptOnMS    float64 `json:"reopt_on_ms"`
	ReoptOffMS   float64 `json:"reopt_off_ms"`
	OverheadPct  float64 `json:"overhead_pct"`
	OverheadPass bool    `json:"overhead_pass"`

	Pass bool `json:"pass"`
}

// recostMinOpSec floors the per-execution mean runtime of an operator
// group for inclusion in the gate histogram: dispatch-dominated micro-ops
// (scalar extraction, tiny indexing) are outside the cost-model contract
// and would never calibrate (see docs/COST_MODEL.md).
const recostMinOpSec = 1e-4

// recostWorkload runs a fused streaming workload (cellwise, multi-
// aggregate, row-wise — the templates the bandwidth model describes) on a
// fresh session with the given cost model and returns the session's
// cost-audit summary.
func recostWorkload(o Options, costs codegen.CostModel, reps int) obs.AuditSummary {
	cfg := codegen.DefaultConfig()
	cfg.Costs = costs
	s := dml.NewSession(cfg)
	s.Out = io.Discard
	n := o.rows(8192)
	s.Bind("X", matrix.Rand(n, 128, 1, -1, 1, 21))
	s.Bind("Y", matrix.Rand(n, 128, 1, -1, 1, 22))
	s.Bind("Z", matrix.Rand(n, 128, 1, -1, 1, 23))
	s.Bind("W", matrix.Rand(128, 128, 1, -1, 1, 24))
	scripts := []string{
		`a = sum(X * Y * Z)`, // read-bound cellwise: pins ReadBW
		`c = sum(X * Y)
d = sum(X * Z)`, // multi-aggregate: shared-scan read volume
		`P = X %*% W`, // compute-bound matmult: pins ComputeBW, writes its output
	}
	run := func() {
		for _, script := range scripts {
			if err := s.Run(script); err != nil {
				panic(fmt.Sprintf("recost workload failed: %v", err))
			}
		}
	}
	// Warm pass: compile every plan and touch every page, then discard the
	// ledger so cold-start outliers don't pollute either side of the gate.
	run()
	s.Audit = obs.NewAudit()
	// Two passes per rep: the fit needs calibMinSamples of weighted mass
	// from a handful of operator groups.
	for i := 0; i < 2*reps; i++ {
		run()
	}
	return s.CostAudit()
}

// mergedRelErr folds the per-operator histograms of every group above the
// recostMinOpSec runtime floor into one.
func mergedRelErr(sum obs.AuditSummary) obs.RelErrHist {
	var h obs.RelErrHist
	for _, g := range sum.Groups {
		if g.Count == 0 || g.ActualSec/float64(g.Count) < recostMinOpSec {
			continue
		}
		for i, v := range g.RelErr.Buckets {
			h.Buckets[i] += v
		}
		h.Under += g.RelErr.Under
		h.Over += g.RelErr.Over
	}
	return h
}

// Recost measures the feedback loop end to end and writes BENCH_recost.json:
//
//  1. Calibration: run a mixed-template workload under the paper-default
//     cost constants, fit the calibrator from the resulting audit ledger,
//     and re-run the workload under the fitted constants. The median
//     |relative error| of the predictions must at least halve (or already
//     sit within 10%, meaning the machine matches the defaults).
//  2. Re-optimization: bind a 2%-sparse matrix with a claimed-dense nonzero
//     hint, forcing the optimizer into a dense plan for
//     sum(X*log(U%*%t(V)+eps)). The runtime feedback must detect the
//     divergence after the first execution, invalidate the cached block
//     plan, and pick the sparsity-exploiting Outer plan, making the second
//     execution at most 70% of the first.
//  3. Overhead: with no calibrator attached, enabling re-optimization
//     (the shipped default) must cost under 2% versus disabling it on the
//     cellwise microbench.
func Recost(o Options) *Table {
	reps := o.Reps
	if reps < 3 {
		reps = 3
	}

	// --- Gate 1: calibration halves the cost-prediction error. ---
	defaults := codegen.DefaultCostModel()
	preSummary := recostWorkload(o, defaults, reps)
	pre := mergedRelErr(preSummary).Median()
	cal := codegen.NewCalibrator(defaults)
	fitObs := cal.FitSummary(preSummary)
	post := mergedRelErr(recostWorkload(o, cal.Model(), reps)).Median()
	medianRatio := 0.0
	if pre > 0 {
		medianRatio = post / pre
	}
	calibPass := post <= recostMaxMedianRatio*pre || post <= recostCalibratedErr

	// --- Gate 2: a lying sparsity hint is corrected within one iteration. ---
	n := o.rows(1024)
	rank := 64
	rs := dml.NewSession(codegen.DefaultConfig())
	rs.Out = io.Discard
	x := matrix.Rand(n, n, 0.02, 1, 2, 31)
	rs.BindWithNnz("X", x, int64(n)*int64(n)) // claim dense: forces a dense plan
	rs.Bind("U", matrix.Rand(n, rank, 1, 0.1, 1, 32))
	rs.Bind("V", matrix.Rand(n, rank, 1, 0.1, 1, 33))
	adversarial := `s = sum(X * log(U %*% t(V) + 1e-15))`
	runOnce := func() time.Duration {
		start := time.Now()
		if err := rs.Run(adversarial); err != nil {
			panic(fmt.Sprintf("recost adversarial script failed: %v", err))
		}
		return time.Since(start)
	}
	iter1 := runOnce()
	// The divergence was detected at the end of iteration 1; iteration 2
	// compiles and runs the corrected plan. Take the best of a few reps so
	// scheduler noise can only hurt, not help, the gate.
	iter2 := runOnce()
	for i := 0; i < reps-1; i++ {
		if d := runOnce(); d < iter2 {
			iter2 = d
		}
	}
	snap := rs.Metrics()
	sparsityReopts := snap.Counters["reopt.sparsity"]
	invalidations := snap.Counters["reopt.invalidations"]
	expl, err := rs.Explain(adversarial)
	if err != nil {
		panic(fmt.Sprintf("recost explain failed: %v", err))
	}
	outerAfter := strings.Contains(expl, "Outer")
	iter2Ratio := 0.0
	if iter1 > 0 {
		iter2Ratio = float64(iter2) / float64(iter1)
	}
	reoptPass := sparsityReopts >= 1 && invalidations >= 1 && outerAfter &&
		iter2Ratio <= recostMaxIter2Ratio

	// --- Gate 3: the feedback path is ~free with calibration off. ---
	session := func(reopt bool) func() {
		cfg := codegen.DefaultConfig()
		cfg.Reopt.Enabled = reopt
		s := dml.NewSession(cfg)
		s.Out = io.Discard
		s.Bind("X", matrix.Rand(o.rows(10000), 100, 1, -1, 1, 41))
		s.Bind("Y", matrix.Rand(o.rows(10000), 100, 1, -1, 1, 42))
		s.Bind("Z", matrix.Rand(o.rows(10000), 100, 1, -1, 1, 43))
		return func() {
			if err := s.Run(`s = sum(X * Y * Z)`); err != nil {
				panic(fmt.Sprintf("recost overhead bench failed: %v", err))
			}
		}
	}
	// Interleaved minimums per trial (scheduler noise hits both variants
	// alike), median across trials: a single disturbed trial on a shared
	// machine cannot swing a millisecond-scale 2% gate.
	trial := func() (on, off time.Duration) {
		runOn, runOff := session(true), session(false)
		runOn()
		runOff()
		on, off = time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < reps*10; i++ {
			// Alternate which variant runs first so GC debt left by one
			// run is not always collected on the other variant's clock.
			first, second := runOn, runOff
			if i%2 == 1 {
				first, second = runOff, runOn
			}
			start := time.Now()
			first()
			d1 := time.Since(start)
			start = time.Now()
			second()
			d2 := time.Since(start)
			if i%2 == 1 {
				d1, d2 = d2, d1
			}
			if d1 < on {
				on = d1
			}
			if d2 < off {
				off = d2
			}
		}
		return on, off
	}
	overheads := make([]float64, 0, 3)
	var onBest, offBest time.Duration
	for i := 0; i < 3; i++ {
		on, off := trial()
		if i == 0 || on < onBest {
			onBest = on
		}
		if i == 0 || off < offBest {
			offBest = off
		}
		overheads = append(overheads, 100*float64(on-off)/float64(off))
	}
	sort.Float64s(overheads)
	overhead := overheads[1]
	overheadPass := overhead < recostMaxOverheadPct

	res := RecostResult{
		PreMedianRelErr:  pre,
		PostMedianRelErr: post,
		MedianRatio:      medianRatio,
		FitObservations:  fitObs,
		CalibPass:        calibPass,
		Iter1MS:          float64(iter1.Nanoseconds()) / 1e6,
		Iter2MS:          float64(iter2.Nanoseconds()) / 1e6,
		Iter2Ratio:       iter2Ratio,
		SparsityReopts:   sparsityReopts,
		Invalidations:    invalidations,
		OuterAfter:       outerAfter,
		ReoptPass:        reoptPass,
		ReoptOnMS:        float64(onBest.Nanoseconds()) / 1e6,
		ReoptOffMS:       float64(offBest.Nanoseconds()) / 1e6,
		OverheadPct:      overhead,
		OverheadPass:     overheadPass,
		Pass:             calibPass && reoptPass && overheadPass,
	}
	if data, err := json.MarshalIndent(res, "", "  "); err == nil {
		if err := os.WriteFile(recostFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(o.Out, "recost: cannot write %s: %v\n", recostFile, err)
		}
	}

	t := &Table{
		Title:   "Recost: calibration fit, mid-script re-optimization, feedback overhead",
		Columns: []string{"gate", "metric", "threshold", "pass"},
	}
	t.Add("calibration", fmt.Sprintf("median rel-err %.3f -> %.3f", pre, post),
		fmt.Sprintf("<=%.1fx pre or <=%.2f", recostMaxMedianRatio, recostCalibratedErr),
		fmt.Sprintf("%v", calibPass))
	t.Add("re-optimization",
		fmt.Sprintf("iter2/iter1 %.2f, reopts %d, invals %d, outer %v",
			iter2Ratio, sparsityReopts, invalidations, outerAfter),
		fmt.Sprintf("ratio<=%.1f, counters>=1", recostMaxIter2Ratio),
		fmt.Sprintf("%v", reoptPass))
	t.Add("overhead", fmt.Sprintf("reopt on %s ms vs off %s ms (%.2f%%)",
		ms(onBest), ms(offBest), overhead),
		fmt.Sprintf("<%.0f%%", recostMaxOverheadPct),
		fmt.Sprintf("%v", overheadPass))
	return t
}
