// Package par provides small data-parallel helpers used by the matrix
// kernels and fused-operator skeletons. All helpers degrade gracefully to
// sequential execution for small inputs so that parallelization overhead
// never dominates.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of work items per spawned goroutine.
// Work smaller than one grain runs on the calling goroutine.
const DefaultGrain = 1024

// maxWorkers caps the number of goroutines spawned by For. It can be
// overridden for tests via SetMaxWorkers.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the worker cap and returns the previous value.
// Passing n <= 0 resets to GOMAXPROCS.
func SetMaxWorkers(n int) int {
	old := maxWorkers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return old
}

// MaxWorkers reports the current worker cap.
func MaxWorkers() int { return maxWorkers }

// Utilization counters: every For/ForIndexed call is counted, along with
// the goroutines it spawned (0 for calls that ran sequentially). The ratio
// goroutines / (calls * MaxWorkers) approximates worker-pool utilization.
var (
	statCalls      atomic.Int64
	statGoroutines atomic.Int64
	statSequential atomic.Int64
)

// Usage is a snapshot of the parallel-for utilization counters.
type Usage struct {
	Calls      int64 // For/ForIndexed invocations
	Goroutines int64 // goroutines spawned across all parallel calls
	Sequential int64 // calls that ran inline on the caller's goroutine
}

// Utilization returns spawned goroutines as a fraction of the maximum the
// worker cap would have allowed (1.0 = every call saturated the cap).
func (u Usage) Utilization(workers int) float64 {
	if u.Calls == 0 || workers <= 0 {
		return 0
	}
	return float64(u.Goroutines) / float64(u.Calls*int64(workers))
}

// Stats returns the current utilization counters.
func Stats() Usage {
	return Usage{
		Calls:      statCalls.Load(),
		Goroutines: statGoroutines.Load(),
		Sequential: statSequential.Load(),
	}
}

// ResetStats zeroes the utilization counters.
func ResetStats() {
	statCalls.Store(0)
	statGoroutines.Store(0)
	statSequential.Store(0)
}

// For executes fn over the half-open ranges that partition [0, n) into
// roughly equal chunks of at least grain items, running chunks on separate
// goroutines. fn must be safe for concurrent invocation on disjoint ranges.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	workers := maxWorkers
	if workers < 1 {
		workers = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks > workers {
		chunks = workers
	}
	statCalls.Add(1)
	if chunks <= 1 {
		statSequential.Add(1)
		fn(0, n)
		return
	}
	statGoroutines.Add(int64(chunks))
	chunk := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForIndexed is like For but also passes the zero-based chunk index, which
// callers use to select per-worker scratch buffers (e.g. the row-template
// ring buffers). The chunk count is returned by Chunks for preallocation.
func ForIndexed(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	nc, chunk := Chunks(n, grain)
	statCalls.Add(1)
	if nc <= 1 {
		statSequential.Add(1)
		fn(0, 0, n)
		return
	}
	statGoroutines.Add(int64(nc))
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}

// Chunks reports how many chunks ForIndexed will use for n items with the
// given grain, along with the chunk size.
func Chunks(n, grain int) (count, size int) {
	if n <= 0 {
		return 0, 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	workers := maxWorkers
	if workers < 1 {
		workers = 1
	}
	count = (n + grain - 1) / grain
	if count > workers {
		count = workers
	}
	if count < 1 {
		count = 1
	}
	size = (n + count - 1) / count
	return count, size
}
