// Package sysml is a Go reproduction of "On Optimizing Operator Fusion
// Plans for Large-Scale Machine Learning in SystemML" (Boehm et al., VLDB
// 2018): a declarative machine-learning runtime with a cost-based operator
// fusion optimizer.
//
// The public API exposes three layers:
//
//   - Matrices: dense/sparse FP64 matrices with multi-threaded kernels
//     (NewDenseMatrix, RandMatrix, ...).
//   - Sessions: execute DML-subset scripts; every statement block flows
//     through rewrites and the fusion optimizer before execution
//     (NewSession, Session.Run).
//   - Configuration: choose the plan selection policy — Base (no fusion),
//     Fused (hand-coded operators), Gen (cost-based optimizer, default),
//     GenFA / GenFNR (the fuse-all and fuse-no-redundancy heuristics) —
//     and inspect optimizer statistics.
//
// Quick start:
//
//	s := sysml.NewSession(sysml.DefaultConfig())
//	s.Bind("X", sysml.RandMatrix(10000, 100, 1, -1, 1, 7))
//	err := s.Run(`w = t(X) %*% (X %*% t(colSums(X / 100)))`)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results.
package sysml

import (
	"sysml/internal/codegen"
	"sysml/internal/dist"
	"sysml/internal/dml"
	"sysml/internal/matrix"
)

// Matrix is a two-dimensional FP64 matrix in dense or sparse (CSR)
// representation.
type Matrix = matrix.Matrix

// NewDenseMatrix returns an all-zero dense rows×cols matrix.
func NewDenseMatrix(rows, cols int) *Matrix { return matrix.NewDense(rows, cols) }

// NewDenseMatrixData wraps an existing row-major backing slice.
func NewDenseMatrixData(rows, cols int, data []float64) *Matrix {
	return matrix.NewDenseData(rows, cols, data)
}

// RandMatrix generates a random matrix with the given non-zero fraction
// and value range, deterministically from the seed.
func RandMatrix(rows, cols int, sparsity, lo, hi float64, seed int64) *Matrix {
	return matrix.Rand(rows, cols, sparsity, lo, hi, seed)
}

// Scalar wraps a float64 as a 1×1 matrix (how scalars flow through the
// runtime).
func Scalar(v float64) *Matrix { return matrix.NewScalar(v) }

// Config controls the fusion optimizer; construct with DefaultConfig and
// adjust fields.
type Config = codegen.Config

// Mode selects the plan selection policy.
type Mode = codegen.Mode

// Plan selection policies (paper §4-5 baselines).
const (
	ModeBase   = codegen.ModeBase
	ModeFused  = codegen.ModeFused
	ModeGen    = codegen.ModeGen
	ModeGenFA  = codegen.ModeGenFA
	ModeGenFNR = codegen.ModeGenFNR
)

// DefaultConfig returns the production configuration: the cost-based
// optimizer with plan cache and both pruning techniques enabled.
func DefaultConfig() Config { return codegen.DefaultConfig() }

// Session executes DML-subset scripts against bound inputs.
type Session = dml.Session

// NewSession creates a script session with the given configuration.
func NewSession(cfg Config) *Session { return dml.NewSession(cfg) }

// Stats aggregates codegen statistics (compiled plans, cache hits,
// evaluated plans, compile time).
type Stats = codegen.Stats

// Cluster is the simulated distributed backend; assign it to
// Session.Dist to execute large operators across simulated executors with
// broadcast/shuffle accounting.
type Cluster = dist.Cluster

// NewCluster returns a simulated cluster mirroring the paper's 6-executor
// setup.
func NewCluster() *Cluster { return dist.NewCluster() }
