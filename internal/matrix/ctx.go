package matrix

import "sysml/internal/par"

// Ctx is an execution context for the matrix kernels: the worker pool that
// runs their parallel regions and the buffer pool their allocations draw
// from. Kernels are methods on Ctx; the package-level functions (MatMult,
// Binary, ...) are wrappers over the zero Ctx.
//
// The zero Ctx is valid and uses the process-wide defaults (par.Default,
// DefaultPool) — a nil *par.Pool or *BufPool resolves to its default — so
// library code that predates engines needs no changes. Engines construct a
// Ctx from their own pools and thread it through the runtime, which is
// what keeps co-hosted engines' CPU caps and memory budgets independent.
// Ctx is a small value type: copy it freely.
type Ctx struct {
	Par *par.Pool // worker pool for parallel regions (nil = par.Default)
	Buf *BufPool  // buffer pool for allocations (nil = DefaultPool)
}

// NewDense returns an all-zero dense rows×cols matrix drawn from the
// context's buffer pool.
func (ctx Ctx) NewDense(rows, cols int) *Matrix { return ctx.Buf.NewDense(rows, cols) }

// NewDenseUninit returns a dense rows×cols matrix with arbitrary cell
// values (no zeroing pass); the caller must overwrite every cell before
// the matrix escapes.
func (ctx Ctx) NewDenseUninit(rows, cols int) *Matrix { return ctx.Buf.NewDenseUninit(rows, cols) }

// GetBuf returns a zeroed n-float64 scratch slice from the context's
// buffer pool; pair with PutBuf.
func (ctx Ctx) GetBuf(n int) []float64 { return ctx.Buf.Get(n) }

// PutBuf returns a scratch slice obtained from GetBuf to the context's
// buffer pool.
func (ctx Ctx) PutBuf(s []float64) { ctx.Buf.Put(s) }
