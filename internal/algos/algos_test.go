package algos

import (
	"bytes"
	"math"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/matrix"
)

// runModes executes an algorithm under every optimizer mode and checks the
// outputs agree with Base within floating-point slack. Fused chains change
// accumulation order, so the tolerance is loose but relative.
func runModes(t *testing.T, a Algorithm, rows, cols int, overrides map[string]float64) map[codegen.Mode]*matrix.Matrix {
	t.Helper()
	inputs := a.Gen(rows, cols, 42)
	results := map[codegen.Mode]*matrix.Matrix{}
	var ref *matrix.Matrix
	for _, mode := range []codegen.Mode{codegen.ModeBase, codegen.ModeFused,
		codegen.ModeGen, codegen.ModeGenFA, codegen.ModeGenFNR} {
		cfg := codegen.DefaultConfig()
		cfg.Mode = mode
		s, err := a.Run(cfg, inputs, overrides, nil, &bytes.Buffer{})
		if err != nil {
			t.Fatalf("%s/%v: %v", a.Name, mode, err)
		}
		out, err := s.Get(a.Outputs[0])
		if err != nil {
			t.Fatalf("%s/%v: missing output %s: %v", a.Name, mode, a.Outputs[0], err)
		}
		results[mode] = out
		if mode == codegen.ModeBase {
			ref = out
			continue
		}
		if !out.EqualsApprox(ref, 1e-4) {
			t.Errorf("%s/%v: output %s differs from Base", a.Name, mode, a.Outputs[0])
		}
	}
	return results
}

func TestL2SVM(t *testing.T) {
	runModes(t, L2SVM, 500, 10, map[string]float64{"maxiter": 5})
	// Convergence sanity: objective decreases vs initial hinge loss.
	inputs := L2SVM.Gen(500, 10, 1)
	cfg := codegen.DefaultConfig()
	s, err := L2SVM.Run(cfg, inputs, map[string]float64{"maxiter": 10}, nil, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := s.Scalar("obj")
	if math.IsNaN(obj) || obj <= 0 || obj > 500 {
		t.Fatalf("implausible L2SVM objective %v", obj)
	}
	w, _ := s.Get("w")
	if w.Rows != 10 || w.Cols != 1 {
		t.Fatal("w dims")
	}
}

func TestMLogreg(t *testing.T) {
	runModes(t, MLogreg, 400, 12, map[string]float64{"maxiter": 3, "inneriter": 4, "k": 3})
}

func TestGLM(t *testing.T) {
	runModes(t, GLM, 400, 10, map[string]float64{"maxiter": 3, "inneriter": 4})
	inputs := GLM.Gen(600, 10, 2)
	cfg := codegen.DefaultConfig()
	s, err := GLM.Run(cfg, inputs, map[string]float64{"maxiter": 8}, nil, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := s.Scalar("dev")
	// Deviance must beat the null model (2n·ln2 ≈ 832 for n=600).
	if math.IsNaN(dev) || dev <= 0 || dev >= 2*600*math.Ln2 {
		t.Fatalf("implausible GLM deviance %v", dev)
	}
}

func TestKMeans(t *testing.T) {
	runModes(t, KMeans, 500, 8, map[string]float64{"maxiter": 5})
	inputs := KMeans.Gen(500, 8, 3)
	cfg := codegen.DefaultConfig()
	s, err := KMeans.Run(cfg, inputs, map[string]float64{"maxiter": 10}, nil, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	wcss, _ := s.Scalar("wcss")
	if math.IsNaN(wcss) || wcss < 0 {
		t.Fatalf("implausible KMeans WCSS %v", wcss)
	}
	c, _ := s.Get("C")
	if c.Rows != 5 || c.Cols != 8 {
		t.Fatal("centroid dims")
	}
}

func TestALSCG(t *testing.T) {
	runModes(t, ALSCG, 200, 150, map[string]float64{"maxiter": 2, "rank": 4})
	// Loss decreases over iterations.
	inputs := ALSCG.Gen(200, 150, 5)
	cfg := codegen.DefaultConfig()
	one, err := ALSCG.Run(cfg, inputs, map[string]float64{"maxiter": 1, "rank": 4}, nil, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	four, err := ALSCG.Run(cfg, inputs, map[string]float64{"maxiter": 4, "rank": 4}, nil, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := one.Scalar("loss")
	l4, _ := four.Scalar("loss")
	if math.IsNaN(l1) || math.IsNaN(l4) || l4 > l1 {
		t.Fatalf("ALS-CG loss did not decrease: %v -> %v", l1, l4)
	}
	// The update rule must compile to sparsity-exploiting Outer operators.
	s := one
	if s.Stats.CPlansConstructed == 0 {
		t.Fatal("no fused operators constructed for ALS-CG")
	}
}

func TestAutoEncoder(t *testing.T) {
	runModes(t, AutoEncoder, 1100, 20,
		map[string]float64{"epochs": 1, "batch": 256, "H1": 16, "H2": 2})
	inputs := AutoEncoder.Gen(1100, 20, 6)
	cfg := codegen.DefaultConfig()
	s, err := AutoEncoder.Run(cfg, inputs,
		map[string]float64{"epochs": 2, "batch": 256, "H1": 16, "H2": 2}, nil, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := s.Scalar("obj")
	if math.IsNaN(obj) || obj <= 0 {
		t.Fatalf("implausible AutoEncoder objective %v", obj)
	}
}
