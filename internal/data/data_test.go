package data

import (
	"math"
	"testing"

	"sysml/internal/matrix"
)

func TestAirlineLikeShapeAndCardinality(t *testing.T) {
	m := AirlineLike(5000, 1)
	if m.Rows != 5000 || m.Cols != 29 || m.IsSparse() {
		t.Fatalf("airline shape %dx%d sparse=%v", m.Rows, m.Cols, m.IsSparse())
	}
	// Early columns have low cardinality (CLA-friendly).
	seen := map[float64]bool{}
	for i := 0; i < m.Rows; i++ {
		seen[m.At(i, 0)] = true
	}
	if len(seen) > 40 {
		t.Fatalf("column 0 cardinality %d, expected low", len(seen))
	}
	// Deterministic by seed.
	if !AirlineLike(500, 9).EqualsApprox(AirlineLike(500, 9), 0) {
		t.Fatal("not deterministic")
	}
}

func TestMnistLikeSparsityAndValues(t *testing.T) {
	m := MnistLike(2000, 2)
	if m.Cols != 784 || !m.IsSparse() {
		t.Fatalf("mnist shape %dx%d sparse=%v", m.Rows, m.Cols, m.IsSparse())
	}
	sp := m.Sparsity()
	if sp < 0.2 || sp > 0.3 {
		t.Fatalf("sparsity %v, want ~0.25", sp)
	}
	for _, v := range m.Sparse().Values[:100] {
		if v <= 0 || v > 1 {
			t.Fatalf("intensity %v out of (0,1]", v)
		}
	}
}

func TestRatingsGenerators(t *testing.T) {
	n := NetflixLike(3000, 1000, 3)
	sp := n.Sparsity()
	if sp < 0.004 || sp > 0.04 {
		t.Fatalf("netflix sparsity %v, want ~0.012", sp)
	}
	for _, v := range n.Sparse().Values[:50] {
		if v < 1 || v > 5 || v != math.Trunc(v) {
			t.Fatalf("rating %v not in 1..5", v)
		}
	}
	a := AmazonLike(5000, 4000, 4)
	if got := a.Sparsity(); got > 0.01 {
		t.Fatalf("amazon sparsity %v, want ultra-sparse", got)
	}
}

func TestLabels(t *testing.T) {
	x := Dense(2000, 10, 5)
	y := BinaryLabels(x, 0, 6)
	pos, neg := 0, 0
	for i := 0; i < y.Rows; i++ {
		switch y.At(i, 0) {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("label %v not in {-1, 1}", y.At(i, 0))
		}
	}
	if pos < 200 || neg < 200 {
		t.Fatalf("degenerate label split %d/%d", pos, neg)
	}
	z := ZeroOneLabels(y)
	for i := 0; i < z.Rows; i++ {
		v := z.At(i, 0)
		if v != 0 && v != 1 {
			t.Fatalf("0/1 label %v", v)
		}
		if (v == 1) != (y.At(i, 0) == 1) {
			t.Fatal("0/1 conversion mismatch")
		}
	}
	// Noise flips some labels.
	noisy := BinaryLabels(x, 0.3, 6)
	flips := 0
	for i := 0; i < y.Rows; i++ {
		if noisy.At(i, 0) != y.At(i, 0) {
			flips++
		}
	}
	if flips < 200 {
		t.Fatalf("noise produced only %d flips", flips)
	}
}

func TestMultiClassIndicator(t *testing.T) {
	x := Dense(1000, 8, 7)
	ind := MultiClassIndicator(x, 4, 8)
	if ind.Cols != 4 {
		t.Fatalf("indicator cols %d", ind.Cols)
	}
	counts := make([]int, 4)
	for i := 0; i < ind.Rows; i++ {
		ones := 0
		for j := 0; j < 4; j++ {
			if v := ind.At(i, j); v == 1 {
				ones++
				counts[j]++
			} else if v != 0 {
				t.Fatalf("indicator value %v", v)
			}
		}
		if ones != 1 {
			t.Fatalf("row %d has %d ones", i, ones)
		}
	}
	if rs := matrix.Sum(ind); rs != 1000 {
		t.Fatalf("indicator sum %v", rs)
	}
}
