// Package serve is the multi-tenant scoring frontend: a long-lived Engine
// that owns what used to be process-globals — a worker pool, a buffer
// pool, and a sharded compiled-plan cache — plus a per-tenant session pool
// with quotas, and an HTTP server (/v1/run) with request micro-batching
// and memory-pressure load shedding.
//
// The Engine is the isolation unit: two engines in one process share
// nothing mutable, so a serving binary can dedicate one engine per service
// tier (different worker caps, memory budgets, cache sizes) and run them
// concurrently. Tenants within an engine share its pools and compiled
// plans but keep isolated accounting (plan-cache views) and quotas.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/dml"
	"sysml/internal/matrix"
	"sysml/internal/obs"
	"sysml/internal/par"
)

// TenantQuota bounds one tenant's slice of an engine.
type TenantQuota struct {
	// MaxSessions caps concurrent in-flight sessions (0 = DefaultMaxSessions).
	MaxSessions int
	// MaxPlans, when > 0, gives the tenant a private bounded plan cache of
	// that many compiled operators instead of a view over the engine's
	// shared cache: the tenant's plans can never evict another tenant's.
	MaxPlans int
	// MemBytes, when > 0, gives the tenant a private buffer pool and sheds
	// the tenant's requests while its live (handed-out, unreturned) bytes
	// exceed this budget.
	MemBytes int64
}

// DefaultMaxSessions is the per-tenant concurrent-session cap when the
// quota leaves MaxSessions zero.
const DefaultMaxSessions = 8

// Engine owns the execution resources a serving process used to hold in
// process-globals. The zero Engine is not usable; construct with NewEngine.
type Engine struct {
	cfg   codegen.Config
	par   *par.Pool       // nil = process-wide par.Default
	alloc *matrix.BufPool // nil = process-wide matrix.DefaultPool
	cache *codegen.PlanCache
	// shareSessions: NewSession hands out views of the engine cache rather
	// than private per-session caches (set by WithSharedPlanCache).
	shareSessions bool
	budget        int64 // engine-wide live-bytes shed threshold (0 = never shed)
	quota         TenantQuota
	sloTarget     time.Duration // per-request total-latency SLO (0 = no SLO)

	mu      sync.Mutex
	tenants map[string]*Tenant

	requests atomic.Int64
	shed     atomic.Int64

	// obsm holds the engine's serving instruments: per-tenant latency
	// histograms (queue/exec/total, labeled by tenant) plus SLO burn
	// counters. Engine.Metrics folds the remaining engine state (request
	// counters, plan cache, pools) into its snapshot.
	obsm *obs.Metrics

	// calib, when non-nil (WithCalibration), is the engine-level shared
	// cost-model calibrator: every tenant session streams its execution
	// observations into it and adopts its fitted constants. One engine =
	// one machine profile.
	calib *codegen.Calibrator
	// calibPath, when set, is where SaveProfile persists the fitted profile.
	calibPath string
}

// EngineOption configures an Engine at construction time.
type EngineOption func(*Engine)

// WithMaxWorkers gives the engine a private worker pool capped at n
// goroutines (n <= 0 means GOMAXPROCS). Without it the engine schedules on
// the process-wide default pool.
func WithMaxWorkers(n int) EngineOption {
	return func(e *Engine) { e.par = par.NewPool(n) }
}

// WithMemoryBudget gives the engine a private buffer pool and a live-bytes
// budget: while more than budget bytes of pooled buffers are handed out
// and unreturned, the engine's server sheds new requests (429).
func WithMemoryBudget(bytes int64) EngineOption {
	return func(e *Engine) {
		e.alloc = matrix.NewBufPool(bytes)
		e.budget = bytes
	}
}

// WithTenantQuota sets the default quota applied to tenants that are not
// registered explicitly via Engine.TenantWithQuota.
func WithTenantQuota(q TenantQuota) EngineOption {
	return func(e *Engine) { e.quota = q }
}

// WithSharedPlanCache sizes the engine's shared compiled-plan cache:
// maxEntries total (0 = unbounded) split across shards lock domains, with
// a plan admitted on its admitAfter-th compile (1 = always). It also makes
// Engine.NewSession hand out views of this cache, so direct sessions share
// compiled operators with the serving path.
func WithSharedPlanCache(maxEntries, shards, admitAfter int) EngineOption {
	return func(e *Engine) {
		e.cache = codegen.NewSharedPlanCache(e.cfg.PlanCache, maxEntries, shards, admitAfter)
		e.shareSessions = true
	}
}

// WithConfig replaces the optimizer configuration tenant sessions run
// under (default DefaultConfig). Apply before WithSharedPlanCache.
func WithConfig(cfg codegen.Config) EngineOption {
	return func(e *Engine) { e.cfg = cfg }
}

// WithCalibration attaches an engine-level cost-model calibrator shared by
// every tenant session. When path is non-empty, a valid non-stale profile
// at that location seeds the constants (an unreadable, corrupt, or stale
// profile is ignored — the calibrator starts from the paper defaults and
// re-measures); the path is also the default SaveProfile destination.
func WithCalibration(path string) EngineOption {
	return func(e *Engine) {
		e.calib = codegen.NewCalibrator(e.cfg.Costs)
		e.calibPath = path
		if path != "" {
			if p, err := codegen.LoadProfile(path); err == nil {
				e.calib.ApplyProfile(p)
			}
		}
	}
}

// WithSLOTarget sets a per-request total-latency SLO. Requests whose
// arrival-to-completion latency exceeds target increment the tenant's SLO
// burn counter (TenantStats.SLOBurn and the serve.slo.burn metric); zero
// disables SLO accounting.
func WithSLOTarget(target time.Duration) EngineOption {
	return func(e *Engine) { e.sloTarget = target }
}

// NewEngine builds an engine. With no options it delegates to the process
// defaults (worker pool, buffer pool), never sheds, and gives tenants
// views over a fresh shared plan cache — behaviorally a superset of the
// old one-global-everything layout, but instance-scoped.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{cfg: codegen.DefaultConfig(), tenants: map[string]*Tenant{}, obsm: obs.NewMetrics()}
	for _, opt := range opts {
		opt(e)
	}
	if e.cache == nil {
		e.cache = codegen.NewSharedPlanCache(e.cfg.PlanCache, e.cfg.PlanCacheSize, 8, 1)
	}
	return e
}

// MaxWorkers reports the worker cap of the engine's pool (the process
// default's cap when the engine has no private pool).
func (e *Engine) MaxWorkers() int { return e.par.MaxWorkers() }

// MemoryBudget reports the live-bytes shed threshold (0 = shedding off).
func (e *Engine) MemoryBudget() int64 { return e.budget }

// Cache returns the engine's shared plan cache (its aggregate counters
// span every tenant view).
func (e *Engine) Cache() *codegen.PlanCache { return e.cache }

// LiveBytes reports pooled bytes currently handed out and unreturned
// across the engine pool and every tenant's private pool — the admission
// gauge behind load shedding.
func (e *Engine) LiveBytes() int64 {
	live := e.alloc.LiveBytes()
	e.mu.Lock()
	for _, t := range e.tenants {
		if t.alloc != e.alloc {
			live += t.alloc.LiveBytes()
		}
	}
	e.mu.Unlock()
	if live < 0 {
		live = 0
	}
	return live
}

// OverBudget reports whether the engine should shed new work.
func (e *Engine) OverBudget() bool { return e.budget > 0 && e.LiveBytes() > e.budget }

// NewSession creates a standalone script session on this engine's worker
// and buffer pools. Under WithSharedPlanCache the session gets a view of
// the engine's plan cache (shared operators, private counters); otherwise
// a private cache per the engine config, exactly like dml.NewSession.
func (e *Engine) NewSession(cfg codegen.Config) *dml.Session {
	s := dml.NewSession(cfg)
	s.Par = e.par
	s.Alloc = e.alloc
	if e.shareSessions {
		s.Cache = e.cache.View()
	}
	if e.calib != nil {
		s.Calib = e.calib
		s.Config.Costs = e.calib.Model()
	}
	return s
}

// Calibrator returns the engine's shared cost-model calibrator (nil
// without WithCalibration).
func (e *Engine) Calibrator() *codegen.Calibrator { return e.calib }

// SaveProfile persists the calibrator's current constants to path (the
// WithCalibration path when path is empty). It is an error without an
// attached calibrator or when neither path is set.
func (e *Engine) SaveProfile(path string) error {
	if e.calib == nil {
		return errors.New("serve: engine has no calibrator (use WithCalibration)")
	}
	if path == "" {
		path = e.calibPath
	}
	if path == "" {
		return errors.New("serve: no profile path configured")
	}
	return e.calib.Profile().Save(path)
}

// Tenant returns the named tenant, creating it under the engine's default
// quota on first use.
func (e *Engine) Tenant(name string) *Tenant {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.tenants[name]; ok {
		return t
	}
	t := e.newTenantLocked(name, e.quota)
	e.tenants[name] = t
	return t
}

// TenantWithQuota registers (or re-quotas an idle) tenant with an explicit
// quota. Re-quotaing a tenant with in-flight sessions returns an error.
func (e *Engine) TenantWithQuota(name string, q TenantQuota) (*Tenant, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.tenants[name]; ok {
		if old.Active() > 0 {
			return nil, fmt.Errorf("serve: tenant %q has active sessions", name)
		}
	}
	t := e.newTenantLocked(name, q)
	e.tenants[name] = t
	return t, nil
}

func (e *Engine) newTenantLocked(name string, q TenantQuota) *Tenant {
	if q.MaxSessions <= 0 {
		q.MaxSessions = DefaultMaxSessions
	}
	t := &Tenant{
		name:      name,
		eng:       e,
		quota:     q,
		alloc:     e.alloc,
		cache:     e.cache.View(),
		slots:     make(chan struct{}, q.MaxSessions),
		histQueue: obs.LabeledName("serve.request.queue.seconds", "tenant", name),
		histExec:  obs.LabeledName("serve.request.exec.seconds", "tenant", name),
		histTotal: obs.LabeledName("serve.request.total.seconds", "tenant", name),
	}
	if q.MemBytes > 0 {
		t.alloc = matrix.NewBufPool(q.MemBytes)
	}
	if q.MaxPlans > 0 {
		t.cache = codegen.NewSharedPlanCache(e.cfg.PlanCache, q.MaxPlans, 1, 1)
	}
	return t
}

// Tenants snapshots per-tenant serving statistics, keyed by tenant name.
func (e *Engine) Tenants() map[string]TenantStats {
	e.mu.Lock()
	names := make([]*Tenant, 0, len(e.tenants))
	for _, t := range e.tenants {
		names = append(names, t)
	}
	e.mu.Unlock()
	out := make(map[string]TenantStats, len(names))
	for _, t := range names {
		out[t.name] = t.Stats()
	}
	return out
}

// SLOTarget reports the per-request total-latency SLO (0 = no SLO).
func (e *Engine) SLOTarget() time.Duration { return e.sloTarget }

// Metrics snapshots the engine's full serving instrument set in one
// obs.Snapshot: per-tenant latency histograms and SLO burn counters (from
// the engine registry), engine-wide request/shed counters, shared
// plan-cache counters, buffer-pool usage, and capacity gauges. The
// snapshot renders as JSON, human text (Snapshot.String), or Prometheus
// exposition (obs.WritePrometheus).
func (e *Engine) Metrics() obs.Snapshot {
	snap := e.obsm.Snapshot()
	snap.Counters["serve.requests"] = e.Requests()
	snap.Counters["serve.shed"] = e.Shed()
	hits, misses, evictions := e.cache.TotalCounters()
	snap.Counters["plancache.hits"] = hits
	snap.Counters["plancache.misses"] = misses
	snap.Counters["plancache.evictions"] = evictions
	snap.Counters["plancache.invalidations"] = e.cache.TotalInvalidations()
	if e.calib != nil {
		st := e.calib.State()
		snap.Counters["calib.samples"] = st.Samples
		snap.Counters["calib.skipped"] = st.Skipped
		snap.Counters["calib.refits"] = st.Refits
		snap.Counters["calib.gen"] = int64(st.Gen)
		snap.Gauges["calib.read_bw"] = st.Model.ReadBW
		snap.Gauges["calib.write_bw"] = st.Model.WriteBW
		snap.Gauges["calib.flop_rate"] = st.Model.ComputeBW
		snap.Gauges["calib.broadcast_bw"] = st.Model.BroadcastBW
	}
	snap.Gauges["plancache.size"] = float64(e.cache.Size())
	byClass, chunkMisses := e.cache.ChunkCounters()
	for class, n := range byClass {
		snap.Counters["codegen.chunk.hit."+class] = n
	}
	snap.Counters["codegen.chunk.miss"] = chunkMisses
	pu := e.alloc.Stats()
	snap.Counters["pool.gets"] = pu.Gets
	snap.Counters["pool.hits"] = pu.Hits
	snap.Counters["pool.misses"] = pu.Misses
	snap.Counters["pool.puts"] = pu.Puts
	snap.Counters["pool.discards"] = pu.Discards
	snap.Gauges["pool.bytes.parked"] = float64(pu.BytesParked)
	snap.Gauges["pool.bytes.live"] = float64(e.LiveBytes())
	snap.Gauges["pool.bytes.budget"] = float64(e.budget)
	snap.Gauges["par.workers"] = float64(e.MaxWorkers())
	e.mu.Lock()
	tenants := make([]*Tenant, 0, len(e.tenants))
	for _, t := range e.tenants {
		tenants = append(tenants, t)
	}
	e.mu.Unlock()
	snap.Gauges["serve.tenants"] = float64(len(tenants))
	for _, t := range tenants {
		snap.Counters[obs.LabeledName("serve.tenant.requests", "tenant", t.name)] = t.requests.Load()
		snap.Counters[obs.LabeledName("serve.tenant.shed", "tenant", t.name)] = t.shed.Load()
		snap.Counters[obs.LabeledName("serve.tenant.batched", "tenant", t.name)] = t.batched.Load()
		snap.Gauges[obs.LabeledName("serve.tenant.active", "tenant", t.name)] = float64(t.Active())
	}
	return snap
}

// Requests and Shed report engine-wide accepted and shed request counts.
func (e *Engine) Requests() int64 { return e.requests.Load() }

// Shed reports requests rejected for capacity (memory pressure or a full
// tenant session pool) across the engine's lifetime.
func (e *Engine) Shed() int64 { return e.shed.Load() }

// Close drains every tenant's pooled idle sessions back to the buffer
// pool. In-flight sessions are unaffected (their Release returns slots as
// usual); the engine may keep serving afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	tenants := make([]*Tenant, 0, len(e.tenants))
	for _, t := range e.tenants {
		tenants = append(tenants, t)
	}
	e.mu.Unlock()
	for _, t := range tenants {
		t.drainIdle()
	}
}

// ErrTenantBusy is returned by Tenant.Acquire when the tenant is at its
// concurrent-session quota for the whole wait window.
var ErrTenantBusy = errors.New("serve: tenant at session quota")

// ErrTenantOverBudget is returned by Tenant.Acquire when the tenant's
// private pool is over its memory quota.
var ErrTenantOverBudget = errors.New("serve: tenant over memory budget")

// Tenant is one named principal's slice of an engine: a quota-bounded pool
// of reusable sessions plus isolated plan-cache accounting.
type Tenant struct {
	name  string
	eng   *Engine
	quota TenantQuota
	alloc *matrix.BufPool    // engine pool, or private under a MemBytes quota
	cache *codegen.PlanCache // engine-cache view, or private under MaxPlans

	slots chan struct{} // session-concurrency semaphore (cap MaxSessions)

	mu   sync.Mutex
	idle []*dml.Session

	requests atomic.Int64
	shed     atomic.Int64
	batched  atomic.Int64 // requests that rode a batch behind a leader
	sloBurn  atomic.Int64 // requests that blew the engine's SLO target

	// histQueue/histExec/histTotal are the tenant's labeled latency
	// instrument names in the engine registry, precomputed once.
	histQueue, histExec, histTotal string
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Quota returns the tenant's quota.
func (t *Tenant) Quota() TenantQuota { return t.quota }

// Active reports sessions currently acquired and not yet released.
func (t *Tenant) Active() int { return len(t.slots) }

// LiveBytes reports the tenant's pool-live bytes (the engine gauge when
// the tenant has no private pool).
func (t *Tenant) LiveBytes() int64 { return t.alloc.LiveBytes() }

// OverBudget reports whether the tenant's private memory quota is blown.
func (t *Tenant) OverBudget() bool {
	return t.quota.MemBytes > 0 && t.alloc.LiveBytes() > t.quota.MemBytes
}

// Acquire checks out a session, waiting up to wait for a concurrency slot.
// The session runs on the engine's worker pool, the tenant's buffer pool,
// and the tenant's plan-cache view; its environment is clean. Callers must
// Release it. Errors: ErrTenantOverBudget (immediately, memory quota) or
// ErrTenantBusy (after the wait window, session quota).
func (t *Tenant) Acquire(wait time.Duration) (*dml.Session, error) {
	return t.acquire(wait, true)
}

// acquire is Acquire with explicit accounting: when count is false the
// caller owns request/shed counting (the batch executor counts every job
// it carries — leader and followers alike — so per-tenant totals stay
// exact under micro-batching).
func (t *Tenant) acquire(wait time.Duration, count bool) (*dml.Session, error) {
	if t.OverBudget() {
		if count {
			t.shed.Add(1)
			t.eng.shed.Add(1)
		}
		return nil, ErrTenantOverBudget
	}
	select {
	case t.slots <- struct{}{}:
	default:
		if wait <= 0 {
			if count {
				t.shed.Add(1)
				t.eng.shed.Add(1)
			}
			return nil, ErrTenantBusy
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case t.slots <- struct{}{}:
		case <-timer.C:
			if count {
				t.shed.Add(1)
				t.eng.shed.Add(1)
			}
			return nil, ErrTenantBusy
		}
	}
	if count {
		t.requests.Add(1)
		t.eng.requests.Add(1)
	}
	t.mu.Lock()
	if n := len(t.idle); n > 0 {
		s := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.mu.Unlock()
		return s, nil
	}
	t.mu.Unlock()
	s := dml.NewSession(t.eng.cfg)
	s.Par = t.eng.par
	s.Alloc = t.alloc
	s.Cache = t.cache
	if t.eng.calib != nil {
		s.Calib = t.eng.calib
		s.Config.Costs = t.eng.calib.Model()
	}
	return s, nil
}

// Release resets the session (its pooled intermediates return to the
// tenant's buffer pool; the block-plan cache stays warm), parks it for
// reuse, and frees the concurrency slot.
func (t *Tenant) Release(s *dml.Session) {
	s.Reset()
	t.mu.Lock()
	if len(t.idle) < cap(t.slots) {
		t.idle = append(t.idle, s)
	}
	t.mu.Unlock()
	<-t.slots
}

// observe records one completed request's latency split into the tenant's
// labeled histograms and the engine-wide total histogram, and burns the
// SLO counter when total latency exceeds the engine target.
func (t *Tenant) observe(queue, exec, total time.Duration) {
	m := t.eng.obsm
	m.Observe(t.histQueue, queue.Seconds())
	m.Observe(t.histExec, exec.Seconds())
	m.Observe(t.histTotal, total.Seconds())
	m.Observe("serve.request.total.seconds", total.Seconds())
	if target := t.eng.sloTarget; target > 0 && total > target {
		t.sloBurn.Add(1)
		m.Inc(obs.LabeledName("serve.slo.burn", "tenant", t.name))
	}
}

func (t *Tenant) drainIdle() {
	t.mu.Lock()
	idle := t.idle
	t.idle = nil
	t.mu.Unlock()
	for _, s := range idle {
		s.Close()
	}
}

// TenantStats is a point-in-time snapshot of one tenant's serving state.
type TenantStats struct {
	Requests       int64 `json:"requests"`
	Shed           int64 `json:"shed"`
	Batched        int64 `json:"batched"`
	ActiveSessions int   `json:"active_sessions"`
	LiveBytes      int64 `json:"live_bytes"`
	CacheHits      int64 `json:"plancache_hits"`
	CacheMisses    int64 `json:"plancache_misses"`
	// CacheInvalidations counts compiled operators this tenant's
	// re-optimizations removed from the shared store.
	CacheInvalidations int64 `json:"plancache_invalidations"`
	// P50MS/P95MS/P99MS estimate the tenant's total-latency quantiles in
	// milliseconds over the engine's lifetime (bucket interpolation; 0
	// until the tenant has served a request).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// SLOBurn counts requests over the engine's SLO target (0 without one).
	SLOBurn int64 `json:"slo_burn"`
}

// Stats snapshots the tenant: request/shed/batch counts, in-flight
// sessions, pool-live bytes, the tenant's own plan-cache hit/miss
// counters (isolated per tenant even though the store is shared), and
// total-latency quantiles with SLO burn.
func (t *Tenant) Stats() TenantStats {
	hits, misses, _ := t.cache.Counters()
	lat := t.eng.obsm.Hist(t.histTotal).Snapshot()
	return TenantStats{
		Requests:           t.requests.Load(),
		Shed:               t.shed.Load(),
		Batched:            t.batched.Load(),
		ActiveSessions:     t.Active(),
		LiveBytes:          t.LiveBytes(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheInvalidations: t.cache.Invalidations(),
		P50MS:          lat.Quantile(0.50) * 1e3,
		P95MS:          lat.Quantile(0.95) * 1e3,
		P99MS:          lat.Quantile(0.99) * 1e3,
		SLOBurn:        t.sloBurn.Load(),
	}
}
