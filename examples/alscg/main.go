// ALS-CG: low-rank matrix factorization on a sparse ratings matrix. The
// update rule contains the paper's Expression (1) pattern
// ((X != 0) * (U %*% t(V))) %*% V, which the optimizer compiles into a
// sparsity-exploiting Outer-product template — the difference between
// O(nnz·rank) and O(n·m·rank) work per iteration.
package main

import (
	"fmt"
	"log"
	"time"

	"sysml"
)

const script = `
	U = U0
	V = V0
	Xt = t(X)
	for (outer in 1:3) {
		# CG update of U with V fixed
		R = X %*% V - ((X != 0) * (U %*% t(V))) %*% V - lambda * U
		S = R
		rsold = sum(R * R)
		for (i in 1:rank) {
			HS = ((X != 0) * (S %*% t(V))) %*% V + lambda * S
			alpha = rsold / max(sum(S * HS), 1e-12)
			U = U + alpha * S
			R = R - alpha * HS
			rsnew = sum(R * R)
			S = R + (rsnew / max(rsold, 1e-12)) * S
			rsold = rsnew
		}
		# CG update of V with U fixed
		R2 = Xt %*% U - ((Xt != 0) * (V %*% t(U))) %*% U - lambda * V
		S2 = R2
		rsold2 = sum(R2 * R2)
		for (i in 1:rank) {
			HS2 = ((Xt != 0) * (S2 %*% t(U))) %*% U + lambda * S2
			alpha2 = rsold2 / max(sum(S2 * HS2), 1e-12)
			V = V + alpha2 * S2
			R2 = R2 - alpha2 * HS2
			rsnew2 = sum(R2 * R2)
			S2 = R2 + (rsnew2 / max(rsold2, 1e-12)) * S2
			rsold2 = rsnew2
		}
		loss = sum(X ^ 2) - 2 * sum(X * (U %*% t(V))) + sum((X != 0) * (U %*% t(V)) ^ 2)
		print("iter " + outer + ": loss = " + loss)
	}
`

func run(mode sysml.Mode, rows, cols, rank int) time.Duration {
	s := sysml.NewSession(sysml.WithMode(mode))
	// A sparse ratings-like matrix (0.5% filled, values 1..5).
	x := sysml.RandMatrix(rows, cols, 0.005, 1, 6, 42)
	s.Bind("X", x)
	s.Bind("U0", sysml.RandMatrix(rows, rank, 1, 0.01, 0.1, 1))
	s.Bind("V0", sysml.RandMatrix(cols, rank, 1, 0.01, 0.1, 2))
	s.BindScalar("lambda", 1e-3)
	s.BindScalar("rank", float64(rank))
	start := time.Now()
	if err := s.Run(script); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}

func main() {
	rows, cols, rank := 3000, 2000, 10
	fmt.Printf("factorizing %dx%d sparse matrix at rank %d\n\n", rows, cols, rank)
	genTime := run(sysml.ModeGen, rows, cols, rank)
	fmt.Printf("\nGen (sparsity-exploiting Outer templates): %v\n", genTime)
	baseTime := run(sysml.ModeBase, rows, cols, rank)
	fmt.Printf("\nBase (dense UV' intermediates):            %v\n", baseTime)
	fmt.Printf("\nspeedup: %.1fx\n", float64(baseTime)/float64(genTime))
}
