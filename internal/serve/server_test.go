package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, e *Engine, opts ...ServerOption) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", e, opts...)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func postRun(t *testing.T, srv *Server, req *RunRequest) (*http.Response, *RunResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+srv.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, &rr
}

// TestServerRunEndToEnd: inline data in, matrix and scalar outputs back.
func TestServerRunEndToEnd(t *testing.T) {
	srv := startServer(t, NewEngine())
	resp, rr := postRun(t, srv, &RunRequest{
		Tenant: "t1",
		Script: "Y = X %*% X\ns = sum(X)",
		Inputs: map[string]InputSpec{
			"X": {Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}},
		},
		Outputs: []string{"Y", "s"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := []float64{7, 10, 15, 22}
	y := rr.Outputs["Y"]
	if y.Rows != 2 || y.Cols != 2 {
		t.Fatalf("Y is %dx%d", y.Rows, y.Cols)
	}
	for i, v := range want {
		if math.Abs(y.Data[i]-v) > 1e-12 {
			t.Errorf("Y[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
	s := rr.Outputs["s"]
	if s.Rows != 1 || s.Cols != 1 || math.Abs(s.Data[0]-10) > 1e-12 {
		t.Errorf("s = %+v, want scalar 10", s)
	}
}

// TestServerScriptError: script failures surface as 400 with a message.
func TestServerScriptError(t *testing.T) {
	srv := startServer(t, NewEngine())
	resp, _ := postRun(t, srv, &RunRequest{Script: "Y = Z %*% Z"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestServerShedsOverBudget: live pooled bytes over the engine budget turn
// /v1/run away with 429 + Retry-After until memory comes back.
func TestServerShedsOverBudget(t *testing.T) {
	e := NewEngine(WithMemoryBudget(64 << 10))
	srv := startServer(t, e)
	req := &RunRequest{
		Tenant:  "t1",
		Script:  "s = sum(X)",
		Inputs:  map[string]InputSpec{"X": {Rows: 8, Cols: 8, Rand: &RandSpec{Sparsity: 1, Lo: -1, Hi: 1, Seed: 1}}},
		Outputs: []string{"s"},
	}
	// Pin pooled memory past the budget: 16 K floats = 128 KiB > 64 KiB.
	pinned := e.alloc.Get(16 << 10)
	resp, _ := postRun(t, srv, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d under memory pressure, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if e.Shed() == 0 {
		t.Error("shed not counted")
	}
	e.alloc.Put(pinned)
	resp, _ = postRun(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after memory recovered, want 200", resp.StatusCode)
	}
}

// TestServerShedsAtSessionQuota: a tenant at its concurrency quota gets
// 429 after the queue wait, not an oversubscribed session.
func TestServerShedsAtSessionQuota(t *testing.T) {
	e := NewEngine(WithTenantQuota(TenantQuota{MaxSessions: 1}))
	srv := startServer(t, e, WithQueueWait(5*time.Millisecond), WithBatchWindow(0))
	tn := e.Tenant("t1")
	held, err := tn.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := postRun(t, srv, &RunRequest{Tenant: "t1", Script: "x = 1 + 1"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with quota exhausted, want 429", resp.StatusCode)
	}
	tn.Release(held)
	resp, _ = postRun(t, srv, &RunRequest{Tenant: "t1", Script: "x = 1 + 1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after release, want 200", resp.StatusCode)
	}
}

// TestServerMicroBatching: concurrent same-plan requests coalesce behind
// one leader and all complete correctly.
func TestServerMicroBatching(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(30*time.Millisecond))
	const clients = 8
	req := func(seed int64) *RunRequest {
		return &RunRequest{
			Tenant: "t1",
			Script: "s = sum(X * X)",
			Inputs: map[string]InputSpec{
				"X": {Rows: 64, Cols: 16, Rand: &RandSpec{Sparsity: 1, Lo: -1, Hi: 1, Seed: seed}},
			},
			Outputs: []string{"s"},
		}
	}
	var wg sync.WaitGroup
	results := make([]*RunResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, rr := postRun(t, srv, req(int64(i)))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			results[i] = rr
		}(i)
	}
	wg.Wait()
	maxBatchSeen, leaders := 0, 0
	for i, rr := range results {
		if rr == nil {
			continue
		}
		if rr.Outputs["s"].Data[0] <= 0 {
			t.Errorf("client %d: sum(X*X) = %g, want > 0", i, rr.Outputs["s"].Data[0])
		}
		if rr.Batch > maxBatchSeen {
			maxBatchSeen = rr.Batch
		}
		if rr.Leader {
			leaders++
		}
	}
	if maxBatchSeen < 2 {
		t.Errorf("no request rode a batch (max batch %d of %d concurrent)", maxBatchSeen, clients)
	}
	if leaders == clients {
		t.Error("every request led its own batch; coalescing never happened")
	}
	if st := e.Tenant("t1").Stats(); st.Batched == 0 {
		t.Error("tenant batched counter did not move")
	}
}

// TestServerGracefulDrain: Close must let an in-flight request finish
// instead of cutting its connection.
func TestServerGracefulDrain(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(0))
	slow := &RunRequest{
		Tenant: "t1",
		Script: "acc = 0\nfor (i in 1:40) {\n acc = acc + sum(X %*% X)\n}",
		Inputs: map[string]InputSpec{
			"X": {Rows: 200, Cols: 200, Rand: &RandSpec{Sparsity: 1, Lo: -1, Hi: 1, Seed: 4}},
		},
		Outputs: []string{"acc"},
	}
	type outcome struct {
		status int
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		body, _ := json.Marshal(slow)
		resp, err := http.Post("http://"+srv.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		resp.Body.Close()
		done <- outcome{status: resp.StatusCode}
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", o.err)
		}
		if o.status != http.StatusOK {
			t.Fatalf("in-flight request got %d during drain, want 200", o.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

// TestServerTenantsEndpoint: /v1/tenants exposes per-tenant accounting.
func TestServerTenantsEndpoint(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(0))
	for i := 0; i < 3; i++ {
		resp, _ := postRun(t, srv, &RunRequest{Tenant: "alpha", Script: "x = 1 + 1"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/tenants", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["alpha"].Requests != 3 {
		t.Errorf("alpha served %d requests, want 3", stats["alpha"].Requests)
	}
}

// TestServerRequestID: the response echoes a client X-Request-ID in both
// the header and the body, and generates one when the client sends none.
func TestServerRequestID(t *testing.T) {
	srv := startServer(t, NewEngine(), WithBatchWindow(0))
	body, _ := json.Marshal(&RunRequest{Script: "x = 1 + 1"})
	req, _ := http.NewRequest(http.MethodPost, "http://"+srv.Addr()+"/v1/run", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "client-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-7" {
		t.Errorf("X-Request-ID header = %q, want client-7", got)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.RequestID != "client-7" {
		t.Errorf("RequestID = %q, want client-7", rr.RequestID)
	}

	resp2, rr2 := postRun(t, srv, &RunRequest{Script: "x = 1 + 1"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if rr2.RequestID == "" || resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no request ID generated")
	}
	if rr2.RequestID != resp2.Header.Get("X-Request-ID") {
		t.Errorf("body ID %q != header ID %q", rr2.RequestID, resp2.Header.Get("X-Request-ID"))
	}
}

// TestServerBatchAccounting is the regression test for the leader/follower
// accounting asymmetry: under micro-batching every request must count
// exactly once toward the tenant and engine request totals.
func TestServerBatchAccounting(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(30*time.Millisecond))
	const clients = 8
	req := &RunRequest{
		Tenant: "acct",
		Script: "s = sum(X)",
		Inputs: map[string]InputSpec{
			"X": {Rows: 32, Cols: 8, Rand: &RandSpec{Sparsity: 1, Lo: 0, Hi: 1, Seed: 3}},
		},
	}
	var wg sync.WaitGroup
	batched := false
	var mu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, rr := postRun(t, srv, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			mu.Lock()
			if rr.Batch > 1 {
				batched = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if !batched {
		t.Skip("no batch formed; accounting not exercised under batching")
	}
	st := e.Tenant("acct").Stats()
	if st.Requests != clients {
		t.Errorf("tenant requests = %d, want %d", st.Requests, clients)
	}
	if e.Requests() != clients {
		t.Errorf("engine requests = %d, want %d", e.Requests(), clients)
	}
	if st.Shed != 0 {
		t.Errorf("shed = %d, want 0", st.Shed)
	}
}

// TestServerDebugRequests: the flight recorder retains completed requests
// and /debug/requests/{id} returns a sampled record's full span tree down
// to per-operator execute spans.
func TestServerDebugRequests(t *testing.T) {
	srv := startServer(t, NewEngine(),
		WithBatchWindow(0), WithFlightRecorder(16, 0)) // slow=0: sample all
	resp, rr := postRun(t, srv, &RunRequest{
		Tenant:  "dbg",
		Script:  "Y = X %*% X",
		Inputs:  map[string]InputSpec{"X": {Rows: 16, Cols: 16, Rand: &RandSpec{Sparsity: 1, Lo: 0, Hi: 1, Seed: 9}}},
		Outputs: []string{"Y"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// List view: record present, newest first, spans stripped.
	lresp, err := http.Get("http://" + srv.Addr() + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Recorded int64            `json:"recorded"`
		Sampled  int64            `json:"sampled"`
		Requests []map[string]any `json:"requests"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Recorded != 1 || list.Sampled != 1 || len(list.Requests) != 1 {
		t.Fatalf("list = %+v", list)
	}
	if _, leaked := list.Requests[0]["spans"]; leaked {
		t.Error("list view leaked span trees")
	}

	// Single record: full span tree, request -> run -> execute -> operator.
	gresp, err := http.Get("http://" + srv.Addr() + "/debug/requests/" + rr.RequestID)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	var rec struct {
		ID      string `json:"id"`
		Tenant  string `json:"tenant"`
		PlanKey string `json:"plan_key"`
		Status  int    `json:"status"`
		Sampled bool   `json:"sampled"`
		Spans   []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(gresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != rr.RequestID || rec.Tenant != "dbg" || rec.Status != 200 || !rec.Sampled {
		t.Fatalf("record = %+v", rec)
	}
	if rec.PlanKey == "" {
		t.Error("record has no plan key")
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"request", "run", "compile", "optimize", "execute"} {
		if !names[want] {
			t.Errorf("span tree missing %q (have %v)", want, names)
		}
	}
	// At least one per-operator span beyond the fixed phases.
	if len(rec.Spans) <= 5 {
		t.Errorf("span tree has no per-operator spans: %d spans", len(rec.Spans))
	}

	// Unknown ID is a 404.
	nresp, err := http.Get("http://" + srv.Addr() + "/debug/requests/nope")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ID: status %d, want 404", nresp.StatusCode)
	}
}

// TestServerHealthzDrain: /healthz is text/plain 200 while serving and 503
// once a drain starts.
func TestServerHealthzDrain(t *testing.T) {
	srv := startServer(t, NewEngine())
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("healthz Content-Type = %q", ct)
	}
	srv.draining.Store(true)
	resp, err = http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if body.String() != "draining\n" {
		t.Errorf("draining body = %q", body.String())
	}
}

// TestServerTenantQuantiles: after traffic, /v1/tenants reports non-zero
// latency quantiles in milliseconds, ordered p50 <= p95 <= p99.
func TestServerTenantQuantiles(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(0))
	for i := 0; i < 5; i++ {
		resp, _ := postRun(t, srv, &RunRequest{
			Tenant: "q",
			Script: "s = sum(X %*% X)",
			Inputs: map[string]InputSpec{
				"X": {Rows: 64, Cols: 64, Rand: &RandSpec{Sparsity: 1, Lo: 0, Hi: 1, Seed: int64(i)}},
			},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + srv.Addr() + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	st := stats["q"]
	if st.P50MS <= 0 || st.P95MS <= 0 || st.P99MS <= 0 {
		t.Fatalf("zero quantiles after traffic: %+v", st)
	}
	if st.P50MS > st.P95MS || st.P95MS > st.P99MS {
		t.Errorf("quantiles not ordered: p50=%g p95=%g p99=%g", st.P50MS, st.P95MS, st.P99MS)
	}
}

// TestServerMetricsNegotiation: /metrics is a JSON snapshot by default and
// Prometheus text exposition when Accept asks for text/plain.
func TestServerMetricsNegotiation(t *testing.T) {
	e := NewEngine()
	srv := startServer(t, e, WithBatchWindow(0))
	resp, _ := postRun(t, srv, &RunRequest{Tenant: "m", Script: "x = 1 + 1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	jresp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default /metrics Content-Type = %q", ct)
	}
	var snap struct {
		Counters map[string]int64   `json:"Counters"`
		Gauges   map[string]float64 `json:"Gauges"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.requests"] != 1 {
		t.Errorf("serve.requests = %d, want 1", snap.Counters["serve.requests"])
	}
	if _, ok := snap.Counters[`serve.tenant.requests{tenant="m"}`]; !ok {
		t.Error("per-tenant counter missing from JSON snapshot")
	}

	req, _ := http.NewRequest(http.MethodGet, "http://"+srv.Addr()+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(presp.Body)
	text := body.String()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom /metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE serve_requests counter",
		"serve_requests 1",
		`serve_tenant_requests{tenant="m"} 1`,
		"# TYPE serve_request_total_seconds histogram",
		`serve_request_total_seconds_bucket{le="+Inf"} 1`,
		"serve_request_total_seconds_count 1",
		"# TYPE pool_gets counter",
		"# TYPE plancache_hits counter",
		"# TYPE par_workers gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestServerSLOBurn: requests slower than the engine SLO target burn the
// tenant's SLO counter.
func TestServerSLOBurn(t *testing.T) {
	e := NewEngine(WithSLOTarget(time.Nanosecond)) // everything burns
	srv := startServer(t, e, WithBatchWindow(0))
	for i := 0; i < 3; i++ {
		resp, _ := postRun(t, srv, &RunRequest{Tenant: "slo", Script: "x = 1 + 1"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}
	if burn := e.Tenant("slo").Stats().SLOBurn; burn != 3 {
		t.Errorf("SLO burn = %d, want 3", burn)
	}
	snap := e.Metrics()
	if got := snap.Counter(`serve.slo.burn{tenant="slo"}`); got != 3 {
		t.Errorf("serve.slo.burn metric = %d, want 3", got)
	}
	// No target: no burn.
	e2 := NewEngine()
	srv2 := startServer(t, e2, WithBatchWindow(0))
	resp, _ := postRun(t, srv2, &RunRequest{Tenant: "slo", Script: "x = 1 + 1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if burn := e2.Tenant("slo").Stats().SLOBurn; burn != 0 {
		t.Errorf("SLO burn without target = %d, want 0", burn)
	}
}

// TestServerShedRecorded: shed requests land in the flight recorder as
// sampled error records.
func TestServerShedRecorded(t *testing.T) {
	e := NewEngine(WithTenantQuota(TenantQuota{MaxSessions: 1}))
	srv := startServer(t, e, WithQueueWait(time.Millisecond), WithBatchWindow(0))
	tn := e.Tenant("t1")
	held, err := tn.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := postRun(t, srv, &RunRequest{Tenant: "t1", Script: "x = 1 + 1"})
	tn.Release(held)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")
	rec, ok := srv.FlightRecorder().Get(rid)
	if !ok {
		t.Fatalf("shed request %q not in flight recorder", rid)
	}
	if rec.Status != http.StatusTooManyRequests || rec.Error == "" || !rec.Sampled {
		t.Errorf("shed record = %+v", rec)
	}
}
