package cplan

import "sysml/internal/matrix"

// CompressedEligible reports whether a compiled plan can execute directly
// over a compressed main input — evaluating the body once per distinct
// dictionary tuple instead of once per cell — and, when it cannot, a
// human-readable reason for the EXPLAIN report.
//
// The structural requirement is position independence: the body's value at
// cell (r, c) may depend on the main value and on scalar side inputs, but
// not on r (per-distinct evaluation visits rows out of order and in
// aggregate). Column dependence is fine — dictionary tuples carry their
// absolute column indexes. Aggregating variants additionally need an
// aggregation that distributes over occurrence counts (sum, sum-of-squares,
// min, max).
func CompressedEligible(p *Plan) (bool, string) {
	switch p.Type {
	case TemplateCell:
		if p.Cell == CellRowAgg {
			return false, "row aggregate needs per-row evaluation"
		}
		if ok, why := cellBodyCompressible(p.Root); !ok {
			return false, why
		}
		if p.Cell != CellNoAgg {
			if ok, why := aggCompressible(p.AggOp); !ok {
				return false, why
			}
		}
		return true, ""
	case TemplateMAgg:
		for _, r := range p.Roots {
			if ok, why := cellBodyCompressible(r); !ok {
				return false, why
			}
		}
		for _, op := range p.AggOps {
			if ok, why := aggCompressible(op); !ok {
				return false, why
			}
		}
		return true, ""
	case TemplateRow:
		if p.NumSides > 0 {
			return false, "row template reads matrix side inputs per row"
		}
		if p.Row == RowColAggT {
			return false, "transposed col-agg needs per-row outer products"
		}
		return true, ""
	case TemplateOuter:
		return false, "outer template binds U/V row pairs per cell"
	case TemplateHorizontal:
		return false, "horizontal groups mix aggregation shapes"
	}
	return false, "unknown template"
}

// cellBodyCompressible walks a cell body checking position independence:
// every side access must be scalar and the Outer dot product is out.
func cellBodyCompressible(n *CNode) (bool, string) {
	if n == nil {
		return true, ""
	}
	switch n.Kind {
	case NodeSide:
		if n.Access != AccessScalar {
			return false, "side input accessed per cell"
		}
	case NodeDot:
		return false, "outer dot product is position-dependent"
	case NodeAgg, NodeMatMult, NodeIdx, NodeCumsum:
		return false, "row-vector operation in cell body"
	}
	for _, c := range n.Children {
		if ok, why := cellBodyCompressible(c); !ok {
			return false, why
		}
	}
	return true, ""
}

func aggCompressible(op matrix.AggOp) (bool, string) {
	switch op {
	case matrix.AggSum, matrix.AggSumSq, matrix.AggMin, matrix.AggMax:
		return true, ""
	}
	return false, "aggregation does not distribute over occurrence counts"
}
