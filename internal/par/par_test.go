package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1024, 10000} {
		seen := make([]int32, n)
		For(n, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForCoversRangeWithManyWorkers(t *testing.T) {
	old := SetMaxWorkers(8)
	defer SetMaxWorkers(old)
	n := 100_000
	seen := make([]int32, n)
	For(n, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForSmallRunsSequential(t *testing.T) {
	calls := 0
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 sequential call, got %d", calls)
	}
}

func TestForIndexedWorkerIndexes(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	nc, size := Chunks(1000, 10)
	if nc < 1 || size < 1 {
		t.Fatalf("Chunks(1000,10) = %d,%d", nc, size)
	}
	var mu sync.Mutex
	used := map[int]int{}
	var total int64
	ForIndexed(1000, 10, func(w, lo, hi int) {
		if w < 0 || w >= nc {
			t.Errorf("worker index %d outside [0,%d)", w, nc)
		}
		mu.Lock()
		used[w]++
		mu.Unlock()
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 1000 {
		t.Fatalf("covered %d of 1000", total)
	}
	// Worker 0 (the caller) always participates; a worker may be invoked
	// several times under dynamic chunk claiming.
	if used[0] == 0 {
		t.Fatal("caller (worker 0) claimed no chunks")
	}
}

// TestForIndexedAccumulation exercises the documented per-worker state
// contract: lazily initialized, accumulated across invocations.
func TestForIndexedAccumulation(t *testing.T) {
	old := SetMaxWorkers(8)
	defer SetMaxWorkers(old)
	n := 100_000
	nw, _ := Chunks(n, 64)
	partials := make([]int64, nw)
	ForIndexed(n, 64, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		partials[w] += s // accumulate, never assign
	})
	var got int64
	for _, p := range partials {
		got += p
	}
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	if MaxWorkers() != 1 {
		t.Fatal("SetMaxWorkers(1) not applied")
	}
	chunks, _ := Chunks(1_000_000, 1)
	if chunks != 1 {
		t.Fatalf("with 1 worker expected 1 chunk, got %d", chunks)
	}
	SetMaxWorkers(0) // reset to GOMAXPROCS
	if MaxWorkers() < 1 {
		t.Fatal("reset failed")
	}
}

// TestSetMaxWorkersConcurrent runs SetMaxWorkers concurrently with
// parallel-for regions; with -race this verifies the worker cap has no
// unsynchronized access (concurrent sessions adjust it at will).
func TestSetMaxWorkersConcurrent(t *testing.T) {
	old := MaxWorkers()
	defer SetMaxWorkers(old)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetMaxWorkers(1 + i%4)
		}
	}()
	for r := 0; r < 50; r++ {
		var total int64
		For(10_000, 16, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != 10_000 {
			t.Fatalf("run %d covered %d of 10000", r, total)
		}
	}
	close(stop)
	wg.Wait()
}

// TestNestedFor ensures nested parallel regions cannot deadlock the pool:
// inner regions fall back to inline execution when the pool is saturated.
func TestNestedFor(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	var total int64
	For(64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(1000, 10, func(ilo, ihi int) {
				atomic.AddInt64(&total, int64(ihi-ilo))
			})
		}
	})
	if total != 64*1000 {
		t.Fatalf("covered %d of %d", total, 64*1000)
	}
}

func TestStatsCounters(t *testing.T) {
	ResetStats()
	For(10, 100, func(lo, hi int) {}) // sequential
	u := Stats()
	if u.Calls != 1 || u.Sequential != 1 {
		t.Fatalf("sequential call not counted: %+v", u)
	}
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	ResetStats()
	For(100_000, 16, func(lo, hi int) {})
	u = Stats()
	if u.Calls != 1 {
		t.Fatalf("calls = %d", u.Calls)
	}
	if u.Goroutines < 1 {
		t.Fatalf("no workers engaged: %+v", u)
	}
}
