// Package par provides small data-parallel helpers used by the matrix
// kernels and fused-operator skeletons. All helpers degrade gracefully to
// sequential execution for small inputs so that parallelization overhead
// never dominates.
//
// Parallel regions run on a persistent worker pool (goroutines started
// lazily and kept alive for the process lifetime) instead of spawning fresh
// goroutines per call. Work is split into more chunks than workers and
// participants claim chunks through an atomic counter, so skewed work —
// ragged sparse rows, uneven row-template iterations — load-balances
// dynamically: a worker that finishes its chunk early simply claims the
// next one.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of work items per chunk. Work smaller
// than one grain runs on the calling goroutine.
const DefaultGrain = 1024

// chunkFactor is the target number of dynamically claimed chunks per
// participant. Values above 1 trade slightly more dispatch overhead for
// load balancing of skewed chunks; 4 keeps the claim counter cold while
// bounding the idle tail at ~1/4 of a worker's share.
const chunkFactor = 4

// maxWorkers caps the number of participants of a parallel region. It is
// read on every For/ForIndexed/Chunks call and written by SetMaxWorkers
// (tests, concurrent sessions), hence atomic.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers overrides the worker cap and returns the previous value.
// Passing n <= 0 resets to GOMAXPROCS. Raising the cap grows the
// persistent pool so that future regions can use the extra workers.
func SetMaxWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	old := maxWorkers.Swap(int64(n))
	ensureWorkers(n - 1)
	return int(old)
}

// MaxWorkers reports the current worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// Utilization counters: every For/ForIndexed call is counted, along with
// the pool workers it engaged (0 for calls that ran sequentially). The
// ratio workers / (calls * MaxWorkers) approximates pool utilization.
var (
	statCalls      atomic.Int64
	statGoroutines atomic.Int64
	statSequential atomic.Int64
)

// Usage is a snapshot of the parallel-for utilization counters.
type Usage struct {
	Calls      int64 // For/ForIndexed invocations
	Goroutines int64 // pool workers engaged across all parallel calls
	Sequential int64 // calls that ran inline on the caller's goroutine
}

// Utilization returns engaged workers as a fraction of the maximum the
// worker cap would have allowed (1.0 = every call saturated the cap).
func (u Usage) Utilization(workers int) float64 {
	if u.Calls == 0 || workers <= 0 {
		return 0
	}
	return float64(u.Goroutines) / float64(u.Calls*int64(workers))
}

// Stats returns the current utilization counters.
func Stats() Usage {
	return Usage{
		Calls:      statCalls.Load(),
		Goroutines: statGoroutines.Load(),
		Sequential: statSequential.Load(),
	}
}

// ResetStats zeroes the utilization counters.
func ResetStats() {
	statCalls.Store(0)
	statGoroutines.Store(0)
	statSequential.Store(0)
}

// The persistent pool: workers block on the task channel between regions.
// The pool grows to (max requested workers - 1) — the caller of a region is
// always participant 0 — and never shrinks; idle workers cost only a
// blocked goroutine each.
var (
	poolMu      sync.Mutex
	poolTasks   chan *region
	poolWorkers int
)

func ensureWorkers(n int) {
	if n <= 0 {
		return
	}
	poolMu.Lock()
	if poolTasks == nil {
		// Buffered far beyond any realistic fan-out so that region dispatch
		// never blocks; dispatch falls back to inline execution if full.
		poolTasks = make(chan *region, 1024)
	}
	for poolWorkers < n {
		poolWorkers++
		go func() {
			for r := range poolTasks {
				r.help()
			}
		}()
	}
	poolMu.Unlock()
}

// region is one parallel-for invocation: participants claim chunk indexes
// from next until all nchunks are taken.
type region struct {
	fn      func(worker, lo, hi int)
	n       int
	chunk   int
	nchunks int64
	next    atomic.Int64
	ids     atomic.Int64 // participant id allocator (caller is 0)
	wg      sync.WaitGroup
}

// help is run by a pool worker: claim a participant id and drain chunks.
// Exactly (participants-1) help entries are enqueued per region, so ids
// stay within [1, participants).
func (r *region) help() {
	defer r.wg.Done()
	r.run(int(r.ids.Add(1)))
}

func (r *region) run(worker int) {
	for {
		c := r.next.Add(1) - 1
		if c >= r.nchunks {
			return
		}
		lo := int(c) * r.chunk
		hi := lo + r.chunk
		if hi > r.n {
			hi = r.n
		}
		r.fn(worker, lo, hi)
	}
}

// plan computes the chunking of n items: the participant count, the chunk
// size, and the chunk count. Chunks are at least one grain; the chunk
// count targets chunkFactor chunks per participant for dynamic balance.
func plan(n, grain int) (workers, chunk, nchunks int) {
	if grain <= 0 {
		grain = DefaultGrain
	}
	w := int(maxWorkers.Load())
	if w < 1 {
		w = 1
	}
	maxChunks := (n + grain - 1) / grain
	workers = w
	if workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		return 1, n, 1
	}
	nchunks = workers * chunkFactor
	if nchunks > maxChunks {
		nchunks = maxChunks
	}
	chunk = (n + nchunks - 1) / nchunks
	nchunks = (n + chunk - 1) / chunk
	if nchunks < workers {
		workers = nchunks
	}
	return workers, chunk, nchunks
}

// dispatch runs fn over the chunks of [0, n) on the worker pool, with the
// caller participating as worker 0. Enqueueing never blocks: when the pool
// is saturated (e.g. nested regions), the caller simply drains the chunks
// itself, so dispatch is deadlock-free under arbitrary nesting.
func dispatch(n int, workers, chunk, nchunks int, fn func(worker, lo, hi int)) {
	ensureWorkers(workers - 1)
	r := &region{fn: fn, n: n, chunk: chunk, nchunks: int64(nchunks)}
	engaged := 1 // the caller
	for i := 1; i < workers; i++ {
		r.wg.Add(1)
		select {
		case poolTasks <- r:
			engaged++
		default:
			r.wg.Done() // pool saturated: caller covers the work
		}
	}
	statGoroutines.Add(int64(engaged))
	r.run(0)
	r.wg.Wait()
}

// For executes fn over half-open ranges that partition [0, n) into chunks
// of at least grain items, running chunks on the persistent worker pool.
// fn must be safe for concurrent invocation on disjoint ranges.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers, chunk, nchunks := plan(n, grain)
	statCalls.Add(1)
	if workers <= 1 {
		statSequential.Add(1)
		fn(0, n)
		return
	}
	dispatch(n, workers, chunk, nchunks, func(_, lo, hi int) { fn(lo, hi) })
}

// ForIndexed is like For but also passes a zero-based worker index, which
// callers use to select per-worker state (scratch buffers, partial
// aggregates). Worker indexes are dense in [0, count) where count is
// reported by Chunks for preallocation.
//
// Unlike a static partition, a worker may be invoked several times with
// distinct disjoint ranges (dynamic chunk claiming): per-worker state must
// therefore be initialized lazily on first use and accumulated across
// invocations, never reset per invocation.
func ForIndexed(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers, chunk, nchunks := plan(n, grain)
	statCalls.Add(1)
	if workers <= 1 {
		statSequential.Add(1)
		fn(0, 0, n)
		return
	}
	dispatch(n, workers, chunk, nchunks, fn)
}

// Chunks reports how many workers ForIndexed will use for n items with the
// given grain — the size needed for per-worker state arrays — along with
// the dynamic chunk size (ranges handed to each fn invocation).
func Chunks(n, grain int) (count, size int) {
	if n <= 0 {
		return 0, 0
	}
	count, size, _ = plan(n, grain)
	return count, size
}

// planLimit is plan with an explicit participant cap that overrides the
// global worker cap. Unlike maxWorkers it may exceed GOMAXPROCS: callers
// like the simulated distributed backend model external concurrency
// (executors), where oversubscribing cores is exactly the point.
func planLimit(n, grain, limit int) (workers, chunk, nchunks int) {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if limit < 1 {
		limit = 1
	}
	maxChunks := (n + grain - 1) / grain
	workers = limit
	if workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		return 1, n, 1
	}
	nchunks = workers * chunkFactor
	if nchunks > maxChunks {
		nchunks = maxChunks
	}
	chunk = (n + nchunks - 1) / nchunks
	nchunks = (n + chunk - 1) / chunk
	if nchunks < workers {
		workers = nchunks
	}
	return workers, chunk, nchunks
}

// ForIndexedLimit is ForIndexed with an explicit participant cap: at most
// limit workers (including the caller) run fn, regardless of the global
// SetMaxWorkers cap. It backs the simulated distributed backend, where the
// participant count models the cluster's executor count rather than the
// local core count. Worker indexes are dense in [0, count) with count as
// reported by ChunksLimit.
func ForIndexedLimit(n, grain, limit int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers, chunk, nchunks := planLimit(n, grain, limit)
	statCalls.Add(1)
	if workers <= 1 {
		statSequential.Add(1)
		fn(0, 0, n)
		return
	}
	dispatch(n, workers, chunk, nchunks, fn)
}

// ChunksLimit reports how many workers ForIndexedLimit will use for n items
// with the given grain and participant cap — the size needed for
// per-worker state arrays.
func ChunksLimit(n, grain, limit int) (count, size int) {
	if n <= 0 {
		return 0, 0
	}
	count, size, _ = planLimit(n, grain, limit)
	return count, size
}
