// Command docscheck is the repo's documentation lint, run by ci.sh:
//
//  1. Markdown link check: every relative link in README.md, DESIGN.md,
//     EXPERIMENTS.md, CHANGES.md, and docs/*.md must resolve to a file or
//     directory in the repository (anchors and external URLs are skipped).
//  2. Missing-doc check: every exported top-level identifier in sysml.go
//     and in the packages listed in docPackages must carry a doc comment.
//  3. Experiment coverage: every fusebench experiment ID must appear in
//     EXPERIMENTS.md, so the reproduction manual cannot silently fall
//     behind the harness.
//  4. CI gate coverage: every `fusebench -exp <id>` ci.sh runs must have a
//     matching EXPERIMENTS.md section heading, and every BENCH_*.json
//     artifact ci.sh gates on must appear in the "CI gate summary" table.
//
// Exit status 1 with one line per violation; silent success otherwise.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"sysml/internal/bench"
)

// docPackages are the directories whose exported identifiers must be
// documented, beyond the sysml.go facade.
var docPackages = []string{".", "internal/dist", "internal/codegen", "internal/obs"}

// mdFiles returns the markdown files the link check covers.
func mdFiles() []string {
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md"}
	docs, _ := filepath.Glob("docs/*.md")
	return append(files, docs...)
}

// linkRe matches inline markdown links [text](target); images share the
// syntax and are checked the same way.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link target in file exists, resolved
// against the file's own directory.
func checkLinks(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	var bad []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		target = strings.SplitN(target, "#", 2)[0] // strip section anchor
		if target == "" {
			continue
		}
		p := filepath.Join(filepath.Dir(file), target)
		if _, err := os.Stat(p); err != nil {
			bad = append(bad, fmt.Sprintf("%s: broken link %q", file, m[1]))
		}
	}
	return bad
}

// checkDocs reports exported top-level identifiers without doc comments in
// the package directory dir (test files skipped). A doc comment on the
// enclosing GenDecl covers its specs, matching godoc's resolution.
func checkDocs(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var bad []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods count too: an exported method on an exported
					// receiver is API surface.
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether f is a plain function or a method on an
// exported receiver type; methods on unexported types are not API surface.
func exportedRecv(f *ast.FuncDecl) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return true
	}
	t := f.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

// checkExperimentCoverage requires every fusebench -exp ID to appear in
// EXPERIMENTS.md.
func checkExperimentCoverage() []string {
	data, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		return []string{fmt.Sprintf("EXPERIMENTS.md: %v", err)}
	}
	var bad []string
	for _, e := range bench.Experiments {
		if !strings.Contains(string(data), e.ID) {
			bad = append(bad, fmt.Sprintf("EXPERIMENTS.md: experiment %q undocumented", e.ID))
		}
	}
	return bad
}

// ciExpRe matches the experiment IDs ci.sh runs through fusebench;
// ciGateRe matches the JSON artifacts it greps for a "pass" field.
var (
	ciExpRe  = regexp.MustCompile(`fusebench -exp ([a-z0-9_]+)`)
	ciGateRe = regexp.MustCompile(`BENCH_[A-Za-z0-9_]+\.json`)
)

// checkCIGateCoverage cross-checks ci.sh against EXPERIMENTS.md: each
// experiment the CI script runs needs its own section heading (the
// "### `id` — ..." convention), and each gate artifact it greps must be a
// row of the "## CI gate summary" table. This is what keeps the threshold
// table from drifting when a new gate lands.
func checkCIGateCoverage() []string {
	ci, err := os.ReadFile("ci.sh")
	if err != nil {
		return []string{fmt.Sprintf("ci.sh: %v", err)}
	}
	exp, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		return []string{fmt.Sprintf("EXPERIMENTS.md: %v", err)}
	}
	var bad []string
	seenID := map[string]bool{}
	for _, m := range ciExpRe.FindAllStringSubmatch(string(ci), -1) {
		id := m[1]
		if seenID[id] {
			continue
		}
		seenID[id] = true
		headingRe := regexp.MustCompile("(?m)^#{1,6} .*`" + regexp.QuoteMeta(id) + "`")
		if !headingRe.Match(exp) {
			bad = append(bad, fmt.Sprintf("EXPERIMENTS.md: no section heading for ci.sh experiment %q", id))
		}
	}
	// The gate table: the "## CI gate summary" section up to the next H2.
	table := string(exp)
	if i := strings.Index(table, "## CI gate summary"); i >= 0 {
		table = table[i:]
		if j := strings.Index(table[2:], "\n## "); j >= 0 {
			table = table[:2+j]
		}
	} else {
		return append(bad, `EXPERIMENTS.md: missing "## CI gate summary" section`)
	}
	seenGate := map[string]bool{}
	for _, g := range ciGateRe.FindAllString(string(ci), -1) {
		if seenGate[g] {
			continue
		}
		seenGate[g] = true
		if !strings.Contains(table, g) {
			bad = append(bad, fmt.Sprintf("EXPERIMENTS.md: gate artifact %s missing from the CI gate summary table", g))
		}
	}
	return bad
}

func main() {
	var bad []string
	for _, f := range mdFiles() {
		bad = append(bad, checkLinks(f)...)
	}
	for _, dir := range docPackages {
		bad = append(bad, checkDocs(dir)...)
	}
	bad = append(bad, checkExperimentCoverage()...)
	bad = append(bad, checkCIGateCoverage()...)
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(bad))
		os.Exit(1)
	}
}
