package matrix

import "math/rand"

// Rand generates a random matrix on the default execution context.
func Rand(rows, cols int, sparsity, lo, hi float64, seed int64) *Matrix {
	return Ctx{}.Rand(rows, cols, sparsity, lo, hi, seed)
}

// Rand generates a rows×cols matrix with the given fraction of non-zero
// cells (sparsity), values uniform in [lo, hi), using a deterministic seed.
// The result is stored sparse below the sparsity threshold.
func (ctx Ctx) Rand(rows, cols int, sparsity, lo, hi float64, seed int64) *Matrix {
	checkDims(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	if sparsity >= SparsityThreshold || cols == 1 {
		out := ctx.NewDense(rows, cols)
		for k := range out.dense {
			if sparsity >= 1 || rng.Float64() < sparsity {
				out.dense[k] = lo + rng.Float64()*(hi-lo)
			}
		}
		return out
	}
	csr := &CSR{RowPtr: make([]int, rows+1)}
	expected := int(float64(rows*cols)*sparsity) + rows
	csr.ColIdx = make([]int, 0, expected)
	csr.Values = make([]float64, 0, expected)
	for i := 0; i < rows; i++ {
		// Geometric skipping gives exact expected sparsity in O(nnz).
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				v := lo + rng.Float64()*(hi-lo)
				if v == 0 {
					v = (lo + hi) / 2
				}
				csr.ColIdx = append(csr.ColIdx, j)
				csr.Values = append(csr.Values, v)
			}
		}
		csr.RowPtr[i+1] = len(csr.Values)
	}
	return NewSparseCSR(rows, cols, csr)
}

// Fill returns a constant matrix on the default execution context.
func Fill(rows, cols int, v float64) *Matrix { return Ctx{}.Fill(rows, cols, v) }

// Fill returns a rows×cols dense matrix with every cell set to v.
func (ctx Ctx) Fill(rows, cols int, v float64) *Matrix {
	out := ctx.NewDense(rows, cols)
	if v != 0 {
		for k := range out.dense {
			out.dense[k] = v
		}
	}
	return out
}

// Seq returns a range column vector on the default execution context.
func Seq(from, to, incr float64) *Matrix { return Ctx{}.Seq(from, to, incr) }

// Seq returns a column vector [from, from+incr, ...] up to and including to.
func (ctx Ctx) Seq(from, to, incr float64) *Matrix {
	n := int((to-from)/incr) + 1
	if n < 1 {
		n = 1
	}
	out := ctx.NewDense(n, 1)
	for i := 0; i < n; i++ {
		out.dense[i] = from + float64(i)*incr
	}
	return out
}

// Identity returns the n×n identity matrix on the default execution context.
func Identity(n int) *Matrix { return Ctx{}.Identity(n) }

// Identity returns the n×n identity matrix.
func (ctx Ctx) Identity(n int) *Matrix {
	out := ctx.NewDense(n, n)
	for i := 0; i < n; i++ {
		out.dense[i*n+i] = 1
	}
	return out
}
