package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"sysml/internal/dml"
	"sysml/internal/matrix"
)

// RunRequest is the /v1/run payload: a script to execute for a tenant
// against freshly bound inputs, returning the named outputs.
type RunRequest struct {
	// Tenant names the principal; empty means "default". Tenants are
	// created on first use under the engine's default quota.
	Tenant string `json:"tenant,omitempty"`
	// Script is the DML-subset program to run.
	Script string `json:"script"`
	// Inputs binds matrices by name before the run.
	Inputs map[string]InputSpec `json:"inputs,omitempty"`
	// Outputs lists the variables to return. Scalars come back as 1x1.
	Outputs []string `json:"outputs,omitempty"`
}

// InputSpec describes one input binding: either inline row-major data or
// a deterministic random generator (benchmark traffic without payloads).
type InputSpec struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data,omitempty"`
	Rand *RandSpec `json:"rand,omitempty"`
}

// RandSpec generates the input server-side: sparsity fraction, value
// range, and seed (deterministic across requests).
type RandSpec struct {
	Sparsity float64 `json:"sparsity"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Seed     int64   `json:"seed"`
}

// OutputMatrix is one returned variable in dense row-major form.
type OutputMatrix struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// RunResponse is the /v1/run result.
type RunResponse struct {
	Outputs map[string]OutputMatrix `json:"outputs,omitempty"`
	// Batch is the size of the micro-batch this request rode in (1 = ran
	// alone); Leader marks the request that executed the batch.
	Batch  int  `json:"batch"`
	Leader bool `json:"leader"`
	// QueueNS is time spent waiting (batch window + session queue) and
	// ExecNS the script execution time, nanoseconds.
	QueueNS int64 `json:"queue_ns"`
	ExecNS  int64 `json:"exec_ns"`
}

// errorBody is the JSON error envelope for non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

// Server serves an Engine over HTTP. Endpoints:
//
//	POST /v1/run     submit a script (RunRequest -> RunResponse); sheds
//	                 with 429 + Retry-After under memory pressure or when
//	                 the tenant is at its session quota
//	GET  /v1/tenants per-tenant serving stats (requests, shed, batched,
//	                 plan-cache hits/misses, live bytes)
//	GET  /metrics    engine-wide serving snapshot
//	GET  /healthz    liveness probe
type Server struct {
	eng       *Engine
	ln        net.Listener
	srv       *http.Server
	batch     *batcher
	queueWait time.Duration
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// DefaultQueueWait is how long /v1/run waits for a tenant session slot
// before shedding with 429.
const DefaultQueueWait = 50 * time.Millisecond

// DefaultDrainTimeout bounds how long Close waits for in-flight requests
// to finish before tearing connections down.
const DefaultDrainTimeout = 5 * time.Second

// WithBatchWindow overrides how long a batch leader holds its plan key
// open for followers (0 disables micro-batching).
func WithBatchWindow(d time.Duration) ServerOption {
	return func(s *Server) { s.batch = newBatcher(d) }
}

// WithQueueWait overrides the session-slot wait before shedding.
func WithQueueWait(d time.Duration) ServerOption {
	return func(s *Server) { s.queueWait = d }
}

// NewServer binds addr (e.g. "127.0.0.1:0") and starts serving the engine
// on its own goroutine until Close.
func NewServer(addr string, e *Engine, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		eng:       e,
		ln:        ln,
		batch:     newBatcher(DefaultBatchWindow),
		queueWait: DefaultQueueWait,
	}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.eng.Tenants())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		hits, misses, evictions := s.eng.Cache().TotalCounters()
		writeJSON(w, http.StatusOK, map[string]int64{
			"requests":            s.eng.Requests(),
			"shed":                s.eng.Shed(),
			"live_bytes":          s.eng.LiveBytes(),
			"memory_budget":       s.eng.MemoryBudget(),
			"max_workers":         int64(s.eng.MaxWorkers()),
			"plancache.hits":      hits,
			"plancache.misses":    misses,
			"plancache.evictions": evictions,
			"plancache.size":      int64(s.eng.Cache().Size()),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully: stop accepting immediately,
// give in-flight /v1/run requests up to DefaultDrainTimeout to finish,
// then tear down whatever remains.
func (s *Server) Close() error { return s.CloseWithTimeout(DefaultDrainTimeout) }

// CloseWithTimeout is Close with an explicit drain bound; d <= 0 skips
// draining.
func (s *Server) CloseWithTimeout(d time.Duration) error {
	if d <= 0 {
		return s.srv.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// shed writes the 429 backpressure response.
func shed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, errorBody{Error: msg})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return
	}
	if req.Script == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "script is required"})
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	for name, in := range req.Inputs {
		if in.Rows <= 0 || in.Cols <= 0 {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("input %q: rows/cols must be positive", name)})
			return
		}
		if in.Data != nil && len(in.Data) != in.Rows*in.Cols {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("input %q: %d values for %dx%d", name, len(in.Data), in.Rows, in.Cols)})
			return
		}
	}
	tn := s.eng.Tenant(req.Tenant)

	// Admission control: live pooled bytes over the engine budget (or the
	// tenant's private quota) mean memory pressure — shed before queueing.
	if s.eng.OverBudget() {
		tn.shed.Add(1)
		s.eng.shed.Add(1)
		shed(w, "engine over memory budget")
		return
	}

	start := time.Now()
	job := &batchJob{req: &req, done: make(chan struct{})}
	jobs := s.batch.submit(keyFor(req.Tenant, req.Script, req.Inputs), job)
	if jobs == nil {
		// Follower: a concurrent leader for the same compiled plan
		// executes this job on its session.
		<-job.done
	} else {
		s.runBatch(tn, jobs, start)
	}
	if job.err != nil {
		switch job.err {
		case ErrTenantBusy, ErrTenantOverBudget:
			shed(w, job.err.Error())
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: job.err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, job.resp)
}

// runBatch acquires ONE session for the whole batch and executes the jobs
// back-to-back on it: one tenant quota slot, one warm block-plan cache,
// one warm operator cache. jobs[0] is the leader's own.
func (s *Server) runBatch(t *Tenant, jobs []*batchJob, start time.Time) {
	sess, err := t.Acquire(s.queueWait)
	if err != nil {
		for i, job := range jobs {
			job.err = err
			if i > 0 {
				// Followers shed with the leader (Acquire counted only
				// the leader's attempt).
				t.shed.Add(1)
				t.eng.shed.Add(1)
				close(job.done)
			}
		}
		return
	}
	defer t.Release(sess)
	queued := time.Since(start).Nanoseconds()
	for i, job := range jobs {
		if i > 0 {
			t.requests.Add(1)
			t.eng.requests.Add(1)
			t.batched.Add(1)
			sess.Reset() // clear the previous job's bindings and results
		}
		resp, err := runJob(sess, job.req)
		if err != nil {
			job.err = err
		} else {
			resp.Batch = len(jobs)
			resp.Leader = i == 0
			resp.QueueNS = queued
			job.resp = resp
		}
		if i > 0 {
			close(job.done)
		}
	}
}

// runJob binds the request's inputs, runs the script, and extracts the
// requested outputs. Inputs are installed directly in the environment
// (not via Bind) so Reset returns their pooled storage to the tenant.
func runJob(sess *dml.Session, req *RunRequest) (*RunResponse, error) {
	ec := matrix.Ctx{Par: sess.Par, Buf: sess.Alloc}
	for name, in := range req.Inputs {
		var m *matrix.Matrix
		switch {
		case in.Data != nil:
			m = matrix.NewDenseData(in.Rows, in.Cols, in.Data)
		case in.Rand != nil:
			m = ec.Rand(in.Rows, in.Cols, in.Rand.Sparsity, in.Rand.Lo, in.Rand.Hi, in.Rand.Seed)
		default:
			m = ec.NewDense(in.Rows, in.Cols)
		}
		sess.Env[name] = m
	}
	execStart := time.Now()
	if err := sess.Run(req.Script); err != nil {
		return nil, err
	}
	resp := &RunResponse{ExecNS: time.Since(execStart).Nanoseconds()}
	if len(req.Outputs) > 0 {
		resp.Outputs = make(map[string]OutputMatrix, len(req.Outputs))
		for _, name := range req.Outputs {
			m, err := sess.Get(name)
			if err != nil {
				return nil, err
			}
			d := m.ToDense()
			// Copy out: the backing buffer returns to the pool on Reset.
			data := append([]float64(nil), d.Dense()...)
			if d != m {
				d.Release()
			}
			resp.Outputs[name] = OutputMatrix{Rows: m.Rows, Cols: m.Cols, Data: data}
		}
	}
	return resp, nil
}
