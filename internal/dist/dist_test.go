package dist

import (
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/rewrite"
	rt "sysml/internal/runtime"
)

// buildAndOptimize produces an optimized DAG whose operators run
// distributed (tiny memory budget forces ExecDist).
func buildAndOptimize(t *testing.T, mode codegen.Mode, build func() *hop.DAG) *hop.DAG {
	t.Helper()
	cfg := codegen.DefaultConfig()
	cfg.Mode = mode
	cfg.Exec.MemBudgetBytes = 1 // force distributed
	cfg.Exec.Blocksize = 64
	d, _ := rewrite.Apply(build())
	return codegen.Optimize(d, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
}

func distCluster() *Cluster {
	c := NewCluster()
	c.Blocksize = 64
	return c
}

func TestDistributedMatchesLocal(t *testing.T) {
	patterns := []struct {
		name  string
		build func() *hop.DAG
		env   rt.Env
	}{
		{
			name: "cell-agg",
			build: func() *hop.DAG {
				d := hop.NewDAG()
				x := d.Read("X", 500, 20, -1)
				y := d.Read("Y", 500, 20, -1)
				d.Output("s", d.Sum(d.Binary(matrix.BinMul, x, y)))
				return d
			},
			env: rt.Env{
				"X": matrix.Rand(500, 20, 1, -1, 1, 1),
				"Y": matrix.Rand(500, 20, 1, -1, 1, 2),
			},
		},
		{
			name: "mvchain",
			build: func() *hop.DAG {
				d := hop.NewDAG()
				x := d.Read("X", 600, 30, -1)
				v := d.Read("v", 30, 1, -1)
				d.Output("w", d.MatMult(d.Transpose(x), d.MatMult(x, v)))
				return d
			},
			env: rt.Env{
				"X": matrix.Rand(600, 30, 1, -1, 1, 3),
				"v": matrix.Rand(30, 1, 1, -1, 1, 4),
			},
		},
		{
			name: "binary-broadcast",
			build: func() *hop.DAG {
				d := hop.NewDAG()
				x := d.Read("X", 400, 25, -1)
				d.Output("N", d.Binary(matrix.BinDiv, x, d.RowSums(x)))
				return d
			},
			env: rt.Env{"X": matrix.Rand(400, 25, 1, 1, 2, 5)},
		},
		{
			name: "outer-right",
			build: func() *hop.DAG {
				d := hop.NewDAG()
				x := d.Read("X", 300, 200, 3000)
				u := d.Read("U", 300, 10, -1)
				v := d.Read("V", 200, 10, -1)
				mask := d.Binary(matrix.BinNeq, x, d.Lit(0))
				o := d.MatMult(d.Binary(matrix.BinMul, mask, d.MatMult(u, d.Transpose(v))), v)
				d.Output("O", o)
				return d
			},
			env: rt.Env{
				"X": matrix.Rand(300, 200, 0.05, 1, 2, 6),
				"U": matrix.Rand(300, 10, 1, -1, 1, 7),
				"V": matrix.Rand(200, 10, 1, -1, 1, 8),
			},
		},
	}
	for _, pat := range patterns {
		refDAG, _ := rewrite.Apply(pat.build())
		ref, err := rt.ExecuteDAG(refDAG, pat.env, rt.Options{})
		if err != nil {
			t.Fatalf("%s: ref: %v", pat.name, err)
		}
		for _, mode := range []codegen.Mode{codegen.ModeBase, codegen.ModeGen, codegen.ModeGenFA} {
			d := buildAndOptimize(t, mode, pat.build)
			cl := distCluster()
			got, err := rt.ExecuteDAG(d, pat.env, rt.Options{Dist: cl})
			if err != nil {
				t.Fatalf("%s/%v: %v", pat.name, mode, err)
			}
			for name, want := range ref {
				if !got[name].EqualsApprox(want, 1e-7) {
					t.Errorf("%s/%v: output %q differs", pat.name, mode, name)
				}
			}
		}
	}
}

func TestBroadcastAccounting(t *testing.T) {
	// A distributed matmult with a broadcast right side must record
	// broadcast bytes proportional to executor count.
	d := hop.NewDAG()
	x := d.Read("X", 1000, 20, -1)
	v := d.Read("v", 20, 1, -1)
	d.Output("q", d.MatMult(x, v))
	hop.AssignExecTypes(d.Roots(), hop.ExecConfig{MemBudgetBytes: 1, Blocksize: 64})
	cl := distCluster()
	env := rt.Env{"X": matrix.Rand(1000, 20, 1, -1, 1, 9), "v": matrix.Rand(20, 1, 1, -1, 1, 10)}
	if _, err := rt.ExecuteDAG(d, env, rt.Options{Dist: cl}); err != nil {
		t.Fatal(err)
	}
	want := int64(20*8) * int64(cl.NumExecutors)
	if cl.BytesBroadcast() != want {
		t.Fatalf("broadcast bytes = %d, want %d", cl.BytesBroadcast(), want)
	}
	if cl.NetTime() <= 0 {
		t.Fatal("no simulated network time recorded")
	}
	cl.Reset()
	if cl.BytesBroadcast() != 0 || cl.NetTime() != 0 {
		t.Fatal("reset failed")
	}
}

func TestShuffleAccountingOnAggregate(t *testing.T) {
	d := hop.NewDAG()
	x := d.Read("X", 1000, 20, -1)
	d.Output("s", d.ColSums(x))
	hop.AssignExecTypes(d.Roots(), hop.ExecConfig{MemBudgetBytes: 1, Blocksize: 64})
	cl := distCluster()
	env := rt.Env{"X": matrix.Rand(1000, 20, 1, -1, 1, 11)}
	out, err := rt.ExecuteDAG(d, env, rt.Options{Dist: cl})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Agg(matrix.AggSum, matrix.DirCol, env["X"])
	if !out["s"].EqualsApprox(want, 1e-9) {
		t.Fatal("distributed colSums mismatch")
	}
	if cl.BytesShuffled() == 0 {
		t.Fatal("no shuffle bytes recorded for partial aggregates")
	}
}

func TestRowTemplateBlocksizeConstraint(t *testing.T) {
	// Distributed Row templates over wide rows violate the blocksize
	// constraint and must not be selected.
	build := func() *hop.DAG {
		d := hop.NewDAG()
		x := d.Read("X", 500, 128, -1) // wider than blocksize 64
		v := d.Read("v", 128, 1, -1)
		d.Output("w", d.MatMult(d.Transpose(x), d.MatMult(x, v)))
		return d
	}
	cfg := codegen.DefaultConfig()
	cfg.Exec.MemBudgetBytes = 1
	cfg.Exec.Blocksize = 64
	d, _ := rewrite.Apply(build())
	d = codegen.Optimize(d, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
	for _, h := range hop.TopoOrder(d.Roots()) {
		if h.Kind == hop.OpSpoof && h.SpoofType == "Row" {
			t.Fatal("Row template selected despite blocksize violation")
		}
	}
	// The same plan compiles to a Row operator locally.
	cfgLocal := codegen.DefaultConfig()
	dl, _ := rewrite.Apply(build())
	dl = codegen.Optimize(dl, &cfgLocal, codegen.NewPlanCache(true), codegen.NewStats())
	found := false
	for _, h := range hop.TopoOrder(dl.Roots()) {
		if h.Kind == hop.OpSpoof && h.SpoofType == "Row" {
			found = true
		}
	}
	if !found {
		t.Fatal("local Row template missing")
	}
}
