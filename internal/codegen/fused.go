package codegen

import (
	"sysml/internal/cplan"
	"sysml/internal/hop"
	"sysml/internal/matrix"
)

// applyFusedPatterns implements the Fused baseline: SystemML's hand-coded
// fused operators, which cover a fixed set of two-to-three-operator
// patterns (paper §1, §5 baselines): mmchain t(X)%*%(X%*%v), ternary
// aggregates sum(X*Y) / sum(X*Y*Z) / sum(X^2), and the sparsity-exploiting
// weighted patterns wdivmm ((X!=0)*(UV'))%*%V and wsloss
// sum(X*log(UV'+eps)). Anything else runs as basic operators.
func applyFusedPatterns(d *hop.DAG, cfg *Config, cache *PlanCache, stats *Stats) {
	fc := &fusedCompiler{d: d, cfg: cfg, cache: cache, stats: stats}
	// Iterate to fixpoint over a snapshot per round: patterns do not nest.
	for _, h := range hop.TopoOrder(d.Roots()) {
		fc.try(h)
	}
}

type fusedCompiler struct {
	d     *hop.DAG
	cfg   *Config
	cache *PlanCache
	stats *Stats
	done  map[int64]bool
}

func (f *fusedCompiler) compileAndSplice(h *hop.Hop, p *cplan.Plan, inputs []*hop.Hop) bool {
	op, _, err := f.cache.GetOrCompile(p, f.cfg, func() string { return "FusedOp" })
	if err != nil {
		return false
	}
	f.stats.CPlansConstructed++
	spoof := f.d.NewSpoof(p.Type.String(), op, h.Rows, h.Cols, h.Nnz, inputs...)
	spoof.ExecType = h.ExecType
	for _, par := range append([]*hop.Hop(nil), h.Parents...) {
		par.ReplaceInput(h, spoof)
	}
	for _, name := range f.d.OutputNames() {
		if f.d.Outputs[name] == h {
			f.d.Outputs[name] = spoof
		}
	}
	return true
}

func (f *fusedCompiler) try(h *hop.Hop) {
	if f.tryMMChain(h) {
		return
	}
	if f.tryTernaryAgg(h) {
		return
	}
	if f.tryWdivmm(h) {
		return
	}
	f.tryWsloss(h)
}

// tryMMChain matches t(X) %*% (X %*% v), the hand-coded matrix-vector
// multiplication chain (vectors only, per §5.2 Fig. 8g discussion).
func (f *fusedCompiler) tryMMChain(h *hop.Hop) bool {
	if h.Kind != hop.OpMatMult || h.Inputs[0].Kind != hop.OpTranspose {
		return false
	}
	inner := h.Inputs[1]
	if inner.Kind != hop.OpMatMult || inner.Cols != 1 {
		return false
	}
	x := h.Inputs[0].Inputs[0]
	if inner.Inputs[0] != x || inner.NumConsumers() != 1 {
		return false
	}
	v := inner.Inputs[1]
	n := int(x.Cols)
	vSide := cplan.Side(0, cplan.AccessRow, n)
	q := cplan.Agg(matrix.AggSum, cplan.Binary(matrix.BinMul, cplan.Main(n), vSide))
	p := &cplan.Plan{Type: cplan.TemplateRow, Row: cplan.RowColAggT, Root: q, MainWidth: n, NumSides: 1}
	return f.compileAndSplice(h, p, []*hop.Hop{x, v})
}

// tryTernaryAgg matches sum(X*Y), sum(X*Y*Z) and sum(X^2).
func (f *fusedCompiler) tryTernaryAgg(h *hop.Hop) bool {
	if h.Kind != hop.OpAggUnary || h.AggDir != matrix.DirAll || h.AggOp != matrix.AggSum {
		return false
	}
	e := h.Inputs[0]
	if e.NumConsumers() != 1 || e.IsScalar() {
		return false
	}
	// sum(X^2)
	if e.Kind == hop.OpBinary && e.BinOp == matrix.BinPow &&
		e.Inputs[1].Kind == hop.OpLiteral && e.Inputs[1].Value == 2 &&
		e.Inputs[0].Kind == hop.OpData {
		x := e.Inputs[0]
		root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Main(0))
		p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg,
			AggOp: matrix.AggSum, Root: root, SparseSafe: true}
		return f.compileAndSplice(h, p, []*hop.Hop{x})
	}
	if e.Kind != hop.OpBinary || e.BinOp != matrix.BinMul {
		return false
	}
	a, b := e.Inputs[0], e.Inputs[1]
	sameShape := func(p, q *hop.Hop) bool { return p.Rows == q.Rows && p.Cols == q.Cols }
	// sum(X*Y*Z): one side is itself a single-consumer multiply.
	if a.Kind == hop.OpBinary && a.BinOp == matrix.BinMul && a.NumConsumers() == 1 &&
		isLeafLike(a.Inputs[0]) && isLeafLike(a.Inputs[1]) && isLeafLike(b) &&
		sameShape(a.Inputs[0], b) {
		root := cplan.Binary(matrix.BinMul,
			cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0)),
			cplan.Side(1, cplan.AccessCell, 0))
		p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg,
			AggOp: matrix.AggSum, Root: root, SparseSafe: true, NumSides: 2}
		return f.compileAndSplice(h, p, []*hop.Hop{a.Inputs[0], a.Inputs[1], b})
	}
	// sum(X*Y)
	if isLeafLike(a) && isLeafLike(b) && sameShape(a, b) {
		root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Side(0, cplan.AccessCell, 0))
		p := &cplan.Plan{Type: cplan.TemplateCell, Cell: cplan.CellFullAgg,
			AggOp: matrix.AggSum, Root: root, SparseSafe: true, NumSides: 1}
		return f.compileAndSplice(h, p, []*hop.Hop{a, b})
	}
	return false
}

func isLeafLike(h *hop.Hop) bool {
	return h.Kind == hop.OpData || h.Kind == hop.OpDataGen || h.Kind == hop.OpLiteral ||
		h.Kind == hop.OpSpoof
}

// tryWdivmm matches ((X != 0) * (U %*% t(V))) %*% V, the hand-coded
// weighted divide-matrix-mult family used by ALS (Expression 1).
func (f *fusedCompiler) tryWdivmm(h *hop.Hop) bool {
	if h.Kind != hop.OpMatMult {
		return false
	}
	mul, v := h.Inputs[0], h.Inputs[1]
	if mul.Kind != hop.OpBinary || mul.BinOp != matrix.BinMul || mul.NumConsumers() != 1 {
		return false
	}
	mask, uvt := mul.Inputs[0], mul.Inputs[1]
	if uvt.Kind != hop.OpMatMult {
		mask, uvt = uvt, mask
	}
	if uvt.Kind != hop.OpMatMult || uvt.NumConsumers() != 1 ||
		uvt.Inputs[1].Kind != hop.OpTranspose || uvt.Inputs[1].Inputs[0] != v {
		return false
	}
	u := uvt.Inputs[0]
	if u.Cols > int64(f.cfg.OuterMaxRank) {
		return false
	}
	// Mask: X != 0 or plain X.
	var x *hop.Hop
	var root *cplan.CNode
	if mask.Kind == hop.OpBinary && mask.BinOp == matrix.BinNeq &&
		mask.Inputs[1].Kind == hop.OpLiteral && mask.Inputs[1].Value == 0 {
		x = mask.Inputs[0]
		root = cplan.Binary(matrix.BinMul,
			cplan.Binary(matrix.BinNeq, cplan.Main(0), cplan.Lit(0)), cplan.Dot())
	} else if mask.Rows == uvt.Rows && mask.Cols == uvt.Cols {
		x = mask
		root = cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Dot())
	} else {
		return false
	}
	p := &cplan.Plan{Type: cplan.TemplateOuter, Out: cplan.OuterRightMM,
		Root: root, SparseSafe: true, OuterRank: int(u.Cols)}
	return f.compileAndSplice(h, p, []*hop.Hop{x, u, v})
}

// tryWsloss matches sum(X * log(U %*% t(V) + eps)), the hand-coded
// weighted-sigmoid/loss family (Fig. 1d, Fig. 8h).
func (f *fusedCompiler) tryWsloss(h *hop.Hop) bool {
	if h.Kind != hop.OpAggUnary || h.AggDir != matrix.DirAll || h.AggOp != matrix.AggSum {
		return false
	}
	mul := h.Inputs[0]
	if mul.Kind != hop.OpBinary || mul.BinOp != matrix.BinMul {
		return false
	}
	x, lg := mul.Inputs[0], mul.Inputs[1]
	if lg.Kind != hop.OpUnary {
		x, lg = lg, x
	}
	if lg.Kind != hop.OpUnary || lg.UnOp != matrix.UnLog {
		return false
	}
	add := lg.Inputs[0]
	var uvt *hop.Hop
	var eps float64
	if add.Kind == hop.OpBinary && add.BinOp == matrix.BinAdd &&
		add.Inputs[1].Kind == hop.OpLiteral {
		uvt, eps = add.Inputs[0], add.Inputs[1].Value
	} else {
		uvt, eps = add, 0
	}
	if uvt.Kind != hop.OpMatMult || uvt.Inputs[1].Kind != hop.OpTranspose {
		return false
	}
	u, v := uvt.Inputs[0], uvt.Inputs[1].Inputs[0]
	if u.Cols > int64(f.cfg.OuterMaxRank) || x.Rows != uvt.Rows || x.Cols != uvt.Cols {
		return false
	}
	inner := cplan.Binary(matrix.BinAdd, cplan.Dot(), cplan.Lit(eps))
	root := cplan.Binary(matrix.BinMul, cplan.Main(0), cplan.Unary(matrix.UnLog, inner))
	p := &cplan.Plan{Type: cplan.TemplateOuter, Out: cplan.OuterAgg,
		Root: root, SparseSafe: true, OuterRank: int(u.Cols)}
	return f.compileAndSplice(h, p, []*hop.Hop{x, u, v})
}
