package obs

import (
	"math"
	"strings"
	"testing"
)

func TestAuditRelErrBuckets(t *testing.T) {
	var h RelErrHist
	for _, rel := range []float64{0.05, -0.2, 0.4, -0.9, 1.5, 4, 100} {
		h.add(rel)
	}
	want := [NumRelErrBuckets]int64{1, 1, 1, 1, 1, 1, 1}
	if h.Buckets != want {
		t.Fatalf("buckets = %v, want %v", h.Buckets, want)
	}
	if h.Under != 2 || h.Over != 5 {
		t.Fatalf("under/over = %d/%d, want 2/5", h.Under, h.Over)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
}

func TestAuditSummary(t *testing.T) {
	a := NewAudit()
	// Two Cell observations of the same operator: one accurate, one 3x over.
	a.Record(AuditEntry{Op: "spoof(Cell)", Template: "Cell",
		PredSec: 0.010, ActualSec: 0.010, PredFlops: 1e6, ActualFlops: 1e6})
	a.Record(AuditEntry{Op: "spoof(Cell)", Template: "Cell",
		PredSec: 0.030, ActualSec: 0.010})
	// One Row observation under a different label.
	a.Record(AuditEntry{Op: "spoof(Row)", Template: "Row",
		PredSec: 0.001, ActualSec: 0.100, PredBytes: 800, ActualBytes: 1600})
	// An unfused operator lands in the "basic" template.
	a.Record(AuditEntry{Op: "ba(+*)", PredSec: 0.002, ActualSec: 0.002})

	s := a.Summary()
	if len(s.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(s.Groups))
	}
	// Worst offender first: spoof(Row) mispredicts by 0.099s.
	if s.Groups[0].Op != "spoof(Row)" {
		t.Fatalf("worst offender = %s, want spoof(Row)", s.Groups[0].Op)
	}
	cell := s.Templates["Cell"]
	if cell.Count != 2 || cell.PredSec != 0.040 {
		t.Fatalf("Cell roll-up = %+v", cell)
	}
	// relerr 0 → bucket 0; relerr +2 → the <=2 bucket (index 4).
	if cell.RelErr.Buckets[0] != 1 || cell.RelErr.Buckets[4] != 1 {
		t.Fatalf("Cell rel-err buckets = %v", cell.RelErr.Buckets)
	}
	row := s.Templates["Row"]
	if row.Count != 1 || row.RelErr.Under != 1 {
		t.Fatalf("Row roll-up = %+v", row)
	}
	if basic := s.Templates["basic"]; basic.Count != 1 {
		t.Fatalf("basic roll-up = %+v", basic)
	}
	if math.Abs(s.TotalActualSec-0.122) > 1e-12 {
		t.Fatalf("total actual = %g, want 0.122", s.TotalActualSec)
	}

	out := s.String()
	for _, want := range []string{"# COST AUDIT", "Cell", "Row", "basic", "spoof(Row)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}

	// Per-group worst tracking: the 3x over-estimate must win for Cell.
	for _, g := range s.Groups {
		if g.Op == "spoof(Cell)" {
			if g.Worst.PredSec != 0.030 || math.Abs(g.WorstRel-2) > 1e-9 {
				t.Fatalf("worst = %+v rel=%g", g.Worst, g.WorstRel)
			}
		}
	}
}

func TestAuditNilSafe(t *testing.T) {
	var a *Audit
	a.Record(AuditEntry{Op: "x", PredSec: 1, ActualSec: 1})
	s := a.Summary()
	if len(s.Groups) != 0 || len(s.Templates) != 0 {
		t.Fatalf("nil audit summary = %+v", s)
	}
	if !strings.Contains(s.String(), "no audited operators") {
		t.Fatal("empty summary must say so")
	}
}

func TestAuditZeroActualFloored(t *testing.T) {
	e := AuditEntry{Op: "x", PredSec: 1e-7, ActualSec: 0}
	if r := e.RelErr(); math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatalf("rel err on zero actual = %g", r)
	}
}
