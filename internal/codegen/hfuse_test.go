package codegen_test

import (
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/rewrite"
)

// siblingDAG builds the flagship sibling group over one shared input:
// colSums(X), sum(X^2), X*3+1.
func siblingDAG(rows, cols int64) *hop.DAG {
	d := hop.NewDAG()
	x := d.Read("X", rows, cols, -1)
	d.Output("C", d.ColSums(x))
	d.Output("s", d.Sum(d.Binary(matrix.BinMul, x, x)))
	d.Output("Y", d.Binary(matrix.BinAdd,
		d.Binary(matrix.BinMul, x, d.Lit(3)), d.Lit(1)))
	return d
}

func optimizeSiblings(rows, cols int64, disable bool) []*hop.Hop {
	cfg := codegen.DefaultConfig()
	cfg.DisableHFuse = disable
	d, _ := rewrite.Apply(siblingDAG(rows, cols))
	d = codegen.Optimize(d, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
	var spoofs []*hop.Hop
	for _, h := range hop.TopoOrder(d.Roots()) {
		if h.Kind == hop.OpSpoof && h.SpoofType == "Horizontal" {
			spoofs = append(spoofs, h)
		}
	}
	return spoofs
}

// TestHorizontalConstruction: the sibling group merges into exactly one
// Horizontal operator at scale, and the merged operator carries the fused
// whole-group body.
func TestHorizontalConstruction(t *testing.T) {
	spoofs := optimizeSiblings(4096, 2048, false)
	if len(spoofs) != 1 {
		t.Fatalf("expected one Horizontal operator, got %d", len(spoofs))
	}
	op, ok := spoofs[0].Spoof.(interface{ ChunkClasses() []string })
	if !ok {
		t.Fatal("Horizontal spoof payload has no chunk classes")
	}
	fused := false
	for _, c := range op.ChunkClasses() {
		if c == "horiz.fused" {
			fused = true
		}
	}
	if !fused {
		t.Fatalf("merged operator must carry the fused body, classes %v", op.ChunkClasses())
	}
}

// TestHorizontalAdversarialDeclines: the cost gate must keep the vertical
// plan on a tiny shared input, and DisableHFuse must suppress merging at
// any scale.
func TestHorizontalAdversarialDeclines(t *testing.T) {
	if n := len(optimizeSiblings(64, 64, false)); n != 0 {
		t.Fatalf("tiny input must decline horizontal fusion, got %d operators", n)
	}
	if n := len(optimizeSiblings(4096, 2048, true)); n != 0 {
		t.Fatalf("DisableHFuse must suppress merging, got %d operators", n)
	}
}
