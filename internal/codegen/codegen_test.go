package codegen_test

import (
	"strings"
	"testing"

	"sysml/internal/codegen"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/rewrite"
	"sysml/internal/runtime"
)

// mlogregDAG builds the paper's Fig. 5 example DAG: Expression (2).
func mlogregDAG() *hop.DAG {
	d := hop.NewDAG()
	x := d.Read("X", 1000, 100, -1)
	v := d.Read("v", 100, 3, -1)
	p := d.Read("P", 1000, 4, -1)
	pk := d.Index(p, 0, 1000, 0, 3)
	q := d.Binary(matrix.BinMul, pk, d.MatMult(x, v))
	h := d.MatMult(d.Transpose(x),
		d.Binary(matrix.BinSub, q, d.Binary(matrix.BinMul, pk, d.RowSums(q))))
	d.Output("H", h)
	return d
}

func TestExploreMLogregMemo(t *testing.T) {
	cfg := codegen.DefaultConfig()
	d := mlogregDAG()
	memo := codegen.Explore(d.Roots(), &cfg)
	// The final matmult must hold the three Row alternatives of Fig. 5:
	// fuse right, fuse left, fuse both.
	final := d.Outputs["H"]
	g := memo.Get(final.ID)
	if g == nil {
		t.Fatalf("no group for final matmult; memo:\n%s", memo)
	}
	var fuseLeft, fuseRight, fuseBoth bool
	for _, e := range g.Entries {
		if e.Type.String() != "Row" {
			continue
		}
		l, r := e.Inputs[0] >= 0, e.Inputs[1] >= 0
		switch {
		case l && r:
			fuseBoth = true
		case l:
			fuseLeft = true
		case r:
			fuseRight = true
		}
	}
	if !fuseLeft || !fuseRight || !fuseBoth {
		t.Fatalf("missing Row alternatives at final matmult (left=%v right=%v both=%v)\n%s",
			fuseLeft, fuseRight, fuseBoth, memo)
	}
	// rowSums(Q) must hold R(-1), R(ref) and C(ref) like group 7 in Fig. 5.
	rs := final.Inputs[1].Inputs[1].Inputs[1] // b(-) -> b(*) -> ua(R+)
	if rs.Kind != hop.OpAggUnary {
		t.Fatalf("unexpected DAG shape: %v", rs)
	}
	grs := memo.Get(rs.ID)
	if grs == nil {
		t.Fatal("no group at rowSums")
	}
	hasRowOpen, hasRowRef, hasCellRef := false, false, false
	for _, e := range grs.Entries {
		switch {
		case e.Type.String() == "Row" && !e.HasRef():
			hasRowOpen = true
		case e.Type.String() == "Row" && e.HasRef():
			hasRowRef = true
		case e.Type.String() == "Cell" && e.HasRef():
			hasCellRef = true
		}
	}
	if !hasRowOpen || !hasRowRef || !hasCellRef {
		t.Fatalf("rowSums group incomplete (Ropen=%v Rref=%v Cref=%v):\n%s",
			hasRowOpen, hasRowRef, hasCellRef, memo)
	}
	// No C(-1) at rowSums: closed-valid entries without refs are pruned.
	for _, e := range grs.Entries {
		if e.Type.String() == "Cell" && !e.HasRef() {
			t.Fatalf("unpruned single-op cell plan at rowSums: %v", e)
		}
	}
}

// patterns used for cross-mode equivalence testing.
var eqPatterns = []struct {
	name  string
	build func() *hop.DAG
	env   func() runtime.Env
}{
	{
		name: "sumXYZ-dense",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 300, 40, -1)
			y := d.Read("Y", 300, 40, -1)
			z := d.Read("Z", 300, 40, -1)
			d.Output("s", d.Sum(d.Binary(matrix.BinMul, d.Binary(matrix.BinMul, x, y), z)))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(300, 40, 1, -1, 1, 1),
				"Y": matrix.Rand(300, 40, 1, -1, 1, 2),
				"Z": matrix.Rand(300, 40, 1, -1, 1, 3),
			}
		},
	},
	{
		name: "sumXYZ-sparse",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 300, 40, 1200)
			y := d.Read("Y", 300, 40, -1)
			z := d.Read("Z", 300, 40, -1)
			d.Output("s", d.Sum(d.Binary(matrix.BinMul, d.Binary(matrix.BinMul, x, y), z)))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(300, 40, 0.1, -1, 1, 4),
				"Y": matrix.Rand(300, 40, 1, -1, 1, 5),
				"Z": matrix.Rand(300, 40, 1, -1, 1, 6),
			}
		},
	},
	{
		name: "multiAgg",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 200, 50, -1)
			y := d.Read("Y", 200, 50, -1)
			z := d.Read("Z", 200, 50, -1)
			d.Output("s1", d.Sum(d.Binary(matrix.BinMul, x, y)))
			d.Output("s2", d.Sum(d.Binary(matrix.BinMul, x, z)))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(200, 50, 1, -1, 1, 7),
				"Y": matrix.Rand(200, 50, 1, -1, 1, 8),
				"Z": matrix.Rand(200, 50, 1, -1, 1, 9),
			}
		},
	},
	{
		name: "mvchain",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 400, 30, -1)
			v := d.Read("v", 30, 1, -1)
			d.Output("w", d.MatMult(d.Transpose(x), d.MatMult(x, v)))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(400, 30, 1, -1, 1, 10),
				"v": matrix.Rand(30, 1, 1, -1, 1, 11),
			}
		},
	},
	{
		name:  "mlogreg",
		build: mlogregDAG,
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(1000, 100, 1, -1, 1, 12),
				"v": matrix.Rand(100, 3, 1, -1, 1, 13),
				"P": matrix.Rand(1000, 4, 1, 0, 1, 14),
			}
		},
	},
	{
		name: "als-update",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 300, 200, 3000)
			u := d.Read("U", 300, 10, -1)
			v := d.Read("V", 200, 10, -1)
			mask := d.Binary(matrix.BinNeq, x, d.Lit(0))
			uvt := d.MatMult(u, d.Transpose(v))
			o := d.MatMult(d.Binary(matrix.BinMul, mask, uvt), v)
			d.Output("O", o)
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(300, 200, 0.05, 1, 2, 15),
				"U": matrix.Rand(300, 10, 1, -1, 1, 16),
				"V": matrix.Rand(200, 10, 1, -1, 1, 17),
			}
		},
	},
	{
		name: "wsloss",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 250, 150, 2000)
			u := d.Read("U", 250, 8, -1)
			v := d.Read("V", 150, 8, -1)
			uvt := d.MatMult(u, d.Transpose(v))
			lg := d.Unary(matrix.UnLog, d.Binary(matrix.BinAdd, uvt, d.Lit(1e-15)))
			d.Output("s", d.Sum(d.Binary(matrix.BinMul, x, lg)))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(250, 150, 0.05, 1, 2, 18),
				"U": matrix.Rand(250, 8, 1, 0.1, 1, 19),
				"V": matrix.Rand(150, 8, 1, 0.1, 1, 20),
			}
		},
	},
	{
		name: "rownorm",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 200, 60, -1)
			d.Output("N", d.Binary(matrix.BinDiv, x, d.RowSums(x)))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{"X": matrix.Rand(200, 60, 1, 1, 2, 21)}
		},
	},
	{
		name: "cse-two-consumers",
		build: func() *hop.DAG {
			d := hop.NewDAG()
			x := d.Read("X", 150, 80, -1)
			y := d.Read("Y", 150, 80, -1)
			r := d.Binary(matrix.BinMul, x, y)
			d.Output("s", d.Sum(r))
			d.Output("rs", d.RowSums(d.Binary(matrix.BinAdd, r, d.Lit(1))))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(150, 80, 1, -1, 1, 22),
				"Y": matrix.Rand(150, 80, 1, -1, 1, 23),
			}
		},
	},
	{
		name: "l2svm-core",
		build: func() *hop.DAG {
			// out = t(X) %*% (out12 * y) style pattern with scalar chains.
			d := hop.NewDAG()
			x := d.Read("X", 300, 20, -1)
			y := d.Read("y", 300, 1, -1)
			w := d.Read("w", 20, 1, -1)
			out := d.Binary(matrix.BinMul, y, d.MatMult(x, w))
			sv := d.Binary(matrix.BinLt, out, d.Lit(1))
			g := d.MatMult(d.Transpose(x), d.Binary(matrix.BinMul, sv, y))
			d.Output("g", g)
			d.Output("hinge", d.Sum(d.Binary(matrix.BinMax,
				d.Binary(matrix.BinSub, d.Lit(1), out), d.Lit(0))))
			return d
		},
		env: func() runtime.Env {
			return runtime.Env{
				"X": matrix.Rand(300, 20, 1, -1, 1, 24),
				"y": matrix.Rand(300, 1, 1, -1, 1, 25),
				"w": matrix.Rand(20, 1, 1, -1, 1, 26),
			}
		},
	},
}

func TestOptimizeEquivalenceAcrossModes(t *testing.T) {
	modes := []codegen.Mode{codegen.ModeBase, codegen.ModeFused, codegen.ModeGen,
		codegen.ModeGenFA, codegen.ModeGenFNR}
	for _, pat := range eqPatterns {
		env := pat.env()
		// Reference: basic execution of the unoptimized DAG.
		refDAG, _ := rewrite.Apply(pat.build())
		ref, err := runtime.ExecuteDAG(refDAG, env, runtime.Options{})
		if err != nil {
			t.Fatalf("%s: reference exec: %v", pat.name, err)
		}
		for _, mode := range modes {
			cfg := codegen.DefaultConfig()
			cfg.Mode = mode
			cache := codegen.NewPlanCache(true)
			stats := codegen.NewStats()
			d, _ := rewrite.Apply(pat.build())
			d = codegen.Optimize(d, &cfg, cache, stats)
			got, err := runtime.ExecuteDAG(d, env, runtime.Options{})
			if err != nil {
				t.Fatalf("%s/%v: exec: %v\n%s", pat.name, mode, err, hop.Explain(d.Roots()))
			}
			for name, want := range ref {
				if !got[name].EqualsApprox(want, 1e-7) {
					t.Errorf("%s/%v: output %q differs\nplan:\n%s",
						pat.name, mode, name, hop.Explain(d.Roots()))
				}
			}
		}
	}
}

func TestGenProducesFusedOperators(t *testing.T) {
	// mvchain and rownorm are Row-template patterns whose test sizes fall
	// below the per-row dispatch profitability threshold: Gen correctly
	// declines fusion there (covered at scale in
	// TestGenSelectsExpectedTemplates).
	declined := map[string]bool{"mvchain": true, "rownorm": true}
	for _, pat := range eqPatterns {
		if declined[pat.name] {
			continue
		}
		cfg := codegen.DefaultConfig()
		cache := codegen.NewPlanCache(true)
		stats := codegen.NewStats()
		d, _ := rewrite.Apply(pat.build())
		d = codegen.Optimize(d, &cfg, cache, stats)
		found := false
		for _, h := range hop.TopoOrder(d.Roots()) {
			if h.Kind == hop.OpSpoof {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: Gen produced no fused operators:\n%s", pat.name, hop.Explain(d.Roots()))
		}
	}
}

func TestGenSelectsExpectedTemplates(t *testing.T) {
	check := func(name string, idx int, want string) {
		cfg := codegen.DefaultConfig()
		d, _ := rewrite.Apply(eqPatterns[idx].build())
		d = codegen.Optimize(d, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
		var types []string
		for _, h := range hop.TopoOrder(d.Roots()) {
			if h.Kind == hop.OpSpoof {
				types = append(types, h.SpoofType)
			}
		}
		if len(types) == 0 || !strings.Contains(strings.Join(types, ","), want) {
			t.Errorf("%s: expected template %s, got %v\n%s", name, want, types, hop.Explain(d.Roots()))
		}
	}
	check("sumXYZ", 0, "Cell")
	check("multiAgg", 2, "MAgg")
	check("als-update", 5, "Outer")
	check("wsloss", 6, "Outer")
	// Row selection at a size where fusion is profitable (the per-row
	// dispatch model declines tiny inputs).
	d := hop.NewDAG()
	x := d.Read("X", 50000, 100, -1)
	v := d.Read("v", 100, 1, -1)
	d.Output("w", d.MatMult(d.Transpose(x), d.MatMult(x, v)))
	cfg := codegen.DefaultConfig()
	dd, _ := rewrite.Apply(d)
	dd = codegen.Optimize(dd, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
	foundRow := false
	for _, h := range hop.TopoOrder(dd.Roots()) {
		if h.Kind == hop.OpSpoof && h.SpoofType == "Row" {
			foundRow = true
		}
	}
	if !foundRow {
		t.Errorf("mvchain at scale: expected Row template\n%s", hop.Explain(dd.Roots()))
	}
}

func TestPlanCacheReuse(t *testing.T) {
	cfg := codegen.DefaultConfig()
	cache := codegen.NewPlanCache(true)
	stats := codegen.NewStats()
	for i := 0; i < 3; i++ {
		d, _ := rewrite.Apply(eqPatterns[0].build())
		codegen.Optimize(d, &cfg, cache, stats)
	}
	if stats.OperatorsCompiled != 1 {
		t.Fatalf("expected 1 compile, got %d", stats.OperatorsCompiled)
	}
	if stats.CacheHits < 2 {
		t.Fatalf("expected >=2 cache hits, got %d", stats.CacheHits)
	}
	// Disabled cache compiles every time.
	cache2 := codegen.NewPlanCache(false)
	stats2 := codegen.NewStats()
	for i := 0; i < 3; i++ {
		d, _ := rewrite.Apply(eqPatterns[0].build())
		codegen.Optimize(d, &cfg, cache2, stats2)
	}
	if stats2.OperatorsCompiled != 3 || stats2.CacheHits != 0 {
		t.Fatalf("disabled cache: compiled=%d hits=%d", stats2.OperatorsCompiled, stats2.CacheHits)
	}
}

func TestEnumerationCountersAndPruning(t *testing.T) {
	// The CSE pattern has materialization points; pruning must not change
	// the chosen plan's cost, only the number of evaluated plans.
	build := eqPatterns[8].build
	run := func(part, costP, structP bool) (int64, float64) {
		cfg := codegen.DefaultConfig()
		cfg.EnablePartition, cfg.EnableCostPrune, cfg.EnableStructPrune = part, costP, structP
		d, _ := rewrite.Apply(build())
		memo := codegen.Explore(d.Roots(), &cfg)
		parts := codegen.BuildPartitions(memo, d.Roots())
		var evaluated int64
		var cost float64
		for _, p := range parts {
			en := codegen.NewEnumerator(&cfg, memo, p)
			en.Best()
			evaluated += en.Evaluated
			cost += en.BestCost()
		}
		return evaluated, cost
	}
	evalAll, costAll := run(true, false, false)
	evalPruned, costPruned := run(true, true, true)
	if evalPruned > evalAll {
		t.Fatalf("pruning increased evaluated plans: %d > %d", evalPruned, evalAll)
	}
	if costPruned > costAll*1.0000001 {
		t.Fatalf("pruning changed plan quality: %v vs %v", costPruned, costAll)
	}
}

func TestJavacCompilerPath(t *testing.T) {
	cfg := codegen.DefaultConfig()
	cfg.Compiler = codegen.CompilerJavac
	cache := codegen.NewPlanCache(true)
	stats := codegen.NewStats()
	d, _ := rewrite.Apply(eqPatterns[0].build())
	d = codegen.Optimize(d, &cfg, cache, stats)
	env := eqPatterns[0].env()
	got, err := runtime.ExecuteDAG(d, env, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refDAG, _ := rewrite.Apply(eqPatterns[0].build())
	ref, _ := runtime.ExecuteDAG(refDAG, env, runtime.Options{})
	if !got["s"].EqualsApprox(ref["s"], 1e-9) {
		t.Fatal("javac path produced wrong operator")
	}
	if stats.CompileTime <= 0 {
		t.Fatal("compile time not recorded")
	}
}

func TestMemoStringNotation(t *testing.T) {
	cfg := codegen.DefaultConfig()
	d := mlogregDAG()
	memo := codegen.Explore(d.Roots(), &cfg)
	s := memo.String()
	// Fig. 5 notation: R(...) entries with -1 for materialized inputs.
	if !strings.Contains(s, "R(-1") && !strings.Contains(s, "R(10") {
		t.Fatalf("memo rendering missing Row entries:\n%s", s)
	}
	if !strings.Contains(s, "ba(+*)") {
		t.Fatalf("memo rendering missing operator names:\n%s", s)
	}
}

func TestFusedModeMMChainPattern(t *testing.T) {
	// The hand-coded mmchain operator applies to t(X)%*%(X%*%v) but not to
	// the matrix-matrix variant (paper Fig. 8g discussion).
	cfg := codegen.DefaultConfig()
	cfg.Mode = codegen.ModeFused
	dv, _ := rewrite.Apply(eqPatterns[3].build()) // mvchain
	dv = codegen.Optimize(dv, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
	foundRow := false
	for _, h := range hop.TopoOrder(dv.Roots()) {
		if h.Kind == hop.OpSpoof && h.SpoofType == "Row" {
			foundRow = true
		}
	}
	if !foundRow {
		t.Fatal("Fused mode must apply the hand-coded mmchain operator")
	}
	// Matrix-matrix chain: no hand-coded operator.
	d := hop.NewDAG()
	x := d.Read("X", 400, 30, -1)
	v := d.Read("V", 30, 2, -1)
	d.Output("W", d.MatMult(d.Transpose(x), d.MatMult(x, v)))
	dd, _ := rewrite.Apply(d)
	dd = codegen.Optimize(dd, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
	for _, h := range hop.TopoOrder(dd.Roots()) {
		if h.Kind == hop.OpSpoof {
			t.Fatal("Fused mode must not cover the matrix-matrix chain")
		}
	}
}

func TestCumsumRowPattern(t *testing.T) {
	// t(cumsum(t(X))) is recognized as one Row-template operator (§3.2's
	// rare exception) and computes row-wise running sums.
	build := func() *hop.DAG {
		d := hop.NewDAG()
		x := d.Read("X", 5000, 64, -1)
		d.Output("Y", d.Transpose(d.CumsumOp(d.Transpose(x))))
		return d
	}
	env := runtime.Env{"X": matrix.Rand(5000, 64, 1, -1, 1, 99)}
	refDAG, _ := rewrite.Apply(build())
	ref, err := runtime.ExecuteDAG(refDAG, env, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := codegen.DefaultConfig()
	d, _ := rewrite.Apply(build())
	d = codegen.Optimize(d, &cfg, codegen.NewPlanCache(true), codegen.NewStats())
	foundRow := false
	for _, h := range hop.TopoOrder(d.Roots()) {
		if h.Kind == hop.OpSpoof && h.SpoofType == "Row" {
			foundRow = true
		}
	}
	if !foundRow {
		t.Fatalf("t(cumsum(t(X))) not fused:\n%s", hop.Explain(d.Roots()))
	}
	got, err := runtime.ExecuteDAG(d, env, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got["Y"].EqualsApprox(ref["Y"], 1e-9) {
		t.Fatal("fused row-wise cumsum differs from reference")
	}
}
