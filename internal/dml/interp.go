package dml

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/hop"
	"sysml/internal/matrix"
	"sysml/internal/obs"
	"sysml/internal/par"
	"sysml/internal/rewrite"
	"sysml/internal/runtime"
)

// Session executes DML-subset scripts. Statement blocks compile to HOP
// DAGs that flow through rewrites and the codegen optimizer; the plan cache
// and codegen statistics persist across blocks and loop iterations
// (dynamic recompilation per §2.1).
type Session struct {
	Config codegen.Config
	Cache  *codegen.PlanCache
	Stats  *codegen.Stats
	Env    runtime.Env
	Out    io.Writer
	Dist   runtime.DistBackend

	// Par is the worker pool that executes this session's parallel regions
	// and Alloc the buffer pool backing its matrix allocations. Both are
	// nil-safe: a nil pool delegates to the process-wide default, so a
	// plain NewSession behaves exactly as before. A serving engine sets
	// both so concurrent tenants stay isolated in scheduling and memory
	// accounting.
	Par   *par.Pool
	Alloc *matrix.BufPool

	// Obs collects runtime metrics (per-operator timings, fused-operator
	// invocations, phase breakdowns). Always non-nil for sessions built via
	// NewSession; a nil Obs disables collection (all methods are nil-safe).
	Obs *obs.Metrics

	// Sink, when non-nil, receives explain reports and trace spans for
	// every optimized statement block. Attach an *obs.TraceSink to export
	// a run as Chrome trace-event JSON.
	Sink obs.Sink

	// Audit is the cost-audit ledger: predicted vs measured cost of every
	// executed operator that carries an optimizer prediction. Always
	// non-nil for sessions built via NewSession; nil disables auditing.
	Audit *obs.Audit

	// Calib, when non-nil, is the online cost-model calibrator: it receives
	// every audited execution observation, and whenever its fitted
	// constants change generation the session adopts them into
	// Config.Costs and re-optimizes cached block plans lazily on their
	// next use. A serving engine shares one calibrator across all tenant
	// sessions (the per-machine profile is an engine-level property).
	Calib *codegen.Calibrator

	// ExplainOut, when set, receives the textual EXPLAIN report of every
	// freshly optimized block (SystemML's EXPLAIN hops output).
	ExplainOut io.Writer

	// Blocks counts compiled statement blocks (optimized HOP DAGs);
	// BlockCacheHits counts reuses of previously optimized blocks.
	Blocks         int64
	BlockCacheHits int64

	blockCache map[string]*blockEntry
	bound      map[*matrix.Matrix]bool // matrices handed in via Bind (caller-owned)

	nnzHints   map[string]int64 // sparsity estimates from BindWithNnz, dropped on divergence
	calibGen   uint64           // calibrator generation Config.Costs was last synced to
	blockReopt map[string]int   // time-triggered re-optimizations per block key (capped)
}

// blockEntry is one cached optimized block plan plus the bookkeeping
// mid-script re-optimization needs: the compiled operators' plan-cache
// hashes (invalidated when the entry is discarded, so no view serves a
// stale operator) and the calibration generation the plan was costed
// under.
type blockEntry struct {
	dag      *hop.DAG
	hashes   []uint64
	calibGen uint64
}

// execCtx is the execution context threaded into every runtime call:
// the session's own pools, or the process defaults when unset.
func (s *Session) execCtx() matrix.Ctx {
	return matrix.Ctx{Par: s.Par, Buf: s.Alloc}
}

// NewSession creates a session with the given optimizer configuration.
func NewSession(cfg codegen.Config) *Session {
	return &Session{
		Config: cfg,
		Cache:  codegen.NewPlanCacheSized(cfg.PlanCache, cfg.PlanCacheSize),
		Stats:  codegen.NewStats(),
		Env:    runtime.Env{},
		Out:    os.Stdout,
		Obs:    obs.NewMetrics(),
		Audit:  obs.NewAudit(),
	}
}

// Bind sets an input variable. The matrix stays caller-owned: Close will
// not release it back to the session's buffer pool.
func (s *Session) Bind(name string, m *matrix.Matrix) {
	if s.bound == nil {
		s.bound = map[*matrix.Matrix]bool{}
	}
	s.bound[m] = true
	s.setEnv(name, m)
}

// BindScalar sets a scalar input variable.
func (s *Session) BindScalar(name string, v float64) { s.setEnv(name, matrix.NewScalar(v)) }

// BindWithNnz is Bind with an explicit nonzero-count estimate: block plans
// reading name are optimized under this sparsity instead of the matrix's
// scanned count (SystemML's metadata-driven compilation — exact counts are
// not always available at bind time). A wrong estimate is self-correcting
// when Config.Reopt is enabled: the executed block measures the actual
// nonzero count, and on divergence beyond Reopt.SparsityFactor the hint is
// dropped and the block's cached plan invalidated, so the next execution
// (e.g. the next loop iteration) runs a plan optimized with exact counts.
func (s *Session) BindWithNnz(name string, m *matrix.Matrix, nnz int64) {
	s.Bind(name, m)
	if s.nnzHints == nil {
		s.nnzHints = map[string]int64{}
	}
	s.nnzHints[name] = nnz
}

// setEnv rebinds a variable, dropping the distributed backend's broadcast
// handle of the previous binding: after a rebind the old matrix may be
// recycled or mutated out from under a cached handle, so reusing it would
// serve stale data. (The matrix may still reach executors through another
// binding — that costs a conservative re-broadcast, never wrong results.)
//
// A session-owned previous result that no other variable references is
// released back to the buffer pool: re-running a block would otherwise
// leak every overwritten output to GC and large re-allocations would miss
// the pool. This extends the Reset contract — a matrix retrieved via Get
// becomes invalid once its variable is reassigned by a later Run.
func (s *Session) setEnv(name string, m *matrix.Matrix) {
	old, ok := s.Env[name]
	if ok && old != m {
		if s.Dist != nil {
			s.Dist.Invalidate(old)
		}
		if !s.bound[old] && !s.envRefs(name, old) {
			old.Release()
		}
	}
	s.Env[name] = m
}

// setEnvAll rebinds a block's whole output set, then releases overwritten
// session-owned results that no variable references anymore. The release
// must run after every assignment: an output may itself be the previous
// matrix of a different name (tmp = Y alongside Y = Y + 1), so releasing
// per-assignment could recycle storage a pending binding still needs.
func (s *Session) setEnvAll(out map[string]*matrix.Matrix) {
	orphans := map[*matrix.Matrix]bool{}
	for name, m := range out {
		if old, ok := s.Env[name]; ok && old != m {
			if s.Dist != nil {
				s.Dist.Invalidate(old)
			}
			if !s.bound[old] {
				orphans[old] = true
			}
		}
		s.Env[name] = m
	}
	for old := range orphans {
		if !s.envRefs("", old) {
			old.Release()
		}
	}
}

// envRefs reports whether any variable other than name is bound to m (an
// aliased result must survive the overwrite of one of its names).
func (s *Session) envRefs(name string, m *matrix.Matrix) bool {
	for n, v := range s.Env {
		if n != name && v == m {
			return true
		}
	}
	return false
}

// Reset releases the session's pooled intermediates back to its buffer
// pool and clears the environment, keeping the optimized block-plan cache
// warm for the next same-shaped run (the serving path's pooled sessions).
// Matrices the caller handed in via Bind are left untouched; matrices
// retrieved via Get become invalid (their storage may be recycled).
func (s *Session) Reset() {
	for name, m := range s.Env {
		if !s.bound[m] {
			m.Release()
		}
		delete(s.Env, name)
	}
	s.bound = nil
}

// Close is Reset plus dropping the block-plan cache: full teardown of the
// session's pooled state. Close is idempotent and the session may be
// reused afterwards with fresh bindings.
func (s *Session) Close() {
	s.Reset()
	s.blockCache = nil
}

// Run parses and executes a script against the bound inputs; results stay
// in the session environment.
func (s *Session) Run(script string) error {
	return s.RunContext(context.Background(), script)
}

// RunContext is Run with cancellation: the context is checked between
// statement blocks and polled inside fused-operator and control-flow
// loops, so canceling promptly aborts even long-running scripts. The
// session environment keeps all results of blocks that completed before
// the cancellation; the partial output of the canceled block is discarded.
//
// When the context carries a request ID (obs.ContextWithRequestID — the
// serving frontend threads the X-Request-ID of every /v1/run), the run's
// root span is annotated with it, so the whole
// parse/compile/optimize/execute hierarchy is attributable to the
// originating request in trace exports.
func (s *Session) RunContext(ctx context.Context, script string) error {
	return s.RunInSpan(ctx, script, obs.Span{})
}

// RunInSpan is RunContext with an explicit parent trace span: when parent
// is active (sink-attached), the run's "run" span — and under it the full
// compile/optimize/execute/per-operator hierarchy — nests as a child of
// parent instead of opening a new root. The serving frontend uses this to
// stitch each request's execution into its request-scoped span tree; a
// zero parent behaves exactly like RunContext.
func (s *Session) RunInSpan(ctx context.Context, script string, parent obs.Span) error {
	var root obs.Span
	if parent.Active() {
		root = parent.Child("run")
	} else {
		root = obs.StartSpan(nil, s.Sink, "run")
	}
	if rid := obs.RequestIDFromContext(ctx); rid != "" {
		root.Annotate(obs.KV("request.id", rid))
	}
	defer root.End()
	sp := root.Phase(s.Obs, "parse")
	prog, err := Parse(script)
	sp.End()
	if err != nil {
		return err
	}
	return s.exec(ctx, root, prog.Stmts)
}

// Get returns a variable from the environment, or an *UnboundVarError if
// the name is not bound.
func (s *Session) Get(name string) (*matrix.Matrix, error) {
	m, ok := s.Env[name]
	if !ok {
		return nil, &UnboundVarError{Name: name}
	}
	return m, nil
}

// Scalar returns a scalar variable's value. It returns an
// *UnboundVarError if the name is not bound and a *ShapeError if the
// variable is not 1x1.
func (s *Session) Scalar(name string) (float64, error) {
	m, ok := s.Env[name]
	if !ok {
		return 0, &UnboundVarError{Name: name}
	}
	if m.Rows != 1 || m.Cols != 1 {
		return 0, shapeErrf(0, "variable %q is not scalar (%dx%d)", name, m.Rows, m.Cols)
	}
	return m.Scalar(), nil
}

// Explain compiles and runs the script on a shadow of this session (same
// configuration and input bindings, separate environment and statistics)
// and returns the concatenated EXPLAIN reports of every optimized block:
// HOP DAG before/after fusion, memo-table interesting points, evaluated
// vs. hypothetical plan counts, estimated plan cost, and constructed
// fused operators. The receiving session is left untouched.
func (s *Session) Explain(script string) (string, error) {
	col := &obs.Collector{}
	env := runtime.Env{}
	for k, v := range s.Env {
		env[k] = v
	}
	hints := make(map[string]int64, len(s.nnzHints))
	for k, v := range s.nnzHints {
		hints[k] = v
	}
	shadow := &Session{
		Config:   s.Config,
		Cache:    codegen.NewPlanCacheSized(s.Config.PlanCache, s.Config.PlanCacheSize),
		Stats:    codegen.NewStats(),
		Env:      env,
		Out:      io.Discard,
		Dist:     s.Dist,
		Par:      s.Par,
		Alloc:    s.Alloc,
		Obs:      obs.NewMetrics(),
		Audit:    obs.NewAudit(),
		Sink:     col,
		Calib:    s.Calib,
		nnzHints: hints,
	}
	before := s.Alloc.Stats()
	var db distExplainDeltas
	db.capture(s.Dist)
	if err := shadow.Run(script); err != nil {
		return "", err
	}
	after := s.Alloc.Stats()
	var b strings.Builder
	for _, e := range col.Events() {
		if e.Kind == obs.EventExplain {
			b.WriteString(e.Text)
		}
	}
	// Buffer-pool lifecycle over the shadow run: how many intermediate
	// allocations the lineage refcounting turned into recycled buffers.
	gets, hits, puts := after.Gets-before.Gets, after.Hits-before.Hits, after.Puts-before.Puts
	recycled := after.BytesRecycled - before.BytesRecycled
	b.WriteString("\nBUFFER POOL (this run)\n")
	fmt.Fprintf(&b, "  pooled allocations: %d (hits %d, misses %d)\n", gets, hits, gets-hits)
	fmt.Fprintf(&b, "  buffers returned:   %d\n", puts)
	rate := 0.0
	if gets > 0 {
		rate = float64(hits) / float64(gets) * 100
	}
	fmt.Fprintf(&b, "  bytes recycled:     %d (hit rate %.1f%%)\n", recycled, rate)
	// Compression activity over the shadow run. The shadow shares this
	// session's input bindings, so attachments made here persist and warm
	// the real session, mirroring the broadcast handle cache.
	cs := shadow.Obs.Snapshot()
	hit, fb := cs.Counters["compress.exec.hit"], cs.Counters["compress.exec.fallback"]
	ac, ad := cs.Counters["compress.auto.compressed"], cs.Counters["compress.auto.declined"]
	if hit+fb+ac+ad > 0 {
		b.WriteString("\nCOMPRESSED (this run)\n")
		fmt.Fprintf(&b, "  inputs compressed:  %d (declined %d)\n", ac, ad)
		if r, ok := cs.Gauges["compress.ratio"]; ok {
			fmt.Fprintf(&b, "  compression ratio:  %.2f\n", r)
		}
		fmt.Fprintf(&b, "  operator execution: %d compressed, %d fallback\n", hit, fb)
	}
	db.report(&b, s.Dist)
	// Cost-model calibration state: the constants the shadow run's plans
	// were priced under, next to the paper-default priors.
	if s.Calib != nil {
		st := s.Calib.State()
		b.WriteString("\nCALIBRATION\n")
		fmt.Fprintf(&b, "  source: %s  generation: %d  refits: %d\n", st.Source, st.Gen, st.Refits)
		fmt.Fprintf(&b, "  observations:       %d accepted, %d skipped (warm-up/floor)\n", st.Samples, st.Skipped)
		fmt.Fprintf(&b, "  read bandwidth:     %.3g B/s (prior %.3g)\n", st.Model.ReadBW, st.Prior.ReadBW)
		fmt.Fprintf(&b, "  write bandwidth:    %.3g B/s (prior %.3g)\n", st.Model.WriteBW, st.Prior.WriteBW)
		fmt.Fprintf(&b, "  flop rate:          %.3g FLOP/s (prior %.3g)\n", st.Model.ComputeBW, st.Prior.ComputeBW)
		fmt.Fprintf(&b, "  broadcast bandwidth: %.3g B/s (prior %.3g)\n", st.Model.BroadcastBW, st.Prior.BroadcastBW)
	}
	return b.String(), nil
}

// distExplainDeltas snapshots the distributed backend's cumulative traffic
// counters around an Explain shadow run, so the DISTRIBUTED section shows
// only the traffic this run caused. The shadow session shares the cluster,
// so the broadcast handle cache behaves exactly as it would live (a side
// already cached by earlier real runs stays a hit).
type distExplainDeltas struct {
	active                   bool
	bcastBytes, shuffleBytes int64
	hits, misses, invals     int64
	netNanos                 int64
	stages                   map[string]int64
	faults                   map[string]int64
	cwBcast, cwBcastSaved    int64
	cwShuffle, cwShufSaved   int64
}

func (d *distExplainDeltas) capture(b runtime.DistBackend) {
	st, ok := b.(distStats)
	if !ok {
		return
	}
	d.active = true
	d.bcastBytes, d.shuffleBytes = st.BytesBroadcast(), st.BytesShuffled()
	d.netNanos = int64(st.NetTime())
	if det, ok := b.(distDetail); ok {
		d.hits, d.misses, d.invals = det.BroadcastCacheStats()
		d.stages = det.ShuffleStageBytes()
	}
	if ft, ok := b.(distFaults); ok && ft.FaultActive() {
		d.faults = ft.FaultCounters()
	}
	if cw, ok := b.(distCompress); ok {
		d.cwBcast, d.cwBcastSaved, d.cwShuffle, d.cwShufSaved = cw.CompressedWireStats()
	}
}

func (d *distExplainDeltas) report(w io.Writer, b runtime.DistBackend) {
	st, ok := b.(distStats)
	if !ok || !d.active {
		return
	}
	fmt.Fprintf(w, "\nDISTRIBUTED (this run)\n")
	fmt.Fprintf(w, "  bytes broadcast:    %d\n", st.BytesBroadcast()-d.bcastBytes)
	fmt.Fprintf(w, "  bytes shuffled:     %d\n", st.BytesShuffled()-d.shuffleBytes)
	fmt.Fprintf(w, "  simulated net time: %v\n", st.NetTime()-time.Duration(d.netNanos))
	if cw, ok := b.(distCompress); ok {
		cb, cbs, sb, sbs := cw.CompressedWireStats()
		if dcb, dsb := cb-d.cwBcast, sb-d.cwShuffle; dcb+dsb > 0 {
			fmt.Fprintf(w, "  compressed wire:    bcast %d B (saved %d), shuffle %d B (saved %d)\n",
				dcb, cbs-d.cwBcastSaved, dsb, sbs-d.cwShufSaved)
		}
	}
	det, ok := b.(distDetail)
	if !ok {
		return
	}
	hits, misses, invals := det.BroadcastCacheStats()
	fmt.Fprintf(w, "  broadcast cache:    hits %d, misses %d, invalidations %d\n",
		hits-d.hits, misses-d.misses, invals-d.invals)
	stages := det.ShuffleStageBytes()
	names := make([]string, 0, len(stages))
	for stage := range stages {
		names = append(names, stage)
	}
	sort.Strings(names)
	for _, stage := range names {
		fmt.Fprintf(w, "  shuffle[%s]:%s%d\n", stage,
			strings.Repeat(" ", max(1, 8-len(stage))), stages[stage]-d.stages[stage])
	}
	ft, ok := b.(distFaults)
	if !ok || !ft.FaultActive() {
		return
	}
	cur := ft.FaultCounters()
	fmt.Fprintf(w, "  FAULTS\n")
	fmt.Fprintf(w, "    injected:         transient %d, stragglers %d, kills %d\n",
		cur["fault.transient"]-d.faults["fault.transient"],
		cur["fault.stragglers"]-d.faults["fault.stragglers"],
		cur["fault.kills"]-d.faults["fault.kills"])
	fmt.Fprintf(w, "    recovered:        retries %d (backoff %v), reassigned %d, re-shipped %d (%d B)\n",
		cur["retry.attempts"]-d.faults["retry.attempts"],
		time.Duration(cur["retry.backoff.ns"]-d.faults["retry.backoff.ns"]),
		cur["fault.reassigned"]-d.faults["fault.reassigned"],
		cur["bcast.reships"]-d.faults["bcast.reships"],
		cur["bcast.reship.bytes"]-d.faults["bcast.reship.bytes"])
	fmt.Fprintf(w, "    speculation:      launched %d, wins %d\n",
		cur["spec.launched"]-d.faults["spec.launched"],
		cur["spec.wins"]-d.faults["spec.wins"])
	fmt.Fprintf(w, "    degraded to local: %d\n", cur["degraded"]-d.faults["degraded"])
}

// distStats is the slice of the distributed backend the metrics layer
// reads; internal/dist.Cluster satisfies it (declared here to avoid a
// package dependency cycle through internal/runtime).
type distStats interface {
	BytesBroadcast() int64
	BytesShuffled() int64
	NetTime() time.Duration
}

// distDetail is the optional richer slice of the backend: broadcast
// handle-cache counters and per-stage shuffle volumes (the overhauled
// internal/dist.Cluster satisfies it; simpler backends need not).
type distDetail interface {
	BroadcastCacheStats() (hits, misses, invalidations int64)
	ShuffleStageBytes() map[string]int64
}

// distFaults is the fault-tolerance slice of the backend: injection and
// recovery counters, merged into metrics as dist.fault.* / dist.retry.* /
// dist.spec.* / dist.degraded only while a fault plan is attached.
type distFaults interface {
	FaultActive() bool
	FaultCounters() map[string]int64
}

// distCompress is the compressed-wire slice of the backend: bytes actually
// shipped in compressed form for broadcasts and shuffle partials, and the
// bytes saved versus shipping the dense blocks.
type distCompress interface {
	CompressedWireStats() (bcastBytes, bcastSaved, shuffleBytes, shuffleSaved int64)
}

// Metrics returns a point-in-time snapshot of all session metrics:
// runtime counters and histograms from execution, codegen optimizer
// statistics, parallel-for utilization and buffer-pool usage (of the
// session's own pools, or the process defaults when none are set), and —
// when a distributed backend is attached — broadcast/shuffle volumes.
func (s *Session) Metrics() obs.Snapshot {
	snap := s.Obs.Snapshot()
	if s.Stats != nil {
		snap.Counters["codegen.dags.optimized"] = s.Stats.DAGsOptimized
		snap.Counters["codegen.cplans.constructed"] = s.Stats.CPlansConstructed
		snap.Counters["codegen.operators.compiled"] = s.Stats.OperatorsCompiled
		snap.Counters["codegen.plancache.hits"] = s.Stats.CacheHits
		snap.Counters["codegen.plans.evaluated"] = s.Stats.PlansEvaluated
		snap.Gauges["codegen.time.seconds"] = s.Stats.CodegenTime.Seconds()
		snap.Gauges["codegen.compile.seconds"] = s.Stats.CompileTime.Seconds()
	}
	if s.Cache != nil {
		hits, misses, evictions := s.Cache.Counters()
		snap.Counters["plancache.hits"] = hits
		snap.Counters["plancache.misses"] = misses
		snap.Counters["plancache.evictions"] = evictions
		snap.Counters["plancache.invalidations"] = s.Cache.Invalidations()
		if lookups := hits + misses; lookups > 0 {
			snap.Gauges["plancache.hitrate"] = float64(hits) / float64(lookups)
		}
		snap.Gauges["plancache.size"] = float64(s.Cache.Size())
		// Chunk-program admission: compiles whose fingerprint resolved to a
		// specialized chunk body, by fingerprint class, vs generic fallbacks.
		byClass, chunkMisses := s.Cache.ChunkCounters()
		for class, n := range byClass {
			snap.Counters["codegen.chunk.hit."+class] = n
		}
		snap.Counters["codegen.chunk.miss"] = chunkMisses
	}
	snap.Counters["block.optimized"] = s.Blocks
	snap.Counters["block.reused"] = s.BlockCacheHits
	if s.Calib != nil {
		st := s.Calib.State()
		snap.Counters["calib.samples"] = st.Samples
		snap.Counters["calib.skipped"] = st.Skipped
		snap.Counters["calib.refits"] = st.Refits
		snap.Counters["calib.gen"] = int64(st.Gen)
		snap.Gauges["calib.read_bw"] = st.Model.ReadBW
		snap.Gauges["calib.write_bw"] = st.Model.WriteBW
		snap.Gauges["calib.flop_rate"] = st.Model.ComputeBW
		snap.Gauges["calib.broadcast_bw"] = st.Model.BroadcastBW
	}
	u := s.Par.Stats()
	snap.Counters["par.calls"] = u.Calls
	snap.Counters["par.goroutines"] = u.Goroutines
	snap.Counters["par.sequential"] = u.Sequential
	snap.Gauges["par.utilization"] = u.Utilization(s.Par.MaxWorkers())
	pu := s.Alloc.Stats()
	snap.Counters["pool.gets"] = pu.Gets
	snap.Counters["pool.hits"] = pu.Hits
	snap.Counters["pool.misses"] = pu.Misses
	snap.Counters["pool.puts"] = pu.Puts
	snap.Counters["pool.bytes.recycled"] = pu.BytesRecycled
	snap.Gauges["pool.hitrate"] = pu.HitRate()
	snap.Gauges["pool.bytes.parked"] = float64(pu.BytesParked)
	snap.Gauges["pool.bytes.live"] = float64(pu.BytesLive)
	if d, ok := s.Dist.(distStats); ok {
		snap.Counters["dist.bytes.broadcast"] = d.BytesBroadcast()
		snap.Counters["dist.bytes.shuffled"] = d.BytesShuffled()
		snap.Gauges["dist.net.seconds"] = d.NetTime().Seconds()
	}
	if d, ok := s.Dist.(distDetail); ok {
		hits, misses, invals := d.BroadcastCacheStats()
		snap.Counters["dist.bcast.hits"] = hits
		snap.Counters["dist.bcast.misses"] = misses
		snap.Counters["dist.bcast.invalidations"] = invals
		if lookups := hits + misses; lookups > 0 {
			snap.Gauges["dist.bcast.hitrate"] = float64(hits) / float64(lookups)
		}
		for stage, bytes := range d.ShuffleStageBytes() {
			snap.Counters["dist.shuffle.bytes."+stage] = bytes
		}
	}
	if d, ok := s.Dist.(distFaults); ok && d.FaultActive() {
		for k, v := range d.FaultCounters() {
			snap.Counters["dist."+k] = v
		}
	}
	if d, ok := s.Dist.(distCompress); ok {
		cb, cs, sb, ss := d.CompressedWireStats()
		if cb+cs+sb+ss > 0 {
			snap.Counters["dist.bcast.compressed_bytes"] = cb
			snap.Counters["dist.bcast.saved_bytes"] = cs
			snap.Counters["dist.shuffle.compressed_bytes"] = sb
			snap.Counters["dist.shuffle.saved_bytes"] = ss
		}
	}
	return snap
}

// CostAudit returns the session's cost-audit summary: per-template
// relative-error histograms of the optimizer's predicted cost against the
// measured wall time of every executed operator, plus the worst-predicted
// operator groups. Empty when no audited statements have run.
func (s *Session) CostAudit() obs.AuditSummary {
	return s.Audit.Summary()
}

func (s *Session) exec(ctx context.Context, root obs.Span, stmts []Stmt) error {
	var pending []Stmt
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := s.runBlock(ctx, root, pending)
		pending = pending[:0]
		return err
	}
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch n := st.(type) {
		case *Assign, *PrintStmt:
			pending = append(pending, st)
		case *IfStmt:
			if err := flush(); err != nil {
				return err
			}
			cond, err := s.evalScalar(ctx, root, n.Cond)
			if err != nil {
				return err
			}
			if cond != 0 {
				if err := s.exec(ctx, root, n.Then); err != nil {
					return err
				}
			} else if len(n.Else) > 0 {
				if err := s.exec(ctx, root, n.Else); err != nil {
					return err
				}
			}
		case *WhileStmt:
			if err := flush(); err != nil {
				return err
			}
			for iter := 0; ; iter++ {
				if iter > 1_000_000 {
					return fmt.Errorf("dml: line %d: while loop exceeded iteration bound", n.Line)
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				cond, err := s.evalScalar(ctx, root, n.Cond)
				if err != nil {
					return err
				}
				if cond == 0 {
					break
				}
				if err := s.exec(ctx, root, n.Body); err != nil {
					return err
				}
			}
		case *ForStmt:
			if err := flush(); err != nil {
				return err
			}
			from, err := s.evalScalar(ctx, root, n.From)
			if err != nil {
				return err
			}
			to, err := s.evalScalar(ctx, root, n.To)
			if err != nil {
				return err
			}
			for i := from; i <= to; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				s.setEnv(n.Var, matrix.NewScalar(i))
				if err := s.exec(ctx, root, n.Body); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// runBlock compiles, optimizes, and executes one statement block,
// recording a trace span per phase and emitting an EXPLAIN report for
// every fresh optimization when a sink or ExplainOut is attached.
func (s *Session) runBlock(ctx context.Context, root obs.Span, stmts []Stmt) error {
	s.syncCalibration()
	spc := root.Phase(s.Obs, "compile")
	c := newBlockCompiler(s.Env)
	c.nnzHints = s.nnzHints
	type printOut struct {
		line  int
		parts []any // string literals and output variable names
	}
	var prints []printOut
	npr := 0
	for _, st := range stmts {
		switch n := st.(type) {
		case *Assign:
			if err := c.assign(n.Target, n.Value); err != nil {
				spc.End()
				return err
			}
		case *PrintStmt:
			po := printOut{line: n.Line}
			for _, part := range flattenConcat(n.Value) {
				if str, ok := part.(*Str); ok {
					po.parts = append(po.parts, str.Value)
					continue
				}
				h, err := c.compile(part)
				if err != nil {
					spc.End()
					return err
				}
				name := fmt.Sprintf("__print%d", npr)
				npr++
				c.d.Output(name, h)
				po.parts = append(po.parts, printRef(name))
			}
			prints = append(prints, po)
		}
	}
	d, _ := rewrite.Apply(c.d)
	spc.End()

	// Compression pass: attach/reuse compressed forms on loop-invariant
	// bound inputs and annotate their OpData hops so the optimizer's read
	// terms see compressed sizes. Runs before the block cache key is used so
	// a cached plan was optimized under the same annotations it would get
	// fresh (attachments persist across iterations).
	spz := root.Phase(s.Obs, "compress")
	s.autoCompress(d)
	spz.End()

	spo := root.Phase(s.Obs, "optimize")
	wantExplain := s.Sink != nil || s.ExplainOut != nil
	var rep *codegen.PlanReport
	optimize := func(d0 *hop.DAG) *hop.DAG {
		if wantExplain {
			rep = &codegen.PlanReport{}
		}
		return codegen.OptimizeTraced(d0, &s.Config, s.Cache, s.Stats, rep, spo)
	}
	// Reuse the optimized plan while the block's structure, sizes, and
	// sparsity are unchanged (SystemML recompiles only dirty blocks). An
	// entry optimized under an older calibration generation is discarded
	// here — lazily, on its next use — and re-optimized under the current
	// constants.
	var blockCacheKey string
	if s.Config.ReuseBlockPlans {
		key := blockKey(d)
		blockCacheKey = key
		entry, ok := s.blockCache[key]
		if ok && entry.calibGen != s.calibGen {
			s.invalidateBlock(key)
			s.Obs.Inc("reopt.calib")
			ok = false
		}
		if ok {
			d = entry.dag
			s.BlockCacheHits++
			s.Obs.Inc("block.cache.hits")
		} else {
			d = optimize(d)
			s.Blocks++
			s.Obs.Inc("block.cache.misses")
			if s.blockCache == nil {
				s.blockCache = map[string]*blockEntry{}
			}
			s.blockCache[key] = &blockEntry{dag: d, hashes: codegen.PlanHashes(d), calibGen: s.calibGen}
		}
	} else {
		d = optimize(d)
		s.Blocks++
	}
	spo.End()
	if rep != nil {
		text := fmt.Sprintf("# EXPLAIN block %d\n%s", s.Blocks, rep.String())
		if s.ExplainOut != nil {
			io.WriteString(s.ExplainOut, text)
		}
		if s.Sink != nil {
			s.Sink.Emit(obs.Event{
				Kind: obs.EventExplain,
				Name: fmt.Sprintf("block %d", s.Blocks),
				Text: text,
			})
		}
	}

	spe := root.Phase(s.Obs, "execute")
	opts := runtime.Options{
		Dist: s.Dist, Ctx: ctx, Metrics: s.Obs, Trace: spe, Audit: s.Audit,
		Exec: s.execCtx(),
	}
	if s.Calib != nil {
		opts.Calib = s.Calib
	}
	var fb *runtime.Feedback
	if s.Config.Reopt.Enabled {
		fb = &runtime.Feedback{}
		if len(s.nnzHints) > 0 {
			fb.Track = make(map[string]bool, len(s.nnzHints))
			for name := range s.nnzHints {
				fb.Track[name] = true
			}
		}
		opts.Feedback = fb
	}
	out, err := runtime.ExecuteDAG(d, s.Env, opts)
	spe.End()
	if err != nil {
		return err
	}
	if fb != nil {
		s.checkReopt(blockCacheKey, fb)
	}
	s.setEnvAll(out)
	for _, po := range prints {
		line := ""
		for _, part := range po.parts {
			switch v := part.(type) {
			case string:
				line += v
			case printRef:
				m := s.Env[string(v)]
				if m.Rows == 1 && m.Cols == 1 {
					line += fmt.Sprintf("%g", m.Scalar())
				} else {
					line += m.String()
				}
			}
		}
		fmt.Fprintln(s.Out, line)
	}
	return nil
}

// syncCalibration adopts the calibrator's current constants into
// Config.Costs when the calibration generation advanced. Cached block
// plans optimized under the old generation are invalidated lazily when
// next looked up (see runBlock), so re-optimization cost is only paid for
// blocks that actually run again.
func (s *Session) syncCalibration() {
	if s.Calib == nil {
		return
	}
	if gen := s.Calib.Gen(); gen != s.calibGen {
		s.calibGen = gen
		s.Config.Costs = s.Calib.Model()
	}
}

// checkReopt inspects one block execution's feedback for divergence
// between the optimizer's assumptions and observed reality, and discards
// the block's cached plan when re-optimizing would plausibly pick a better
// one:
//
//   - sparsity: a tracked input's actual nonzero count differs from its
//     compile-time estimate by more than Reopt.SparsityFactor. The stale
//     hint is dropped, so the recompiled block keys on (and optimizes
//     under) the exact count — the divergence cannot recur.
//   - time: the block's measured operator seconds diverge from the
//     predicted seconds by more than Reopt.TimeFactor. Estimates don't
//     change by themselves, so this only helps alongside a calibrator
//     (whose refit repriced the plan space); it is capped at
//     Reopt.MaxPerBlock per block either way.
func (s *Session) checkReopt(key string, fb *runtime.Feedback) {
	r := s.Config.Reopt
	diverged := false
	for _, in := range fb.Inputs {
		cells := in.Rows * in.Cols
		if cells < r.MinCells {
			continue
		}
		est := float64(in.EstNnz)
		if in.EstNnz < 0 {
			est = float64(cells) // dense assumption
		}
		if est < 1 {
			est = 1
		}
		act := float64(in.ActualNnz)
		if act < 1 {
			act = 1
		}
		if ratio := act / est; ratio > r.SparsityFactor || ratio < 1/r.SparsityFactor {
			delete(s.nnzHints, in.Name)
			s.Obs.Inc("reopt.sparsity")
			diverged = true
		}
	}
	if fb.ActualSec >= r.MinSec && fb.PredSec > 0 && s.blockReopt[key] < r.MaxPerBlock {
		if ratio := fb.PredSec / fb.ActualSec; ratio > r.TimeFactor || ratio < 1/r.TimeFactor {
			if s.blockReopt == nil {
				s.blockReopt = map[string]int{}
			}
			s.blockReopt[key]++
			s.Obs.Inc("reopt.time")
			diverged = true
			if s.Calib != nil {
				// Fold the divergence evidence into the constants now rather
				// than waiting for the refit cadence.
				s.Calib.Refit()
				s.syncCalibration()
			}
		}
	}
	if diverged {
		s.invalidateBlock(key)
	}
}

// invalidateBlock discards one cached block plan and invalidates its
// compiled operators in the plan cache (all views of a shared cache stop
// serving them).
func (s *Session) invalidateBlock(key string) {
	e, ok := s.blockCache[key]
	if !ok {
		return
	}
	delete(s.blockCache, key)
	if s.Cache != nil {
		s.Cache.Invalidate(e.hashes...)
	}
	s.Obs.Inc("reopt.invalidations")
}

type printRef string

// blockKey fingerprints a rewritten block DAG: operator structure, input
// names, dimensions, format, and bucketed sparsity, plus the output
// binding. Matching keys produce identical optimized plans.
func blockKey(d *hop.DAG) string {
	var b strings.Builder
	for _, h := range hop.TopoOrder(d.Roots()) {
		fmt.Fprintf(&b, "%d:%d:%d:%d:%d:%g:%s:%d:%d:%v:%.1f:%d:%d:%d:%d:%v",
			h.ID, h.Kind, h.BinOp, h.UnOp, h.AggOp, h.Value, h.Name,
			h.Rows, h.Cols, h.IsSparse(), h.Sparsity(), h.RL, h.RU, h.CL, h.CU, h.GenArgs)
		for _, in := range h.Inputs {
			fmt.Fprintf(&b, ",%d", in.ID)
		}
		b.WriteByte('|')
	}
	for _, name := range d.OutputNames() {
		fmt.Fprintf(&b, "%s=%d;", name, d.Outputs[name].ID)
	}
	return b.String()
}

// flattenConcat splits a "+"-chain mixing strings and expressions into
// printable parts.
func flattenConcat(e Expr) []Expr {
	if b, ok := e.(*BinExpr); ok && b.Op == "+" && (containsStr(b.L) || containsStr(b.R)) {
		return append(flattenConcat(b.L), flattenConcat(b.R)...)
	}
	return []Expr{e}
}

func containsStr(e Expr) bool {
	switch n := e.(type) {
	case *Str:
		return true
	case *BinExpr:
		return n.Op == "+" && (containsStr(n.L) || containsStr(n.R))
	}
	return false
}

// evalScalar evaluates a predicate or loop-bound expression through the
// regular block pipeline (a one-output DAG), mirroring SystemML's handling
// of scalar instructions.
func (s *Session) evalScalar(ctx context.Context, root obs.Span, e Expr) (float64, error) {
	c := newBlockCompiler(s.Env)
	h, err := c.compile(e)
	if err != nil {
		return 0, err
	}
	c.d.Output("__cond", h)
	d, _ := rewrite.Apply(c.d)
	sp := root.Child("evalScalar")
	out, err := runtime.ExecuteDAG(d, s.Env, runtime.Options{
		Dist: s.Dist, Ctx: ctx, Metrics: s.Obs, Trace: sp, Audit: s.Audit,
		Exec: s.execCtx(),
	})
	sp.End()
	if err != nil {
		return 0, err
	}
	m := out["__cond"]
	if m.Rows != 1 || m.Cols != 1 {
		return 0, shapeErrf(0, "condition is not scalar (%dx%d)", m.Rows, m.Cols)
	}
	return m.Scalar(), nil
}
