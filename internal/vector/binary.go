package vector

import "math"

// Write-variant binary primitives: c[ci+k] = a[ai+k] OP b[bi+k].

// MultWrite computes c = a * b element-wise (8-fold unrolled like the
// vectMultWrite primitive discussed in paper Fig. 10).
func MultWrite(a, b, c []float64, ai, bi, ci, n int) {
	k := 0
	for ; k+8 <= n; k += 8 {
		c[ci+k] = a[ai+k] * b[bi+k]
		c[ci+k+1] = a[ai+k+1] * b[bi+k+1]
		c[ci+k+2] = a[ai+k+2] * b[bi+k+2]
		c[ci+k+3] = a[ai+k+3] * b[bi+k+3]
		c[ci+k+4] = a[ai+k+4] * b[bi+k+4]
		c[ci+k+5] = a[ai+k+5] * b[bi+k+5]
		c[ci+k+6] = a[ai+k+6] * b[bi+k+6]
		c[ci+k+7] = a[ai+k+7] * b[bi+k+7]
	}
	for ; k < n; k++ {
		c[ci+k] = a[ai+k] * b[bi+k]
	}
}

// AddWrite computes c = a + b element-wise.
func AddWrite(a, b, c []float64, ai, bi, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = a[ai+k] + b[bi+k]
	}
}

// MinusWrite computes c = a - b element-wise (vectMinus).
func MinusWrite(a, b, c []float64, ai, bi, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = a[ai+k] - b[bi+k]
	}
}

// DivWrite computes c = a / b element-wise.
func DivWrite(a, b, c []float64, ai, bi, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = a[ai+k] / b[bi+k]
	}
}

// MinWrite computes c = min(a, b) element-wise.
func MinWrite(a, b, c []float64, ai, bi, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = math.Min(a[ai+k], b[bi+k])
	}
}

// MaxWrite computes c = max(a, b) element-wise.
func MaxWrite(a, b, c []float64, ai, bi, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = math.Max(a[ai+k], b[bi+k])
	}
}

// Scalar-variant write primitives: c[ci+k] = a[ai+k] OP s.

// MultScalarWrite computes c = a * s.
func MultScalarWrite(a []float64, s float64, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = a[ai+k] * s
	}
}

// AddScalarWrite computes c = a + s.
func AddScalarWrite(a []float64, s float64, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = a[ai+k] + s
	}
}

// MinusScalarWrite computes c = a - s.
func MinusScalarWrite(a []float64, s float64, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = a[ai+k] - s
	}
}

// ScalarMinusWrite computes c = s - a.
func ScalarMinusWrite(s float64, a, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = s - a[ai+k]
	}
}

// DivScalarWrite computes c = a / s.
func DivScalarWrite(a []float64, s float64, c []float64, ai, ci, n int) {
	inv := 1 / s
	for k := 0; k < n; k++ {
		c[ci+k] = a[ai+k] * inv
	}
}

// ScalarDivWrite computes c = s / a.
func ScalarDivWrite(s float64, a, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		c[ci+k] = s / a[ai+k]
	}
}

// PowScalarWrite computes c = a ^ s.
func PowScalarWrite(a []float64, s float64, c []float64, ai, ci, n int) {
	if s == 2 {
		for k := 0; k < n; k++ {
			c[ci+k] = a[ai+k] * a[ai+k]
		}
		return
	}
	for k := 0; k < n; k++ {
		c[ci+k] = math.Pow(a[ai+k], s)
	}
}

// GreaterScalarWrite computes c = (a > s) ? 1 : 0.
func GreaterScalarWrite(a []float64, s float64, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		if a[ai+k] > s {
			c[ci+k] = 1
		} else {
			c[ci+k] = 0
		}
	}
}

// NotEqualScalarWrite computes c = (a != s) ? 1 : 0.
func NotEqualScalarWrite(a []float64, s float64, c []float64, ai, ci, n int) {
	for k := 0; k < n; k++ {
		if a[ai+k] != s {
			c[ci+k] = 1
		} else {
			c[ci+k] = 0
		}
	}
}
