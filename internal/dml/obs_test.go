package dml

import (
	"context"
	"errors"
	"io"
	"regexp"
	"strings"
	"testing"
	"time"

	"sysml/internal/codegen"
	"sysml/internal/matrix"
)

var (
	costRe  = regexp.MustCompile(`estimated cost: [0-9.e+-]+`)
	classRe = regexp.MustCompile(`TMP\d+`)
	poolRe  = regexp.MustCompile(`(?s)\nBUFFER POOL \(this run\)\n.*$`)
)

// normalizeExplain strips the non-deterministic parts of an EXPLAIN
// report: analytical cost values (stable for a fixed config but tied to
// cost-model constants), compiled class names (a process-global counter),
// and the buffer-pool section (counters depend on process-wide pool state).
func normalizeExplain(s string) string {
	s = costRe.ReplaceAllString(s, "estimated cost: #")
	s = classRe.ReplaceAllString(s, "TMP#")
	s = poolRe.ReplaceAllString(s, "")
	return s
}

func TestExplainGolden(t *testing.T) {
	s := NewSession(codegen.DefaultConfig())
	s.Bind("X", matrix.Rand(2000, 100, 1, -1, 1, 7))
	s.Bind("v", matrix.Rand(100, 1, 1, -1, 1, 8))
	text, err := s.Explain("s = sum(X * X)\nw = t(X) %*% (X %*% v)")
	if err != nil {
		t.Fatal(err)
	}
	want := `# EXPLAIN block 1
mode: Gen
hops before fusion:
  1 data(X) [] 2000x100 nnz=200000 LOCAL
  2 b(*) [1,1] 2000x100 nnz=200000 LOCAL
  3 ua(sum) [2] 1x1 nnz=1 LOCAL
  4 r(t) [1] 100x2000 nnz=200000 LOCAL
  5 data(v) [] 100x1 nnz=100 LOCAL
  6 ba(+*) [1,5] 2000x1 nnz=2000 LOCAL
  7 ba(+*) [4,6] 100x1 nnz=100 LOCAL
partition 0: 2 nodes, 0 interesting points
  plans: evaluated 0 of 1 hypothetical, materialized 0 points
  estimated cost: #
partition 1: 3 nodes, 0 interesting points
  plans: evaluated 0 of 1 hypothetical, materialized 0 points
  estimated cost: #
fused operators: 2 (Cell, Row)
  Cell TMP#: 1 inputs, 1x1 output chunks [agg.sumsq]
  Row TMP#: 2 inputs, 100x1 output
plan cache: 0 hits, 2 misses, 0 evictions
hops after fusion:
  1 data(X) [] 2000x100 nnz=200000 LOCAL
  8 spoof(Cell) [1] 1x1 nnz=1 LOCAL
  5 data(v) [] 100x1 nnz=100 LOCAL
  9 spoof(Row) [1,5] 100x1 nnz=100 LOCAL
`
	if got := normalizeExplain(text); got != want {
		t.Errorf("explain mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainBufferPoolSection checks that EXPLAIN reports the buffer-pool
// lifecycle of the run it shadows.
func TestExplainBufferPoolSection(t *testing.T) {
	s := NewSession(codegen.DefaultConfig())
	s.Bind("X", matrix.Rand(500, 100, 1, -1, 1, 7))
	text, err := s.Explain("Y = X * 2\nZ = Y + 1\nq = sum(Z %*% t(Z))")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BUFFER POOL (this run)", "pooled allocations:", "buffers returned:", "bytes recycled:"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
}

func TestExplainLeavesSessionUntouched(t *testing.T) {
	s := NewSession(codegen.DefaultConfig())
	s.Bind("X", matrix.Rand(100, 10, 1, -1, 1, 7))
	if _, err := s.Explain(`y = sum(X * X)`); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Env["y"]; ok {
		t.Error("Explain leaked result variables into the session environment")
	}
	if s.Blocks != 0 || s.Stats.DAGsOptimized != 0 {
		t.Errorf("Explain mutated session stats: blocks=%d dags=%d", s.Blocks, s.Stats.DAGsOptimized)
	}
}

func TestRunContextCancel(t *testing.T) {
	s := NewSession(codegen.DefaultConfig())
	s.Out = io.Discard

	// Pre-canceled context: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.RunContext(ctx, `y = 1 + 1`); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v, want context.Canceled", err)
	}
	if _, ok := s.Env["y"]; ok {
		t.Fatal("pre-canceled run still assigned a variable")
	}

	// Cancel mid-script: a long while loop of large fused operators must
	// abort promptly rather than running all iterations.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- s.RunContext(ctx, `
			X = rand(rows=500, cols=500, seed=1)
			i = 0
			acc = 0
			while (i < 100000) {
				acc = acc + sum(X * X + i)
				i = i + 1
			}
		`)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, expected prompt abort", elapsed)
	}
}

func TestTypedErrors(t *testing.T) {
	s := NewSession(codegen.DefaultConfig())
	s.Out = io.Discard

	var pe *ParseError
	err := s.Run(`x = `)
	if !errors.As(err, &pe) {
		t.Fatalf("syntax error: got %T (%v), want *ParseError", err, err)
	}
	if pe.Line != 1 {
		t.Errorf("ParseError.Line = %d, want 1", pe.Line)
	}
	if !errors.Is(err, &ParseError{}) {
		t.Error("errors.Is class match failed for ParseError")
	}

	var ue *UnboundVarError
	err = s.Run("\ny = missing + 1")
	if !errors.As(err, &ue) {
		t.Fatalf("unbound var: got %T (%v), want *UnboundVarError", err, err)
	}
	if ue.Name != "missing" || ue.Line != 2 {
		t.Errorf("UnboundVarError = %+v, want {Line:2 Name:missing}", ue)
	}

	var se *ShapeError
	s.Bind("A", matrix.Rand(3, 4, 1, 0, 1, 1))
	s.Bind("B", matrix.Rand(3, 4, 1, 0, 1, 2))
	err = s.Run(`C = A %*% B`)
	if !errors.As(err, &se) {
		t.Fatalf("matmul mismatch: got %T (%v), want *ShapeError", err, err)
	}
	if !strings.Contains(se.Error(), "3x4 vs 3x4") {
		t.Errorf("ShapeError message = %q", se.Error())
	}

	// Get/Scalar return the same typed errors.
	if _, err := s.Get("nope"); !errors.Is(err, &UnboundVarError{}) {
		t.Errorf("Get missing: got %v, want UnboundVarError", err)
	}
	if _, err := s.Scalar("nope"); !errors.Is(err, &UnboundVarError{}) {
		t.Errorf("Scalar missing: got %v, want UnboundVarError", err)
	}
	if _, err := s.Scalar("A"); !errors.Is(err, &ShapeError{}) {
		t.Errorf("Scalar on matrix: got %v, want ShapeError", err)
	}
}

func TestSessionMetrics(t *testing.T) {
	// Exact cache-hit accounting: time-triggered re-optimization would
	// legitimately invalidate cached blocks on slow runners (-race), so
	// pin it off here.
	cfg := codegen.DefaultConfig()
	cfg.Reopt.Enabled = false
	s := NewSession(cfg)
	s.Out = io.Discard
	s.Bind("X", matrix.Rand(2000, 100, 1, -1, 1, 7))
	s.Bind("v", matrix.Rand(100, 1, 1, -1, 1, 8))
	script := "s = sum(X * X)\nw = t(X) %*% (X %*% v)"
	for i := 0; i < 3; i++ {
		if err := s.Run(script); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics()
	if snap.Counter("exec.ops") == 0 {
		t.Error("no operators recorded")
	}
	if got := snap.Counter("spoof.invocations"); got != 6 {
		t.Errorf("spoof.invocations = %d, want 6 (2 fused ops x 3 runs)", got)
	}
	if snap.Counter("spoof.Cell") != 3 || snap.Counter("spoof.Row") != 3 {
		t.Errorf("per-template counts = Cell:%d Row:%d, want 3/3",
			snap.Counter("spoof.Cell"), snap.Counter("spoof.Row"))
	}
	if snap.Counter("block.cache.misses") != 1 || snap.Counter("block.cache.hits") != 2 {
		t.Errorf("block cache misses=%d hits=%d, want 1/2",
			snap.Counter("block.cache.misses"), snap.Counter("block.cache.hits"))
	}
	if snap.Counter("codegen.operators.compiled") == 0 {
		t.Error("codegen stats not merged into snapshot")
	}
	for _, phase := range []string{"phase.parse", "phase.compile", "phase.optimize", "phase.execute"} {
		if snap.Hist(phase).Count == 0 {
			t.Errorf("missing %s histogram", phase)
		}
	}
	if snap.Hist("phase.execute").Sum <= 0 {
		t.Error("execute phase recorded no time")
	}
	if snap.Counter("exec.est.flops") == 0 || snap.Counter("exec.actual.bytes") == 0 {
		t.Error("estimate/actual counters not recorded")
	}
}
