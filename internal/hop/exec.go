package hop

// ExecConfig controls execution-type selection. Operations whose memory
// estimate exceeds the local budget are marked for (simulated) distributed
// execution; Blocksize is the distributed block edge length that Row
// templates must respect (paper §4.1 conditional constraints).
type ExecConfig struct {
	MemBudgetBytes int64
	Blocksize      int64
	ForceLocal     bool
}

// DefaultExecConfig mirrors the paper's driver setup scaled to a single
// process: a large local budget so that all single-node experiments stay
// local, and the SystemML default blocksize of 1000.
func DefaultExecConfig() ExecConfig {
	return ExecConfig{MemBudgetBytes: 2 << 30, Blocksize: 1000}
}

// AssignExecTypes decides local vs distributed execution per operator from
// its memory estimate, like SystemML's operator selection step.
func AssignExecTypes(roots []*Hop, cfg ExecConfig) {
	for _, h := range TopoOrder(roots) {
		if cfg.ForceLocal || h.MemEstimate() <= cfg.MemBudgetBytes {
			h.ExecType = ExecLocal
		} else {
			h.ExecType = ExecDist
		}
	}
}

// Explain renders the DAG in SystemML's EXPLAIN-like notation for
// debugging and tests.
func Explain(roots []*Hop) string {
	s := ""
	for _, h := range TopoOrder(roots) {
		s += explainLine(h) + "\n"
	}
	return s
}

func explainLine(h *Hop) string {
	line := ""
	for i, in := range h.Inputs {
		if i > 0 {
			line += ","
		}
		line += itoa(in.ID)
	}
	return itoa(h.ID) + " " + h.String() + " [" + line + "] " +
		itoa(h.Rows) + "x" + itoa(h.Cols) + " nnz=" + itoa(h.Nnz) + " " + h.ExecType.String()
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
