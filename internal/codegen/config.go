// Package codegen implements the paper's cost-based optimization framework
// for operator fusion plans: candidate exploration over a memoization table
// (§3), cost-based candidate selection with the MPSkipEnum algorithm (§4),
// and CPlan construction plus code generation with a plan cache (§2).
package codegen

import "sysml/internal/hop"

// Mode selects the fusion plan selection policy.
type Mode int

// Selection policies: no codegen (Base), hand-coded fused operators only
// (Fused, implemented as a fixed small pattern set), cost-based optimizer
// (Gen), and the two heuristics fuse-all (GenFA) and fuse-no-redundancy
// (GenFNR) from §4.1.
const (
	ModeBase Mode = iota
	ModeFused
	ModeGen
	ModeGenFA
	ModeGenFNR
)

var modeNames = [...]string{"Base", "Fused", "Gen", "Gen-FA", "Gen-FNR"}

// String returns the mode name as printed in EXPLAIN output and benchmark
// tables.
func (m Mode) String() string { return modeNames[m] }

// CompilerKind selects the operator compile path (Fig. 11).
type CompilerKind int

// Compile paths: Janino analog (direct closure assembly) and Javac analog
// (render + parse-validate the full source first).
const (
	CompilerJanino CompilerKind = iota
	CompilerJavac
)

// CompressMode selects the compressed-linear-algebra policy for bound
// inputs (the dmlrun -compress flag).
type CompressMode int

// Compression policies: Auto compresses loop-invariant read-only inputs
// whose sampled compression-ratio estimate clears CompressMinRatio, On
// compresses every large enough input unconditionally, Off disables the
// compressed path entirely.
const (
	CompressAuto CompressMode = iota
	CompressOn
	CompressOff
)

var compressNames = [...]string{"auto", "on", "off"}

// String returns the flag spelling of the mode (auto, on, off).
func (c CompressMode) String() string { return compressNames[c] }

// Config controls the codegen optimizer.
type Config struct {
	Mode     Mode
	Compiler CompilerKind

	// PlanCache enables reuse of compiled operators across DAGs keyed by
	// CPlan hash. PlanCacheSize bounds the number of cached operators
	// (0 = unbounded); when full, the oldest entry is evicted.
	PlanCache     bool
	PlanCacheSize int

	// ReuseBlockPlans lets the script interpreter reuse a block's optimized
	// DAG across loop iterations while structure, sizes, and sparsity stay
	// unchanged (SystemML only recompiles dirty blocks); disable to force
	// dynamic recompilation on every execution, as the compilation-overhead
	// experiments do.
	ReuseBlockPlans bool

	// EnablePartition optimizes connected components of fusion plans
	// independently; EnableCostPrune and EnableStructPrune toggle the two
	// MPSkipEnum pruning techniques (Fig. 12 configurations).
	EnablePartition   bool
	EnableCostPrune   bool
	EnableStructPrune bool

	// DisableMAgg turns off multi-aggregate combining (ablation).
	DisableMAgg bool

	// DisableHFuse turns off horizontal sibling fusion (ablation): sibling
	// operators sharing a dominant input then execute as separate scans
	// (full aggregates may still combine via the multi-aggregate pass).
	DisableHFuse bool

	// MaxPointsExact caps the exhaustive search: partitions with more
	// interesting points than this fall back to the fuse-all opening
	// heuristic for the overflowing points.
	MaxPointsExact int

	// RowTemplateMaxCols bounds the width of the second matmult input for
	// Row-template B1 binding.
	RowTemplateMaxCols int
	// OuterMaxRank bounds the inner dimension of outer-product templates.
	OuterMaxRank int

	Exec hop.ExecConfig

	// Costs holds the analytical cost model constants.
	Costs CostModel

	// Compress selects the compressed-linear-algebra policy for bound
	// inputs; CompressMinRatio is the sampled-estimate threshold below
	// which Auto declines, and CompressMinBytes the dense size below which
	// compression is never attempted (the bookkeeping would dominate).
	Compress         CompressMode
	CompressMinRatio float64
	CompressMinBytes int64

	// Reopt controls mid-script re-optimization: when a block's observed
	// sparsity or wall time diverges from its prediction beyond the
	// configured thresholds, the interpreter invalidates the block's cached
	// plan and re-optimizes with corrected estimates.
	Reopt ReoptConfig
}

// ReoptConfig holds the divergence thresholds for mid-script
// re-optimization (see docs/COST_MODEL.md for how they interact with the
// plan cache and the calibration generation counter).
type ReoptConfig struct {
	// Enabled turns the divergence checks on; when false the interpreter
	// never revisits a cached block plan (pre-calibration behavior).
	Enabled bool

	// SparsityFactor triggers re-optimization when an input's actual
	// nonzero count differs from its compile-time estimate by more than
	// this factor in either direction (and the matrix has at least
	// MinCells cells — tiny inputs can't change a plan choice).
	SparsityFactor float64
	// MinCells is the matrix size floor for the sparsity check.
	MinCells int64

	// TimeFactor triggers re-optimization when a block's measured wall
	// time diverges from the optimizer prediction by more than this factor
	// while the block ran for at least MinSec (sub-millisecond blocks are
	// dominated by dispatch, not plan quality).
	TimeFactor float64
	// MinSec is the wall-time floor for the time-divergence check.
	MinSec float64

	// MaxPerBlock caps how many times a single block may be re-optimized
	// by the time trigger, so a fundamentally hard-to-predict block can't
	// thrash the plan cache. Sparsity-triggered re-optimization is exempt:
	// corrected estimates converge on their own.
	MaxPerBlock int
}

// DefaultReoptConfig enables re-optimization with conservative thresholds:
// a 4x sparsity mismatch or an 8x time mismatch on a >=1ms block.
func DefaultReoptConfig() ReoptConfig {
	return ReoptConfig{
		Enabled:        true,
		SparsityFactor: 4,
		MinCells:       256,
		TimeFactor:     8,
		MinSec:         1e-3,
		MaxPerBlock:    2,
	}
}

// DefaultConfig returns the production defaults (cost-based optimizer, plan
// cache, both prunings on).
func DefaultConfig() Config {
	return Config{
		Mode:               ModeGen,
		Compiler:           CompilerJanino,
		PlanCache:          true,
		ReuseBlockPlans:    true,
		EnablePartition:    true,
		EnableCostPrune:    true,
		EnableStructPrune:  true,
		MaxPointsExact:     12,
		RowTemplateMaxCols: 128,
		OuterMaxRank:       256,
		Exec:               hop.DefaultExecConfig(),
		Costs:              DefaultCostModel(),
		Compress:           CompressAuto,
		CompressMinRatio:   3.0,
		CompressMinBytes:   1 << 16,
		Reopt:              DefaultReoptConfig(),
	}
}

// CostModel holds bandwidth and compute constants of the analytical cost
// model (§4.3). Only ratios matter for plan choices.
type CostModel struct {
	ReadBW      float64 // bytes/s peak read
	WriteBW     float64 // bytes/s peak write
	ComputeBW   float64 // FLOP/s peak
	BroadcastBW float64 // bytes/s for distributed side-input broadcast
}

// DefaultCostModel mirrors the paper's per-node constants (32 GB/s read,
// 115 GFLOP/s) with a write bandwidth of half the read bandwidth and a
// broadcast bandwidth an order of magnitude below local reads.
func DefaultCostModel() CostModel {
	return CostModel{
		ReadBW:      32e9,
		WriteBW:     16e9,
		ComputeBW:   115.2e9,
		BroadcastBW: 1.25e9, // ~10 Gb Ethernet
	}
}
